
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/arena.cc" "src/alloc/CMakeFiles/sentinel_alloc.dir/arena.cc.o" "gcc" "src/alloc/CMakeFiles/sentinel_alloc.dir/arena.cc.o.d"
  "/root/repo/src/alloc/reserved_pool.cc" "src/alloc/CMakeFiles/sentinel_alloc.dir/reserved_pool.cc.o" "gcc" "src/alloc/CMakeFiles/sentinel_alloc.dir/reserved_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/sentinel_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sentinel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
