# Empty compiler generated dependencies file for sentinel_alloc.
# This may be replaced when dependencies are built.
