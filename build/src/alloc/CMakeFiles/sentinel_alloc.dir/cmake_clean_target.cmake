file(REMOVE_RECURSE
  "libsentinel_alloc.a"
)
