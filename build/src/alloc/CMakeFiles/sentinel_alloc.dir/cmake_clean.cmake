file(REMOVE_RECURSE
  "CMakeFiles/sentinel_alloc.dir/arena.cc.o"
  "CMakeFiles/sentinel_alloc.dir/arena.cc.o.d"
  "CMakeFiles/sentinel_alloc.dir/reserved_pool.cc.o"
  "CMakeFiles/sentinel_alloc.dir/reserved_pool.cc.o.d"
  "libsentinel_alloc.a"
  "libsentinel_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
