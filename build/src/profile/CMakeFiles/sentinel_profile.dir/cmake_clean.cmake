file(REMOVE_RECURSE
  "CMakeFiles/sentinel_profile.dir/profile_db.cc.o"
  "CMakeFiles/sentinel_profile.dir/profile_db.cc.o.d"
  "CMakeFiles/sentinel_profile.dir/profiler.cc.o"
  "CMakeFiles/sentinel_profile.dir/profiler.cc.o.d"
  "CMakeFiles/sentinel_profile.dir/serialize.cc.o"
  "CMakeFiles/sentinel_profile.dir/serialize.cc.o.d"
  "libsentinel_profile.a"
  "libsentinel_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
