# Empty dependencies file for sentinel_profile.
# This may be replaced when dependencies are built.
