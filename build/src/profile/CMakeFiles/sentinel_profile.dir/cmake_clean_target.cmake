file(REMOVE_RECURSE
  "libsentinel_profile.a"
)
