
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/profile_db.cc" "src/profile/CMakeFiles/sentinel_profile.dir/profile_db.cc.o" "gcc" "src/profile/CMakeFiles/sentinel_profile.dir/profile_db.cc.o.d"
  "/root/repo/src/profile/profiler.cc" "src/profile/CMakeFiles/sentinel_profile.dir/profiler.cc.o" "gcc" "src/profile/CMakeFiles/sentinel_profile.dir/profiler.cc.o.d"
  "/root/repo/src/profile/serialize.cc" "src/profile/CMakeFiles/sentinel_profile.dir/serialize.cc.o" "gcc" "src/profile/CMakeFiles/sentinel_profile.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/sentinel_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sentinel_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sentinel_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sentinel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
