# Empty dependencies file for sentinel_dataflow.
# This may be replaced when dependencies are built.
