file(REMOVE_RECURSE
  "CMakeFiles/sentinel_dataflow.dir/cost_model.cc.o"
  "CMakeFiles/sentinel_dataflow.dir/cost_model.cc.o.d"
  "CMakeFiles/sentinel_dataflow.dir/executor.cc.o"
  "CMakeFiles/sentinel_dataflow.dir/executor.cc.o.d"
  "CMakeFiles/sentinel_dataflow.dir/graph.cc.o"
  "CMakeFiles/sentinel_dataflow.dir/graph.cc.o.d"
  "libsentinel_dataflow.a"
  "libsentinel_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
