
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/cost_model.cc" "src/dataflow/CMakeFiles/sentinel_dataflow.dir/cost_model.cc.o" "gcc" "src/dataflow/CMakeFiles/sentinel_dataflow.dir/cost_model.cc.o.d"
  "/root/repo/src/dataflow/executor.cc" "src/dataflow/CMakeFiles/sentinel_dataflow.dir/executor.cc.o" "gcc" "src/dataflow/CMakeFiles/sentinel_dataflow.dir/executor.cc.o.d"
  "/root/repo/src/dataflow/graph.cc" "src/dataflow/CMakeFiles/sentinel_dataflow.dir/graph.cc.o" "gcc" "src/dataflow/CMakeFiles/sentinel_dataflow.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/sentinel_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sentinel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
