file(REMOVE_RECURSE
  "libsentinel_dataflow.a"
)
