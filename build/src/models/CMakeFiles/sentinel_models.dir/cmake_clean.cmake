file(REMOVE_RECURSE
  "CMakeFiles/sentinel_models.dir/bert.cc.o"
  "CMakeFiles/sentinel_models.dir/bert.cc.o.d"
  "CMakeFiles/sentinel_models.dir/common.cc.o"
  "CMakeFiles/sentinel_models.dir/common.cc.o.d"
  "CMakeFiles/sentinel_models.dir/dcgan.cc.o"
  "CMakeFiles/sentinel_models.dir/dcgan.cc.o.d"
  "CMakeFiles/sentinel_models.dir/lstm.cc.o"
  "CMakeFiles/sentinel_models.dir/lstm.cc.o.d"
  "CMakeFiles/sentinel_models.dir/mobilenet.cc.o"
  "CMakeFiles/sentinel_models.dir/mobilenet.cc.o.d"
  "CMakeFiles/sentinel_models.dir/registry.cc.o"
  "CMakeFiles/sentinel_models.dir/registry.cc.o.d"
  "CMakeFiles/sentinel_models.dir/resnet.cc.o"
  "CMakeFiles/sentinel_models.dir/resnet.cc.o.d"
  "libsentinel_models.a"
  "libsentinel_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
