
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bert.cc" "src/models/CMakeFiles/sentinel_models.dir/bert.cc.o" "gcc" "src/models/CMakeFiles/sentinel_models.dir/bert.cc.o.d"
  "/root/repo/src/models/common.cc" "src/models/CMakeFiles/sentinel_models.dir/common.cc.o" "gcc" "src/models/CMakeFiles/sentinel_models.dir/common.cc.o.d"
  "/root/repo/src/models/dcgan.cc" "src/models/CMakeFiles/sentinel_models.dir/dcgan.cc.o" "gcc" "src/models/CMakeFiles/sentinel_models.dir/dcgan.cc.o.d"
  "/root/repo/src/models/lstm.cc" "src/models/CMakeFiles/sentinel_models.dir/lstm.cc.o" "gcc" "src/models/CMakeFiles/sentinel_models.dir/lstm.cc.o.d"
  "/root/repo/src/models/mobilenet.cc" "src/models/CMakeFiles/sentinel_models.dir/mobilenet.cc.o" "gcc" "src/models/CMakeFiles/sentinel_models.dir/mobilenet.cc.o.d"
  "/root/repo/src/models/registry.cc" "src/models/CMakeFiles/sentinel_models.dir/registry.cc.o" "gcc" "src/models/CMakeFiles/sentinel_models.dir/registry.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/models/CMakeFiles/sentinel_models.dir/resnet.cc.o" "gcc" "src/models/CMakeFiles/sentinel_models.dir/resnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/sentinel_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sentinel_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sentinel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
