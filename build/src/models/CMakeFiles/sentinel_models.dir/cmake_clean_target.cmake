file(REMOVE_RECURSE
  "libsentinel_models.a"
)
