# Empty dependencies file for sentinel_models.
# This may be replaced when dependencies are built.
