# Empty dependencies file for sentinel_mem.
# This may be replaced when dependencies are built.
