file(REMOVE_RECURSE
  "CMakeFiles/sentinel_mem.dir/access_tracker.cc.o"
  "CMakeFiles/sentinel_mem.dir/access_tracker.cc.o.d"
  "CMakeFiles/sentinel_mem.dir/dram_cache.cc.o"
  "CMakeFiles/sentinel_mem.dir/dram_cache.cc.o.d"
  "CMakeFiles/sentinel_mem.dir/hm.cc.o"
  "CMakeFiles/sentinel_mem.dir/hm.cc.o.d"
  "CMakeFiles/sentinel_mem.dir/page_table.cc.o"
  "CMakeFiles/sentinel_mem.dir/page_table.cc.o.d"
  "CMakeFiles/sentinel_mem.dir/tier.cc.o"
  "CMakeFiles/sentinel_mem.dir/tier.cc.o.d"
  "libsentinel_mem.a"
  "libsentinel_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
