
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/access_tracker.cc" "src/mem/CMakeFiles/sentinel_mem.dir/access_tracker.cc.o" "gcc" "src/mem/CMakeFiles/sentinel_mem.dir/access_tracker.cc.o.d"
  "/root/repo/src/mem/dram_cache.cc" "src/mem/CMakeFiles/sentinel_mem.dir/dram_cache.cc.o" "gcc" "src/mem/CMakeFiles/sentinel_mem.dir/dram_cache.cc.o.d"
  "/root/repo/src/mem/hm.cc" "src/mem/CMakeFiles/sentinel_mem.dir/hm.cc.o" "gcc" "src/mem/CMakeFiles/sentinel_mem.dir/hm.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/sentinel_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/sentinel_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/tier.cc" "src/mem/CMakeFiles/sentinel_mem.dir/tier.cc.o" "gcc" "src/mem/CMakeFiles/sentinel_mem.dir/tier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sentinel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
