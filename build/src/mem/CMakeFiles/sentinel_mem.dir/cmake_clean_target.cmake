file(REMOVE_RECURSE
  "libsentinel_mem.a"
)
