# Empty compiler generated dependencies file for sentinel_harness.
# This may be replaced when dependencies are built.
