
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/sentinel_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/sentinel_harness.dir/experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sentinel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sentinel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sentinel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sentinel_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sentinel_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/sentinel_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sentinel_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sentinel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
