file(REMOVE_RECURSE
  "CMakeFiles/sentinel_harness.dir/experiment.cc.o"
  "CMakeFiles/sentinel_harness.dir/experiment.cc.o.d"
  "libsentinel_harness.a"
  "libsentinel_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
