file(REMOVE_RECURSE
  "libsentinel_harness.a"
)
