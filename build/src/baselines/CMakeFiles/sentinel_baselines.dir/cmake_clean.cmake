file(REMOVE_RECURSE
  "CMakeFiles/sentinel_baselines.dir/autotm.cc.o"
  "CMakeFiles/sentinel_baselines.dir/autotm.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/capuchin.cc.o"
  "CMakeFiles/sentinel_baselines.dir/capuchin.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/ial.cc.o"
  "CMakeFiles/sentinel_baselines.dir/ial.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/memory_mode.cc.o"
  "CMakeFiles/sentinel_baselines.dir/memory_mode.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/reference.cc.o"
  "CMakeFiles/sentinel_baselines.dir/reference.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/swap_schedule.cc.o"
  "CMakeFiles/sentinel_baselines.dir/swap_schedule.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/swapadvisor.cc.o"
  "CMakeFiles/sentinel_baselines.dir/swapadvisor.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/unified_memory.cc.o"
  "CMakeFiles/sentinel_baselines.dir/unified_memory.cc.o.d"
  "CMakeFiles/sentinel_baselines.dir/vdnn.cc.o"
  "CMakeFiles/sentinel_baselines.dir/vdnn.cc.o.d"
  "libsentinel_baselines.a"
  "libsentinel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
