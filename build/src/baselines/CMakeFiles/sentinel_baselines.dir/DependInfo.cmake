
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/autotm.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/autotm.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/autotm.cc.o.d"
  "/root/repo/src/baselines/capuchin.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/capuchin.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/capuchin.cc.o.d"
  "/root/repo/src/baselines/ial.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/ial.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/ial.cc.o.d"
  "/root/repo/src/baselines/memory_mode.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/memory_mode.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/memory_mode.cc.o.d"
  "/root/repo/src/baselines/reference.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/reference.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/reference.cc.o.d"
  "/root/repo/src/baselines/swap_schedule.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/swap_schedule.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/swap_schedule.cc.o.d"
  "/root/repo/src/baselines/swapadvisor.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/swapadvisor.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/swapadvisor.cc.o.d"
  "/root/repo/src/baselines/unified_memory.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/unified_memory.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/unified_memory.cc.o.d"
  "/root/repo/src/baselines/vdnn.cc" "src/baselines/CMakeFiles/sentinel_baselines.dir/vdnn.cc.o" "gcc" "src/baselines/CMakeFiles/sentinel_baselines.dir/vdnn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/sentinel_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/sentinel_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sentinel_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sentinel_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sentinel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
