# Empty compiler generated dependencies file for sentinel_baselines.
# This may be replaced when dependencies are built.
