file(REMOVE_RECURSE
  "libsentinel_baselines.a"
)
