file(REMOVE_RECURSE
  "CMakeFiles/sentinel_common.dir/logging.cc.o"
  "CMakeFiles/sentinel_common.dir/logging.cc.o.d"
  "CMakeFiles/sentinel_common.dir/stats.cc.o"
  "CMakeFiles/sentinel_common.dir/stats.cc.o.d"
  "CMakeFiles/sentinel_common.dir/table.cc.o"
  "CMakeFiles/sentinel_common.dir/table.cc.o.d"
  "libsentinel_common.a"
  "libsentinel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
