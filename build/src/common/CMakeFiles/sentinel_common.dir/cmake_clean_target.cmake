file(REMOVE_RECURSE
  "libsentinel_common.a"
)
