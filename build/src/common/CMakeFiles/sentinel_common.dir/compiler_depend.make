# Empty compiler generated dependencies file for sentinel_common.
# This may be replaced when dependencies are built.
