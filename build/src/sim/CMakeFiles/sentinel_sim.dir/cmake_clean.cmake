file(REMOVE_RECURSE
  "CMakeFiles/sentinel_sim.dir/bandwidth_channel.cc.o"
  "CMakeFiles/sentinel_sim.dir/bandwidth_channel.cc.o.d"
  "CMakeFiles/sentinel_sim.dir/event_queue.cc.o"
  "CMakeFiles/sentinel_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/sentinel_sim.dir/trace.cc.o"
  "CMakeFiles/sentinel_sim.dir/trace.cc.o.d"
  "libsentinel_sim.a"
  "libsentinel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
