file(REMOVE_RECURSE
  "CMakeFiles/sentinel_core.dir/bucketed.cc.o"
  "CMakeFiles/sentinel_core.dir/bucketed.cc.o.d"
  "CMakeFiles/sentinel_core.dir/interval_planner.cc.o"
  "CMakeFiles/sentinel_core.dir/interval_planner.cc.o.d"
  "CMakeFiles/sentinel_core.dir/migration_plan.cc.o"
  "CMakeFiles/sentinel_core.dir/migration_plan.cc.o.d"
  "CMakeFiles/sentinel_core.dir/runtime.cc.o"
  "CMakeFiles/sentinel_core.dir/runtime.cc.o.d"
  "CMakeFiles/sentinel_core.dir/sentinel_policy.cc.o"
  "CMakeFiles/sentinel_core.dir/sentinel_policy.cc.o.d"
  "libsentinel_core.a"
  "libsentinel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
