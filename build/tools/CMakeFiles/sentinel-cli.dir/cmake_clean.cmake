file(REMOVE_RECURSE
  "CMakeFiles/sentinel-cli.dir/sentinel_cli.cc.o"
  "CMakeFiles/sentinel-cli.dir/sentinel_cli.cc.o.d"
  "sentinel-cli"
  "sentinel-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
