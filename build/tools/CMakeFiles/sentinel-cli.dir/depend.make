# Empty dependencies file for sentinel-cli.
# This may be replaced when dependencies are built.
