file(REMOVE_RECURSE
  "CMakeFiles/bench_cxl_platform.dir/bench_cxl_platform.cc.o"
  "CMakeFiles/bench_cxl_platform.dir/bench_cxl_platform.cc.o.d"
  "bench_cxl_platform"
  "bench_cxl_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cxl_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
