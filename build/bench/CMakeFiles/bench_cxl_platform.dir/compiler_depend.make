# Empty compiler generated dependencies file for bench_cxl_platform.
# This may be replaced when dependencies are built.
