# Empty dependencies file for bench_fig8_large_batch.
# This may be replaced when dependencies are built.
