# Empty compiler generated dependencies file for bench_fig9_bandwidth.
# This may be replaced when dependencies are built.
