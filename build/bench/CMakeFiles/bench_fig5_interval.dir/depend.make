# Empty dependencies file for bench_fig5_interval.
# This may be replaced when dependencies are built.
