# Empty dependencies file for bench_fig12_gpu_throughput.
# This may be replaced when dependencies are built.
