# Empty dependencies file for bench_fig11_resnet_scaling.
# This may be replaced when dependencies are built.
