file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_migration.dir/bench_table4_migration.cc.o"
  "CMakeFiles/bench_table4_migration.dir/bench_table4_migration.cc.o.d"
  "bench_table4_migration"
  "bench_table4_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
