# Empty dependencies file for bench_table4_migration.
# This may be replaced when dependencies are built.
