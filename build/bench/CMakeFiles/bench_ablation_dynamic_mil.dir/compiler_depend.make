# Empty compiler generated dependencies file for bench_ablation_dynamic_mil.
# This may be replaced when dependencies are built.
