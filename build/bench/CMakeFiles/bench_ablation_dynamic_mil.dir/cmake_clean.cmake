file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynamic_mil.dir/bench_ablation_dynamic_mil.cc.o"
  "CMakeFiles/bench_ablation_dynamic_mil.dir/bench_ablation_dynamic_mil.cc.o.d"
  "bench_ablation_dynamic_mil"
  "bench_ablation_dynamic_mil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamic_mil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
