# Empty dependencies file for bench_table5_max_batch.
# This may be replaced when dependencies are built.
