file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_max_batch.dir/bench_table5_max_batch.cc.o"
  "CMakeFiles/bench_table5_max_batch.dir/bench_table5_max_batch.cc.o.d"
  "bench_table5_max_batch"
  "bench_table5_max_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_max_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
