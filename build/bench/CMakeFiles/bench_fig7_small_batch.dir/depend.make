# Empty dependencies file for bench_fig7_small_batch.
# This may be replaced when dependencies are built.
