# Empty dependencies file for gpu_training.
# This may be replaced when dependencies are built.
