file(REMOVE_RECURSE
  "CMakeFiles/gpu_training.dir/gpu_training.cpp.o"
  "CMakeFiles/gpu_training.dir/gpu_training.cpp.o.d"
  "gpu_training"
  "gpu_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
