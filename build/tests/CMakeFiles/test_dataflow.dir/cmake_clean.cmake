file(REMOVE_RECURSE
  "CMakeFiles/test_dataflow.dir/dataflow/test_cost_model.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_cost_model.cc.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/test_executor.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_executor.cc.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/test_executor_stalls.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_executor_stalls.cc.o.d"
  "CMakeFiles/test_dataflow.dir/dataflow/test_graph.cc.o"
  "CMakeFiles/test_dataflow.dir/dataflow/test_graph.cc.o.d"
  "test_dataflow"
  "test_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
