file(REMOVE_RECURSE
  "CMakeFiles/test_alloc.dir/alloc/test_arena.cc.o"
  "CMakeFiles/test_alloc.dir/alloc/test_arena.cc.o.d"
  "CMakeFiles/test_alloc.dir/alloc/test_reserved_pool.cc.o"
  "CMakeFiles/test_alloc.dir/alloc/test_reserved_pool.cc.o.d"
  "test_alloc"
  "test_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
