file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_bucketed.cc.o"
  "CMakeFiles/test_core.dir/core/test_bucketed.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_interval_planner.cc.o"
  "CMakeFiles/test_core.dir/core/test_interval_planner.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_migration_plan.cc.o"
  "CMakeFiles/test_core.dir/core/test_migration_plan.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_sentinel_policy.cc.o"
  "CMakeFiles/test_core.dir/core/test_sentinel_policy.cc.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
