file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_access_tracker.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_access_tracker.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_dram_cache.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_dram_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_hm.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_hm.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_page.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_page.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_page_table.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_page_table.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_tier.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_tier.cc.o.d"
  "test_mem"
  "test_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
