# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;15;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;20;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_alloc "/root/repo/build/tests/test_alloc")
set_tests_properties(test_alloc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;25;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dataflow "/root/repo/build/tests/test_dataflow")
set_tests_properties(test_dataflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;29;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;35;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_models "/root/repo/build/tests/test_models")
set_tests_properties(test_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;43;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_profile "/root/repo/build/tests/test_profile")
set_tests_properties(test_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;46;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;50;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baselines "/root/repo/build/tests/test_baselines")
set_tests_properties(test_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;56;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_harness "/root/repo/build/tests/test_harness")
set_tests_properties(test_harness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;59;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;62;sentinel_add_test;/root/repo/tests/CMakeLists.txt;0;")
