/**
 * @file
 * Fig. 10: sensitivity of Sentinel to the fast-memory size — step
 * time at 20/30/40/60/100% of each model's peak memory, relative to
 * fast-memory-only.
 *
 * Paper anchors: at 60% there is no loss vs fast-only; between 20%
 * and 40% the variance is at most ~17%.
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string only = argc > 1 ? argv[1] : "";
    bench::banner("Fig. 10 - sensitivity to fast memory size",
                  "Fig. 10, Sec. VII-B");

    const double fractions[] = { 0.2, 0.3, 0.4, 0.6, 1.0 };

    Table t("Fig. 10: Sentinel step time relative to fast-only",
            { "model", "20%", "30%", "40%", "60%", "100%" });

    for (const auto &model : bench::evaluationModels()) {
        if (!only.empty() && model != only)
            continue;
        harness::ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = models::modelSpec(model).small_batch;
        double fast_ms =
            harness::runExperiment(cfg, "fast-only").step_time_ms;

        auto &row = t.row().cell(model);
        for (double f : fractions) {
            cfg.fast_fraction = f;
            harness::Metrics m = harness::runExperiment(cfg, "sentinel");
            row.cell(m.step_time_ms / fast_ms, 3);
        }
    }
    t.printWithCsv(std::cout);

    std::cout << "\nValues are Sentinel's step time divided by the "
                 "fast-only step time (1.0 = parity).\nPaper anchors: "
                 "parity at 60% of peak; at most ~17% variance between "
                 "20%% and 40%%.\n";
    return 0;
}
