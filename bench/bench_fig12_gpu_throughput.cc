/**
 * @file
 * Fig. 12: GPU training throughput for UM, vDNN, AutoTM, SwapAdvisor,
 * Capuchin, and Sentinel-GPU at three batch sizes per model,
 * normalized to Unified Memory.
 *
 * Paper anchors: Sentinel-GPU reaches 1.1x-7.8x over UM, ~2x over
 * vDNN, +65% over SwapAdvisor, +17% over AutoTM, +16% over Capuchin.
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::banner("Fig. 12 - GPU training throughput (normalized to UM)",
                  "Fig. 12, Sec. VII-C");

    Table t("Fig. 12: throughput normalized to Unified Memory",
            { "model", "batch", "UM", "vDNN", "AutoTM", "SwapAdvisor",
              "Capuchin", "Sentinel" });

    const std::vector<std::string> policies = {
        "um", "vdnn", "autotm", "swapadvisor", "capuchin", "sentinel",
    };
    std::vector<harness::SweepCell> cells;
    for (const auto &model : bench::evaluationModels()) {
        if (!args.only.empty() && model != args.only)
            continue;
        const auto &spec = models::modelSpec(model);
        df::Graph probe = models::makeModel(model, spec.small_batch);
        std::uint64_t dev =
            mem::roundUpToPages(probe.peakMemoryBytes() * 3 / 5);

        int batches[3] = { spec.small_batch, spec.small_batch * 3 / 2,
                           spec.small_batch * 2 };
        for (int batch : batches) {
            harness::ExperimentConfig cfg;
            cfg.model = model;
            cfg.batch = batch;
            cfg.platform = harness::Platform::Gpu;
            cfg.fast_bytes = dev;
            for (const auto &p : policies)
                cells.push_back({ cfg, p });
        }
    }
    std::vector<harness::Metrics> results =
        harness::runSweep(cells, args.jobs);

    for (std::size_t ri = 0; ri < results.size();
         ri += policies.size()) {
        const harness::Metrics *row_m = &results[ri];
        const auto &um = row_m[0];
        auto &row =
            t.row().cell(um.model).cell(um.batch).cell(1.0, 2);
        for (std::size_t pi = 1; pi < policies.size(); ++pi) {
            const auto &m = row_m[pi];
            if (!m.supported || !m.feasible)
                row.cell("X");
            else
                row.cell(m.throughput / um.throughput, 2);
        }
    }
    t.printWithCsv(std::cout);

    std::cout << "\n'X' = unsupported graph (vDNN on LSTM/BERT) or "
                 "batch beyond the policy's\ndevice-memory reach.  "
                 "Paper anchors in the file header.\n";
    return 0;
}
