/**
 * @file
 * Fig. 12: GPU training throughput for UM, vDNN, AutoTM, SwapAdvisor,
 * Capuchin, and Sentinel-GPU at three batch sizes per model,
 * normalized to Unified Memory.
 *
 * Paper anchors: Sentinel-GPU reaches 1.1x-7.8x over UM, ~2x over
 * vDNN, +65% over SwapAdvisor, +17% over AutoTM, +16% over Capuchin.
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string only = argc > 1 ? argv[1] : "";
    bench::banner("Fig. 12 - GPU training throughput (normalized to UM)",
                  "Fig. 12, Sec. VII-C");

    Table t("Fig. 12: throughput normalized to Unified Memory",
            { "model", "batch", "UM", "vDNN", "AutoTM", "SwapAdvisor",
              "Capuchin", "Sentinel" });

    for (const auto &model : bench::evaluationModels()) {
        if (!only.empty() && model != only)
            continue;
        const auto &spec = models::modelSpec(model);
        df::Graph probe = models::makeModel(model, spec.small_batch);
        std::uint64_t dev =
            mem::roundUpToPages(probe.peakMemoryBytes() * 3 / 5);

        int batches[3] = { spec.small_batch, spec.small_batch * 3 / 2,
                           spec.small_batch * 2 };
        for (int batch : batches) {
            harness::ExperimentConfig cfg;
            cfg.model = model;
            cfg.batch = batch;
            cfg.platform = harness::Platform::Gpu;
            cfg.fast_bytes = dev;

            auto um = harness::runExperiment(cfg, "um");
            auto &row =
                t.row().cell(model).cell(batch).cell(1.0, 2);
            for (const char *p : { "vdnn", "autotm", "swapadvisor",
                                   "capuchin", "sentinel" }) {
                auto m = harness::runExperiment(cfg, p);
                if (!m.supported || !m.feasible)
                    row.cell("X");
                else
                    row.cell(m.throughput / um.throughput, 2);
            }
        }
    }
    t.printWithCsv(std::cout);

    std::cout << "\n'X' = unsupported graph (vDNN on LSTM/BERT) or "
                 "batch beyond the policy's\ndevice-memory reach.  "
                 "Paper anchors in the file header.\n";
    return 0;
}
