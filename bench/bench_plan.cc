/**
 * @file
 * Offline memory planning: interval-graph offset assignment vs.
 * Sentinel's greedy per-class co-allocation, across the model zoo and
 * the committed synthetic fuzz corpus.
 *
 * For each workload the bench lays out the long-lived tensor set both
 * ways and reports the static footprint, the live-peak lower bound,
 * and the fragmentation each solver leaves; then it runs the full
 * sentinel cell under both `planner=greedy` and `planner=interval` so
 * the footprint win can be read against the simulated peak fast-tier
 * occupancy and step time.  The interval plan can never be larger than
 * the class packing (it relaxes the same problem), and on graphs with
 * interleaved lifetimes it is strictly smaller.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "models/synthetic.hh"
#include "plan/offset_planner.hh"

using namespace sentinel;

namespace {

struct Workload {
    std::string model;
    int batch;
};

std::vector<Workload>
workloads(const std::string &only)
{
    std::vector<Workload> out;
    for (const auto &m : bench::evaluationModels())
        out.push_back({ m, models::modelSpec(m).small_batch });
    for (std::uint64_t seed : models::kCommittedFuzzSeeds)
        out.push_back({ "synthetic:" + std::to_string(seed), 4 });
    if (!only.empty())
        std::erase_if(out,
                      [&](const Workload &w) { return w.model != only; });
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::banner("offline memory planning - interval vs. greedy layout",
                  "Sec. IV-B co-allocation; hannk/TFLite-style planning");

    Table t("Static layout: greedy class packing vs. interval plan",
            { "model", "tensors", "greedy (MB)", "interval (MB)",
              "saved %", "live peak (MB)", "frag %", "peak fast g (MB)",
              "peak fast i (MB)", "step g (ms)", "step i (ms)" });

    int strictly_smaller = 0;
    int larger = 0;
    for (const Workload &w : workloads(args.only)) {
        df::Graph g = models::makeModel(w.model, w.batch);
        std::vector<plan::PlanTensor> pts = plan::tensorsFromGraph(
            g, /*include_preallocated=*/false, /*long_lived_only=*/true);
        plan::OffsetPlan layout =
            plan::assignOffsets(pts, plan::Solver::Greedy);

        harness::ExperimentConfig cfg;
        cfg.model = w.model;
        cfg.batch = w.batch;
        std::vector<harness::SweepCell> cells;
        cells.push_back({ cfg, "sentinel" });
        cells.back().cfg.planner = "greedy";
        cells.push_back({ cfg, "sentinel" });
        cells.back().cfg.planner = "interval";
        std::vector<harness::Metrics> m =
            harness::runSweep(cells, args.jobs);

        double greedy_mb = m[0].layout_mb;
        double interval_mb = m[1].layout_mb;
        if (interval_mb < greedy_mb)
            ++strictly_smaller;
        else if (interval_mb > greedy_mb)
            ++larger;
        t.row()
            .cell(w.model)
            .cell(static_cast<std::uint64_t>(pts.size()))
            .cell(greedy_mb)
            .cell(interval_mb)
            .cell(greedy_mb > 0.0
                      ? 100.0 * (greedy_mb - interval_mb) / greedy_mb
                      : 0.0,
                  1)
            .cell(static_cast<double>(layout.live_peak) / 1e6)
            .cell(layout.fragmentation() * 100.0, 1)
            .cell(m[0].peak_fast_mb)
            .cell(m[1].peak_fast_mb)
            .cell(m[0].step_time_ms)
            .cell(m[1].step_time_ms);
    }
    t.printWithCsv(std::cout);

    std::cout << strprintf(
        "\nInterval plan strictly smaller on %d workloads, larger on %d "
        "(must be 0 -- the class packing solves a restriction of the "
        "same problem).\n",
        strictly_smaller, larger);
    return larger == 0 ? 0 : 1;
}
