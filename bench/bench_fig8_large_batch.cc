/**
 * @file
 * Fig. 8: large-batch training with first-touch NUMA, Memory Mode,
 * AutoTM, and Sentinel, normalized to first-touch NUMA.  Fast memory
 * stays at 20% of each model's (large-batch) peak.
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::banner("Fig. 8 - large-batch training on Optane HM",
                  "Fig. 8, Sec. VII-B");

    Table t("Fig. 8: throughput normalized to first-touch NUMA "
            "(large batches)",
            { "model", "batch", "NUMA", "Memory Mode", "AutoTM",
              "Sentinel" });

    const std::vector<std::string> policies = { "numa", "memory-mode",
                                                "autotm", "sentinel" };
    std::vector<std::string> selected;
    std::vector<harness::SweepCell> cells;
    for (const auto &model : bench::evaluationModels()) {
        if (!args.only.empty() && model != args.only)
            continue;
        selected.push_back(model);
        harness::ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = models::modelSpec(model).large_batch;
        for (const auto &p : policies)
            cells.push_back({ cfg, p });
    }
    std::vector<harness::Metrics> results =
        harness::runSweep(cells, args.jobs);

    double sent_over_numa = 0.0;
    double sent_over_mm = 0.0;
    double sent_over_autotm = 0.0;
    int n = 0;
    for (std::size_t mi = 0; mi < selected.size(); ++mi) {
        const std::string &model = selected[mi];
        const harness::Metrics *row_m = &results[mi * policies.size()];
        const auto &numa = row_m[0];
        const auto &mm = row_m[1];
        const auto &autotm = row_m[2];
        const auto &sentinel = row_m[3];

        t.row()
            .cell(model)
            .cell(numa.batch)
            .cell(1.0, 2)
            .cell(numa.step_time_ms / mm.step_time_ms, 2)
            .cell(numa.step_time_ms / autotm.step_time_ms, 2)
            .cell(numa.step_time_ms / sentinel.step_time_ms, 2);

        sent_over_numa += numa.step_time_ms / sentinel.step_time_ms;
        sent_over_mm += mm.step_time_ms / sentinel.step_time_ms;
        sent_over_autotm += autotm.step_time_ms / sentinel.step_time_ms;
        ++n;
    }
    t.printWithCsv(std::cout);

    if (n > 0) {
        std::cout << strprintf(
            "\nSentinel vs NUMA %.2fx, vs Memory Mode %.2fx, vs AutoTM "
            "%.2fx (averages).\nPaper anchors: 1.7x, 1.2x and 1.1x "
            "respectively for models whose peak exceeds\nfast memory "
            "(Sec. VII-B).\n",
            sent_over_numa / n, sent_over_mm / n, sent_over_autotm / n);
    }
    return 0;
}
