/**
 * @file
 * Table V: maximum trainable batch size on the GPU platform, given a
 * fixed device memory budget, for plain TensorFlow (no migration),
 * vDNN, AutoTM, SwapAdvisor, Capuchin, and Sentinel-GPU.
 *
 * Paper anchors: Sentinel-GPU reaches 4.18x TensorFlow's batch on
 * average and 1.9x vDNN's (CNNs only); AutoTM, Capuchin and Sentinel
 * are comparable; SwapAdvisor trails Sentinel slightly (1.1x).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::banner("Table V - maximum batch size on the GPU platform",
                  "Table V, Sec. VII-C");

    // Device memory sized per model so searches stay tractable: half
    // of the small-batch peak (the paper fixes 16 GB for all models;
    // the ratio between policies is what Table V compares).
    Table t("Table V: max batch size (device memory = 50% of "
            "small-batch peak)",
            { "model", "device mem", "TF", "vDNN", "AutoTM",
              "SwapAdvisor", "Capuchin", "Sentinel",
              "Sentinel/TF" });

    for (const auto &model : bench::evaluationModels()) {
        if (!args.only.empty() && model != args.only)
            continue;
        const auto &spec = models::modelSpec(model);
        df::Graph probe = models::makeModel(model, spec.small_batch);
        std::uint64_t dev =
            mem::roundUpToPages(probe.peakMemoryBytes() / 2);

        // --jobs parallelizes each search's power-of-two probe ladder;
        // the refinement phase stays sequential (and so does the
        // answer).
        const int cap = spec.small_batch * 8;
        int tf = harness::maxBatchSearch(model, "tf", dev, cap,
                                         args.jobs);
        int vdnn = spec.has_convs
                       ? harness::maxBatchSearch(model, "vdnn", dev, cap,
                                                 args.jobs)
                       : -1;
        int autotm = harness::maxBatchSearch(model, "autotm", dev, cap,
                                             args.jobs);
        int advisor = harness::maxBatchSearch(model, "swapadvisor", dev,
                                              cap, args.jobs);
        int capuchin = harness::maxBatchSearch(model, "capuchin", dev,
                                               cap, args.jobs);
        int sentinel = harness::maxBatchSearch(model, "sentinel", dev,
                                               cap, args.jobs);

        t.row()
            .cell(model)
            .cell(formatBytes(static_cast<double>(dev)))
            .cell(tf)
            .cell(vdnn < 0 ? std::string("X (unsupported)")
                           : std::to_string(vdnn))
            .cell(autotm)
            .cell(advisor)
            .cell(capuchin)
            .cell(sentinel)
            .cell(tf > 0 ? static_cast<double>(sentinel) / tf : 0.0, 2);
    }
    t.printWithCsv(std::cout);

    std::cout << "\n'X' marks vDNN on recursive structures (LSTM, "
                 "BERT), which it cannot schedule\n(Sec. VII-C).\n";
    return 0;
}
