/**
 * @file
 * Chaos recovery: per-step time trajectory under injected faults.
 *
 * Not a paper figure — this exercises the robustness extension: the
 * profile goes stale mid-run (degraded bandwidth, a channel outage,
 * shrunk fast capacity, drifted compute/traffic) and the divergence
 * monitor re-plans against the observed environment.  Each scenario
 * compares four runs:
 *
 *   sentinel          monitor on (default): detect + re-plan
 *   sentinel-frozen   monitor off: keeps trusting the stale plan
 *   ial               reactive baseline (no plan to go stale)
 *   memory-mode       hardware cache baseline
 *
 * The interesting shape: sentinel and sentinel-frozen are identical
 * until the fault lands; afterwards the monitored run converges to the
 * plan a fresh profile of the degraded machine would have produced
 * (tests pin it within 15% of that reference), while a fault mild
 * enough for the stale plan to absorb must leave the monitor quiet and
 * the two runs bit-identical.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/fault_injector.hh"

using namespace sentinel;

namespace {

struct Scenario {
    const char *name;
    const char *spec;
};

double
stepMs(const harness::StepTrace &tr, int s)
{
    return s < static_cast<int>(tr.steps.size())
               ? toMillis(tr.steps[s].step_time)
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    std::string model = args.only.empty() ? "resnet32" : args.only;
    bench::banner("chaos recovery - re-planning under injected faults",
                  "robustness extension of Sec. IV-D/IV-E");

    // The first two are severe enough to trip the monitor (the plan is
    // unsalvageable); the last two are absorbed by the existing plan —
    // the monitor must stay quiet and match the frozen run exactly.
    const std::vector<Scenario> scenarios = {
        { "bw-degrade", "bw:step=6,factor=0.15" },
        { "bw+shrink", "bw:step=6,factor=0.15;shrink:step=6,factor=0.7" },
        { "stall", "stall:step=6,ms=4" },
        { "drift", "jitter:step=6,amp=0.2;drift:step=6,factor=1.25" },
    };

    harness::ExperimentConfig base;
    base.model = model;
    base.batch = models::modelSpec(model).small_batch;
    base.steps = 16;
    base.warmup = 10;

    for (const auto &sc : scenarios) {
        harness::ExperimentConfig cfg = base;
        cfg.chaos = sc.spec;
        harness::ExperimentConfig frozen = cfg;
        frozen.sentinel.enable_divergence_monitor = false;

        harness::StepTrace sen =
            harness::runExperimentSteps(cfg, "sentinel");
        harness::StepTrace off =
            harness::runExperimentSteps(frozen, "sentinel");
        harness::StepTrace ial =
            harness::runExperimentSteps(cfg, "ial");
        harness::StepTrace mm =
            harness::runExperimentSteps(cfg, "memory-mode");

        Table t(strprintf("%s: --chaos '%s' (%s, batch %d)", sc.name,
                          sc.spec, model.c_str(), base.batch),
                { "step", "sentinel (ms)", "frozen plan (ms)",
                  "ial (ms)", "memory-mode (ms)" });
        for (int s = 0; s < base.steps; ++s) {
            t.row()
                .cell(s)
                .cell(stepMs(sen, s), 2)
                .cell(stepMs(off, s), 2)
                .cell(stepMs(ial, s), 2)
                .cell(stepMs(mm, s), 2);
        }
        t.printWithCsv(std::cout);

        double sen_final = stepMs(sen, base.steps - 1);
        double off_final = stepMs(off, base.steps - 1);
        std::cout << strprintf(
            "%s: divergence=%d replans=%d trial=%s; final step %.2f ms "
            "monitored vs %.2f ms frozen (%.1f%%)\n\n",
            sc.name, sen.metrics.divergence_events, sen.metrics.replans,
            sen.metrics.trial_state.c_str(), sen_final, off_final,
            off_final > 0.0 ? 100.0 * sen_final / off_final : 0.0);
    }
    return 0;
}
