/**
 * @file
 * Table III: evaluation models — batch sizes, peak memory, and
 * Sentinel's runtime/memory overheads (profiling + test-and-trial
 * steps, profiling-phase memory overhead), plus the profiling-step
 * slowdown of Sec. VII-B.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"

int
main()
{
    using namespace sentinel;
    bench::banner("Table III - models and Sentinel overheads",
                  "Table III, Sec. VII-B");

    Table t("Table III: DNN models",
            { "model", "batch (S/L)", "layers", "ops", "tensors",
              "peak mem (S)", "peak mem (L)", "prof+trial steps",
              "prof slowdown", "mem overhead" });

    for (const auto &spec : models::modelZoo()) {
        df::Graph small = models::makeModel(spec.name, spec.small_batch);
        df::Graph large = models::makeModel(spec.name, spec.large_batch);

        // Profiling overheads measured at the small batch.
        auto cfg = core::RuntimeConfig::optane(
            mem::roundUpToPages(small.peakMemoryBytes() / 5));
        mem::HeterogeneousMemory phm(cfg.fast, cfg.slow, cfg.migration);
        prof::Profiler profiler(cfg.profiler);
        auto profile = profiler.profile(small, phm, cfg.exec);

        // Trial steps come from a short training run.
        harness::ExperimentConfig ec;
        ec.model = spec.name;
        ec.batch = spec.small_batch;
        harness::Metrics m = harness::runExperiment(ec, "sentinel");

        t.row()
            .cell(spec.name)
            .cell(strprintf("%d / %d", spec.small_batch,
                            spec.large_batch))
            .cell(small.numLayers())
            .cell(static_cast<std::uint64_t>(small.numOps()))
            .cell(static_cast<std::uint64_t>(small.numTensors()))
            .cell(formatBytes(
                static_cast<double>(small.peakMemoryBytes())))
            .cell(formatBytes(
                static_cast<double>(large.peakMemoryBytes())))
            .cell(strprintf("1 + %d", m.trial_steps))
            .cell(strprintf("%.1fx", profile.profilingSlowdown()))
            .cell(strprintf("%.2f%%", 100.0 * profile.memoryOverhead()));
    }
    t.printWithCsv(std::cout);

    std::cout << "\nPaper anchors: ~1.8 profiling+trial steps on "
                 "average, profiling step extended\nby up to 5x, memory "
                 "overhead at most 2.4% (Sec. VII-B).\n";
    return 0;
}
