/**
 * @file
 * Fig. 13: performance breakdown on the GPU platform — the fraction
 * of each step spent on exposed migration and on recomputation for
 * vDNN, AutoTM, SwapAdvisor, Capuchin, and Sentinel-GPU — plus
 * Sentinel's own ablation: "direct" migration (no interval planning,
 * no reservation), "w/ det. MI" (planned intervals, no reservation),
 * and "w/ all" (full Sentinel).
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string only = argc > 1 ? argv[1] : "";
    bench::banner("Fig. 13 - breakdown and Sentinel ablation",
                  "Fig. 13, Sec. VII-C");

    Table t("Fig. 13a: exposed migration / recomputation share of one "
            "step",
            { "model", "policy", "step (ms)", "exposed (ms)",
              "exposed %", "recompute (ms)", "recompute %" });
    Table abl("Fig. 13b: Sentinel-GPU ablation",
              { "model", "variant", "step (ms)", "exposed %",
                "vs full Sentinel" });

    for (const auto &model : bench::evaluationModels()) {
        if (!only.empty() && model != only)
            continue;
        const auto &spec = models::modelSpec(model);
        df::Graph probe = models::makeModel(model, spec.small_batch);

        harness::ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = spec.small_batch * 2; // the largest Fig. 12 batch
        cfg.platform = harness::Platform::Gpu;
        cfg.fast_bytes =
            mem::roundUpToPages(probe.peakMemoryBytes() * 3 / 5);

        for (const char *p : { "vdnn", "autotm", "swapadvisor",
                               "capuchin", "sentinel" }) {
            auto m = harness::runExperiment(cfg, p);
            if (!m.supported) {
                t.row().cell(model).cell(p).cell("X").cell("-").cell(
                    "-").cell("-").cell("-");
                continue;
            }
            t.row()
                .cell(model)
                .cell(p)
                .cell(m.step_time_ms, 2)
                .cell(m.exposed_ms, 2)
                .cell(100.0 * m.exposed_ms / m.step_time_ms, 1)
                .cell(m.recompute_ms, 2)
                .cell(100.0 * m.recompute_ms / m.step_time_ms, 1);
        }

        // Sentinel ablation.
        struct Variant {
            const char *name;
            bool planner;
            bool pool;
            bool coalloc;
        };
        const Variant variants[] = {
            { "direct migration", false, false, true },
            { "w/ det. MI", true, false, true },
            { "w/ all", true, true, true },
            // Repo extra: quantify the co-allocation (false-sharing)
            // contribution the paper attributes 9-21% to.
            { "w/ all, packed layout", true, true, false },
        };
        double full_ms = 0.0;
        for (const Variant &v : variants) {
            cfg.sentinel.use_interval_planner = v.planner;
            cfg.sentinel.use_reserved_pool = v.pool;
            cfg.sentinel.use_coalloc = v.coalloc;
            auto m = harness::runExperiment(cfg, "sentinel");
            if (v.planner && v.pool && v.coalloc)
                full_ms = m.step_time_ms;
            abl.row()
                .cell(model)
                .cell(v.name)
                .cell(m.step_time_ms, 2)
                .cell(100.0 * m.exposed_ms / m.step_time_ms, 1)
                .cell(full_ms > 0.0
                          ? strprintf("%.2fx", m.step_time_ms / full_ms)
                          : "-");
        }
        cfg.sentinel = core::SentinelOptions{};
    }
    t.printWithCsv(std::cout);
    abl.printWithCsv(std::cout);

    std::cout << "\nPaper anchors: vDNN exposes ~3x more migration than "
                 "Sentinel-GPU; SwapAdvisor's\nmigration overhead is "
                 "81% larger; Capuchin spends ~11% of the step "
                 "recomputing;\nthe interval planner and the space "
                 "reservation each buy several percent\n(Sec. VII-C, "
                 "Fig. 13).\n";
    return 0;
}
