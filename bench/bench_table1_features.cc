/**
 * @file
 * Table I: qualitative comparison of HM management solutions.
 *
 * The paper's feature matrix.  Static by nature; printed here so the
 * reproduction's bench suite covers every table, and cross-checked
 * against which mechanisms the implementations actually contain.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using sentinel::Table;
    sentinel::bench::banner("Table I - feature comparison",
                            "Table I, Sec. II");

    Table t("Table I: memory-management solutions for DNN training on HM",
            { "solution", "dynamic profiling", "min fast-mem usage",
              "graph agnostic", "counts mem accesses",
              "avoids false sharing", "platform" });
    auto row = [&t](const char *n, const char *a, const char *b,
                    const char *c, const char *d, const char *e,
                    const char *f) {
        t.row().cell(n).cell(a).cell(b).cell(c).cell(d).cell(e).cell(f);
    };
    row("vDNN [6]", "no", "no (conv inputs only)", "no", "no", "no",
        "GPU");
    row("AutoTM [7]", "no (static)", "yes", "yes", "no", "no",
        "CPU+GPU");
    row("SwapAdvisor [8]", "yes (slow GA)", "no", "yes", "no", "no",
        "GPU");
    row("Capuchin [9]", "yes", "yes", "yes", "no", "no", "GPU");
    row("IAL [19]", "yes (page level)", "no", "yes", "page level only",
        "no", "CPU");
    row("Memory Mode", "hardware cache", "no", "yes", "no", "no",
        "CPU");
    row("Sentinel (this repo)", "yes (1 step)", "yes", "yes",
        "yes (tensor level)", "yes", "CPU+GPU");
    t.printWithCsv(std::cout);
    return 0;
}
