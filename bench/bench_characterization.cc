/**
 * @file
 * The Sec. III characterization study (Observations 1-3, Figs. 1-2).
 *
 * For each model:
 *  - Observation 1: counts of small / short-lived tensors;
 *  - Observation 2: tensors and bytes per access-count bucket
 *    (<=10 / (10,100] / >100 main-memory accesses);
 *  - Observation 3: page-level false sharing — the total size of
 *    "coldest bucket" objects under tensor-level vs page-level
 *    profiling (the paper's 908 MB vs 764 MB comparison shape).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string only = argc > 1 ? argv[1] : "";
    bench::banner("Tensor characterization (Observations 1-3)",
                  "Sec. III, Figs. 1-2");

    Table obs1("Observation 1: small, short-lived tensors",
               { "model", "tensors", "short-lived", "% short",
                 "small-of-short %", "peak short-lived", "% of peak" });
    Table obs2("Observation 2: hot/cold skew (tensor-level profiling)",
               { "model", "<=10 acc (count/bytes)",
                 "(10,100] acc (count/bytes)", ">100 acc (count/bytes)",
                 ">100 bytes % of total" });
    Table obs3("Observation 3: page-level false sharing",
               { "model", "coldest-bucket bytes (tensor-level)",
                 "coldest-bucket bytes (page-level)",
                 "bytes mis-attributed by page profiling" });

    for (const auto &spec : models::modelZoo()) {
        if (!only.empty() && spec.name != only)
            continue;
        df::Graph g = models::makeModel(spec.name, spec.small_batch);

        // --- Observation 1 (pure graph properties) -------------------
        std::size_t n_short = 0;
        std::size_t n_small_short = 0;
        for (const auto &t : g.tensors()) {
            if (t.shortLived()) {
                ++n_short;
                if (t.small())
                    ++n_small_short;
            }
        }
        obs1.row()
            .cell(spec.name)
            .cell(static_cast<std::uint64_t>(g.numTensors()))
            .cell(static_cast<std::uint64_t>(n_short))
            .cell(100.0 * static_cast<double>(n_short) /
                      static_cast<double>(g.numTensors()),
                  1)
            .cell(100.0 * static_cast<double>(n_small_short) /
                      static_cast<double>(n_short),
                  1)
            .cell(formatBytes(
                static_cast<double>(g.peakShortLivedBytes())))
            .cell(100.0 * static_cast<double>(g.peakShortLivedBytes()) /
                      static_cast<double>(g.peakMemoryBytes()),
                  1);

        // --- Observations 2 & 3 (one profiling step) ------------------
        auto cfg = core::RuntimeConfig::optane(1ull << 30);
        prof::Profiler profiler(cfg.profiler);

        mem::HeterogeneousMemory hm1(cfg.fast, cfg.slow, cfg.migration);
        auto profile = profiler.profile(g, hm1, cfg.exec);

        Histogram tensor_hist({ 10, 100 });
        for (const auto &tp : profile.db.tensors())
            tensor_hist.add(tp.accesses_per_page,
                            static_cast<double>(tp.bytes));
        obs2.row()
            .cell(spec.name)
            .cell(strprintf("%llu / %s",
                            static_cast<unsigned long long>(
                                tensor_hist.bucketCount(0)),
                            formatBytes(tensor_hist.bucketWeight(0))
                                .c_str()))
            .cell(strprintf("%llu / %s",
                            static_cast<unsigned long long>(
                                tensor_hist.bucketCount(1)),
                            formatBytes(tensor_hist.bucketWeight(1))
                                .c_str()))
            .cell(strprintf("%llu / %s",
                            static_cast<unsigned long long>(
                                tensor_hist.bucketCount(2)),
                            formatBytes(tensor_hist.bucketWeight(2))
                                .c_str()))
            .cell(100.0 * tensor_hist.bucketWeight(2) /
                      tensor_hist.totalWeight(),
                  2);

        mem::HeterogeneousMemory hm2(cfg.fast, cfg.slow, cfg.migration);
        auto pages = profiler.profilePageLevel(g, hm2, cfg.exec);
        Histogram page_hist({ 10, 100 });
        for (const auto &pe : pages)
            page_hist.add(static_cast<double>(pe.accesses),
                          static_cast<double>(mem::kPageSize));

        double cold_tensor = tensor_hist.bucketWeight(0);
        double cold_page = page_hist.bucketWeight(0);
        obs3.row()
            .cell(spec.name)
            .cell(formatBytes(cold_tensor))
            .cell(formatBytes(cold_page))
            .cell(formatBytes(cold_tensor - cold_page));
    }

    obs1.printWithCsv(std::cout);
    obs2.printWithCsv(std::cout);
    obs3.printWithCsv(std::cout);

    std::cout
        << "\nPaper anchors (ResNet-32): 92% of tensors short-lived, 98% "
           "of those small;\ncold tensors (<=10 accesses) are most bytes "
           "while >100-access tensors are a tiny\nslice; page-level "
           "profiling under-reports cold bytes (908 MB vs 764 MB) "
           "because\ncold tensors share pages with hotter ones "
           "(Sec. III-B).\n";
    return 0;
}
