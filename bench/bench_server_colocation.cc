/**
 * @file
 * Multi-job server: co-location depth sweep on one simulated HM node.
 *
 * Not a paper figure — this exercises the multi-job server extension
 * (src/server): N trainings share one node's fast tier under capacity
 * quotas, FIFO admission, and the global migration-bandwidth arbiter.
 *
 * The sweep admits a fixed mixed job set one job at a time (depth 1 =
 * the first job alone, depth 4 = all four co-located) and reports each
 * tenant's SLO against its own solo baseline: p50/p99 step time, queue
 * wait, bandwidth-throttle time, and slowdown.  Per-job *traffic* is
 * bit-identical to solo at every depth by construction — the numbers
 * below isolate what co-location costs in pure timing.
 */

#include <iostream>

#include "bench_util.hh"
#include "server/oracle.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::banner("server co-location - quota + bandwidth sharing",
                  "multi-job extension of Sec. III-B/IV-C");

    server::ServerConfig cfg;
    cfg.fast_bytes = 64ull << 20;
    cfg.default_steps = 8;
    cfg.default_warmup = 3;
    cfg.jobs = args.jobs;

    // Two migrating CIFAR ResNets plus two resident synthetics: enough
    // tension on the promote channel to show arbitration without
    // making the solo phase expensive.
    std::vector<server::JobSpec> mix = server::JobSpec::parseList(
        "model=resnet32 quota=0.3 prio=2;"
        "model=resnet20 quota=0.25;"
        "model=synthetic:9 quota=0.2;"
        "model=synthetic:123 quota=0.2 arrival-ms=1");

    double solo_sum_ms = 0.0;
    for (std::size_t depth = 1; depth <= mix.size(); ++depth) {
        std::vector<server::JobSpec> specs(mix.begin(),
                                           mix.begin() + depth);
        server::ServerResult r = server::runServer(cfg, specs);

        Table t(strprintf("depth %zu: %zu job(s) on a %.0f MB node",
                          depth, depth,
                          static_cast<double>(cfg.fast_bytes) / 1e6),
                { "job", "status", "queue (ms)", "p50 (ms)", "p99 (ms)",
                  "throttle (ms)", "slowdown" });
        for (const auto &j : r.jobs) {
            t.row().cell(j.spec.name).cell(
                server::jobStatusName(j.status));
            if (j.status == server::JobStatus::Completed)
                t.cell(j.slo.queue_wait_ms, 2)
                    .cell(j.slo.step_ms.p50, 2)
                    .cell(j.slo.step_ms.p99, 2)
                    .cell(j.slo.throttle_ms, 2)
                    .cell(j.slo.slowdown, 3);
            else
                t.cell("-").cell("-").cell("-").cell("-").cell("-");
        }
        t.printWithCsv(std::cout);

        if (depth == 1 && !r.jobs.empty())
            solo_sum_ms = toMillis(r.makespan);
        std::cout << strprintf(
            "depth %zu: makespan %.2f ms, aggregate %.1f samples/s, "
            "node DMA %.1f MB promoted / %.1f MB demoted, peak "
            "committed %.1f MB\n\n",
            depth, toMillis(r.makespan), r.aggregate_throughput,
            static_cast<double>(r.promoted_bytes) / 1e6,
            static_cast<double>(r.demoted_bytes) / 1e6,
            static_cast<double>(r.peak_committed) / 1e6);
    }

    // Serial reference: the same four jobs one after another (nothing
    // shared) — the gap to depth 4's makespan is what co-location buys.
    double serial_ms = 0.0;
    for (const auto &spec : mix) {
        server::ServerResult r = server::runServer(cfg, { spec });
        serial_ms += toMillis(r.makespan);
    }
    std::cout << strprintf(
        "serial (one job at a time): %.2f ms total; first job alone "
        "took %.2f ms\n",
        serial_ms, solo_sum_ms);
    return 0;
}
