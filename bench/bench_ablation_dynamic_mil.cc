/**
 * @file
 * Repo extra (Sec. IV-E discussion): does a per-interval dynamic
 * migration interval length beat one well-chosen global MIL?
 *
 * The paper argues no — Cases 2 and 3 are rare once MIL is planned
 * from Eq. 1/Eq. 2, so the extra search buys little.  This bench
 * measures both variants across the model zoo.
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string only = argc > 1 ? argv[1] : "";
    bench::banner("Ablation - dynamic vs static migration intervals",
                  "Sec. IV-E discussion");

    Table t("Dynamic vs static interval lengths (fast mem = 20% of "
            "peak)",
            { "model", "static MIL", "static (ms)", "dynamic intervals",
              "dynamic (ms)", "dynamic benefit" });

    for (const auto &model : bench::evaluationModels()) {
        if (!only.empty() && model != only)
            continue;
        harness::ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = models::modelSpec(model).small_batch;

        auto fixed = harness::runExperiment(cfg, "sentinel");
        cfg.sentinel.use_dynamic_intervals = true;
        auto dynamic = harness::runExperiment(cfg, "sentinel");

        t.row()
            .cell(model)
            .cell(fixed.mil)
            .cell(fixed.step_time_ms, 2)
            .cell(dynamic.mil) // nominal first-interval length
            .cell(dynamic.step_time_ms, 2)
            .cell(strprintf("%+.1f%%", 100.0 * (fixed.step_time_ms -
                                                dynamic.step_time_ms) /
                                           fixed.step_time_ms));
    }
    t.printWithCsv(std::cout);

    std::cout << "\nPaper's position (Sec. IV-E): dynamic interval "
                 "lengths bring minimal benefit\nbecause Cases 2 and 3 "
                 "rarely occur once MIL is planned; the search cost is "
                 "not\nworth it.  Positive numbers above would argue "
                 "otherwise.\n";
    return 0;
}
