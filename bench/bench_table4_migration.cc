/**
 * @file
 * Table IV: total migrated data per training step for IAL, AutoTM and
 * Sentinel (standalone version; bench_fig7_small_batch prints it from
 * the same runs as Fig. 7).
 *
 * Paper anchors: Sentinel migrates 85% more than IAL and 32% more
 * than AutoTM — and hides it under training.
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string only = argc > 1 ? argv[1] : "";
    bench::banner("Table IV - migrated data per training step",
                  "Table IV, Sec. VII-B");

    Table t("Table IV: migrated MB per step (fast mem = 20% of peak)",
            { "model", "IAL", "AutoTM", "Sentinel",
              "Sentinel vs IAL", "Sentinel vs AutoTM" });

    for (const auto &model : bench::evaluationModels()) {
        if (!only.empty() && model != only)
            continue;
        harness::ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = models::modelSpec(model).small_batch;

        auto ial = harness::runExperiment(cfg, "ial");
        auto autotm = harness::runExperiment(cfg, "autotm");
        auto sentinel = harness::runExperiment(cfg, "sentinel");

        auto ratio = [](double a, double b) {
            return b > 0.0 ? strprintf("%.2fx", a / b)
                           : std::string("-");
        };
        t.row()
            .cell(model)
            .cell(ial.migrated_mb(), 1)
            .cell(autotm.migrated_mb(), 1)
            .cell(sentinel.migrated_mb(), 1)
            .cell(ratio(sentinel.migrated_mb(), ial.migrated_mb()))
            .cell(ratio(sentinel.migrated_mb(), autotm.migrated_mb()));
    }
    t.printWithCsv(std::cout);
    return 0;
}
