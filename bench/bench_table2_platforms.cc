/**
 * @file
 * Table II: the two evaluation platforms, as configured in this
 * reproduction's simulator presets.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"

int
main()
{
    using namespace sentinel;
    bench::banner("Table II - evaluation platforms", "Table II, Sec. VII");

    auto cpu = core::RuntimeConfig::optane(192ull << 30);
    auto gpu = core::RuntimeConfig::gpu(16ull << 30);

    Table t("Table II: simulated platform parameters",
            { "platform", "tier", "read BW", "write BW", "read lat",
              "write lat", "migration BW (in/out)", "compute" });
    auto row = [&t](const char *platform, const mem::TierParams &p,
                    const core::RuntimeConfig &cfg) {
        t.row()
            .cell(platform)
            .cell(p.name)
            .cell(strprintf("%.0f GB/s", p.read_bw / 1e9))
            .cell(strprintf("%.0f GB/s", p.write_bw / 1e9))
            .cell(strprintf("%lld ns",
                            static_cast<long long>(p.read_latency)))
            .cell(strprintf("%lld ns",
                            static_cast<long long>(p.write_latency)))
            .cell(strprintf("%.0f / %.0f GB/s",
                            cfg.migration.promote_bw / 1e9,
                            cfg.migration.demote_bw / 1e9))
            .cell(strprintf("%.1f TFLOP/s",
                            cfg.exec.compute_flops / 1e12));
    };
    row("Optane HM (CPU)", cpu.fast, cpu);
    row("Optane HM (CPU)", cpu.slow, cpu);
    row("GPU HM (V100)", gpu.fast, gpu);
    row("GPU HM (V100)", gpu.slow, gpu);
    t.printWithCsv(std::cout);

    std::cout << "\nNotes: the slow tier of the GPU platform is host "
                 "memory as seen from the GPU\n(PCIe-limited), matching "
                 "Sec. V; migration uses two channels that overlap\nwith "
                 "compute, matching the paper's helper threads (Sec. "
                 "VI).\n";
    return 0;
}
