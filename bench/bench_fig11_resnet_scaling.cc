/**
 * @file
 * Fig. 11: ResNet scaling — peak memory consumption vs the minimum
 * fast-memory size with which Sentinel performs like fast-only.
 *
 * The paper's point: peak memory grows quickly with model depth while
 * the required fast memory grows much more slowly, thanks to adaptive
 * layer-based migration.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace sentinel;

namespace {

/**
 * Smallest fast fraction (out of a fixed grid) where Sentinel is
 * within @p tolerance of fast-only.
 */
double
minFastFraction(const std::string &model, int batch, double fast_ms,
                double tolerance)
{
    const double grid[] = { 0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0 };
    for (double f : grid) {
        harness::ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = batch;
        cfg.fast_fraction = f;
        harness::Metrics m = harness::runExperiment(cfg, "sentinel");
        if (m.step_time_ms <= fast_ms * (1.0 + tolerance))
            return f;
    }
    return 1.0;
}

} // namespace

int
main()
{
    bench::banner("Fig. 11 - ResNet scaling study",
                  "Fig. 11, Sec. VII-B");

    const char *variants[] = { "resnet20", "resnet32", "resnet44",
                               "resnet56", "resnet110", "resnet152",
                               "resnet200" };
    const int batch = 16;
    const double tolerance = 0.05; // "performs the same": within 5%

    Table t("Fig. 11: peak memory vs minimum fast memory for parity",
            { "variant", "layers", "peak memory", "min fast memory",
              "min fraction of peak" });

    for (const char *v : variants) {
        df::Graph g = models::makeModel(v, batch);
        harness::ExperimentConfig cfg;
        cfg.model = v;
        cfg.batch = batch;
        double fast_ms =
            harness::runExperiment(cfg, "fast-only").step_time_ms;
        double frac = minFastFraction(v, batch, fast_ms, tolerance);
        double min_bytes =
            static_cast<double>(g.peakMemoryBytes()) * frac;

        t.row()
            .cell(v)
            .cell(g.numLayers())
            .cell(formatBytes(static_cast<double>(g.peakMemoryBytes())))
            .cell(formatBytes(min_bytes))
            .cell(strprintf("%.0f%%", 100.0 * frac));
    }
    t.printWithCsv(std::cout);

    std::cout << "\nPaper anchor: peak memory rises quickly with depth "
                 "while the fast-memory size\nneeded for parity rises "
                 "much more slowly (Fig. 11).\n";
    return 0;
}
