/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * Every binary prints (a) a human-readable table matching the paper's
 * rows/series and (b) the same data as CSV, so plots can be
 * regenerated offline.
 */

#ifndef SENTINEL_BENCH_BENCH_UTIL_HH
#define SENTINEL_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "models/registry.hh"

namespace sentinel::bench {

/** The five evaluation models, in the paper's presentation order. */
inline std::vector<std::string>
evaluationModels()
{
    return { "resnet32", "resnet200", "bert_large",
             "lstm",     "mobilenet", "dcgan" };
}

inline double
speedupOver(double baseline_ms, double policy_ms)
{
    return policy_ms > 0.0 ? baseline_ms / policy_ms : 0.0;
}

inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "\n=================================================="
              << "\n Sentinel reproduction - " << what << "\n (paper: "
              << paper_ref << ")"
              << "\n==================================================\n";
}

} // namespace sentinel::bench

#endif // SENTINEL_BENCH_BENCH_UTIL_HH
