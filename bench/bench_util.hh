/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * Every binary prints (a) a human-readable table matching the paper's
 * rows/series and (b) the same data as CSV, so plots can be
 * regenerated offline.
 */

#ifndef SENTINEL_BENCH_BENCH_UTIL_HH
#define SENTINEL_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "models/registry.hh"

namespace sentinel::bench {

/**
 * Command line shared by the figure/table binaries: an optional
 * positional model filter plus --jobs N to fan the experiment cells
 * out over a worker pool (results are identical for any jobs value).
 */
struct BenchArgs {
    std::string only; ///< run a single model (empty = all)
    int jobs = 1;
};

inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string s = argv[i];
        if (s.rfind("--jobs=", 0) == 0)
            args.jobs = std::atoi(s.c_str() + 7);
        else if (s == "--jobs" && i + 1 < argc)
            args.jobs = std::atoi(argv[++i]);
        else
            args.only = s;
    }
    return args;
}

/** The five evaluation models, in the paper's presentation order. */
inline std::vector<std::string>
evaluationModels()
{
    return { "resnet32", "resnet200", "bert_large",
             "lstm",     "mobilenet", "dcgan" };
}

inline double
speedupOver(double baseline_ms, double policy_ms)
{
    return policy_ms > 0.0 ? baseline_ms / policy_ms : 0.0;
}

inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "\n=================================================="
              << "\n Sentinel reproduction - " << what << "\n (paper: "
              << paper_ref << ")"
              << "\n==================================================\n";
}

} // namespace sentinel::bench

#endif // SENTINEL_BENCH_BENCH_UTIL_HH
