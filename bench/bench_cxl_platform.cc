/**
 * @file
 * Repo extra: how much does tensor-level management matter as the
 * slow tier improves?  Re-runs the Fig. 7 core comparison with the
 * slow tier swapped from Optane PMM to CXL-attached DDR (a faster,
 * lower-latency technology that postdates the paper).
 *
 * Expected shape: the fast/slow gap narrows, every policy improves,
 * and Sentinel's edge over unmanaged placement shrinks but stays
 * positive — HM management pays in proportion to the tier gap.
 */

#include <iostream>
#include <memory>

#include "baselines/ial.hh"
#include "baselines/reference.hh"
#include "bench_util.hh"
#include "core/sentinel_policy.hh"
#include "profile/profiler.hh"

using namespace sentinel;

namespace {

struct Row {
    double slow_only = 0.0;
    double numa = 0.0;
    double ial = 0.0;
    double sentinel = 0.0;
    double fast_only = 0.0;
};

double
steadyMs(const df::Graph &g, const core::RuntimeConfig &cfg,
         df::MemoryPolicy &policy)
{
    mem::HeterogeneousMemory hm(cfg.fast, cfg.slow, cfg.migration);
    df::Executor ex(g, hm, cfg.exec, policy);
    return toMillis(ex.run(9).back().step_time);
}

Row
runPlatform(const df::Graph &g, core::RuntimeConfig cfg,
            std::uint64_t fast20, std::uint64_t fast_all)
{
    Row r;
    cfg.fast.capacity = fast20;

    mem::HeterogeneousMemory prof_hm(cfg.fast, cfg.slow, cfg.migration);
    prof::Profiler profiler(cfg.profiler);
    auto profile = profiler.profile(g, prof_hm, cfg.exec);

    auto slow = baselines::makeSlowOnly();
    r.slow_only = steadyMs(g, cfg, *slow);
    auto numa = baselines::makeFirstTouchNuma();
    r.numa = steadyMs(g, cfg, *numa);
    baselines::IalPolicy ial;
    r.ial = steadyMs(g, cfg, ial);
    core::SentinelPolicy sentinel(profile.db);
    r.sentinel = steadyMs(g, cfg, sentinel);

    cfg.fast.capacity = fast_all;
    auto fast = baselines::makeFastOnly();
    r.fast_only = steadyMs(g, cfg, *fast);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "resnet32";
    bench::banner("Slow-tier technology study: Optane PMM vs CXL DDR",
                  "repo extra; cf. Sec. I's motivation");

    df::Graph g =
        models::makeModel(model, models::modelSpec(model).small_batch);
    std::uint64_t fast20 =
        mem::roundUpToPages(g.peakMemoryBytes() / 5);
    std::uint64_t fast_all =
        mem::roundUpToPages(g.peakMemoryBytes() * 2);

    Row optane = runPlatform(g, core::RuntimeConfig::optane(fast20),
                             fast20, fast_all);
    Row cxl =
        runPlatform(g, core::RuntimeConfig::cxl(fast20), fast20,
                    fast_all);

    Table t("Step time (ms), fast tier at 20% of peak (" + model + ")",
            { "slow tier", "slow-only", "first-touch", "IAL",
              "Sentinel", "fast-only", "fast/slow gap",
              "Sentinel vs NUMA" });
    auto emit = [&t](const char *name, const Row &r) {
        t.row()
            .cell(name)
            .cell(r.slow_only, 2)
            .cell(r.numa, 2)
            .cell(r.ial, 2)
            .cell(r.sentinel, 2)
            .cell(r.fast_only, 2)
            .cell(strprintf("%.2fx", r.slow_only / r.fast_only))
            .cell(strprintf("%.2fx", r.numa / r.sentinel));
    };
    emit("Optane PMM", optane);
    emit("CXL DDR", cxl);
    t.printWithCsv(std::cout);

    std::cout << "\nAs the slow tier approaches DRAM, unmanaged "
                 "placement catches up and the value\nof tensor-level "
                 "migration shrinks proportionally to the tier gap — "
                 "but remains\npositive while any gap exists.\n";
    return 0;
}
