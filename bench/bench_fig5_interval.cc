/**
 * @file
 * Fig. 5: training-step time as a function of the migration interval
 * length (MIL), ResNet-32 on the Optane platform at 20% fast memory.
 *
 * The paper reports ~21% spread across MIL 5..11 with an interior
 * optimum (best at 8).  This bench sweeps MIL, marks the planner's
 * own choice, and reports the spread.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "resnet32";
    bench::banner("Fig. 5 - performance vs. migration interval length",
                  "Fig. 5, Sec. IV-D");

    harness::ExperimentConfig cfg;
    cfg.model = model;
    cfg.batch = models::modelSpec(model).small_batch;

    // What does the planner itself choose?
    harness::Metrics planned = harness::runExperiment(cfg, "sentinel");

    Table t("Fig. 5: step time vs. MIL (" + model + ")",
            { "MIL", "step time (ms)", "exposed (ms)",
              "migrated (MB/step)", "planner's pick" });

    double best = 1e300;
    double worst = 0.0;
    for (int mil : { 1, 2, 3, 4, 5, 6, 8, 11, 16, 22, 33 }) {
        cfg.sentinel.forced_mil = mil;
        harness::Metrics m = harness::runExperiment(cfg, "sentinel");
        best = std::min(best, m.step_time_ms);
        worst = std::max(worst, m.step_time_ms);
        t.row()
            .cell(mil)
            .cell(m.step_time_ms)
            .cell(m.exposed_ms)
            .cell(m.migrated_mb(), 1)
            .cell(mil == planned.mil ? "<== planner" : "");
    }
    t.printWithCsv(std::cout);

    std::cout << strprintf(
        "\nSpread across the sweep: %.1f%% (paper: ~21%% across MIL "
        "5..11).\nPlanner chose MIL=%d at %.2f ms without trying any "
        "extra training steps\n(Eq. 1 + Eq. 2, Sec. IV-D).\n",
        100.0 * (worst - best) / best, planned.mil,
        planned.step_time_ms);
    return 0;
}
