/**
 * @file
 * Three-tier DRAM-size sweep: how much middle tier does staged
 * prefetch need?
 *
 * The LLM-era hierarchy is HBM -> DRAM -> NVMe: the fast tier is fixed
 * by the accelerator, the slow tier is effectively unbounded, and the
 * knob an operator actually buys is the DRAM staging buffer in the
 * middle.  For each workload this bench runs the sentinel cell on the
 * classic two-tier system once as the reference, then sweeps the
 * middle tier from 1x to 8x the fast tier's size (the
 * `ExperimentConfig::mid_fraction` knob, `--mid-capacity` on the CLI)
 * and reports step time, exposed migration, and migrated volume at
 * each point.  Staged prefetch turns DRAM into lead time: a larger
 * middle tier lets the planner start the slow leg of a two-leg
 * prefetch earlier, so exposed stalls should fall monotonically until
 * the working set fits and the curve flattens.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "models/synthetic.hh"

using namespace sentinel;

namespace {

struct Workload {
    std::string model;
    int batch;
};

std::vector<Workload>
workloads(const std::string &only)
{
    // Two LLM presets (the hierarchy's target scale) plus the smallest
    // conv net as a sanity row at the other end of the spectrum.
    std::vector<Workload> out = {
        { "llm:tiny", models::modelSpec("llm:tiny").small_batch },
        { "llm:small", models::modelSpec("llm:small").small_batch },
        { "resnet32", models::modelSpec("resnet32").small_batch },
    };
    if (!only.empty())
        std::erase_if(out,
                      [&](const Workload &w) { return w.model != only; });
    return out;
}

constexpr double kMidFractions[] = { 1.0, 2.0, 4.0, 8.0 };

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::banner("three-tier DRAM-size sweep (bench_ntier)",
                  "Sec. III interval migration, staged through a "
                  "middle tier");

    Table t("Sentinel on HBM+DRAM+NVMe vs. the two-tier reference",
            { "model", "mid (x fast)", "step (ms)", "2-tier step (ms)",
              "exposed (ms)", "migrated (MB)", "throughput" });

    for (const Workload &w : workloads(args.only)) {
        harness::ExperimentConfig base;
        base.model = w.model;
        base.batch = w.batch;

        std::vector<harness::SweepCell> cells;
        cells.push_back({ base, "sentinel" }); // two-tier reference
        for (double mf : kMidFractions) {
            harness::ExperimentConfig cfg = base;
            cfg.tiers = 3;
            cfg.mid_fraction = mf;
            cells.push_back({ cfg, "sentinel" });
        }
        std::vector<harness::Metrics> m =
            harness::runSweep(cells, args.jobs);

        const harness::Metrics &ref = m[0];
        for (std::size_t i = 0; i < std::size(kMidFractions); ++i) {
            const harness::Metrics &cell = m[i + 1];
            t.row()
                .cell(w.model)
                .cell(kMidFractions[i], 1)
                .cell(cell.step_time_ms)
                .cell(ref.step_time_ms)
                .cell(cell.exposed_ms)
                .cell(cell.migrated_mb())
                .cell(cell.throughput);
        }
    }
    t.printWithCsv(std::cout);
    return 0;
}
