/**
 * @file
 * Fig. 7: speedup over slow-memory-only of IAL, AutoTM, and Sentinel
 * with small batches and fast memory = 20% of peak; the fast-only
 * result is the paper's red horizontal line.  Table IV (migrated
 * volume per step) comes from the same runs and is printed alongside.
 */

#include <iostream>

#include "bench_util.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::banner("Fig. 7 + Table IV - small-batch comparison on Optane "
                  "HM",
                  "Fig. 7 / Table IV, Sec. VII-B");

    Table fig7("Fig. 7: speedup over slow-only (fast mem = 20% of peak)",
               { "model", "IAL", "AutoTM", "Sentinel",
                 "fast-only (line)", "Sentinel/fast-only gap" });
    Table tab4("Table IV: migrated data per training step (MB)",
               { "model", "IAL", "AutoTM", "Sentinel",
                 "Sentinel exposed (ms)" });

    const std::vector<std::string> policies = {
        "slow-only", "ial", "autotm", "sentinel", "fast-only",
    };
    std::vector<std::string> selected;
    std::vector<harness::SweepCell> cells;
    for (const auto &model : bench::evaluationModels()) {
        if (!args.only.empty() && model != args.only)
            continue;
        selected.push_back(model);
        harness::ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = models::modelSpec(model).small_batch;
        for (const auto &p : policies)
            cells.push_back({ cfg, p });
    }
    std::vector<harness::Metrics> results =
        harness::runSweep(cells, args.jobs);

    double gap_sum = 0.0;
    int gap_n = 0;
    for (std::size_t mi = 0; mi < selected.size(); ++mi) {
        const std::string &model = selected[mi];
        const harness::Metrics *row = &results[mi * policies.size()];
        const auto &slow = row[0];
        const auto &ial = row[1];
        const auto &autotm = row[2];
        const auto &sentinel = row[3];
        const auto &fast = row[4];

        double gap = sentinel.step_time_ms / fast.step_time_ms - 1.0;
        gap_sum += gap;
        ++gap_n;

        fig7.row()
            .cell(model)
            .cell(bench::speedupOver(slow.step_time_ms, ial.step_time_ms),
                  2)
            .cell(bench::speedupOver(slow.step_time_ms,
                                     autotm.step_time_ms),
                  2)
            .cell(bench::speedupOver(slow.step_time_ms,
                                     sentinel.step_time_ms),
                  2)
            .cell(bench::speedupOver(slow.step_time_ms,
                                     fast.step_time_ms),
                  2)
            .cell(strprintf("%.1f%%", 100.0 * gap));

        tab4.row()
            .cell(model)
            .cell(ial.migrated_mb(), 1)
            .cell(autotm.migrated_mb(), 1)
            .cell(sentinel.migrated_mb(), 1)
            .cell(sentinel.exposed_ms, 2);
    }

    fig7.printWithCsv(std::cout);
    tab4.printWithCsv(std::cout);

    if (gap_n > 0) {
        std::cout << strprintf(
            "\nAverage Sentinel gap to fast-only: %.1f%% (paper: 9%% "
            "average, up to 23%%).\nPaper anchors: Sentinel beats IAL "
            "by 37%% and AutoTM by 17%% on average;\nSentinel migrates "
            "more than both (85%% more than IAL, 32%% more than "
            "AutoTM)\nbut hides it under training (Table IV).\n",
            100.0 * gap_sum / gap_n);
    }
    return 0;
}
