/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate itself:
 * the page table, migration engine, allocator, profiler, and executor.
 *
 * These are engineering benchmarks (how fast is the reproduction), not
 * paper results — they keep the simulator's own costs visible so the
 * table/figure benches stay quick to iterate on.
 */

#include <benchmark/benchmark.h>

#include "alloc/arena.hh"
#include "baselines/reference.hh"
#include "core/sentinel_policy.hh"
#include "dataflow/executor.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"
#include "sim/event_queue.hh"
#include "telemetry/session.hh"

using namespace sentinel;

namespace {

mem::HeterogeneousMemory
makeHm(std::uint64_t fast_bytes)
{
    mem::TierParams fast{ "dram", fast_bytes, 76e9, 50e9, 85, 90 };
    mem::TierParams slow{ "pmm", 64ull << 30, 30e9, 10e9, 300, 120 };
    return mem::HeterogeneousMemory(fast, slow, { 8e9, 6e9, 2000 });
}

void
BM_ArenaAllocFree(benchmark::State &state)
{
    alloc::VirtualArena arena(0);
    for (auto _ : state) {
        auto a = arena.allocate(1024, 64);
        auto b = arena.allocate(64 * 1024, 64);
        arena.free(a, 1024);
        arena.free(b, 64 * 1024);
    }
}
BENCHMARK(BM_ArenaAllocFree);

void
BM_PageMapUnmap(benchmark::State &state)
{
    auto hm = makeHm(1ull << 30);
    mem::PageId next = 0;
    for (auto _ : state) {
        hm.tryMapPage(next, mem::Tier::Fast);
        hm.unmapPage(next, 0);
        ++next;
    }
}
BENCHMARK(BM_PageMapUnmap);

void
BM_MigrateBatch(benchmark::State &state)
{
    auto hm = makeHm(4ull << 30);
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<mem::PageId> pages(n);
    for (std::size_t i = 0; i < n; ++i) {
        pages[i] = i;
        hm.tryMapPage(i, mem::Tier::Slow);
    }
    Tick now = 0;
    for (auto _ : state) {
        hm.migratePages(pages, mem::Tier::Fast, now);
        now += kSec;
        hm.commitUpTo(now);
        hm.migratePages(pages, mem::Tier::Slow, now);
        now += kSec;
        hm.commitUpTo(now);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_MigrateBatch)->Arg(64)->Arg(1024);

// Raw page-table throughput on the extent hot path: bulk-map and
// bulk-unmap a 64 MB (16384-page) extent per iteration.
void
BM_PageTableDenseMapUnmap(benchmark::State &state)
{
    mem::PageTable pt(mem::PageTable::Backend::Dense);
    const std::uint64_t npages = 16384;
    for (auto _ : state) {
        pt.mapRange(0, npages, mem::Tier::Fast);
        pt.unmapRange(0, npages);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * npages));
}
BENCHMARK(BM_PageTableDenseMapUnmap);

void
BM_GraphBuildResnet32(benchmark::State &state)
{
    for (auto _ : state) {
        df::Graph g = models::makeModel("resnet32", 32);
        benchmark::DoNotOptimize(g.numOps());
    }
}
BENCHMARK(BM_GraphBuildResnet32);

void
BM_ExecutorStepFastOnly(benchmark::State &state)
{
    df::Graph g = models::makeModel("resnet20", 8);
    auto hm = makeHm(2ull << 30);
    auto policy = baselines::makeFastOnly();
    df::Executor ex(g, hm, df::ExecParams{}, *policy);
    ex.runStep();
    for (auto _ : state)
        benchmark::DoNotOptimize(ex.runStep().step_time);
}
BENCHMARK(BM_ExecutorStepFastOnly);

// The extent-granular walk's headline case: ops whose tensors span
// tens of thousands of pages.  One step touches a 64 MB weight and a
// 32 MB activation twice each (~48k page accesses); the range walk
// resolves them as a handful of runs.  The /PerPage variant replays
// the legacy page loop on the same graph, so the ratio between the
// two is the extent walk's speedup.
void
runLargePagesStep(benchmark::State &state, df::Executor::AccessMode mode)
{
    df::Graph g("large-pages", 2);
    const std::uint64_t wbytes = 64ull << 20;
    const std::uint64_t abytes = 32ull << 20;
    df::TensorId w =
        g.addTensor("w", wbytes, df::TensorKind::Weight, true);
    df::TensorId a =
        g.addTensor("a", abytes, df::TensorKind::Activation);
    g.addOp("fwd", df::OpType::Other, 0, 1e6,
            { df::TensorUse{ w, false, wbytes, 1.0 },
              df::TensorUse{ a, true, abytes, 1.0 } });
    g.addOp("bwd", df::OpType::Other, 1, 1e6,
            { df::TensorUse{ w, false, wbytes, 1.0 },
              df::TensorUse{ a, false, abytes, 1.0 } });
    g.finalize();

    auto hm = makeHm(256ull << 20);
    auto policy = baselines::makeFastOnly();
    df::Executor ex(g, hm, df::ExecParams{}, *policy);
    ex.setAccessMode(mode);
    ex.runStep();
    for (auto _ : state)
        benchmark::DoNotOptimize(ex.runStep().step_time);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(2 * (wbytes + abytes) / mem::kPageSize));
}

void
BM_ExecutorStepLargePages(benchmark::State &state)
{
    runLargePagesStep(state, df::Executor::AccessMode::Range);
}
BENCHMARK(BM_ExecutorStepLargePages);

void
BM_ExecutorStepLargePagesPerPage(benchmark::State &state)
{
    runLargePagesStep(state, df::Executor::AccessMode::PerPage);
}
BENCHMARK(BM_ExecutorStepLargePagesPerPage);

// Same step with a telemetry session attached: the delta against
// BM_ExecutorStepFastOnly is the *enabled* tracing cost (events +
// counters).  Disabled telemetry is just the null checks already in
// BM_ExecutorStepFastOnly's path, which is why the acceptance bar is
// "no regression with telemetry off".
void
BM_ExecutorStepTelemetry(benchmark::State &state)
{
    df::Graph g = models::makeModel("resnet20", 8);
    auto hm = makeHm(2ull << 30);
    auto policy = baselines::makeFastOnly();
    telemetry::Session session;
    hm.setTelemetry(&session);
    df::Executor ex(g, hm, df::ExecParams{}, *policy);
    ex.setTelemetry(&session);
    ex.runStep();
    for (auto _ : state)
        benchmark::DoNotOptimize(ex.runStep().step_time);
    state.counters["events"] = static_cast<double>(
        session.events().totalEmitted());
}
BENCHMARK(BM_ExecutorStepTelemetry);

void
BM_ProfilingStep(benchmark::State &state)
{
    df::Graph g = models::makeModel("resnet20", 8);
    for (auto _ : state) {
        auto hm = makeHm(2ull << 30);
        prof::Profiler profiler;
        auto r = profiler.profile(g, hm, df::ExecParams{});
        benchmark::DoNotOptimize(r.db.numTensors());
    }
}
BENCHMARK(BM_ProfilingStep);

void
BM_SentinelSteadyStep(benchmark::State &state)
{
    df::Graph g = models::makeModel("resnet20", 8);
    std::uint64_t fast = mem::roundUpToPages(g.peakMemoryBytes() / 5);
    auto prof_hm = makeHm(fast);
    prof::Profiler profiler;
    auto profile = profiler.profile(g, prof_hm, df::ExecParams{});

    auto hm = makeHm(fast);
    core::SentinelPolicy policy(profile.db);
    df::Executor ex(g, hm, df::ExecParams{}, policy);
    ex.run(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(ex.runStep().step_time);
}
BENCHMARK(BM_SentinelSteadyStep);

/**
 * Calendar vs binary-heap event queue, schedule + drain of a mixed
 * workload: mostly near-future events with same-tick collisions (the
 * migration engine's arrival pattern) plus a sprinkle of far-future
 * ones.  Arg 0 selects the backend.
 */
void
BM_EventQueueCalendarVsHeap(benchmark::State &state)
{
    auto backend = state.range(0) == 0
                       ? sim::EventQueue::Backend::Calendar
                       : sim::EventQueue::Backend::Heap;
    constexpr int kEvents = 4096;
    sim::EventQueue eq(backend);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    std::uint64_t sink = 0;
    for (auto _ : state) {
        Tick base = eq.now();
        for (int i = 0; i < kEvents; ++i) {
            std::uint64_t r = next();
            // ~1/16 far-future stragglers, rest within a 64k window
            // (quantized so same-tick FIFO ordering gets exercised).
            Tick when =
                base + ((r & 15) == 0
                            ? static_cast<Tick>(r % (1u << 26))
                            : static_cast<Tick>((r >> 4) &
                                                     0xFFC0));
            eq.schedule(when, [&sink](Tick t) {
                sink += static_cast<std::uint64_t>(t);
            });
        }
        eq.drain();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventQueueCalendarVsHeap)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
