/**
 * @file
 * Fig. 9: fast- and slow-memory access bandwidth over one training
 * step of ResNet-32, IAL vs Sentinel.
 *
 * The paper's shape: Sentinel drives much more fast-memory bandwidth
 * (7.3x on average) and less slow-memory bandwidth than IAL, because
 * its prefetching moves the hot working set into DRAM before use.
 */

#include <iostream>
#include <memory>

#include "baselines/ial.hh"
#include "bench_util.hh"
#include "core/sentinel_policy.hh"
#include "profile/profiler.hh"
#include "sim/trace.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/session.hh"

using namespace sentinel;

namespace {

struct TraceResult {
    std::vector<double> fast;
    std::vector<double> slow;
    double avg_fast = 0.0;
    double avg_slow = 0.0;
};

TraceResult
traceOnePolicy(const df::Graph &graph, const core::RuntimeConfig &cfg,
               df::MemoryPolicy &policy, Tick bucket)
{
    mem::HeterogeneousMemory hm(cfg.fast, cfg.slow, cfg.migration);
    df::Executor ex(graph, hm, cfg.exec, policy);
    ex.run(6); // reach steady state

    sim::TraceRecorder trace(bucket);
    ex.setTraceRecorder(&trace);
    ex.runStep();

    TraceResult r;
    r.fast = trace.bandwidthSeries("fast");
    r.slow = trace.bandwidthSeries("slow");
    for (double v : r.fast)
        r.avg_fast += v;
    for (double v : r.slow)
        r.avg_slow += v;
    if (!r.fast.empty()) {
        r.avg_fast /= static_cast<double>(r.fast.size());
        r.avg_slow /= static_cast<double>(r.slow.size());
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "resnet32";
    bench::banner("Fig. 9 - memory bandwidth during one step",
                  "Fig. 9, Sec. VII-B");

    df::Graph graph =
        models::makeModel(model, models::modelSpec(model).small_batch);
    std::uint64_t fast =
        mem::roundUpToPages(graph.peakMemoryBytes() / 5);
    auto cfg = core::RuntimeConfig::optane(fast);

    mem::HeterogeneousMemory prof_hm(cfg.fast, cfg.slow, cfg.migration);
    prof::Profiler profiler(cfg.profiler);
    auto profile = profiler.profile(graph, prof_hm, cfg.exec);

    const Tick bucket = 2 * kMsec;
    baselines::IalPolicy ial;
    TraceResult ial_r = traceOnePolicy(graph, cfg, ial, bucket);
    core::SentinelPolicy sentinel(profile.db);
    TraceResult sen_r = traceOnePolicy(graph, cfg, sentinel, bucket);

    Table t("Fig. 9: access bandwidth per 2 ms window (" + model + ")",
            { "window", "IAL fast (GB/s)", "IAL slow (GB/s)",
              "Sentinel fast (GB/s)", "Sentinel slow (GB/s)" });
    std::size_t windows =
        std::max(ial_r.fast.size(), sen_r.fast.size());
    auto at = [](const std::vector<double> &v, std::size_t i) {
        return i < v.size() ? v[i] / 1e9 : 0.0;
    };
    for (std::size_t i = 0; i < windows; ++i) {
        t.row()
            .cell(static_cast<std::uint64_t>(i))
            .cell(at(ial_r.fast, i), 2)
            .cell(at(ial_r.slow, i), 2)
            .cell(at(sen_r.fast, i), 2)
            .cell(at(sen_r.slow, i), 2);
    }
    t.printWithCsv(std::cout);

    double fast_ratio =
        ial_r.avg_fast > 0 ? sen_r.avg_fast / ial_r.avg_fast : 0.0;
    std::cout << strprintf(
        "\nAverage fast-memory bandwidth: Sentinel %.2f GB/s vs IAL "
        "%.2f GB/s (%.1fx);\naverage slow-memory bandwidth: Sentinel "
        "%.2f GB/s vs IAL %.2f GB/s.\nPaper anchors: Sentinel uses "
        "7.3x more fast-memory bandwidth and less slow\nbandwidth than "
        "IAL (Fig. 9).\n",
        sen_r.avg_fast / 1e9, ial_r.avg_fast / 1e9, fast_ratio,
        sen_r.avg_slow / 1e9, ial_r.avg_slow / 1e9);

    // Optional second argument: dump the same steady-state Sentinel
    // step as a Chrome-trace JSON (op/migration/stall timeline, the
    // event-level view behind this figure's bucketed series).
    if (argc > 2) {
        telemetry::Session session;
        core::SentinelPolicy traced(profile.db);
        traced.setTelemetry(&session);
        mem::HeterogeneousMemory hm(cfg.fast, cfg.slow, cfg.migration);
        hm.setTelemetry(&session);
        df::Executor ex(graph, hm, cfg.exec, traced);
        ex.setTelemetry(&session);
        ex.run(7);
        if (telemetry::saveChromeTrace(session.events(), argv[2])) {
            std::cout << strprintf(
                "\nChrome trace of %d steady steps written to %s "
                "(%zu events)\n", 7, argv[2], session.events().size());
        } else {
            std::cout << strprintf("\ncould not write %s\n", argv[2]);
            return 1;
        }
    }
    return 0;
}
