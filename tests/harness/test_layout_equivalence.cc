/**
 * @file
 * Struct-of-arrays vs hash-map layout equivalence across the policy
 * matrix.
 *
 * The SoA page table (dense chunked state bytes, summary counters,
 * lazily allocated cold arrays) replaced the per-page hash map on the
 * hot path; the hash backend survives as the reference layout.  Like
 * the extent-granular suite in tests/dataflow, the rewrite is a
 * performance feature and must be semantically invisible: every CPU
 * policy, run end-to-end through the harness (profiling pre-step
 * included) on both backends, must produce bit-identical StepStats on
 * every step — simulated times, byte counters, and stall counts alike.
 */

#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace sentinel::harness {
namespace {

ExperimentConfig
cellConfig(mem::PageTable::Backend backend)
{
    ExperimentConfig cfg;
    cfg.model = "resnet20";
    cfg.batch = 8;
    cfg.steps = 8;
    cfg.warmup = 6;
    cfg.page_table = backend;
    return cfg;
}

void
expectSameSteps(const std::vector<df::StepStats> &a,
                const std::vector<df::StepStats> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "step " << i);
        EXPECT_EQ(a[i].step_time, b[i].step_time);
        EXPECT_EQ(a[i].compute_time, b[i].compute_time);
        EXPECT_EQ(a[i].mem_time, b[i].mem_time);
        EXPECT_EQ(a[i].exposed_migration, b[i].exposed_migration);
        EXPECT_EQ(a[i].fault_overhead, b[i].fault_overhead);
        EXPECT_EQ(a[i].recompute_time, b[i].recompute_time);
        EXPECT_EQ(a[i].policy_time, b[i].policy_time);
        EXPECT_EQ(a[i].bytes_fast, b[i].bytes_fast);
        EXPECT_EQ(a[i].bytes_slow, b[i].bytes_slow);
        EXPECT_EQ(a[i].slow_bytes_by_kind, b[i].slow_bytes_by_kind);
        EXPECT_EQ(a[i].promoted_bytes, b[i].promoted_bytes);
        EXPECT_EQ(a[i].demoted_bytes, b[i].demoted_bytes);
        EXPECT_EQ(a[i].peak_fast_used, b[i].peak_fast_used);
        EXPECT_EQ(a[i].num_stalls, b[i].num_stalls);
    }
}

TEST(LayoutEquivalence, DenseMatchesHashAcrossCpuPolicies)
{
    for (const auto &policy : cpuPolicies()) {
        SCOPED_TRACE(policy);
        StepTrace dense = runExperimentSteps(
            cellConfig(mem::PageTable::Backend::Dense), policy);
        StepTrace hash = runExperimentSteps(
            cellConfig(mem::PageTable::Backend::Hash), policy);
        ASSERT_TRUE(dense.metrics.supported);
        ASSERT_TRUE(hash.metrics.supported);
        expectSameSteps(dense.steps, hash.steps);
    }
}

TEST(LayoutEquivalence, DenseMatchesHashUnderMemoryPressure)
{
    // A tighter fast tier forces eviction/demotion churn through the
    // SoA in-flight bits and the batched pending-migration path.
    for (const auto &policy : { "sentinel", "ial", "memory-mode" }) {
        SCOPED_TRACE(policy);
        ExperimentConfig dense_cfg =
            cellConfig(mem::PageTable::Backend::Dense);
        ExperimentConfig hash_cfg =
            cellConfig(mem::PageTable::Backend::Hash);
        dense_cfg.fast_fraction = hash_cfg.fast_fraction = 0.12;
        StepTrace dense = runExperimentSteps(dense_cfg, policy);
        StepTrace hash = runExperimentSteps(hash_cfg, policy);
        ASSERT_EQ(dense.metrics.feasible, hash.metrics.feasible);
        expectSameSteps(dense.steps, hash.steps);
    }
}

} // namespace
} // namespace sentinel::harness
