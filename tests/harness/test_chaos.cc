/**
 * @file
 * Fault injection end to end: determinism of chaos runs, graceful
 * degradation of every policy under every fault kind, mid-training
 * re-planning quality, and the telemetry surface of the divergence
 * monitor.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/sentinel_policy.hh"
#include "harness/experiment.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"
#include "sim/fault_injector.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/session.hh"

namespace sentinel::harness {
namespace {

ExperimentConfig
chaosConfig(const std::string &spec)
{
    ExperimentConfig cfg;
    cfg.model = "resnet20";
    cfg.batch = 8;
    cfg.steps = 12;
    cfg.warmup = 9;
    cfg.chaos = spec;
    return cfg;
}

/** Every field, doubles compared exactly: the simulation is a pure
 *  function of its inputs, so "close" would hide a real divergence. */
void
expectIdentical(const Metrics &a, const Metrics &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.supported, b.supported);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.step_time_ms, b.step_time_ms);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.exposed_ms, b.exposed_ms);
    EXPECT_EQ(a.recompute_ms, b.recompute_ms);
    EXPECT_EQ(a.fault_ms, b.fault_ms);
    EXPECT_EQ(a.promoted_mb, b.promoted_mb);
    EXPECT_EQ(a.demoted_mb, b.demoted_mb);
    EXPECT_EQ(a.bytes_fast_mb, b.bytes_fast_mb);
    EXPECT_EQ(a.bytes_slow_mb, b.bytes_slow_mb);
    EXPECT_EQ(a.peak_fast_mb, b.peak_fast_mb);
    EXPECT_EQ(a.mil, b.mil);
    EXPECT_EQ(a.case3_events, b.case3_events);
    EXPECT_EQ(a.trial_steps, b.trial_steps);
    EXPECT_EQ(a.pool_mb, b.pool_mb);
    EXPECT_EQ(a.divergence_events, b.divergence_events);
    EXPECT_EQ(a.replans, b.replans);
    EXPECT_EQ(a.trial_decided, b.trial_decided);
    EXPECT_EQ(a.trial_state, b.trial_state);
}

TEST(Chaos, SameSeedIsBitIdenticalSerialAndParallel)
{
    ExperimentConfig cfg = chaosConfig(
        "bw:step=4,factor=0.4;jitter:step=2,amp=0.15;stall:step=6,ms=1");
    const auto &pols = cpuPolicies();
    std::vector<Metrics> serial = runAll(cfg, pols);
    std::vector<Metrics> again = runAll(cfg, pols);
    std::vector<Metrics> par = runAllParallel(cfg, pols, 4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectIdentical(serial[i], again[i]);
        expectIdentical(serial[i], par[i]);
    }
}

TEST(Chaos, SeedChangesTheJitterDraw)
{
    ExperimentConfig cfg = chaosConfig("jitter:step=0,amp=0.3");
    Metrics a = runExperiment(cfg, "sentinel");
    cfg.chaos_seed = 999;
    Metrics b = runExperiment(cfg, "sentinel");
    EXPECT_NE(a.step_time_ms, b.step_time_ms);
}

TEST(Chaos, EveryFaultKindEveryPolicyRunsToCompletion)
{
    // Property test: no injector may crash, deadlock, or wedge any
    // policy — worst case a run goes infeasible (OOM) and says so.
    const char *specs[] = {
        "bw:step=2,factor=0.3",     "stall:step=2,ms=1",
        "shrink:step=2,factor=0.6", "jitter:step=1,amp=0.3",
        "drift:step=2,factor=1.4",
    };
    for (const char *spec : specs) {
        ExperimentConfig cfg = chaosConfig(spec);
        cfg.steps = 10;
        cfg.warmup = 8;
        for (const auto &p : cpuPolicies()) {
            Metrics m = runExperiment(cfg, p);
            EXPECT_TRUE(m.supported) << spec << " x " << p;
            if (m.feasible) {
                EXPECT_GT(m.step_time_ms, 0.0) << spec << " x " << p;
            }
        }
    }
}

TEST(Chaos, ReplanConvergesNearFaultedProfileReference)
{
    // The recovery bar: after the monitor re-plans, the steady step
    // must come within 15% of a run whose *profile* was taken under
    // the faulted conditions (the best a profile-driven policy could
    // have done had it known).
    ExperimentConfig cfg =
        chaosConfig("bw:step=6,factor=0.15;shrink:step=6,factor=0.7");
    cfg.steps = 18;
    cfg.warmup = 12;
    StepTrace tr = runExperimentSteps(cfg, "sentinel");
    ASSERT_TRUE(tr.metrics.supported);
    ASSERT_EQ(tr.steps.size(), static_cast<std::size_t>(cfg.steps));
    EXPECT_GE(tr.metrics.replans, 1);
    EXPECT_GE(tr.metrics.divergence_events, 1);

    // Reference: the same degraded machine, profiled in that state.
    df::Graph g = models::makeModel(cfg.model, cfg.batch);
    std::uint64_t fast = mem::roundUpToPages(static_cast<std::uint64_t>(
        static_cast<double>(g.peakMemoryBytes()) * cfg.fast_fraction));
    core::RuntimeConfig rc = platformConfig(Platform::Optane, fast);
    rc.migration.promote_bw *= 0.15;
    rc.migration.demote_bw *= 0.15;
    rc.fast.capacity = static_cast<std::uint64_t>(
                           static_cast<double>(fast) * 0.7) /
                       mem::kPageSize * mem::kPageSize;
    mem::HeterogeneousMemory phm(rc.fast, rc.slow, rc.migration);
    prof::Profiler profiler(rc.profiler);
    auto profile = profiler.profile(g, phm, rc.exec);
    core::SentinelPolicy pol(profile.db, rc.sentinel);
    mem::HeterogeneousMemory hm(rc.fast, rc.slow, rc.migration);
    df::Executor ex(g, hm, rc.exec, pol);
    auto stats = ex.run(cfg.steps);

    double ref = toMillis(stats.back().step_time);
    double post = toMillis(tr.steps.back().step_time);
    EXPECT_LE(post, ref * 1.15)
        << "post-replan steady " << post << " ms vs faulted-profile "
        << "reference " << ref << " ms";
}

TEST(Chaos, TraceExportContainsDivergenceAndReplanEvents)
{
    telemetry::TelemetryConfig tcfg;
    tcfg.enabled = true;
    telemetry::Session session(tcfg);
    ExperimentConfig cfg =
        chaosConfig("bw:step=6,factor=0.15;shrink:step=6,factor=0.7");
    cfg.steps = 18;
    cfg.warmup = 12;
    cfg.telemetry = &session;
    Metrics m = runExperiment(cfg, "sentinel");
    EXPECT_GE(m.divergence_events, 1);
    EXPECT_GE(m.replans, 1);
    std::string json = telemetry::chromeTraceJson(session.events());
    EXPECT_NE(json.find("divergence"), std::string::npos);
    EXPECT_NE(json.find("replan"), std::string::npos);
}

TEST(Chaos, TrialStateIsAlwaysConsistentlySurfaced)
{
    // S3: stats must never claim a decision that was not reached.
    const char *specs[] = {
        "",
        "stall:step=11,ms=8",
        "bw:step=9,factor=0.1",
        "bw:step=6,factor=0.15;shrink:step=6,factor=0.7",
    };
    bool saw_undecided = false;
    for (const char *spec : specs) {
        ExperimentConfig cfg = chaosConfig(spec);
        Metrics m = runExperiment(cfg, "sentinel");
        EXPECT_EQ(m.trial_decided, m.trial_state == "idle" ||
                                       m.trial_state == "decided")
            << spec << " -> " << m.trial_state;
        saw_undecided = saw_undecided || !m.trial_decided;
    }
    // At least one scenario (a late fault re-arming the trial) must
    // actually end mid-trial, or this test pins nothing.
    EXPECT_TRUE(saw_undecided);
}

} // namespace
} // namespace sentinel::harness
