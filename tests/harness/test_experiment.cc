#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "mem/page.hh"
#include "models/registry.hh"

namespace sentinel::harness {
namespace {

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.model = "resnet20";
    cfg.batch = 8;
    cfg.steps = 8;
    cfg.warmup = 6;
    return cfg;
}

TEST(Harness, RunsEveryCpuPolicy)
{
    ExperimentConfig cfg = smallConfig();
    for (const auto &name : cpuPolicies()) {
        Metrics m = runExperiment(cfg, name);
        EXPECT_TRUE(m.supported) << name;
        EXPECT_GT(m.step_time_ms, 0.0) << name;
        EXPECT_GT(m.throughput, 0.0) << name;
        EXPECT_EQ(m.policy, name);
    }
}

TEST(Harness, OrderingSanity)
{
    // The endpoints must order: fast-only fastest, slow-only slowest.
    ExperimentConfig cfg = smallConfig();
    Metrics fast = runExperiment(cfg, "fast-only");
    Metrics slow = runExperiment(cfg, "slow-only");
    Metrics sentinel = runExperiment(cfg, "sentinel");
    EXPECT_LT(fast.step_time_ms, slow.step_time_ms);
    EXPECT_LE(fast.step_time_ms, sentinel.step_time_ms * 1.02);
    EXPECT_LT(sentinel.step_time_ms, slow.step_time_ms);
}

TEST(Harness, SentinelMetricsPopulated)
{
    Metrics m = runExperiment(smallConfig(), "sentinel");
    EXPECT_GE(m.mil, 1);
    EXPECT_GT(m.pool_mb, 0.0);
}

TEST(Harness, FastFractionShrinksFastTier)
{
    ExperimentConfig cfg = smallConfig();
    cfg.fast_fraction = 0.2;
    Metrics tight = runExperiment(cfg, "numa");
    cfg.fast_fraction = 0.6;
    Metrics roomy = runExperiment(cfg, "numa");
    EXPECT_LT(roomy.step_time_ms, tight.step_time_ms);
    EXPECT_LT(roomy.bytes_slow_mb, tight.bytes_slow_mb);
}

TEST(Harness, VdnnUnsupportedOnLstm)
{
    ExperimentConfig cfg = smallConfig();
    cfg.model = "lstm";
    cfg.platform = Platform::Gpu;
    cfg.fast_bytes = 64ull << 20;
    Metrics m = runExperiment(cfg, "vdnn");
    EXPECT_FALSE(m.supported);
}

TEST(Harness, GpuFeasibilityDetectsOverflow)
{
    // Tiny device memory: plain "tf" (fast-only, strict) cannot hold
    // the model; Sentinel-GPU still can by swapping.
    ExperimentConfig cfg = smallConfig();
    cfg.platform = Platform::Gpu;
    cfg.fast_bytes = 8ull << 20;
    df::Graph g = models::makeModel(cfg.model, cfg.batch);
    ASSERT_GT(g.peakMemoryBytes(), cfg.fast_bytes);

    Metrics sentinel = runExperiment(cfg, "sentinel");
    EXPECT_TRUE(sentinel.feasible);
}

TEST(Harness, MaxBatchTfMatchesStaticPeak)
{
    // For "tf" the search reduces to the largest batch whose peak fits.
    std::uint64_t mem_bytes = 96ull << 20;
    int b = maxBatchSearch("resnet20", "tf", mem_bytes, 256);
    ASSERT_GT(b, 0);
    EXPECT_LE(models::makeModel("resnet20", b).peakMemoryBytes(),
              mem_bytes);
    EXPECT_GT(models::makeModel("resnet20", b + 1).peakMemoryBytes(),
              mem_bytes);
}

TEST(Harness, MaxBatchGrowsWithDeviceMemory)
{
    int small = maxBatchSearch("resnet20", "tf", 48ull << 20, 256);
    int large = maxBatchSearch("resnet20", "tf", 96ull << 20, 256);
    EXPECT_GT(large, small);
}

TEST(Harness, SentinelMaxBatchBeatsTf)
{
    std::uint64_t mem_bytes = 48ull << 20;
    int tf = maxBatchSearch("resnet20", "tf", mem_bytes, 128);
    int sentinel = maxBatchSearch("resnet20", "sentinel", mem_bytes, 128);
    EXPECT_GT(sentinel, tf);
}

TEST(Harness, UnknownPolicyIsFatal)
{
    EXPECT_THROW(runExperiment(smallConfig(), "tcmalloc"),
                 std::runtime_error);
}

TEST(Harness, RejectsNonPositiveBatchAndSteps)
{
    ExperimentConfig cfg = smallConfig();
    cfg.batch = 0;
    EXPECT_THROW(runExperiment(cfg, "numa"), ConfigError);
    cfg = smallConfig();
    cfg.steps = 0;
    EXPECT_THROW(runExperiment(cfg, "numa"), ConfigError);
}

TEST(Harness, RejectsMalformedModelNameAsConfigError)
{
    // A model name that cannot build (malformed synthetic spec,
    // unknown zoo name) is a rejected *input*, not an infeasible run:
    // the harness converts the factory's failure into ConfigError so
    // the fuzzer can tell it apart from a violated invariant.
    ExperimentConfig cfg = smallConfig();
    for (const char *name :
         { "synthetic:1:bp=nan", "synthetic:1:bp=+0.5", "synthetic:abc",
           "no-such-model" }) {
        cfg.model = name;
        EXPECT_THROW(runExperiment(cfg, "numa"), ConfigError) << name;
    }
}

TEST(Harness, RejectsUnknownPlannerAsConfigError)
{
    ExperimentConfig cfg = smallConfig();
    cfg.planner = "ilp";
    EXPECT_THROW(runExperiment(cfg, "sentinel"), ConfigError);
    // The knob gates Sentinel's co-allocation only, but validation is
    // uniform: a bad value is rejected for every policy.
    EXPECT_THROW(runExperiment(cfg, "numa"), ConfigError);
}

TEST(Harness, RejectsWarmupOutsideSteps)
{
    ExperimentConfig cfg = smallConfig();
    cfg.warmup = cfg.steps;
    EXPECT_THROW(runExperiment(cfg, "numa"), ConfigError);
    cfg.warmup = -1;
    EXPECT_THROW(runExperiment(cfg, "numa"), ConfigError);
}

TEST(Harness, RejectsSubPageFastTier)
{
    ExperimentConfig cfg = smallConfig();
    cfg.fast_bytes = mem::kPageSize - 1;
    for (const auto &name : cpuPolicies())
        EXPECT_THROW(runExperiment(cfg, name), ConfigError) << name;
    // A zero fraction can never yield even one page.
    cfg = smallConfig();
    cfg.fast_fraction = 0.0;
    EXPECT_THROW(runExperiment(cfg, "numa"), ConfigError);
}

TEST(Harness, RejectsReservedPoolConsumingWholeTier)
{
    // One page of fast memory: the default rs_cap_fraction rounds up to
    // the whole tier, which would leave Sentinel's long-lived plan with
    // nothing.  Other policies accept the same (tiny but valid) tier.
    ExperimentConfig cfg = smallConfig();
    cfg.fast_bytes = mem::kPageSize;
    EXPECT_THROW(runExperiment(cfg, "sentinel"), ConfigError);
    EXPECT_NO_THROW(runExperiment(cfg, "numa"));

    cfg = smallConfig();
    cfg.sentinel.rs_cap_fraction = 1.5;
    EXPECT_THROW(runExperiment(cfg, "sentinel"), ConfigError);
}

TEST(Harness, ConfigErrorIsDistinguishableFromRunFailures)
{
    // ConfigError means "the experiment was never meaningful", so it
    // deliberately is not a runtime_error — callers that map
    // runtime_error to an infeasible cell (the oracle, the sweep
    // drivers) must not swallow it.
    ExperimentConfig cfg = smallConfig();
    cfg.batch = -3;
    EXPECT_THROW(runExperiment(cfg, "numa"), std::invalid_argument);
    bool caught_as_runtime = false;
    try {
        runExperiment(cfg, "numa");
    } catch (const std::runtime_error &) {
        caught_as_runtime = true;
    } catch (const std::logic_error &) {
    }
    EXPECT_FALSE(caught_as_runtime);
    // And a well-formed config sails through.
    EXPECT_NO_THROW(runExperiment(smallConfig(), "sentinel"));
}

void
expectIdenticalMetrics(const Metrics &a, const Metrics &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.supported, b.supported);
    EXPECT_EQ(a.feasible, b.feasible);
    // Exact equality, not near: each cell is an independent
    // deterministic simulation, so threading must not change a bit.
    EXPECT_EQ(a.step_time_ms, b.step_time_ms);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.exposed_ms, b.exposed_ms);
    EXPECT_EQ(a.recompute_ms, b.recompute_ms);
    EXPECT_EQ(a.fault_ms, b.fault_ms);
    EXPECT_EQ(a.promoted_mb, b.promoted_mb);
    EXPECT_EQ(a.demoted_mb, b.demoted_mb);
    EXPECT_EQ(a.bytes_fast_mb, b.bytes_fast_mb);
    EXPECT_EQ(a.bytes_slow_mb, b.bytes_slow_mb);
    EXPECT_EQ(a.peak_fast_mb, b.peak_fast_mb);
    EXPECT_EQ(a.mil, b.mil);
    EXPECT_EQ(a.case3_events, b.case3_events);
    EXPECT_EQ(a.trial_steps, b.trial_steps);
    EXPECT_EQ(a.pool_mb, b.pool_mb);
}

TEST(Harness, ParallelRunAllMatchesSerialExactly)
{
    ExperimentConfig cfg = smallConfig();
    auto serial = runAll(cfg, cpuPolicies());
    auto parallel = runAllParallel(cfg, cpuPolicies(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(cpuPolicies()[i]);
        expectIdenticalMetrics(parallel[i], serial[i]);
    }
}

TEST(Harness, SweepIsInputOrderedAndDeterministic)
{
    std::vector<SweepCell> cells;
    for (const char *policy : { "fast-only", "numa", "slow-only" }) {
        ExperimentConfig cfg = smallConfig();
        cells.push_back({ cfg, policy });
    }
    auto serial = runSweep(cells, 1);
    auto parallel = runSweep(cells, 4);
    ASSERT_EQ(serial.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(serial[i].policy, cells[i].policy);
        expectIdenticalMetrics(parallel[i], serial[i]);
    }
}

TEST(Harness, ParallelMaxBatchMatchesSerial)
{
    std::uint64_t mem_bytes = 96ull << 20;
    EXPECT_EQ(maxBatchSearch("resnet20", "tf", mem_bytes, 256, 4),
              maxBatchSearch("resnet20", "tf", mem_bytes, 256));
}

} // namespace
} // namespace sentinel::harness
