/**
 * @file
 * Property tests for stall attribution and the report surface.
 *
 * The load-bearing invariant: for every page-table backend x access-
 * mode combination, the attributed components sum EXACTLY (tick for
 * tick) to the StepStats totals the executor reported — attribution is
 * a decomposition, never an estimate.  On top of that, the rendered
 * report must be bit-identical between serial and parallel rendering,
 * and a stalling Sentinel run must name at least one offending tensor
 * with the audit reason behind its placement.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hh"
#include "core/sentinel_policy.hh"
#include "dataflow/executor.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"

using namespace sentinel;

namespace {

struct CaseResult {
    std::vector<df::StepStats> stats;
    telemetry::AttributionEngine attr;
    telemetry::AuditLog audit;
};

/** One Sentinel run of a small model under the given substrate knobs. */
std::unique_ptr<CaseResult>
runCase(mem::PageTable::Backend backend, df::Executor::AccessMode mode)
{
    auto out = std::make_unique<CaseResult>();

    df::Graph graph = models::makeModel("resnet20", 8);
    std::uint64_t fast =
        mem::roundUpToPages(graph.peakMemoryBytes() / 5);
    auto cfg = core::RuntimeConfig::optane(fast);

    mem::HeterogeneousMemory prof_hm(cfg.fast, cfg.slow, cfg.migration);
    prof::Profiler profiler(cfg.profiler);
    auto profile = profiler.profile(graph, prof_hm, cfg.exec);

    core::SentinelPolicy policy(profile.db);
    policy.setAudit(&out->audit);
    mem::HeterogeneousMemory hm(cfg.fast, cfg.slow, cfg.migration,
                                backend);
    hm.setAttribution(&out->attr);
    df::Executor ex(graph, hm, cfg.exec, policy);
    ex.setAccessMode(mode);
    ex.setAttribution(&out->attr);
    out->stats = ex.run(4);
    return out;
}

TEST(AttributionProperty, ExactAcrossBackendsAndAccessModes)
{
    const struct {
        mem::PageTable::Backend backend;
        df::Executor::AccessMode mode;
        const char *label;
    } combos[] = {
        { mem::PageTable::Backend::Dense,
          df::Executor::AccessMode::Range, "dense/range" },
        { mem::PageTable::Backend::Dense,
          df::Executor::AccessMode::PerPage, "dense/per-page" },
        { mem::PageTable::Backend::Hash,
          df::Executor::AccessMode::Range, "hash/range" },
        { mem::PageTable::Backend::Hash,
          df::Executor::AccessMode::PerPage, "hash/per-page" },
    };
    for (const auto &c : combos) {
        SCOPED_TRACE(c.label);
        auto r = runCase(c.backend, c.mode);
        // endStep() would already have panicked on drift; re-assert the
        // identities from the outside against the executor's numbers.
        ASSERT_EQ(r->attr.steps().size(), r->stats.size());
        EXPECT_TRUE(r->attr.allExact());
        for (std::size_t i = 0; i < r->stats.size(); ++i) {
            const auto &sa = r->attr.steps()[i];
            const auto &ss = r->stats[i];
            EXPECT_EQ(sa.bucket.total(), ss.step_time) << "step " << i;
            EXPECT_EQ(sa.bucket.exposedMigration(), ss.exposed_migration)
                << "step " << i;
            EXPECT_EQ(sa.bucket.stall_events, ss.num_stalls)
                << "step " << i;
        }
        // The decomposition must actually be attributing stalls here,
        // not passing vacuously on a stall-free run.
        EXPECT_GT(r->attr.totals().exposedMigration(), 0);
        EXPECT_GT(r->audit.size(), 0u);
    }
}

class ReportRendering : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        case_ = runCase(mem::PageTable::defaultBackend(),
                        df::Executor::AccessMode::Range)
                    .release();
        graph_ = new df::Graph(models::makeModel("resnet20", 8));
    }
    static void
    TearDownTestSuite()
    {
        delete graph_;
        delete case_;
        graph_ = nullptr;
        case_ = nullptr;
    }

    static CaseResult *case_;
    static df::Graph *graph_;
};

CaseResult *ReportRendering::case_ = nullptr;
df::Graph *ReportRendering::graph_ = nullptr;

TEST_F(ReportRendering, SerialAndParallelRenderingBitIdentical)
{
    harness::ReportOptions serial;
    serial.jobs = 1;
    harness::ReportOptions parallel;
    parallel.jobs = 4;

    EXPECT_EQ(harness::buildStallReport(*graph_, case_->attr,
                                        case_->audit, serial),
              harness::buildStallReport(*graph_, case_->attr,
                                        case_->audit, parallel));
    EXPECT_EQ(harness::stallReportJson(*graph_, case_->attr,
                                       case_->audit, serial),
              harness::stallReportJson(*graph_, case_->attr,
                                       case_->audit, parallel));
}

TEST_F(ReportRendering, NamesAnOffenderWithReasonCode)
{
    std::string report =
        harness::buildStallReport(*graph_, case_->attr, case_->audit);
    EXPECT_NE(report.find("exact"), std::string::npos);
    EXPECT_EQ(report.find("MISMATCH"), std::string::npos);
    // At least one offender row resolves a reason code from the audit
    // log (any of the k* spellings).
    EXPECT_NE(report.find(" @step "), std::string::npos) << report;
    bool any_reason = false;
    for (std::size_t i = 0; i < telemetry::kNumAuditReasons; ++i)
        any_reason =
            any_reason ||
            report.find(telemetry::auditReasonName(
                static_cast<telemetry::AuditReason>(i))) !=
                std::string::npos;
    EXPECT_TRUE(any_reason) << report;
}

TEST_F(ReportRendering, AuditHistoryListsTensorDecisions)
{
    ASSERT_GT(case_->audit.size(), 0u);
    std::uint32_t tensor = telemetry::kAuditNoTensor;
    for (const auto &r : case_->audit.records()) {
        if (r.tensor != telemetry::kAuditNoTensor) {
            tensor = r.tensor;
            break;
        }
    }
    ASSERT_NE(tensor, telemetry::kAuditNoTensor);
    std::string hist =
        harness::auditHistory(*graph_, case_->audit, tensor);
    EXPECT_NE(hist.find(strprintf("tensor %u", tensor)),
              std::string::npos);
    EXPECT_NE(hist.find(telemetry::auditReasonName(
                  case_->audit.forTensor(tensor).front().reason)),
              std::string::npos);
}

TEST(ReportHarness, HarnessRunAttributesExactly)
{
    // End-to-end through the experiment harness (the path sentinel-cli
    // report takes): attribution + audit wired via ExperimentConfig.
    telemetry::AttributionEngine attr;
    telemetry::AuditLog audit;
    harness::ExperimentConfig cfg;
    cfg.model = "resnet32";
    cfg.batch = 16;
    cfg.steps = 5;
    cfg.warmup = 2;
    cfg.attribution = &attr;
    cfg.audit = &audit;
    harness::StepTrace tr = harness::runExperimentSteps(cfg, "sentinel");
    ASSERT_TRUE(tr.metrics.supported);
    ASSERT_EQ(attr.steps().size(), tr.steps.size());
    EXPECT_TRUE(attr.allExact());
    Tick exposed = 0;
    std::uint64_t stalls = 0;
    for (const auto &ss : tr.steps) {
        exposed += ss.exposed_migration;
        stalls += ss.num_stalls;
    }
    EXPECT_EQ(attr.totals().exposedMigration(), exposed);
    EXPECT_EQ(attr.totals().stall_events, stalls);
}

} // namespace
