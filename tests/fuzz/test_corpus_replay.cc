/**
 * @file
 * Regression gate over the committed fuzz corpus: every
 * `.sentinelrepro` in tests/fuzz/corpus/ must replay clean through the
 * cross-policy differential oracle.  A corpus entry is either a
 * shrunk repro of a fixed bug (it must stay fixed) or a hand-picked
 * workload shape worth pinning; both fail loudly here when an
 * invariant regresses.
 */

#include <algorithm>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "harness/oracle.hh"

#ifndef SENTINEL_FUZZ_CORPUS_DIR
#error "SENTINEL_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace sentinel::harness {
namespace {

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(SENTINEL_FUZZ_CORPUS_DIR))
        if (entry.path().extension() == ".sentinelrepro")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(CorpusReplay, CorpusIsNotEmpty)
{
    EXPECT_GE(corpusFiles().size(), 1u)
        << "no .sentinelrepro files under " << SENTINEL_FUZZ_CORPUS_DIR;
}

TEST(CorpusReplay, EveryEntryReplaysClean)
{
    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());
        FuzzCase fc = FuzzCase::load(path.string());
        OracleReport rep = fc.run(/*jobs=*/2, /*check_determinism=*/false);
        EXPECT_TRUE(rep.ok()) << rep.summary();
    }
}

TEST(CorpusReplay, ReplayIsDeterministic)
{
    // The corpus is the shrinker's output format; a repro that renders
    // two different reports on two replays is useless as a repro.
    auto files = corpusFiles();
    ASSERT_FALSE(files.empty());
    FuzzCase fc = FuzzCase::load(files.front().string());
    OracleReport a = fc.run(1, false);
    OracleReport b = fc.run(4, false);
    EXPECT_EQ(a.summary(), b.summary());
}

TEST(CorpusReplay, SerializeRoundTrips)
{
    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());
        FuzzCase fc = FuzzCase::load(path.string());
        FuzzCase back = FuzzCase::parse(fc.serialize());
        EXPECT_EQ(fc.model, back.model);
        EXPECT_EQ(fc.batch, back.batch);
        EXPECT_EQ(fc.fast_fraction, back.fast_fraction);
        EXPECT_EQ(fc.steps, back.steps);
        EXPECT_EQ(fc.warmup, back.warmup);
        EXPECT_EQ(fc.cpu, back.cpu);
        EXPECT_EQ(fc.gpu, back.gpu);
        EXPECT_EQ(fc.inject_capacity, back.inject_capacity);
        EXPECT_EQ(fc.inject_traffic, back.inject_traffic);
        EXPECT_EQ(fc.planner, back.planner);
        EXPECT_EQ(fc.tiers, back.tiers);
    }
}

TEST(CorpusReplay, PlannerKeyDefaultsAndRoundTrips)
{
    // Corpus entries written before the planner knob carry no
    // `planner=` line; they must parse as greedy (the layout every
    // committed repro shrank under).  New serializations always emit
    // the key, and bad values are rejected.
    FuzzCase legacy =
        FuzzCase::parse("# sentinelrepro v1\nmodel=synthetic:1\n");
    EXPECT_EQ(legacy.planner, "greedy");

    FuzzCase fc = FuzzCase::random(3);
    fc.planner = "interval";
    FuzzCase back = FuzzCase::parse(fc.serialize());
    EXPECT_EQ(back.planner, "interval");
    EXPECT_NE(fc.serialize().find("planner=interval"), std::string::npos);

    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\n"
                                 "model=synthetic:1\nplanner=ilp\n"),
                 ConfigError);
}

TEST(CorpusReplay, TiersKeyDefaultsAndRoundTrips)
{
    // Corpus entries written before the N-tier hierarchy carry no
    // `tiers=` line; they must replay on the classic two-tier system
    // they shrank under.  New serializations always emit the key, and
    // chain lengths outside [1, mem::kMaxTiers] are rejected.
    FuzzCase legacy =
        FuzzCase::parse("# sentinelrepro v1\nmodel=synthetic:1\n");
    EXPECT_EQ(legacy.tiers, 2);

    FuzzCase fc = FuzzCase::random(3);
    fc.tiers = 3;
    FuzzCase back = FuzzCase::parse(fc.serialize());
    EXPECT_EQ(back.tiers, 3);
    EXPECT_NE(fc.serialize().find("tiers=3"), std::string::npos);

    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\n"
                                 "model=synthetic:1\ntiers=0\n"),
                 ConfigError);
    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\n"
                                 "model=synthetic:1\ntiers=9\n"),
                 ConfigError);
}

TEST(CorpusReplay, LlmModelNamesAreValidated)
{
    // The llm: family joins the corpus grammar: well-formed names
    // parse, malformed presets or overrides are rejected up front
    // rather than exploding mid-replay.
    FuzzCase fc = FuzzCase::parse(
        "# sentinelrepro v1\nmodel=llm:tiny:l=2,seq=64\n");
    EXPECT_EQ(fc.model, "llm:tiny:l=2,seq=64");

    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\n"
                                 "model=llm:colossal\n"),
                 ConfigError);
    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\n"
                                 "model=llm:tiny:hd=100,heads=3\n"),
                 ConfigError); // hidden not divisible by heads
}

TEST(CorpusReplay, MalformedFilesAreRejected)
{
    EXPECT_THROW(FuzzCase::parse(""), ConfigError);
    EXPECT_THROW(FuzzCase::parse("model=resnet20\n"), ConfigError);
    EXPECT_THROW(
        FuzzCase::parse("# sentinelrepro v1\nbatch=4\n"),
        ConfigError); // missing model
    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\nmodel=synthetic:\n"),
                 ConfigError);
    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\nmodel=synthetic:1\n"
                                 "batch=nope\n"),
                 ConfigError);
    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\nmodel=synthetic:1\n"
                                 "unknown_key=1\n"),
                 ConfigError);
    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\nmodel=synthetic:1\n"
                                 "steps=4\nwarmup=4\n"),
                 ConfigError);
    EXPECT_THROW(FuzzCase::parse("# sentinelrepro v1\nmodel=synthetic:1\n"
                                 "cpu=0\ngpu=0\n"),
                 ConfigError);
}

TEST(CorpusReplay, InjectedViolationIsDetectedAndShrinksDeterministically)
{
    // The capacity chaos hook under-reports the fast tier at check
    // time: the oracle must flag it, and the shrinker must converge to
    // the same minimal case regardless of worker count.
    FuzzCase fc = FuzzCase::random(7);
    fc.gpu = false;
    fc.inject_capacity = 0.6;
    OracleReport rep = fc.run(2, false);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.violations.front().invariant, "capacity");

    FuzzCase a = shrink(fc, /*jobs=*/1);
    FuzzCase b = shrink(fc, /*jobs=*/4);
    EXPECT_EQ(a.serialize(), b.serialize());
    OracleReport ra = a.run(1, false);
    ASSERT_FALSE(ra.ok());
    EXPECT_EQ(ra.violations.front().invariant, "capacity");
}

} // namespace
} // namespace sentinel::harness
