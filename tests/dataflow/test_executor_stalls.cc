/**
 * @file
 * Executor migration-interaction semantics, tested with purpose-built
 * policies: stalls for in-flight prefetches are charged exactly,
 * "leave in slow" reads the source copy, effective-tier overrides
 * bypass residency, and in-flight demotions still serve from fast.
 */

#include <gtest/gtest.h>

#include "alloc/arena.hh"
#include "dataflow/executor.hh"

namespace sentinel::df {
namespace {

/** Two ops in two layers over one 4-page tensor + a sink output. */
Graph
twoLayerGraph()
{
    Graph g("stall", 1);
    TensorId big =
        g.addTensor("big", 4 * mem::kPageSize, TensorKind::Weight, true);
    TensorId out = g.addTensor("out", 1024, TensorKind::Temp);
    g.addOp("l0", OpType::Other, 0, 1e6,
            { { big, false, 4 * mem::kPageSize, 1.0 },
              { out, true, 1024, 1.0 } });
    TensorId out2 = g.addTensor("out2", 1024, TensorKind::Temp);
    g.addOp("l1", OpType::Other, 1, 1e6,
            { { big, false, 4 * mem::kPageSize, 1.0 },
              { out2, true, 1024, 1.0 } });
    g.finalize();
    return g;
}

mem::HeterogeneousMemory
makeHm()
{
    mem::TierParams fast{ "dram", 64 * mem::kPageSize, 50e9, 40e9, 80,
                          80 };
    mem::TierParams slow{ "pmm", 4096 * mem::kPageSize, 6e9, 2e9, 300,
                          100 };
    // 1 GB/s promote with no setup: one page = 4096 ns.
    return mem::HeterogeneousMemory(fast, slow, { 1e9, 1e9, 0 });
}

/** Allocates everything slow; at layer 1 begin, prefetches `big`. */
class PrefetchAtL1 : public MemoryPolicy
{
  public:
    explicit PrefetchAtL1(bool stall) : stall_(stall), arena_(0) {}

    std::string name() const override { return "prefetch-at-l1"; }

    AllocDecision
    allocate(Executor &, const TensorDesc &t) override
    {
        return { arena_.allocate(t.bytes, mem::kPageSize),
                 mem::Tier::Slow };
    }

    void
    onLayerBegin(Executor &ex, int layer) override
    {
        if (layer != 1)
            return;
        const TensorPlacement &pl = ex.placementOf(0);
        auto pages = pl.pages();
        ex.hm().migratePages(pages, mem::Tier::Fast, ex.now());
        issued_at_ = ex.now();
    }

    bool
    stallForInflight(Executor &, mem::PageId) override
    {
        return stall_;
    }

    Tick issued_at_ = -1;

  private:
    bool stall_;
    alloc::VirtualArena arena_;
};

TEST(ExecutorStalls, StallModeWaitsAndReadsFast)
{
    Graph g = twoLayerGraph();
    auto hm = makeHm();
    PrefetchAtL1 policy(/*stall=*/true);
    Executor ex(g, hm, ExecParams{ 1e12, 0 }, policy);
    StepStats s = ex.runStep();

    // The l1 access stalls until the 4-page transfer lands, then reads
    // from fast memory.
    EXPECT_GT(s.exposed_migration, 0);
    EXPECT_LE(s.exposed_migration, 4 * 4096);
    // l0 read big from slow (4 pages, plus the two slow-allocated
    // 1 KiB outputs); l1 read it from fast.
    EXPECT_EQ(s.bytes_slow, 4 * mem::kPageSize + 2048);
    EXPECT_EQ(s.bytes_fast, 4 * mem::kPageSize);
}

TEST(ExecutorStalls, LeaveModeReadsSlowWithoutStall)
{
    Graph g = twoLayerGraph();
    auto hm = makeHm();
    PrefetchAtL1 policy(/*stall=*/false);
    Executor ex(g, hm, ExecParams{ 1e12, 0 }, policy);
    StepStats s = ex.runStep();

    EXPECT_EQ(s.exposed_migration, 0);
    // Both layers read the slow copy (the transfer is still in flight
    // when l1 touches the pages), plus the slow-allocated outputs.
    EXPECT_EQ(s.bytes_slow, 2 * 4 * mem::kPageSize + 2048);
}

/** Serves every access as fast via the effective-tier override. */
class OverridePolicy : public MemoryPolicy
{
  public:
    OverridePolicy() : arena_(0) {}
    std::string name() const override { return "override"; }

    AllocDecision
    allocate(Executor &, const TensorDesc &t) override
    {
        return { arena_.allocate(t.bytes, 64), mem::Tier::Slow };
    }

    PageAccessResult
    onPageAccess(Executor &, mem::PageId, bool) override
    {
        return { 100, mem::Tier::Fast };
    }

  private:
    alloc::VirtualArena arena_;
};

TEST(ExecutorStalls, EffectiveTierOverrideBypassesResidency)
{
    Graph g = twoLayerGraph();
    auto hm = makeHm();
    OverridePolicy policy;
    Executor ex(g, hm, ExecParams{ 1e12, 0 }, policy);
    StepStats s = ex.runStep();

    // Everything is slow-resident, yet every byte is served "fast"
    // (the Memory-Mode pattern), with the injected per-page cost
    // showing up as exposed time.
    EXPECT_EQ(s.bytes_slow, 0u);
    EXPECT_GT(s.bytes_fast, 0u);
    EXPECT_GT(s.exposed_migration, 0);
}

/** Demotes `big` after layer 0; layer 1 reads it mid-demotion. */
class DemoteAtL0End : public MemoryPolicy
{
  public:
    DemoteAtL0End() : arena_(0) {}
    std::string name() const override { return "demote-l0"; }

    AllocDecision
    allocate(Executor &, const TensorDesc &t) override
    {
        return { arena_.allocate(t.bytes, mem::kPageSize),
                 mem::Tier::Fast };
    }

    void
    onLayerEnd(Executor &ex, int layer) override
    {
        if (layer != 0)
            return;
        auto pages = ex.placementOf(0).pages();
        ex.hm().migratePages(pages, mem::Tier::Slow, ex.now());
    }

  private:
    alloc::VirtualArena arena_;
};

TEST(ExecutorStalls, InFlightDemotionStillServesFromFast)
{
    Graph g = twoLayerGraph();
    auto hm = makeHm();
    DemoteAtL0End policy;
    // Huge compute keeps layer 1 short in sim time; the demotion is
    // still in flight when it runs.
    Executor ex(g, hm, ExecParams{ 1e15, 0 }, policy);
    StepStats s = ex.runStep();

    // Reads during an outbound migration come from the (fast) source —
    // no stall, no slow bytes.
    EXPECT_EQ(s.exposed_migration, 0);
    EXPECT_EQ(s.bytes_slow, 0u);
}

} // namespace
} // namespace sentinel::df
