#include <gtest/gtest.h>

#include "dataflow/graph.hh"
#include "support/test_graphs.hh"

namespace sentinel::df {
namespace {

using sentinel::testing::ToyGraphIds;
using sentinel::testing::makeToyGraph;

TEST(Graph, StructureOfToyGraph)
{
    ToyGraphIds ids;
    Graph g = makeToyGraph(&ids);
    EXPECT_EQ(g.numLayers(), 4);
    EXPECT_EQ(g.numTensors(), 8u);
    EXPECT_EQ(g.numOps(), 8u);
    EXPECT_EQ(g.opsInLayer(0).size(), 2u);
    EXPECT_EQ(g.batchSize(), 4);
}

TEST(Graph, LifetimesDerivedFromUses)
{
    ToyGraphIds ids;
    Graph g = makeToyGraph(&ids);

    // a0 is produced in layer 0 and last read in backward layer 3.
    const TensorDesc &a0 = g.tensor(ids.a0);
    EXPECT_EQ(a0.first_layer, 0);
    EXPECT_EQ(a0.last_layer, 3);
    EXPECT_EQ(a0.lifetimeLayers(), 4);
    EXPECT_FALSE(a0.shortLived());

    // temp0 lives entirely inside layer 0.
    const TensorDesc &t0 = g.tensor(ids.temp0);
    EXPECT_EQ(t0.first_layer, 0);
    EXPECT_EQ(t0.last_layer, 0);
    EXPECT_TRUE(t0.shortLived());

    // a1 spans layers 1..2.
    const TensorDesc &a1 = g.tensor(ids.a1);
    EXPECT_EQ(a1.first_layer, 1);
    EXPECT_EQ(a1.last_layer, 2);
    EXPECT_FALSE(a1.shortLived());
}

TEST(Graph, SmallAndShortLivedClassification)
{
    ToyGraphIds ids;
    Graph g = makeToyGraph(&ids);
    EXPECT_TRUE(g.tensor(ids.temp1).small());
    EXPECT_TRUE(g.tensor(ids.temp1).shortLived());
    EXPECT_FALSE(g.tensor(ids.temp0).small()); // 8 pages
    // Preallocated tensors are never short-lived even if referenced in
    // one layer only.
    EXPECT_FALSE(g.tensor(ids.input).shortLived());
}

TEST(Graph, BornAndDyingOps)
{
    ToyGraphIds ids;
    Graph g = makeToyGraph(&ids);
    const TensorDesc &t0 = g.tensor(ids.temp0);
    auto born = g.tensorsBornAtOp(static_cast<OpId>(t0.first_op));
    EXPECT_NE(std::find(born.begin(), born.end(), ids.temp0), born.end());
    auto dying = g.tensorsDyingAtOp(static_cast<OpId>(t0.last_op));
    EXPECT_NE(std::find(dying.begin(), dying.end(), ids.temp0), dying.end());
    // Preallocated tensors never appear in born/dying lists.
    for (OpId op = 0; op < g.numOps(); ++op) {
        for (TensorId id : g.tensorsBornAtOp(op))
            EXPECT_FALSE(g.tensor(id).preallocated);
    }
}

TEST(Graph, PeakMemoryIsSensible)
{
    Graph g = makeToyGraph();
    std::uint64_t peak = g.peakMemoryBytes();
    // Peak must cover at least preallocated + the largest activation.
    EXPECT_GE(peak, g.preallocatedBytes() + 16 * 4096ull);
    // And no more than the sum of all tensors.
    std::uint64_t total = 0;
    for (const auto &t : g.tensors())
        total += t.bytes;
    EXPECT_LE(peak, total);
}

TEST(Graph, PeakShortLivedSmallerThanPeak)
{
    Graph g = makeToyGraph();
    EXPECT_GT(g.peakShortLivedBytes(), 0u);
    EXPECT_LT(g.peakShortLivedBytes(), g.peakMemoryBytes());
}

TEST(Graph, LargestTensor)
{
    Graph g = makeToyGraph();
    EXPECT_EQ(g.largestTensorBytes(), 16 * 4096ull);
}

TEST(Graph, OutOfOrderLayersPanic)
{
    Graph g("bad", 1);
    TensorId t = g.addTensor("t", 64, TensorKind::Temp);
    g.addOp("late", OpType::Other, 1, 1.0, { { t, true, 64, 1.0 } });
    g.addOp("early", OpType::Other, 0, 1.0, { { t, false, 64, 1.0 } });
    EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(Graph, EmptyLayerPanics)
{
    Graph g("bad", 1);
    TensorId t = g.addTensor("t", 64, TensorKind::Temp);
    g.addOp("op", OpType::Other, 1, 1.0, { { t, true, 64, 1.0 } });
    // Layer 0 has no ops.
    EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(Graph, UnusedPreallocatedTensorPanics)
{
    Graph g("bad", 1);
    g.addTensor("w", 64, TensorKind::Weight, true);
    TensorId t = g.addTensor("t", 64, TensorKind::Temp);
    g.addOp("op", OpType::Other, 0, 1.0, { { t, true, 64, 1.0 } });
    EXPECT_THROW(g.finalize(), std::logic_error);
}

TEST(Graph, UnknownTensorInUsePanics)
{
    Graph g("bad", 1);
    EXPECT_THROW(
        g.addOp("op", OpType::Other, 0, 1.0, { { 99, true, 64, 1.0 } }),
        std::logic_error);
}

TEST(Graph, QueriesBeforeFinalizePanic)
{
    Graph g("bad", 1);
    TensorId t = g.addTensor("t", 64, TensorKind::Temp);
    g.addOp("op", OpType::Other, 0, 1.0, { { t, true, 64, 1.0 } });
    EXPECT_THROW(g.opsInLayer(0), std::logic_error);
    EXPECT_THROW(g.peakMemoryBytes(), std::logic_error);
}

TEST(Graph, NamesForEnums)
{
    EXPECT_STREQ(tensorKindName(TensorKind::Weight), "weight");
    EXPECT_STREQ(tensorKindName(TensorKind::Temp), "temp");
    EXPECT_STREQ(opTypeName(OpType::Conv2d), "conv2d");
    EXPECT_STREQ(opTypeName(OpType::SgdUpdate), "sgd-update");
}

} // namespace
} // namespace sentinel::df
