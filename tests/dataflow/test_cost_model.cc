#include <gtest/gtest.h>

#include "dataflow/cost_model.hh"

namespace sentinel::df {
namespace {

Operation
opWithFlops(double flops)
{
    Operation op;
    op.flops = flops;
    return op;
}

TEST(CostModel, ComputeTime)
{
    ExecParams p{ 1e12, 0 };
    // 1e9 FLOPs at 1 TFLOP/s = 1 ms.
    EXPECT_EQ(computeTime(opWithFlops(1e9), p), 1'000'000);
    EXPECT_EQ(computeTime(opWithFlops(0), p), 0);
}

TEST(CostModel, MemoryTimeBandwidthTerm)
{
    mem::TierParams dram{ "dram", 0, 10e9, 8e9, 0, 0 };
    // 10 MB read at 10 GB/s = 1 ms.
    EXPECT_EQ(memoryTime(10'000'000, 1.0, false, dram), 1'000'000);
    // Writes use write bandwidth.
    EXPECT_EQ(memoryTime(8'000'000, 1.0, true, dram), 1'000'000);
}

TEST(CostModel, MemoryTimeLatencyTerm)
{
    mem::TierParams pmm{ "pmm", 0, 1e12, 1e12, 300, 100 };
    // Bandwidth term negligible at 1 TB/s; 10 episodes pay 10 latencies.
    Tick t = memoryTime(4096, 10.0, false, pmm);
    EXPECT_GE(t, 3000);
    EXPECT_LT(t, 3100);
    // Writes use write latency.
    Tick tw = memoryTime(4096, 10.0, true, pmm);
    EXPECT_GE(tw, 1000);
    EXPECT_LT(tw, 1100);
}

TEST(CostModel, SlowTierCostsMore)
{
    mem::TierParams dram{ "dram", 0, 100e9, 80e9, 80, 80 };
    mem::TierParams pmm{ "pmm", 0, 30e9, 10e9, 300, 100 };
    EXPECT_GT(memoryTime(1'000'000, 2.0, false, pmm),
              memoryTime(1'000'000, 2.0, false, dram));
    EXPECT_GT(memoryTime(1'000'000, 2.0, true, pmm),
              memoryTime(1'000'000, 2.0, true, dram));
}

TEST(CostModel, OpTimeIsMaxPlusOverhead)
{
    ExecParams p{ 1e12, 2000 };
    EXPECT_EQ(opTime(100, 50, p), 2100);
    EXPECT_EQ(opTime(50, 100, p), 2100);
    EXPECT_EQ(opTime(0, 0, p), 2000);
}

TEST(CostModel, RecomputeTimeMatchesCompute)
{
    ExecParams p{ 1e12, 2000 };
    Operation op = opWithFlops(1e9);
    EXPECT_EQ(recomputeTime(op, p), computeTime(op, p) + p.op_overhead);
}

} // namespace
} // namespace sentinel::df
