#include <gtest/gtest.h>

#include "baselines/reference.hh"
#include "dataflow/executor.hh"
#include "mem/access_tracker.hh"
#include "support/test_graphs.hh"

namespace sentinel::df {
namespace {

using sentinel::testing::ToyGraphIds;
using sentinel::testing::makeToyGraph;

mem::HeterogeneousMemory
makeHm(std::uint64_t fast_bytes = 64ull << 20,
       std::uint64_t slow_bytes = 1ull << 30)
{
    mem::TierParams fast{ "dram", fast_bytes, 50e9, 40e9, 80, 80 };
    mem::TierParams slow{ "pmm", slow_bytes, 6e9, 2e9, 300, 100 };
    mem::MigrationParams mig{ 4e9, 2e9, 2000 };
    return mem::HeterogeneousMemory(fast, slow, mig);
}

TEST(Executor, RunsOneStepAndReportsTime)
{
    Graph g = makeToyGraph();
    auto hm = makeHm();
    auto policy = baselines::makeFastOnly();
    Executor ex(g, hm, ExecParams{}, *policy);

    StepStats s = ex.runStep();
    EXPECT_GT(s.step_time, 0);
    EXPECT_GT(s.compute_time, 0);
    EXPECT_GT(s.mem_time, 0);
    EXPECT_EQ(s.step, 0);
    EXPECT_EQ(ex.now(), s.step_time);
}

TEST(Executor, FastOnlyServesEverythingFromFast)
{
    Graph g = makeToyGraph();
    auto hm = makeHm();
    auto policy = baselines::makeFastOnly();
    Executor ex(g, hm, ExecParams{}, *policy);
    StepStats s = ex.runStep();
    EXPECT_GT(s.bytes_fast, 0u);
    EXPECT_EQ(s.bytes_slow, 0u);
    EXPECT_EQ(s.exposed_migration, 0);
}

TEST(Executor, SlowOnlyIsSlowerThanFastOnly)
{
    Graph g = makeToyGraph();
    auto hm_fast = makeHm();
    auto hm_slow = makeHm();
    auto fast = baselines::makeFastOnly();
    auto slow = baselines::makeSlowOnly();
    Executor ex_fast(g, hm_fast, ExecParams{}, *fast);
    Executor ex_slow(g, hm_slow, ExecParams{}, *slow);

    StepStats sf = ex_fast.runStep();
    StepStats ss = ex_slow.runStep();
    EXPECT_GT(ss.step_time, sf.step_time);
    EXPECT_EQ(ss.bytes_fast, 0u);
    EXPECT_GT(ss.bytes_slow, 0u);
}

TEST(Executor, StepsAreDeterministic)
{
    Graph g = makeToyGraph();
    auto run_once = [&g]() {
        auto hm = makeHm();
        auto policy = baselines::makeSlowOnly();
        Executor ex(g, hm, ExecParams{}, *policy);
        auto stats = ex.run(3);
        return stats;
    };
    auto a = run_once();
    auto b = run_once();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].step_time, b[i].step_time);
}

TEST(Executor, SteadyStateStepsHaveEqualTime)
{
    Graph g = makeToyGraph();
    auto hm = makeHm();
    auto policy = baselines::makeSlowOnly();
    Executor ex(g, hm, ExecParams{}, *policy);
    auto stats = ex.run(4);
    // Training is repetitive (the paper's core assumption): once
    // steady, every step costs the same.
    EXPECT_EQ(stats[1].step_time, stats[2].step_time);
    EXPECT_EQ(stats[2].step_time, stats[3].step_time);
}

TEST(Executor, OnlyPreallocatedTensorsSurviveTheStep)
{
    ToyGraphIds ids;
    Graph g = makeToyGraph(&ids);
    auto hm = makeHm();
    auto policy = baselines::makeFastOnly();
    Executor ex(g, hm, ExecParams{}, *policy);
    ex.runStep();

    EXPECT_TRUE(ex.isAllocated(ids.input));
    EXPECT_TRUE(ex.isAllocated(ids.w0));
    EXPECT_TRUE(ex.isAllocated(ids.w1));
    EXPECT_FALSE(ex.isAllocated(ids.a0));
    EXPECT_FALSE(ex.isAllocated(ids.temp0));
    EXPECT_FALSE(ex.isAllocated(ids.g1));
}

TEST(Executor, MemoryFootprintReturnsToBaselineAfterStep)
{
    Graph g = makeToyGraph();
    auto hm = makeHm();
    auto policy = baselines::makeFastOnly();
    Executor ex(g, hm, ExecParams{}, *policy);
    ex.runStep();
    std::uint64_t after_one = hm.tier(mem::Tier::Fast).used();
    ex.runStep();
    // Steady state: no leaked pages step over step.
    EXPECT_EQ(hm.tier(mem::Tier::Fast).used(), after_one);
}

TEST(Executor, PeakFastUsageIsTracked)
{
    Graph g = makeToyGraph();
    auto hm = makeHm();
    auto policy = baselines::makeFastOnly();
    Executor ex(g, hm, ExecParams{}, *policy);
    StepStats s = ex.runStep();
    EXPECT_GT(s.peak_fast_used, 0u);
    EXPECT_GE(s.peak_fast_used, hm.tier(mem::Tier::Fast).used());
    EXPECT_EQ(s.peak_fast_used, hm.tier(mem::Tier::Fast).peakUsed());
}

TEST(Executor, PageSharingIsRefCounted)
{
    // Two sub-page preallocated tensors: the packed layout places the
    // second right behind the first, so they share page 0.
    Graph g("share", 1);
    TensorId a = g.addTensor("a", 1000, TensorKind::Weight, true);
    TensorId b = g.addTensor("b", 1000, TensorKind::Weight, true);
    TensorId t = g.addTensor("t", 1000, TensorKind::Temp);
    g.addOp("op", OpType::Other, 0, 1e6,
            { TensorUse{ a, false, 1000, 1.0 },
              TensorUse{ b, false, 1000, 1.0 },
              TensorUse{ t, true, 1000, 1.0 } });
    g.finalize();

    auto hm = makeHm();
    auto policy = baselines::makeFastOnly();
    Executor ex(g, hm, ExecParams{}, *policy);
    ex.runStep();

    const TensorPlacement &pa = ex.placementOf(a);
    const TensorPlacement &pb = ex.placementOf(b);
    ASSERT_EQ(pa.firstPage(), pb.firstPage()); // page-level false sharing
    // a, b share the page; t was freed at the end of the op, and its
    // sub-page allocation also landed on the same page.
    EXPECT_EQ(ex.pageRefCount(pa.firstPage()), 2);
    // Exactly one physical page is mapped for all three tensors.
    EXPECT_EQ(hm.tier(mem::Tier::Fast).used(), mem::kPageSize);
}

TEST(Executor, AccessTrackerCountsAndChargesFaults)
{
    Graph g = makeToyGraph();
    auto hm_plain = makeHm();
    auto hm_prof = makeHm();
    auto p1 = baselines::makeSlowOnly();
    auto p2 = baselines::makeSlowOnly();
    Executor plain(g, hm_plain, ExecParams{}, *p1);
    Executor prof(g, hm_prof, ExecParams{}, *p2);

    mem::AccessTracker tracker(2 * kUsec);
    prof.setAccessTracker(&tracker);

    StepStats s_plain = plain.runStep();
    StepStats s_prof = prof.runStep();

    EXPECT_GT(tracker.totalFaults(), 0u);
    EXPECT_GT(s_prof.fault_overhead, 0);
    // The profiling step is strictly slower, by exactly the fault cost.
    EXPECT_EQ(s_prof.step_time, s_plain.step_time + s_prof.fault_overhead);
}

TEST(Executor, TraceRecorderSeesTraffic)
{
    Graph g = makeToyGraph();
    auto hm = makeHm();
    auto policy = baselines::makeFastOnly();
    Executor ex(g, hm, ExecParams{}, *policy);
    sim::TraceRecorder trace(100 * kUsec);
    ex.setTraceRecorder(&trace);
    StepStats s = ex.runStep();

    auto fast_bw = trace.bandwidthSeries("fast");
    double total = 0;
    for (double v : fast_bw)
        total += v * toSeconds(trace.bucketWidth());
    EXPECT_NEAR(total, static_cast<double>(s.bytes_fast), 1.0);
}

TEST(Executor, LargerBatchGraphTakesLonger)
{
    // Not strictly an executor property, but a sanity anchor: the toy
    // graph's costs are batch-independent, so instead scale the HM
    // bandwidth down and expect proportionally slower steps.
    Graph g = makeToyGraph();
    auto hm1 = makeHm();
    mem::TierParams fast{ "dram", 64ull << 20, 5e9, 4e9, 80, 80 };
    mem::TierParams slow{ "pmm", 1ull << 30, 6e9, 2e9, 300, 100 };
    auto hm2 = mem::HeterogeneousMemory(fast, slow, { 4e9, 2e9, 2000 });
    auto pa = baselines::makeFastOnly();
    auto pb = baselines::makeFastOnly();
    Executor a(g, hm1, ExecParams{}, *pa);
    Executor b(g, hm2, ExecParams{}, *pb);
    EXPECT_LT(a.runStep().step_time, b.runStep().step_time);
}

} // namespace
} // namespace sentinel::df
