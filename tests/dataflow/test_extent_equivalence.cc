/**
 * @file
 * Differential tests for the extent-granular hot path.
 *
 * The range walk (Executor::AccessMode::Range) and the dense page
 * table are performance features; semantically they must be invisible.
 * Every combination of {dense, hash} page table x {Range, PerPage}
 * access mode x {batched, per-page} policy hook must produce StepStats
 * that are equal field-for-field, on a graph engineered to hit the
 * awkward cases: multi-page tensors, odd (non-page-multiple) traffic,
 * and migrations still in flight in the middle of an accessed extent.
 */

#include <cstdint>
#include <initializer_list>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/arena.hh"
#include "dataflow/executor.hh"
#include "mem/hm.hh"

namespace sentinel::df {
namespace {

constexpr std::uint64_t kPage = mem::kPageSize;

/**
 * Packed slow-first layout that promotes a slice of the big weight
 * tensor at layer 0 and demotes part of it at layer 1 — with the
 * test's migration bandwidth those transfers are still in flight when
 * the ops touch the tensor, so accessed extents straddle in-flight
 * pages, tier changes, and landed pages all at once.
 */
class MigratingTestPolicy : public MemoryPolicy
{
  public:
    MigratingTestPolicy(TensorId weight, bool batched_ranges)
        : weight_(weight), batched_(batched_ranges), arena_(0)
    {
    }

    std::string name() const override { return "migrating-test"; }

    AllocDecision
    allocate(Executor &, const TensorDesc &tensor) override
    {
        return { arena_.allocate(tensor.bytes, 64), mem::Tier::Slow };
    }

    void
    onTensorFreed(Executor &, TensorId,
                  const TensorPlacement &pl) override
    {
        arena_.free(pl.addr, pl.bytes);
    }

    void
    onLayerBegin(Executor &ex, int layer) override
    {
        if (!ex.isAllocated(weight_))
            return;
        mem::PageId first = ex.placementOf(weight_).firstPage();
        auto migrate = [&](std::initializer_list<std::uint64_t> offs,
                           mem::Tier to) {
            for (std::uint64_t o : offs)
                ex.hm().migratePage(first + o, to, ex.now());
        };
        if (layer == 0)
            migrate({ 2, 3, 4, 7 }, mem::Tier::Fast);
        else if (layer == 1)
            migrate({ 2, 3 }, mem::Tier::Slow);
    }

    void
    onRangeAccess(Executor &ex, mem::PageRun run, bool is_write,
                  std::vector<AccessSegment> &out) override
    {
        if (!batched_) {
            // Exercise the default one-page adapter.
            MemoryPolicy::onRangeAccess(ex, run, is_write, out);
            return;
        }
        AccessSegment seg;
        seg.pages = run.count;
        out.push_back(seg);
    }

  private:
    TensorId weight_;
    bool batched_;
    alloc::VirtualArena arena_;
};

struct TestGraph {
    Graph graph;
    TensorId weight;
    std::uint64_t traffic_per_step = 0;

    TestGraph() : graph("extent", 2), weight(0)
    {
        // A 10-page weight (the migration target), activations with
        // non-page-aligned sizes, and a short-lived temp; every
        // traffic count is chosen so traffic % npages != 0.
        weight = graph.addTensor("w", 10 * kPage, TensorKind::Weight,
                                 true);
        TensorId act = graph.addTensor("a", 5 * kPage + 123,
                                       TensorKind::Activation);
        TensorId tmp =
            graph.addTensor("t", 3 * kPage + 7, TensorKind::Temp);

        auto use = [this](TensorId id, bool is_write,
                          std::uint64_t traffic) {
            traffic_per_step += traffic;
            return TensorUse{ id, is_write, traffic, 1.0 };
        };
        graph.addOp("fwd", OpType::Other, 0, 1e6,
                    { use(weight, false, 7 * kPage + 1237),
                      use(act, true, 3 * kPage + 11) });
        graph.addOp("bwd", OpType::Other, 1, 1e6,
                    { use(weight, false, 9 * kPage + 13),
                      use(act, false, 2 * kPage + 999),
                      use(tmp, true, kPage + 1) });
        graph.finalize();
    }
};

mem::HeterogeneousMemory
makeHm(mem::PageTable::Backend backend)
{
    // Fast tier large enough for the promoted slice, migration slow
    // enough (4 GB/s, 2 us startup) that layer-begin transfers are
    // still in flight when the ops run.
    mem::TierParams fast{ "dram", 64ull << 20, 50e9, 40e9, 80, 80 };
    mem::TierParams slow{ "pmm", 1ull << 30, 6e9, 2e9, 300, 100 };
    mem::MigrationParams mig{ 4e9, 2e9, 2000 };
    return mem::HeterogeneousMemory(fast, slow, mig, backend);
}

std::vector<StepStats>
runCombo(mem::PageTable::Backend backend, Executor::AccessMode mode,
         bool batched_policy, int steps = 3)
{
    TestGraph tg;
    auto hm = makeHm(backend);
    MigratingTestPolicy policy(tg.weight, batched_policy);
    Executor ex(tg.graph, hm, ExecParams{}, policy);
    ex.setAccessMode(mode);
    return ex.run(steps);
}

void
expectSameStats(const std::vector<StepStats> &a,
                const std::vector<StepStats> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "step " << i);
        EXPECT_EQ(a[i].step_time, b[i].step_time);
        EXPECT_EQ(a[i].compute_time, b[i].compute_time);
        EXPECT_EQ(a[i].mem_time, b[i].mem_time);
        EXPECT_EQ(a[i].exposed_migration, b[i].exposed_migration);
        EXPECT_EQ(a[i].fault_overhead, b[i].fault_overhead);
        EXPECT_EQ(a[i].recompute_time, b[i].recompute_time);
        EXPECT_EQ(a[i].policy_time, b[i].policy_time);
        EXPECT_EQ(a[i].bytes_fast, b[i].bytes_fast);
        EXPECT_EQ(a[i].bytes_slow, b[i].bytes_slow);
        EXPECT_EQ(a[i].slow_bytes_by_kind, b[i].slow_bytes_by_kind);
        EXPECT_EQ(a[i].promoted_bytes, b[i].promoted_bytes);
        EXPECT_EQ(a[i].demoted_bytes, b[i].demoted_bytes);
        EXPECT_EQ(a[i].peak_fast_used, b[i].peak_fast_used);
        EXPECT_EQ(a[i].num_stalls, b[i].num_stalls);
    }
}

TEST(ExtentEquivalence, MigrationActuallyOverlapsAccesses)
{
    // Guard: the scenario must exercise what it claims to — stalls
    // from in-flight pages and traffic from both tiers.
    auto stats = runCombo(mem::PageTable::Backend::Dense,
                          Executor::AccessMode::Range, false);
    bool stalled = false, fast = false, slow = false;
    for (const auto &s : stats) {
        stalled |= s.num_stalls > 0;
        fast |= s.bytes_fast > 0;
        slow |= s.bytes_slow > 0;
    }
    EXPECT_TRUE(stalled);
    EXPECT_TRUE(fast);
    EXPECT_TRUE(slow);
}

TEST(ExtentEquivalence, RangeWalkMatchesPerPageWalk)
{
    auto ref = runCombo(mem::PageTable::Backend::Hash,
                        Executor::AccessMode::PerPage, false);
    expectSameStats(runCombo(mem::PageTable::Backend::Hash,
                             Executor::AccessMode::Range, false),
                    ref);
    expectSameStats(runCombo(mem::PageTable::Backend::Dense,
                             Executor::AccessMode::Range, false),
                    ref);
}

TEST(ExtentEquivalence, DenseBackendMatchesHashBackend)
{
    auto ref = runCombo(mem::PageTable::Backend::Hash,
                        Executor::AccessMode::PerPage, false);
    expectSameStats(runCombo(mem::PageTable::Backend::Dense,
                             Executor::AccessMode::PerPage, false),
                    ref);
}

TEST(ExtentEquivalence, BatchedPolicyHookMatchesPerPageHook)
{
    auto ref = runCombo(mem::PageTable::Backend::Hash,
                        Executor::AccessMode::PerPage, false);
    expectSameStats(runCombo(mem::PageTable::Backend::Dense,
                             Executor::AccessMode::Range, true),
                    ref);
    expectSameStats(runCombo(mem::PageTable::Backend::Hash,
                             Executor::AccessMode::Range, true),
                    ref);
}

TEST(ExtentEquivalence, TrafficBytesAreExact)
{
    // The per-page split of use.traffic_bytes must not lose the
    // division remainder: fast + slow traffic equals the graph's
    // traffic exactly, in both walk modes.
    TestGraph tg;
    for (auto mode : { Executor::AccessMode::Range,
                       Executor::AccessMode::PerPage }) {
        auto hm = makeHm(mem::PageTable::Backend::Dense);
        MigratingTestPolicy policy(tg.weight, false);
        Executor ex(tg.graph, hm, ExecParams{}, policy);
        ex.setAccessMode(mode);
        for (const auto &s : ex.run(3))
            EXPECT_EQ(s.bytes_fast + s.bytes_slow,
                      tg.traffic_per_step);
    }
}

} // namespace
} // namespace sentinel::df
