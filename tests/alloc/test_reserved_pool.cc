#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/reserved_pool.hh"

namespace sentinel::alloc {
namespace {

constexpr std::uint64_t kBase = 1ull << 40;

TEST(ReservedPool, AllocateWithinCapacity)
{
    ReservedPool pool(kBase, 4 * mem::kPageSize);
    EXPECT_TRUE(pool.canFit(4 * mem::kPageSize));
    auto p = pool.allocate(2 * mem::kPageSize);
    EXPECT_GE(p, kBase);
    EXPECT_EQ(pool.bytesInUse(), 2 * mem::kPageSize);
}

TEST(ReservedPool, ReuseAcrossLifetimes)
{
    ReservedPool pool(kBase, 2 * mem::kPageSize);
    // Simulate short-lived tensor churn: the same space is reused
    // throughout training, which is why RS stays small.
    for (int i = 0; i < 1000; ++i) {
        auto p = pool.allocate(mem::kPageSize);
        pool.free(p, mem::kPageSize);
    }
    EXPECT_EQ(pool.bytesInUse(), 0u);
    EXPECT_EQ(pool.peakUse(), mem::kPageSize);
}

TEST(ReservedPool, OverflowReturnsInvalid)
{
    ReservedPool pool(kBase, mem::kPageSize);
    EXPECT_NE(pool.allocate(mem::kPageSize), ReservedPool::kInvalidAddr);
    EXPECT_FALSE(pool.canFit(1));
    EXPECT_EQ(pool.allocate(1), ReservedPool::kInvalidAddr);
}

TEST(ReservedPool, ResetsWhenDrained)
{
    ReservedPool pool(kBase, 8 * mem::kPageSize);
    // Mixed-size churn that would fragment a never-resetting arena.
    for (int i = 0; i < 10000; ++i) {
        auto a = pool.allocate(100 + (i % 7) * 1000);
        auto b = pool.allocate(6 * mem::kPageSize);
        ASSERT_NE(a, ReservedPool::kInvalidAddr);
        ASSERT_NE(b, ReservedPool::kInvalidAddr);
        pool.free(a, 100 + (i % 7) * 1000);
        pool.free(b, 6 * mem::kPageSize);
    }
    EXPECT_EQ(pool.bytesInUse(), 0u);
}

TEST(ReservedPool, ContainsPage)
{
    ReservedPool pool(kBase, 2 * mem::kPageSize);
    mem::PageId first = mem::pageOf(kBase);
    // The address region is 2x the byte capacity (fragmentation slack).
    EXPECT_TRUE(pool.containsPage(first));
    EXPECT_TRUE(pool.containsPage(first + 3));
    EXPECT_FALSE(pool.containsPage(first + 4));
    EXPECT_FALSE(pool.containsPage(first - 1));
}

TEST(ReservedPool, PeakTracksHighWater)
{
    ReservedPool pool(kBase, 8 * mem::kPageSize);
    auto a = pool.allocate(3 * mem::kPageSize);
    auto b = pool.allocate(2 * mem::kPageSize);
    pool.free(a, 3 * mem::kPageSize);
    pool.allocate(mem::kPageSize);
    EXPECT_EQ(pool.peakUse(), 5 * mem::kPageSize);
    pool.free(b, 2 * mem::kPageSize);
}

TEST(ReservedPool, UnalignedConstructionPanics)
{
    EXPECT_THROW(ReservedPool(kBase + 1, mem::kPageSize), std::logic_error);
    EXPECT_THROW(ReservedPool(kBase, 100), std::logic_error);
}

TEST(ReservedPool, RoundTripsUnalignedSizes)
{
    // S4 regression: the policy frees with the placement's byte count,
    // which must equal what allocate() was given — so alloc/free has to
    // round-trip exactly for sizes that are no multiple of the pool's
    // internal alignment.
    ReservedPool pool(kBase, 2 * mem::kPageSize);
    const std::uint64_t sizes[] = { 1000, 777, 63, 1, 4097 };
    for (int round = 0; round < 3; ++round) {
        std::vector<std::pair<mem::VirtAddr, std::uint64_t>> live;
        for (std::uint64_t sz : sizes) {
            auto p = pool.allocate(sz);
            ASSERT_NE(p, ReservedPool::kInvalidAddr);
            live.emplace_back(p, sz);
        }
        for (const auto &[p, sz] : live)
            pool.free(p, sz);
        EXPECT_EQ(pool.bytesInUse(), 0u);
        EXPECT_TRUE(pool.canFit(2 * mem::kPageSize));
    }
}

} // namespace
} // namespace sentinel::alloc
