#include <gtest/gtest.h>

#include "alloc/reserved_pool.hh"

namespace sentinel::alloc {
namespace {

constexpr std::uint64_t kBase = 1ull << 40;

TEST(ReservedPool, AllocateWithinCapacity)
{
    ReservedPool pool(kBase, 4 * mem::kPageSize);
    EXPECT_TRUE(pool.canFit(4 * mem::kPageSize));
    auto p = pool.allocate(2 * mem::kPageSize);
    EXPECT_GE(p, kBase);
    EXPECT_EQ(pool.bytesInUse(), 2 * mem::kPageSize);
}

TEST(ReservedPool, ReuseAcrossLifetimes)
{
    ReservedPool pool(kBase, 2 * mem::kPageSize);
    // Simulate short-lived tensor churn: the same space is reused
    // throughout training, which is why RS stays small.
    for (int i = 0; i < 1000; ++i) {
        auto p = pool.allocate(mem::kPageSize);
        pool.free(p, mem::kPageSize);
    }
    EXPECT_EQ(pool.bytesInUse(), 0u);
    EXPECT_EQ(pool.peakUse(), mem::kPageSize);
}

TEST(ReservedPool, OverflowReturnsInvalid)
{
    ReservedPool pool(kBase, mem::kPageSize);
    EXPECT_NE(pool.allocate(mem::kPageSize), ReservedPool::kInvalidAddr);
    EXPECT_FALSE(pool.canFit(1));
    EXPECT_EQ(pool.allocate(1), ReservedPool::kInvalidAddr);
}

TEST(ReservedPool, ResetsWhenDrained)
{
    ReservedPool pool(kBase, 8 * mem::kPageSize);
    // Mixed-size churn that would fragment a never-resetting arena.
    for (int i = 0; i < 10000; ++i) {
        auto a = pool.allocate(100 + (i % 7) * 1000);
        auto b = pool.allocate(6 * mem::kPageSize);
        ASSERT_NE(a, ReservedPool::kInvalidAddr);
        ASSERT_NE(b, ReservedPool::kInvalidAddr);
        pool.free(a, 100 + (i % 7) * 1000);
        pool.free(b, 6 * mem::kPageSize);
    }
    EXPECT_EQ(pool.bytesInUse(), 0u);
}

TEST(ReservedPool, ContainsPage)
{
    ReservedPool pool(kBase, 2 * mem::kPageSize);
    mem::PageId first = mem::pageOf(kBase);
    // The address region is 2x the byte capacity (fragmentation slack).
    EXPECT_TRUE(pool.containsPage(first));
    EXPECT_TRUE(pool.containsPage(first + 3));
    EXPECT_FALSE(pool.containsPage(first + 4));
    EXPECT_FALSE(pool.containsPage(first - 1));
}

TEST(ReservedPool, PeakTracksHighWater)
{
    ReservedPool pool(kBase, 8 * mem::kPageSize);
    auto a = pool.allocate(3 * mem::kPageSize);
    auto b = pool.allocate(2 * mem::kPageSize);
    pool.free(a, 3 * mem::kPageSize);
    pool.allocate(mem::kPageSize);
    EXPECT_EQ(pool.peakUse(), 5 * mem::kPageSize);
    pool.free(b, 2 * mem::kPageSize);
}

TEST(ReservedPool, UnalignedConstructionPanics)
{
    EXPECT_THROW(ReservedPool(kBase + 1, mem::kPageSize), std::logic_error);
    EXPECT_THROW(ReservedPool(kBase, 100), std::logic_error);
}

} // namespace
} // namespace sentinel::alloc
