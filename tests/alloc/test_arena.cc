#include <gtest/gtest.h>

#include "alloc/arena.hh"

namespace sentinel::alloc {
namespace {

TEST(Arena, BumpAllocationIsContiguous)
{
    VirtualArena a(0);
    auto p1 = a.allocate(64, 64);
    auto p2 = a.allocate(64, 64);
    EXPECT_EQ(p1, 0u);
    EXPECT_EQ(p2, 64u);
    EXPECT_EQ(a.bytesInUse(), 128u);
}

TEST(Arena, AlignmentRespected)
{
    VirtualArena a(0);
    a.allocate(10, 64);
    auto p = a.allocate(100, 4096);
    EXPECT_EQ(p % 4096, 0u);
}

TEST(Arena, FreedSpaceIsReused)
{
    VirtualArena a(0);
    auto p1 = a.allocate(4096, 64);
    a.allocate(4096, 64); // keep the bump pointer past p1
    a.free(p1, 4096);
    auto p3 = a.allocate(4096, 64);
    // First fit recycles the freed block: this is the address reuse
    // that creates page-level false sharing.
    EXPECT_EQ(p3, p1);
}

TEST(Arena, SmallerAllocationSplitsFreeBlock)
{
    VirtualArena a(0);
    auto p1 = a.allocate(8192, 64);
    a.allocate(64, 64);
    a.free(p1, 8192);
    auto p2 = a.allocate(1000, 64);
    EXPECT_EQ(p2, p1);
    // The remainder is still free and reusable.
    auto p3 = a.allocate(4096, 64);
    EXPECT_GE(p3, p2 + 1000);
    EXPECT_LT(p3, p1 + 8192);
}

TEST(Arena, CoalescingMergesNeighbors)
{
    VirtualArena a(0);
    auto p1 = a.allocate(4096, 64);
    auto p2 = a.allocate(4096, 64);
    auto p3 = a.allocate(4096, 64);
    a.allocate(64, 64);
    a.free(p1, 4096);
    a.free(p3, 4096);
    EXPECT_EQ(a.freeBlocks(), 2u);
    a.free(p2, 4096); // bridges both neighbors
    EXPECT_EQ(a.freeBlocks(), 1u);
    // The merged block can satisfy the full 12 KiB.
    auto big = a.allocate(3 * 4096, 64);
    EXPECT_EQ(big, p1);
}

TEST(Arena, HighWaterTracksFootprint)
{
    VirtualArena a(0);
    auto p1 = a.allocate(4096, 64);
    a.free(p1, 4096);
    a.allocate(4096, 64);
    // Reuse keeps the footprint at one block.
    EXPECT_EQ(a.highWater(), 4096u);
}

TEST(Arena, BaseOffsetsAddresses)
{
    VirtualArena a(1ull << 44);
    auto p = a.allocate(64, 64);
    EXPECT_EQ(p, 1ull << 44);
}

TEST(Arena, DoubleFreePanics)
{
    VirtualArena a(0);
    auto p = a.allocate(4096, 64);
    a.free(p, 4096);
    EXPECT_THROW(a.free(p, 4096), std::logic_error);
}

TEST(Arena, OverlappingFreePanics)
{
    // Regression: the double-free check used to compare exact addresses
    // only, so a free whose range *overlapped* an existing hole spliced
    // an overlapping block into the list — permanently, since
    // coalescing assumes disjoint neighbours.  Both overlap directions
    // must panic, not corrupt.
    {
        VirtualArena a(0);
        auto p1 = a.allocate(4096, 64);
        a.allocate(4096, 64); // keep bump past the freed hole
        a.free(p1, 4096);     // hole [0, 4096)
        // [2048, 6144) straddles the hole's end.
        EXPECT_THROW(a.free(p1 + 2048, 4096), std::logic_error);
    }
    {
        VirtualArena a(0);
        a.allocate(4096, 64);
        auto p2 = a.allocate(4096, 64);
        a.allocate(64, 64);
        a.free(p2, 4096); // hole [4096, 8192)
        // [2048, 6144) straddles the hole's start.
        EXPECT_THROW(a.free(p2 - 2048, 4096), std::logic_error);
    }
}

TEST(Arena, FreeOutsideArenaPanics)
{
    VirtualArena a(0);
    a.allocate(4096, 64);
    EXPECT_THROW(a.free(1ull << 50, 64), std::logic_error);
}

TEST(Arena, ZeroByteAllocationPanics)
{
    VirtualArena a(0);
    EXPECT_THROW(a.allocate(0, 64), std::logic_error);
    EXPECT_THROW(a.allocate(64, 3), std::logic_error); // non-power-of-two
}

TEST(Arena, ExhaustionPanics)
{
    VirtualArena a(0, 8192);
    a.allocate(8192, 64);
    EXPECT_THROW(a.allocate(1, 64), std::logic_error);
}

TEST(Arena, ManyAllocFreeCyclesStayConsistent)
{
    VirtualArena a(0);
    for (int round = 0; round < 100; ++round) {
        auto p1 = a.allocate(1000, 64);
        auto p2 = a.allocate(5000, 64);
        auto p3 = a.allocate(128, 64);
        a.free(p2, 5000);
        a.free(p1, 1000);
        a.free(p3, 128);
    }
    EXPECT_EQ(a.bytesInUse(), 0u);
    EXPECT_EQ(a.freeBlocks(), 1u); // fully coalesced
    // Footprint stays bounded by one round's worth of allocations.
    EXPECT_LE(a.highWater(), 16384u);
}

} // namespace
} // namespace sentinel::alloc

#include <map>
#include <utility>

#include "common/rng.hh"

namespace sentinel::alloc {
namespace {

/**
 * Reference free list: the std::map-based design the vector free list
 * replaced.  Holes are kept maximally coalesced; carving an allocation
 * out of a hole splits it.  The arena's free list must stay *exactly*
 * equal to this at every step — same holes, same boundaries.
 */
class ReferenceFreeList
{
  public:
    /** Record an allocation the arena made at @p addr. */
    void
    onAllocate(mem::VirtAddr addr, std::uint64_t bytes)
    {
        if (addr >= bump_) {
            // Bump allocation: the alignment gap becomes a hole.
            if (addr > bump_)
                insert(bump_, addr - bump_);
            bump_ = addr + bytes;
            return;
        }
        // Recycled: [addr, addr+bytes) must sit inside one hole.
        auto it = holes_.upper_bound(addr);
        ASSERT_NE(it, holes_.begin()) << "allocation outside any hole";
        --it;
        mem::VirtAddr hole = it->first;
        std::uint64_t size = it->second;
        ASSERT_LE(hole, addr);
        ASSERT_GE(hole + size, addr + bytes)
            << "allocation straddles a hole boundary";
        holes_.erase(it);
        if (addr > hole)
            holes_.emplace(hole, addr - hole);
        if (hole + size > addr + bytes)
            holes_.emplace(addr + bytes, hole + size - (addr + bytes));
    }

    /** Record a free, coalescing with adjacent holes. */
    void
    onFree(mem::VirtAddr addr, std::uint64_t bytes)
    {
        insert(addr, bytes);
    }

    std::vector<std::pair<mem::VirtAddr, std::uint64_t>>
    ranges() const
    {
        return { holes_.begin(), holes_.end() };
    }

  private:
    void
    insert(mem::VirtAddr addr, std::uint64_t bytes)
    {
        auto next = holes_.lower_bound(addr);
        if (next != holes_.begin()) {
            auto prev = std::prev(next);
            ASSERT_LE(prev->first + prev->second, addr)
                << "reference: overlapping free";
            if (prev->first + prev->second == addr) {
                addr = prev->first;
                bytes += prev->second;
                holes_.erase(prev);
            }
        }
        if (next != holes_.end()) {
            ASSERT_LE(addr + bytes, next->first)
                << "reference: overlapping free";
            if (addr + bytes == next->first) {
                bytes += next->second;
                holes_.erase(next);
            }
        }
        holes_.emplace(addr, bytes);
    }

    std::map<mem::VirtAddr, std::uint64_t> holes_;
    mem::VirtAddr bump_ = 0;
};

TEST(Arena, FreeListMatchesReferenceOver10kOps)
{
    // Round-trip 10k random alloc/free operations through the arena
    // and the map-based reference in lockstep, requiring exact
    // hole-set equality after every operation.  This is the property
    // the in-place trim + coalescing fast paths must preserve; any
    // missed merge or misplaced split shows up as a boundary diff.
    Rng rng(0x10a);
    VirtualArena a(0);
    ReferenceFreeList ref;
    struct Block {
        mem::VirtAddr addr;
        std::uint64_t bytes;
    };
    std::vector<Block> live;

    for (int step = 0; step < 10000; ++step) {
        bool do_alloc = live.empty() || rng.bernoulli(0.55);
        if (do_alloc) {
            std::uint64_t bytes =
                static_cast<std::uint64_t>(rng.uniformInt(1, 50000));
            std::uint64_t align = 1ull << rng.uniformInt(0, 12);
            mem::VirtAddr addr = a.allocate(bytes, align);
            ref.onAllocate(addr, bytes);
            live.push_back({ addr, bytes });
        } else {
            std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(live.size()) - 1));
            a.free(live[i].addr, live[i].bytes);
            ref.onFree(live[i].addr, live[i].bytes);
            live[i] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(a.freeRanges(), ref.ranges()) << "step " << step;
    }
    for (const Block &b : live) {
        a.free(b.addr, b.bytes);
        ref.onFree(b.addr, b.bytes);
    }
    EXPECT_EQ(a.freeRanges(), ref.ranges());
    EXPECT_EQ(a.bytesInUse(), 0u);
    EXPECT_LE(a.freeBlocks(), 1u);
}

TEST(Arena, RandomizedAllocFreeInvariants)
{
    // Property sweep: under random alloc/free interleavings, byte
    // accounting stays exact, no two live ranges overlap, and a full
    // drain coalesces back to a single free block.
    Rng rng(1234);
    VirtualArena a(0);
    struct Block {
        mem::VirtAddr addr;
        std::uint64_t bytes;
    };
    std::vector<Block> live;
    std::uint64_t live_bytes = 0;

    for (int step = 0; step < 5000; ++step) {
        bool do_alloc = live.empty() || rng.bernoulli(0.55);
        if (do_alloc) {
            std::uint64_t bytes =
                static_cast<std::uint64_t>(rng.uniformInt(1, 100000));
            std::uint64_t align = 1ull << rng.uniformInt(0, 12);
            mem::VirtAddr addr = a.allocate(bytes, align);
            EXPECT_EQ(addr % align, 0u);
            for (const Block &b : live) {
                bool disjoint =
                    addr + bytes <= b.addr || b.addr + b.bytes <= addr;
                ASSERT_TRUE(disjoint) << "overlapping allocation";
            }
            live.push_back({ addr, bytes });
            live_bytes += bytes;
        } else {
            std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(live.size()) - 1));
            a.free(live[i].addr, live[i].bytes);
            live_bytes -= live[i].bytes;
            live[i] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(a.bytesInUse(), live_bytes);
    }
    for (const Block &b : live)
        a.free(b.addr, b.bytes);
    EXPECT_EQ(a.bytesInUse(), 0u);
    EXPECT_LE(a.freeBlocks(), 1u);
}

} // namespace
} // namespace sentinel::alloc
