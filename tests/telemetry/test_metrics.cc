/**
 * @file
 * Counter/Gauge/Histogram semantics, registry snapshot ordering, and
 * the CSV/JSON metric exporters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/export.hh"
#include "telemetry/metrics.hh"

using namespace sentinel::telemetry;

namespace {

TEST(Counter, Accumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksHighWaterMark)
{
    Gauge g;
    g.noteMax(10);
    g.noteMax(3); // lower sample must not pull the mark down
    EXPECT_EQ(g.max(), 10u);
    g.noteMax(99);
    EXPECT_EQ(g.max(), 99u);
}

TEST(Histogram, CountSumMinMax)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u); // empty histogram reports 0, not ~0
    for (std::uint64_t v : { 3ull, 17ull, 1000ull, 0ull })
        h.record(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1020u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, PercentileIsBucketUpperBound)
{
    Histogram h;
    // 99 samples in the [64,128) bucket, one huge outlier.
    for (int i = 0; i < 99; ++i)
        h.record(100);
    h.record(1ull << 40);
    // p50 lands in the 100s bucket: upper bound 2^7 - 1 = 127.
    EXPECT_EQ(h.percentile(0.5), 127u);
    // p100 lands in the outlier's bucket.
    EXPECT_GE(h.percentile(1.0), 1ull << 40);
    // Monotonic in p.
    EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Histogram, BucketBoundaries)
{
    // Bucket i holds values of bit width i: zeros land in bucket 0
    // (reported as 0), a value of 2^(i-1) and one of 2^i - 1 share
    // bucket i and both report the upper bound 2^i - 1.
    Histogram zeros;
    zeros.record(0);
    EXPECT_EQ(zeros.percentile(0.5), 0u);
    EXPECT_EQ(zeros.percentile(1.0), 0u);

    Histogram one;
    one.record(1); // bit width 1 -> bucket 1 -> upper bound 1
    EXPECT_EQ(one.percentile(0.5), 1u);

    Histogram lo, hi;
    lo.record(64);  // 2^6: width 7
    hi.record(127); // 2^7 - 1: width 7
    EXPECT_EQ(lo.percentile(1.0), 127u);
    EXPECT_EQ(hi.percentile(1.0), 127u);

    Histogram next;
    next.record(128); // 2^7: first value of the NEXT bucket
    EXPECT_EQ(next.percentile(1.0), 255u);
}

TEST(Histogram, SingleSampleEveryQuantile)
{
    Histogram h;
    h.record(100); // width 7 -> upper bound 127
    EXPECT_EQ(h.percentile(0.0), 127u);
    EXPECT_EQ(h.percentile(0.5), 127u);
    EXPECT_EQ(h.percentile(1.0), 127u);
}

TEST(Histogram, AllDuplicatesAndTopBucketClamp)
{
    Histogram dup;
    for (int i = 0; i < 32; ++i)
        dup.record(1000); // width 10 -> upper bound 1023
    EXPECT_EQ(dup.percentile(0.01), 1023u);
    EXPECT_EQ(dup.percentile(0.99), 1023u);

    // Values of width >= 64 have no representable 2^i - 1 upper
    // bound; the histogram reports the observed max instead.
    Histogram top;
    top.record(~0ull);
    EXPECT_EQ(top.percentile(1.0), ~0ull);
}

TEST(MetricRegistry, FindOrCreateReturnsStableInstrument)
{
    MetricRegistry reg;
    EXPECT_TRUE(reg.empty());
    Counter &a = reg.counter("x");
    a.add(5);
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 5u);
    EXPECT_FALSE(reg.empty());
}

TEST(MetricRegistry, SnapshotSortedAndTyped)
{
    MetricRegistry reg;
    reg.counter("z.count").add(7);
    reg.gauge("a.peak").noteMax(123);
    reg.histogram("m.lat").record(64);
    reg.histogram("m.lat").record(64);

    auto rows = reg.snapshot();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "a.peak");
    EXPECT_EQ(rows[0].kind, "gauge");
    EXPECT_EQ(rows[0].max, 123u);
    EXPECT_EQ(rows[1].name, "m.lat");
    EXPECT_EQ(rows[1].kind, "histogram");
    EXPECT_EQ(rows[1].count, 2u);
    EXPECT_EQ(rows[1].sum, 128u);
    EXPECT_EQ(rows[2].name, "z.count");
    EXPECT_EQ(rows[2].kind, "counter");
    EXPECT_EQ(rows[2].sum, 7u);
}

TEST(Export, CsvHasHeaderAndOneRowPerMetric)
{
    MetricRegistry reg;
    reg.counter("mem.promoted_bytes").add(4096);
    reg.gauge("mem.fast_peak_bytes").noteMax(1 << 20);

    std::ostringstream os;
    writeMetricsCsv(reg, os);
    std::string csv = os.str();

    std::istringstream is(csv);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "name,kind,count,sum,min,max,p50,p99");
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line.rfind("mem.fast_peak_bytes,gauge,", 0), 0u);
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line.rfind("mem.promoted_bytes,counter,", 0), 0u);
    EXPECT_NE(line.find("4096"), std::string::npos);
    EXPECT_FALSE(std::getline(is, line)); // exactly header + 2 rows
}

TEST(Export, JsonWrapsMetricsArray)
{
    MetricRegistry reg;
    reg.counter("c").add(1);

    std::ostringstream os;
    writeMetricsJson(reg, os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
}

} // namespace
