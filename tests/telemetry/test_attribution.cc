/**
 * @file
 * Unit tests for the stall-attribution engine, the decision audit log,
 * and the ring-drop metric surfaced at export time.
 */

#include <gtest/gtest.h>

#include <string>

#include "telemetry/attribution.hh"
#include "telemetry/audit.hh"
#include "telemetry/session.hh"

using namespace sentinel;
using namespace sentinel::telemetry;

namespace {

TEST(AttributionEngine, ExactDecompositionAcrossContexts)
{
    AttributionEngine attr;
    attr.beginStep(0, 1000);

    attr.setLayer(0);
    attr.setInterval(0);
    attr.chargeExecution(500);
    attr.setAccessTensor(7);
    attr.chargeExposed(40, 2); // access-path stall: tensor 7
    attr.setAccessTensor(kAttrNoTensor);

    attr.setLayer(1);
    attr.setInterval(1);
    attr.chargeExecution(300);
    attr.chargePolicy(25);
    attr.chargeFault(10);
    attr.chargeRecompute(5);

    // Alloc bracket: a stall raised while allocating tensor 9 charges
    // as Alloc to tensor 9 even though tensor 7 is the access context.
    attr.setAccessTensor(7);
    attr.beginAlloc(9);
    attr.chargeExposed(60, 1);
    attr.endAlloc();
    attr.setAccessTensor(kAttrNoTensor);

    attr.noteMigration(true, 4096);
    attr.noteMigration(false, 8192);

    attr.endStep(/*step_time=*/940, /*exposed_migration=*/100,
                 /*policy_time=*/25, /*fault_overhead=*/10,
                 /*recompute_time=*/5, /*num_stalls=*/3);

    ASSERT_EQ(attr.steps().size(), 1u);
    EXPECT_TRUE(attr.allExact());

    AttrBucket t = attr.totals();
    EXPECT_EQ(t.component(AttrComponent::Execution), 800);
    EXPECT_EQ(t.component(AttrComponent::Exposed), 40);
    EXPECT_EQ(t.component(AttrComponent::Alloc), 60);
    EXPECT_EQ(t.component(AttrComponent::Policy), 25);
    EXPECT_EQ(t.component(AttrComponent::Fault), 10);
    EXPECT_EQ(t.component(AttrComponent::Recompute), 5);
    EXPECT_EQ(t.total(), 940);
    EXPECT_EQ(t.exposedMigration(), 100);
    EXPECT_EQ(t.stall_events, 3u);
    EXPECT_EQ(t.promoted_bytes, 4096u);
    EXPECT_EQ(t.demoted_bytes, 8192u);

    // Per-layer split: layer 0 got the execution+stall of the first
    // block, layer 1 everything after setLayer(1).
    ASSERT_EQ(attr.byLayer().count(0), 1u);
    ASSERT_EQ(attr.byLayer().count(1), 1u);
    EXPECT_EQ(attr.byLayer().at(0).total(), 540);
    EXPECT_EQ(attr.byLayer().at(1).total(), 400);
    EXPECT_EQ(attr.byInterval().at(0).stall_events, 2u);
    EXPECT_EQ(attr.byInterval().at(1).stall_events, 1u);

    // Per-tensor: access stall on 7, alloc stall on 9.
    ASSERT_EQ(attr.byTensor().count(7), 1u);
    ASSERT_EQ(attr.byTensor().count(9), 1u);
    EXPECT_EQ(attr.byTensor().at(7).exposed, 40);
    EXPECT_EQ(attr.byTensor().at(7).alloc, 0);
    EXPECT_EQ(attr.byTensor().at(9).alloc, 60);
    EXPECT_EQ(attr.byTensor().at(9).exposed, 0);
}

TEST(AttributionEngine, ChargesOutsideStepsAreIgnored)
{
    AttributionEngine attr;
    attr.chargeExecution(100); // before any step: dropped
    attr.beginStep(0, 0);
    attr.chargeExecution(10);
    attr.endStep(10, 0, 0, 0, 0, 0);
    attr.chargePolicy(50); // after the step: dropped
    EXPECT_EQ(attr.totals().total(), 10);
    EXPECT_TRUE(attr.allExact());
}

TEST(AttributionEngine, CrossCheckAgainstEventStream)
{
    AttributionEngine attr;
    attr.beginStep(0, 0);
    attr.setAccessTensor(3);
    attr.chargeExposed(120, 1);
    attr.chargeExposed(30, 1);
    attr.endStep(150, 150, 0, 0, 0, 2);

    EventSink sink(16);
    sink.emit(Event{ 10, 120, 0, 3, EventType::Stall, 0 });
    sink.emit(Event{ 200, 30, 0, 3, EventType::Stall, 0 });

    std::string why;
    EXPECT_TRUE(attr.crossCheckEvents(sink, &why)) << why;

    // A missing stall event is a mismatch.
    EventSink partial(16);
    partial.emit(Event{ 10, 120, 0, 3, EventType::Stall, 0 });
    EXPECT_FALSE(attr.crossCheckEvents(partial, &why));
    EXPECT_FALSE(why.empty());
}

TEST(AttributionEngine, CrossCheckIndeterminateAfterRingDrop)
{
    AttributionEngine attr;
    attr.beginStep(0, 0);
    attr.chargeExposed(50, 1);
    attr.endStep(50, 50, 0, 0, 0, 1);

    EventSink sink(2); // tiny ring: overflow guaranteed
    for (int i = 0; i < 8; ++i)
        sink.emit(Event{ Tick(i), 0, 0, 0, EventType::OpBegin, 0 });
    ASSERT_GT(sink.dropped(), 0u);

    std::string why;
    EXPECT_TRUE(attr.crossCheckEvents(sink, &why));
    EXPECT_FALSE(why.empty()); // carries the indeterminate caveat
}

TEST(AuditLog, AppendQueryAndOverflow)
{
    AuditLog log(4);
    for (int i = 0; i < 6; ++i) {
        AuditRecord r;
        r.ts = 100 * (i + 1);
        r.tensor = i % 2 == 0 ? 11u : 22u;
        r.bytes = 4096;
        r.step = i;
        r.reason = i % 2 == 0 ? AuditReason::kPrefetchNextInterval
                              : AuditReason::kEvictDeadTensor;
        log.append(r);
    }
    // Oldest records win on overflow.
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.dropped(), 2u);
    EXPECT_EQ(log.records().front().ts, 100);
    EXPECT_EQ(log.records().back().ts, 400);

    auto hist = log.forTensor(11);
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_EQ(hist[0].step, 0);
    EXPECT_EQ(hist[1].step, 2);

    const AuditRecord *last = log.lastForTensor(22);
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(last->step, 3);
    EXPECT_EQ(log.lastForTensor(33), nullptr);
}

TEST(AuditLog, MatchMigrationJoinsByTimestampAndDirection)
{
    AuditLog log;
    AuditRecord promote;
    promote.ts = 500;
    promote.tensor = 1;
    promote.reason = AuditReason::kPrefetchNextInterval;
    log.append(promote);

    AuditRecord demote;
    demote.ts = 500; // same tick, opposite direction
    demote.tensor = 2;
    demote.reason = AuditReason::kEvictForSpace;
    log.append(demote);

    const AuditRecord *p = log.matchMigration(500, /*promote=*/true);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->tensor, 1u);
    const AuditRecord *d = log.matchMigration(500, /*promote=*/false);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->tensor, 2u);
    EXPECT_EQ(log.matchMigration(501, true), nullptr);
}

TEST(AuditReason, NamesAndDirections)
{
    EXPECT_STREQ(auditReasonName(AuditReason::kPrefetchNextInterval),
                 "kPrefetchNextInterval");
    EXPECT_STREQ(auditReasonName(AuditReason::kReplanDivergence),
                 "kReplanDivergence");
    EXPECT_TRUE(auditReasonIsPromote(AuditReason::kPrefetchDemand));
    EXPECT_TRUE(auditReasonIsDemote(AuditReason::kEvictForSpace));
    EXPECT_FALSE(auditReasonIsPromote(AuditReason::kPinReservedPool));
    EXPECT_FALSE(auditReasonIsDemote(AuditReason::kPinReservedPool));
}

TEST(SessionDropCounter, DeltaSyncNeverDoubleCounts)
{
    Session session(TelemetryConfig{ true, 4 });
    for (int i = 0; i < 10; ++i)
        session.emit(EventType::OpBegin, i);
    std::uint64_t dropped = session.events().dropped();
    ASSERT_GT(dropped, 0u);

    session.syncDropCounter();
    EXPECT_EQ(session.metrics().counter("telemetry.events_dropped").value(),
              dropped);

    // Re-syncing with no new drops adds nothing.
    session.syncDropCounter();
    EXPECT_EQ(session.metrics().counter("telemetry.events_dropped").value(),
              dropped);

    // More overflow: only the delta lands.
    for (int i = 0; i < 4; ++i)
        session.emit(EventType::OpBegin, 100 + i);
    std::uint64_t dropped2 = session.events().dropped();
    ASSERT_GT(dropped2, dropped);
    session.syncDropCounter();
    EXPECT_EQ(session.metrics().counter("telemetry.events_dropped").value(),
              dropped2);
}

TEST(SessionDropCounter, NoDropsNoCounter)
{
    Session session(TelemetryConfig{ true, 64 });
    session.emit(EventType::OpBegin, 1);
    session.syncDropCounter();
    EXPECT_EQ(session.metrics().counter("telemetry.events_dropped").value(),
              0u);
}

} // namespace
