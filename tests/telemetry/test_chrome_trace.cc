/**
 * @file
 * Golden-trace test: a tiny three-layer graph run under the Sentinel
 * policy with telemetry attached must export a valid Chrome-trace JSON
 * — structurally parseable, timestamps monotonic per track, begin/end
 * pairs balanced — containing op, migration, and interval events.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/runtime.hh"
#include "core/sentinel_policy.hh"
#include "dataflow/executor.hh"
#include "profile/profiler.hh"
#include "telemetry/audit.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/session.hh"

using namespace sentinel;

namespace {

/**
 * Three layers: two forward convolutions and one backward layer that
 * re-reads the layer-0 activation (the cross-layer reuse that makes
 * Sentinel prefetch/demote once the fast tier is undersized).
 */
df::Graph
makeThreeLayerGraph()
{
    using namespace df;
    Graph g("tiny3", 4);

    const std::uint64_t kAct = 32 * 4096;
    const std::uint64_t kW = 2 * 4096;

    TensorId input = g.addTensor("input", kAct, TensorKind::Input, true);
    TensorId w0 = g.addTensor("w0", kW, TensorKind::Weight, true);
    TensorId w1 = g.addTensor("w1", kW, TensorKind::Weight, true);
    TensorId a0 = g.addTensor("a0", kAct, TensorKind::Activation);
    TensorId a1 = g.addTensor("a1", kAct, TensorKind::Activation);
    TensorId g0 = g.addTensor("g0", kAct, TensorKind::ActivationGrad);

    auto r = [](TensorId t, std::uint64_t bytes) {
        return TensorUse{ t, false, bytes, 1.0 };
    };
    auto w = [](TensorId t, std::uint64_t bytes) {
        return TensorUse{ t, true, bytes, 1.0 };
    };

    g.addOp("l0/conv", OpType::Conv2d, 0, 4e7,
            { r(input, kAct), r(w0, kW), w(a0, kAct) });
    g.addOp("l1/conv", OpType::Conv2d, 1, 4e7,
            { r(a0, kAct), r(w1, kW), w(a1, kAct) });
    g.addOp("l1/bwd", OpType::ConvBackward, 2, 6e7,
            { r(a1, kAct), r(a0, kAct), r(w1, kW), w(g0, kAct) });
    g.addOp("l0/update", OpType::SgdUpdate, 2, 1e6,
            { r(g0, kAct), w(w0, kW) });
    g.finalize();
    return g;
}

/** Scan for balanced braces/brackets, string- and escape-aware. */
bool
jsonStructurallyValid(const std::string &s)
{
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
            ++braces;
            break;
          case '}':
            if (--braces < 0)
                return false;
            break;
          case '[':
            ++brackets;
            break;
          case ']':
            if (--brackets < 0)
                return false;
            break;
          default:
            break;
        }
    }
    return braces == 0 && brackets == 0 && !in_string;
}

/** One trace record, as parsed back out of the exported JSON. */
struct ParsedEvent {
    std::string ph;
    std::string cat;
    int pid = 0;
    int tid = 0;
    double ts = -1.0;
};

std::string
extractString(const std::string &line, const std::string &key)
{
    std::string pat = "\"" + key + "\":\"";
    auto pos = line.find(pat);
    if (pos == std::string::npos)
        return {};
    pos += pat.size();
    auto end = line.find('"', pos);
    return line.substr(pos, end - pos);
}

double
extractNumber(const std::string &line, const std::string &key,
              double fallback)
{
    std::string pat = "\"" + key + "\":";
    auto pos = line.find(pat);
    if (pos == std::string::npos)
        return fallback;
    return std::strtod(line.c_str() + pos + pat.size(), nullptr);
}

std::vector<ParsedEvent>
parseTraceLines(const std::string &json)
{
    std::vector<ParsedEvent> out;
    std::size_t start = 0;
    while (start < json.size()) {
        auto nl = json.find('\n', start);
        if (nl == std::string::npos)
            nl = json.size();
        std::string line = json.substr(start, nl - start);
        start = nl + 1;
        if (line.find("\"ph\":\"") == std::string::npos)
            continue;
        ParsedEvent e;
        e.ph = extractString(line, "ph");
        e.cat = extractString(line, "cat");
        e.pid = static_cast<int>(extractNumber(line, "pid", 0));
        e.tid = static_cast<int>(extractNumber(line, "tid", -1));
        e.ts = extractNumber(line, "ts", -1.0);
        out.push_back(e);
    }
    return out;
}

/**
 * Process label with every character class the metadata escaper must
 * handle: quote, backslash, newline, and a control byte.
 */
const char kHostileLabel[] = "tiny\"3\\run\nname\x01";

std::string
runTinyGraphTrace(telemetry::Session &session, telemetry::AuditLog &audit)
{
    df::Graph graph = makeThreeLayerGraph();
    // Fast tier sized well under peak so migration must happen.
    std::uint64_t fast =
        mem::roundUpToPages(graph.peakMemoryBytes() / 3);
    auto cfg = core::RuntimeConfig::optane(fast);

    mem::HeterogeneousMemory prof_hm(cfg.fast, cfg.slow, cfg.migration);
    prof::Profiler profiler(cfg.profiler);
    auto profile = profiler.profile(graph, prof_hm, cfg.exec);

    core::SentinelPolicy policy(profile.db);
    policy.setTelemetry(&session);
    policy.setAudit(&audit);
    mem::HeterogeneousMemory hm(cfg.fast, cfg.slow, cfg.migration);
    hm.setTelemetry(&session);
    df::Executor ex(graph, hm, cfg.exec, policy);
    ex.setTelemetry(&session);
    ex.run(6);

    telemetry::ChromeTraceOptions opts;
    opts.audit = &audit;
    opts.process_label = kHostileLabel;
    return telemetry::chromeTraceJson(session.events(), opts);
}

class ChromeTraceGolden : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        session_ = new telemetry::Session;
        audit_ = new telemetry::AuditLog;
        json_ = new std::string(runTinyGraphTrace(*session_, *audit_));
    }
    static void
    TearDownTestSuite()
    {
        delete json_;
        delete audit_;
        delete session_;
        json_ = nullptr;
        audit_ = nullptr;
        session_ = nullptr;
    }

    static telemetry::Session *session_;
    static telemetry::AuditLog *audit_;
    static std::string *json_;
};

telemetry::Session *ChromeTraceGolden::session_ = nullptr;
telemetry::AuditLog *ChromeTraceGolden::audit_ = nullptr;
std::string *ChromeTraceGolden::json_ = nullptr;

TEST_F(ChromeTraceGolden, NothingDroppedAtDefaultCapacity)
{
    EXPECT_EQ(session_->events().dropped(), 0u);
    EXPECT_GT(session_->events().size(), 0u);
}

TEST_F(ChromeTraceGolden, JsonIsStructurallyValid)
{
    EXPECT_TRUE(jsonStructurallyValid(*json_));
    EXPECT_NE(json_->find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json_->find("\"process_name\""), std::string::npos);
    EXPECT_NE(json_->find("\"thread_name\""), std::string::npos);
}

TEST_F(ChromeTraceGolden, TimestampsMonotonicPerTrack)
{
    auto events = parseTraceLines(*json_);
    ASSERT_FALSE(events.empty());
    std::map<std::pair<int, int>, double> last;
    for (const auto &e : events) {
        if (e.ph == "M")
            continue;
        ASSERT_GE(e.ts, 0.0);
        auto key = std::make_pair(e.pid, e.tid);
        auto it = last.find(key);
        if (it != last.end()) {
            EXPECT_GE(e.ts, it->second)
                << "track (" << e.pid << "," << e.tid << ")";
        }
        last[key] = e.ts;
    }
}

TEST_F(ChromeTraceGolden, BeginEndPairsBalancedPerTrack)
{
    auto events = parseTraceLines(*json_);
    std::map<std::pair<int, int>, int> depth;
    for (const auto &e : events) {
        auto key = std::make_pair(e.pid, e.tid);
        if (e.ph == "B") {
            ++depth[key];
        } else if (e.ph == "E") {
            --depth[key];
            EXPECT_GE(depth[key], 0)
                << "unmatched E on track (" << e.pid << "," << e.tid
                << ")";
        }
    }
    for (const auto &kv : depth)
        EXPECT_EQ(kv.second, 0)
            << "unclosed B on track (" << kv.first.first << ","
            << kv.first.second << ")";
}

TEST_F(ChromeTraceGolden, ContainsOpMigrationAndIntervalEvents)
{
    auto events = parseTraceLines(*json_);
    bool has_op = false;
    bool has_migration = false;
    bool has_interval = false;
    bool has_step = false;
    for (const auto &e : events) {
        if (e.cat == "op_begin")
            has_op = true;
        if (e.cat == "promotion" || e.cat == "demotion")
            has_migration = true;
        if (e.cat == "interval_begin")
            has_interval = true;
        if (e.cat == "step_begin")
            has_step = true;
    }
    EXPECT_TRUE(has_op);
    EXPECT_TRUE(has_migration);
    EXPECT_TRUE(has_interval);
    EXPECT_TRUE(has_step);
}

TEST_F(ChromeTraceGolden, HostileMetadataNamesAreEscaped)
{
    // The raw label must never appear unescaped (its quote would
    // terminate the JSON string early)...
    EXPECT_EQ(json_->find(kHostileLabel), std::string::npos);
    // ...and the escaped spelling must.
    EXPECT_NE(json_->find("tiny\\\"3\\\\run\\nname\\u0001"),
              std::string::npos);
}

TEST_F(ChromeTraceGolden, AuditReasonsJoinMigrationEvents)
{
    ASSERT_GT(audit_->size(), 0u);
    ASSERT_EQ(audit_->dropped(), 0u);

    // Walk the raw lines: every migration slice that the audit log can
    // explain must carry a valid reason code and the deciding tensor.
    int with_reason = 0;
    std::size_t start = 0;
    while (start < json_->size()) {
        auto nl = json_->find('\n', start);
        if (nl == std::string::npos)
            nl = json_->size();
        std::string line = json_->substr(start, nl - start);
        start = nl + 1;
        std::string cat = extractString(line, "cat");
        if (cat != "promotion" && cat != "demotion")
            continue;
        std::string reason = extractString(line, "reason");
        if (reason.empty())
            continue;
        ++with_reason;
        bool valid = false;
        for (std::size_t i = 0; i < telemetry::kNumAuditReasons; ++i)
            valid = valid ||
                    reason == telemetry::auditReasonName(
                                  static_cast<telemetry::AuditReason>(i));
        EXPECT_TRUE(valid) << "unknown reason code '" << reason << "'";
        EXPECT_NE(line.find("\"tensor\":"), std::string::npos) << line;
    }
    EXPECT_GT(with_reason, 0)
        << "no migration event carried an audit reason";
}

TEST(ChromeTraceEmpty, EmptySinkStillWritesValidJson)
{
    telemetry::EventSink sink(4);
    std::string json = telemetry::chromeTraceJson(sink);
    EXPECT_TRUE(jsonStructurallyValid(json));
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(ChromeTraceLabeler, LabelerOverridesDefaultNames)
{
    telemetry::EventSink sink(8);
    sink.emit(telemetry::Event{ 100, 50, 4096, 7,
                                telemetry::EventType::OpBegin, 0 });
    sink.emit(telemetry::Event{ 150, 0, 0, 7,
                                telemetry::EventType::OpEnd, 0 });
    std::string json = telemetry::chromeTraceJson(
        sink, [](const telemetry::Event &e) {
            return e.type == telemetry::EventType::OpBegin
                       ? std::string("custom \"op\" name")
                       : std::string();
        });
    EXPECT_TRUE(jsonStructurallyValid(json));
    // Quote inside the label must be escaped, default name kept for
    // the unlabeled end event.
    EXPECT_NE(json.find("custom \\\"op\\\" name"), std::string::npos);
    EXPECT_NE(json.find("\"op 7\""), std::string::npos);
}

} // namespace
