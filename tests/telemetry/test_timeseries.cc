/**
 * @file
 * TimeSeries/StepBoard semantics: ring retention, incremental window
 * aggregates, EWMA value/rate, the percentile sketch, and the fixed
 * StepSeries vocabulary.
 */

#include <gtest/gtest.h>

#include "telemetry/timeseries.hh"

using namespace sentinel;
using namespace sentinel::telemetry;

namespace {

TEST(TimeSeries, EmptySeriesReadsAsZero)
{
    TimeSeries ts;
    EXPECT_EQ(ts.total(), 0u);
    EXPECT_EQ(ts.last(), 0u);
    EXPECT_EQ(ts.retained(), 0u);
    EXPECT_EQ(ts.ewma(), 0.0);
    EXPECT_EQ(ts.ewmaRate(), 0.0);
    WindowStats w = ts.window();
    EXPECT_EQ(w.count, 0u);
    EXPECT_EQ(w.sum, 0u);
    EXPECT_EQ(w.mean, 0.0);
}

TEST(TimeSeries, WindowTracksTheLastWSamples)
{
    TimeSeries ts({ /*capacity=*/8, /*window=*/4, /*alpha=*/0.5 });
    for (std::uint64_t v = 1; v <= 10; ++v)
        ts.push(v * 10);
    // Window covers {70, 80, 90, 100}.
    WindowStats w = ts.window();
    EXPECT_EQ(w.count, 4u);
    EXPECT_EQ(w.sum, 340u);
    EXPECT_EQ(w.min, 70u);
    EXPECT_EQ(w.max, 100u);
    EXPECT_DOUBLE_EQ(w.mean, 85.0);
    EXPECT_EQ(ts.last(), 100u);
    EXPECT_EQ(ts.total(), 10u);
}

TEST(TimeSeries, PartialWindowBeforeWSamples)
{
    TimeSeries ts({ 8, 4, 0.5 });
    ts.push(6);
    ts.push(2);
    WindowStats w = ts.window();
    EXPECT_EQ(w.count, 2u);
    EXPECT_EQ(w.sum, 8u);
    EXPECT_EQ(w.min, 2u);
    EXPECT_EQ(w.max, 6u);
    EXPECT_DOUBLE_EQ(w.mean, 4.0);
}

TEST(TimeSeries, RingRetainsTheNewestCapacitySamples)
{
    TimeSeries ts({ /*capacity=*/4, /*window=*/4, 0.5 });
    for (std::uint64_t v = 1; v <= 6; ++v)
        ts.push(v);
    ASSERT_EQ(ts.retained(), 4u);
    // Oldest-first view: 3, 4, 5, 6.
    EXPECT_EQ(ts.sample(0), 3u);
    EXPECT_EQ(ts.sample(3), 6u);
}

TEST(TimeSeries, WindowClampedToCapacity)
{
    // A window wider than the ring silently clamps: the incremental
    // sum can only ever cover retained samples.
    TimeSeries ts({ /*capacity=*/4, /*window=*/16, 0.5 });
    EXPECT_EQ(ts.options().window, 4u);
    for (std::uint64_t v = 1; v <= 8; ++v)
        ts.push(1);
    EXPECT_EQ(ts.window().sum, 4u);
}

TEST(TimeSeries, EwmaConvergesTowardConstantInput)
{
    TimeSeries ts({ 16, 8, /*alpha=*/0.25 });
    ts.push(100); // first sample initializes the EWMA exactly
    EXPECT_DOUBLE_EQ(ts.ewma(), 100.0);
    ts.push(200);
    EXPECT_DOUBLE_EQ(ts.ewma(), 125.0); // 100 + 0.25 * (200 - 100)
    for (int i = 0; i < 100; ++i)
        ts.push(200);
    EXPECT_NEAR(ts.ewma(), 200.0, 1e-6);
}

TEST(TimeSeries, RateEwmaUsesSimulatedTime)
{
    TimeSeries ts({ 16, 8, 1.0 }); // alpha 1: rate == last measured
    // First stamped push anchors the clock, no rate yet.
    ts.pushAt(1000, /*now=*/1'000'000);
    EXPECT_EQ(ts.ewmaRate(), 0.0);
    // 1000 units over 1 ms of simulated time = 1e6 units/s.
    ts.pushAt(1000, 2'000'000);
    EXPECT_NEAR(ts.ewmaRate(), 1e6, 1.0);
}

TEST(TimeSeries, SketchTracksAllSamplesNotJustTheRing)
{
    TimeSeries ts({ /*capacity=*/4, 4, 0.5 });
    for (int i = 0; i < 100; ++i)
        ts.push(100); // bit width 7 -> bucket upper bound 127
    ts.push(1ull << 30);
    EXPECT_EQ(ts.sketch().count(), 101u);
    EXPECT_EQ(ts.sketch().percentile(0.5), 127u);
    EXPECT_GE(ts.sketch().percentile(1.0), 1ull << 30);
}

TEST(TimeSeries, ResetKeepsCapacityDropsData)
{
    TimeSeries ts({ 4, 4, 0.5 });
    for (std::uint64_t v = 1; v <= 6; ++v)
        ts.pushAt(v, static_cast<Tick>(v) * 1000);
    ts.reset();
    EXPECT_EQ(ts.total(), 0u);
    EXPECT_EQ(ts.retained(), 0u);
    EXPECT_EQ(ts.window().count, 0u);
    EXPECT_EQ(ts.sketch().count(), 0u);
    ts.push(42);
    EXPECT_EQ(ts.last(), 42u);
}

TEST(StepSeries, NamesAreStableAndComplete)
{
    // The OpenMetrics stems are contract: renaming one silently
    // orphans dashboards.
    EXPECT_STREQ(stepSeriesName(StepSeries::StepTime), "step_time_ns");
    EXPECT_STREQ(stepSeriesName(StepSeries::ExposedMigration),
                 "exposed_migration_ns");
    EXPECT_STREQ(stepSeriesName(StepSeries::PolicyTime),
                 "policy_time_ns");
    EXPECT_STREQ(stepSeriesName(StepSeries::PromotedBytes),
                 "promoted_bytes");
    EXPECT_STREQ(stepSeriesName(StepSeries::DemotedBytes),
                 "demoted_bytes");
    EXPECT_STREQ(stepSeriesName(StepSeries::SlowBytes), "slow_bytes");
    EXPECT_STREQ(stepSeriesName(StepSeries::PeakFastUsed),
                 "peak_fast_used_bytes");
    EXPECT_STREQ(stepSeriesName(StepSeries::Stalls), "stalls");
}

TEST(StepBoard, ObserveFeedsThePerSeriesRings)
{
    StepBoard board({ 16, 4, 0.5 });
    for (int s = 0; s < 5; ++s) {
        Tick now = (s + 1) * 1'000'000;
        board.observe(StepSeries::StepTime, 1'000'000, now);
        board.observe(StepSeries::Stalls,
                      static_cast<std::uint64_t>(s), now);
        board.endStep(now);
    }
    EXPECT_EQ(board.steps(), 5u);
    EXPECT_EQ(board.lastTick(), 5'000'000);
    EXPECT_EQ(board.series(StepSeries::StepTime).total(), 5u);
    EXPECT_EQ(board.series(StepSeries::Stalls).last(), 4u);
    EXPECT_EQ(board.series(StepSeries::PromotedBytes).total(), 0u);
}

TEST(StepBoard, ResetClearsEverySeries)
{
    StepBoard board;
    board.observe(StepSeries::StepTime, 7, 100);
    board.endStep(100);
    board.reset();
    EXPECT_EQ(board.steps(), 0u);
    EXPECT_EQ(board.lastTick(), -1);
    EXPECT_EQ(board.series(StepSeries::StepTime).total(), 0u);
}

} // namespace
