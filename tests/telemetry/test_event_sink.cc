/**
 * @file
 * EventSink ring-buffer semantics: capacity rounding, overwrite-oldest
 * overflow, snapshot ordering — plus the disabled-path guarantee that
 * an executor without a session produces bit-identical results to one
 * with a session attached (telemetry observes, never perturbs).
 */

#include <gtest/gtest.h>

#include "baselines/reference.hh"
#include "dataflow/executor.hh"
#include "mem/hm.hh"
#include "support/test_graphs.hh"
#include "telemetry/event_sink.hh"
#include "telemetry/session.hh"

using namespace sentinel;
using telemetry::Event;
using telemetry::EventSink;
using telemetry::EventType;

namespace {

Event
ev(Tick ts, std::uint32_t id)
{
    Event e;
    e.ts = ts;
    e.id = id;
    e.type = EventType::OpBegin;
    return e;
}

TEST(EventSink, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(EventSink(0).capacity(), 2u);
    EXPECT_EQ(EventSink(5).capacity(), 8u);
    EXPECT_EQ(EventSink(8).capacity(), 8u);
    EXPECT_EQ(EventSink(1000).capacity(), 1024u);
}

TEST(EventSink, RetainsEverythingBelowCapacity)
{
    EventSink sink(8);
    for (std::uint32_t i = 0; i < 5; ++i)
        sink.emit(ev(i, i));
    EXPECT_EQ(sink.size(), 5u);
    EXPECT_EQ(sink.totalEmitted(), 5u);
    EXPECT_EQ(sink.dropped(), 0u);

    auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(events[i].id, i);
}

TEST(EventSink, OverflowDropsOldestKeepsNewest)
{
    EventSink sink(8);
    for (std::uint32_t i = 0; i < 20; ++i)
        sink.emit(ev(i, i));
    EXPECT_EQ(sink.size(), 8u);
    EXPECT_EQ(sink.totalEmitted(), 20u);
    EXPECT_EQ(sink.dropped(), 12u);

    auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // Oldest first: ids 12..19.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].id, 12u + i);
}

TEST(EventSink, ClearResets)
{
    EventSink sink(4);
    for (std::uint32_t i = 0; i < 9; ++i)
        sink.emit(ev(i, i));
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.dropped(), 0u);
    EXPECT_TRUE(sink.snapshot().empty());

    sink.emit(ev(42, 42));
    auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].id, 42u);
}

// --- Disabled / attached-path guarantees ---------------------------------

mem::HeterogeneousMemory
makeHm()
{
    mem::TierParams fast{ "dram", 64ull << 20, 76e9, 50e9, 85, 90 };
    mem::TierParams slow{ "pmm", 1ull << 30, 30e9, 10e9, 300, 120 };
    return mem::HeterogeneousMemory(fast, slow, { 8e9, 6e9, 2000 });
}

std::vector<df::StepStats>
runToy(telemetry::Session *session, int steps)
{
    df::Graph g = sentinel::testing::makeToyGraph();
    auto hm = makeHm();
    hm.setTelemetry(session);
    auto policy = baselines::makeSlowOnly();
    df::Executor ex(g, hm, df::ExecParams{}, *policy);
    ex.setTelemetry(session);
    std::vector<df::StepStats> out;
    for (int i = 0; i < steps; ++i)
        out.push_back(ex.runStep());
    return out;
}

TEST(TelemetryDisabledPath, NullSessionIsSupportedEverywhere)
{
    // No session attached at all: the default state, must just work.
    auto stats = runToy(nullptr, 3);
    EXPECT_EQ(stats.size(), 3u);
    EXPECT_GT(stats.back().step_time, 0);
}

TEST(TelemetryDisabledPath, AttachedSessionDoesNotPerturbSimulation)
{
    auto plain = runToy(nullptr, 4);
    telemetry::Session session;
    auto traced = runToy(&session, 4);

    ASSERT_EQ(plain.size(), traced.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].step_time, traced[i].step_time) << "step " << i;
        EXPECT_EQ(plain[i].compute_time, traced[i].compute_time);
        EXPECT_EQ(plain[i].mem_time, traced[i].mem_time);
        EXPECT_EQ(plain[i].exposed_migration, traced[i].exposed_migration);
        EXPECT_EQ(plain[i].bytes_fast, traced[i].bytes_fast);
        EXPECT_EQ(plain[i].bytes_slow, traced[i].bytes_slow);
        EXPECT_EQ(plain[i].promoted_bytes, traced[i].promoted_bytes);
        EXPECT_EQ(plain[i].demoted_bytes, traced[i].demoted_bytes);
    }
    // ...and the traced run actually recorded something.
    EXPECT_GT(session.events().totalEmitted(), 0u);
}

TEST(TelemetryDisabledPath, DetachMidRunStopsRecording)
{
    df::Graph g = sentinel::testing::makeToyGraph();
    auto hm = makeHm();
    auto policy = baselines::makeSlowOnly();
    df::Executor ex(g, hm, df::ExecParams{}, *policy);

    telemetry::Session session;
    ex.setTelemetry(&session);
    ex.runStep();
    std::uint64_t emitted = session.events().totalEmitted();
    EXPECT_GT(emitted, 0u);

    ex.setTelemetry(nullptr);
    ex.runStep();
    EXPECT_EQ(session.events().totalEmitted(), emitted);
}

} // namespace
