/**
 * @file
 * Hostile-name escaping in the metric exporters, the dump loader that
 * powers `sentinel-cli metrics-diff`, and the OpenMetrics helpers
 * (name sanitizing, label escaping, render/parse round-trip).
 *
 * The hostile instrument name here is the golden case: a fuzzer label
 * carrying quotes, commas, newlines, and a control byte must come back
 * from both exporters byte-exact, not corrupt the document.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/export.hh"
#include "telemetry/openmetrics.hh"

using namespace sentinel::telemetry;

namespace {

// Quotes, comma, backslash, newline, tab, and a control byte: every
// class of character that can break CSV or JSON framing.
const char *kHostile = "evil\"name,with\\stuff\nand\tmore\x01" "end";

std::string
tempPath(const char *stem)
{
    return testing::TempDir() + stem;
}

TEST(Export, JsonEscapesHostileNames)
{
    MetricRegistry reg;
    reg.counter(kHostile).add(7);

    std::ostringstream os;
    writeMetricsJson(reg, os);
    std::string json = os.str();

    // The raw quote/newline must not appear inside the string literal.
    EXPECT_EQ(json.find("evil\"name"), std::string::npos);
    EXPECT_NE(json.find("evil\\\"name"), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\t"), std::string::npos);
    EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(Export, CsvQuotesHostileFields)
{
    MetricRegistry reg;
    reg.counter(kHostile).add(7);
    reg.counter("plain_name").add(1);

    std::ostringstream os;
    writeMetricsCsv(reg, os);
    std::string csv = os.str();

    // RFC 4180: the hostile field is quoted with inner quotes doubled;
    // the plain one stays bare.
    EXPECT_NE(csv.find("\"evil\"\"name,with\\stuff"), std::string::npos);
    EXPECT_NE(csv.find("\nplain_name,counter,"), std::string::npos);
}

TEST(Export, HostileNameRoundTripsThroughBothFormats)
{
    MetricRegistry reg;
    reg.counter(kHostile).add(42);
    reg.histogram("h.lat").record(100);

    for (const char *stem : { "hostile.json", "hostile.csv" }) {
        std::string path = tempPath(stem);
        ASSERT_TRUE(saveMetrics(reg, path)) << path;
        std::vector<MetricRow> rows = loadMetricsDump(path);
        ASSERT_EQ(rows.size(), 2u) << path;
        // Name-sorted: "evil..." sorts before "h.lat".
        EXPECT_EQ(rows[0].name, kHostile) << path;
        EXPECT_EQ(rows[0].sum, 42u) << path;
        EXPECT_EQ(rows[1].name, "h.lat") << path;
        EXPECT_EQ(rows[1].count, 1u) << path;
        std::remove(path.c_str());
    }
}

TEST(Export, LoadMetricsDumpThrowsOnGarbage)
{
    EXPECT_THROW(loadMetricsDump(tempPath("no_such_dump.json")),
                 std::runtime_error);

    std::string path = tempPath("truncated.csv");
    {
        std::ofstream os(path);
        os << "name,kind,count,sum,min,max,p50,p99\n"
           << "short,counter,1\n"; // 3 fields, want 8
    }
    EXPECT_THROW(loadMetricsDump(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(OpenMetrics, SanitizeName)
{
    EXPECT_EQ(omSanitizeName("mem.promoted_bytes"),
              "mem_promoted_bytes");
    EXPECT_EQ(omSanitizeName("9lives"), "_9lives");
    EXPECT_EQ(omSanitizeName(""), "_");
    EXPECT_EQ(omSanitizeName("ok:name_1"), "ok:name_1");
    EXPECT_EQ(omSanitizeName("spaces and-dashes"),
              "spaces_and_dashes");
}

TEST(OpenMetrics, LabelEscaping)
{
    EXPECT_EQ(omEscapeLabel("plain"), "plain");
    EXPECT_EQ(omEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(OpenMetrics, RenderParsesBackExactly)
{
    MetricRegistry reg;
    reg.counter("mem.promoted_bytes").add(4096);
    reg.gauge("mem.fast_peak").noteMax(1 << 20);
    reg.histogram("exec.stall_ns").record(100);

    std::ostringstream os;
    writeOpenMetrics(reg, os, { { "job", "evil\"job\nname" } });
    omWriteEof(os);
    std::string text = os.str();
    EXPECT_NE(text.find("# TYPE mem_promoted_bytes_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# EOF\n"), std::string::npos);

    std::vector<OmSample> samples;
    std::string err;
    ASSERT_TRUE(parseOpenMetrics(text, samples, &err)) << err;
    ASSERT_GE(samples.size(), 4u);
    bool found_counter = false;
    for (const OmSample &s : samples) {
        EXPECT_EQ(s.label("job"), "evil\"job\nname") << s.name;
        if (s.name == "mem_promoted_bytes_total") {
            found_counter = true;
            EXPECT_EQ(s.value, 4096.0);
        }
    }
    EXPECT_TRUE(found_counter);
}

TEST(OpenMetrics, ParseRejectsMalformedLines)
{
    std::vector<OmSample> samples;
    std::string err;
    EXPECT_FALSE(parseOpenMetrics("{bad} 1\n", samples, &err));
    EXPECT_FALSE(parseOpenMetrics("name{key=1} 2\n", samples, &err));
    EXPECT_FALSE(parseOpenMetrics("name{k=\"v} 2\n", samples, &err));
    EXPECT_FALSE(parseOpenMetrics("name\n", samples, &err));
    EXPECT_FALSE(parseOpenMetrics("name notanumber\n", samples, &err));
    EXPECT_FALSE(err.empty());
}

TEST(OpenMetrics, SplitScrapeFrames)
{
    std::string two = "# scrape k=1 tick=5\na 1\n# EOF\n"
                      "# scrape k=2 tick=9\na 2\n# EOF\n";
    std::vector<std::string> frames = splitScrapeFrames(two);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_NE(frames[0].find("a 1"), std::string::npos);
    EXPECT_NE(frames[1].find("a 2"), std::string::npos);
    // A trailing partial frame (no terminator) is dropped, not
    // half-parsed.
    EXPECT_EQ(splitScrapeFrames("a 1\n").size(), 0u);
}

TEST(OpenMetrics, ValueFormattingIsGrepFriendly)
{
    EXPECT_EQ(omFormatValue(0.0), "0");
    EXPECT_EQ(omFormatValue(4096.0), "4096");
    EXPECT_EQ(omFormatValue(-3.0), "-3");
    EXPECT_EQ(omFormatValue(0.5), "0.5");
}

} // namespace
