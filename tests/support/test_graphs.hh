/**
 * @file
 * Shared graph fixtures for unit tests.
 *
 * makeToyGraph() builds a miniature but structurally faithful training
 * step: two forward layers and their mirrored backward layers, with
 * preallocated weights/input, saved activations consumed by backward
 * layers, short-lived per-layer temporaries, and an SGD update.
 */

#ifndef SENTINEL_TESTS_SUPPORT_TEST_GRAPHS_HH
#define SENTINEL_TESTS_SUPPORT_TEST_GRAPHS_HH

#include <cstdint>

#include "dataflow/graph.hh"

namespace sentinel::testing {

/** Tensor ids of interest in the toy graph. */
struct ToyGraphIds {
    df::TensorId input;
    df::TensorId w0;
    df::TensorId w1;
    df::TensorId a0;     ///< activation of layer 0, used by backward layer 3
    df::TensorId a1;     ///< activation of layer 1, used by backward layer 2
    df::TensorId temp0;  ///< short-lived temp in layer 0
    df::TensorId temp1;  ///< short-lived small temp in layer 1
    df::TensorId g1;     ///< gradient flowing 2 -> 3
};

/**
 * Two forward + two backward layers.
 *
 * Layer 0: conv(input, w0) -> a0 (uses short-lived temp0)
 * Layer 1: matmul(a0, w1) -> a1 (uses short-lived small temp1)
 * Layer 2: backward of layer 1: reads a1, w1, writes g1; updates w1
 * Layer 3: backward of layer 0: reads a0, w0, g1; updates w0
 */
inline df::Graph
makeToyGraph(ToyGraphIds *ids_out = nullptr, int batch = 4)
{
    using namespace df;
    Graph g("toy", batch);

    const std::uint64_t kActBytes = 16 * 4096;  // 16 pages
    const std::uint64_t kWBytes = 2 * 4096;     // 2 pages
    const std::uint64_t kTempBytes = 8 * 4096;  // 8 pages, short-lived
    const std::uint64_t kSmall = 1024;          // sub-page, short-lived

    ToyGraphIds ids;
    ids.input = g.addTensor("input", kActBytes, TensorKind::Input, true);
    ids.w0 = g.addTensor("w0", kWBytes, TensorKind::Weight, true);
    ids.w1 = g.addTensor("w1", kWBytes, TensorKind::Weight, true);
    ids.a0 = g.addTensor("a0", kActBytes, TensorKind::Activation);
    ids.a1 = g.addTensor("a1", kActBytes, TensorKind::Activation);
    ids.temp0 = g.addTensor("temp0", kTempBytes, TensorKind::Temp);
    ids.temp1 = g.addTensor("temp1", kSmall, TensorKind::Temp);
    ids.g1 = g.addTensor("g1", kActBytes, TensorKind::ActivationGrad);

    auto r = [](TensorId t, std::uint64_t bytes, double eps = 1.0) {
        return TensorUse{ t, false, bytes, eps };
    };
    auto w = [](TensorId t, std::uint64_t bytes, double eps = 1.0) {
        return TensorUse{ t, true, bytes, eps };
    };

    // Layer 0 (forward)
    g.addOp("l0/pad", OpType::Pad, 0, 1e6,
            { r(ids.input, kActBytes), w(ids.temp0, kTempBytes) });
    g.addOp("l0/conv", OpType::Conv2d, 0, 5e7,
            { r(ids.temp0, kTempBytes), r(ids.w0, kWBytes, 8.0),
              w(ids.a0, kActBytes) });

    // Layer 1 (forward)
    g.addOp("l1/scale", OpType::BatchNorm, 1, 1e6,
            { r(ids.a0, kActBytes), w(ids.temp1, kSmall, 32.0) });
    g.addOp("l1/matmul", OpType::MatMul, 1, 5e7,
            { r(ids.a0, kActBytes), r(ids.temp1, kSmall, 32.0),
              r(ids.w1, kWBytes, 8.0), w(ids.a1, kActBytes) });

    // Layer 2 (backward of layer 1)
    g.addOp("l1/bwd", OpType::ConvBackward, 2, 8e7,
            { r(ids.a1, kActBytes), r(ids.w1, kWBytes, 8.0),
              w(ids.g1, kActBytes) });
    g.addOp("l1/update", OpType::SgdUpdate, 2, 1e6,
            { r(ids.g1, kActBytes), w(ids.w1, kWBytes, 8.0) });

    // Layer 3 (backward of layer 0)
    g.addOp("l0/bwd", OpType::ConvBackward, 3, 8e7,
            { r(ids.a0, kActBytes), r(ids.g1, kActBytes),
              r(ids.w0, kWBytes, 8.0) });
    g.addOp("l0/update", OpType::SgdUpdate, 3, 1e6,
            { w(ids.w0, kWBytes, 8.0) });

    g.finalize();
    if (ids_out)
        *ids_out = ids;
    return g;
}

} // namespace sentinel::testing

#endif // SENTINEL_TESTS_SUPPORT_TEST_GRAPHS_HH
