/**
 * @file
 * Differential test: the calendar event queue must be observationally
 * identical to the binary-heap fallback.  Both backends promise one
 * total order — (when, seq) with seq breaking same-tick ties FIFO —
 * so the exact (tick, id) pop sequence over a randomized workload has
 * to match element-for-element, including cascaded events scheduled
 * from inside callbacks (whose seq numbers only line up if every
 * earlier pop already did) and a mid-run reset()/shrink().
 */

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace sentinel::sim {
namespace {

using PopRecord = std::vector<std::pair<Tick, int>>;

/**
 * One randomized campaign driven into @p q: bursts of events with
 * heavy same-tick collisions, staged runUntil() horizons, a sprinkle
 * of far-future stragglers, and (when @p with_reset) a mid-run
 * reset() + shrink() while events are still pending.  Deterministic
 * in the seed, so two backends fed the same seed see the same input.
 */
PopRecord
runCampaign(EventQueue::Backend backend, std::uint64_t seed,
            int rounds, int burst, bool with_reset)
{
    EventQueue q(backend);
    PopRecord popped;
    std::mt19937_64 rng(seed);
    int next_id = 0;

    for (int round = 0; round < rounds; ++round) {
        if (with_reset && round == rounds / 2) {
            q.reset();
            q.shrink();
        }
        Tick base = q.now();
        for (int i = 0; i < burst; ++i) {
            std::uint64_t r = rng();
            // Quantized offsets force same-tick collisions; ~1/16 of
            // events land far ahead to stress the calendar's lap
            // logic and the global fallback scan.
            Tick when = base + ((r & 15) == 0
                                    ? static_cast<Tick>(r % 3'000'000)
                                    : static_cast<Tick>((r >> 4) % 64) *
                                          100);
            int id = next_id++;
            q.schedule(when, [&q, &popped, &next_id, id, r](Tick t) {
                popped.emplace_back(t, id);
                // Every eighth event cascades a follow-up; its seq is
                // allocated at pop time, so cascades only agree across
                // backends if the whole prior pop order agrees.
                if ((r & 7) == 0) {
                    int cid = next_id++;
                    q.schedule(t + static_cast<Tick>(r % 50),
                               [&popped, cid](Tick t2) {
                                   popped.emplace_back(t2, cid);
                               });
                }
            });
        }
        // Partial horizon: leaves a tail pending across rounds so
        // later bursts interleave with leftovers.
        q.runUntil(base + static_cast<Tick>(rng() % 5000));
    }
    q.drain();
    return popped;
}

TEST(EventQueueDiff, CalendarMatchesHeapOverRandomizedCampaign)
{
    // 10 rounds x 1000 events (plus ~12% cascades) ≈ 11k pops.
    PopRecord cal = runCampaign(EventQueue::Backend::Calendar,
                                0x5eed5eedull, 10, 1000, false);
    PopRecord heap = runCampaign(EventQueue::Backend::Heap,
                                 0x5eed5eedull, 10, 1000, false);
    ASSERT_EQ(cal.size(), heap.size());
    for (std::size_t i = 0; i < cal.size(); ++i) {
        ASSERT_EQ(cal[i], heap[i]) << "diverged at pop " << i;
    }
}

TEST(EventQueueDiff, CalendarMatchesHeapAcrossMidRunReset)
{
    PopRecord cal = runCampaign(EventQueue::Backend::Calendar,
                                0xfeedbeefull, 8, 600, true);
    PopRecord heap = runCampaign(EventQueue::Backend::Heap,
                                 0xfeedbeefull, 8, 600, true);
    ASSERT_EQ(cal.size(), heap.size());
    for (std::size_t i = 0; i < cal.size(); ++i) {
        ASSERT_EQ(cal[i], heap[i]) << "diverged at pop " << i;
    }
}

TEST(EventQueueDiff, BothBackendsKeepSameTickFifoUnderCollisionStorm)
{
    // All events on ONE tick: pure FIFO, worst case for the calendar
    // (a single bucket holds everything).
    for (auto backend : { EventQueue::Backend::Calendar,
                          EventQueue::Backend::Heap }) {
        EventQueue q(backend);
        std::vector<int> order;
        for (int i = 0; i < 2000; ++i)
            q.schedule(777, [&order, i](Tick) { order.push_back(i); });
        EXPECT_EQ(q.drain(), 2000u);
        ASSERT_EQ(order.size(), 2000u);
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(order[i], i) << "backend "
                                   << static_cast<int>(backend);
    }
}

TEST(EventQueueDiff, ShrinkPreservesPendingEvents)
{
    for (auto backend : { EventQueue::Backend::Calendar,
                          EventQueue::Backend::Heap }) {
        EventQueue q(backend);
        std::vector<Tick> fired;
        for (Tick t = 0; t < 100; ++t)
            q.schedule(t * 10, [&fired](Tick at) { fired.push_back(at); });
        q.runUntil(490);
        q.shrink();
        q.drain();
        ASSERT_EQ(fired.size(), 100u);
        for (Tick t = 0; t < 100; ++t)
            EXPECT_EQ(fired[static_cast<std::size_t>(t)], t * 10);
    }
}

TEST(EventQueueDiff, MidCampaignShrinkCollapsesTableAndKeepsOrder)
{
    // Regression: shrink() used to release spare bucket capacity but
    // never the grown bucket *table* itself when events were pending,
    // and the recalibrated day-walk restarted from a stale pre-shrink
    // position.  Grow the calendar with a big concurrent burst, pop
    // most of it, shrink mid-campaign with a pending tail, then keep
    // scheduling across the shrunk table: the table must collapse to
    // the smallest power-of-two fit and the pop order must stay
    // element-for-element identical to the heap backend.
    auto campaign = [](EventQueue::Backend backend,
                       std::size_t *pending_at_shrink,
                       std::size_t *buckets_after_shrink) {
        EventQueue q(backend);
        PopRecord popped;
        std::mt19937_64 rng(0xca1e9da7ull);
        int next_id = 0;
        // Phase 1: one burst large enough to grow the table well past
        // its kMinBuckets floor (growth triggers at count >= 2*size).
        for (int i = 0; i < 5000; ++i) {
            int id = next_id++;
            Tick when = static_cast<Tick>(rng() % 1'000'000);
            q.schedule(when, [&popped, id](Tick t) {
                popped.emplace_back(t, id);
            });
        }
        q.runUntil(900'000); // leaves a far-future tail pending
        q.shrink();
        if (pending_at_shrink)
            *pending_at_shrink = q.size();
        if (buckets_after_shrink)
            *buckets_after_shrink = q.bucketCount();
        // Phase 2: the shrunk table keeps absorbing new work that
        // interleaves with the surviving tail.
        for (int i = 0; i < 1000; ++i) {
            int id = next_id++;
            Tick when = q.now() + static_cast<Tick>(rng() % 200'000);
            q.schedule(when, [&popped, id](Tick t) {
                popped.emplace_back(t, id);
            });
        }
        q.drain();
        return popped;
    };

    std::size_t pending = 0;
    std::size_t buckets = 0;
    PopRecord cal =
        campaign(EventQueue::Backend::Calendar, &pending, &buckets);
    PopRecord heap =
        campaign(EventQueue::Backend::Heap, nullptr, nullptr);

    ASSERT_GT(pending, 0u) << "campaign must shrink with events pending";
    // 5000 concurrent events grow the table to 4096 buckets; after the
    // shrink it must fit the tail exactly (floor 16).
    EXPECT_EQ(buckets, std::max<std::size_t>(16, std::bit_ceil(pending)));
    EXPECT_LT(buckets, 4096u);

    ASSERT_EQ(cal.size(), heap.size());
    for (std::size_t i = 0; i < cal.size(); ++i) {
        ASSERT_EQ(cal[i], heap[i]) << "diverged at pop " << i;
    }
}

} // namespace
} // namespace sentinel::sim
