#include <gtest/gtest.h>

#include "sim/bandwidth_channel.hh"

namespace sentinel::sim {
namespace {

TEST(BandwidthChannel, SingleTransferTiming)
{
    // 1 GB/s, no startup: 1 MB takes ~1 ms.
    BandwidthChannel ch("t", 1e9);
    Tick done = ch.submit(0, 1'000'000);
    EXPECT_EQ(done, 1'000'000); // 1e6 ns
    EXPECT_EQ(ch.bytesTransferred(), 1'000'000u);
    EXPECT_EQ(ch.numTransfers(), 1u);
}

TEST(BandwidthChannel, TransfersSerialize)
{
    BandwidthChannel ch("t", 1e9);
    Tick first = ch.submit(0, 1'000'000);
    // Second submitted while the first is still running queues behind it.
    Tick second = ch.submit(0, 1'000'000);
    EXPECT_EQ(second, first + 1'000'000);
    EXPECT_EQ(ch.busyUntil(), second);
}

TEST(BandwidthChannel, IdleGapRespectsReadyTime)
{
    BandwidthChannel ch("t", 1e9);
    ch.submit(0, 1000);
    Tick done = ch.submit(10'000'000, 1000);
    // Starts at ready time, not at busyUntil.
    EXPECT_EQ(done, 10'000'000 + 1000);
}

TEST(BandwidthChannel, StartupLatencyCharged)
{
    BandwidthChannel ch("t", 1e9, 500);
    Tick done = ch.submit(0, 1000);
    EXPECT_EQ(done, 500 + 1000);
    // Estimation matches submission for the same state.
    BandwidthChannel ch2("t2", 1e9, 500);
    EXPECT_EQ(ch2.estimateCompletion(0, 1000), done);
}

TEST(BandwidthChannel, EstimateDoesNotMutate)
{
    BandwidthChannel ch("t", 1e9);
    Tick est = ch.estimateCompletion(0, 1'000'000);
    EXPECT_EQ(ch.busyUntil(), 0);
    EXPECT_EQ(ch.bytesTransferred(), 0u);
    EXPECT_EQ(ch.submit(0, 1'000'000), est);
}

TEST(BandwidthChannel, BusyTimeAccumulates)
{
    BandwidthChannel ch("t", 1e9, 100);
    ch.submit(0, 1000);
    ch.submit(50'000, 1000);
    EXPECT_EQ(ch.busyTime(), 2 * (100 + 1000));
}

TEST(BandwidthChannel, ResetClearsState)
{
    BandwidthChannel ch("t", 1e9);
    ch.submit(0, 12345);
    ch.reset();
    EXPECT_EQ(ch.busyUntil(), 0);
    EXPECT_EQ(ch.bytesTransferred(), 0u);
    EXPECT_EQ(ch.numTransfers(), 0u);
    EXPECT_EQ(ch.busyTime(), 0);
}

TEST(BandwidthChannel, ZeroBandwidthPanics)
{
    EXPECT_THROW(BandwidthChannel("bad", 0.0), std::logic_error);
}

} // namespace
} // namespace sentinel::sim
