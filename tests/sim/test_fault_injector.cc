#include <cmath>

#include <gtest/gtest.h>

#include "sim/fault_injector.hh"

namespace sentinel::sim {
namespace {

TEST(FaultSpec, ParsesEveryClauseKind)
{
    FaultSpec s = FaultSpec::parse(
        "bw:step=6,factor=0.5,ch=promote;stall:step=7,ms=2;"
        "shrink:step=6,factor=0.7;jitter:step=3,amp=0.2;"
        "drift:step=5,factor=1.3");
    ASSERT_EQ(s.events.size(), 5u);
    EXPECT_EQ(s.events[0].kind, FaultKind::BwDegrade);
    EXPECT_EQ(s.events[0].step, 6);
    EXPECT_EQ(s.events[0].channel, ChannelSel::Promote);
    EXPECT_DOUBLE_EQ(s.events[0].factor, 0.5);
    EXPECT_EQ(s.events[1].kind, FaultKind::ChannelStall);
    EXPECT_EQ(s.events[1].duration, 2 * kMsec);
    EXPECT_EQ(s.events[1].channel, ChannelSel::Both);
    EXPECT_EQ(s.events[2].kind, FaultKind::CapacityShrink);
    EXPECT_EQ(s.events[3].kind, FaultKind::ComputeJitter);
    EXPECT_DOUBLE_EQ(s.events[3].amplitude, 0.2);
    EXPECT_EQ(s.events[4].kind, FaultKind::TrafficDrift);
    EXPECT_DOUBLE_EQ(s.events[4].factor, 1.3);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    // A typo must never silently run the wrong chaos.
    EXPECT_ANY_THROW(FaultSpec::parse(""));
    EXPECT_ANY_THROW(FaultSpec::parse("warp:step=1,factor=0.5"));
    EXPECT_ANY_THROW(FaultSpec::parse("bw:factor=0.5"));
    EXPECT_ANY_THROW(FaultSpec::parse("bw:step=1,factor=0"));
    EXPECT_ANY_THROW(FaultSpec::parse("stall:step=1"));
    EXPECT_ANY_THROW(FaultSpec::parse("jitter:step=1,amp=1.5"));
    EXPECT_ANY_THROW(FaultSpec::parse("bw:step=1,factor=0.5,frob=1"));
}

TEST(FaultInjector, FoldsAbsoluteStateEachStep)
{
    FaultInjector fi(
        FaultSpec::parse("bw:step=3,factor=0.5;bw:step=6,factor=0.5"));
    fi.beginStep(0);
    EXPECT_DOUBLE_EQ(fi.promoteBwScale(), 1.0);
    EXPECT_FALSE(fi.anyActive());
    fi.beginStep(3);
    EXPECT_DOUBLE_EQ(fi.promoteBwScale(), 0.5);
    EXPECT_TRUE(fi.anyActive());
    fi.beginStep(6);
    EXPECT_DOUBLE_EQ(fi.promoteBwScale(), 0.25); // both live: multiply
    // Re-folding from scratch is idempotent: repeating (or rewinding)
    // a step cannot compound a persistent fault.
    fi.beginStep(6);
    EXPECT_DOUBLE_EQ(fi.promoteBwScale(), 0.25);
    fi.beginStep(3);
    EXPECT_DOUBLE_EQ(fi.promoteBwScale(), 0.5);
}

TEST(FaultInjector, StallFiresOnlyAtItsStep)
{
    FaultInjector fi(FaultSpec::parse("stall:step=4,ms=2,ch=demote"));
    fi.beginStep(3);
    EXPECT_EQ(fi.stepStalls().demote, 0);
    fi.beginStep(4);
    EXPECT_EQ(fi.stepStalls().demote, 2 * kMsec);
    EXPECT_EQ(fi.stepStalls().promote, 0);
    fi.beginStep(5);
    EXPECT_EQ(fi.stepStalls().demote, 0);
}

TEST(FaultInjector, JitterIsDeterministicAndBounded)
{
    FaultSpec spec = FaultSpec::parse("jitter:step=0,amp=0.2");
    FaultInjector a(spec);
    FaultInjector b(spec);
    a.beginStep(5);
    b.beginStep(5);
    bool varies = false;
    for (int l = 0; l < 32; ++l) {
        double s = a.computeScale(l);
        EXPECT_DOUBLE_EQ(s, b.computeScale(l));
        EXPECT_GE(s, 0.8);
        EXPECT_LE(s, 1.2);
        varies = varies || std::abs(s - 1.0) > 1e-3;
    }
    EXPECT_TRUE(varies);

    FaultSpec other = spec;
    other.seed = 123;
    FaultInjector c(other);
    c.beginStep(5);
    bool differs = false;
    for (int l = 0; l < 32; ++l)
        differs = differs || c.computeScale(l) != a.computeScale(l);
    EXPECT_TRUE(differs);
}

TEST(FaultSpec, ShrinkTierKeySelectsTheTargetTier)
{
    FaultSpec s =
        FaultSpec::parse("shrink:step=2,factor=0.5,tier=1");
    ASSERT_EQ(s.events.size(), 1u);
    EXPECT_EQ(s.events[0].kind, FaultKind::CapacityShrink);
    EXPECT_EQ(s.events[0].tier, 1u);
    // Default stays the fast tier, and out-of-chain indices are typos.
    EXPECT_EQ(FaultSpec::parse("shrink:step=2,factor=0.5")
                  .events[0]
                  .tier,
              0u);
    EXPECT_ANY_THROW(
        FaultSpec::parse("shrink:step=2,factor=0.5,tier=8"));
}

TEST(FaultInjector, ShrinkFoldsPerTier)
{
    FaultInjector fi(FaultSpec::parse(
        "shrink:step=2,factor=0.5,tier=1;shrink:step=4,factor=0.5,tier=1"));
    fi.beginStep(1);
    EXPECT_DOUBLE_EQ(fi.capacityScale(1), 1.0);
    fi.beginStep(2);
    EXPECT_DOUBLE_EQ(fi.capacityScale(1), 0.5);
    // A mid-tier fault never bleeds into the fast slot (or vice versa).
    EXPECT_DOUBLE_EQ(fi.capacityScale(0), 1.0);
    EXPECT_DOUBLE_EQ(fi.fastCapacityScale(), 1.0);
    fi.beginStep(4);
    EXPECT_DOUBLE_EQ(fi.capacityScale(1), 0.25); // both live: multiply
}

TEST(FaultInjector, InactiveBeforeFirstEvent)
{
    FaultInjector fi(FaultSpec::parse(
        "shrink:step=8,factor=0.7;drift:step=9,factor=1.3"));
    fi.beginStep(7);
    EXPECT_FALSE(fi.anyActive());
    EXPECT_DOUBLE_EQ(fi.fastCapacityScale(), 1.0);
    EXPECT_DOUBLE_EQ(fi.trafficScale(), 1.0);
    EXPECT_DOUBLE_EQ(fi.computeScale(0), 1.0);
    fi.beginStep(9);
    EXPECT_DOUBLE_EQ(fi.fastCapacityScale(), 0.7);
    EXPECT_DOUBLE_EQ(fi.trafficScale(), 1.3);
}

} // namespace
} // namespace sentinel::sim
