#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace sentinel::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(q.drain(), 3u);
    EXPECT_EQ(order, (std::vector<int>{ 1, 2, 3 }));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i](Tick) { order.push_back(i); });
    q.drain();
    EXPECT_EQ(order, (std::vector<int>{ 0, 1, 2, 3, 4 }));
}

TEST(EventQueue, RunUntilHonorsHorizon)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&](Tick) { ++fired; });
    q.schedule(10, [&](Tick) { ++fired; });
    q.schedule(11, [&](Tick) { ++fired; });
    EXPECT_EQ(q.runUntil(10), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextEventTick(), 11);
}

TEST(EventQueue, CallbackCanScheduleWithinHorizon)
{
    EventQueue q;
    std::vector<Tick> fired_at;
    q.schedule(10, [&](Tick t) {
        fired_at.push_back(t);
        q.schedule(t + 5, [&](Tick t2) { fired_at.push_back(t2); });
    });
    q.runUntil(20);
    EXPECT_EQ(fired_at, (std::vector<Tick>{ 10, 15 }));
}

TEST(EventQueue, NowTracksLastEvent)
{
    EventQueue q;
    q.schedule(42, [](Tick) {});
    EXPECT_EQ(q.now(), 0);
    q.drain();
    EXPECT_EQ(q.now(), 42);
}

TEST(EventQueue, EmptyQueueProperties)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTick(), -1);
    EXPECT_EQ(q.runUntil(1000), 0u);
}

TEST(EventQueue, NegativeTickPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(-1, [](Tick) {}), std::logic_error);
}

// Regression for the multi-job server: two jobs advancing step-locked
// on one node clock keep colliding at the same ticks (equal arrivals,
// step ends landing on arbiter polls).  The interleaving must be
// schedule order — stable across events that themselves schedule more
// same-tick events — or a co-located run would not be reproducible.
TEST(EventQueue, TwoJobsCollidingTimestampsInterleaveStably)
{
    EventQueue q;
    std::vector<std::string> order;
    const Tick step = 100;
    // Job A and job B schedule their per-step events in alternating
    // submit order; every step of both jobs lands on the same tick.
    for (int s = 0; s < 3; ++s) {
        Tick t = (s + 1) * step;
        q.schedule(t, [&order, s, &q, t](Tick) {
            order.push_back("A" + std::to_string(s));
            // A's handler chains a same-tick follow-up (the server's
            // poll re-arm); it must run after B's already-queued
            // event, not before.
            q.schedule(t, [&order, s](Tick) {
                order.push_back("a" + std::to_string(s));
            });
        });
        q.schedule(t, [&order, s](Tick) {
            order.push_back("B" + std::to_string(s));
        });
    }
    q.drain();
    EXPECT_EQ(order, (std::vector<std::string>{ "A0", "B0", "a0", "A1",
                                                "B1", "a1", "A2", "B2",
                                                "a2" }));
}

TEST(EventQueue, ResetYieldsFreshQueue)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&](Tick) { ++fired; });
    q.schedule(20, [&](Tick) { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(q.now(), 10);
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0);
    EXPECT_EQ(q.nextEventTick(), -1);
    // FIFO ordering restarts from a clean sequence counter.
    std::vector<int> order;
    q.schedule(5, [&](Tick) { order.push_back(1); });
    q.schedule(5, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(q.drain(), 2u);
    EXPECT_EQ(order, (std::vector<int>{ 1, 2 }));
    EXPECT_EQ(fired, 1);
}

} // namespace
} // namespace sentinel::sim
