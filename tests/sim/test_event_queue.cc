#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace sentinel::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(q.drain(), 3u);
    EXPECT_EQ(order, (std::vector<int>{ 1, 2, 3 }));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i](Tick) { order.push_back(i); });
    q.drain();
    EXPECT_EQ(order, (std::vector<int>{ 0, 1, 2, 3, 4 }));
}

TEST(EventQueue, RunUntilHonorsHorizon)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&](Tick) { ++fired; });
    q.schedule(10, [&](Tick) { ++fired; });
    q.schedule(11, [&](Tick) { ++fired; });
    EXPECT_EQ(q.runUntil(10), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextEventTick(), 11);
}

TEST(EventQueue, CallbackCanScheduleWithinHorizon)
{
    EventQueue q;
    std::vector<Tick> fired_at;
    q.schedule(10, [&](Tick t) {
        fired_at.push_back(t);
        q.schedule(t + 5, [&](Tick t2) { fired_at.push_back(t2); });
    });
    q.runUntil(20);
    EXPECT_EQ(fired_at, (std::vector<Tick>{ 10, 15 }));
}

TEST(EventQueue, NowTracksLastEvent)
{
    EventQueue q;
    q.schedule(42, [](Tick) {});
    EXPECT_EQ(q.now(), 0);
    q.drain();
    EXPECT_EQ(q.now(), 42);
}

TEST(EventQueue, EmptyQueueProperties)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTick(), -1);
    EXPECT_EQ(q.runUntil(1000), 0u);
}

TEST(EventQueue, NegativeTickPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(-1, [](Tick) {}), std::logic_error);
}

} // namespace
} // namespace sentinel::sim
