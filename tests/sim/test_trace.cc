#include <gtest/gtest.h>

#include "sim/trace.hh"

namespace sentinel::sim {
namespace {

TEST(TraceRecorder, BucketsBandwidth)
{
    // 1 ms buckets.
    TraceRecorder tr(1 * kMsec);
    tr.record("fast", 0, 1'000'000);
    tr.record("fast", 500 * kUsec, 1'000'000);  // same bucket
    tr.record("fast", 1 * kMsec, 500'000);      // next bucket

    auto bw = tr.bandwidthSeries("fast");
    ASSERT_EQ(bw.size(), 2u);
    // 2 MB in 1 ms = 2e9 B/s.
    EXPECT_DOUBLE_EQ(bw[0], 2e9);
    EXPECT_DOUBLE_EQ(bw[1], 5e8);
}

TEST(TraceRecorder, SeriesAreIndependent)
{
    TraceRecorder tr(kMsec);
    tr.record("fast", 0, 100);
    tr.record("slow", 2 * kMsec, 200);

    auto names = tr.seriesNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "fast");
    EXPECT_EQ(names[1], "slow");

    // Both series are padded to the global bucket horizon.
    auto fast = tr.bandwidthSeries("fast");
    auto slow = tr.bandwidthSeries("slow");
    ASSERT_EQ(fast.size(), 3u);
    ASSERT_EQ(slow.size(), 3u);
    EXPECT_GT(fast[0], 0.0);
    EXPECT_DOUBLE_EQ(fast[2], 0.0);
    EXPECT_GT(slow[2], 0.0);
}

TEST(TraceRecorder, UnknownSeriesIsAllZero)
{
    TraceRecorder tr(kMsec);
    tr.record("fast", 0, 100);
    auto missing = tr.bandwidthSeries("nope");
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_DOUBLE_EQ(missing[0], 0.0);
}

TEST(TraceRecorder, ClearResets)
{
    TraceRecorder tr(kMsec);
    tr.record("fast", 0, 100);
    tr.clear();
    EXPECT_EQ(tr.numBuckets(), 0u);
    EXPECT_TRUE(tr.seriesNames().empty());
}

TEST(TraceRecorder, InvalidConstructionPanics)
{
    EXPECT_THROW(TraceRecorder(0), std::logic_error);
}

} // namespace
} // namespace sentinel::sim
