#include <gtest/gtest.h>

#include "mem/page.hh"
#include "server/server.hh"
#include "telemetry/session.hh"

namespace sentinel::server {
namespace {

constexpr std::uint64_t MB = 1ull << 20;

ServerConfig
nodeConfig(std::uint64_t fast_mb = 64)
{
    ServerConfig cfg;
    cfg.fast_bytes = fast_mb * MB;
    cfg.default_steps = 6;
    cfg.default_warmup = 2;
    return cfg;
}

JobSpec
job(const std::string &model, double quota, Tick arrival = 0,
    int prio = 1)
{
    JobSpec s;
    s.model = model;
    s.batch = 4;
    s.quota_fraction = quota;
    s.arrival = arrival;
    s.priority = prio;
    return s;
}

// A job alone on the node, with a quota that holds its whole working
// set under fast-only: no migration demand, so every co-located step
// must equal its solo step exactly — timing included.
TEST(Server, SingleResidentJobMatchesSoloExactly)
{
    ServerConfig cfg = nodeConfig();
    JobSpec s = job("synthetic:9", 0.5);
    s.policy = "fast-only";
    ServerResult r = runServer(cfg, { s });
    ASSERT_EQ(r.jobs.size(), 1u);
    const JobResult &j = r.jobs[0];
    ASSERT_EQ(j.status, JobStatus::Completed) << j.detail;
    EXPECT_EQ(j.admit, 0);
    EXPECT_EQ(j.slo.queue_wait_ms, 0.0);
    ASSERT_EQ(j.step_durations.size(), j.solo_steps.size());
    for (std::size_t k = 0; k < j.step_durations.size(); ++k)
        EXPECT_EQ(j.step_durations[k], j.solo_steps[k].step_time);
    EXPECT_EQ(j.slo.throttle_ms, 0.0);
    EXPECT_DOUBLE_EQ(j.slo.slowdown, 1.0);
    EXPECT_EQ(r.promoted_bytes, 0u);
    EXPECT_EQ(r.admitted, 1);
    EXPECT_EQ(r.makespan, j.finish);
}

// A migrating job alone on the node: the arbiter serves its demand at
// the full channel rate concurrently with compute, so dilation stays
// bounded and every step is at least its solo length.
TEST(Server, SingleMigratingJobDilatesAtMostByItsOwnDma)
{
    ServerConfig cfg = nodeConfig();
    ServerResult r = runServer(cfg, { job("resnet32", 0.25) });
    const JobResult &j = r.jobs[0];
    ASSERT_EQ(j.status, JobStatus::Completed) << j.detail;
    for (std::size_t k = 0; k < j.step_durations.size(); ++k)
        EXPECT_GE(j.step_durations[k], j.solo_steps[k].step_time);
    EXPECT_GE(j.slo.throttle_ms, 0.0);
    EXPECT_GE(j.slo.slowdown, 1.0);
    std::uint64_t solo_promoted = 0;
    for (const auto &s : j.solo_steps)
        solo_promoted += s.promoted_bytes;
    EXPECT_EQ(r.promoted_bytes, solo_promoted);
}

TEST(Server, ExactQuotaPackingAdmitsBothHalves)
{
    ServerConfig cfg = nodeConfig();
    ServerResult r = runServer(
        cfg, { job("synthetic:9", 0.5), job("synthetic:123", 0.5) });
    ASSERT_EQ(r.admitted, 2);
    // Both quotas fit exactly: simultaneous admission at t=0, and the
    // node was momentarily full.
    EXPECT_EQ(r.jobs[0].admit, 0);
    EXPECT_EQ(r.jobs[1].admit, 0);
    EXPECT_EQ(r.peak_committed, cfg.fast_bytes);
}

TEST(Server, FifoHeadOfLineBlocksUntilRelease)
{
    ServerConfig cfg = nodeConfig();
    // Two 60%-quota jobs: the second waits for the first to finish.
    ServerResult r = runServer(
        cfg, { job("synthetic:9", 0.6), job("synthetic:123", 0.6) });
    ASSERT_EQ(r.admitted, 2);
    EXPECT_EQ(r.jobs[0].admit, 0);
    EXPECT_EQ(r.jobs[1].admit, r.jobs[0].finish);
    EXPECT_GT(r.jobs[1].slo.queue_wait_ms, 0.0);
    // Quota released exactly once: peak is one job, not both.
    EXPECT_LE(r.peak_committed, cfg.fast_bytes);
}

TEST(Server, OversizedQuotaRejectedAtSubmit)
{
    ServerConfig cfg = nodeConfig();
    ServerResult r = runServer(
        cfg, { job("synthetic:9", 0.4), job("synthetic:123", 1.0) });
    // quota=1.0 resolves to the whole node and is admissible; push a
    // byte quota over the top instead.
    JobSpec over = job("synthetic:123", 0.5);
    over.quota_bytes = cfg.fast_bytes + MB;
    ServerResult r2 = runServer(cfg, { job("synthetic:9", 0.4), over });
    EXPECT_EQ(r.admitted, 2);
    EXPECT_EQ(r2.admitted, 1);
    EXPECT_EQ(r2.rejected, 1);
    EXPECT_EQ(r2.jobs[1].status, JobStatus::Rejected);
    EXPECT_NE(r2.jobs[1].detail.find("capacity"), std::string::npos);
    // The rejected job never entered the node.
    EXPECT_EQ(r2.jobs[1].admit, -1);
}

// --chaos capacity fault: the job's quota shrinks mid-run inside its
// own simulation.  The server must carry the chaos through phase 1
// untouched and still complete the job under co-location.
TEST(Server, QuotaShrinkUnderChaosCompletes)
{
    ServerConfig cfg = nodeConfig();
    JobSpec faulty = job("resnet32", 0.4);
    faulty.chaos = "shrink:step=3,factor=0.5";
    ServerResult r = runServer(cfg, { faulty, job("synthetic:9", 0.3) });
    ASSERT_EQ(r.admitted, 2) << r.jobs[0].detail;
    const JobResult &j = r.jobs[0];
    ASSERT_EQ(j.status, JobStatus::Completed) << j.detail;
    for (std::size_t k = 0; k < j.step_durations.size(); ++k)
        EXPECT_GE(j.step_durations[k], j.solo_steps[k].step_time);
    // The shrink applies inside the job's private memory system; its
    // admission quota on the node is unchanged.
    EXPECT_EQ(j.quota_bytes,
              mem::roundUpToPages(static_cast<std::uint64_t>(
                  0.4 * static_cast<double>(cfg.fast_bytes))));
    EXPECT_LE(r.peak_committed, cfg.fast_bytes);
}

// Priority is the arbiter weight base: with identical traffic, the
// high-priority tenant loses less time to bandwidth sharing.
TEST(Server, HighPriorityJobThrottledLessThanLowPriority)
{
    ServerConfig cfg = nodeConfig(32);
    // Same model, same small quota (forced migration), simultaneous
    // arrival; only priority differs.
    ServerResult r = runServer(cfg, { job("resnet32", 0.35, 0, 8),
                                      job("resnet32", 0.35, 0, 1) });
    ASSERT_EQ(r.admitted, 2);
    const JobResult &hi = r.jobs[0];
    const JobResult &lo = r.jobs[1];
    // Both migrate (the point of the small quota)...
    EXPECT_GT(r.promoted_bytes, 0u);
    // ...and the boosted tenant is throttled no worse.
    EXPECT_LE(hi.slo.throttle_ms, lo.slo.throttle_ms);
}

TEST(Server, SerialAndParallelPhase1AreBitIdentical)
{
    ServerConfig serial = nodeConfig();
    ServerConfig parallel = nodeConfig();
    parallel.jobs = 4;
    std::vector<JobSpec> specs = { job("resnet32", 0.3),
                                   job("synthetic:9", 0.25, kMsec),
                                   job("synthetic:123", 0.3, 2 * kMsec),
                                   job("resnet20", 0.25, 0, 2) };
    ServerResult a = runServer(serial, specs);
    ServerResult b = runServer(parallel, specs);
    EXPECT_EQ(a.summary(), b.summary());
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
        EXPECT_EQ(a.jobs[j].step_durations, b.jobs[j].step_durations);
        EXPECT_EQ(a.jobs[j].admit, b.jobs[j].admit);
        EXPECT_EQ(a.jobs[j].finish, b.jobs[j].finish);
    }
    EXPECT_EQ(a.promoted_bytes, b.promoted_bytes);
    EXPECT_EQ(a.demoted_bytes, b.demoted_bytes);
    EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Server, InfeasibleAndUnsupportedJobsAreIsolated)
{
    ServerConfig cfg = nodeConfig();
    // A one-page quota violates the harness's fast-tier preconditions:
    // the job is turned away with a reason, and only that job.
    JobSpec tiny = job("resnet32", 0.5);
    tiny.quota_bytes = mem::kPageSize;
    ServerResult r = runServer(cfg, { tiny, job("synthetic:9", 0.3) });
    EXPECT_EQ(r.admitted, 1);
    EXPECT_EQ(r.rejected, 1);
    EXPECT_NE(r.jobs[0].status, JobStatus::Completed);
    EXPECT_EQ(r.jobs[1].status, JobStatus::Completed);
    // The healthy job is unaffected: solo == co-located traffic.
    std::uint64_t solo_promoted = 0;
    for (const auto &s : r.jobs[1].solo_steps)
        solo_promoted += s.promoted_bytes;
    EXPECT_EQ(r.promoted_bytes, solo_promoted);
}

TEST(Server, TelemetryCountersPublished)
{
    telemetry::Session session;
    ServerConfig cfg = nodeConfig();
    cfg.telemetry = &session;
    ServerResult r = runServer(cfg, { job("synthetic:9", 0.5) });
    EXPECT_EQ(session.metrics().counter("server.jobs_admitted").value(),
              static_cast<std::uint64_t>(r.admitted));
    EXPECT_EQ(session.metrics().counter("server.promoted_bytes").value(),
              r.promoted_bytes);
}

TEST(Server, RejectsBrokenConfigs)
{
    std::vector<JobSpec> one = { job("synthetic:9", 0.5) };
    ServerConfig cfg = nodeConfig();
    cfg.fast_bytes = 0;
    EXPECT_THROW(runServer(cfg, one), harness::ConfigError);
    cfg = nodeConfig();
    EXPECT_THROW(runServer(cfg, {}), harness::ConfigError);
    cfg.headroom = 0.9;
    EXPECT_THROW(runServer(cfg, one), harness::ConfigError);
    cfg = nodeConfig();
    cfg.demand_fault_boost = 0.5;
    EXPECT_THROW(runServer(cfg, one), harness::ConfigError);
    cfg = nodeConfig();
    cfg.default_warmup = 6;
    EXPECT_THROW(runServer(cfg, one), harness::ConfigError);
}

TEST(Server, SummaryIsStableAndComplete)
{
    ServerConfig cfg = nodeConfig();
    std::vector<JobSpec> specs = { job("synthetic:9", 0.4),
                                   job("synthetic:123", 0.4, kMsec) };
    ServerResult r = runServer(cfg, specs);
    std::string s1 = r.summary();
    std::string s2 = runServer(cfg, specs).summary();
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1.find("synthetic:9#0"), std::string::npos);
    EXPECT_NE(s1.find("synthetic:123#1"), std::string::npos);
    EXPECT_NE(s1.find("admitted 2"), std::string::npos);
    EXPECT_NE(s1.find("node DMA"), std::string::npos);
}

} // namespace
} // namespace sentinel::server
