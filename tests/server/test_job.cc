#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "server/job.hh"

namespace sentinel::server {
namespace {

TEST(JobSpec, ParsesFullSpec)
{
    JobSpec s = JobSpec::parse(
        "name=web model=resnet32 batch=8 policy=ial quota=0.3 prio=2 "
        "arrival-ms=5 steps=7 warmup=2");
    EXPECT_EQ(s.name, "web");
    EXPECT_EQ(s.model, "resnet32");
    EXPECT_EQ(s.batch, 8);
    EXPECT_EQ(s.policy, "ial");
    EXPECT_DOUBLE_EQ(s.quota_fraction, 0.3);
    EXPECT_EQ(s.quota_bytes, 0u);
    EXPECT_EQ(s.priority, 2);
    EXPECT_EQ(s.arrival, 5 * kMsec);
    EXPECT_EQ(s.steps, 7);
    EXPECT_EQ(s.warmup, 2);
}

TEST(JobSpec, DefaultsAreSane)
{
    JobSpec s = JobSpec::parse("model=lstm");
    EXPECT_EQ(s.model, "lstm");
    EXPECT_EQ(s.batch, 0);
    EXPECT_EQ(s.policy, "sentinel");
    EXPECT_DOUBLE_EQ(s.quota_fraction, 0.25);
    EXPECT_EQ(s.priority, 1);
    EXPECT_EQ(s.arrival, 0);
    EXPECT_EQ(s.steps, 0);
    EXPECT_EQ(s.warmup, -1);
}

TEST(JobSpec, ParsesAbsoluteQuota)
{
    EXPECT_EQ(JobSpec::parse("quota=64mb").quota_bytes, 64ull << 20);
    EXPECT_EQ(JobSpec::parse("quota=64MB").quota_bytes, 64ull << 20);
    EXPECT_EQ(JobSpec::parse("quota-mb=128").quota_bytes, 128ull << 20);
}

TEST(JobSpec, ChaosValueMayContainEqualsAndCommas)
{
    JobSpec s =
        JobSpec::parse("model=lstm chaos=shrink:step=2,factor=0.5");
    EXPECT_EQ(s.chaos, "shrink:step=2,factor=0.5");
}

TEST(JobSpec, ParseListSplitsOnSemicolons)
{
    auto specs = JobSpec::parseList(
        "model=resnet32 quota=0.4; model=synthetic:9 quota=0.2 prio=3;");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].model, "resnet32");
    EXPECT_EQ(specs[1].model, "synthetic:9");
    EXPECT_EQ(specs[1].priority, 3);
}

TEST(JobSpec, RejectsMalformedInput)
{
    EXPECT_THROW(JobSpec::parse("bogus-key=1"), harness::ConfigError);
    EXPECT_THROW(JobSpec::parse("model"), harness::ConfigError);
    EXPECT_THROW(JobSpec::parse("batch=abc"), harness::ConfigError);
    EXPECT_THROW(JobSpec::parse("prio=0"), harness::ConfigError);
    EXPECT_THROW(JobSpec::parse("arrival-ms=-1"), harness::ConfigError);
    EXPECT_THROW(JobSpec::parse("quota=0"), harness::ConfigError);
    EXPECT_THROW(JobSpec::parse("quota=1.5"), harness::ConfigError);
}

TEST(JobSpec, SpecStringRoundTrips)
{
    JobSpec s = JobSpec::parse(
        "name=a model=synthetic:7 batch=4 policy=numa quota=0.35 "
        "prio=2 arrival-ms=3 steps=6 warmup=2 "
        "chaos=shrink:step=2,factor=0.5");
    JobSpec t = JobSpec::parse(s.toSpecString());
    EXPECT_EQ(t.name, s.name);
    EXPECT_EQ(t.model, s.model);
    EXPECT_EQ(t.batch, s.batch);
    EXPECT_EQ(t.policy, s.policy);
    EXPECT_DOUBLE_EQ(t.quota_fraction, s.quota_fraction);
    EXPECT_EQ(t.priority, s.priority);
    EXPECT_EQ(t.arrival, s.arrival);
    EXPECT_EQ(t.steps, s.steps);
    EXPECT_EQ(t.warmup, s.warmup);
    EXPECT_EQ(t.chaos, s.chaos);
}

} // namespace
} // namespace sentinel::server
