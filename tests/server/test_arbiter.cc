#include <gtest/gtest.h>

#include "server/arbiter.hh"

namespace sentinel::server {
namespace {

// 1 byte/ns: transfer times equal byte counts, keeping expectations
// exact (shares below are powers of two or 1/4-3/4 splits, which are
// binary-exact doubles).
constexpr double kBw = 1e9;

TEST(Arbiter, SoloFlowGetsFullBandwidth)
{
    BandwidthArbiter arb("promote", kBw);
    EXPECT_TRUE(arb.idle());
    arb.submit(0, 1000, 0, 1.0);
    EXPECT_EQ(arb.nextCompletion(), 1000);
    arb.advanceTo(1000);
    auto done = arb.takeCompleted();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].flow, 0u);
    EXPECT_EQ(done[0].tick, 1000);
    EXPECT_TRUE(arb.idle());
    EXPECT_EQ(arb.busyTime(), 1000);
}

TEST(Arbiter, EqualWeightsSplitEvenly)
{
    BandwidthArbiter arb("promote", kBw);
    arb.submit(0, 1000, 0, 1.0);
    arb.submit(1, 1000, 0, 1.0);
    // Each drains at half rate; both finish together at 2000.
    arb.advanceTo(2000);
    auto done = arb.takeCompleted();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].tick, 2000);
    EXPECT_EQ(done[1].tick, 2000);
    // Same-instant completions report in submit order.
    EXPECT_EQ(done[0].flow, 0u);
    EXPECT_EQ(done[1].flow, 1u);
}

TEST(Arbiter, WeightsApportionBandwidth)
{
    BandwidthArbiter arb("promote", kBw);
    arb.submit(0, 500, 0, 1.0); // 1/4 share
    arb.submit(1, 600, 0, 3.0); // 3/4 share
    arb.advanceTo(2000);
    auto done = arb.takeCompleted();
    ASSERT_EQ(done.size(), 2u);
    // Flow 1: 600 / 0.75 = 800.  Flow 0: served 200 by then, the
    // remaining 300 at full rate -> 1100.
    EXPECT_EQ(done[0].flow, 1u);
    EXPECT_EQ(done[0].tick, 800);
    EXPECT_EQ(done[1].flow, 0u);
    EXPECT_EQ(done[1].tick, 1100);
}

TEST(Arbiter, WithinFlowDemandsAreFifo)
{
    BandwidthArbiter arb("promote", kBw);
    DemandId a = arb.submit(0, 500, 0, 1.0);
    DemandId b = arb.submit(0, 500, 0, 1.0);
    // One flow: the second demand waits for the first (a job's DMA
    // transfers serialize) even though both were submitted at t=0.
    arb.advanceTo(1500);
    auto done = arb.takeCompleted();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].id, a);
    EXPECT_EQ(done[0].tick, 500);
    EXPECT_EQ(done[1].id, b);
    EXPECT_EQ(done[1].tick, 1000);
    EXPECT_EQ(arb.busyTime(), 1000);
}

TEST(Arbiter, BoostedDemandPreemptsPrefetchBandwidth)
{
    BandwidthArbiter arb("promote", kBw);
    // A low-priority job's prefetch is alone on the channel...
    arb.submit(0, 1000, 0, 1.0);
    arb.advanceTo(500); // 500 bytes served
    // ...when a boosted demand-fault transfer arrives (weight 3).
    arb.submit(1, 600, 500, 3.0);
    arb.advanceTo(2000);
    auto done = arb.takeCompleted();
    ASSERT_EQ(done.size(), 2u);
    // Boosted flow finishes first: 600 / 0.75 = 800 -> t=1300.
    // Unboosted: 500 left at t=500, drains 200 by 1300, the last 300
    // at full rate -> 1600.  (Equal weights would have finished the
    // fault transfer at 1700 — the boost bought 400 ns.)
    EXPECT_EQ(done[0].flow, 1u);
    EXPECT_EQ(done[0].tick, 1300);
    EXPECT_EQ(done[1].flow, 0u);
    EXPECT_EQ(done[1].tick, 1600);
}

TEST(Arbiter, ConservesBytes)
{
    BandwidthArbiter arb("demote", kBw);
    arb.submit(0, 12345, 0, 1.0);
    arb.submit(1, 6789, 100, 2.0);
    arb.submit(0, 42, 200, 1.0);
    EXPECT_EQ(arb.bytesSubmitted(), 12345u + 6789u + 42u);
    arb.advanceTo(1000000);
    EXPECT_EQ(arb.bytesCompleted(), arb.bytesSubmitted());
    EXPECT_TRUE(arb.idle());
    EXPECT_EQ(arb.takeCompleted().size(), 3u);
}

TEST(Arbiter, PredictionsAreStableUnderReprediction)
{
    BandwidthArbiter arb("promote", kBw);
    arb.submit(0, 1000, 0, 1.0);
    // An early poll (the server's stale-generation case): advancing
    // short of the completion changes nothing.
    arb.advanceTo(400);
    EXPECT_TRUE(arb.takeCompleted().empty());
    EXPECT_EQ(arb.nextCompletion(), 1000);
    arb.advanceTo(1000);
    ASSERT_EQ(arb.takeCompleted().size(), 1u);
}

TEST(Arbiter, PanicsOnMisuse)
{
    EXPECT_THROW(BandwidthArbiter("x", 0.0), std::logic_error);
    BandwidthArbiter arb("promote", kBw);
    EXPECT_THROW(arb.submit(0, 0, 0, 1.0), std::logic_error);
    EXPECT_THROW(arb.submit(0, 1, 0, 0.0), std::logic_error);
    arb.advanceTo(100);
    EXPECT_THROW(arb.advanceTo(50), std::logic_error);
}

} // namespace
} // namespace sentinel::server
