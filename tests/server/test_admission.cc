#include <gtest/gtest.h>

#include "server/admission.hh"

namespace sentinel::server {
namespace {

constexpr std::uint64_t MB = 1ull << 20;

TEST(Admission, ExactQuotaFitsAndFills)
{
    AdmissionController adm(100 * MB);
    EXPECT_EQ(adm.capacity(), 100 * MB);
    // A job sized to exactly the node's fast tier is admissible...
    EXPECT_FALSE(adm.neverFits(100 * MB));
    EXPECT_TRUE(adm.canAdmit(100 * MB));
    adm.admit(100 * MB);
    // ...and fills the node: nothing else fits, not even one byte.
    EXPECT_EQ(adm.available(), 0u);
    EXPECT_FALSE(adm.canAdmit(1));
    adm.release(100 * MB);
    EXPECT_TRUE(adm.canAdmit(100 * MB));
    EXPECT_EQ(adm.peakCommitted(), 100 * MB);
}

TEST(Admission, ExactPackingOfTwoHalves)
{
    AdmissionController adm(100 * MB);
    adm.admit(50 * MB);
    EXPECT_TRUE(adm.canAdmit(50 * MB));
    adm.admit(50 * MB);
    EXPECT_EQ(adm.committed(), 100 * MB);
    EXPECT_FALSE(adm.canAdmit(1));
    adm.release(50 * MB);
    EXPECT_EQ(adm.available(), 50 * MB);
    EXPECT_EQ(adm.peakCommitted(), 100 * MB);
}

TEST(Admission, NeverFitsRejectsAtSubmit)
{
    AdmissionController adm(100 * MB);
    EXPECT_TRUE(adm.neverFits(100 * MB + 1));
    // canAdmit on an idle node agrees with neverFits at the boundary.
    EXPECT_FALSE(adm.canAdmit(100 * MB + 1));
}

TEST(Admission, HeadroomOversubscribes)
{
    AdmissionController adm(100 * MB, 1.5);
    EXPECT_EQ(adm.capacity(), 150 * MB);
    EXPECT_FALSE(adm.neverFits(150 * MB));
    adm.admit(100 * MB);
    EXPECT_TRUE(adm.canAdmit(50 * MB));
}

TEST(Admission, PanicsOnMisuse)
{
    EXPECT_THROW(AdmissionController(0), std::logic_error);
    EXPECT_THROW(AdmissionController(100 * MB, 0.5), std::logic_error);
    AdmissionController adm(100 * MB);
    EXPECT_THROW(adm.admit(101 * MB), std::logic_error);
    EXPECT_THROW(adm.release(1), std::logic_error);
}

} // namespace
} // namespace sentinel::server
