#include <gtest/gtest.h>

#include "server/oracle.hh"

namespace sentinel::server {
namespace {

constexpr std::uint64_t MB = 1ull << 20;

ServerConfig
nodeConfig()
{
    ServerConfig cfg;
    cfg.fast_bytes = 64 * MB;
    cfg.default_steps = 6;
    cfg.default_warmup = 2;
    return cfg;
}

// The acceptance gate: mixed zoo + synthetic co-locations, each
// verified end to end — per-job traffic bit-identical to an
// independent solo run, serial == parallel server, capacity and
// dilation invariants.  Three seeds cover distinct mixes.
TEST(ServerOracle, MixedColocationsHoldAllInvariants)
{
    for (std::uint64_t seed : { 1ull, 2ull, 3ull }) {
        std::vector<JobSpec> specs = randomColocation(seed, 3);
        harness::OracleReport rep =
            runServerOracle(nodeConfig(), specs);
        EXPECT_TRUE(rep.ok())
            << "seed " << seed << ":\n"
            << rep.summary();
    }
}

TEST(ServerOracle, ChaosJobKeepsTrafficInvariance)
{
    std::vector<JobSpec> specs = randomColocation(7, 2);
    specs[0].chaos = "shrink:step=3,factor=0.5";
    harness::OracleReport rep = runServerOracle(nodeConfig(), specs);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ServerOracle, QueuedAdmissionHoldsInvariants)
{
    // Two 60% quotas force head-of-line queueing; the queued job's
    // traffic must still match its solo run exactly.
    std::vector<JobSpec> specs = randomColocation(11, 2);
    specs[0].quota_fraction = 0.6;
    specs[1].quota_fraction = 0.6;
    specs[0].arrival = 0;
    specs[1].arrival = 0;
    harness::OracleReport rep = runServerOracle(nodeConfig(), specs);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ServerOracle, RandomColocationIsDeterministic)
{
    std::vector<JobSpec> a = randomColocation(42, 4);
    std::vector<JobSpec> b = randomColocation(42, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].toSpecString(), b[i].toSpecString());
    // Different seeds give different mixes.
    std::vector<JobSpec> c = randomColocation(43, 4);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].toSpecString() != c[i].toSpecString();
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace sentinel::server
