/**
 * @file
 * The observability plane: burn-rate alert semantics (edge trigger,
 * re-arm, event-ring + audit-log join), scrape-snapshot determinism
 * across phase-1 parallelism, the HTTP loopback path, and the
 * `sentinel-cli top` frame renderer.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "server/http.hh"
#include "server/scrape.hh"
#include "server/server.hh"
#include "telemetry/openmetrics.hh"

using namespace sentinel;
using namespace sentinel::server;

namespace {

df::StepStats
soloStep(Tick step_time, std::uint64_t promoted = 0)
{
    df::StepStats s;
    s.step_time = step_time;
    s.promoted_bytes = promoted;
    s.peak_fast_used = 1 << 20;
    return s;
}

/** A plane with one job whose solo step is 1 ms (target 1.5 ms). */
ObservabilityPlane
makePlane(telemetry::Session *session, telemetry::AuditLog *audit,
          std::ostream *snap = nullptr, int snapshot_every = 0)
{
    ScrapeConfig cfg;
    cfg.slo.target_factor = 1.5;
    cfg.slo.error_budget = 0.1;
    cfg.slo.burn_threshold = 2.0;
    cfg.slo.window = 8;
    cfg.snapshot_every = snapshot_every;
    ObservabilityPlane plane(cfg, session, audit, snap);
    plane.setNode(64 << 20, 1.0);
    plane.attachJob(0, "job0", 16 << 20, /*solo_mean=*/1'000'000);
    return plane;
}

TEST(ObservabilityPlane, NoAlertWhileStepsMeetTarget)
{
    telemetry::Session session;
    telemetry::AuditLog audit;
    ObservabilityPlane plane = makePlane(&session, &audit);
    plane.onAdmit(0, 0, 16 << 20);
    for (int s = 0; s < 20; ++s)
        plane.onStepComplete(0, s, 1'200'000, soloStep(1'000'000),
                             (s + 1) * 1'200'000, 16 << 20);
    EXPECT_EQ(plane.alerts(), 0u);
    EXPECT_EQ(plane.job(0).violations, 0u);
    EXPECT_DOUBLE_EQ(plane.job(0).attainment(), 1.0);
    EXPECT_EQ(session.events().size(), 0u);
    EXPECT_EQ(audit.size(), 0u);
}

TEST(ObservabilityPlane, BurnAlertIsEdgeTriggeredAndJoinsAudit)
{
    telemetry::Session session;
    telemetry::AuditLog audit;
    ObservabilityPlane plane = makePlane(&session, &audit);
    plane.onAdmit(0, 0, 16 << 20);

    // Every step misses the 1.5 ms target.  The window (8) must fill
    // before the monitor may fire; the burn then is 1.0/0.1 = 10x and
    // exactly ONE alert fires for the whole episode.
    Tick now = 0;
    for (int s = 0; s < 20; ++s) {
        now += 3'000'000;
        plane.onStepComplete(0, s, 3'000'000, soloStep(1'000'000), now,
                             16 << 20);
    }
    EXPECT_EQ(plane.alerts(), 1u);
    EXPECT_EQ(plane.job(0).alerts, 1u);
    EXPECT_EQ(plane.job(0).violations, 20u);
    EXPECT_TRUE(plane.job(0).alerting);

    // The event and the audit record join on the shared timestamp, the
    // same contract Promotion/Demotion events follow.
    auto events = session.events().snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type, telemetry::EventType::SloBurnAlert);
    EXPECT_EQ(events[0].id, 0u);
    EXPECT_EQ(events[0].ts, 8 * 3'000'000); // fires when the window fills
    EXPECT_EQ(events[0].bytes, 10'000u);    // 10.0x in 1/1000ths

    ASSERT_EQ(audit.size(), 1u);
    const telemetry::AuditRecord &rec = audit.records()[0];
    EXPECT_EQ(rec.reason, telemetry::AuditReason::kSloBurnAlert);
    EXPECT_EQ(rec.ts, events[0].ts);
    EXPECT_EQ(rec.bytes, events[0].bytes);
    EXPECT_EQ(rec.tensor, telemetry::kAuditNoTensor);
    EXPECT_EQ(rec.step, 7);
}

TEST(ObservabilityPlane, AlertReArmsAfterRecovery)
{
    telemetry::Session session;
    telemetry::AuditLog audit;
    ObservabilityPlane plane = makePlane(&session, &audit);
    plane.onAdmit(0, 0, 16 << 20);

    Tick now = 0;
    auto run = [&](int steps, Tick duration) {
        for (int s = 0; s < steps; ++s) {
            now += duration;
            plane.onStepComplete(0, s, duration, soloStep(1'000'000),
                                 now, 16 << 20);
        }
    };
    run(10, 3'000'000); // episode 1: all misses -> one alert
    EXPECT_EQ(plane.alerts(), 1u);
    run(10, 1'200'000); // recovery: window drains below threshold
    EXPECT_FALSE(plane.job(0).alerting);
    run(10, 3'000'000); // episode 2: a second alert may fire
    EXPECT_EQ(plane.alerts(), 2u);
    EXPECT_EQ(audit.size(), 2u);
}

TEST(ObservabilityPlane, RenderIsValidOpenMetrics)
{
    telemetry::Session session;
    telemetry::AuditLog audit;
    ObservabilityPlane plane = makePlane(&session, &audit);
    plane.onAdmit(0, 0, 16 << 20);
    for (int s = 0; s < 4; ++s)
        plane.onStepComplete(0, s, 1'100'000, soloStep(1'000'000, 4096),
                             (s + 1) * 1'100'000, 16 << 20);

    std::string text = plane.renderString();
    EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

    std::vector<telemetry::OmSample> samples;
    std::string err;
    ASSERT_TRUE(telemetry::parseOpenMetrics(text, samples, &err)) << err;

    auto find = [&](const std::string &name) -> const telemetry::OmSample * {
        for (const auto &s : samples)
            if (s.name == name)
                return &s;
        return nullptr;
    };
    const telemetry::OmSample *steps = find("sentinel_job_steps_total");
    ASSERT_NE(steps, nullptr);
    EXPECT_EQ(steps->value, 4.0);
    EXPECT_EQ(steps->label("job"), "job0");
    const telemetry::OmSample *dma = find("sentinel_job_dma_bytes_total");
    ASSERT_NE(dma, nullptr);
    EXPECT_EQ(dma->value, 4.0 * 4096);
    ASSERT_NE(find("sentinel_node_fast_bytes"), nullptr);
    EXPECT_EQ(find("sentinel_node_fast_bytes")->value,
              static_cast<double>(64 << 20));
}

/** Two colocated jobs through the real server, obs plane attached. */
ServerResult
runWithPlane(int jobs, ObservabilityPlane &plane)
{
    ServerConfig cfg;
    cfg.fast_bytes = 48ull << 20;
    cfg.jobs = jobs;
    cfg.default_steps = 6;
    cfg.default_warmup = 2;
    cfg.obs = &plane;
    std::vector<JobSpec> specs = JobSpec::parseList(
        "model=resnet20 quota=0.4; model=resnet20 quota=0.35");
    return runServer(cfg, specs);
}

TEST(ObservabilityPlane, SnapshotsAreByteIdenticalAcrossJobs)
{
    ScrapeConfig cfg;
    cfg.snapshot_every = 3;

    std::ostringstream snap1, snap4;
    ObservabilityPlane p1(cfg, nullptr, nullptr, &snap1);
    ObservabilityPlane p4(cfg, nullptr, nullptr, &snap4);
    runWithPlane(1, p1);
    runWithPlane(4, p4);

    EXPECT_GT(p1.snapshots(), 0);
    EXPECT_EQ(p1.snapshots(), p4.snapshots());
    EXPECT_EQ(snap1.str(), snap4.str());

    // And the stream is a parseable sequence of frames.
    auto frames = telemetry::splitScrapeFrames(snap1.str());
    EXPECT_EQ(static_cast<int>(frames.size()), p1.snapshots());
    for (const std::string &f : frames) {
        std::vector<telemetry::OmSample> samples;
        std::string err;
        EXPECT_TRUE(telemetry::parseOpenMetrics(f, samples, &err))
            << err;
        EXPECT_FALSE(samples.empty());
    }
}

TEST(TopFrame, RendersJobsAndNodeFooter)
{
    telemetry::Session session;
    telemetry::AuditLog audit;
    ObservabilityPlane plane = makePlane(&session, &audit);
    plane.onAdmit(0, 0, 16 << 20);
    for (int s = 0; s < 4; ++s)
        plane.onStepComplete(0, s, 1'100'000, soloStep(1'000'000),
                             (s + 1) * 1'100'000, 16 << 20);

    std::vector<telemetry::OmSample> samples;
    std::string err;
    ASSERT_TRUE(telemetry::parseOpenMetrics(plane.renderString(),
                                            samples, &err))
        << err;
    std::string frame = renderTopFrame(samples);
    EXPECT_NE(frame.find("job0"), std::string::npos);
    EXPECT_NE(frame.find("p50_ms"), std::string::npos);
    EXPECT_NE(frame.find("node:"), std::string::npos);
    EXPECT_NE(frame.find("steps 4"), std::string::npos);
}

TEST(MetricsHttp, ServesTheExpositionOverLoopback)
{
    telemetry::Session session;
    telemetry::AuditLog audit;
    ObservabilityPlane plane = makePlane(&session, &audit);
    plane.onAdmit(0, 0, 16 << 20);
    plane.onStepComplete(0, 0, 1'100'000, soloStep(1'000'000),
                         1'100'000, 16 << 20);
    std::string expect = plane.renderString();

    MetricsHttpServer http;
    ASSERT_TRUE(http.listen(0)) << http.error();
    ASSERT_GT(http.port(), 0);
    std::thread server([&] {
        http.serve([&] { return plane.renderString(); },
                   /*max_requests=*/2);
    });

    std::string body, err;
    ASSERT_TRUE(
        httpGet("127.0.0.1", http.port(), "/metrics", body, &err))
        << err;
    EXPECT_EQ(body, expect);

    // The body parses and renders as a top frame — the exact pipeline
    // `sentinel-cli top --endpoint` runs.
    std::vector<telemetry::OmSample> samples;
    ASSERT_TRUE(telemetry::parseOpenMetrics(body, samples, &err)) << err;
    EXPECT_NE(renderTopFrame(samples).find("job0"), std::string::npos);

    // Unknown paths 404 without killing the responder.
    std::string miss;
    EXPECT_FALSE(
        httpGet("127.0.0.1", http.port(), "/nope", miss, &err));
    server.join();
    http.shutdown();
}

} // namespace
