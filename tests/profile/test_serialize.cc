#include <sstream>

#include <gtest/gtest.h>

#include "mem/hm.hh"
#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "support/test_graphs.hh"

namespace sentinel::prof {
namespace {

ProfileDatabase
profileToy()
{
    df::Graph g = sentinel::testing::makeToyGraph();
    mem::TierParams fast{ "dram", 64ull << 20, 50e9, 40e9, 80, 80 };
    mem::TierParams slow{ "pmm", 4ull << 30, 6e9, 2e9, 300, 100 };
    mem::HeterogeneousMemory hm(fast, slow, { 4e9, 2e9, 2000 });
    Profiler p;
    return std::move(p.profile(g, hm, df::ExecParams{}).db);
}

TEST(ProfileSerialize, RoundTripsExactly)
{
    ProfileDatabase db = profileToy();
    std::stringstream ss;
    ASSERT_TRUE(saveProfile(db, ss));
    ProfileDatabase loaded = loadProfile(ss);

    EXPECT_EQ(loaded.graphName(), db.graphName());
    EXPECT_EQ(loaded.numLayers(), db.numLayers());
    EXPECT_EQ(loaded.numTensors(), db.numTensors());
    EXPECT_EQ(loaded.shortLivedPeakBytes(), db.shortLivedPeakBytes());

    for (int l = 0; l < db.numLayers(); ++l) {
        EXPECT_EQ(loaded.layer(l).duration, db.layer(l).duration);
        EXPECT_EQ(loaded.layer(l).compute, db.layer(l).compute);
        EXPECT_EQ(loaded.layer(l).mem, db.layer(l).mem);
    }
    for (df::TensorId id = 0; id < db.numTensors(); ++id) {
        const TensorProfile &a = db.tensor(id);
        const TensorProfile &b = loaded.tensor(id);
        EXPECT_EQ(a.bytes, b.bytes);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.preallocated, b.preallocated);
        EXPECT_EQ(a.first_layer, b.first_layer);
        EXPECT_EQ(a.last_layer, b.last_layer);
        EXPECT_EQ(a.short_lived, b.short_lived);
        EXPECT_EQ(a.small, b.small);
        EXPECT_EQ(a.total_accesses, b.total_accesses);
        EXPECT_DOUBLE_EQ(a.accesses_per_page, b.accesses_per_page);
        EXPECT_EQ(a.access_layers, b.access_layers);
    }
}

TEST(ProfileSerialize, LoadedProfileDrivesTheSameQueries)
{
    ProfileDatabase db = profileToy();
    std::stringstream ss;
    saveProfile(db, ss);
    ProfileDatabase loaded = loadProfile(ss);

    EXPECT_EQ(loaded.longLivedAccessedIn(0, 2),
              db.longLivedAccessedIn(0, 2));
    EXPECT_EQ(loaded.longLivedBytesAccessedIn(2, 4),
              db.longLivedBytesAccessedIn(2, 4));
    EXPECT_EQ(loaded.largestLongLivedBytes(), db.largestLongLivedBytes());
    EXPECT_EQ(loaded.layerSpanTime(0, 4), db.layerSpanTime(0, 4));
}

TEST(ProfileSerialize, FileRoundTrip)
{
    ProfileDatabase db = profileToy();
    std::string path = ::testing::TempDir() + "/toy.sentinel-profile";
    ASSERT_TRUE(saveProfile(db, path));
    ProfileDatabase loaded = loadProfile(path);
    EXPECT_EQ(loaded.numTensors(), db.numTensors());
}

TEST(ProfileSerialize, RejectsGarbage)
{
    std::stringstream ss("not-a-profile 1\n");
    EXPECT_THROW(loadProfile(ss), std::runtime_error);
}

TEST(ProfileSerialize, RejectsWrongVersion)
{
    std::stringstream ss("sentinel-profile 999\n");
    EXPECT_THROW(loadProfile(ss), std::runtime_error);
}

TEST(ProfileSerialize, RejectsTruncation)
{
    ProfileDatabase db = profileToy();
    std::stringstream ss;
    saveProfile(db, ss);
    std::string text = ss.str();
    std::stringstream cut(text.substr(0, text.size() / 2));
    EXPECT_THROW(loadProfile(cut), std::logic_error);
}

TEST(ProfileSerialize, MissingFileIsFatal)
{
    EXPECT_THROW(loadProfile(std::string("/nonexistent/profile")),
                 std::runtime_error);
}

} // namespace
} // namespace sentinel::prof
