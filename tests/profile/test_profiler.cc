#include <cmath>

#include <gtest/gtest.h>

#include "mem/hm.hh"
#include "profile/profiler.hh"
#include "support/test_graphs.hh"

namespace sentinel::prof {
namespace {

using sentinel::testing::ToyGraphIds;
using sentinel::testing::makeToyGraph;

mem::HeterogeneousMemory
makeHm()
{
    mem::TierParams fast{ "dram", 64ull << 20, 50e9, 40e9, 80, 80 };
    mem::TierParams slow{ "pmm", 4ull << 30, 6e9, 2e9, 300, 100 };
    return mem::HeterogeneousMemory(fast, slow, { 4e9, 2e9, 2000 });
}

ProfileResult
profileToy(ToyGraphIds *ids = nullptr)
{
    df::Graph g = makeToyGraph(ids);
    auto hm = makeHm();
    Profiler p;
    return p.profile(g, hm, df::ExecParams{});
}

TEST(Profiler, CountsAreExact)
{
    // The paper's PTE-poisoning method "does not lose profiling
    // accuracy": every counted episode must equal the ground truth
    // derivable from the graph (episodes x pages per use).
    ToyGraphIds ids;
    df::Graph g = makeToyGraph(&ids);
    auto hm = makeHm();
    Profiler p;
    ProfileResult r = p.profile(g, hm, df::ExecParams{});

    std::vector<std::uint64_t> expected(g.numTensors(), 0);
    for (const auto &op : g.ops()) {
        for (const auto &use : op.uses) {
            std::uint64_t pages =
                g.tensor(use.tensor).pageAlignedBytes() / mem::kPageSize;
            std::uint64_t eps = static_cast<std::uint64_t>(std::max(
                1.0, std::round(use.episodes_per_page)));
            expected[use.tensor] += eps * pages;
        }
    }
    for (df::TensorId id = 0; id < g.numTensors(); ++id)
        EXPECT_EQ(r.db.tensor(id).total_accesses, expected[id])
            << g.tensor(id).name;
}

TEST(Profiler, LifetimesAndClasses)
{
    ToyGraphIds ids;
    ProfileResult r = profileToy(&ids);
    const TensorProfile &a0 = r.db.tensor(ids.a0);
    EXPECT_EQ(a0.first_layer, 0);
    EXPECT_EQ(a0.last_layer, 3);
    EXPECT_FALSE(a0.short_lived);

    const TensorProfile &t0 = r.db.tensor(ids.temp0);
    EXPECT_TRUE(t0.short_lived);
    EXPECT_FALSE(t0.small); // 8 pages

    const TensorProfile &t1 = r.db.tensor(ids.temp1);
    EXPECT_TRUE(t1.short_lived);
    EXPECT_TRUE(t1.small);

    // Preallocated tensors span the whole step.
    const TensorProfile &w0 = r.db.tensor(ids.w0);
    EXPECT_TRUE(w0.preallocated);
    EXPECT_EQ(w0.first_layer, 0);
    EXPECT_EQ(w0.last_layer, 3);
}

TEST(Profiler, AccessLayersFromRuntimeCoordination)
{
    ToyGraphIds ids;
    ProfileResult r = profileToy(&ids);
    // a0: written layer 0, read layers 1 and 3.
    EXPECT_EQ(r.db.tensor(ids.a0).access_layers,
              (std::vector<int>{ 0, 1, 3 }));
    // w1: layers 1 (fwd) and 2 (bwd + update).
    EXPECT_EQ(r.db.tensor(ids.w1).access_layers,
              (std::vector<int>{ 1, 2 }));
}

TEST(Profiler, HotterTensorsHaveHigherPerPageCounts)
{
    ToyGraphIds ids;
    ProfileResult r = profileToy(&ids);
    // temp1 is touched at 32 episodes/page; a1 is streamed.
    EXPECT_GT(r.db.tensor(ids.temp1).accesses_per_page,
              r.db.tensor(ids.a1).accesses_per_page);
}

TEST(Profiler, ProfilingStepIsSlowerButBounded)
{
    ProfileResult r = profileToy();
    double slowdown = r.profilingSlowdown();
    // Sec. VII-B: the profiling step is several times slower (up to
    // ~5x) because every access faults.
    EXPECT_GT(slowdown, 1.5);
    EXPECT_LT(slowdown, 12.0);
    EXPECT_GT(r.profiling_step.fault_overhead, 0);
}

TEST(Profiler, MemoryOverheadIsSmall)
{
    ProfileResult r = profileToy();
    // Table III: page-aligned profiling costs at most a few percent of
    // peak memory (large tensors dominate).  The toy graph is small,
    // so allow a looser bound than the paper's 2.4%.
    EXPECT_GE(r.memoryOverhead(), 0.0);
    EXPECT_LT(r.memoryOverhead(), 0.35);
    EXPECT_GT(r.page_aligned_peak, 0u);
    EXPECT_GE(r.page_aligned_peak, r.packed_peak);
}

TEST(Profiler, LayerTimesSumToCleanStep)
{
    ProfileResult r = profileToy();
    Tick sum = r.db.layerSpanTime(0, r.db.numLayers());
    Tick clean =
        r.profiling_step.step_time - r.profiling_step.fault_overhead;
    EXPECT_GT(sum, 0);
    EXPECT_LE(sum, clean);
    // Layers cover nearly the whole step (no allocation gaps here).
    EXPECT_GT(static_cast<double>(sum), 0.9 * static_cast<double>(clean));
}

TEST(Profiler, ShortLivedPeakMatchesGraph)
{
    ToyGraphIds ids;
    df::Graph g = makeToyGraph(&ids);
    auto hm = makeHm();
    Profiler p;
    ProfileResult r = p.profile(g, hm, df::ExecParams{});
    EXPECT_GT(r.db.shortLivedPeakBytes(), 0u);
    // Page-aligned short-lived peak is at least the raw one.
    EXPECT_GE(r.db.shortLivedPeakBytes(), g.peakShortLivedBytes());
}

TEST(Profiler, GpuPinnedModeChargesSync)
{
    df::Graph g = makeToyGraph();
    auto hm = makeHm();
    ProfilerOptions opts;
    opts.gpu_pinned = true;
    opts.gpu_link_bw = 12e9;
    Profiler p(opts);
    ProfileResult r = p.profile(g, hm, df::ExecParams{});
    // The two-copy synchronization moves the preallocated bytes once.
    EXPECT_EQ(r.sync_overhead,
              transferTime(g.preallocatedBytes(), 12e9));
    EXPECT_GT(r.sync_overhead, 0);
}

TEST(Profiler, PageLevelProfileShowsFalseSharing)
{
    // Observation 3: with the packed allocator, page-level counts
    // blend tensors.  At minimum, the page-level view must exist and
    // count fewer distinct "objects" than there are tensors.
    ToyGraphIds ids;
    df::Graph g = makeToyGraph(&ids);
    auto hm1 = makeHm();
    auto hm2 = makeHm();
    Profiler p;
    ProfileResult tensor_level = p.profile(g, hm1, df::ExecParams{});
    auto page_level = p.profilePageLevel(g, hm2, df::ExecParams{});

    EXPECT_FALSE(page_level.empty());
    // Packed pages < page-aligned pages: sharing happened.
    std::uint64_t aligned_pages = 0;
    for (const auto &t : g.tensors())
        aligned_pages += t.pageAlignedBytes() / mem::kPageSize;
    EXPECT_LT(page_level.size(), aligned_pages);
    (void)tensor_level;
}

class ProfilerDeterminism : public ::testing::TestWithParam<int>
{
};

TEST_P(ProfilerDeterminism, RepeatedProfilesAgree)
{
    ToyGraphIds ids;
    df::Graph g = makeToyGraph(&ids, /*batch=*/GetParam());
    auto hm1 = makeHm();
    auto hm2 = makeHm();
    Profiler p;
    ProfileResult a = p.profile(g, hm1, df::ExecParams{});
    ProfileResult b = p.profile(g, hm2, df::ExecParams{});
    for (df::TensorId id = 0; id < g.numTensors(); ++id) {
        EXPECT_EQ(a.db.tensor(id).total_accesses,
                  b.db.tensor(id).total_accesses);
    }
    EXPECT_EQ(a.profiling_step.step_time, b.profiling_step.step_time);
}

INSTANTIATE_TEST_SUITE_P(Batches, ProfilerDeterminism,
                         ::testing::Values(1, 4, 16));

} // namespace
} // namespace sentinel::prof
