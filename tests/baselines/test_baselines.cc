#include <gtest/gtest.h>

#include "baselines/autotm.hh"
#include "baselines/capuchin.hh"
#include "baselines/ial.hh"
#include "baselines/memory_mode.hh"
#include "baselines/reference.hh"
#include "baselines/swapadvisor.hh"
#include "baselines/unified_memory.hh"
#include "baselines/vdnn.hh"
#include "core/runtime.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"
#include "support/test_graphs.hh"

namespace sentinel::baselines {
namespace {

struct Rig {
    df::Graph graph;
    core::RuntimeConfig cfg;
    prof::ProfileResult profile;
    mem::HeterogeneousMemory hm;

    explicit Rig(std::uint64_t fast_bytes,
                 df::Graph g = sentinel::testing::makeToyGraph())
        : graph(std::move(g)),
          cfg(core::RuntimeConfig::optane(fast_bytes)),
          profile(runProfile()), hm(cfg.fast, cfg.slow, cfg.migration)
    {
    }

    prof::ProfileResult
    runProfile()
    {
        mem::HeterogeneousMemory phm(cfg.fast, cfg.slow, cfg.migration);
        prof::Profiler p(cfg.profiler);
        return p.profile(graph, phm, cfg.exec);
    }

    df::StepStats
    steady(df::MemoryPolicy &policy, int steps = 6)
    {
        df::Executor ex(graph, hm, cfg.exec, policy);
        return ex.run(steps).back();
    }
};

// ---------------------------------------------------------------- IAL

TEST(Ial, PromotesHotPagesAfterThreshold)
{
    Rig rig(128 * 1024);
    IalPolicy policy(/*threshold=*/2);
    df::StepStats s = rig.steady(policy);
    EXPECT_GT(policy.promotionsRequested(), 0u);
    EXPECT_GT(s.promoted_bytes, 0u);
}

TEST(Ial, EvictsFifoWhenFastFills)
{
    Rig rig(128 * 1024); // tiny fast tier forces churn
    IalPolicy policy;
    df::StepStats s = rig.steady(policy);
    EXPECT_GT(s.demoted_bytes, 0u);
    // FIFO churn: bytes keep moving every steady step.
    EXPECT_GT(s.promoted_bytes + s.demoted_bytes, 0u);
}

TEST(Ial, HintFaultsExposeTime)
{
    Rig rig(128 * 1024);
    IalPolicy policy;
    df::StepStats s = rig.steady(policy);
    EXPECT_GT(s.exposed_migration, 0);
}

// --------------------------------------------------------- Memory Mode

TEST(MemoryMode, EverythingServedThroughTheCache)
{
    Rig rig(128 * 1024);
    MemoryModePolicy policy(128 * 1024);
    df::StepStats s = rig.steady(policy);
    // All accesses are effective-fast (served from the DRAM cache)...
    EXPECT_EQ(s.bytes_slow, 0u);
    // ...but misses exposed their fill costs.
    EXPECT_GT(s.exposed_migration, 0);
    EXPECT_GT(policy.cache().misses(), 0u);
    EXPECT_GT(policy.cache().hitRate(), 0.0);
}

TEST(MemoryMode, BiggerCacheMissesLess)
{
    Rig rig1(1ull << 20);
    MemoryModePolicy small_cache(256 * 1024);
    df::StepStats a = rig1.steady(small_cache);

    Rig rig2(1ull << 20);
    MemoryModePolicy big_cache(16ull << 20);
    df::StepStats b = rig2.steady(big_cache);
    EXPECT_LT(b.exposed_migration, a.exposed_migration);
    EXPECT_GT(big_cache.cache().hitRate(),
              small_cache.cache().hitRate());
}

// ------------------------------------------------------------------ UM

TEST(UnifiedMemory, FaultsOnDemand)
{
    Rig rig(128 * 1024);
    UnifiedMemoryPolicy policy;
    df::StepStats s = rig.steady(policy);
    EXPECT_GT(policy.demandFaults(), 0u);
    EXPECT_GT(s.exposed_migration, 0);
}

TEST(UnifiedMemory, NoFaultsWhenEverythingFits)
{
    Rig rig(64ull << 20);
    UnifiedMemoryPolicy policy;
    df::StepStats s = rig.steady(policy);
    EXPECT_EQ(policy.demandFaults(), 0u);
    EXPECT_EQ(s.exposed_migration, 0);
    EXPECT_EQ(s.bytes_slow, 0u);
}

// -------------------------------------------------------------- AutoTM

TEST(AutoTm, PinsHotTensorsWhenMemoryIsAmple)
{
    sentinel::testing::ToyGraphIds ids;
    Rig rig(64ull << 20, sentinel::testing::makeToyGraph(&ids));
    AutoTmPolicy policy(rig.profile.db);
    df::StepStats s = rig.steady(policy);
    // Plenty of fast memory: everything pins, nothing moves, nothing
    // is slow.
    EXPECT_EQ(s.bytes_slow, 0u);
    EXPECT_EQ(policy.placementOf(ids.w0), Placement::PinFast);
}

TEST(AutoTm, SwapsOrSlowsUnderPressure)
{
    sentinel::testing::ToyGraphIds ids;
    Rig rig(128 * 1024, sentinel::testing::makeToyGraph(&ids));
    AutoTmPolicy policy(rig.profile.db);
    df::StepStats s = rig.steady(policy);
    // Under pressure something must give: either migration volume
    // (Swap placements, with synchronous exposure) or slow accesses.
    EXPECT_GT(s.promoted_bytes + s.bytes_slow, 0u);
}

TEST(AutoTm, UseEpisodesGrouping)
{
    EXPECT_EQ(useEpisodes({ 1, 2, 3 }),
              (std::vector<std::pair<int, int>>{ { 1, 3 } }));
    EXPECT_EQ(useEpisodes({ 1, 2, 7, 8 }),
              (std::vector<std::pair<int, int>>{ { 1, 2 }, { 7, 8 } }));
    EXPECT_EQ(useEpisodes({ 5 }),
              (std::vector<std::pair<int, int>>{ { 5, 5 } }));
    EXPECT_EQ(useEpisodes({ 0, 2, 4 }),
              (std::vector<std::pair<int, int>>{
                  { 0, 0 }, { 2, 2 }, { 4, 4 } }));
    EXPECT_TRUE(useEpisodes({}).empty());
}

TEST(AutoTm, TransientLedgerCoversGradsAndTemps)
{
    Rig rig(1ull << 20);
    auto ledger = transientLedger(rig.profile.db);
    ASSERT_EQ(ledger.size(),
              static_cast<std::size_t>(rig.graph.numLayers()));
    std::uint64_t total = 0;
    for (auto b : ledger)
        total += b;
    EXPECT_GT(total, 0u);
}

// ---------------------------------------------------------------- vDNN

TEST(Vdnn, SupportsOnlyConvGraphs)
{
    df::Graph resnet = models::makeModel("resnet20", 2);
    EXPECT_TRUE(VdnnPolicy::supports(resnet));
    // Recursive / attention structures have no convolution backbone.
    df::Graph lstm = models::makeModel("lstm", 2);
    EXPECT_FALSE(VdnnPolicy::supports(lstm));
    df::Graph bert = models::makeModel("bert_base", 1);
    EXPECT_FALSE(VdnnPolicy::supports(bert));
}

TEST(Vdnn, OffloadsConvInputs)
{
    df::Graph resnet = models::makeModel("resnet20", 2);
    std::uint64_t fast =
        mem::roundUpToPages(resnet.peakMemoryBytes() / 2);
    Rig rig(fast, models::makeModel("resnet20", 2));
    VdnnPolicy policy;
    df::StepStats s = rig.steady(policy);
    // Conv inputs move out and back.
    EXPECT_GT(s.demoted_bytes, 0u);
    EXPECT_GT(s.promoted_bytes, 0u);
}

// --------------------------------------------------------- SwapAdvisor

TEST(SwapAdvisor, DeterministicForFixedSeed)
{
    Rig rig1(128 * 1024);
    SwapAdvisorPolicy p1(rig1.profile.db);
    df::StepStats a = rig1.steady(p1);

    Rig rig2(128 * 1024);
    SwapAdvisorPolicy p2(rig2.profile.db);
    df::StepStats b = rig2.steady(p2);
    EXPECT_EQ(a.step_time, b.step_time);
    EXPECT_EQ(a.promoted_bytes, b.promoted_bytes);
}

TEST(SwapAdvisor, SearchOverheadCharged)
{
    Rig rig(1ull << 20);
    SwapAdvisorPolicy policy(rig.profile.db);
    df::StepStats s = rig.steady(policy);
    EXPECT_GT(s.policy_time, 0);
    EXPECT_GT(policy.decisionTimeEstimate(), 0);
}

// ------------------------------------------------------------ Capuchin

TEST(Capuchin, RecomputesWhenSwapCannotHide)
{
    // Tight memory + slow link: swaps cannot hide, activations are
    // recomputed instead.
    df::Graph g = models::makeModel("resnet20", 8);
    std::uint64_t fast = mem::roundUpToPages(g.peakMemoryBytes() / 6);
    Rig rig(fast, models::makeModel("resnet20", 8));
    CapuchinPolicy policy(rig.profile.db);
    df::StepStats s = rig.steady(policy);
    if (policy.recomputeCount() > 0) {
        EXPECT_GT(s.recompute_time, 0);
    }
    // Either way the policy must run to steady state.
    EXPECT_GT(s.step_time, 0);
}

TEST(Capuchin, NoRecomputeWhenMemoryIsAmple)
{
    Rig rig(64ull << 20);
    CapuchinPolicy policy(rig.profile.db);
    df::StepStats s = rig.steady(policy);
    EXPECT_EQ(policy.recomputeCount(), 0u);
    EXPECT_EQ(s.recompute_time, 0);
}

// ----------------------------------------------------------- Reference

TEST(Reference, NamesAndTiers)
{
    EXPECT_EQ(makeFastOnly()->name(), "fast-only");
    EXPECT_EQ(makeSlowOnly()->name(), "slow-only");
    EXPECT_EQ(makeFirstTouchNuma()->name(), "first-touch-numa");
}

TEST(Reference, FirstTouchSpillsToSlow)
{
    Rig rig(128 * 1024);
    auto policy = makeFirstTouchNuma();
    df::StepStats s = rig.steady(*policy);
    EXPECT_GT(s.bytes_fast, 0u);
    EXPECT_GT(s.bytes_slow, 0u);
    EXPECT_EQ(s.promoted_bytes, 0u); // never migrates
    EXPECT_EQ(s.demoted_bytes, 0u);
}

} // namespace
} // namespace sentinel::baselines
