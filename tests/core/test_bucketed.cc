#include <gtest/gtest.h>

#include "core/bucketed.hh"
#include "models/lstm.hh"

namespace sentinel::core {
namespace {

// Dynamic graphs in the paper's sense: the same model at different
// (padded) input sizes.  Sequence length is the bucket key.
df::Graph
lstmAtSeq(int seq)
{
    return models::buildLstm(/*batch=*/8, /*hidden=*/128, seq,
                             /*stacked=*/1);
}

RuntimeConfig
smallConfig()
{
    return RuntimeConfig::optane(8ull << 20);
}

TEST(BucketedRuntime, ProfilesEachBucketOnce)
{
    BucketedRuntime rt(lstmAtSeq, smallConfig());
    EXPECT_EQ(rt.bucketsProfiled(), 0u);

    rt.step(8);
    EXPECT_EQ(rt.bucketsProfiled(), 1u);
    EXPECT_EQ(rt.profilingSteps(), 1);

    // Same bucket again: no new profiling.
    rt.step(8);
    rt.step(8);
    EXPECT_EQ(rt.profilingSteps(), 1);

    // A new input size (new dataflow shape) triggers re-profiling —
    // the paper's handling of control dependencies.
    rt.step(16);
    EXPECT_EQ(rt.bucketsProfiled(), 2u);
    EXPECT_EQ(rt.profilingSteps(), 2);
}

TEST(BucketedRuntime, BucketsTrainIndependently)
{
    BucketedRuntime rt(lstmAtSeq, smallConfig());
    df::StepStats small = rt.step(4);
    df::StepStats large = rt.step(12);
    // A longer unrolled sequence costs more per step.
    EXPECT_GT(large.step_time, small.step_time);

    // Steady state within each bucket.
    rt.step(4);
    df::StepStats again = rt.step(4);
    df::StepStats once_more = rt.step(4);
    EXPECT_EQ(again.step_time, once_more.step_time);
}

TEST(BucketedRuntime, BucketLimitIsFatal)
{
    BucketedRuntime rt(lstmAtSeq, smallConfig(), /*max_buckets=*/2);
    rt.step(2);
    rt.step(4);
    EXPECT_THROW(rt.step(6), std::runtime_error);
}

TEST(BucketedRuntime, PlansDifferPerBucket)
{
    BucketedRuntime rt(lstmAtSeq, smallConfig());
    rt.step(4);
    rt.step(20);
    // The 20-step unroll has more layers, so its migration plan covers
    // more intervals.
    EXPECT_GT(rt.bucket(20).graph().numLayers(),
              rt.bucket(4).graph().numLayers());
    EXPECT_GE(rt.bucket(20).policy().migrationPlan().num_intervals,
              rt.bucket(4).policy().migrationPlan().num_intervals);
}

} // namespace
} // namespace sentinel::core
