#include <set>

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "core/sentinel_policy.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"
#include "support/test_graphs.hh"

namespace sentinel::core {
namespace {

struct Rig {
    df::Graph graph;
    RuntimeConfig cfg;
    prof::ProfileResult profile;
    mem::HeterogeneousMemory hm;

    explicit Rig(std::uint64_t fast_bytes,
                 df::Graph g = sentinel::testing::makeToyGraph())
        : graph(std::move(g)), cfg(RuntimeConfig::optane(fast_bytes)),
          profile(runProfile()), hm(cfg.fast, cfg.slow, cfg.migration)
    {
    }

    prof::ProfileResult
    runProfile()
    {
        mem::HeterogeneousMemory phm(cfg.fast, cfg.slow, cfg.migration);
        prof::Profiler p(cfg.profiler);
        return p.profile(graph, phm, cfg.exec);
    }
};

TEST(SentinelPolicy, RunsAndReachesSteadyState)
{
    Rig rig(2ull << 20);
    SentinelPolicy policy(rig.profile.db);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    auto stats = ex.run(8);
    EXPECT_GT(stats.back().step_time, 0);
    // Repetitive training: late steps settle to a fixed cost.
    EXPECT_EQ(stats[6].step_time, stats[7].step_time);
}

TEST(SentinelPolicy, CoallocationSeparatesClasses)
{
    sentinel::testing::ToyGraphIds ids;
    df::Graph g = sentinel::testing::makeToyGraph(&ids);
    Rig rig(2ull << 20, sentinel::testing::makeToyGraph(&ids));
    SentinelPolicy policy(rig.profile.db);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.runStep();

    // Rule 4 / pool: short-lived tensors never share pages with
    // long-lived ones -> their address regions are disjoint.  We can
    // check the preallocated rule directly: each preallocated tensor
    // page-exclusive.
    std::set<mem::PageId> prealloc_pages;
    for (df::TensorId id : rig.graph.preallocatedTensors()) {
        const df::TensorPlacement &pl = ex.placementOf(id);
        EXPECT_EQ(pl.addr % mem::kPageSize, 0u);
        for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
            EXPECT_TRUE(prealloc_pages.insert(p).second)
                << "preallocated tensors share page " << p;
            EXPECT_EQ(ex.pageRefCount(p), 1);
        }
    }
}

TEST(SentinelPolicy, CoallocationOrdersClassMembersByHotness)
{
    // Two long-lived tensors with identical (first,last) spans share a
    // page region; the hotter one gets the lower address.
    df::Graph g("coalloc", 1);
    auto mk = [&](const char *n, double eps) {
        df::TensorId t =
            g.addTensor(n, 1024, df::TensorKind::Activation);
        return std::pair<df::TensorId, double>(t, eps);
    };
    auto [cold, ce] = mk("cold", 1.0);
    auto [hot, he] = mk("hot", 50.0);
    df::TensorId sink = g.addTensor("sink", 1024, df::TensorKind::Temp);
    g.addOp("produce", df::OpType::Other, 0, 1e6,
            { { cold, true, 1024, ce }, { hot, true, 1024, he } });
    g.addOp("consume", df::OpType::Other, 1, 1e6,
            { { cold, false, 1024, ce },
              { hot, false, 1024, he },
              { sink, true, 1024, 1.0 } });
    g.finalize();

    Rig rig(2ull << 20, std::move(g));
    SentinelPolicy policy(rig.profile.db);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.runStep();

    mem::VirtAddr ah = policy.staticAddress(hot);
    mem::VirtAddr ac = policy.staticAddress(cold);
    ASSERT_NE(ah, ~0ull);
    ASSERT_NE(ac, ~0ull);
    // Same (first,last) span -> same class region -> same page; the
    // hotter tensor is laid out first (descending access count,
    // Sec. IV-B rule 2).
    EXPECT_LT(ah, ac);
    EXPECT_EQ(mem::pageOf(ah), mem::pageOf(ac));
}

TEST(SentinelPolicy, PoolHostsShortLivedTensors)
{
    Rig rig(2ull << 20);
    SentinelPolicy policy(rig.profile.db);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.run(2);
    EXPECT_GT(policy.reservedPoolBytes(), 0u);
    EXPECT_GT(policy.reservedPoolPeak(), 0u);
    EXPECT_LE(policy.reservedPoolPeak(), policy.reservedPoolBytes());
}

TEST(SentinelPolicy, PoolDisabledAblation)
{
    Rig rig(2ull << 20);
    SentinelOptions opts;
    opts.use_reserved_pool = false;
    SentinelPolicy policy(rig.profile.db, opts);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.run(2);
    EXPECT_EQ(policy.reservedPoolBytes(), 0u);
}

TEST(SentinelPolicy, DirectMigrationAblationUsesMilOne)
{
    Rig rig(2ull << 20);
    SentinelOptions opts;
    opts.use_interval_planner = false;
    SentinelPolicy policy(rig.profile.db, opts);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.run(1);
    EXPECT_EQ(policy.migrationPlan().mil, 1);
}

TEST(SentinelPolicy, ForcedMilOverridesPlanner)
{
    Rig rig(2ull << 20);
    SentinelOptions opts;
    opts.forced_mil = 2;
    SentinelPolicy policy(rig.profile.db, opts);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.run(1);
    EXPECT_EQ(policy.migrationPlan().mil, 2);
}

TEST(SentinelPolicy, GpuModeAlwaysStalls)
{
    Rig rig(2ull << 20);
    SentinelOptions opts;
    opts.gpu_mode = true;
    SentinelPolicy policy(rig.profile.db, opts);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.run(6);
    EXPECT_TRUE(policy.stallModeChosen());
    EXPECT_EQ(policy.trialStepsUsed(), 0); // no test-and-trial on GPU
}

TEST(SentinelPolicy, TrialStepsAreBounded)
{
    // Even under severe memory pressure the test-and-trial machinery
    // uses at most two steps (Sec. IV-D / Table III).
    Rig rig(512 * 1024);
    SentinelPolicy policy(rig.profile.db);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.run(10);
    EXPECT_LE(policy.trialStepsUsed(), 2);
}

TEST(SentinelRuntime, FacadeTrainsResnet)
{
    df::Graph g = models::makeModel("resnet20", 4);
    std::uint64_t fast = mem::roundUpToPages(g.peakMemoryBytes() / 5);
    Runtime rt(std::move(g), RuntimeConfig::optane(fast));
    const prof::ProfileResult &pr = rt.profileResult();
    EXPECT_GT(pr.profilingSlowdown(), 1.0);
    auto stats = rt.train(4);
    ASSERT_EQ(stats.size(), 4u);
    EXPECT_GT(stats.back().step_time, 0);
    EXPECT_GE(rt.policy().migrationPlan().mil, 1);
    // Continuing training works.
    auto more = rt.train(2);
    EXPECT_EQ(more.size(), 2u);
}

TEST(SentinelRuntime, PresetsAreSane)
{
    auto cpu = RuntimeConfig::optane(1 << 30);
    EXPECT_GT(cpu.fast.read_bw, cpu.slow.read_bw);
    EXPECT_LT(cpu.fast.read_latency, cpu.slow.read_latency);
    EXPECT_FALSE(cpu.sentinel.gpu_mode);

    auto gpu = RuntimeConfig::gpu(1 << 30);
    EXPECT_GT(gpu.fast.read_bw, gpu.slow.read_bw);
    EXPECT_TRUE(gpu.sentinel.gpu_mode);
    EXPECT_TRUE(gpu.profiler.gpu_pinned);
}

TEST(SentinelPolicy, EvictionCandidatesProtectUpcomingPrefetches)
{
    Rig rig(2ull << 20);
    SentinelPolicy policy(rig.profile.db);
    df::Executor ex(rig.graph, rig.hm, rig.cfg.exec, policy);
    ex.run(4);

    std::vector<df::TensorId> cands = policy.evictionCandidates(ex);
    // Pinned: evictForSpace() walks exactly this list, in this order.
    EXPECT_EQ(cands, policy.evictionCandidates(ex));
    std::set<df::TensorId> seen;
    for (df::TensorId id : cands)
        EXPECT_TRUE(seen.insert(id).second) << "duplicate victim " << id;

    // The regression: the wrap-around scan used to walk layers *ahead*
    // and could evict tensors queued or just prefetched for the
    // upcoming interval — exactly the ones about to be used.
    for (df::TensorId id : policy.pendingPrefetch())
        EXPECT_EQ(seen.count(id), 0u) << "queued prefetch " << id;
    const MigrationPlan &plan = policy.migrationPlan();
    int cur = plan.intervalOfLayer(rig.graph.numLayers() - 1);
    for (df::TensorId id :
         plan.prefetch_at[static_cast<std::size_t>(cur)])
        EXPECT_EQ(seen.count(id), 0u) << "just-prefetched " << id;
}

} // namespace
} // namespace sentinel::core
