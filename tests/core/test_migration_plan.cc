#include <algorithm>

#include <gtest/gtest.h>

#include "core/migration_plan.hh"
#include "mem/hm.hh"
#include "profile/profiler.hh"
#include "support/test_graphs.hh"

namespace sentinel::core {
namespace {

using sentinel::testing::ToyGraphIds;

struct Fixture {
    ToyGraphIds ids;
    prof::ProfileResult profile;

    Fixture()
        : profile(make())
    {
    }

    prof::ProfileResult
    make()
    {
        df::Graph g = sentinel::testing::makeToyGraph(&ids);
        mem::TierParams fast{ "dram", 64ull << 20, 50e9, 40e9, 80, 80 };
        mem::TierParams slow{ "pmm", 4ull << 30, 6e9, 2e9, 300, 100 };
        mem::HeterogeneousMemory hm(fast, slow, { 4e9, 2e9, 2000 });
        prof::Profiler p;
        return p.profile(g, hm, df::ExecParams{});
    }
};

bool
contains(const std::vector<df::TensorId> &v, df::TensorId id)
{
    return std::find(v.begin(), v.end(), id) != v.end();
}

TEST(MigrationPlan, Shape)
{
    Fixture f;
    MigrationPlan plan = buildMigrationPlan(f.profile.db, 2);
    EXPECT_EQ(plan.mil, 2);
    EXPECT_EQ(plan.num_intervals, 2);
    EXPECT_EQ(plan.prefetch_at.size(), 2u);
    EXPECT_EQ(plan.demote_at_layer.size(), 4u);
    EXPECT_EQ(plan.intervalOfLayer(0), 0);
    EXPECT_EQ(plan.intervalOfLayer(3), 1);
}

TEST(MigrationPlan, NoShortLivedTensorInAnyList)
{
    Fixture f;
    for (int mil : { 1, 2, 4 }) {
        MigrationPlan plan = buildMigrationPlan(f.profile.db, mil);
        for (const auto &lst : plan.prefetch_at) {
            EXPECT_FALSE(contains(lst, f.ids.temp0));
            EXPECT_FALSE(contains(lst, f.ids.temp1));
        }
        for (const auto &lst : plan.demote_at_layer) {
            EXPECT_FALSE(contains(lst, f.ids.temp0));
            EXPECT_FALSE(contains(lst, f.ids.temp1));
        }
    }
}

TEST(MigrationPlan, PrefetchCoversBackwardNeeds)
{
    Fixture f;
    MigrationPlan plan = buildMigrationPlan(f.profile.db, 2);
    // Interval 0 prefetches for interval 1 (layers 2-3): a0 (read in
    // layer 3), w0, w1 are all needed there.
    const auto &pf = plan.prefetch_at[0];
    EXPECT_TRUE(contains(pf, f.ids.a0));
    EXPECT_TRUE(contains(pf, f.ids.w0));
    EXPECT_TRUE(contains(pf, f.ids.w1));
}

TEST(MigrationPlan, BornInNextIntervalExcluded)
{
    Fixture f;
    MigrationPlan plan = buildMigrationPlan(f.profile.db, 2);
    // g1 is born in layer 2 (interval 1): it cannot be prefetched for
    // interval 1 — it does not exist yet.
    EXPECT_FALSE(contains(plan.prefetch_at[0], f.ids.g1));
}

TEST(MigrationPlan, LastIntervalWrapsToFirst)
{
    Fixture f;
    MigrationPlan plan = buildMigrationPlan(f.profile.db, 2);
    // Interval 1 prefetches for the NEXT STEP's interval 0: the
    // weights used in layers 0/1 qualify (they are preallocated and
    // persist across steps).
    const auto &pf = plan.prefetch_at[1];
    EXPECT_TRUE(contains(pf, f.ids.w0));
    EXPECT_TRUE(contains(pf, f.ids.w1));
    EXPECT_TRUE(contains(pf, f.ids.input));
}

TEST(MigrationPlan, PrefetchSortedByHotnessDescending)
{
    Fixture f;
    MigrationPlan plan = buildMigrationPlan(f.profile.db, 2);
    for (const auto &lst : plan.prefetch_at) {
        for (std::size_t i = 1; i < lst.size(); ++i) {
            EXPECT_GE(f.profile.db.tensor(lst[i - 1]).accesses_per_page,
                      f.profile.db.tensor(lst[i]).accesses_per_page);
        }
    }
}

TEST(MigrationPlan, DemotesOnlyAcrossLongGaps)
{
    Fixture f;
    // MIL 1: a0 is accessed at layers 0, 1, 3.  After layer 1 its next
    // access (3) is beyond interval 2's end -> demote at layer 1.
    // After layer 0 the next access (1) is within the next interval ->
    // keep (it was just prefetched).
    MigrationPlan plan = buildMigrationPlan(f.profile.db, 1);
    EXPECT_TRUE(contains(plan.demote_at_layer[1], f.ids.a0));
    EXPECT_FALSE(contains(plan.demote_at_layer[0], f.ids.a0));
    // Non-preallocated tensors are never demoted at their last access
    // (they are freed).
    EXPECT_FALSE(contains(plan.demote_at_layer[3], f.ids.a0));
}

TEST(MigrationPlan, PreallocatedWrapDemotion)
{
    Fixture f;
    // w1 is accessed at layers 1 and 2 only.  At MIL 1, after layer 2
    // its next access is layer 1 of the NEXT step (i.e. 1 + 4 = 5,
    // beyond layer 2's next interval) -> demoted at layer 2.
    MigrationPlan plan = buildMigrationPlan(f.profile.db, 1);
    EXPECT_TRUE(contains(plan.demote_at_layer[2], f.ids.w1));
    // But with MIL 2 the wrap keeps it: next access 5 vs keep_until
    // (2/2+2)*2 = 6 -> 5 < 6, stays resident.
    MigrationPlan plan2 = buildMigrationPlan(f.profile.db, 2);
    EXPECT_FALSE(contains(plan2.demote_at_layer[2], f.ids.w1));
}

TEST(MigrationPlan, InvalidMilPanics)
{
    Fixture f;
    EXPECT_THROW(buildMigrationPlan(f.profile.db, 0), std::logic_error);
}

} // namespace
} // namespace sentinel::core

namespace sentinel::core {
namespace {

TEST(MigrationPlan, ExplicitBoundaries)
{
    Fixture f;
    MigrationPlan plan = buildMigrationPlan(f.profile.db, { 0, 1, 3 });
    EXPECT_EQ(plan.num_intervals, 3);
    EXPECT_EQ(plan.intervalOfLayer(0), 0);
    EXPECT_EQ(plan.intervalOfLayer(1), 1);
    EXPECT_EQ(plan.intervalOfLayer(2), 1);
    EXPECT_EQ(plan.intervalOfLayer(3), 2);
    EXPECT_TRUE(plan.isIntervalStart(0));
    EXPECT_TRUE(plan.isIntervalStart(1));
    EXPECT_FALSE(plan.isIntervalStart(2));
    EXPECT_TRUE(plan.isIntervalStart(3));
    EXPECT_EQ(plan.intervalEnd(1), 3);
    EXPECT_EQ(plan.intervalEnd(2), 4);
}

TEST(MigrationPlan, FixedMilMatchesExplicitEquivalent)
{
    Fixture f;
    MigrationPlan a = buildMigrationPlan(f.profile.db, 2);
    MigrationPlan b = buildMigrationPlan(f.profile.db, { 0, 2 });
    ASSERT_EQ(a.num_intervals, b.num_intervals);
    for (int k = 0; k < a.num_intervals; ++k)
        EXPECT_EQ(a.prefetch_at[static_cast<std::size_t>(k)],
                  b.prefetch_at[static_cast<std::size_t>(k)]);
    for (int l = 0; l < 4; ++l)
        EXPECT_EQ(a.demote_at_layer[static_cast<std::size_t>(l)],
                  b.demote_at_layer[static_cast<std::size_t>(l)]);
}

TEST(MigrationPlan, BadBoundariesPanic)
{
    Fixture f;
    EXPECT_THROW(buildMigrationPlan(f.profile.db, { 1, 2 }),
                 std::logic_error); // must start at 0
    EXPECT_THROW(buildMigrationPlan(f.profile.db, { 0, 2, 2 }),
                 std::logic_error); // strictly ascending
    EXPECT_THROW(buildMigrationPlan(f.profile.db, { 0, 9 }),
                 std::logic_error); // within the step
}

} // namespace
} // namespace sentinel::core
