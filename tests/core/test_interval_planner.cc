#include <gtest/gtest.h>

#include "core/interval_planner.hh"
#include "mem/hm.hh"
#include "profile/profiler.hh"
#include "support/test_graphs.hh"

namespace sentinel::core {
namespace {

prof::ProfileResult
profileToy()
{
    df::Graph g = sentinel::testing::makeToyGraph();
    mem::TierParams fast{ "dram", 64ull << 20, 50e9, 40e9, 80, 80 };
    mem::TierParams slow{ "pmm", 4ull << 30, 6e9, 2e9, 300, 100 };
    mem::HeterogeneousMemory hm(fast, slow, { 4e9, 2e9, 2000 });
    prof::Profiler p;
    return p.profile(g, hm, df::ExecParams{});
}

PlannerInputs
inputs(const prof::ProfileDatabase &db, std::uint64_t s)
{
    PlannerInputs in;
    in.db = &db;
    in.fast_capacity = s;
    in.promote_bw = 4e9;
    in.fast_read_bw = 50e9;
    in.slow_read_bw = 6e9;
    return in;
}

TEST(IntervalPlanner, ProducesOneCandidatePerMil)
{
    auto r = profileToy();
    IntervalPlanner planner(inputs(r.db, 1ull << 20));
    PlannerResult plan = planner.plan(512 * 1024);
    // Toy graph has 4 layers: candidates for MIL 1..2.
    ASSERT_EQ(plan.candidates.size(), 2u);
    EXPECT_EQ(plan.candidates[0].mil, 1);
    EXPECT_EQ(plan.candidates[1].mil, 2);
}

TEST(IntervalPlanner, RsIsCappedByTheGivenBound)
{
    auto r = profileToy();
    std::uint64_t sl = r.db.shortLivedPeakBytes();
    ASSERT_GT(sl, mem::kPageSize);

    IntervalPlanner planner(inputs(r.db, 64ull << 20));
    PlannerResult uncapped = planner.plan(sl * 2);
    EXPECT_EQ(uncapped.rs_bytes, sl);
    PlannerResult capped = planner.plan(mem::kPageSize);
    EXPECT_EQ(capped.rs_bytes, mem::kPageSize);
}

TEST(IntervalPlanner, GenerousMemoryIsFeasible)
{
    auto r = profileToy();
    IntervalPlanner planner(inputs(r.db, 64ull << 20));
    PlannerResult plan = planner.plan(8ull << 20);
    EXPECT_TRUE(plan.best.feasible);
    EXPECT_EQ(plan.best.est_exposed, 0);
}

TEST(IntervalPlanner, TinyMemoryDegradesGracefully)
{
    auto r = profileToy();
    // One page of fast memory: nothing fits; Eq. 1 cannot hold.
    IntervalPlanner planner(inputs(r.db, mem::kPageSize));
    PlannerResult plan = planner.plan(0);
    EXPECT_FALSE(plan.best.feasible);
    EXPECT_EQ(plan.best.mil, 1); // degraded to per-layer migration
}

TEST(IntervalPlanner, PrefetchBytesExcludeCurrentAndUnbornTensors)
{
    sentinel::testing::ToyGraphIds ids;
    df::Graph g = sentinel::testing::makeToyGraph(&ids);
    mem::TierParams fast{ "dram", 64ull << 20, 50e9, 40e9, 80, 80 };
    mem::TierParams slow{ "pmm", 4ull << 30, 6e9, 2e9, 300, 100 };
    mem::HeterogeneousMemory hm(fast, slow, { 4e9, 2e9, 2000 });
    prof::Profiler p;
    auto r = p.profile(g, hm, df::ExecParams{});
    IntervalPlanner planner(inputs(r.db, 64ull << 20));

    // At MIL 2, interval 0 (layers 0-1) prefetching for interval 1
    // (layers 2-3): every candidate is either touched by interval 0
    // already (w0, w1, a0 — resident, nothing to move) or born inside
    // interval 1 (g1) — so the migration estimate is zero.
    EXPECT_EQ(planner.prefetchBytes(2, 0), 0u);

    // At MIL 1, interval 2 (layer 2) prefetches for layer 3: w0 and a0
    // are accessed there but not in layer 2, so exactly their bytes
    // move; g1 (accessed in both 2 and 3) and temps are excluded.
    std::uint64_t expected =
        g.tensor(ids.w0).bytes + g.tensor(ids.a0).bytes;
    EXPECT_EQ(planner.prefetchBytes(1, 2), expected);
}

TEST(IntervalPlanner, WorkingSetGrowsWithMil)
{
    auto r = profileToy();
    IntervalPlanner planner(inputs(r.db, 64ull << 20));
    EXPECT_LE(planner.workingSetBytes(1, 0),
              planner.workingSetBytes(2, 0));
}

TEST(IntervalPlanner, IntervalTimesPartitionTheStep)
{
    auto r = profileToy();
    IntervalPlanner planner(inputs(r.db, 64ull << 20));
    Tick whole = planner.intervalTime(4, 0);
    Tick halves = planner.intervalTime(2, 0) + planner.intervalTime(2, 1);
    EXPECT_EQ(whole, halves);
    EXPECT_GT(whole, 0);
}

TEST(IntervalPlanner, DegradedReservationGivesPerLayerBoundaries)
{
    // S2 regression: rs_bytes >= fast capacity used to make
    // dynamicBoundaries() silently fall back to budgeting against the
    // *full* capacity while plan() treated the budget as zero.  Both
    // now share migrationBudget(): no budget -> per-layer intervals.
    auto r = profileToy();
    PlannerInputs in = inputs(r.db, 1ull << 20);
    IntervalPlanner planner(in);

    EXPECT_EQ(planner.migrationBudget(256 * 1024),
              (1ull << 20) - 256 * 1024);
    EXPECT_EQ(planner.migrationBudget(1ull << 20), 0u);
    EXPECT_EQ(planner.migrationBudget(2ull << 20), 0u);

    std::vector<int> starts = planner.dynamicBoundaries(1ull << 20);
    ASSERT_EQ(starts.size(),
              static_cast<std::size_t>(r.db.numLayers()));
    for (int l = 0; l < r.db.numLayers(); ++l)
        EXPECT_EQ(starts[static_cast<std::size_t>(l)], l);
}

TEST(IntervalPlanner, MissingInputsPanic)
{
    auto r = profileToy();
    PlannerInputs in = inputs(r.db, 0);
    EXPECT_THROW(IntervalPlanner{ in }, std::logic_error);
    in = inputs(r.db, 1 << 20);
    in.promote_bw = 0;
    EXPECT_THROW(IntervalPlanner{ in }, std::logic_error);
    in = inputs(r.db, 1 << 20);
    in.db = nullptr;
    EXPECT_THROW(IntervalPlanner{ in }, std::logic_error);
}

} // namespace
} // namespace sentinel::core
