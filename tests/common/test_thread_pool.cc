#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace sentinel {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitRethrowsFirstException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&completed] { ++completed; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: a subsequent round is clean.
    pool.submit([&completed] { ++completed; });
    pool.wait();
    EXPECT_EQ(completed.load(), 11);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must still run everything.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, VisitsEachIndexExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<int> hits(n, 0);
    parallelFor(n, 4, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, InlineWhenSingleJob)
{
    // jobs <= 1 must run on the calling thread, in order.
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{ 0, 1, 2, 3, 4 }));
}

TEST(ParallelFor, ZeroIterationsIsNoop)
{
    bool ran = false;
    parallelFor(0, 8, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, DeterministicOutputSlots)
{
    // The contract the harness relies on: per-index output slots give
    // identical results for any job count.
    const std::size_t n = 64;
    auto work = [](std::size_t i) {
        return static_cast<int>(i * i + 7);
    };
    std::vector<int> serial(n), parallel(n);
    parallelFor(n, 1, [&](std::size_t i) { serial[i] = work(i); });
    parallelFor(n, 8, [&](std::size_t i) { parallel[i] = work(i); });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesException)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [](std::size_t i) {
                                 if (i == 7)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

} // namespace
} // namespace sentinel
