#include <vector>

#include <gtest/gtest.h>

#include "common/percentile.hh"

namespace sentinel {
namespace {

TEST(Percentile, NearestRankOnKnownData)
{
    // Nearest-rank: p(q) = x[ceil(q*n)-1] on the sorted samples.
    std::vector<double> v{ 15, 20, 35, 40, 50 };
    EXPECT_EQ(percentile(v, 0.05), 15);
    EXPECT_EQ(percentile(v, 0.30), 20);
    EXPECT_EQ(percentile(v, 0.40), 20);
    EXPECT_EQ(percentile(v, 0.50), 35);
    EXPECT_EQ(percentile(v, 0.95), 50);
    EXPECT_EQ(percentile(v, 1.00), 50);
}

TEST(Percentile, UnsortedInputIsSortedInternally)
{
    std::vector<double> v{ 9, 1, 7, 3, 5 };
    EXPECT_EQ(percentile(v, 0.5), 5);
    EXPECT_EQ(percentile(v, 1.0), 9);
    // The caller's copy is untouched (taken by value).
    EXPECT_EQ(v, (std::vector<double>{ 9, 1, 7, 3, 5 }));
}

TEST(Percentile, EdgeQuantiles)
{
    std::vector<double> v{ 2.5 };
    EXPECT_EQ(percentile(v, 0.0), 2.5);
    EXPECT_EQ(percentile(v, 1.0), 2.5);
    EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, OutOfRangeQuantilePanics)
{
    std::vector<double> v{ 1.0 };
    EXPECT_THROW(percentile(v, -0.1), std::logic_error);
    EXPECT_THROW(percentile(v, 1.1), std::logic_error);
}

TEST(PercentileSummary, SummarizesTail)
{
    // 1..100: nearest-rank percentiles are exact integers.
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    PercentileSummary s = PercentileSummary::of(v);
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.p50, 50);
    EXPECT_EQ(s.p95, 95);
    EXPECT_EQ(s.p99, 99);
}

TEST(PercentileSummary, EmptyIsAllZero)
{
    PercentileSummary s = PercentileSummary::of({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p50, 0.0);
    EXPECT_EQ(s.p95, 0.0);
    EXPECT_EQ(s.p99, 0.0);
}

TEST(Percentile, AllDuplicatesCollapseToTheValue)
{
    // Every rank selects the same sample, so every quantile — the
    // edges included — is that value.
    std::vector<double> v(7, 4.25);
    EXPECT_EQ(percentile(v, 0.0), 4.25);
    EXPECT_EQ(percentile(v, 0.5), 4.25);
    EXPECT_EQ(percentile(v, 0.99), 4.25);
    EXPECT_EQ(percentile(v, 1.0), 4.25);
}

TEST(Percentile, TwoSamplesSplitAtTheMedian)
{
    // ceil(q*2): q<=0.5 selects the first sample, q>0.5 the second.
    std::vector<double> v{ 10, 20 };
    EXPECT_EQ(percentile(v, 0.0), 10);
    EXPECT_EQ(percentile(v, 0.5), 10);
    EXPECT_EQ(percentile(v, 0.51), 20);
    EXPECT_EQ(percentile(v, 1.0), 20);
}

TEST(PercentileSummary, SingleSampleFillsEveryQuantile)
{
    PercentileSummary s = PercentileSummary::of({ 3.5 });
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.p50, 3.5);
    EXPECT_EQ(s.p95, 3.5);
    EXPECT_EQ(s.p99, 3.5);
}

TEST(PercentileSummary, AllDuplicates)
{
    PercentileSummary s =
        PercentileSummary::of(std::vector<double>(50, 7.0));
    EXPECT_EQ(s.count, 50u);
    EXPECT_EQ(s.p50, 7.0);
    EXPECT_EQ(s.p95, 7.0);
    EXPECT_EQ(s.p99, 7.0);
}

} // namespace
} // namespace sentinel
