#include <gtest/gtest.h>

#include "common/logging.hh"

namespace sentinel {
namespace {

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("plain"), "plain");
    EXPECT_EQ(strprintf("%d + %d = %d", 2, 2, 4), "2 + 2 = 4");
    EXPECT_EQ(strprintf("%.3f", 1.5), "1.500");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
}

TEST(Strprintf, HandlesLongStrings)
{
    std::string big(10000, 'x');
    std::string out = strprintf("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(SENTINEL_PANIC("boom %d", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(SENTINEL_FATAL("bad config %s", "x"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(SENTINEL_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(SENTINEL_ASSERT(false, "must fire"), std::logic_error);
}

TEST(Logging, VerboseToggle)
{
    bool before = verbose();
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(before);
}

} // namespace
} // namespace sentinel
