#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "common/units.hh"
#include "mem/page.hh"

namespace sentinel {
namespace {

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : { 1.0, 2.0, 3.0, 4.0 })
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    // Sample stddev of 1,2,3,4 is sqrt(5/3).
    EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, SingleSampleHasZeroStddev)
{
    Summary s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Summary, EmptyMeanPanics)
{
    Summary s;
    EXPECT_THROW(s.mean(), std::logic_error);
    EXPECT_THROW(s.min(), std::logic_error);
}

TEST(Summary, NegativeValues)
{
    Summary s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(Histogram, BucketsAndLabels)
{
    // Buckets: <=10, (10,100], >100 — the access-count buckets used by
    // Observation 2.
    Histogram h({ 10, 100 });
    ASSERT_EQ(h.numBuckets(), 3u);

    h.add(1);
    h.add(10);   // boundary goes into the <=10 bucket
    h.add(11);
    h.add(100);
    h.add(101);

    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.totalCount(), 5u);

    EXPECT_EQ(h.bucketLabel(0), "<= 10");
    EXPECT_EQ(h.bucketLabel(1), "(10, 100]");
    EXPECT_EQ(h.bucketLabel(2), "> 100");
}

TEST(Histogram, WeightsTrackSeparately)
{
    Histogram h({ 10 });
    h.add(5, 4096.0);
    h.add(5, 4096.0);
    h.add(50, 100.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 8192.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(1), 100.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 8292.0);
    EXPECT_EQ(h.totalCount(), 3u);
}

TEST(Histogram, UnsortedBoundsPanic)
{
    EXPECT_THROW(Histogram({ 10, 5 }), std::logic_error);
    EXPECT_THROW(Histogram({}), std::logic_error);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(1024), "1.00 KiB");
    EXPECT_EQ(formatBytes(1.5 * 1024 * 1024), "1.50 MiB");
    EXPECT_EQ(formatBytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Format, Time)
{
    EXPECT_EQ(formatTime(500), "500 ns");
    EXPECT_EQ(formatTime(1500), "1.50 us");
    EXPECT_EQ(formatTime(2.5e6), "2.50 ms");
    EXPECT_EQ(formatTime(3.0e9), "3.000 s");
}

TEST(Units, TransferTime)
{
    // 1 GiB at 1 GiB/s is one second.
    EXPECT_EQ(transferTime(GiB, static_cast<double>(GiB)), kSec);
    // Tiny transfers still take at least one tick.
    EXPECT_EQ(transferTime(1, 1e12), 1);
    EXPECT_EQ(transferTime(0, 1e9), 0);
}

TEST(Units, PageMath)
{
    using namespace mem;
    EXPECT_EQ(pageOf(0), 0u);
    EXPECT_EQ(pageOf(4095), 0u);
    EXPECT_EQ(pageOf(4096), 1u);
    EXPECT_EQ(pagesSpanned(0, 4096), 1u);
    EXPECT_EQ(pagesSpanned(0, 4097), 2u);
    EXPECT_EQ(pagesSpanned(100, 4096), 2u); // straddles a boundary
    EXPECT_EQ(pagesSpanned(0, 0), 0u);
    EXPECT_EQ(roundUpToPages(1), kPageSize);
    EXPECT_EQ(roundUpToPages(kPageSize), kPageSize);
}

} // namespace
} // namespace sentinel
