#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace sentinel {
namespace {

TEST(Table, CellsAndAccess)
{
    Table t("demo", { "model", "speedup" });
    t.row().cell("resnet32").cell(1.25, 2);
    t.row().cell("bert").cell(std::int64_t{3});
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
    EXPECT_EQ(t.at(0, 0), "resnet32");
    EXPECT_EQ(t.at(0, 1), "1.25");
    EXPECT_EQ(t.at(1, 1), "3");
}

TEST(Table, PrintContainsHeadersAndCells)
{
    Table t("fig7", { "model", "ial", "autotm", "sentinel" });
    t.row().cell("lstm").cell(1.1, 1).cell(1.5, 1).cell(2.0, 1);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("fig7"), std::string::npos);
    EXPECT_NE(s.find("sentinel"), std::string::npos);
    EXPECT_NE(s.find("lstm"), std::string::npos);
    EXPECT_NE(s.find("2.0"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    Table t("csv", { "a", "b" });
    t.row().cell("x,y").cell("z");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",z\n");
}

TEST(Table, TooManyCellsPanics)
{
    Table t("bad", { "only" });
    t.row().cell("one");
    EXPECT_THROW(t.cell("two"), std::logic_error);
}

TEST(Table, ShortRowDetectedOnNextRow)
{
    Table t("bad", { "a", "b" });
    t.row().cell("only-one");
    EXPECT_THROW(t.row(), std::logic_error);
}

TEST(Table, CellBeforeRowPanics)
{
    Table t("bad", { "a" });
    EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, AtOutOfRangePanics)
{
    Table t("bad", { "a" });
    t.row().cell("x");
    EXPECT_THROW(t.at(1, 0), std::logic_error);
    EXPECT_THROW(t.at(0, 1), std::logic_error);
}

} // namespace
} // namespace sentinel
