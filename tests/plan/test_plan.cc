/**
 * @file
 * The offline offset planner (src/plan): soundness of every plan the
 * solvers emit, optimality bounds on small instances, the
 * interval-vs-class footprint invariant across the model zoo, and the
 * full differential oracle over the committed fuzz corpus with
 * Sentinel's co-allocation solved by the interval planner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/sentinel_policy.hh"
#include "harness/oracle.hh"
#include "models/registry.hh"
#include "models/synthetic.hh"
#include "plan/offset_planner.hh"

namespace sentinel::plan {
namespace {

using harness::ExperimentConfig;
using harness::OracleOptions;
using harness::OracleReport;
using harness::runOracle;

std::vector<PlanTensor>
randomInstance(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<PlanTensor> ts;
    for (int i = 0; i < n; ++i) {
        PlanTensor t;
        t.id = static_cast<std::uint32_t>(i);
        t.bytes = static_cast<std::uint64_t>(rng.uniformInt(1, 1 << 16));
        int a = static_cast<int>(rng.uniformInt(0, 63));
        int b = static_cast<int>(rng.uniformInt(0, 63));
        t.first = std::min(a, b);
        t.last = std::max(a, b);
        ts.push_back(t);
    }
    return ts;
}

// --- Soundness ---------------------------------------------------------

TEST(OffsetPlanner, EmptyInstance)
{
    OffsetPlan p = assignOffsets({});
    EXPECT_EQ(p.footprint, 0u);
    EXPECT_EQ(p.live_peak, 0u);
    EXPECT_TRUE(validatePlan({}, p));
}

TEST(OffsetPlanner, DisjointLifetimesShareBytes)
{
    // Two tensors that never coexist must land on the same offset —
    // that reuse is the planner's whole reason to exist.
    std::vector<PlanTensor> ts = {
        { 0, 1000, 0, 3 },
        { 1, 1000, 4, 9 },
    };
    OffsetPlan p = assignOffsets(ts);
    EXPECT_TRUE(validatePlan(ts, p));
    EXPECT_EQ(p.offsets[0], p.offsets[1]);
    EXPECT_EQ(p.footprint, 1024u); // 1000 aligned up to 64
    EXPECT_EQ(p.footprint, p.live_peak);
}

TEST(OffsetPlanner, TouchingIntervalsConflict)
{
    // Inclusive intervals: last == other.first means both are live at
    // that op, so they must not share bytes.
    std::vector<PlanTensor> ts = {
        { 0, 64, 0, 5 },
        { 1, 64, 5, 9 },
    };
    OffsetPlan p = assignOffsets(ts);
    EXPECT_TRUE(validatePlan(ts, p));
    EXPECT_NE(p.offsets[0], p.offsets[1]);
    EXPECT_EQ(p.footprint, 128u);
}

TEST(OffsetPlanner, BestFitReusesHoles)
{
    // A small tensor whose lifetime starts after a mid-range tensor
    // dies should slot into the freed hole, not extend the footprint.
    std::vector<PlanTensor> ts = {
        { 0, 4096, 0, 9 }, // base, always live
        { 1, 1024, 0, 4 }, // dies mid-run, leaves a hole
        { 2, 4096, 0, 9 }, // always live, above the hole
        { 3, 512, 5, 9 },  // fits the dead tensor's hole
    };
    OffsetPlan p = assignOffsets(ts);
    EXPECT_TRUE(validatePlan(ts, p));
    EXPECT_EQ(p.offsets[3], p.offsets[1]);
    EXPECT_EQ(p.footprint, p.live_peak);
}

TEST(OffsetPlanner, RandomInstancesAreSound)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        std::vector<PlanTensor> ts =
            randomInstance(seed, 8 + static_cast<int>(seed % 40));
        OffsetPlan p = assignOffsets(ts);
        std::string why;
        EXPECT_TRUE(validatePlan(ts, p, 64, &why))
            << "seed " << seed << ": " << why;
        EXPECT_GE(p.footprint, p.live_peak) << "seed " << seed;
    }
}

TEST(OffsetPlanner, Deterministic)
{
    std::vector<PlanTensor> ts = randomInstance(7, 30);
    OffsetPlan a = assignOffsets(ts);
    OffsetPlan b = assignOffsets(ts);
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.footprint, b.footprint);
}

TEST(OffsetPlanner, RespectsAlignment)
{
    std::vector<PlanTensor> ts = randomInstance(11, 20);
    for (std::uint64_t align : { 1ull, 64ull, 4096ull }) {
        OffsetPlan p = assignOffsets(ts, Solver::Greedy, align);
        EXPECT_TRUE(validatePlan(ts, p, align));
        for (std::uint64_t off : p.offsets)
            EXPECT_EQ(off % align, 0u);
    }
}

TEST(OffsetPlanner, ValidateCatchesOverlap)
{
    std::vector<PlanTensor> ts = {
        { 0, 64, 0, 5 },
        { 1, 64, 3, 9 },
    };
    OffsetPlan p = assignOffsets(ts);
    ASSERT_TRUE(validatePlan(ts, p));
    p.offsets[1] = p.offsets[0]; // force a collision
    std::string why;
    EXPECT_FALSE(validatePlan(ts, p, 64, &why));
    EXPECT_FALSE(why.empty());
}

// --- Optimality bounds -------------------------------------------------

TEST(OffsetPlanner, ExhaustiveNeverWorseThanGreedy)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        std::vector<PlanTensor> ts = randomInstance(seed, 9);
        OffsetPlan g = assignOffsets(ts, Solver::Greedy);
        OffsetPlan e = assignOffsets(ts, Solver::Exhaustive);
        ASSERT_EQ(e.solver, Solver::Exhaustive);
        EXPECT_TRUE(validatePlan(ts, e));
        EXPECT_LE(e.footprint, g.footprint) << "seed " << seed;
        EXPECT_GE(e.footprint, e.live_peak) << "seed " << seed;
    }
}

TEST(OffsetPlanner, ExhaustiveDegradesToGreedyAboveLimit)
{
    std::vector<PlanTensor> ts =
        randomInstance(3, static_cast<int>(kExhaustiveLimit) + 1);
    OffsetPlan p = assignOffsets(ts, Solver::Exhaustive);
    EXPECT_EQ(p.solver, Solver::Greedy);
    EXPECT_TRUE(validatePlan(ts, p));
}

TEST(OffsetPlanner, GreedyOptimalOnInterleavedChain)
{
    // first-fit-by-size is provably optimal here: a chain of equal
    // tensors where consecutive pairs overlap packs into exactly two
    // slots — footprint == live peak.
    std::vector<PlanTensor> ts;
    for (int i = 0; i < 10; ++i)
        ts.push_back({ static_cast<std::uint32_t>(i), 4096, i, i + 1 });
    OffsetPlan p = assignOffsets(ts);
    EXPECT_TRUE(validatePlan(ts, p));
    EXPECT_EQ(p.footprint, p.live_peak);
    EXPECT_EQ(p.footprint, 2u * 4096u);
}

// --- Graph extraction --------------------------------------------------

TEST(TensorsFromGraph, LongLivedSubsetMatchesSentinelClasses)
{
    df::Graph g = models::makeModel("resnet32", 8);
    std::vector<PlanTensor> all = tensorsFromGraph(g, true, false);
    std::vector<PlanTensor> long_lived = tensorsFromGraph(g, false, true);
    EXPECT_LT(long_lived.size(), all.size());
    for (const PlanTensor &t : long_lived) {
        const df::TensorDesc &d = g.tensor(t.id);
        EXPECT_FALSE(d.preallocated) << d.name;
        EXPECT_FALSE(d.shortLived()) << d.name;
        EXPECT_EQ(t.first, d.first_op);
        EXPECT_EQ(t.last, d.last_op);
        EXPECT_EQ(t.bytes, d.bytes);
    }
}

TEST(TensorsFromGraph, PreallocatedSpanTheWholeStep)
{
    df::Graph g = models::makeModel("mobilenet", 8);
    std::vector<PlanTensor> all = tensorsFromGraph(g, true, false);
    int prealloc = 0;
    for (const PlanTensor &t : all) {
        if (!g.tensor(t.id).preallocated)
            continue;
        ++prealloc;
        EXPECT_EQ(t.first, 0);
        EXPECT_EQ(t.last, static_cast<int>(g.numOps()) - 1);
    }
    EXPECT_EQ(prealloc,
              static_cast<int>(g.preallocatedTensors().size()));
}

// --- Interval vs. the greedy class packing -----------------------------

/**
 * The class packing groups long-lived tensors by {first,last} layer and
 * rounds every class region up to whole pages; the interval plan solves
 * the unrestricted problem at 64-byte grain.  Its footprint must never
 * exceed the class packing's on any zoo model (and in practice is
 * strictly smaller wherever lifetimes interleave).
 */
TEST(IntervalVsGreedy, FootprintNeverLargerAcrossZoo)
{
    int strictly_smaller = 0;
    for (const models::ModelSpec &spec : models::modelZoo()) {
        ExperimentConfig cfg;
        cfg.model = spec.name;
        cfg.batch = spec.small_batch;

        harness::Metrics greedy = runExperiment(cfg, "sentinel");
        cfg.planner = "interval";
        harness::Metrics interval = runExperiment(cfg, "sentinel");

        EXPECT_LE(interval.layout_mb, greedy.layout_mb) << spec.name;
        if (interval.layout_mb < greedy.layout_mb)
            ++strictly_smaller;

        // Same accesses, same model — layout must not change what the
        // training step touches.
        EXPECT_EQ(greedy.bytes_fast_mb + greedy.bytes_slow_mb,
                  interval.bytes_fast_mb + interval.bytes_slow_mb)
            << spec.name;
    }
    EXPECT_GE(strictly_smaller, 2);
}

TEST(IntervalVsGreedy, PlannedPolicyFitsLivePeak)
{
    // The planned baseline lays out *every* tensor offline; its
    // footprint is bounded below by the graph's peak and is tight
    // (fragmentation ~0) on the small zoo models.
    ExperimentConfig cfg;
    cfg.model = "resnet32";
    cfg.batch = 8;
    harness::Metrics m = runExperiment(cfg, "planned");
    EXPECT_TRUE(m.supported);
    EXPECT_GT(m.layout_mb, 0.0);

    df::Graph g = models::makeModel(cfg.model, cfg.batch);
    std::vector<PlanTensor> ts = tensorsFromGraph(g, true, false);
    OffsetPlan p = assignOffsets(ts);
    EXPECT_TRUE(validatePlan(ts, p));
    EXPECT_NEAR(m.layout_mb, static_cast<double>(p.footprint) / 1e6,
                1e-9);
    EXPECT_LT(p.fragmentation(), 0.05);
}

// --- The committed corpus under planner=interval -----------------------

class IntervalOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IntervalOracle, MatrixInvariantsHold)
{
    ExperimentConfig cfg;
    cfg.model = "synthetic:" + std::to_string(GetParam());
    cfg.batch = 4;
    cfg.steps = 6;
    cfg.warmup = 3;
    cfg.fast_fraction = 0.2;
    cfg.planner = "interval";

    OracleOptions opts;
    opts.jobs = 2;
    opts.run_gpu = false;
    opts.check_determinism = false;
    OracleReport rep = runOracle(cfg, opts);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(
    CommittedSeeds, IntervalOracle,
    ::testing::ValuesIn(std::begin(models::kCommittedFuzzSeeds),
                        std::end(models::kCommittedFuzzSeeds)),
    [](const ::testing::TestParamInfo<std::uint64_t> &info) {
        return "seed_" + std::to_string(info.param);
    });

TEST(PlannerConfig, RejectsUnknownPlanner)
{
    ExperimentConfig cfg;
    cfg.model = "resnet32";
    cfg.batch = 8;
    cfg.planner = "simulated-annealing";
    EXPECT_THROW(runExperiment(cfg, "sentinel"), harness::ConfigError);
}

} // namespace
} // namespace sentinel::plan
