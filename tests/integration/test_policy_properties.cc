/**
 * @file
 * Property sweep: invariants every memory policy must satisfy, run
 * over the full policy matrix on both platforms.
 *
 *  - training reaches a periodic steady state (the paper's
 *    repetitiveness assumption survives the policy's machinery);
 *  - fast-memory occupancy never exceeds the configured capacity;
 *  - total access traffic is policy-invariant (policies move data,
 *    they don't change what the model touches);
 *  - runs are deterministic.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/oracle.hh"
#include "models/registry.hh"
#include "models/synthetic.hh"

namespace sentinel::harness {
namespace {

struct Case {
    std::string policy;
    Platform platform;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string n = info.param.policy + "_" +
                    (info.param.platform == Platform::Optane ? "cpu"
                                                             : "gpu");
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

class PolicyProperties : public ::testing::TestWithParam<Case>
{
  protected:
    ExperimentConfig
    config() const
    {
        ExperimentConfig cfg;
        cfg.model = "resnet20";
        cfg.batch = 8;
        cfg.platform = GetParam().platform;
        if (cfg.platform == Platform::Gpu) {
            df::Graph g = models::makeModel(cfg.model, cfg.batch);
            cfg.fast_bytes =
                mem::roundUpToPages(g.peakMemoryBytes() * 3 / 5);
        }
        return cfg;
    }
};

TEST_P(PolicyProperties, RunsAndProducesSaneMetrics)
{
    Metrics m = runExperiment(config(), GetParam().policy);
    ASSERT_TRUE(m.supported);
    EXPECT_GT(m.step_time_ms, 0.0);
    EXPECT_GE(m.exposed_ms, 0.0);
    EXPECT_GE(m.recompute_ms, 0.0);
    EXPECT_GE(m.bytes_fast_mb, 0.0);
    EXPECT_GE(m.bytes_slow_mb, 0.0);
}

TEST_P(PolicyProperties, FastOccupancyRespectsCapacity)
{
    ExperimentConfig cfg = config();
    Metrics m = runExperiment(cfg, GetParam().policy);
    if (!m.supported)
        GTEST_SKIP();
    df::Graph g = models::makeModel(cfg.model, cfg.batch);
    double capacity_mb =
        cfg.fast_bytes != 0
            ? static_cast<double>(cfg.fast_bytes) / 1e6
            : static_cast<double>(g.peakMemoryBytes()) *
                  cfg.fast_fraction / 1e6;
    if (GetParam().policy == "fast-only")
        GTEST_SKIP(); // its fast tier is sized to hold everything
    EXPECT_LE(m.peak_fast_mb, capacity_mb * 1.001);
}

TEST_P(PolicyProperties, TrafficIsPolicyInvariant)
{
    // What the model reads/writes is fixed by the graph; policies only
    // decide which tier serves it.
    ExperimentConfig cfg = config();
    Metrics ref = runExperiment(cfg, "slow-only");
    Metrics m = runExperiment(cfg, GetParam().policy);
    if (!m.supported)
        GTEST_SKIP();
    double ref_total = ref.bytes_fast_mb + ref.bytes_slow_mb;
    double total = m.bytes_fast_mb + m.bytes_slow_mb;
    EXPECT_NEAR(total, ref_total, ref_total * 0.001);
}

TEST_P(PolicyProperties, Deterministic)
{
    Metrics a = runExperiment(config(), GetParam().policy);
    Metrics b = runExperiment(config(), GetParam().policy);
    EXPECT_EQ(a.step_time_ms, b.step_time_ms);
    EXPECT_EQ(a.promoted_mb, b.promoted_mb);
    EXPECT_EQ(a.bytes_slow_mb, b.bytes_slow_mb);
}

INSTANTIATE_TEST_SUITE_P(
    Cpu, PolicyProperties,
    ::testing::Values(Case{ "slow-only", Platform::Optane },
                      Case{ "numa", Platform::Optane },
                      Case{ "planned", Platform::Optane },
                      Case{ "memory-mode", Platform::Optane },
                      Case{ "ial", Platform::Optane },
                      Case{ "autotm", Platform::Optane },
                      Case{ "sentinel", Platform::Optane },
                      Case{ "fast-only", Platform::Optane }),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    Gpu, PolicyProperties,
    ::testing::Values(Case{ "um", Platform::Gpu },
                      Case{ "vdnn", Platform::Gpu },
                      Case{ "autotm", Platform::Gpu },
                      Case{ "swapadvisor", Platform::Gpu },
                      Case{ "capuchin", Platform::Gpu },
                      Case{ "sentinel", Platform::Gpu }),
    caseName);

/**
 * The same invariants, swept over the committed fuzz seeds via the
 * differential oracle: each seed expands to a different corner of the
 * generator's parameter space (deep conv stacks, mlp-only graphs,
 * heavy branching, multi-MB tensors) and runs the full CPU policy
 * matrix in one shot.  Determinism is covered once above and by the
 * fuzz gate, so the oracle's (expensive) parallel re-run is off here
 * to keep the suite inside its time budget.
 */
class SyntheticOracle
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SyntheticOracle, MatrixInvariantsHold)
{
    ExperimentConfig cfg;
    cfg.model = "synthetic:" + std::to_string(GetParam());
    cfg.batch = 4;
    cfg.steps = 6;
    cfg.warmup = 3;
    cfg.fast_fraction = 0.2;

    OracleOptions opts;
    opts.jobs = 2;
    opts.run_gpu = false;
    opts.check_determinism = false;
    OracleReport rep = runOracle(cfg, opts);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST_P(SyntheticOracle, GraphBuildsDeterministically)
{
    models::SyntheticParams p =
        models::SyntheticParams::fromSeed(GetParam());
    df::Graph a = models::buildSynthetic(p, 4);
    df::Graph b = models::buildSynthetic(p, 4);
    EXPECT_EQ(a.numOps(), b.numOps());
    EXPECT_EQ(a.numTensors(), b.numTensors());
    EXPECT_EQ(a.numLayers(), b.numLayers());
    EXPECT_EQ(a.peakMemoryBytes(), b.peakMemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(
    CommittedSeeds, SyntheticOracle,
    ::testing::ValuesIn(std::begin(models::kCommittedFuzzSeeds),
                        std::end(models::kCommittedFuzzSeeds)),
    [](const ::testing::TestParamInfo<std::uint64_t> &info) {
        return "seed_" + std::to_string(info.param);
    });

} // namespace
} // namespace sentinel::harness
