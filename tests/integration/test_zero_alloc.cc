/**
 * @file
 * The zero-allocation guard: a warm steady-state sentinel step must
 * not touch the heap.
 *
 * The hot loop's scratch buffers (the policy's migration batch and
 * prefetch ring, the executor's segment lists, the migration engine's
 * pooled batch buffers, the SoA page-table chunks) are all grown
 * during warmup and reused afterwards; this test pins that property
 * with the counting operator new from sentinel_alloc_hook.  Linked
 * only into this binary — see common/alloc_hook.hh for the contract.
 * Under sanitizers the hook compiles away and the test skips.
 */

#include <gtest/gtest.h>

#include "common/alloc_hook.hh"
#include "core/sentinel_policy.hh"
#include "dataflow/executor.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"
#include "telemetry/session.hh"
#include "telemetry/timeseries.hh"

using namespace sentinel;

namespace {

mem::HeterogeneousMemory
makeHm(std::uint64_t fast_bytes)
{
    mem::TierParams fast{ "dram", fast_bytes, 76e9, 50e9, 85, 90 };
    mem::TierParams slow{ "pmm", 64ull << 30, 30e9, 10e9, 300, 120 };
    return mem::HeterogeneousMemory(fast, slow, { 8e9, 6e9, 2000 });
}

TEST(ZeroAlloc, SentinelSteadyStateStepDoesNotAllocate)
{
    if (!common::allocHookActive())
        GTEST_SKIP() << "counting allocator not linked (sanitizer build)";
    // The hash page table allocates per map/unmap by design; the
    // zero-allocation property is a promise of the dense backend.
    if (mem::PageTable::defaultBackend() != mem::PageTable::Backend::Dense)
        GTEST_SKIP() << "hash page-table fallback allocates by design";

    df::Graph g = models::makeModel("resnet20", 8);
    std::uint64_t fast = mem::roundUpToPages(g.peakMemoryBytes() / 5);
    auto prof_hm = makeHm(fast);
    prof::Profiler profiler;
    auto profile = profiler.profile(g, prof_hm, df::ExecParams{});

    auto hm = makeHm(fast);
    core::SentinelPolicy policy(profile.db);
    df::Executor ex(g, hm, df::ExecParams{}, policy);

    // Warmup covers the cold start, Sentinel's test-and-trial steps,
    // and every amortized container growth (scratch vectors reach
    // their high-water marks within a couple of steady steps).
    ex.run(8);

    std::uint64_t before = common::allocCount();
    for (int i = 0; i < 50; ++i)
        ex.runStep();
    std::uint64_t after = common::allocCount();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations across 50 warm steps";
}

TEST(ZeroAlloc, LiveObservabilityPlaneDoesNotAllocateInSteadyState)
{
    if (!common::allocHookActive())
        GTEST_SKIP() << "counting allocator not linked (sanitizer build)";
    if (mem::PageTable::defaultBackend() != mem::PageTable::Backend::Dense)
        GTEST_SKIP() << "hash page-table fallback allocates by design";

    df::Graph g = models::makeModel("resnet20", 8);
    std::uint64_t fast = mem::roundUpToPages(g.peakMemoryBytes() / 5);
    auto prof_hm = makeHm(fast);
    prof::Profiler profiler;
    auto profile = profiler.profile(g, prof_hm, df::ExecParams{});

    auto hm = makeHm(fast);
    core::SentinelPolicy policy(profile.db);
    df::Executor ex(g, hm, df::ExecParams{}, policy);

    // The live plane attached: event ring + metric registry + step
    // board.  The board's rings are sized at construction, so the
    // executor's per-step feed (pushes into eight series plus the
    // percentile sketches) must stay off the heap; only SCRAPES
    // (render/snapshot) may allocate, and none happen inside the loop.
    telemetry::Session session;
    telemetry::StepBoard board;
    session.attachStepBoard(&board);
    ex.setTelemetry(&session);

    ex.run(8);

    std::uint64_t before = common::allocCount();
    for (int i = 0; i < 50; ++i)
        ex.runStep();
    std::uint64_t after = common::allocCount();
    EXPECT_EQ(after - before, 0u)
        << (after - before)
        << " heap allocations across 50 warm steps with the "
           "observability plane enabled";
    EXPECT_EQ(board.steps(), 58u); // the board really was fed
}

} // namespace
