/**
 * @file
 * Integration tests pinning the paper's headline *shapes* on ResNet-32
 * (the paper's characterization subject).  These are deliberately
 * loose bounds — the substrate is a simulator, not the authors'
 * testbed — but they lock in who wins, roughly by how much, and the
 * qualitative claims of Secs. III and VII.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"

namespace sentinel {
namespace {

class Resnet32Claims : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        harness::ExperimentConfig cfg;
        cfg.model = "resnet32";
        cfg.batch = 16; // reduced batch keeps the suite fast
        metrics_ = new std::map<std::string, harness::Metrics>();
        for (const auto &p : harness::cpuPolicies())
            metrics_->emplace(p, harness::runExperiment(cfg, p));
    }

    static void
    TearDownTestSuite()
    {
        delete metrics_;
        metrics_ = nullptr;
    }

    static const harness::Metrics &
    get(const std::string &name)
    {
        return metrics_->at(name);
    }

    static std::map<std::string, harness::Metrics> *metrics_;
};

std::map<std::string, harness::Metrics> *Resnet32Claims::metrics_ =
    nullptr;

TEST_F(Resnet32Claims, SentinelNearFastOnlyAt20Percent)
{
    // Paper: ~9% average gap at 20% of peak memory.
    EXPECT_LT(get("sentinel").step_time_ms,
              get("fast-only").step_time_ms * 1.20);
}

TEST_F(Resnet32Claims, SentinelBeatsAutoTm)
{
    // Paper: +17% on average, up to +31%.
    EXPECT_GT(get("autotm").step_time_ms,
              get("sentinel").step_time_ms * 1.05);
}

TEST_F(Resnet32Claims, AutoTmBeatsIal)
{
    // Fig. 7's consistent ordering.
    EXPECT_GT(get("ial").step_time_ms, get("autotm").step_time_ms);
}

TEST_F(Resnet32Claims, EveryPolicyBeatsOrMatchesSlowOnly)
{
    double slow = get("slow-only").step_time_ms;
    EXPECT_LT(get("sentinel").step_time_ms, slow);
    EXPECT_LT(get("autotm").step_time_ms, slow);
    EXPECT_LT(get("numa").step_time_ms, slow);
}

TEST_F(Resnet32Claims, SentinelMigratesMoreThanCompetitors)
{
    // Table IV: Sentinel migrates more than IAL and AutoTM — and hides
    // it.
    EXPECT_GT(get("sentinel").migrated_mb(), get("ial").migrated_mb());
    EXPECT_GE(get("sentinel").migrated_mb(),
              get("autotm").migrated_mb() * 0.8);
    EXPECT_LT(get("sentinel").exposed_ms, get("ial").exposed_ms + 0.01);
}

TEST_F(Resnet32Claims, SentinelUsesFastBandwidth)
{
    // Fig. 9's shape: Sentinel serves far more traffic from fast
    // memory than IAL, and less from slow memory.
    EXPECT_GT(get("sentinel").bytes_fast_mb, get("ial").bytes_fast_mb);
    EXPECT_LT(get("sentinel").bytes_slow_mb, get("ial").bytes_slow_mb);
}

TEST(PaperClaims, ProfilingOverheadBounds)
{
    // Sec. VII-B: profiling extends one step by up to ~5x; memory
    // overhead stays within a few percent.
    df::Graph g = models::makeModel("resnet32", 16);
    auto cfg = core::RuntimeConfig::optane(1ull << 30);
    mem::HeterogeneousMemory hm(cfg.fast, cfg.slow, cfg.migration);
    prof::Profiler profiler(cfg.profiler);
    auto r = profiler.profile(g, hm, cfg.exec);
    EXPECT_GT(r.profilingSlowdown(), 2.0);
    EXPECT_LT(r.profilingSlowdown(), 8.0);
    EXPECT_LT(r.memoryOverhead(), 0.05);
}

TEST(PaperClaims, SensitivityImprovesWithFastMemory)
{
    // Fig. 10: more fast memory never hurts; at 60% the gap to
    // fast-only essentially vanishes.
    harness::ExperimentConfig cfg;
    cfg.model = "resnet32";
    cfg.batch = 16;
    cfg.fast_fraction = 0.2;
    double t20 = harness::runExperiment(cfg, "sentinel").step_time_ms;
    cfg.fast_fraction = 0.6;
    double t60 = harness::runExperiment(cfg, "sentinel").step_time_ms;
    double fast = harness::runExperiment(cfg, "fast-only").step_time_ms;
    EXPECT_LE(t60, t20 * 1.01);
    EXPECT_LT(t60, fast * 1.10);
}

TEST(PaperClaims, GpuSentinelBeatsUm)
{
    // Fig. 12: Sentinel-GPU achieves 1.1x-7.8x over Unified Memory.
    harness::ExperimentConfig cfg;
    cfg.model = "resnet20";
    cfg.batch = 32;
    cfg.platform = harness::Platform::Gpu;
    cfg.fast_bytes = 24ull << 20;
    auto um = harness::runExperiment(cfg, "um");
    auto sgpu = harness::runExperiment(cfg, "sentinel");
    EXPECT_TRUE(sgpu.feasible);
    EXPECT_GT(um.step_time_ms, sgpu.step_time_ms * 1.1);
}

TEST(PaperClaims, GpuMaxBatchOrdering)
{
    // Table V's shape: Sentinel-GPU >= vDNN and > plain TensorFlow.
    std::uint64_t mem_bytes = 32ull << 20;
    int tf = harness::maxBatchSearch("resnet20", "tf", mem_bytes, 256);
    int vdnn =
        harness::maxBatchSearch("resnet20", "vdnn", mem_bytes, 256);
    int sentinel =
        harness::maxBatchSearch("resnet20", "sentinel", mem_bytes, 256);
    EXPECT_GT(sentinel, tf);
    EXPECT_GE(sentinel, vdnn);
}

} // namespace
} // namespace sentinel
