/**
 * @file
 * N-tier hierarchy property suite (`ctest -L ntier`).
 *
 *  - the full CPU policy matrix holds every oracle invariant on
 *    three-tier chains, over all eight committed fuzz seeds and an
 *    LLM-scale transformer;
 *  - staged prefetches (the two-leg NVMe->DRAM->HBM path) appear in
 *    the decision audit log on three tiers and never on two;
 *  - a zero-capacity middle tier degrades to exact two-tier placement;
 *  - a single-tier chain runs every policy with zero migration;
 *  - a middle tier smaller than one page is a rejected configuration;
 *  - chaos capacity shrink aimed at the middle tier (`tier=1`)
 *    perturbs the run without breaking any policy.
 */

#include <array>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/oracle.hh"
#include "mem/hm.hh"
#include "models/synthetic.hh"
#include "telemetry/audit.hh"

namespace sentinel::harness {
namespace {

ExperimentConfig
threeTierConfig(const std::string &model, int batch)
{
    ExperimentConfig cfg;
    cfg.model = model;
    cfg.batch = batch;
    cfg.steps = 6;
    cfg.warmup = 3;
    cfg.fast_fraction = 0.2;
    cfg.tiers = 3;
    return cfg;
}

// --- S1: oracle matrix over three-tier chains --------------------------

class ThreeTierOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ThreeTierOracle, FullPolicyMatrixHoldsEveryInvariant)
{
    ExperimentConfig cfg = threeTierConfig(
        "synthetic:" + std::to_string(GetParam()), 4);
    OracleOptions opts;
    opts.jobs = 2;
    opts.run_gpu = false;
    opts.check_determinism = false;
    OracleReport rep = runOracle(cfg, opts);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(
    CommittedSeeds, ThreeTierOracle,
    ::testing::ValuesIn(std::begin(models::kCommittedFuzzSeeds),
                        std::end(models::kCommittedFuzzSeeds)),
    [](const ::testing::TestParamInfo<std::uint64_t> &info) {
        return "seed_" + std::to_string(info.param);
    });

TEST(ThreeTierLlm, FullPolicyMatrixHoldsEveryInvariant)
{
    // The acceptance workload: an LLM-scale transformer on a
    // three-tier chain through the whole policy matrix.
    ExperimentConfig cfg = threeTierConfig("llm:tiny:l=2,seq=64", 2);
    OracleOptions opts;
    opts.jobs = 2;
    opts.run_gpu = false;
    opts.check_determinism = false;
    OracleReport rep = runOracle(cfg, opts);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

// --- Staged prefetch visibility ----------------------------------------

std::size_t
countStageRecords(const telemetry::AuditLog &audit)
{
    std::size_t n = 0;
    for (const telemetry::AuditRecord &r : audit.records())
        if (r.reason == telemetry::AuditReason::kPrefetchStage)
            ++n;
    return n;
}

TEST(StagedPrefetch, AuditedOnThreeTiersOnly)
{
    ExperimentConfig cfg = threeTierConfig("llm:tiny:l=2,seq=64", 2);
    cfg.steps = 9;
    cfg.warmup = 6;

    telemetry::AuditLog three_audit;
    cfg.audit = &three_audit;
    Metrics three = runExperiment(cfg, "sentinel");
    ASSERT_TRUE(three.supported);
    EXPECT_GT(countStageRecords(three_audit), 0u)
        << "no staged (two-leg) prefetches were audited on a "
           "three-tier chain";

    // The identical two-tier run must not stage anything: there is no
    // middle tier to stage through, and the legacy configuration is
    // bit-identical to pre-N-tier behaviour.
    telemetry::AuditLog two_audit;
    cfg.tiers = 2;
    cfg.audit = &two_audit;
    Metrics two = runExperiment(cfg, "sentinel");
    ASSERT_TRUE(two.supported);
    EXPECT_EQ(countStageRecords(two_audit), 0u);
}

// --- S2: degradation properties ----------------------------------------

TEST(NtierDegradation, ZeroCapacityMidTierPlacesLikeTwoTier)
{
    // Constructed directly through the chain constructor: the harness
    // (rightly) rejects a sub-page middle tier, but the memory system
    // itself must degrade gracefully when one tier cannot hold a page.
    mem::TierParams fast{ "dram", 4 * mem::kPageSize, 10e9, 10e9, 100,
                          100 };
    mem::TierParams mid{ "mid", 0, 5e9, 5e9, 200, 200 };
    mem::TierParams slow{ "pmm", 64 * mem::kPageSize, 2e9, 1e9, 300,
                          300 };
    mem::MigrationParams link{ 1e9, 1e9, 0 };

    mem::HeterogeneousMemory three({ fast, mid, slow }, { link, link });
    mem::HeterogeneousMemory two(fast, slow, link);

    // Same placement request on both: prefer fast, spill when full.
    three.mapRange(0, 8, mem::Tier::Fast);
    two.mapRange(0, 8, mem::Tier::Fast);
    for (mem::PageId p = 0; p < 8; ++p) {
        bool three_fast = three.residentTier(p, 0) == mem::Tier::Fast;
        bool two_fast = two.residentTier(p, 0) == mem::Tier::Fast;
        EXPECT_EQ(three_fast, two_fast) << "page " << p;
        if (!three_fast) {
            EXPECT_EQ(three.residentTier(p, 0), three.slowestTier());
        }
    }
    EXPECT_EQ(three.tier(mem::makeTier(1)).used(), 0u);

    // Migration into the empty middle tier schedules nothing...
    std::array<mem::PageId, 2> pages{ 6, 7 };
    EXPECT_EQ(three.migratePages(pages, mem::makeTier(1), 0), 0u);
    // ...while promotion straight to fast still works on both systems.
    three.unmapPage(0, 0);
    two.unmapPage(0, 0);
    EXPECT_GT(three.migratePage(6, mem::Tier::Fast, 0), 0);
    EXPECT_GT(two.migratePage(6, mem::Tier::Fast, 0), 0);
}

TEST(NtierDegradation, SingleTierChainRunsEveryPolicyWithoutMigration)
{
    ExperimentConfig cfg;
    cfg.model = "synthetic:11";
    cfg.batch = 4;
    cfg.steps = 5;
    cfg.warmup = 2;
    cfg.tiers = 1;
    cfg.fast_fraction = 1.25; // the only tier must hold everything
    for (const std::string &policy : cpuPolicies()) {
        Metrics m = runExperiment(cfg, policy);
        if (!m.supported)
            continue;
        EXPECT_TRUE(m.feasible) << policy;
        EXPECT_EQ(m.migrated_mb(), 0.0) << policy;
        EXPECT_EQ(m.bytes_slow_mb, 0.0) << policy;
        EXPECT_GT(m.step_time_ms, 0.0) << policy;
    }
}

TEST(NtierDegradation, SubPageMidTierIsRejected)
{
    ExperimentConfig cfg = threeTierConfig("synthetic:11", 4);
    cfg.mid_bytes = 100; // < one page, explicit
    EXPECT_THROW(runExperiment(cfg, "sentinel"), ConfigError);

    cfg.mid_bytes = 0;
    cfg.mid_fraction = 1e-12; // < one page, derived
    EXPECT_THROW(runExperiment(cfg, "sentinel"), ConfigError);
}

TEST(NtierDegradation, ChainLengthOutOfRangeIsRejected)
{
    ExperimentConfig cfg = threeTierConfig("synthetic:11", 4);
    cfg.tiers = 0;
    EXPECT_THROW(runExperiment(cfg, "sentinel"), ConfigError);
    cfg.tiers = static_cast<int>(mem::kMaxTiers) + 1;
    EXPECT_THROW(runExperiment(cfg, "sentinel"), ConfigError);
}

// --- S4: chaos shrink against the middle tier --------------------------

TEST(NtierChaos, MidTierShrinkRunsEveryPolicy)
{
    ExperimentConfig cfg = threeTierConfig("synthetic:11", 4);
    cfg.steps = 8;
    cfg.warmup = 6;
    cfg.chaos = "shrink:step=2,factor=0.25,tier=1";
    for (const std::string &policy : cpuPolicies()) {
        Metrics m = runExperiment(cfg, policy);
        EXPECT_TRUE(m.supported) << policy;
        if (m.feasible) {
            EXPECT_GT(m.step_time_ms, 0.0) << policy;
        }
    }
}

TEST(NtierChaos, MidTierCapacityScaleCapsFutureArrivals)
{
    // The mechanism the shrink fault drives: a scaled-down middle tier
    // caps new arrivals at the shrunken capacity (the guard blocks
    // reservations; it never evicts residents).
    mem::TierParams fast{ "hbm", 2 * mem::kPageSize, 10e9, 10e9, 100,
                          100 };
    mem::TierParams mid{ "dram", 8 * mem::kPageSize, 5e9, 5e9, 200,
                         200 };
    mem::TierParams slow{ "nvme", 64 * mem::kPageSize, 2e9, 1e9, 300,
                          300 };
    mem::MigrationParams link{ 1e9, 1e9, 0 };
    mem::HeterogeneousMemory hm({ fast, mid, slow }, { link, link });
    hm.mapRange(0, 32, hm.slowestTier());

    hm.setTierCapacityScale(1, 0.5); // mid: 8 pages -> 4 pages
    std::array<mem::PageId, 8> first{ 0, 1, 2, 3, 4, 5, 6, 7 };
    std::size_t moved = hm.migratePages(first, mem::makeTier(1), 0);
    EXPECT_GT(moved, 0u);
    EXPECT_LE(moved, 4u);
    EXPECT_LE(hm.tier(mem::makeTier(1)).used(), 4 * mem::kPageSize);

    // Lifting the fault restores headroom for new arrivals.
    hm.setTierCapacityScale(1, 1.0);
    std::array<mem::PageId, 4> second{ 8, 9, 10, 11 };
    std::size_t more =
        hm.migratePages(second, mem::makeTier(1), 10 * kMsec);
    EXPECT_GT(more, 0u);
}

} // namespace
} // namespace sentinel::harness
