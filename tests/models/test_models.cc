#include <gtest/gtest.h>

#include "models/registry.hh"

namespace sentinel::models {
namespace {

class ModelZooTest : public ::testing::TestWithParam<ModelSpec>
{
};

TEST_P(ModelZooTest, BuildsAndFinalizes)
{
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    EXPECT_TRUE(g.finalized());
    EXPECT_GT(g.numLayers(), 2);
    EXPECT_GT(g.numOps(), 10u);
    EXPECT_GT(g.numTensors(), 50u);
    EXPECT_EQ(g.batchSize(), spec.small_batch);
}

TEST_P(ModelZooTest, CharacterizationObservation1)
{
    // Observation 1: a large number of small, short-lived tensors.
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    std::size_t n_short = 0;
    std::size_t n_small_short = 0;
    for (const auto &t : g.tensors()) {
        if (t.shortLived()) {
            ++n_short;
            if (t.small())
                ++n_small_short;
        }
    }
    double short_frac =
        static_cast<double>(n_short) / static_cast<double>(g.numTensors());
    double small_frac =
        static_cast<double>(n_small_short) / static_cast<double>(n_short);
    EXPECT_GT(short_frac, 0.75) << spec.name;
    EXPECT_GT(small_frac, 0.85) << spec.name;
}

TEST_P(ModelZooTest, ShortLivedPeakIsSmallFractionOfPeak)
{
    // The reserved-space assumption (Sec. IV-C): peak short-lived
    // consumption is a modest slice of peak memory.
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    EXPECT_GT(g.peakShortLivedBytes(), 0u);
    EXPECT_LT(g.peakShortLivedBytes(), g.peakMemoryBytes() / 2)
        << spec.name;
}

TEST_P(ModelZooTest, PeakMemoryGrowsWithBatch)
{
    const ModelSpec &spec = GetParam();
    df::Graph small = makeModel(spec.name, spec.small_batch);
    df::Graph large = makeModel(spec.name, spec.large_batch);
    EXPECT_GT(large.peakMemoryBytes(), small.peakMemoryBytes())
        << spec.name;
    // Same topology regardless of batch size.
    EXPECT_EQ(large.numLayers(), small.numLayers());
    EXPECT_EQ(large.numOps(), small.numOps());
}

TEST_P(ModelZooTest, ConvPresenceMatchesSpec)
{
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    bool has_conv = false;
    for (const auto &op : g.ops())
        has_conv = has_conv || op.type == df::OpType::Conv2d;
    EXPECT_EQ(has_conv, spec.has_convs) << spec.name;
}

TEST_P(ModelZooTest, DeterministicConstruction)
{
    const ModelSpec &spec = GetParam();
    df::Graph a = makeModel(spec.name, spec.small_batch);
    df::Graph b = makeModel(spec.name, spec.small_batch);
    ASSERT_EQ(a.numTensors(), b.numTensors());
    ASSERT_EQ(a.numOps(), b.numOps());
    for (df::TensorId id = 0; id < a.numTensors(); ++id) {
        EXPECT_EQ(a.tensor(id).bytes, b.tensor(id).bytes);
        EXPECT_EQ(a.tensor(id).name, b.tensor(id).name);
    }
    EXPECT_EQ(a.peakMemoryBytes(), b.peakMemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelZooTest, ::testing::ValuesIn(modelZoo()),
    [](const ::testing::TestParamInfo<ModelSpec> &info) {
        return info.param.name;
    });

TEST(ModelRegistry, UnknownModelIsFatal)
{
    EXPECT_THROW(makeModel("alexnet", 32), std::runtime_error);
    EXPECT_THROW(modelSpec("alexnet"), std::runtime_error);
}

TEST(ModelRegistry, ResNetVariantsForScalingStudy)
{
    std::uint64_t prev = 0;
    for (const char *name :
         { "resnet20", "resnet32", "resnet44", "resnet56", "resnet110" }) {
        df::Graph g = makeModel(name, 32);
        EXPECT_GT(g.peakMemoryBytes(), prev) << name;
        prev = g.peakMemoryBytes();
    }
}

TEST(ModelRegistry, BottleneckResNetsAreDeeper)
{
    df::Graph r152 = makeModel("resnet152", 4);
    df::Graph r200 = makeModel("resnet200", 4);
    EXPECT_GT(r200.numLayers(), r152.numLayers());
    EXPECT_GT(r200.peakMemoryBytes(), r152.peakMemoryBytes());
}

TEST(ModelRegistry, HotScalarsExistInEveryModel)
{
    // The runtime bookkeeping scalars anchoring Observation 2's hot
    // set must be present and referenced by many ops.
    df::Graph g = makeModel("resnet32", 8);
    int found = 0;
    for (const auto &t : g.tensors()) {
        if (t.name.rfind("rt/", 0) == 0) {
            ++found;
            EXPECT_TRUE(t.preallocated);
            EXPECT_TRUE(t.small());
        }
    }
    EXPECT_EQ(found, 4);
}

} // namespace
} // namespace sentinel::models
