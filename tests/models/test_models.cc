#include <algorithm>

#include <gtest/gtest.h>

#include "models/registry.hh"
#include "models/synthetic.hh"

namespace sentinel::models {
namespace {

class ModelZooTest : public ::testing::TestWithParam<ModelSpec>
{
};

TEST_P(ModelZooTest, BuildsAndFinalizes)
{
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    EXPECT_TRUE(g.finalized());
    EXPECT_GT(g.numLayers(), 2);
    EXPECT_GT(g.numOps(), 10u);
    EXPECT_GT(g.numTensors(), 50u);
    EXPECT_EQ(g.batchSize(), spec.small_batch);
}

TEST_P(ModelZooTest, CharacterizationObservation1)
{
    // Observation 1: a large number of small, short-lived tensors.
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    std::size_t n_short = 0;
    std::size_t n_small_short = 0;
    for (const auto &t : g.tensors()) {
        if (t.shortLived()) {
            ++n_short;
            if (t.small())
                ++n_small_short;
        }
    }
    double short_frac =
        static_cast<double>(n_short) / static_cast<double>(g.numTensors());
    double small_frac =
        static_cast<double>(n_small_short) / static_cast<double>(n_short);
    EXPECT_GT(short_frac, 0.75) << spec.name;
    EXPECT_GT(small_frac, 0.85) << spec.name;
}

TEST_P(ModelZooTest, ShortLivedPeakIsSmallFractionOfPeak)
{
    // The reserved-space assumption (Sec. IV-C): peak short-lived
    // consumption is a modest slice of peak memory.
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    EXPECT_GT(g.peakShortLivedBytes(), 0u);
    EXPECT_LT(g.peakShortLivedBytes(), g.peakMemoryBytes() / 2)
        << spec.name;
}

TEST_P(ModelZooTest, PeakMemoryGrowsWithBatch)
{
    const ModelSpec &spec = GetParam();
    df::Graph small = makeModel(spec.name, spec.small_batch);
    df::Graph large = makeModel(spec.name, spec.large_batch);
    EXPECT_GT(large.peakMemoryBytes(), small.peakMemoryBytes())
        << spec.name;
    // Same topology regardless of batch size.
    EXPECT_EQ(large.numLayers(), small.numLayers());
    EXPECT_EQ(large.numOps(), small.numOps());
}

TEST_P(ModelZooTest, ConvPresenceMatchesSpec)
{
    const ModelSpec &spec = GetParam();
    df::Graph g = makeModel(spec.name, spec.small_batch);
    bool has_conv = false;
    for (const auto &op : g.ops())
        has_conv = has_conv || op.type == df::OpType::Conv2d;
    EXPECT_EQ(has_conv, spec.has_convs) << spec.name;
}

TEST_P(ModelZooTest, DeterministicConstruction)
{
    const ModelSpec &spec = GetParam();
    df::Graph a = makeModel(spec.name, spec.small_batch);
    df::Graph b = makeModel(spec.name, spec.small_batch);
    ASSERT_EQ(a.numTensors(), b.numTensors());
    ASSERT_EQ(a.numOps(), b.numOps());
    for (df::TensorId id = 0; id < a.numTensors(); ++id) {
        EXPECT_EQ(a.tensor(id).bytes, b.tensor(id).bytes);
        EXPECT_EQ(a.tensor(id).name, b.tensor(id).name);
    }
    EXPECT_EQ(a.peakMemoryBytes(), b.peakMemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelZooTest, ::testing::ValuesIn(modelZoo()),
    [](const ::testing::TestParamInfo<ModelSpec> &info) {
        return info.param.name;
    });

TEST(ModelRegistry, UnknownModelIsFatal)
{
    EXPECT_THROW(makeModel("alexnet", 32), std::runtime_error);
    EXPECT_THROW(modelSpec("alexnet"), std::runtime_error);
}

TEST(ModelRegistry, ResNetVariantsForScalingStudy)
{
    std::uint64_t prev = 0;
    for (const char *name :
         { "resnet20", "resnet32", "resnet44", "resnet56", "resnet110" }) {
        df::Graph g = makeModel(name, 32);
        EXPECT_GT(g.peakMemoryBytes(), prev) << name;
        prev = g.peakMemoryBytes();
    }
}

TEST(ModelRegistry, BottleneckResNetsAreDeeper)
{
    df::Graph r152 = makeModel("resnet152", 4);
    df::Graph r200 = makeModel("resnet200", 4);
    EXPECT_GT(r200.numLayers(), r152.numLayers());
    EXPECT_GT(r200.peakMemoryBytes(), r152.peakMemoryBytes());
}

TEST(SyntheticRegistry, DispatchesByName)
{
    df::Graph g = makeModel("synthetic:42", 4);
    EXPECT_TRUE(g.finalized());
    EXPECT_GT(g.numLayers(), 2);
    EXPECT_GT(g.numOps(), 4u);
    EXPECT_EQ(g.batchSize(), 4);

    // Same name, same graph — the name is the full recipe.
    df::Graph h = makeModel("synthetic:42", 4);
    ASSERT_EQ(g.numTensors(), h.numTensors());
    ASSERT_EQ(g.numOps(), h.numOps());
    EXPECT_EQ(g.peakMemoryBytes(), h.peakMemoryBytes());
}

TEST(SyntheticRegistry, OverridesChangeTheGraph)
{
    df::Graph shallow = makeModel("synthetic:42:cu=1,mu=1", 4);
    df::Graph deeper = makeModel("synthetic:42:cu=8,mu=4", 4);
    EXPECT_GT(deeper.numLayers(), shallow.numLayers());
    df::Graph temps = makeModel("synthetic:42:cu=1,mu=1,tmp=8", 4);
    df::Graph no_temps = makeModel("synthetic:42:cu=1,mu=1,tmp=0", 4);
    EXPECT_LT(no_temps.numTensors(), temps.numTensors());
}

TEST(SyntheticRegistry, FindModelSpecMintsStableSpecs)
{
    const ModelSpec *a = findModelSpec("synthetic:42");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->name, "synthetic:42");
    EXPECT_GT(a->small_batch, 0);
    // Repeated lookups return the same cached node.
    EXPECT_EQ(a, findModelSpec("synthetic:42"));
    // modelSpec (the fatal wrapper) resolves through the same path.
    EXPECT_EQ(&modelSpec("synthetic:42"), a);
}

TEST(SyntheticRegistry, SpecReportsConvPresence)
{
    SyntheticParams with = SyntheticParams::fromSeed(1);
    with.conv_units = 2;
    SyntheticParams without = with;
    without.conv_units = 0;
    without.mlp_units = std::max(1, without.mlp_units);
    const ModelSpec *c = findModelSpec(with.toName());
    const ModelSpec *m = findModelSpec(without.toName());
    ASSERT_NE(c, nullptr);
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(c->has_convs);
    EXPECT_FALSE(m->has_convs);
}

TEST(SyntheticRegistry, NameRoundTripsThroughToName)
{
    for (std::uint64_t seed : kCommittedFuzzSeeds) {
        SyntheticParams p = SyntheticParams::fromSeed(seed);
        // Defaults serialize to the bare form…
        EXPECT_EQ(p.toName(), "synthetic:" + std::to_string(seed));
        // …and overrides survive a parse round trip.
        p.conv_units = 1;
        p.mlp_units = std::max(1, p.mlp_units);
        p.temps_per_op = 0;
        p.branch_prob = 0.0;
        std::optional<SyntheticParams> back =
            tryParseSyntheticName(p.toName());
        ASSERT_TRUE(back.has_value()) << p.toName();
        EXPECT_EQ(back->conv_units, 1);
        EXPECT_EQ(back->temps_per_op, 0);
        EXPECT_EQ(back->branch_prob, 0.0);
        EXPECT_EQ(back->toName(), p.toName());
    }
}

TEST(SyntheticRegistry, MalformedNamesAreRejected)
{
    const char *bad[] = {
        "synthetic:",                 // empty seed
        "synthetic:abc",              // non-numeric seed
        "synthetic:12x",              // trailing junk in seed
        "synthetic:99999999999999999999999", // > 2^64-1
        "synthetic:1:",               // empty override clause
        "synthetic:1:cu",             // no '='
        "synthetic:1:=4",             // empty key
        "synthetic:1:zz=4",           // unknown key
        "synthetic:1:cu=-1",          // negative value
        "synthetic:1:cu=999",         // above bound
        "synthetic:1:bp=1.5",         // probability out of range
        "synthetic:1:cu=0,mu=0",      // no units at all
        // Regression: strtod/strtoull accepted all of these, and NaN
        // even slipped through the [0,1] range check (both comparisons
        // are false for NaN).  The grammar is now explicit: optional-
        // fraction decimal with optional exponent, no signs, no
        // whitespace, no hex, no named specials, locale-independent.
        "synthetic:1:bp=nan",         // NaN passes v<0||v>1
        "synthetic:1:bp=NAN",         // case variant
        "synthetic:1:bp=inf",         // infinity literal
        "synthetic:1:bp=+0.5",        // explicit sign
        "synthetic:1:bp=-0.0",        // negative zero
        "synthetic:1:bp= 0.5",        // leading whitespace
        "synthetic:1:bp=0x1p-4",      // hex float
        "synthetic:1:bp=0.5f",        // trailing suffix
        "synthetic:1:bp=.",           // no digits at all
        "synthetic:1:bp=1e",          // empty exponent
        "synthetic:1:bp=1e400",       // exponent overflow
        "synthetic:1:bp=0,5",         // locale decimal comma
        "synthetic:1:cu=+4",          // signed integer
        "synthetic:1:cu= 4",          // whitespace integer
        "synthetic:1:cu=0x4",         // hex integer
        "synthetic:1:cu=99999999999999999999", // uint64 overflow
        "synthetic: 1",               // whitespace seed
        "synthetic:+1",               // signed seed
        "synthetic:0x1",              // hex seed
    };
    for (const char *name : bad) {
        EXPECT_FALSE(tryParseSyntheticName(name).has_value()) << name;
        EXPECT_EQ(findModelSpec(name), nullptr) << name;
        EXPECT_THROW(makeModel(name, 4), std::runtime_error) << name;
        EXPECT_THROW(modelSpec(name), std::runtime_error) << name;
    }
    // Non-synthetic names never reach the synthetic parser.
    EXPECT_FALSE(tryParseSyntheticName("resnet20").has_value());
}

TEST(SyntheticRegistry, MatchesPaperCharacterization)
{
    // The generator feeds the same invariant checks as the zoo, so its
    // graphs must honor Observation 1 (many small short-lived tensors)
    // whenever temporaries are enabled.
    df::Graph g = makeModel("synthetic:11", 4);
    std::size_t n_short = 0;
    for (const auto &t : g.tensors())
        if (t.shortLived())
            ++n_short;
    EXPECT_GT(static_cast<double>(n_short) /
                  static_cast<double>(g.numTensors()),
              0.5);
}

TEST(ModelRegistry, HotScalarsExistInEveryModel)
{
    // The runtime bookkeeping scalars anchoring Observation 2's hot
    // set must be present and referenced by many ops.
    df::Graph g = makeModel("resnet32", 8);
    int found = 0;
    for (const auto &t : g.tensors()) {
        if (t.name.rfind("rt/", 0) == 0) {
            ++found;
            EXPECT_TRUE(t.preallocated);
            EXPECT_TRUE(t.small());
        }
    }
    EXPECT_EQ(found, 4);
}

} // namespace
} // namespace sentinel::models
