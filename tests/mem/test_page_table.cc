#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace sentinel::mem {
namespace {

TEST(PageTable, MapUnmap)
{
    PageTable pt;
    EXPECT_FALSE(pt.isMapped(7));
    pt.map(7, Tier::Slow);
    EXPECT_TRUE(pt.isMapped(7));
    EXPECT_EQ(pt.entry(7).tier, Tier::Slow);
    EXPECT_EQ(pt.numMapped(), 1u);
    pt.unmap(7);
    EXPECT_FALSE(pt.isMapped(7));
}

TEST(PageTable, DoubleMapPanics)
{
    PageTable pt;
    pt.map(1, Tier::Fast);
    EXPECT_THROW(pt.map(1, Tier::Fast), std::logic_error);
}

TEST(PageTable, UnmapUnknownPanics)
{
    PageTable pt;
    EXPECT_THROW(pt.unmap(9), std::logic_error);
    EXPECT_THROW(pt.entry(9), std::logic_error);
}

TEST(PageTable, MigrationLifecycle)
{
    PageTable pt;
    pt.map(3, Tier::Slow);
    std::uint64_t seq = pt.beginMigration(3, Tier::Fast, 1000);
    EXPECT_TRUE(pt.entry(3).in_flight);
    EXPECT_EQ(pt.entry(3).tier, Tier::Slow);
    EXPECT_EQ(pt.entry(3).arrival, 1000);

    EXPECT_TRUE(pt.commitMigration(3, seq));
    EXPECT_FALSE(pt.entry(3).in_flight);
    EXPECT_EQ(pt.entry(3).tier, Tier::Fast);
}

TEST(PageTable, StaleCommitIsIgnored)
{
    PageTable pt;
    pt.map(3, Tier::Slow);
    std::uint64_t seq1 = pt.beginMigration(3, Tier::Fast, 10);
    pt.cancelMigration(3);
    // The cancelled migration's commit must not flip the tier.
    EXPECT_FALSE(pt.commitMigration(3, seq1));
    EXPECT_EQ(pt.entry(3).tier, Tier::Slow);

    // A new migration gets a new seq; old seq still rejected.
    std::uint64_t seq2 = pt.beginMigration(3, Tier::Fast, 20);
    EXPECT_NE(seq1, seq2);
    EXPECT_FALSE(pt.commitMigration(3, seq1));
    EXPECT_TRUE(pt.commitMigration(3, seq2));
}

TEST(PageTable, CommitAfterUnmapIsIgnored)
{
    PageTable pt;
    pt.map(5, Tier::Fast);
    std::uint64_t seq = pt.beginMigration(5, Tier::Slow, 10);
    pt.unmap(5);
    EXPECT_FALSE(pt.commitMigration(5, seq));
}

TEST(PageTable, DoubleMigrationPanics)
{
    PageTable pt;
    pt.map(1, Tier::Slow);
    pt.beginMigration(1, Tier::Fast, 5);
    EXPECT_THROW(pt.beginMigration(1, Tier::Fast, 6), std::logic_error);
}

TEST(PageTable, SameTierMigrationPanics)
{
    PageTable pt;
    pt.map(1, Tier::Slow);
    EXPECT_THROW(pt.beginMigration(1, Tier::Slow, 5), std::logic_error);
}

} // namespace
} // namespace sentinel::mem
