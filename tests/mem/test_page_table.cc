#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace sentinel::mem {
namespace {

/**
 * Every behavioral test runs against both backends: the dense
 * direct-indexed table (hot path) and the hash map (debug fallback)
 * must be observably identical.
 */
class PageTableTest : public ::testing::TestWithParam<PageTable::Backend>
{
  protected:
    PageTable makeTable() const { return PageTable(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, PageTableTest,
    ::testing::Values(PageTable::Backend::Dense, PageTable::Backend::Hash),
    [](const ::testing::TestParamInfo<PageTable::Backend> &info) {
        return info.param == PageTable::Backend::Dense ? "Dense" : "Hash";
    });

TEST_P(PageTableTest, MapUnmap)
{
    PageTable pt = makeTable();
    EXPECT_FALSE(pt.isMapped(7));
    pt.map(7, Tier::Slow);
    EXPECT_TRUE(pt.isMapped(7));
    EXPECT_EQ(pt.entry(7).tier, Tier::Slow);
    EXPECT_EQ(pt.numMapped(), 1u);
    pt.unmap(7);
    EXPECT_FALSE(pt.isMapped(7));
}

TEST_P(PageTableTest, DoubleMapPanics)
{
    PageTable pt = makeTable();
    pt.map(1, Tier::Fast);
    EXPECT_THROW(pt.map(1, Tier::Fast), std::logic_error);
}

TEST_P(PageTableTest, UnmapUnknownPanics)
{
    PageTable pt = makeTable();
    EXPECT_THROW(pt.unmap(9), std::logic_error);
    EXPECT_THROW(pt.entry(9), std::logic_error);
}

TEST_P(PageTableTest, MigrationLifecycle)
{
    PageTable pt = makeTable();
    pt.map(3, Tier::Slow);
    std::uint64_t seq = pt.beginMigration(3, Tier::Fast, 1000);
    EXPECT_TRUE(pt.entry(3).in_flight);
    EXPECT_EQ(pt.entry(3).tier, Tier::Slow);
    EXPECT_EQ(pt.entry(3).arrival, 1000);

    EXPECT_TRUE(pt.commitMigration(3, seq));
    EXPECT_FALSE(pt.entry(3).in_flight);
    EXPECT_EQ(pt.entry(3).tier, Tier::Fast);
}

TEST_P(PageTableTest, StaleCommitIsIgnored)
{
    PageTable pt = makeTable();
    pt.map(3, Tier::Slow);
    std::uint64_t seq1 = pt.beginMigration(3, Tier::Fast, 10);
    pt.cancelMigration(3);
    // The cancelled migration's commit must not flip the tier.
    EXPECT_FALSE(pt.commitMigration(3, seq1));
    EXPECT_EQ(pt.entry(3).tier, Tier::Slow);

    // A new migration gets a new seq; old seq still rejected.
    std::uint64_t seq2 = pt.beginMigration(3, Tier::Fast, 20);
    EXPECT_NE(seq1, seq2);
    EXPECT_FALSE(pt.commitMigration(3, seq1));
    EXPECT_TRUE(pt.commitMigration(3, seq2));
}

TEST_P(PageTableTest, CommitAfterUnmapIsIgnored)
{
    PageTable pt = makeTable();
    pt.map(5, Tier::Fast);
    std::uint64_t seq = pt.beginMigration(5, Tier::Slow, 10);
    pt.unmap(5);
    EXPECT_FALSE(pt.commitMigration(5, seq));
}

TEST_P(PageTableTest, DoubleMigrationPanics)
{
    PageTable pt = makeTable();
    pt.map(1, Tier::Slow);
    pt.beginMigration(1, Tier::Fast, 5);
    EXPECT_THROW(pt.beginMigration(1, Tier::Fast, 6), std::logic_error);
}

TEST_P(PageTableTest, SameTierMigrationPanics)
{
    PageTable pt = makeTable();
    pt.map(1, Tier::Slow);
    EXPECT_THROW(pt.beginMigration(1, Tier::Slow, 5), std::logic_error);
}

TEST_P(PageTableTest, RangeMapUnmap)
{
    PageTable pt = makeTable();
    pt.mapRange(100, 50, Tier::Fast);
    EXPECT_EQ(pt.numMapped(), 50u);
    for (PageId p = 100; p < 150; ++p) {
        ASSERT_TRUE(pt.isMapped(p));
        EXPECT_EQ(pt.entry(p).tier, Tier::Fast);
    }
    EXPECT_FALSE(pt.isMapped(99));
    EXPECT_FALSE(pt.isMapped(150));
    pt.unmapRange(100, 50);
    EXPECT_EQ(pt.numMapped(), 0u);
    EXPECT_FALSE(pt.isMapped(125));
}

TEST_P(PageTableTest, RunStateFindsUniformPrefix)
{
    PageTable pt = makeTable();
    pt.mapRange(0, 10, Tier::Slow);
    pt.mapRange(10, 5, Tier::Fast);
    pt.mapRange(15, 5, Tier::Slow);

    PageRunState rs = pt.runState(0, 20);
    EXPECT_EQ(rs.tier, Tier::Slow);
    EXPECT_FALSE(rs.in_flight);
    EXPECT_EQ(rs.count, 10u);

    rs = pt.runState(10, 10);
    EXPECT_EQ(rs.tier, Tier::Fast);
    EXPECT_EQ(rs.count, 5u);

    // An in-flight page splits the run even within one tier.
    pt.beginMigration(17, Tier::Fast, 99);
    rs = pt.runState(15, 5);
    EXPECT_EQ(rs.tier, Tier::Slow);
    EXPECT_FALSE(rs.in_flight);
    EXPECT_EQ(rs.count, 2u);
    rs = pt.runState(17, 3);
    EXPECT_TRUE(rs.in_flight);
    EXPECT_EQ(rs.count, 1u);
}

TEST_P(PageTableTest, AnyInFlight)
{
    PageTable pt = makeTable();
    pt.mapRange(0, 8, Tier::Slow);
    EXPECT_FALSE(pt.anyInFlight(0, 8));
    pt.beginMigration(6, Tier::Fast, 10);
    EXPECT_TRUE(pt.anyInFlight(0, 8));
    EXPECT_FALSE(pt.anyInFlight(0, 6));
    EXPECT_TRUE(pt.anyInFlight(6, 1));
}

TEST_P(PageTableTest, SparseHighAddresses)
{
    // The co-allocation layout places regions at multiples of 2^44
    // bytes (2^32 pages); the table must handle those page numbers
    // without densifying the gaps.
    PageTable pt = makeTable();
    const PageId bases[] = { 0, 1ull << 32, 2ull << 32, 3ull << 32 };
    for (PageId base : bases)
        pt.mapRange(base, 16, Tier::Slow);
    EXPECT_EQ(pt.numMapped(), 64u);
    for (PageId base : bases) {
        EXPECT_TRUE(pt.isMapped(base + 15));
        EXPECT_FALSE(pt.isMapped(base + 16));
        PageRunState rs = pt.runState(base, 16);
        EXPECT_EQ(rs.count, 16u);
    }
    for (PageId base : bases)
        pt.unmapRange(base, 16);
    EXPECT_EQ(pt.numMapped(), 0u);
}

TEST_P(PageTableTest, RangeAcrossChunkBoundary)
{
    // The dense backend stores pages in 2^16-page chunks; a range
    // spanning the seam must behave exactly like an interior one.
    PageTable pt = makeTable();
    const PageId seam = 1ull << 16;
    pt.mapRange(seam - 8, 16, Tier::Fast);
    EXPECT_EQ(pt.numMapped(), 16u);
    PageRunState rs = pt.runState(seam - 8, 16);
    EXPECT_EQ(rs.count, 16u);
    EXPECT_EQ(rs.tier, Tier::Fast);
    pt.beginMigration(seam, Tier::Slow, 5);
    EXPECT_TRUE(pt.anyInFlight(seam - 8, 16));
    rs = pt.runState(seam - 8, 16);
    EXPECT_EQ(rs.count, 8u);
    pt.cancelMigration(seam);
    pt.unmapRange(seam - 8, 16);
    EXPECT_EQ(pt.numMapped(), 0u);
}

TEST_P(PageTableTest, ClearForgetsEverything)
{
    PageTable pt = makeTable();
    pt.mapRange(40, 10, Tier::Fast);
    pt.beginMigration(44, Tier::Slow, 7);
    pt.clear();
    EXPECT_EQ(pt.numMapped(), 0u);
    for (PageId p = 40; p < 50; ++p)
        EXPECT_FALSE(pt.isMapped(p));
    // The table is fully reusable after clear (epoch bump must not
    // leave stale entries visible).
    pt.map(44, Tier::Slow);
    EXPECT_EQ(pt.entry(44).tier, Tier::Slow);
    EXPECT_FALSE(pt.entry(44).in_flight);
    EXPECT_EQ(pt.numMapped(), 1u);
}

TEST_P(PageTableTest, RepeatedClearCycles)
{
    // Exercises epoch reuse in the dense backend: many clear cycles
    // over the same pages must never resurrect old entries.
    PageTable pt = makeTable();
    for (int cycle = 0; cycle < 100; ++cycle) {
        pt.mapRange(0, 4, Tier::Fast);
        pt.map(1ull << 20, Tier::Slow);
        EXPECT_EQ(pt.numMapped(), 5u);
        pt.clear();
        EXPECT_EQ(pt.numMapped(), 0u);
        EXPECT_FALSE(pt.isMapped(0));
        EXPECT_FALSE(pt.isMapped(1ull << 20));
    }
}

TEST(PageTable, DefaultBackendMatchesBuildOption)
{
#ifdef SENTINEL_DENSE_PT_OFF
    EXPECT_EQ(PageTable::defaultBackend(), PageTable::Backend::Hash);
#else
    EXPECT_EQ(PageTable::defaultBackend(), PageTable::Backend::Dense);
#endif
    PageTable pt;
    EXPECT_EQ(pt.backend(), PageTable::defaultBackend());
}

} // namespace
} // namespace sentinel::mem
