#include <gtest/gtest.h>

#include "mem/tier.hh"

namespace sentinel::mem {
namespace {

TierParams
smallTier()
{
    return TierParams{ "dram", 4 * kPageSize, 1e9, 1e9, 100, 100 };
}

TEST(MemoryTier, ReserveAndRelease)
{
    MemoryTier t(smallTier());
    EXPECT_EQ(t.capacity(), 4 * kPageSize);
    EXPECT_TRUE(t.tryReserve(2 * kPageSize));
    EXPECT_EQ(t.used(), 2 * kPageSize);
    EXPECT_EQ(t.free(), 2 * kPageSize);
    t.release(kPageSize);
    EXPECT_EQ(t.used(), kPageSize);
}

TEST(MemoryTier, RejectsOverCapacity)
{
    MemoryTier t(smallTier());
    EXPECT_TRUE(t.tryReserve(4 * kPageSize));
    EXPECT_FALSE(t.tryReserve(kPageSize));
    // Failed reservation leaves usage unchanged.
    EXPECT_EQ(t.used(), 4 * kPageSize);
}

TEST(MemoryTier, PeakTracksHighWater)
{
    MemoryTier t(smallTier());
    t.tryReserve(3 * kPageSize);
    t.release(2 * kPageSize);
    t.tryReserve(kPageSize);
    EXPECT_EQ(t.peakUsed(), 3 * kPageSize);
}

TEST(MemoryTier, UnalignedReservePanics)
{
    MemoryTier t(smallTier());
    EXPECT_THROW(t.tryReserve(100), std::logic_error);
    EXPECT_THROW(t.release(1), std::logic_error);
}

TEST(MemoryTier, OverReleasePanics)
{
    MemoryTier t(smallTier());
    t.tryReserve(kPageSize);
    EXPECT_THROW(t.release(2 * kPageSize), std::logic_error);
}

TEST(MemoryTier, ResetClears)
{
    MemoryTier t(smallTier());
    t.tryReserve(2 * kPageSize);
    t.reset();
    EXPECT_EQ(t.used(), 0u);
    EXPECT_EQ(t.peakUsed(), 0u);
}

} // namespace
} // namespace sentinel::mem
