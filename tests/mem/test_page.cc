#include <gtest/gtest.h>

#include "mem/page.hh"

namespace sentinel::mem {
namespace {

TEST(Page, Constants)
{
    EXPECT_EQ(kPageSize, 4096u);
}

TEST(Page, TierHelpers)
{
    EXPECT_STREQ(tierName(Tier::Fast), "fast");
    EXPECT_STREQ(tierName(Tier::Slow), "slow");
    EXPECT_EQ(otherTier(Tier::Fast), Tier::Slow);
    EXPECT_EQ(otherTier(Tier::Slow), Tier::Fast);
}

TEST(Page, SpanMath)
{
    // A tensor of exactly two pages starting mid-page touches three.
    EXPECT_EQ(pagesSpanned(2048, 2 * kPageSize), 3u);
    // Sub-page object within one page.
    EXPECT_EQ(pagesSpanned(100, 200), 1u);
    // Object ending exactly on a boundary.
    EXPECT_EQ(pagesSpanned(0, 2 * kPageSize), 2u);
    EXPECT_EQ(pageCeil(1), 1u);
    EXPECT_EQ(pageCeil(kPageSize), 1u);
    EXPECT_EQ(pageCeil(kPageSize + 1), 2u);
}

} // namespace
} // namespace sentinel::mem
