#include <gtest/gtest.h>

#include "mem/access_tracker.hh"

namespace sentinel::mem {
namespace {

TEST(AccessTracker, CountsOnlyTrackedPages)
{
    AccessTracker t(/*fault_cost=*/1000);
    t.track(1);

    EXPECT_EQ(t.onAccess(1, false), 1000);
    EXPECT_EQ(t.onAccess(2, false), 0); // untracked: no fault, no count
    EXPECT_EQ(t.counts(1).reads, 1u);
    EXPECT_EQ(t.counts(2).total(), 0u);
}

TEST(AccessTracker, ReadsAndWritesSeparate)
{
    AccessTracker t;
    t.track(7);
    t.onAccess(7, false, 3);
    t.onAccess(7, true, 2);
    EXPECT_EQ(t.counts(7).reads, 3u);
    EXPECT_EQ(t.counts(7).writes, 2u);
    EXPECT_EQ(t.counts(7).total(), 5u);
}

TEST(AccessTracker, FaultCostScalesWithCount)
{
    AccessTracker t(500);
    t.track(1);
    EXPECT_EQ(t.onAccess(1, false, 10), 5000);
    EXPECT_EQ(t.totalFaults(), 10u);
}

TEST(AccessTracker, UntrackStopsCountingButKeepsCounts)
{
    AccessTracker t;
    t.track(4);
    t.onAccess(4, false);
    t.untrack(4);
    EXPECT_EQ(t.onAccess(4, false), 0);
    EXPECT_EQ(t.counts(4).reads, 1u); // profile data preserved
}

TEST(AccessTracker, ZeroCountIsFree)
{
    AccessTracker t;
    t.track(1);
    EXPECT_EQ(t.onAccess(1, true, 0), 0);
    EXPECT_EQ(t.counts(1).total(), 0u);
}

TEST(AccessTracker, ResetClearsEverything)
{
    AccessTracker t;
    t.track(1);
    t.onAccess(1, false);
    t.reset();
    EXPECT_FALSE(t.isTracked(1));
    EXPECT_EQ(t.counts(1).total(), 0u);
    EXPECT_EQ(t.totalFaults(), 0u);
    EXPECT_TRUE(t.allCounts().empty());
}

} // namespace
} // namespace sentinel::mem
