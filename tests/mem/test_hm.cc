#include <array>

#include <gtest/gtest.h>

#include "mem/hm.hh"

namespace sentinel::mem {
namespace {

HeterogeneousMemory
makeHm(std::uint64_t fast_pages = 4, std::uint64_t slow_pages = 1024)
{
    TierParams fast{ "dram", fast_pages * kPageSize, 10e9, 10e9, 100, 100 };
    TierParams slow{ "pmm", slow_pages * kPageSize, 2e9, 1e9, 300, 300 };
    // 1 GB/s promote, 1 GB/s demote, no startup: one page = 4096 ns.
    MigrationParams mig{ 1e9, 1e9, 0 };
    return HeterogeneousMemory(fast, slow, mig);
}

TEST(Hm, MapPreferredTier)
{
    auto hm = makeHm();
    EXPECT_TRUE(hm.tryMapPage(1, Tier::Fast));
    EXPECT_EQ(hm.residentTier(1, 0), Tier::Fast);
    EXPECT_EQ(hm.tier(Tier::Fast).used(), kPageSize);
}

TEST(Hm, MapFallsBackWhenFull)
{
    auto hm = makeHm(1);
    EXPECT_EQ(hm.mapPage(0, Tier::Fast), Tier::Fast);
    EXPECT_EQ(hm.mapPage(1, Tier::Fast), Tier::Slow);
}

TEST(Hm, BothTiersFullIsFatal)
{
    auto hm = makeHm(1, 1);
    hm.mapPage(0, Tier::Fast);
    hm.mapPage(1, Tier::Fast);
    EXPECT_THROW(hm.mapPage(2, Tier::Fast), std::runtime_error);
}

TEST(Hm, MigrationTimingAndResidency)
{
    auto hm = makeHm();
    hm.tryMapPage(5, Tier::Slow);

    Tick arrival = hm.migratePage(5, Tier::Fast, 0);
    EXPECT_EQ(arrival, 4096); // 4 KiB at 1 GB/s

    // While in flight the page is served from its source.
    EXPECT_EQ(hm.residentTier(5, arrival - 1), Tier::Slow);
    EXPECT_TRUE(hm.inFlight(5, arrival - 1));
    EXPECT_EQ(hm.arrivalTime(5), arrival);

    // After arrival it lives in fast memory.
    EXPECT_EQ(hm.residentTier(5, arrival), Tier::Fast);
    EXPECT_FALSE(hm.inFlight(5, arrival));
}

TEST(Hm, MigrationReservesDestinationUpFront)
{
    auto hm = makeHm(1);
    hm.tryMapPage(0, Tier::Slow);
    hm.tryMapPage(1, Tier::Slow);

    EXPECT_GE(hm.migratePage(0, Tier::Fast, 0), 0);
    // Fast tier is fully reserved by the in-flight page.
    EXPECT_EQ(hm.migratePage(1, Tier::Fast, 0), -1);
}

TEST(Hm, SourceReleasedOnlyAtCompletion)
{
    auto hm = makeHm();
    hm.tryMapPage(9, Tier::Slow);
    std::uint64_t slow_before = hm.tier(Tier::Slow).used();

    Tick arrival = hm.migratePage(9, Tier::Fast, 0);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), slow_before);
    hm.commitUpTo(arrival);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), slow_before - kPageSize);
}

TEST(Hm, RedundantMigrationRejected)
{
    auto hm = makeHm();
    hm.tryMapPage(2, Tier::Fast);
    EXPECT_EQ(hm.migratePage(2, Tier::Fast, 0), -1);

    hm.tryMapPage(3, Tier::Slow);
    EXPECT_GE(hm.migratePage(3, Tier::Fast, 0), 0);
    // Already in flight.
    EXPECT_EQ(hm.migratePage(3, Tier::Fast, 0), -1);
}

TEST(Hm, UnmapInFlightReleasesBothReservations)
{
    auto hm = makeHm(2);
    hm.tryMapPage(1, Tier::Slow);
    hm.migratePage(1, Tier::Fast, 0);
    std::uint64_t fast_used = hm.tier(Tier::Fast).used();
    EXPECT_EQ(fast_used, kPageSize);

    hm.unmapPage(1, 0); // freed before arrival
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 0u);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), 0u);
    // The late commit must not corrupt capacity accounting.
    hm.commitUpTo(1'000'000);
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 0u);
}

TEST(Hm, BatchMigrationSerializesOnChannel)
{
    auto hm = makeHm(8);
    std::array<PageId, 3> pages{ 10, 11, 12 };
    for (PageId p : pages)
        hm.tryMapPage(p, Tier::Slow);

    EXPECT_EQ(hm.migratePages(pages, Tier::Fast, 0), 3u);
    // Three pages over one serialized 1 GB/s channel: the batch's last
    // page arrives after all three transferred back-to-back.
    EXPECT_EQ(hm.arrivalTime(12), 3 * 4096);
    EXPECT_EQ(hm.arrivalTime(10), 1 * 4096);
    EXPECT_EQ(hm.stats().promoted_pages, 3u);
    EXPECT_EQ(hm.stats().promoted_bytes, 3 * kPageSize);
}

TEST(Hm, BatchMigrationChargesOneStartup)
{
    TierParams fast{ "dram", 8 * kPageSize, 10e9, 10e9, 100, 100 };
    TierParams slow{ "pmm", 1024 * kPageSize, 2e9, 1e9, 300, 300 };
    MigrationParams mig{ 1e9, 1e9, 1000 }; // 1 us startup
    HeterogeneousMemory hm(fast, slow, mig);
    std::array<PageId, 4> pages{ 1, 2, 3, 4 };
    for (PageId p : pages)
        hm.tryMapPage(p, Tier::Slow);

    hm.migratePages(pages, Tier::Fast, 0);
    // One setup cost for the whole batch, then pages stream.
    EXPECT_EQ(hm.arrivalTime(4), 1000 + 4 * 4096);
}

TEST(Hm, BatchMigrationStopsWhenDestinationFull)
{
    auto hm = makeHm(2);
    std::array<PageId, 4> pages{ 1, 2, 3, 4 };
    for (PageId p : pages)
        hm.tryMapPage(p, Tier::Slow);

    EXPECT_EQ(hm.migratePages(pages, Tier::Fast, 0), 2u);
    EXPECT_EQ(hm.stats().promoted_pages, 2u);
}

TEST(Hm, BatchMigrationSkipsIneligiblePages)
{
    auto hm = makeHm(8);
    hm.tryMapPage(1, Tier::Fast); // already there
    hm.tryMapPage(2, Tier::Slow);
    hm.tryMapPage(3, Tier::Slow);
    hm.migratePage(3, Tier::Fast, 0); // already in flight
    std::array<PageId, 3> pages{ 1, 2, 3 };
    EXPECT_EQ(hm.migratePages(pages, Tier::Fast, 0), 1u);
}

TEST(Hm, PromoteAndDemoteUseSeparateChannels)
{
    auto hm = makeHm(8);
    hm.tryMapPage(1, Tier::Slow);
    hm.tryMapPage(2, Tier::Fast);

    Tick up = hm.migratePage(1, Tier::Fast, 0);
    Tick down = hm.migratePage(2, Tier::Slow, 0);
    // Channels run in parallel (the paper's two helper threads), so the
    // two single-page transfers finish at the same time.
    EXPECT_EQ(up, down);
    EXPECT_EQ(hm.stats().demoted_pages, 1u);
}

TEST(Hm, PeakUsageTracked)
{
    auto hm = makeHm(4);
    hm.tryMapPage(1, Tier::Fast);
    hm.tryMapPage(2, Tier::Fast);
    hm.unmapPage(1, 0);
    EXPECT_EQ(hm.tier(Tier::Fast).peakUsed(), 2 * kPageSize);
}

TEST(Hm, MapRangeMatchesPerPagePlacement)
{
    // Bulk mapping must place pages exactly like the per-page loop:
    // a preferred-tier prefix while capacity lasts, then fallback.
    auto hm = makeHm(3);
    auto ref = makeHm(3);
    hm.mapRange(10, 5, Tier::Fast);
    for (PageId p = 10; p < 15; ++p)
        ref.mapPage(p, Tier::Fast);
    for (PageId p = 10; p < 15; ++p)
        EXPECT_EQ(hm.residentTier(p, 0), ref.residentTier(p, 0));
    EXPECT_EQ(hm.tier(Tier::Fast).used(), ref.tier(Tier::Fast).used());
    EXPECT_EQ(hm.tier(Tier::Slow).used(), ref.tier(Tier::Slow).used());
}

TEST(Hm, MapRangeBothTiersFullIsFatal)
{
    auto hm = makeHm(1, 1);
    hm.mapRange(0, 2, Tier::Fast);
    EXPECT_THROW(hm.mapRange(2, 1, Tier::Fast), std::runtime_error);
}

TEST(Hm, UnmapRangeReleasesPerTier)
{
    auto hm = makeHm(2);
    hm.mapRange(0, 5, Tier::Fast); // 2 fast + 3 slow
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 2 * kPageSize);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), 3 * kPageSize);
    hm.unmapRange(0, 5, 0);
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 0u);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), 0u);
    EXPECT_FALSE(hm.isMapped(3));
}

TEST(Hm, UnmapRangeCancelsInFlight)
{
    auto hm = makeHm(4);
    hm.mapRange(0, 2, Tier::Slow);
    hm.migratePage(0, Tier::Fast, 0);
    hm.unmapRange(0, 2, 0); // before arrival
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 0u);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), 0u);
    hm.commitUpTo(1'000'000);
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 0u);
}

TEST(Hm, ResidentRangeSplitsOnTierAndFlight)
{
    auto hm = makeHm(8);
    hm.mapRange(0, 4, Tier::Slow);
    hm.mapRange(4, 4, Tier::Fast);

    PageRunState rs = hm.residentRange(0, 8, 0);
    EXPECT_EQ(rs.tier, Tier::Slow);
    EXPECT_EQ(rs.count, 4u);
    rs = hm.residentRange(4, 4, 0);
    EXPECT_EQ(rs.tier, Tier::Fast);
    EXPECT_EQ(rs.count, 4u);

    Tick arrival = hm.migratePage(2, Tier::Fast, 0);
    EXPECT_TRUE(hm.inFlightAny(0, 4, arrival - 1));
    EXPECT_FALSE(hm.inFlightAny(0, 2, arrival - 1));
    rs = hm.residentRange(0, 4, arrival - 1);
    EXPECT_EQ(rs.count, 2u);
    EXPECT_FALSE(rs.in_flight);

    // residentRange commits landed transfers, exactly like
    // residentTier does.
    rs = hm.residentRange(2, 2, arrival);
    EXPECT_EQ(rs.tier, Tier::Fast);
    EXPECT_FALSE(rs.in_flight);
    EXPECT_EQ(rs.count, 1u); // page 3 is still Slow
    EXPECT_FALSE(hm.inFlightAny(0, 4, arrival));
}

TEST(Hm, ResetRestoresPristineState)
{
    auto hm = makeHm();
    hm.tryMapPage(1, Tier::Fast);
    hm.tryMapPage(2, Tier::Slow);
    hm.migratePage(2, Tier::Fast, 0);
    hm.reset();
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 0u);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), 0u);
    EXPECT_FALSE(hm.isMapped(1));
    EXPECT_EQ(hm.stats().promoted_pages, 0u);
}

} // namespace
} // namespace sentinel::mem

namespace sentinel::mem {
namespace {

TEST(Hm, TeleportFlipsTierInstantlyWithoutTraffic)
{
    auto hm = makeHm(4);
    hm.tryMapPage(1, Tier::Fast);
    EXPECT_TRUE(hm.teleportPage(1, Tier::Slow, 0));
    EXPECT_EQ(hm.residentTier(1, 0), Tier::Slow);
    // No channel traffic, no migration stats: a discard, not a copy.
    EXPECT_EQ(hm.stats().demoted_bytes, 0u);
    EXPECT_EQ(hm.demoteChannel().bytesTransferred(), 0u);
    // Capacity moved with the page.
    EXPECT_EQ(hm.tier(Tier::Fast).used(), 0u);
    EXPECT_EQ(hm.tier(Tier::Slow).used(), kPageSize);
}

TEST(Hm, TeleportToSameTierIsNoop)
{
    auto hm = makeHm(4);
    hm.tryMapPage(1, Tier::Fast);
    EXPECT_TRUE(hm.teleportPage(1, Tier::Fast, 0));
    EXPECT_EQ(hm.tier(Tier::Fast).used(), kPageSize);
}

TEST(Hm, TeleportFailsWhenDestinationFull)
{
    auto hm = makeHm(1);
    hm.tryMapPage(1, Tier::Fast);
    hm.tryMapPage(2, Tier::Slow);
    EXPECT_FALSE(hm.teleportPage(2, Tier::Fast, 0));
    EXPECT_EQ(hm.residentTier(2, 0), Tier::Slow);
}

TEST(Hm, TeleportWaitsOutInFlightMigrations)
{
    auto hm = makeHm(4);
    hm.tryMapPage(1, Tier::Slow);
    Tick arrival = hm.migratePage(1, Tier::Fast, 0);
    // Mid-flight: refuse (the transfer owns the page).
    EXPECT_FALSE(hm.teleportPage(1, Tier::Slow, arrival - 1));
    // After arrival: fine.
    EXPECT_TRUE(hm.teleportPage(1, Tier::Slow, arrival));
    EXPECT_EQ(hm.residentTier(1, arrival), Tier::Slow);
}

} // namespace
} // namespace sentinel::mem
