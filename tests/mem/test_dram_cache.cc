#include <gtest/gtest.h>

#include "mem/dram_cache.hh"

namespace sentinel::mem {
namespace {

TEST(DramCache, MissThenHit)
{
    DramCache c(16 * kPageSize, 4);
    auto r1 = c.access(1, false);
    EXPECT_FALSE(r1.hit);
    EXPECT_EQ(r1.fill_bytes, kPageSize);
    EXPECT_EQ(r1.writeback_bytes, 0u);

    auto r2 = c.access(1, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.fill_bytes, 0u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(DramCache, GeometryFromCapacity)
{
    DramCache c(16 * kPageSize, 4);
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.associativity(), 4u);
}

TEST(DramCache, LruEvictionWithinSet)
{
    // One set of two ways: pages 0, 4, 8... all map to set 0 when
    // num_sets == 4?  Use a single-set cache instead: capacity = 2 pages,
    // assoc = 2 -> num_sets = 1, every page conflicts.
    DramCache c(2 * kPageSize, 2);
    ASSERT_EQ(c.numSets(), 1u);

    c.access(1, false);
    c.access(2, false);
    c.access(1, false);          // 1 is now MRU
    auto r = c.access(3, false); // evicts 2 (LRU)
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(3));
}

TEST(DramCache, DirtyVictimWritesBack)
{
    DramCache c(kPageSize, 1); // direct-mapped single frame
    c.access(1, true);         // dirty
    auto r = c.access(2, false);
    EXPECT_EQ(r.writeback_bytes, kPageSize);
    EXPECT_EQ(c.writebacks(), 1u);

    // Clean victim: no writeback.
    auto r2 = c.access(3, false);
    EXPECT_EQ(r2.writeback_bytes, 0u);
}

TEST(DramCache, WriteHitSetsDirty)
{
    DramCache c(kPageSize, 1);
    c.access(1, false); // clean fill
    c.access(1, true);  // dirtied by hit
    auto r = c.access(2, false);
    EXPECT_EQ(r.writeback_bytes, kPageSize);
}

TEST(DramCache, HitRate)
{
    DramCache c(8 * kPageSize, 8);
    c.access(1, false);
    c.access(1, false);
    c.access(1, false);
    c.access(2, false);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

TEST(DramCache, ResetClears)
{
    DramCache c(4 * kPageSize, 4);
    c.access(1, true);
    c.reset();
    EXPECT_FALSE(c.contains(1));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
}

TEST(DramCache, TinyCapacityStillHasOneSet)
{
    DramCache c(0, 4);
    EXPECT_EQ(c.numSets(), 1u);
    auto r = c.access(1, false);
    EXPECT_FALSE(r.hit);
}

} // namespace
} // namespace sentinel::mem
