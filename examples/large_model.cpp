/**
 * @file
 * Large-model training on the Optane platform: BERT-large at a large
 * batch, where peak memory far exceeds the DRAM budget.  Compares the
 * policies a practitioner would actually consider (first-touch NUMA,
 * Memory Mode, AutoTM, Sentinel) and shows how Sentinel's savings
 * translate into trainable batch size on a fixed DRAM budget.
 *
 *   $ ./large_model [model] [batch]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hh"
#include "models/registry.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "bert_large";
    int batch = argc > 2 ? std::atoi(argv[2])
                         : models::modelSpec(model).large_batch;

    df::Graph probe = models::makeModel(model, batch);
    std::printf("%s at batch %d: peak memory %.2f GB; DRAM budget = "
                "20%% of that.\n\n",
                model.c_str(), batch,
                static_cast<double>(probe.peakMemoryBytes()) / 1e9);

    harness::ExperimentConfig cfg;
    cfg.model = model;
    cfg.batch = batch;

    std::printf("%-14s %12s %14s %16s %12s\n", "policy", "ms/step",
                "samples/s", "migrated MB/step", "exposed ms");
    double numa_ms = 0.0;
    for (const char *policy :
         { "numa", "memory-mode", "autotm", "sentinel", "fast-only" }) {
        harness::Metrics m = harness::runExperiment(cfg, policy);
        if (std::string(policy) == "numa")
            numa_ms = m.step_time_ms;
        std::printf("%-14s %12.2f %14.1f %16.1f %12.2f\n", policy,
                    m.step_time_ms, m.throughput, m.migrated_mb(),
                    m.exposed_ms);
    }

    harness::Metrics sentinel = harness::runExperiment(cfg, "sentinel");
    std::printf("\nSentinel vs first-touch NUMA: %.2fx throughput "
                "(paper: ~1.7x on average\nfor models whose peak "
                "exceeds fast memory).\n",
                numa_ms / sentinel.step_time_ms);
    std::printf("Sentinel plan: MIL=%d, pool=%.1f MB, case-3 events=%d, "
                "trial steps=%d.\n",
                sentinel.mil, sentinel.pool_mb, sentinel.case3_events,
                sentinel.trial_steps);
    return 0;
}
