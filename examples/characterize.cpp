/**
 * @file
 * The Sec. III characterization study as a tool: profile any model in
 * the zoo for one step and print its tensor population — size,
 * lifetime, and main-memory access distributions, the hot/cold byte
 * split, and the page-level false-sharing comparison.
 *
 *   $ ./characterize [model] [batch]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hh"
#include "core/runtime.hh"
#include "mem/hm.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "resnet32";
    int batch = argc > 2 ? std::atoi(argv[2])
                         : models::modelSpec(model).small_batch;

    df::Graph g = models::makeModel(model, batch);
    std::printf("== %s, batch %d ==\n", model.c_str(), batch);
    std::printf("layers %d, ops %zu, tensors %zu, peak memory %s\n\n",
                g.numLayers(), g.numOps(), g.numTensors(),
                formatBytes(static_cast<double>(g.peakMemoryBytes()))
                    .c_str());

    // --- Observation 1: lifetime/size population -----------------------
    std::size_t n_short = 0;
    std::size_t n_small_short = 0;
    Histogram lifetimes({ 1, 2, 8, 32 });
    for (const auto &t : g.tensors()) {
        lifetimes.add(t.lifetimeLayers(), static_cast<double>(t.bytes));
        if (t.shortLived()) {
            ++n_short;
            if (t.small())
                ++n_small_short;
        }
    }
    std::printf("Observation 1 — lifetime (layers): tensors / bytes\n");
    for (std::size_t i = 0; i < lifetimes.numBuckets(); ++i) {
        std::printf("  %-10s %6llu  %10s\n",
                    lifetimes.bucketLabel(i).c_str(),
                    static_cast<unsigned long long>(
                        lifetimes.bucketCount(i)),
                    formatBytes(lifetimes.bucketWeight(i)).c_str());
    }
    std::printf("  short-lived: %.1f%% of tensors; %.1f%% of those are "
                "sub-page\n\n",
                100.0 * static_cast<double>(n_short) /
                    static_cast<double>(g.numTensors()),
                100.0 * static_cast<double>(n_small_short) /
                    static_cast<double>(n_short));

    // --- Observation 2: main-memory access distribution -----------------
    auto cfg = core::RuntimeConfig::optane(1ull << 30);
    prof::Profiler profiler(cfg.profiler);
    mem::HeterogeneousMemory hm(cfg.fast, cfg.slow, cfg.migration);
    auto profile = profiler.profile(g, hm, cfg.exec);

    Histogram hotness({ 1, 10, 100 });
    for (const auto &tp : profile.db.tensors())
        hotness.add(tp.accesses_per_page,
                    static_cast<double>(tp.bytes));
    std::printf("Observation 2 — main-memory accesses per page: "
                "tensors / bytes\n");
    for (std::size_t i = 0; i < hotness.numBuckets(); ++i) {
        std::printf("  %-10s %6llu  %10s  (%.2f%% of bytes)\n",
                    hotness.bucketLabel(i).c_str(),
                    static_cast<unsigned long long>(
                        hotness.bucketCount(i)),
                    formatBytes(hotness.bucketWeight(i)).c_str(),
                    100.0 * hotness.bucketWeight(i) /
                        hotness.totalWeight());
    }

    // --- Observation 3: page-level vs tensor-level profiling -------------
    mem::HeterogeneousMemory hm2(cfg.fast, cfg.slow, cfg.migration);
    auto pages = profiler.profilePageLevel(g, hm2, cfg.exec);
    Histogram page_hot({ 1, 10, 100 });
    for (const auto &pe : pages)
        page_hot.add(static_cast<double>(pe.accesses),
                     static_cast<double>(mem::kPageSize));
    std::printf("\nObservation 3 — coldest bucket (<=10 accesses): "
                "%s at tensor level vs %s at\npage level: %s of cold "
                "bytes look hot under page-level profiling (false "
                "sharing).\n",
                formatBytes(hotness.bucketWeight(0) +
                            hotness.bucketWeight(1))
                    .c_str(),
                formatBytes(page_hot.bucketWeight(0) +
                            page_hot.bucketWeight(1))
                    .c_str(),
                formatBytes((hotness.bucketWeight(0) +
                             hotness.bucketWeight(1)) -
                            (page_hot.bucketWeight(0) +
                             page_hot.bucketWeight(1)))
                    .c_str());

    std::printf("\nProfiling cost: %.1fx step slowdown, %.2f%% memory "
                "overhead, %llu faults.\n",
                profile.profilingSlowdown(),
                100.0 * profile.memoryOverhead(),
                static_cast<unsigned long long>(
                    profile.profiling_step.fault_overhead /
                    (2 * kUsec)));
    return 0;
}
