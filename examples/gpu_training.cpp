/**
 * @file
 * Sentinel-GPU: train on the V100-style platform (HBM fast tier, host
 * memory over PCIe as the slow tier).  Shows the two headline GPU
 * results: throughput against Unified Memory and the other swapping
 * runtimes, and the maximum trainable batch on a fixed device-memory
 * budget.
 *
 *   $ ./gpu_training [model]
 */

#include <cstdio>
#include <string>

#include "harness/experiment.hh"
#include "models/registry.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "resnet32";
    const auto &spec = models::modelSpec(model);
    int batch = spec.small_batch;

    df::Graph probe = models::makeModel(model, batch);
    std::uint64_t device =
        mem::roundUpToPages(probe.peakMemoryBytes() * 3 / 5);
    std::printf("%s at batch %d on the GPU platform; device memory "
                "%.1f MB (60%% of peak).\n\n",
                model.c_str(), batch,
                static_cast<double>(device) / 1e6);

    harness::ExperimentConfig cfg;
    cfg.model = model;
    cfg.batch = batch;
    cfg.platform = harness::Platform::Gpu;
    cfg.fast_bytes = device;

    harness::Metrics um = harness::runExperiment(cfg, "um");
    std::printf("%-14s %12s %14s %12s %14s\n", "policy", "ms/step",
                "samples/s", "vs UM", "recompute ms");
    for (const auto &policy : harness::gpuPolicies()) {
        harness::Metrics m = harness::runExperiment(cfg, policy);
        if (!m.supported) {
            std::printf("%-14s %12s\n", policy.c_str(),
                        "unsupported");
            continue;
        }
        if (!m.feasible) {
            std::printf("%-14s %12s\n", policy.c_str(),
                        "out of memory");
            continue;
        }
        std::printf("%-14s %12.2f %14.1f %11.2fx %14.2f\n",
                    policy.c_str(), m.step_time_ms, m.throughput,
                    um.step_time_ms / m.step_time_ms, m.recompute_ms);
    }

    std::printf("\nMax batch on %.1f MB of device memory:\n",
                static_cast<double>(device) / 1e6);
    for (const char *policy : { "tf", "vdnn", "sentinel" }) {
        if (std::string(policy) == "vdnn" && !spec.has_convs) {
            std::printf("  %-10s unsupported (no conv layers)\n",
                        policy);
            continue;
        }
        int b = harness::maxBatchSearch(model, policy, device,
                                        spec.small_batch * 16);
        std::printf("  %-10s batch %d\n", policy, b);
    }
    return 0;
}
