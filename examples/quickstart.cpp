/**
 * @file
 * Quickstart: train ResNet-32 under Sentinel on an Optane-style
 * heterogeneous memory system with fast memory at 20% of the model's
 * peak consumption — the paper's headline configuration.
 *
 *   $ ./quickstart [model] [batch]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/runtime.hh"
#include "models/registry.hh"

using namespace sentinel;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "resnet32";
    int batch = argc > 2 ? std::atoi(argv[2]) : 32;

    // 1. Build the training-step graph (the stand-in for a TensorFlow
    //    model annotated with start_profile()/add_layer()).
    df::Graph graph = models::makeModel(model, batch);
    std::uint64_t peak = graph.peakMemoryBytes();
    std::uint64_t fast = mem::roundUpToPages(peak / 5);
    std::printf("%s, batch %d: peak memory %.1f MB, fast tier %.1f MB "
                "(20%%)\n",
                model.c_str(), batch, static_cast<double>(peak) / 1e6,
                static_cast<double>(fast) / 1e6);

    // 2. Create the runtime on the DDR4 + Optane preset.
    core::Runtime rt(std::move(graph), core::RuntimeConfig::optane(fast));

    // 3. Profiling phase: one instrumented training step.
    const prof::ProfileResult &profile = rt.profileResult();
    std::printf("profiling: step extended %.1fx, memory overhead "
                "%.2f%%, RS = %.1f MB\n",
                profile.profilingSlowdown(),
                100.0 * profile.memoryOverhead(),
                static_cast<double>(profile.db.shortLivedPeakBytes()) /
                    1e6);

    // 4. Train.  The first steps include Sentinel's test-and-trial.
    auto stats = rt.train(10);
    const core::SentinelPolicy &policy = rt.policy();
    std::printf("plan: MIL = %d, reserved pool = %.1f MB, "
                "test-and-trial steps = %d\n",
                policy.migrationPlan().mil,
                static_cast<double>(policy.reservedPoolBytes()) / 1e6,
                policy.trialStepsUsed());

    for (const auto &s : stats) {
        std::printf("step %2d: %8.2f ms  (exposed migration %6.2f ms, "
                    "migrated %6.1f MB, %5.1f%% of traffic from slow "
                    "memory)\n",
                    s.step, toMillis(s.step_time),
                    toMillis(s.exposed_migration),
                    static_cast<double>(s.promoted_bytes +
                                        s.demoted_bytes) /
                        1e6,
                    100.0 * static_cast<double>(s.bytes_slow) /
                        static_cast<double>(s.bytes_fast +
                                            s.bytes_slow));
    }

    double steady = toMillis(stats.back().step_time);
    std::printf("\nsteady state: %.2f ms/step, %.1f samples/s\n", steady,
                batch / (steady / 1e3));
    return 0;
}
