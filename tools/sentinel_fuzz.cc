/**
 * @file
 * sentinel_fuzz: randomized workload fuzzer over the cross-policy
 * differential oracle.
 *
 * Each iteration derives a FuzzCase from the campaign seed (a
 * synthetic:<seed> model plus harness knobs), runs it through the full
 * policy matrix, and checks every oracle invariant.  On a violation the
 * deterministic shrinker minimizes the case while the same invariant
 * keeps failing and writes a `.sentinelrepro` file replayable via
 * `sentinel-cli replay` (commit it to tests/fuzz/corpus/ once the bug
 * is fixed).
 *
 * `--mode server` fuzzes multi-job co-locations instead: each
 * iteration derives a random 2-job mix (server::randomColocation) and
 * runs it through the multi-job oracle — per-job traffic invariance
 * against independent solo re-runs, serial == parallel determinism,
 * node DMA conservation, capacity, and dilation.  Violating mixes are
 * printed as `sentinel-cli serve --colo` spec strings (the repro is
 * the spec itself; there is nothing to shrink).
 *
 * Usage:
 *   sentinel_fuzz [--iters N] [--seed S] [--jobs J] [--out DIR]
 *                 [--inject capacity=F | --inject traffic=F]
 *                 [--no-determinism] [--no-shrink] [--keep-going]
 *                 [--mode policy|server] [--colo-jobs N]
 *   sentinel_fuzz --replay FILE.sentinelrepro [--jobs J]
 *
 * Exit codes: 0 = all iterations clean, 2 = violations found,
 *             1 = usage / configuration error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "harness/oracle.hh"
#include "server/oracle.hh"

using namespace sentinel;
using harness::ConfigError;
using harness::FuzzCase;
using harness::OracleReport;

namespace {

struct Options {
    int iters = 50;
    std::uint64_t seed = 1;
    int jobs = 1;
    std::string out_dir = ".";
    std::string replay;
    double inject_capacity = 0.0;
    double inject_traffic = 0.0;
    bool determinism = true;
    bool do_shrink = true;
    bool keep_going = false;
    std::string mode = "policy"; ///< "policy" or "server"
    int colo_jobs = 2;           ///< jobs per server-mode co-location
    std::string planner = "greedy"; ///< sentinel layout solver
    int tiers = 0; ///< force the chain length (0 = let the case draw)
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sentinel_fuzz [--iters N] [--seed S] [--jobs J]\n"
        "                     [--out DIR] [--inject capacity=F]\n"
        "                     [--inject traffic=F] [--no-determinism]\n"
        "                     [--no-shrink] [--keep-going]\n"
        "                     [--mode policy|server] [--colo-jobs N]\n"
        "                     [--planner greedy|interval] [--tiers N]\n"
        "       sentinel_fuzz --replay FILE.sentinelrepro [--jobs J]\n");
    return 1;
}

bool
parseInject(const std::string &v, Options &o)
{
    std::size_t eq = v.find('=');
    if (eq == std::string::npos)
        return false;
    std::string kind = v.substr(0, eq);
    double f = std::atof(v.c_str() + eq + 1);
    if (kind == "capacity")
        o.inject_capacity = f;
    else if (kind == "traffic")
        o.inject_traffic = f;
    else
        return false;
    return true;
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (a == "--iters") {
            const char *v = next();
            if (!v)
                return false;
            o.iters = std::atoi(v);
        } else if (a == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            o.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--jobs") {
            const char *v = next();
            if (!v)
                return false;
            o.jobs = std::atoi(v);
        } else if (a == "--out") {
            const char *v = next();
            if (!v)
                return false;
            o.out_dir = v;
        } else if (a == "--replay") {
            const char *v = next();
            if (!v)
                return false;
            o.replay = v;
        } else if (a == "--inject") {
            const char *v = next();
            if (!v || !parseInject(v, o))
                return false;
        } else if (a == "--mode") {
            const char *v = next();
            if (!v)
                return false;
            o.mode = v;
        } else if (a == "--colo-jobs") {
            const char *v = next();
            if (!v)
                return false;
            o.colo_jobs = std::atoi(v);
        } else if (a == "--planner") {
            const char *v = next();
            if (!v)
                return false;
            o.planner = v;
        } else if (a == "--tiers") {
            const char *v = next();
            if (!v)
                return false;
            o.tiers = std::atoi(v);
        } else if (a == "--no-determinism") {
            o.determinism = false;
        } else if (a == "--no-shrink") {
            o.do_shrink = false;
        } else if (a == "--keep-going") {
            o.keep_going = true;
        } else {
            return false;
        }
    }
    return o.iters > 0 && o.jobs > 0 && o.colo_jobs > 0 && o.tiers >= 0 &&
           (o.mode == "policy" || o.mode == "server") &&
           (o.planner == "greedy" || o.planner == "interval");
}

/** Per-iteration case seed: decorrelated from neighbours so adjacent
 *  iterations explore unrelated corners (splitmix64 finalizer). */
std::uint64_t
caseSeed(std::uint64_t campaign_seed, int iter)
{
    std::uint64_t z = campaign_seed +
                      0x9e3779b97f4a7c15ull *
                          (static_cast<std::uint64_t>(iter) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return (z ^ (z >> 31)) | 1; // synthetic seeds stay nonzero
}

int
replayMode(const Options &o)
{
    FuzzCase fc = FuzzCase::load(o.replay);
    OracleReport rep = fc.run(o.jobs, o.determinism);
    std::printf("%s", rep.summary().c_str());
    return rep.ok() ? 0 : 2;
}

int
serverFuzzMode(const Options &o)
{
    int skipped = 0;
    int failures = 0;
    for (int i = 0; i < o.iters; ++i) {
        std::uint64_t cs = caseSeed(o.seed, i);
        std::vector<server::JobSpec> specs =
            server::randomColocation(cs, o.colo_jobs);

        server::ServerConfig cfg;
        cfg.fast_bytes = 64ull << 20;
        server::ServerOracleOptions opts;
        opts.jobs = o.jobs > 1 ? o.jobs : 2;
        opts.check_determinism = o.determinism;

        OracleReport rep;
        try {
            rep = server::runServerOracle(cfg, specs, opts);
        } catch (const ConfigError &e) {
            ++skipped;
            std::printf("iter %d seed %llu: skipped (%s)\n", i,
                        static_cast<unsigned long long>(cs), e.what());
            continue;
        }
        if (rep.ok()) {
            std::printf("iter %d seed %llu: ok (%d jobs)\n", i,
                        static_cast<unsigned long long>(cs),
                        o.colo_jobs);
            continue;
        }

        ++failures;
        std::printf("iter %d seed %llu: VIOLATION\n%s", i,
                    static_cast<unsigned long long>(cs),
                    rep.summary().c_str());
        std::string colo;
        for (const auto &s : specs) {
            if (!colo.empty())
                colo += "; ";
            colo += s.toSpecString();
        }
        std::printf("repro: sentinel-cli serve --oracle 1 --colo '%s'\n",
                    colo.c_str());
        if (!o.keep_going)
            break;
    }
    std::printf("server fuzz campaign: %d iterations, %d skipped, %d "
                "violations\n",
                o.iters, skipped, failures);
    return failures > 0 ? 2 : 0;
}

int
fuzzMode(const Options &o)
{
    int skipped = 0;
    int failures = 0;
    for (int i = 0; i < o.iters; ++i) {
        std::uint64_t cs = caseSeed(o.seed, i);
        FuzzCase fc = FuzzCase::random(cs);
        fc.planner = o.planner;
        if (o.tiers > 0)
            fc.tiers = o.tiers;
        fc.inject_capacity = o.inject_capacity;
        fc.inject_traffic = o.inject_traffic;

        OracleReport rep;
        try {
            rep = fc.run(o.jobs, o.determinism);
        } catch (const ConfigError &e) {
            // A rejected input, not a violated invariant: the
            // generator wandered outside the harness preconditions.
            ++skipped;
            std::printf("iter %d seed %llu: skipped (%s)\n", i,
                        static_cast<unsigned long long>(cs), e.what());
            continue;
        }
        if (rep.ok()) {
            std::printf("iter %d seed %llu: ok (%zu cells)\n", i,
                        static_cast<unsigned long long>(cs),
                        rep.cells.size());
            continue;
        }

        ++failures;
        std::printf("iter %d seed %llu: VIOLATION\n%s", i,
                    static_cast<unsigned long long>(cs),
                    rep.summary().c_str());

        FuzzCase minimal = fc;
        if (o.do_shrink) {
            int runs = 0;
            minimal = harness::shrink(fc, o.jobs, &runs);
            std::printf("shrunk after %d oracle runs to:\n%s", runs,
                        minimal.serialize().c_str());
        }
        std::string path = o.out_dir + "/repro-" + std::to_string(cs) +
                           ".sentinelrepro";
        minimal.save(path);
        std::printf("repro written to %s (replay with: sentinel-cli "
                    "replay %s)\n",
                    path.c_str(), path.c_str());
        if (!o.keep_going)
            break;
    }
    std::printf("fuzz campaign: %d iterations, %d skipped, %d "
                "violations\n",
                o.iters, skipped, failures);
    return failures > 0 ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return usage();
    try {
        if (!o.replay.empty())
            return replayMode(o);
        return o.mode == "server" ? serverFuzzMode(o) : fuzzMode(o);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
