/**
 * @file
 * bench_baseline: the perf-regression tripwire behind `ctest -L
 * perf-regress`.
 *
 * Default mode runs a small fixed set of experiment cells and writes
 * every metric to BENCH_baseline.json (one metric per line, so the
 * checker — and a human with grep — can parse it without a JSON
 * library).  The file is committed; EXPERIMENTS.md describes when and
 * how to regenerate it.
 *
 * `--check` re-runs the same cells and compares against the committed
 * baseline.  Two metric classes with different tolerances:
 *
 *  - sim.* metrics come off the simulated clock and are bit-
 *    deterministic, so any drift is a real behavior change; the
 *    threshold (25%) exists only so deliberate small retunings don't
 *    need a baseline refresh in the same commit.
 *  - wall.* metrics time the simulator itself (min of N runs) and
 *    absorb machine noise with a much larger threshold.  Sanitizer
 *    builds skip them entirely — a 10x ASan slowdown is not a
 *    regression.
 *
 * Improvements never fail the check; regenerate the baseline to bank
 * them.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/ial.hh"
#include "common/alloc_hook.hh"
#include "common/logging.hh"
#include "core/sentinel_policy.hh"
#include "dataflow/executor.hh"
#include "harness/experiment.hh"
#include "mem/hm.hh"
#include "mem/page.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"
#include "telemetry/session.hh"
#include "telemetry/timeseries.hh"

using namespace sentinel;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BENCH_SANITIZED 1
#endif
#if !defined(BENCH_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define BENCH_SANITIZED 1
#endif
#endif
#ifndef BENCH_SANITIZED
#define BENCH_SANITIZED 0
#endif

namespace {

struct Sample {
    std::string key;
    double value = 0.0;
    /** Allowed relative regression before --check fails. */
    double threshold = 0.25;
    /** Additive slack so near-zero baselines aren't tripwires. */
    double slack = 0.0;
    /** true: larger is better (throughput); false: smaller is. */
    bool higher_better = false;
};

harness::ExperimentConfig
cellConfig(const std::string &model)
{
    harness::ExperimentConfig cfg;
    cfg.model = model;
    return cfg; // zoo batch, Optane platform, 9 steps / 6 warmup
}

/**
 * Heap allocations per steady-state training step, counted by the
 * sentinel_alloc_hook operator-new replacement around warm steps of a
 * manually assembled cell (the same model / fast-tier sizing / step
 * schedule as cellConfig, minus the harness wrapper so setup and
 * teardown allocations stay outside the counted window).  Returns -1
 * when the hook is not live (sanitizer builds), and the key is then
 * omitted.
 */
double
measureAllocsPerStep(const std::string &model, const std::string &policy)
{
    if (!common::allocHookActive())
        return -1.0;

    harness::ExperimentConfig cfg = cellConfig(model);
    df::Graph graph = models::makeModel(cfg.model, cfg.batch);
    std::uint64_t fast_bytes = mem::roundUpToPages(
        static_cast<std::uint64_t>(
            static_cast<double>(graph.peakMemoryBytes()) *
            cfg.fast_fraction));
    core::RuntimeConfig rc =
        harness::platformConfig(cfg.platform, fast_bytes);

    std::optional<prof::ProfileResult> profile;
    std::unique_ptr<df::MemoryPolicy> pol;
    if (policy == "sentinel") {
        mem::HeterogeneousMemory prof_hm(rc.fast, rc.slow, rc.migration);
        prof::Profiler profiler(rc.profiler);
        profile = profiler.profile(graph, prof_hm, rc.exec);
        pol = std::make_unique<core::SentinelPolicy>(profile->db,
                                                     cfg.sentinel);
    } else if (policy == "ial") {
        pol = std::make_unique<baselines::IalPolicy>();
    } else {
        SENTINEL_FATAL("allocs_per_step: unsupported policy '%s'",
                       policy.c_str());
    }

    mem::HeterogeneousMemory hm(rc.fast, rc.slow, rc.migration);
    df::Executor ex(graph, hm, rc.exec, *pol);

    // The live observability plane rides along: its per-step feed
    // (event ring, cached counters, the step board's series pushes)
    // is part of the zero-allocation promise — only scrapes may
    // allocate, and none happen inside the counted window.
    telemetry::Session session;
    telemetry::StepBoard board;
    session.attachStepBoard(&board);
    ex.setTelemetry(&session);

    ex.run(cfg.warmup);

    const int measured = cfg.steps - cfg.warmup;
    std::uint64_t before = common::allocCount();
    for (int i = 0; i < measured; ++i)
        ex.runStep();
    std::uint64_t after = common::allocCount();
    return static_cast<double>(after - before) /
           static_cast<double>(measured);
}

void
addCell(std::vector<Sample> &out, const std::string &model,
        const std::string &policy)
{
    harness::ExperimentConfig cfg = cellConfig(model);
    harness::Metrics m = harness::runExperiment(cfg, policy);
    SENTINEL_ASSERT(m.supported, "baseline cell %s/%s unsupported",
                    model.c_str(), policy.c_str());
    std::string p = "sim." + model + "." + policy + ".";
    out.push_back({ p + "step_time_ms", m.step_time_ms, 0.25, 0.05 });
    out.push_back(
        { p + "throughput", m.throughput, 0.25, 0.0, /*higher=*/true });
    out.push_back({ p + "exposed_ms", m.exposed_ms, 0.25, 0.05 });
    out.push_back({ p + "migrated_mb", m.migrated_mb(), 0.25, 1.0 });
    out.push_back({ p + "peak_fast_mb", m.peak_fast_mb, 0.25, 1.0 });
    // Allocation counts are deterministic in a single-threaded run;
    // the slack absorbs the occasional amortized container growth.
    double allocs = measureAllocsPerStep(model, policy);
    if (allocs >= 0.0)
        out.push_back({ p + "allocs_per_step", allocs, 0.25, 5.0 });
}

/** Wall time of one full experiment cell, min of @p reps runs. */
void
addWall(std::vector<Sample> &out, const std::string &model,
        const std::string &policy, int reps)
{
    using clock = std::chrono::steady_clock;
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        auto t0 = clock::now();
        harness::ExperimentConfig cfg = cellConfig(model);
        (void)harness::runExperiment(cfg, policy);
        double ms = std::chrono::duration<double, std::milli>(
                        clock::now() - t0)
                        .count();
        best = i == 0 ? ms : std::min(best, ms);
    }
    out.push_back({ "wall." + model + "." + policy + "_ms", best,
                    /*threshold=*/1.5, /*slack=*/100.0 });
}

std::vector<Sample>
collect(bool wall)
{
    std::vector<Sample> out;
    addCell(out, "resnet32", "sentinel");
    addCell(out, "resnet32", "ial");
    addCell(out, "mobilenet", "sentinel");
    if (wall)
        addWall(out, "resnet32", "sentinel", 3);
    return out;
}

/**
 * One three-tier cell, simulated metrics only: the cells are bit-
 * deterministic like the two-tier set, but wall clock and allocation
 * counts add nothing a two-tier cell doesn't already gate, so the
 * N-tier tripwire stays cheap enough for every build flavor.
 */
void
addNtierCell(std::vector<Sample> &out, const std::string &model,
             const std::string &policy)
{
    harness::ExperimentConfig cfg = cellConfig(model);
    cfg.tiers = 3;
    harness::Metrics m = harness::runExperiment(cfg, policy);
    SENTINEL_ASSERT(m.supported, "ntier cell %s/%s unsupported",
                    model.c_str(), policy.c_str());
    std::string p = "sim.ntier3." + model + "." + policy + ".";
    out.push_back({ p + "step_time_ms", m.step_time_ms, 0.25, 0.05 });
    out.push_back(
        { p + "throughput", m.throughput, 0.25, 0.0, /*higher=*/true });
    out.push_back({ p + "exposed_ms", m.exposed_ms, 0.25, 0.05 });
    out.push_back({ p + "migrated_mb", m.migrated_mb(), 0.25, 1.0 });
    out.push_back({ p + "peak_fast_mb", m.peak_fast_mb, 0.25, 1.0 });
}

std::vector<Sample>
collectNtier()
{
    std::vector<Sample> out;
    addNtierCell(out, "resnet32", "sentinel");
    addNtierCell(out, "llm:tiny", "sentinel");
    return out;
}

void
writeBaseline(const std::vector<Sample> &samples, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        SENTINEL_FATAL("could not write '%s'", path.c_str());
    os << "{\n";
    os << "  \"schema\": 1,\n";
    os << "  \"sanitized\": " << (BENCH_SANITIZED ? "true" : "false")
       << ",\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        os << "  \"" << samples[i].key << "\": "
           << strprintf("%.6f", samples[i].value)
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    os << "}\n";
}

/** Flat `"key": value` lines; no JSON library needed (or wanted). */
std::map<std::string, double>
readBaseline(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        SENTINEL_FATAL("could not read baseline '%s' (regenerate with "
                       "bench_baseline --out %s)",
                       path.c_str(), path.c_str());
    std::map<std::string, double> out;
    std::string line;
    while (std::getline(is, line)) {
        std::size_t k0 = line.find('"');
        if (k0 == std::string::npos)
            continue;
        std::size_t k1 = line.find('"', k0 + 1);
        std::size_t colon = line.find(':', k1);
        if (k1 == std::string::npos || colon == std::string::npos)
            continue;
        std::string key = line.substr(k0 + 1, k1 - k0 - 1);
        char *end = nullptr;
        double v = std::strtod(line.c_str() + colon + 1, &end);
        if (end != line.c_str() + colon + 1)
            out[key] = v;
    }
    return out;
}

int
check(const std::vector<Sample> &samples, const std::string &path)
{
    std::map<std::string, double> base = readBaseline(path);
    int regressions = 0, compared = 0;
    for (const Sample &s : samples) {
        auto it = base.find(s.key);
        if (it == base.end()) {
            std::printf("  %-44s %12.3f  (new metric, no baseline)\n",
                        s.key.c_str(), s.value);
            continue;
        }
        ++compared;
        double b = it->second;
        bool regressed;
        double limit;
        if (s.higher_better) {
            limit = b * (1.0 - s.threshold) - s.slack;
            regressed = s.value < limit;
        } else {
            limit = b * (1.0 + s.threshold) + s.slack;
            regressed = s.value > limit;
        }
        double delta = b != 0.0 ? 100.0 * (s.value - b) / b : 0.0;
        std::printf("  %-44s %12.3f  base %12.3f  %+7.1f%%  %s\n",
                    s.key.c_str(), s.value, b, delta,
                    regressed ? "REGRESSED" : "ok");
        if (regressed) {
            ++regressions;
            std::printf("    limit was %.3f (threshold %.0f%% + slack "
                        "%.2f)\n",
                        limit, 100.0 * s.threshold, s.slack);
        }
    }
    std::printf("%d metrics compared against %s: %d regression%s\n",
                compared, path.c_str(), regressions,
                regressions == 1 ? "" : "s");
    return regressions == 0 ? 0 : 1;
}

void
usage()
{
    std::printf(
        "bench_baseline [--out FILE] [--check] [--baseline FILE]\n"
        "               [--ntier]\n\n"
        "default: run the baseline cells and write FILE (default\n"
        "BENCH_baseline.json); --check compares against the committed\n"
        "baseline instead and exits non-zero on regression.  Sanitizer\n"
        "builds skip the wall-clock metrics in both modes.  --ntier\n"
        "swaps in the three-tier cell set (simulated metrics only,\n"
        "baselined separately in BENCH_baseline_ntier.json).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool do_check = false;
    bool ntier = false;
    std::string out;
    std::string baseline;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                SENTINEL_FATAL("missing value for %s", what);
            return argv[++i];
        };
        if (a == "--check") {
            do_check = true;
        } else if (a == "--ntier") {
            ntier = true;
        } else if (a == "--out") {
            out = value("--out");
        } else if (a == "--baseline") {
            baseline = value("--baseline");
        } else {
            usage();
            return a == "--help" ? 0 : 1;
        }
    }
    std::string def =
        ntier ? "BENCH_baseline_ntier.json" : "BENCH_baseline.json";
    if (out.empty())
        out = def;
    if (baseline.empty())
        baseline = def;

    if (BENCH_SANITIZED && !ntier)
        std::printf("sanitizer build: wall-clock metrics skipped\n");
    std::vector<Sample> samples =
        ntier ? collectNtier() : collect(/*wall=*/!BENCH_SANITIZED);

    if (do_check)
        return check(samples, baseline);

    writeBaseline(samples, out);
    std::printf("%zu metrics written to %s\n", samples.size(),
                out.c_str());
    return 0;
}
