/**
 * @file
 * sentinel-cli: command-line driver for the reproduction.
 *
 * Subcommands:
 *   run          one (model, batch, platform, policy) cell
 *   report       stall attribution + migration decision audit for one
 *                run (per-interval breakdown, top offenders, exactness
 *                check against the run's StepStats)
 *   compare      every policy on one configuration
 *   plan         the interval planner's candidate table (Fig. 5 math)
 *                plus the offline offset map of the long-lived tensors
 *   maxbatch     max-batch search on the GPU platform (Table V cell)
 *   chaos        fault-injection degradation report (Sentinel vs. the
 *                platform baselines under a --chaos spec)
 *   replay       run a .sentinelrepro fuzz case through the
 *                differential oracle (exit 0 clean, 2 on violations)
 *   serve        co-locate several training jobs on one simulated HM
 *                node: admission control, capacity quotas, and the
 *                global migration-bandwidth arbiter (src/server);
 *                --listen / --scrape-out expose the run's live
 *                observability plane (OpenMetrics + SLO burn alerts)
 *   top          per-job terminal view of a scrape: --endpoint for a
 *                live /metrics responder, --snapshot for a frame file
 *   metrics-diff compare two --metrics-out dumps with percent-change
 *                thresholds (exit 2 when a change exceeds them)
 *   models       list the model zoo
 *
 * Examples:
 *   sentinel-cli run --model resnet32 --batch 32 --policy sentinel
 *   sentinel-cli compare --model bert_large --fraction 0.2
 *   sentinel-cli plan --model resnet32 --batch 32 --fraction 0.2
 *   sentinel-cli maxbatch --model resnet32 --policy sentinel --mem-mb 64
 *   sentinel-cli chaos --model resnet32 --chaos 'bw:step=6,factor=0.5'
 *   sentinel-cli serve --node-mb 64 \
 *       --colo 'model=resnet32 quota=0.3; model=synthetic:9 quota=0.25'
 *   sentinel-cli serve --mix 3 --seed 7 --oracle
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/oracle.hh"
#include "harness/report.hh"
#include "core/interval_planner.hh"
#include "core/sentinel_policy.hh"
#include "mem/hm.hh"
#include "plan/offset_planner.hh"
#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "server/http.hh"
#include "server/oracle.hh"
#include "server/scrape.hh"
#include "sim/fault_injector.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/export.hh"
#include "telemetry/openmetrics.hh"
#include "telemetry/session.hh"

using namespace sentinel;

namespace {

/** Tiny --key value / --key=value parser; unknown keys are fatal. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                SENTINEL_FATAL("expected --key value pairs, got '%s'",
                               key.c_str());
            }
            std::size_t eq = key.find('=');
            if (eq != std::string::npos) {
                values_[key.substr(2, eq - 2)] = key.substr(eq + 1);
                continue;
            }
            if (i + 1 >= argc) {
                SENTINEL_FATAL("missing value for '%s'", key.c_str());
            }
            values_[key.substr(2)] = argv[++i];
        }
    }

    std::string
    get(const std::string &key, const std::string &dflt) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? dflt : it->second;
    }

    bool
    has(const std::string &key) const
    {
        return values_.find(key) != values_.end();
    }

    int
    getInt(const std::string &key, int dflt) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? dflt : std::atoi(it->second.c_str());
    }

    double
    getDouble(const std::string &key, double dflt) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? dflt : std::atof(it->second.c_str());
    }

  private:
    std::map<std::string, std::string> values_;
};

harness::ExperimentConfig
configFrom(const Args &args)
{
    harness::ExperimentConfig cfg;
    cfg.model = args.get("model", "resnet32");
    // Models outside the zoo (resnet20 and friends) have no registered
    // spec; they still build via makeModel, so default their batch.
    const models::ModelSpec *spec = models::findModelSpec(cfg.model);
    cfg.batch = args.getInt("batch", spec ? spec->small_batch : 32);
    cfg.platform = args.get("platform", "cpu") == "gpu"
                       ? harness::Platform::Gpu
                       : harness::Platform::Optane;
    cfg.fast_fraction = args.getDouble("fraction", 0.2);
    int mem_mb = args.getInt("mem-mb", 0);
    if (mem_mb > 0)
        cfg.fast_bytes = static_cast<std::uint64_t>(mem_mb) << 20;
    cfg.tiers = args.getInt("tiers", 2);
    int mid_mb = args.getInt("mid-capacity", 0);
    if (mid_mb > 0)
        cfg.mid_bytes = static_cast<std::uint64_t>(mid_mb) << 20;
    cfg.mid_bw = args.getDouble("mid-bw", 0.0) * 1e9; // GB/s -> B/s
    cfg.steps = args.getInt("steps", 9);
    cfg.warmup = args.getInt("warmup", 6);
    cfg.sentinel.forced_mil = args.getInt("mil", 0);
    cfg.planner = args.get("planner", "greedy");
    cfg.chaos = args.get("chaos", "");
    std::string seed = args.get("chaos-seed", "");
    if (!seed.empty())
        cfg.chaos_seed = std::strtoull(seed.c_str(), nullptr, 0);
    return cfg;
}

void
printMetrics(const harness::Metrics &m)
{
    if (!m.supported) {
        std::printf("%-12s unsupported on this graph\n",
                    m.policy.c_str());
        return;
    }
    std::printf("%-12s %10.2f ms/step %10.1f samples/s  exposed "
                "%8.2f ms  recompute %6.2f ms  migrated %8.1f MB  "
                "slow %8.1f MB%s\n",
                m.policy.c_str(), m.step_time_ms, m.throughput,
                m.exposed_ms, m.recompute_ms, m.migrated_mb(),
                m.bytes_slow_mb, m.feasible ? "" : "  [INFEASIBLE]");
}

/**
 * Labeler for traces produced by the run command: ops and prefetch
 * targets get their graph names instead of bare ids.
 */
telemetry::EventLabeler
graphLabeler(const df::Graph &g)
{
    return [&g](const telemetry::Event &e) -> std::string {
        switch (e.type) {
          case telemetry::EventType::OpBegin:
          case telemetry::EventType::OpEnd:
            if (e.id < g.numOps())
                return g.op(e.id).name;
            break;
          case telemetry::EventType::PrefetchIssued:
            if (e.id < g.numTensors())
                return "prefetch " + g.tensor(e.id).name;
            break;
          default:
            break;
        }
        return {};
    };
}

int
cmdRun(const Args &args)
{
    harness::ExperimentConfig cfg = configFrom(args);
    std::string policy = args.get("policy", "sentinel");
    std::string trace_out = args.get("trace-out", "");
    std::string metrics_out = args.get("metrics-out", "");

    std::optional<telemetry::Session> session;
    if (!trace_out.empty() || !metrics_out.empty()) {
        telemetry::TelemetryConfig tcfg;
        tcfg.enabled = true;
        tcfg.ring_capacity = static_cast<std::size_t>(
            args.getInt("ring-capacity", 1 << 18));
        session.emplace(tcfg);
        cfg.telemetry = &*session;
    }

    harness::Metrics m = harness::runExperiment(cfg, policy);
    printMetrics(m);
    if (m.mil > 0) {
        std::printf("sentinel: MIL=%d pool=%.1fMB case3=%d trials=%d\n",
                    m.mil, m.pool_mb, m.case3_events, m.trial_steps);
        if (m.divergence_events > 0 || m.replans > 0 || !m.trial_decided)
            std::printf("sentinel: divergence=%d replans=%d trial=%s\n",
                        m.divergence_events, m.replans,
                        m.trial_state.c_str());
    }

    if (session) {
        // Rebuild the (deterministic) graph to resolve op/tensor names.
        df::Graph g = models::makeModel(cfg.model, cfg.batch);
        if (!trace_out.empty()) {
            if (!telemetry::saveChromeTrace(session->events(), trace_out,
                                            graphLabeler(g)))
                SENTINEL_FATAL("could not write '%s'", trace_out.c_str());
            std::printf("trace written to %s (%zu events, %llu dropped); "
                        "open in https://ui.perfetto.dev\n",
                        trace_out.c_str(), session->events().size(),
                        static_cast<unsigned long long>(
                            session->events().dropped()));
        }
        if (!metrics_out.empty()) {
            if (!telemetry::saveMetrics(session->metrics(), metrics_out))
                SENTINEL_FATAL("could not write '%s'",
                               metrics_out.c_str());
            std::printf("metrics written to %s\n", metrics_out.c_str());
        }
    }
    return 0;
}

int
cmdReport(const Args &args)
{
    harness::ExperimentConfig cfg = configFrom(args);
    std::string policy = args.get("policy", "sentinel");
    std::string report_out = args.get("report-out", "");
    std::string trace_out = args.get("trace-out", "");
    std::string tensor_arg = args.get("tensor", "");

    harness::ReportOptions ropts;
    ropts.top_k = args.getInt("top", 5);
    ropts.jobs = args.getInt("jobs", 1);

    telemetry::AttributionEngine attr;
    telemetry::AuditLog audit;
    cfg.attribution = &attr;
    cfg.audit = &audit;

    // A telemetry session rides along so the attribution can be
    // cross-checked against the raw event stream (and exported with
    // the audit reasons joined in when --trace-out is given).
    telemetry::TelemetryConfig tcfg;
    tcfg.enabled = true;
    tcfg.ring_capacity =
        static_cast<std::size_t>(args.getInt("ring-capacity", 1 << 18));
    telemetry::Session session(tcfg);
    cfg.telemetry = &session;

    harness::StepTrace tr = harness::runExperimentSteps(cfg, policy);
    if (!tr.metrics.supported) {
        std::printf("%s unsupported on %s; nothing to attribute\n",
                    policy.c_str(), cfg.model.c_str());
        return 1;
    }
    session.syncDropCounter();

    df::Graph g = models::makeModel(cfg.model, cfg.batch);
    printMetrics(tr.metrics);
    std::printf("\n%s",
                harness::buildStallReport(g, attr, audit, ropts).c_str());

    std::string why;
    if (!attr.crossCheckEvents(session.events(), &why))
        std::printf("event cross-check FAILED: %s\n", why.c_str());
    else if (!why.empty())
        std::printf("event cross-check: %s\n", why.c_str());

    if (!tensor_arg.empty()) {
        auto id = static_cast<std::uint32_t>(
            std::strtoul(tensor_arg.c_str(), nullptr, 0));
        std::printf("\n%s",
                    harness::auditHistory(g, audit, id).c_str());
    }

    if (!report_out.empty()) {
        std::ofstream os(report_out, std::ios::binary);
        if (!os)
            SENTINEL_FATAL("could not write '%s'", report_out.c_str());
        os << harness::stallReportJson(g, attr, audit, ropts);
        std::printf("report written to %s\n", report_out.c_str());
    }
    if (!trace_out.empty()) {
        telemetry::ChromeTraceOptions topts;
        topts.labeler = graphLabeler(g);
        topts.audit = &audit;
        topts.process_label = cfg.model + " [" + policy + "]";
        if (!telemetry::saveChromeTrace(session.events(), trace_out,
                                        topts))
            SENTINEL_FATAL("could not write '%s'", trace_out.c_str());
        std::printf("trace written to %s (%zu events, %llu dropped)\n",
                    trace_out.c_str(), session.events().size(),
                    static_cast<unsigned long long>(
                        session.events().dropped()));
    }
    return 0;
}

int
cmdCompare(const Args &args)
{
    harness::ExperimentConfig cfg = configFrom(args);
    int jobs = args.getInt("jobs", 1);
    const auto &policies = cfg.platform == harness::Platform::Gpu
                               ? harness::gpuPolicies()
                               : harness::cpuPolicies();
    for (const auto &m : harness::runAllParallel(cfg, policies, jobs))
        printMetrics(m);
    return 0;
}

int
cmdPlan(const Args &args)
{
    harness::ExperimentConfig cfg = configFrom(args);
    df::Graph g = models::makeModel(cfg.model, cfg.batch);
    std::uint64_t fast =
        cfg.fast_bytes != 0
            ? cfg.fast_bytes
            : mem::roundUpToPages(static_cast<std::uint64_t>(
                  static_cast<double>(g.peakMemoryBytes()) *
                  cfg.fast_fraction));
    core::RuntimeConfig rc =
        harness::platformConfig(cfg.platform, fast);

    mem::HeterogeneousMemory hm(rc.fast, rc.slow, rc.migration);
    prof::Profiler profiler(rc.profiler);
    auto profile = profiler.profile(g, hm, rc.exec);

    core::PlannerInputs in;
    in.db = &profile.db;
    in.fast_capacity = fast;
    in.promote_bw = rc.migration.promote_bw;
    in.fast_read_bw = rc.fast.read_bw;
    in.slow_read_bw = rc.slow.read_bw;
    core::IntervalPlanner planner(in);
    auto result = planner.plan(fast * 3 / 5);

    Table t(strprintf("Planner candidates (%s, batch %d, S=%.1f MB, "
                      "RS=%.1f MB)",
                      cfg.model.c_str(), cfg.batch,
                      static_cast<double>(fast) / 1e6,
                      static_cast<double>(result.rs_bytes) / 1e6),
            { "MIL", "feasible", "max prefetch (MB)",
              "max working set (MB)", "est exposed (ms)",
              "Eq.2 (ms)", "chosen" });
    for (const auto &c : result.candidates) {
        t.row()
            .cell(c.mil)
            .cell(c.feasible ? "yes" : "no")
            .cell(static_cast<double>(c.max_prefetch) / 1e6, 1)
            .cell(static_cast<double>(c.max_working_set) / 1e6, 1)
            .cell(toMillis(c.est_exposed), 3)
            .cell(c.eq2_objective * 1e3, 3)
            .cell(c.mil == result.best.mil ? "<==" : "");
    }
    t.print(std::cout);

    // Offline offset assignment over the long-lived set — the tensors
    // Sentinel's co-allocation step lays out (`run --planner interval`
    // adopts exactly this map).
    std::string sname = args.get("solver", "greedy");
    if (sname != "greedy" && sname != "exhaustive") {
        std::fprintf(stderr,
                     "plan: unknown --solver '%s' (want greedy or "
                     "exhaustive)\n",
                     sname.c_str());
        return 1;
    }
    plan::Solver solver = sname == "exhaustive"
                              ? plan::Solver::Exhaustive
                              : plan::Solver::Greedy;
    std::vector<plan::PlanTensor> pts =
        plan::tensorsFromGraph(g, /*include_preallocated=*/false,
                               /*long_lived_only=*/true);
    plan::OffsetPlan layout = plan::assignOffsets(pts, solver);

    std::vector<std::size_t> order(pts.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (layout.offsets[a] != layout.offsets[b])
                      return layout.offsets[a] < layout.offsets[b];
                  return pts[a].id < pts[b].id;
              });
    std::size_t top = static_cast<std::size_t>(args.getInt("top", 32));
    Table m(strprintf("Offset map (%zu long-lived tensors, solver=%s)",
                      pts.size(), plan::solverName(layout.solver)),
            { "offset (KB)", "bytes (KB)", "first op", "last op",
              "tensor" });
    for (std::size_t i = 0; i < order.size() && i < top; ++i) {
        const plan::PlanTensor &pt = pts[order[i]];
        m.row()
            .cell(static_cast<double>(layout.offsets[order[i]]) / 1e3, 1)
            .cell(static_cast<double>(pt.bytes) / 1e3, 1)
            .cell(pt.first)
            .cell(pt.last)
            .cell(g.tensor(pt.id).name);
    }
    m.print(std::cout);
    if (pts.size() > top)
        std::printf("... %zu more tensors (--top N to widen)\n",
                    pts.size() - top);
    std::printf("layout: footprint %.2f MB, live peak %.2f MB, "
                "fragmentation %.1f%%\n",
                static_cast<double>(layout.footprint) / 1e6,
                static_cast<double>(layout.live_peak) / 1e6,
                layout.fragmentation() * 100.0);
    return 0;
}

int
cmdMaxBatch(const Args &args)
{
    std::string model = args.get("model", "resnet32");
    std::string policy = args.get("policy", "sentinel");
    int mem_mb = args.getInt("mem-mb", 0);
    std::uint64_t dev;
    if (mem_mb > 0) {
        dev = static_cast<std::uint64_t>(mem_mb) << 20;
    } else {
        df::Graph g = models::makeModel(
            model, models::modelSpec(model).small_batch);
        dev = mem::roundUpToPages(g.peakMemoryBytes() / 2);
    }
    int cap = args.getInt("cap", 1024);
    int jobs = args.getInt("jobs", 1);
    int b = harness::maxBatchSearch(model, policy, dev, cap, jobs);
    std::printf("%s with %s on %.1f MB of device memory: max batch %d\n",
                model.c_str(), policy.c_str(),
                static_cast<double>(dev) / 1e6, b);
    return 0;
}

int
cmdProfile(const Args &args)
{
    harness::ExperimentConfig cfg = configFrom(args);
    std::string out = args.get("out", "");
    std::string in = args.get("in", "");

    if (!in.empty()) {
        // Reuse a persisted profile: plan and train without the
        // instrumented step.
        prof::ProfileDatabase db = prof::loadProfile(in);
        df::Graph g = models::makeModel(cfg.model, cfg.batch);
        SENTINEL_ASSERT(db.numTensors() == g.numTensors() &&
                            db.numLayers() == g.numLayers(),
                        "profile '%s' does not match %s at batch %d",
                        in.c_str(), cfg.model.c_str(), cfg.batch);
        std::uint64_t fast = mem::roundUpToPages(
            static_cast<std::uint64_t>(
                static_cast<double>(g.peakMemoryBytes()) *
                cfg.fast_fraction));
        core::RuntimeConfig rc =
            harness::platformConfig(cfg.platform, fast);
        mem::HeterogeneousMemory hm(rc.fast, rc.slow, rc.migration);
        core::SentinelPolicy policy(db, rc.sentinel);
        df::Executor ex(g, hm, rc.exec, policy);
        auto stats = ex.run(cfg.steps);
        std::printf("trained %d steps from persisted profile: %.2f "
                    "ms/step steady (MIL=%d)\n",
                    cfg.steps, toMillis(stats.back().step_time),
                    policy.migrationPlan().mil);
        return 0;
    }

    df::Graph g = models::makeModel(cfg.model, cfg.batch);
    core::RuntimeConfig rc = harness::platformConfig(
        cfg.platform, mem::roundUpToPages(g.peakMemoryBytes() / 5));
    mem::HeterogeneousMemory hm(rc.fast, rc.slow, rc.migration);
    prof::Profiler profiler(rc.profiler);
    auto r = profiler.profile(g, hm, rc.exec);
    std::printf("profiled %s (batch %d): %zu tensors, slowdown %.1fx, "
                "memory overhead %.2f%%\n",
                cfg.model.c_str(), cfg.batch, r.db.numTensors(),
                r.profilingSlowdown(), 100.0 * r.memoryOverhead());
    if (!out.empty()) {
        if (!prof::saveProfile(r.db, out))
            SENTINEL_FATAL("could not write '%s'", out.c_str());
        std::printf("profile written to %s\n", out.c_str());
    }
    return 0;
}

const char *
channelName(sim::ChannelSel ch)
{
    switch (ch) {
      case sim::ChannelSel::Promote:
        return "promote";
      case sim::ChannelSel::Demote:
        return "demote";
      case sim::ChannelSel::Both:
        break;
    }
    return "both";
}

std::string
faultLabel(const sim::FaultEvent &ev)
{
    switch (ev.kind) {
      case sim::FaultKind::BwDegrade:
        return strprintf("bw x%.2g [%s]", ev.factor,
                         channelName(ev.channel));
      case sim::FaultKind::ChannelStall:
        return strprintf("stall %.3gms [%s]", toMillis(ev.duration),
                         channelName(ev.channel));
      case sim::FaultKind::CapacityShrink:
        return strprintf("fast x%.2g", ev.factor);
      case sim::FaultKind::ComputeJitter:
        return strprintf("jitter +-%.0f%%", 100.0 * ev.amplitude);
      case sim::FaultKind::TrafficDrift:
        return strprintf("traffic x%.2g", ev.factor);
    }
    return "?";
}

int
cmdChaos(const Args &args)
{
    harness::ExperimentConfig cfg = configFrom(args);
    if (cfg.chaos.empty())
        cfg.chaos = "bw:step=6,factor=0.4";
    // The report wants the trajectory on both sides of the fault, so
    // the step defaults are wider than run/compare's.
    cfg.steps = args.getInt("steps", 16);
    cfg.warmup = args.getInt("warmup", 10);

    sim::FaultSpec spec = sim::FaultSpec::parse(cfg.chaos);

    std::vector<std::string> policies =
        cfg.platform == harness::Platform::Gpu
            ? std::vector<std::string>{ "sentinel", "um", "swapadvisor" }
            : std::vector<std::string>{ "sentinel", "ial",
                                        "memory-mode" };

    std::vector<harness::StepTrace> traces;
    traces.reserve(policies.size());
    for (const auto &p : policies)
        traces.push_back(harness::runExperimentSteps(cfg, p));

    std::vector<std::string> headers = { "step", "fault" };
    for (const auto &p : policies)
        headers.push_back(p + " (ms)");
    Table t(strprintf("Degradation report (%s, batch %d, chaos '%s', "
                      "seed 0x%llx)",
                      cfg.model.c_str(), cfg.batch, cfg.chaos.c_str(),
                      static_cast<unsigned long long>(cfg.chaos_seed)),
            headers);
    for (int s = 0; s < cfg.steps; ++s) {
        std::string marks;
        for (const auto &ev : spec.events) {
            if (ev.step != s)
                continue;
            if (!marks.empty())
                marks += ", ";
            marks += faultLabel(ev);
        }
        t.row().cell(s).cell(marks);
        for (const auto &tr : traces) {
            if (s < static_cast<int>(tr.steps.size()))
                t.cell(toMillis(tr.steps[s].step_time), 2);
            else
                t.cell(tr.metrics.supported ? "oom" : "n/a");
        }
    }
    t.printWithCsv(std::cout);

    int first_fault = cfg.steps;
    for (const auto &ev : spec.events)
        first_fault = std::min(first_fault, ev.step);
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const auto &steps = traces[i].steps;
        const harness::Metrics &m = traces[i].metrics;
        if (steps.empty()) {
            std::printf("%-12s did not complete (%s)\n",
                        policies[i].c_str(),
                        m.supported ? "infeasible" : "unsupported");
            continue;
        }
        double pre = 0.0;
        if (first_fault > 0 &&
            first_fault <= static_cast<int>(steps.size()))
            pre = toMillis(steps[first_fault - 1].step_time);
        double worst = 0.0;
        for (int s = first_fault;
             s < static_cast<int>(steps.size()); ++s)
            worst = std::max(worst, toMillis(steps[s].step_time));
        double final_ms = toMillis(steps.back().step_time);
        std::printf("%-12s pre-fault %8.2f ms  worst %8.2f ms  final "
                    "%8.2f ms (%.0f%% of pre-fault)",
                    policies[i].c_str(), pre, worst, final_ms,
                    pre > 0.0 ? 100.0 * final_ms / pre : 0.0);
        if (m.mil > 0)
            std::printf("  | divergence=%d replans=%d trial=%s",
                        m.divergence_events, m.replans,
                        m.trial_state.c_str());
        std::printf("\n");
    }
    return 0;
}

int
cmdReplay(const std::string &file, const Args &args)
{
    harness::FuzzCase fc = harness::FuzzCase::load(file);
    int jobs = args.getInt("jobs", 1);
    bool det = args.getInt("determinism", 1) != 0;
    harness::OracleReport rep = fc.run(jobs, det);
    std::printf("%s", rep.summary().c_str());
    return rep.ok() ? 0 : 2;
}

int
cmdServe(const Args &args)
{
    server::ServerConfig cfg;
    cfg.platform = args.get("platform", "cpu") == "gpu"
                       ? harness::Platform::Gpu
                       : harness::Platform::Optane;
    cfg.fast_bytes =
        static_cast<std::uint64_t>(args.getInt("node-mb", 64)) << 20;
    cfg.headroom = args.getDouble("headroom", 1.0);
    cfg.demand_fault_boost = args.getDouble("boost", 2.0);
    cfg.jobs = args.getInt("jobs", 1);
    cfg.default_steps = args.getInt("steps", 12);
    cfg.default_warmup = args.getInt("warmup", 4);

    std::string colo = args.get("colo", "");
    std::vector<server::JobSpec> specs;
    if (!colo.empty()) {
        specs = server::JobSpec::parseList(colo);
    } else {
        int mix = args.getInt("mix", 3);
        std::uint64_t seed = std::strtoull(
            args.get("seed", "1").c_str(), nullptr, 0);
        specs = server::randomColocation(seed, mix);
        std::printf("random co-location (seed %llu):\n",
                    static_cast<unsigned long long>(seed));
        for (const auto &s : specs)
            std::printf("  %s\n", s.toSpecString().c_str());
    }

    if (args.getInt("oracle", 0) != 0) {
        server::ServerOracleOptions opts;
        opts.jobs = cfg.jobs > 1 ? cfg.jobs : 4;
        harness::OracleReport rep =
            server::runServerOracle(cfg, specs, opts);
        std::printf("%s", rep.summary().c_str());
        return rep.ok() ? 0 : 2;
    }

    // The live observability plane: --scrape-out streams deterministic
    // OpenMetrics frames, --listen serves the final exposition over
    // HTTP (for `sentinel-cli top --endpoint` and curl).
    std::string scrape_out = args.get("scrape-out", "");
    bool listen = args.has("listen");
    bool want_obs = !scrape_out.empty() || listen ||
                    args.getInt("obs", 0) != 0;

    server::ScrapeConfig scfg;
    scfg.slo.target_factor = args.getDouble("slo-target", 1.5);
    scfg.slo.error_budget = args.getDouble("slo-budget", 0.1);
    scfg.slo.burn_threshold = args.getDouble("burn-threshold", 2.0);
    scfg.slo.window =
        static_cast<std::size_t>(args.getInt("burn-window", 16));
    scfg.snapshot_every = args.getInt("scrape-every", 4);

    std::optional<telemetry::Session> session;
    telemetry::AuditLog audit;
    std::optional<std::ofstream> snap;
    std::optional<server::ObservabilityPlane> obs;
    if (want_obs) {
        session.emplace();
        if (!scrape_out.empty()) {
            snap.emplace(scrape_out, std::ios::binary);
            if (!*snap)
                SENTINEL_FATAL("could not write '%s'",
                               scrape_out.c_str());
        }
        obs.emplace(scfg, &*session, &audit,
                    snap ? &*snap : nullptr);
        cfg.obs = &*obs;
        cfg.telemetry = &*session;
    }

    server::ServerResult r = server::runServer(cfg, specs);
    std::printf("%s", r.summary().c_str());

    if (obs) {
        std::printf("observability: %llu SLO burn alert(s), %llu "
                    "violation step(s)\n",
                    static_cast<unsigned long long>(obs->alerts()),
                    [&] {
                        unsigned long long v = 0;
                        for (std::size_t j = 0; j < obs->numJobs(); ++j)
                            v += obs->job(j).violations;
                        return v;
                    }());
        if (!scrape_out.empty())
            std::printf("scrape: %d frame(s) written to %s\n",
                        obs->snapshots(), scrape_out.c_str());
    }

    if (listen) {
        server::MetricsHttpServer http;
        if (!http.listen(args.getInt("listen", 0)))
            SENTINEL_FATAL("%s", http.error().c_str());
        int count = args.getInt("listen-count", 0);
        // The body is rendered per request so the endpoint always
        // reflects the (final, settled) plane state.
        std::printf("serving /metrics on http://127.0.0.1:%d%s\n",
                    http.port(),
                    count > 0
                        ? strprintf(" for %d request(s)", count).c_str()
                        : " (ctrl-c to stop)");
        std::fflush(stdout);
        http.serve([&] { return obs->renderString(); }, count);
    }
    return 0;
}

int
cmdTop(const Args &args)
{
    std::string endpoint = args.get("endpoint", "");
    std::string snapshot = args.get("snapshot", "");
    if (endpoint.empty() == snapshot.empty())
        SENTINEL_FATAL(
            "top needs exactly one of --endpoint HOST:PORT or "
            "--snapshot FILE");

    std::string text;
    if (!endpoint.empty()) {
        std::size_t colon = endpoint.rfind(':');
        if (colon == std::string::npos)
            SENTINEL_FATAL("--endpoint wants HOST:PORT, got '%s'",
                           endpoint.c_str());
        std::string host = endpoint.substr(0, colon);
        int port = std::atoi(endpoint.c_str() + colon + 1);
        std::string err;
        if (!server::httpGet(host, port, "/metrics", text, &err))
            SENTINEL_FATAL("scrape failed: %s", err.c_str());
    } else {
        std::ifstream is(snapshot, std::ios::binary);
        if (!is)
            SENTINEL_FATAL("could not read '%s'", snapshot.c_str());
        std::ostringstream buf;
        buf << is.rdbuf();
        text = buf.str();
    }

    // A snapshot file holds a sequence of frames; default to the most
    // recent, --frame K (1-based) rewinds.
    std::vector<std::string> frames =
        telemetry::splitScrapeFrames(text);
    if (frames.empty())
        SENTINEL_FATAL("no OpenMetrics frame found (missing '# EOF')");
    int frame = args.getInt("frame", static_cast<int>(frames.size()));
    if (frame < 1 || frame > static_cast<int>(frames.size()))
        SENTINEL_FATAL("--frame %d out of range (1..%zu)", frame,
                       frames.size());

    std::vector<telemetry::OmSample> samples;
    std::string err;
    if (!telemetry::parseOpenMetrics(
            frames[static_cast<std::size_t>(frame - 1)], samples, &err))
        SENTINEL_FATAL("bad exposition: %s", err.c_str());
    if (frames.size() > 1)
        std::printf("frame %d of %zu\n", frame, frames.size());
    std::printf("%s", server::renderTopFrame(samples).c_str());
    return 0;
}

int
cmdMetricsDiff(const std::string &file_a, const std::string &file_b,
               const Args &args)
{
    double threshold = args.getDouble("threshold", 10.0);
    std::vector<telemetry::MetricRow> a =
        telemetry::loadMetricsDump(file_a);
    std::vector<telemetry::MetricRow> b =
        telemetry::loadMetricsDump(file_b);

    auto pct = [](double from, double to) {
        if (from == 0.0)
            return to == 0.0 ? 0.0 : 100.0;
        return 100.0 * (to - from) / from;
    };

    Table t(strprintf("metrics diff: %s -> %s (threshold %.1f%%)",
                      file_a.c_str(), file_b.c_str(), threshold),
            { "metric", "field", "a", "b", "change_pct", "flag" });
    int flagged = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        // Both dumps are name-sorted: a linear merge finds adds,
        // drops, and common rows in one pass.
        if (j >= b.size() || (i < a.size() && a[i].name < b[j].name)) {
            t.row().cell(a[i].name).cell("-").cell("present").cell(
                "missing");
            t.cell("-").cell("REMOVED");
            ++flagged;
            ++i;
            continue;
        }
        if (i >= a.size() || b[j].name < a[i].name) {
            t.row().cell(b[j].name).cell("-").cell("missing").cell(
                "present");
            t.cell("-").cell("ADDED");
            ++flagged;
            ++j;
            continue;
        }
        const telemetry::MetricRow &ra = a[i];
        const telemetry::MetricRow &rb = b[j];
        struct Field {
            const char *name;
            std::uint64_t va, vb;
        } fields[] = {
            { "count", ra.count, rb.count }, { "sum", ra.sum, rb.sum },
            { "p50", ra.p50, rb.p50 },       { "p99", ra.p99, rb.p99 },
            { "max", ra.max, rb.max },
        };
        for (const Field &f : fields) {
            double change = pct(static_cast<double>(f.va),
                                static_cast<double>(f.vb));
            bool over = change > threshold || change < -threshold;
            if (f.va == f.vb && !over)
                continue; // identical fields stay out of the report
            t.row()
                .cell(ra.name)
                .cell(f.name)
                .cell(f.va)
                .cell(f.vb)
                .cell(change, 1)
                .cell(over ? "OVER" : "");
            if (over)
                ++flagged;
        }
        ++i;
        ++j;
    }
    if (t.numRows() == 0) {
        std::printf("no differences (%zu metrics compared)\n",
                    a.size());
        return 0;
    }
    t.print(std::cout);
    std::printf("%d flagged difference(s)%s\n", flagged,
                flagged ? "" : " above threshold");
    return flagged ? 2 : 0;
}

int
cmdModels()
{
    Table t("Model zoo", { "name", "small batch", "large batch",
                           "layers", "peak (small batch)" });
    for (const auto &spec : models::modelZoo()) {
        df::Graph g = models::makeModel(spec.name, spec.small_batch);
        t.row()
            .cell(spec.name)
            .cell(spec.small_batch)
            .cell(spec.large_batch)
            .cell(g.numLayers())
            .cell(formatBytes(
                static_cast<double>(g.peakMemoryBytes())));
    }
    t.print(std::cout);
    return 0;
}

void
usage()
{
    std::printf(
        "sentinel-cli <command> [--key value | --key=value ...]\n\n"
        "commands:\n"
        "  run       --model M --batch N --policy P [--platform "
        "cpu|gpu]\n"
        "            [--fraction F | --mem-mb M] [--steps S] [--mil K]\n"
        "            [--planner greedy|interval] (sentinel co-alloc "
        "solver)\n"
        "            [--tiers N] [--mid-capacity MB] [--mid-bw GB/s]\n"
        "            (N-tier chain; 3+ inserts middle tiers between\n"
        "             fast and slow, staged-prefetch path)\n"
        "            [--trace-out FILE.json] [--metrics-out FILE.csv]\n"
        "            (run is the default command when the first arg\n"
        "             starts with --)\n"
        "  report    stall attribution + decision audit for one run:\n"
        "            per-interval breakdown, top stall offenders with\n"
        "            the policy decision that caused each, exactness\n"
        "            check against StepStats  [--top K] [--jobs N]\n"
        "            [--tensor ID] [--report-out FILE.json]\n"
        "            [--trace-out FILE.json]\n"
        "  compare   same options; runs every policy of the platform\n"
        "            [--jobs N] fans the policies out over N threads\n"
        "  plan      print the interval planner's candidate table plus\n"
        "            the offline offset map of the long-lived tensors\n"
        "            (footprint / live peak / fragmentation)\n"
        "            [--solver greedy|exhaustive] [--top N]\n"
        "  maxbatch  --model M --policy P [--mem-mb M] [--cap N]\n"
        "            [--jobs N] probes the batch ladder in parallel\n"
        "  profile   --model M --batch N [--out FILE | --in FILE]\n"
        "  chaos     fault-injection degradation report: sentinel vs.\n"
        "            the platform baselines under --chaos SPEC, with\n"
        "            the per-step time trajectory around each fault\n"
        "  replay    FILE.sentinelrepro [--jobs N] [--determinism 0|1]\n"
        "            replay a fuzz case through the cross-policy\n"
        "            differential oracle; exit 0 when every invariant\n"
        "            holds, 2 on violations, 1 on a rejected config\n"
        "  serve     co-locate jobs on one simulated HM node:\n"
        "            --colo 'model=M quota=F [prio=K] [arrival-ms=T]\n"
        "                    [policy=P] [batch=B] [chaos=SPEC]; ...'\n"
        "            or --mix N --seed S for a random co-location\n"
        "            [--node-mb M] [--platform cpu|gpu] [--jobs N]\n"
        "            [--steps S] [--warmup W] [--headroom F]\n"
        "            [--boost F]; --oracle 1 re-verifies the run's\n"
        "            invariants instead (exit 2 on violations)\n"
        "            observability: [--scrape-out FILE]\n"
        "            [--scrape-every N] [--slo-target F]\n"
        "            [--slo-budget F] [--burn-threshold F]\n"
        "            [--burn-window N] [--listen PORT (0=ephemeral)]\n"
        "            [--listen-count N (0=forever)] [--obs 1]\n"
        "  top       --endpoint HOST:PORT | --snapshot FILE "
        "[--frame K]\n"
        "            render one per-job scrape frame as a table\n"
        "  metrics-diff A B [--threshold PCT]  compare two metrics\n"
        "            dumps (JSON or CSV); exit 2 when any field moved\n"
        "            more than PCT percent or a metric was added or\n"
        "            removed\n"
        "  models    list the model zoo\n\n"
        "fault injection: --chaos SPEC (and --chaos-seed N) perturb the\n"
        "training run of any command, e.g.\n"
        "  --chaos 'bw:step=6,factor=0.5;stall:step=8,ms=2'\n"
        "clauses: bw:step=,factor=[,ch=promote|demote|both]\n"
        "         stall:step=,ms=|us=[,ch=...]\n"
        "         shrink:step=,factor=[,tier=T]\n"
        "         jitter:step=,amp=              drift:step=,factor=\n\n"
        "telemetry: --trace-out writes a Chrome-trace JSON (load it in\n"
        "chrome://tracing or https://ui.perfetto.dev); --metrics-out\n"
        "writes counters/histograms as CSV (.csv) or JSON.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    try {
        // "sentinel-cli --model resnet32 --trace-out=step.json" is
        // shorthand for the run command.
        if (cmd.rfind("--", 0) == 0) {
            Args args(argc, argv, 1);
            return cmdRun(args);
        }
        if (cmd == "metrics-diff") {
            // Two positional dump files, then --key value options.
            if (argc < 4 || std::string(argv[2]).rfind("--", 0) == 0 ||
                std::string(argv[3]).rfind("--", 0) == 0)
                SENTINEL_FATAL(
                    "metrics-diff needs two dump files: "
                    "sentinel-cli metrics-diff a.json b.json");
            Args dargs(argc, argv, 4);
            return cmdMetricsDiff(argv[2], argv[3], dargs);
        }
        if (cmd == "replay") {
            // The file rides as the first positional operand
            // (replay FILE [--jobs N]) or as --file FILE.
            if (argc >= 3 && std::string(argv[2]).rfind("--", 0) != 0) {
                Args rargs(argc, argv, 3);
                return cmdReplay(argv[2], rargs);
            }
            Args rargs(argc, argv, 2);
            std::string file = rargs.get("file", "");
            if (file.empty())
                SENTINEL_FATAL("replay needs a .sentinelrepro file");
            return cmdReplay(file, rargs);
        }
        Args args(argc, argv, 2);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "report")
            return cmdReport(args);
        if (cmd == "compare")
            return cmdCompare(args);
        if (cmd == "plan")
            return cmdPlan(args);
        if (cmd == "maxbatch")
            return cmdMaxBatch(args);
        if (cmd == "profile")
            return cmdProfile(args);
        if (cmd == "chaos")
            return cmdChaos(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "top")
            return cmdTop(args);
        if (cmd == "models")
            return cmdModels();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    usage();
    return 1;
}
