/**
 * @file
 * The heterogeneous memory system facade.
 *
 * Combines an ordered chain of MemoryTiers (fastest first), a
 * PageTable, and a migration engine of per-link serialized DMA channel
 * pairs: link i connects tiers i and i+1 with an "up" channel (toward
 * fast) and a "down" channel (toward slow), mirroring the paper's two
 * migration helper threads per link that run in parallel with
 * training.  The classic configuration is a two-tier chain with a
 * single link whose channels keep their historical names "promote" and
 * "demote".  All policies and the Sentinel runtime talk to memory
 * exclusively through this class.
 *
 * Capacity protocol: a migration reserves destination-tier space when
 * it is scheduled and releases source-tier space when it completes
 * (lazily committed as simulated time advances), so fast-memory
 * occupancy is never under-counted.  A transfer that crosses several
 * links streams store-and-forward — each leg queues on its own channel
 * and the page "arrives" when the final leg completes; intermediate
 * tiers are not occupied.
 */

#ifndef SENTINEL_MEM_HM_HH
#define SENTINEL_MEM_HM_HH

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/units.hh"
#include "mem/page.hh"
#include "mem/page_table.hh"
#include "mem/tier.hh"
#include "sim/bandwidth_channel.hh"
#include "telemetry/attribution.hh"
#include "telemetry/session.hh"

namespace sentinel::mem {

/** Migration link description. */
struct MigrationParams {
    double promote_bw = 0.0;  ///< toward-fast bytes/second
    double demote_bw = 0.0;   ///< toward-slow bytes/second
    Tick startup = 0;         ///< per-transfer setup (syscall / launch)
};

/** Aggregate counters exposed for tables and figures. */
struct HmStats {
    std::uint64_t promoted_bytes = 0;
    std::uint64_t demoted_bytes = 0;
    std::uint64_t promoted_pages = 0;
    std::uint64_t demoted_pages = 0;
};

class HeterogeneousMemory
{
  public:
    /** Legacy two-tier constructor; delegates to the chain form. */
    HeterogeneousMemory(TierParams fast, TierParams slow,
                        MigrationParams migration,
                        PageTable::Backend backend =
                            PageTable::defaultBackend());

    /**
     * N-tier chain constructor.  @p tiers is ordered fastest-first;
     * @p links[i] connects tiers i and i+1 (so links.size() must be
     * tiers.size() - 1).  A single-tier chain has no links and never
     * migrates.
     */
    HeterogeneousMemory(std::vector<TierParams> tiers,
                        std::vector<MigrationParams> links,
                        PageTable::Backend backend =
                            PageTable::defaultBackend());

    // --- Topology ------------------------------------------------------

    unsigned numTiers() const { return static_cast<unsigned>(tiers_.size()); }
    unsigned numLinks() const { return static_cast<unsigned>(links_.size()); }

    /** The last (slowest) tier of the chain. */
    Tier slowestTier() const { return makeTier(numTiers() - 1); }

    // --- Mapping -------------------------------------------------------

    /** Map @p page into @p tier; @return false if the tier is full. */
    bool tryMapPage(PageId page, Tier tier);

    /**
     * Map @p page into @p preferred, falling back to the next slower
     * tiers in order and finally back toward the faster ones if all
     * slower tiers are full.  A completely full system is a
     * configuration error (fatal).
     *
     * @return the tier actually used.
     */
    Tier mapPage(PageId page, Tier preferred);

    /**
     * Map [first, first+count) into @p preferred, spilling the suffix
     * tier-by-tier in the same fallback order as mapPage() — exactly
     * page-for-page what a mapPage() loop would do, but with one
     * reservation per tier.  Fatal if the whole chain runs out.
     */
    void mapRange(PageId first, std::uint64_t count, Tier preferred);

    /** Unmap @p page, releasing its space (commits arrivals first). */
    void unmapPage(PageId page, Tick now);

    /**
     * Unmap [first, first+count), cancelling in-flight migrations and
     * releasing the whole range's space with one release per tier.
     */
    void unmapRange(PageId first, std::uint64_t count, Tick now);

    bool isMapped(PageId page) const { return table_.isMapped(page); }

    // --- Residency -----------------------------------------------------

    /**
     * Tier where @p page's data can be read at time @p now.  A page in
     * flight is served from its source tier.
     */
    Tier residentTier(PageId page, Tick now);

    /** True if @p page has a migration still in flight at @p now. */
    bool inFlight(PageId page, Tick now);

    /**
     * Longest prefix of [first, first+count) whose pages share one
     * (tier, in_flight) state at @p now — the executor's extent walk.
     */
    PageRunState residentRange(PageId first, std::uint64_t count, Tick now);

    /** True if any page of [first, first+count) is migrating at @p now. */
    bool inFlightAny(PageId first, std::uint64_t count, Tick now);

    /** Arrival time of the in-flight migration (page must be in flight). */
    Tick arrivalTime(PageId page) const;

    /** Direction and final-leg link of an in-flight page's migration. */
    struct FlightInfo {
        bool toward_fast = false;
        unsigned link = 0; ///< link whose completion the page waits on
    };
    FlightInfo flightInfo(PageId page) const;

    // --- Migration -----------------------------------------------------

    /**
     * Schedule moving @p page to @p dst, starting no earlier than
     * @p ready.  Transfers that cross several links stream
     * store-and-forward, each leg on its own channel.
     *
     * @return the completion tick, or -1 if the destination is full or
     *         the page is already at/moving to @p dst.
     */
    Tick migratePage(PageId page, Tier dst, Tick ready);

    /**
     * Migrate a batch as ONE transfer (a single move_pages() call /
     * one cudaMemPrefetchAsync): the per-transfer setup cost is paid
     * once per channel, not per page.  Pages already at/moving to
     * @p dst are skipped; migration stops early if the destination
     * fills.
     *
     * @return the number of pages whose migration was scheduled.
     */
    std::size_t migratePages(std::span<const PageId> pages, Tier dst,
                             Tick ready);

    /**
     * Instantly remap @p page into @p dst WITHOUT a data transfer —
     * the memory-system equivalent of discarding the contents and
     * rematerializing them later (Capuchin-style recomputation frees
     * device memory with no traffic; the replayed producer writes the
     * new copy).
     *
     * @return false if @p dst has no space (nothing changes).
     */
    bool teleportPage(PageId page, Tier dst, Tick now);

    /**
     * Apply every migration completion with arrival <= @p now.  Called
     * from every residency query, so the common no-op case (nothing
     * pending, or nothing due yet) is a single inline comparison
     * against the cached earliest arrival.
     */
    void
    commitUpTo(Tick now)
    {
        if (now < next_arrival_)
            return;
        drainArrivals(now);
    }

    /** Idle time of link 0's toward-fast / toward-slow channel (a
     *  single-tier chain has no links and is never busy). */
    Tick
    promoteBusyUntil() const
    {
        return links_.empty() ? 0 : links_[0].up.busyUntil();
    }
    Tick
    demoteBusyUntil() const
    {
        return links_.empty() ? 0 : links_[0].down.busyUntil();
    }

    // --- Introspection --------------------------------------------------

    const TierParams &tierParams(Tier t) const;
    MemoryTier &tier(Tier t) { return tiers_[tierIndex(t)]; }
    const MemoryTier &tier(Tier t) const { return tiers_[tierIndex(t)]; }

    const HmStats &stats() const { return stats_; }
    /** Link 0's channels.  A single-tier chain has no links; policies
     *  still read bandwidths for planning, so these return an idle
     *  placeholder channel there. */
    const sim::BandwidthChannel &
    promoteChannel() const
    {
        return links_.empty() ? nullChannel() : links_[0].up;
    }
    const sim::BandwidthChannel &
    demoteChannel() const
    {
        return links_.empty() ? nullChannel() : links_[0].down;
    }

    /** Channel of @p link in the given direction. */
    const sim::BandwidthChannel &
    linkChannel(unsigned link, bool toward_fast) const
    {
        return toward_fast ? links_[link].up : links_[link].down;
    }

    /**
     * Attach a telemetry session (null detaches).  Every scheduled
     * migration batch then emits one Promotion/Demotion event and
     * updates the per-direction byte counters; disabled telemetry is a
     * single null check on the migration paths.
     */
    void setTelemetry(telemetry::Session *session);

    /**
     * Attach a stall-attribution engine (null detaches; independent of
     * the telemetry session).  Every scheduled migration reports its
     * per-link legs, direction, and volume so per-layer / per-interval
     * / per-link migration bytes accrue in the attribution buckets.
     */
    void setAttribution(telemetry::AttributionEngine *attr) { attr_ = attr; }

    // --- Fault injection -------------------------------------------------
    //
    // All scales are ABSOLUTE multipliers on the construction-time
    // baseline (captured once), so re-applying the same scale every
    // step is idempotent rather than compounding.

    /** Re-rate every link's channels relative to their baselines. */
    void setMigrationBandwidthScale(double promote, double demote);

    /** Scale the fast tier's capacity relative to its baseline. */
    void setFastCapacityScale(double scale) { setTierCapacityScale(0, scale); }

    /**
     * Scale any tier's capacity relative to its construction-time
     * baseline (chaos `shrink` faults; a co-tenant claiming memory on
     * that tier).  Capacity is kept page-granular, and shrinking below
     * current usage is legal on every tier — resident pages stay, new
     * reservations fail until usage drains.
     */
    void setTierCapacityScale(unsigned tier_idx, double scale);

    /** Block every link's channels for the durations starting @p now. */
    void stallMigration(Tick now, Tick promote_for, Tick demote_for);

    /** Clear pages, reservations, channels and stats. */
    void reset();

  private:
    /** One link of the chain: tier i <-> tier i+1. */
    struct Link {
        sim::BandwidthChannel up;   ///< tier i+1 -> tier i (toward fast)
        sim::BandwidthChannel down; ///< tier i -> tier i+1 (toward slow)
        double base_up_bw = 0.0;
        double base_down_bw = 0.0;
    };

    void noteMigrationEvent(bool promote, Tick ready, Tick arrival,
                            std::uint64_t bytes, std::uint32_t first_page);

    /** Idle placeholder channel for link queries on linkless chains. */
    static const sim::BandwidthChannel &nullChannel();

    /**
     * Queue one page through every leg from @p src to @p dst,
     * store-and-forward.  Each channel's per-transfer startup is paid
     * by the first page of the batch to touch it; @p startup_paid is
     * the per-batch bitmask of channels already charged (bit
     * 2*link + direction).
     */
    Tick submitLegs(unsigned src, unsigned dst, Tick ready,
                    std::uint32_t &startup_paid);

    static constexpr Tick kNoArrival = std::numeric_limits<Tick>::max();

    /**
     * One scheduled migratePages() batch: the pages in submit order
     * with their individual arrival ticks and source-tier indices.
     * Page k of the batch holds migration sequence seq0 + k
     * (beginMigration() numbers them consecutively inside the
     * scheduling loop), so the commit loop never stores per-page
     * sequence numbers.  The pending set is a binary min-heap of
     * batches keyed by each batch's next uncommitted arrival — one
     * heap node per *batch* instead of per page.
     */
    struct PendingBatch {
        Tick next_arrival = 0;   ///< arrival of pages[cursor]
        std::uint64_t seq0 = 0;  ///< migration seq of pages[0]
        std::uint32_t cursor = 0;
        Tier dst = Tier::Fast;
        std::vector<std::pair<PageId, Tick>> pages; ///< (page, arrival)
        std::vector<std::uint8_t> src; ///< source tier index per page
    };
    struct BatchLater {
        bool
        operator()(const PendingBatch &a, const PendingBatch &b) const
        {
            return a.next_arrival > b.next_arrival;
        }
    };

    /** Out-of-line slow path of commitUpTo(). */
    void drainArrivals(Tick now);
    /** Push @p b onto the pending heap and refresh next_arrival_. */
    void pushBatch(PendingBatch &&b);
    /** Pooled batch for the next schedule (reused, no allocation in
     *  steady state); pages/src buffers come back cleared. */
    PendingBatch takeBatch();

    std::vector<MemoryTier> tiers_; ///< fastest-first chain
    std::vector<Link> links_;       ///< links_[i]: tiers i <-> i+1
    std::vector<std::uint64_t> base_capacity_; ///< per tier
    PageTable table_;
    std::vector<PendingBatch> pending_; ///< min-heap (BatchLater)
    std::vector<PendingBatch> batch_pool_;
    Tick next_arrival_ = kNoArrival; ///< pending_ top's key (cached)
    HmStats stats_;

    telemetry::Session *telemetry_ = nullptr;
    telemetry::AttributionEngine *attr_ = nullptr;
    telemetry::Counter *promoted_ctr_ = nullptr;
    telemetry::Counter *demoted_ctr_ = nullptr;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_HM_HH
