#include "mem/hm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::mem {

HeterogeneousMemory::HeterogeneousMemory(TierParams fast, TierParams slow,
                                         MigrationParams migration,
                                         PageTable::Backend backend)
    : fast_(std::move(fast)), slow_(std::move(slow)),
      promote_("promote", migration.promote_bw, migration.startup),
      demote_("demote", migration.demote_bw, migration.startup),
      base_promote_bw_(migration.promote_bw),
      base_demote_bw_(migration.demote_bw),
      base_fast_capacity_(fast_.capacity()), table_(backend)
{
}

bool
HeterogeneousMemory::tryMapPage(PageId page, Tier t)
{
    if (!tier(t).tryReserve(kPageSize))
        return false;
    table_.map(page, t);
    return true;
}

Tier
HeterogeneousMemory::mapPage(PageId page, Tier preferred)
{
    if (tryMapPage(page, preferred))
        return preferred;
    Tier fallback = otherTier(preferred);
    if (tryMapPage(page, fallback))
        return fallback;
    SENTINEL_FATAL("out of memory: both tiers full mapping page %llu "
                   "(fast %llu/%llu, slow %llu/%llu)",
                   static_cast<unsigned long long>(page),
                   static_cast<unsigned long long>(fast_.used()),
                   static_cast<unsigned long long>(fast_.capacity()),
                   static_cast<unsigned long long>(slow_.used()),
                   static_cast<unsigned long long>(slow_.capacity()));
}

void
HeterogeneousMemory::mapRange(PageId first, std::uint64_t count,
                              Tier preferred)
{
    if (count == 0)
        return;
    // How many leading pages fit in the preferred tier; the rest spill
    // to the fallback, exactly as a per-page mapPage() loop would place
    // them (preferred fills first, then every later page falls back).
    std::uint64_t n_pref =
        std::min<std::uint64_t>(count, tier(preferred).free() / kPageSize);
    if (n_pref > 0) {
        bool ok = tier(preferred).tryReserve(n_pref * kPageSize);
        SENTINEL_ASSERT(ok, "range reservation failed");
        table_.mapRange(first, n_pref, preferred);
    }
    std::uint64_t rest = count - n_pref;
    if (rest > 0) {
        Tier fallback = otherTier(preferred);
        if (!tier(fallback).tryReserve(rest * kPageSize))
            SENTINEL_FATAL(
                "out of memory: both tiers full mapping %llu pages at %llu "
                "(fast %llu/%llu, slow %llu/%llu)",
                static_cast<unsigned long long>(rest),
                static_cast<unsigned long long>(first + n_pref),
                static_cast<unsigned long long>(fast_.used()),
                static_cast<unsigned long long>(fast_.capacity()),
                static_cast<unsigned long long>(slow_.used()),
                static_cast<unsigned long long>(slow_.capacity()));
        table_.mapRange(first + n_pref, rest, fallback);
    }
}

void
HeterogeneousMemory::unmapPage(PageId page, Tick now)
{
    commitUpTo(now);
    const PageEntry &e = table_.entry(page);
    if (e.in_flight) {
        // Freed before the transfer landed: drop the destination
        // reservation and leave the page at its source for release.
        tier(e.dest).release(kPageSize);
        table_.cancelMigration(page);
    }
    tier(table_.entry(page).tier).release(kPageSize);
    table_.unmap(page);
}

void
HeterogeneousMemory::unmapRange(PageId first, std::uint64_t count, Tick now)
{
    commitUpTo(now);
    std::uint64_t fast_pages = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        PageId p = first + i;
        const PageEntry &e = table_.entry(p);
        if (e.in_flight) {
            tier(e.dest).release(kPageSize);
            table_.cancelMigration(p);
        }
        if (e.tier == Tier::Fast)
            ++fast_pages;
    }
    if (fast_pages > 0)
        fast_.release(fast_pages * kPageSize);
    if (count - fast_pages > 0)
        slow_.release((count - fast_pages) * kPageSize);
    table_.unmapRange(first, count);
}

Tier
HeterogeneousMemory::residentTier(PageId page, Tick now)
{
    commitUpTo(now);
    return table_.entry(page).tier;
}

bool
HeterogeneousMemory::inFlight(PageId page, Tick now)
{
    commitUpTo(now);
    return table_.entry(page).in_flight;
}

PageRunState
HeterogeneousMemory::residentRange(PageId first, std::uint64_t count,
                                   Tick now)
{
    commitUpTo(now);
    return table_.runState(first, count);
}

bool
HeterogeneousMemory::inFlightAny(PageId first, std::uint64_t count, Tick now)
{
    commitUpTo(now);
    return table_.anyInFlight(first, count);
}

Tick
HeterogeneousMemory::arrivalTime(PageId page) const
{
    const PageEntry &e = table_.entry(page);
    SENTINEL_ASSERT(e.in_flight, "arrivalTime() of non-migrating page");
    return e.arrival;
}

Tick
HeterogeneousMemory::migratePage(PageId page, Tier dst, Tick ready)
{
    commitUpTo(ready);
    const PageEntry &e = table_.entry(page);
    if (e.in_flight || e.tier == dst)
        return -1;
    if (!tier(dst).tryReserve(kPageSize))
        return -1;

    sim::BandwidthChannel &ch = dst == Tier::Fast ? promote_ : demote_;
    Tick arrival = ch.submit(ready, kPageSize);
    std::uint64_t seq = table_.beginMigration(page, dst, arrival);
    pending_.push(Pending{arrival, page, seq, dst});

    if (dst == Tier::Fast) {
        stats_.promoted_bytes += kPageSize;
        stats_.promoted_pages += 1;
    } else {
        stats_.demoted_bytes += kPageSize;
        stats_.demoted_pages += 1;
    }
    if (telemetry_)
        noteMigration(dst, ready, arrival, kPageSize,
                      static_cast<std::uint32_t>(page));
    if (attr_)
        attr_->noteMigration(dst == Tier::Fast, kPageSize);
    return arrival;
}

std::size_t
HeterogeneousMemory::migratePages(std::span<const PageId> pages, Tier dst,
                                  Tick ready)
{
    commitUpTo(ready);
    sim::BandwidthChannel &ch = dst == Tier::Fast ? promote_ : demote_;
    std::size_t scheduled = 0;
    Tick last_arrival = ready;
    std::uint32_t first_page = 0;
    for (PageId page : pages) {
        const PageEntry &e = table_.entry(page);
        if (e.in_flight || e.tier == dst)
            continue;
        if (!tier(dst).tryReserve(kPageSize))
            break; // destination full; caller retries later

        // First page of the batch pays the setup cost; the rest stream.
        Tick arrival = scheduled == 0
                           ? ch.submit(ready, kPageSize)
                           : ch.submitWithStartup(ready, kPageSize, 0);
        std::uint64_t seq = table_.beginMigration(page, dst, arrival);
        pending_.push(Pending{ arrival, page, seq, dst });
        if (scheduled == 0)
            first_page = static_cast<std::uint32_t>(page);
        last_arrival = arrival;
        ++scheduled;

        if (dst == Tier::Fast) {
            stats_.promoted_bytes += kPageSize;
            stats_.promoted_pages += 1;
        } else {
            stats_.demoted_bytes += kPageSize;
            stats_.demoted_pages += 1;
        }
    }
    // One event per batch (matching the one-transfer cost model), not
    // per page — keeps the ring proportional to decisions, not volume.
    if (telemetry_ && scheduled > 0)
        noteMigration(dst, ready, last_arrival, scheduled * kPageSize,
                      first_page);
    if (attr_ && scheduled > 0)
        attr_->noteMigration(dst == Tier::Fast, scheduled * kPageSize);
    return scheduled;
}

void
HeterogeneousMemory::noteMigration(Tier dst, Tick ready, Tick arrival,
                                   std::uint64_t bytes,
                                   std::uint32_t first_page)
{
    if (dst == Tier::Fast) {
        telemetry_->emit(telemetry::EventType::Promotion, ready,
                         arrival - ready, bytes, first_page);
        promoted_ctr_->add(bytes);
    } else {
        telemetry_->emit(telemetry::EventType::Demotion, ready,
                         arrival - ready, bytes, first_page);
        demoted_ctr_->add(bytes);
    }
}

void
HeterogeneousMemory::setTelemetry(telemetry::Session *session)
{
    telemetry_ = session;
    if (session) {
        promoted_ctr_ = &session->metrics().counter("mem.promoted_bytes");
        demoted_ctr_ = &session->metrics().counter("mem.demoted_bytes");
    } else {
        promoted_ctr_ = nullptr;
        demoted_ctr_ = nullptr;
    }
}

void
HeterogeneousMemory::setMigrationBandwidthScale(double promote, double demote)
{
    SENTINEL_ASSERT(promote > 0.0 && demote > 0.0,
                    "bandwidth scales must be positive");
    promote_.setBandwidth(base_promote_bw_ * promote);
    demote_.setBandwidth(base_demote_bw_ * demote);
}

void
HeterogeneousMemory::setFastCapacityScale(double scale)
{
    SENTINEL_ASSERT(scale > 0.0, "capacity scale must be positive");
    std::uint64_t cap = static_cast<std::uint64_t>(
        static_cast<double>(base_fast_capacity_) * scale);
    // Keep whole pages so reservation arithmetic stays page-granular.
    fast_.setCapacity(cap / kPageSize * kPageSize);
}

void
HeterogeneousMemory::stallMigration(Tick now, Tick promote_for,
                                    Tick demote_for)
{
    if (promote_for > 0)
        promote_.blockUntil(now + promote_for);
    if (demote_for > 0)
        demote_.blockUntil(now + demote_for);
}

bool
HeterogeneousMemory::teleportPage(PageId page, Tier dst, Tick now)
{
    commitUpTo(now);
    const PageEntry &e = table_.entry(page);
    if (e.in_flight)
        return false; // let the transfer land first
    if (e.tier == dst)
        return true;
    if (!tier(dst).tryReserve(kPageSize))
        return false;
    Tier src = e.tier;
    // Instant flip: begin+commit with an immediate arrival.
    std::uint64_t seq = table_.beginMigration(page, dst, now);
    bool ok = table_.commitMigration(page, seq);
    SENTINEL_ASSERT(ok, "teleport commit failed");
    tier(src).release(kPageSize);
    return true;
}

void
HeterogeneousMemory::commitUpTo(Tick now)
{
    while (!pending_.empty() && pending_.top().arrival <= now) {
        Pending p = pending_.top();
        pending_.pop();
        if (table_.commitMigration(p.page, p.seq)) {
            // Page now lives at p.dst; free its old home.
            tier(otherTier(p.dst)).release(kPageSize);
        }
        // A failed commit means the page was freed or the migration was
        // cancelled; unmapPage()/cancel paths already released the
        // destination reservation in that case.
    }
}

const TierParams &
HeterogeneousMemory::tierParams(Tier t) const
{
    return tier(t).params();
}

void
HeterogeneousMemory::reset()
{
    fast_.reset();
    slow_.reset();
    promote_.reset();
    demote_.reset();
    table_.clear();
    pending_ = {};
    stats_ = HmStats{};
}

} // namespace sentinel::mem
