#include "mem/hm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::mem {

HeterogeneousMemory::HeterogeneousMemory(TierParams fast, TierParams slow,
                                         MigrationParams migration,
                                         PageTable::Backend backend)
    : fast_(std::move(fast)), slow_(std::move(slow)),
      promote_("promote", migration.promote_bw, migration.startup),
      demote_("demote", migration.demote_bw, migration.startup),
      base_promote_bw_(migration.promote_bw),
      base_demote_bw_(migration.demote_bw),
      base_fast_capacity_(fast_.capacity()), table_(backend)
{
}

bool
HeterogeneousMemory::tryMapPage(PageId page, Tier t)
{
    if (!tier(t).tryReserve(kPageSize))
        return false;
    table_.map(page, t);
    return true;
}

Tier
HeterogeneousMemory::mapPage(PageId page, Tier preferred)
{
    if (tryMapPage(page, preferred))
        return preferred;
    Tier fallback = otherTier(preferred);
    if (tryMapPage(page, fallback))
        return fallback;
    SENTINEL_FATAL("out of memory: both tiers full mapping page %llu "
                   "(fast %llu/%llu, slow %llu/%llu)",
                   static_cast<unsigned long long>(page),
                   static_cast<unsigned long long>(fast_.used()),
                   static_cast<unsigned long long>(fast_.capacity()),
                   static_cast<unsigned long long>(slow_.used()),
                   static_cast<unsigned long long>(slow_.capacity()));
}

void
HeterogeneousMemory::mapRange(PageId first, std::uint64_t count,
                              Tier preferred)
{
    if (count == 0)
        return;
    // How many leading pages fit in the preferred tier; the rest spill
    // to the fallback, exactly as a per-page mapPage() loop would place
    // them (preferred fills first, then every later page falls back).
    std::uint64_t n_pref =
        std::min<std::uint64_t>(count, tier(preferred).free() / kPageSize);
    if (n_pref > 0) {
        bool ok = tier(preferred).tryReserve(n_pref * kPageSize);
        SENTINEL_ASSERT(ok, "range reservation failed");
        table_.mapRange(first, n_pref, preferred);
    }
    std::uint64_t rest = count - n_pref;
    if (rest > 0) {
        Tier fallback = otherTier(preferred);
        if (!tier(fallback).tryReserve(rest * kPageSize))
            SENTINEL_FATAL(
                "out of memory: both tiers full mapping %llu pages at %llu "
                "(fast %llu/%llu, slow %llu/%llu)",
                static_cast<unsigned long long>(rest),
                static_cast<unsigned long long>(first + n_pref),
                static_cast<unsigned long long>(fast_.used()),
                static_cast<unsigned long long>(fast_.capacity()),
                static_cast<unsigned long long>(slow_.used()),
                static_cast<unsigned long long>(slow_.capacity()));
        table_.mapRange(first + n_pref, rest, fallback);
    }
}

void
HeterogeneousMemory::unmapPage(PageId page, Tick now)
{
    commitUpTo(now);
    const PageEntry &e = table_.entry(page);
    if (e.in_flight) {
        // Freed before the transfer landed: drop the destination
        // reservation and leave the page at its source for release.
        tier(e.dest).release(kPageSize);
        table_.cancelMigration(page);
    }
    tier(table_.entry(page).tier).release(kPageSize);
    table_.unmap(page);
}

void
HeterogeneousMemory::unmapRange(PageId first, std::uint64_t count, Tick now)
{
    commitUpTo(now);
    std::uint64_t fast_pages = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        PageId p = first + i;
        const PageEntry &e = table_.entry(p);
        if (e.in_flight) {
            tier(e.dest).release(kPageSize);
            table_.cancelMigration(p);
        }
        if (e.tier == Tier::Fast)
            ++fast_pages;
    }
    if (fast_pages > 0)
        fast_.release(fast_pages * kPageSize);
    if (count - fast_pages > 0)
        slow_.release((count - fast_pages) * kPageSize);
    table_.unmapRange(first, count);
}

Tier
HeterogeneousMemory::residentTier(PageId page, Tick now)
{
    commitUpTo(now);
    return table_.entry(page).tier;
}

bool
HeterogeneousMemory::inFlight(PageId page, Tick now)
{
    commitUpTo(now);
    return table_.entry(page).in_flight;
}

PageRunState
HeterogeneousMemory::residentRange(PageId first, std::uint64_t count,
                                   Tick now)
{
    commitUpTo(now);
    return table_.runState(first, count);
}

bool
HeterogeneousMemory::inFlightAny(PageId first, std::uint64_t count, Tick now)
{
    commitUpTo(now);
    return table_.anyInFlight(first, count);
}

Tick
HeterogeneousMemory::arrivalTime(PageId page) const
{
    const PageEntry &e = table_.entry(page);
    SENTINEL_ASSERT(e.in_flight, "arrivalTime() of non-migrating page");
    return e.arrival;
}

std::vector<std::pair<PageId, Tick>>
HeterogeneousMemory::takeBatchBuffer()
{
    if (batch_pool_.empty())
        return {};
    std::vector<std::pair<PageId, Tick>> buf =
        std::move(batch_pool_.back());
    batch_pool_.pop_back();
    buf.clear();
    return buf;
}

void
HeterogeneousMemory::pushBatch(PendingBatch &&b)
{
    b.next_arrival = b.pages.front().second;
    pending_.push_back(std::move(b));
    std::push_heap(pending_.begin(), pending_.end(), BatchLater{});
    next_arrival_ = pending_.front().next_arrival;
}

Tick
HeterogeneousMemory::migratePage(PageId page, Tier dst, Tick ready)
{
    commitUpTo(ready);
    PageEntry e = table_.entry(page);
    if (e.in_flight || e.tier == dst)
        return -1;
    if (!tier(dst).tryReserve(kPageSize))
        return -1;

    sim::BandwidthChannel &ch = dst == Tier::Fast ? promote_ : demote_;
    Tick arrival = ch.submit(ready, kPageSize);
    std::uint64_t seq = table_.beginMigration(page, dst, arrival);
    PendingBatch b;
    b.seq0 = seq;
    b.dst = dst;
    b.pages = takeBatchBuffer();
    b.pages.emplace_back(page, arrival);
    pushBatch(std::move(b));

    if (dst == Tier::Fast) {
        stats_.promoted_bytes += kPageSize;
        stats_.promoted_pages += 1;
    } else {
        stats_.demoted_bytes += kPageSize;
        stats_.demoted_pages += 1;
    }
    if (telemetry_)
        noteMigration(dst, ready, arrival, kPageSize,
                      static_cast<std::uint32_t>(page));
    if (attr_)
        attr_->noteMigration(dst == Tier::Fast, kPageSize);
    return arrival;
}

std::size_t
HeterogeneousMemory::migratePages(std::span<const PageId> pages, Tier dst,
                                  Tick ready)
{
    commitUpTo(ready);
    sim::BandwidthChannel &ch = dst == Tier::Fast ? promote_ : demote_;
    std::size_t scheduled = 0;
    Tick last_arrival = ready;
    std::uint32_t first_page = 0;
    PendingBatch b;
    b.dst = dst;
    b.pages = takeBatchBuffer();
    // Walk the request as maximal consecutive page stretches and query
    // the table once per uniform run instead of once per page; eligible
    // runs reserve, schedule, and begin migration in bulk.
    bool dest_full = false;
    std::size_t i = 0;
    const std::size_t n = pages.size();
    while (i < n && !dest_full) {
        std::size_t j = i + 1;
        while (j < n && pages[j] == pages[j - 1] + 1)
            ++j;
        PageId run = pages[i];
        const PageId run_end = pages[i] + (j - i);
        while (run < run_end) {
            PageRunState rs = table_.runState(run, run_end - run);
            if (rs.in_flight || rs.tier == dst) {
                run += rs.count;
                continue;
            }
            std::uint64_t take = rs.count;
            if (!tier(dst).tryReserve(take * kPageSize)) {
                // Destination nearly full: claim what fits, then let
                // the caller retry later (same greedy order as the
                // page-at-a-time path).
                take = 0;
                while (take < rs.count && tier(dst).tryReserve(kPageSize))
                    ++take;
                dest_full = true;
            }
            if (take == 0)
                break;

            // First page of the batch pays the setup cost; the rest
            // stream.
            const std::size_t base = b.pages.size();
            for (std::uint64_t k = 0; k < take; ++k) {
                Tick arrival =
                    scheduled + k == 0
                        ? ch.submit(ready, kPageSize)
                        : ch.submitWithStartup(ready, kPageSize, 0);
                b.pages.emplace_back(run + k, arrival);
            }
            std::uint64_t seq = table_.beginMigrationRun(
                std::span<const std::pair<PageId, Tick>>(
                    b.pages.data() + base, take),
                dst);
            if (scheduled == 0) {
                first_page = static_cast<std::uint32_t>(run);
                b.seq0 = seq;
            }
            last_arrival = b.pages.back().second;
            scheduled += take;

            if (dst == Tier::Fast) {
                stats_.promoted_bytes += take * kPageSize;
                stats_.promoted_pages += take;
            } else {
                stats_.demoted_bytes += take * kPageSize;
                stats_.demoted_pages += take;
            }
            run += take;
            if (dest_full)
                break;
        }
        i = j;
    }
    if (scheduled > 0)
        pushBatch(std::move(b));
    else
        batch_pool_.push_back(std::move(b.pages));
    // One event per batch (matching the one-transfer cost model), not
    // per page — keeps the ring proportional to decisions, not volume.
    if (telemetry_ && scheduled > 0)
        noteMigration(dst, ready, last_arrival, scheduled * kPageSize,
                      first_page);
    if (attr_ && scheduled > 0)
        attr_->noteMigration(dst == Tier::Fast, scheduled * kPageSize);
    return scheduled;
}

void
HeterogeneousMemory::noteMigration(Tier dst, Tick ready, Tick arrival,
                                   std::uint64_t bytes,
                                   std::uint32_t first_page)
{
    if (dst == Tier::Fast) {
        telemetry_->emit(telemetry::EventType::Promotion, ready,
                         arrival - ready, bytes, first_page);
        promoted_ctr_->add(bytes);
    } else {
        telemetry_->emit(telemetry::EventType::Demotion, ready,
                         arrival - ready, bytes, first_page);
        demoted_ctr_->add(bytes);
    }
}

void
HeterogeneousMemory::setTelemetry(telemetry::Session *session)
{
    telemetry_ = session;
    if (session) {
        promoted_ctr_ = &session->metrics().counter("mem.promoted_bytes");
        demoted_ctr_ = &session->metrics().counter("mem.demoted_bytes");
    } else {
        promoted_ctr_ = nullptr;
        demoted_ctr_ = nullptr;
    }
}

void
HeterogeneousMemory::setMigrationBandwidthScale(double promote, double demote)
{
    SENTINEL_ASSERT(promote > 0.0 && demote > 0.0,
                    "bandwidth scales must be positive");
    promote_.setBandwidth(base_promote_bw_ * promote);
    demote_.setBandwidth(base_demote_bw_ * demote);
}

void
HeterogeneousMemory::setFastCapacityScale(double scale)
{
    SENTINEL_ASSERT(scale > 0.0, "capacity scale must be positive");
    std::uint64_t cap = static_cast<std::uint64_t>(
        static_cast<double>(base_fast_capacity_) * scale);
    // Keep whole pages so reservation arithmetic stays page-granular.
    fast_.setCapacity(cap / kPageSize * kPageSize);
}

void
HeterogeneousMemory::stallMigration(Tick now, Tick promote_for,
                                    Tick demote_for)
{
    if (promote_for > 0)
        promote_.blockUntil(now + promote_for);
    if (demote_for > 0)
        demote_.blockUntil(now + demote_for);
}

bool
HeterogeneousMemory::teleportPage(PageId page, Tier dst, Tick now)
{
    commitUpTo(now);
    const PageEntry &e = table_.entry(page);
    if (e.in_flight)
        return false; // let the transfer land first
    if (e.tier == dst)
        return true;
    if (!tier(dst).tryReserve(kPageSize))
        return false;
    Tier src = e.tier;
    // Instant flip: begin+commit with an immediate arrival.
    std::uint64_t seq = table_.beginMigration(page, dst, now);
    bool ok = table_.commitMigration(page, seq);
    SENTINEL_ASSERT(ok, "teleport commit failed");
    tier(src).release(kPageSize);
    return true;
}

void
HeterogeneousMemory::drainArrivals(Tick now)
{
    while (!pending_.empty() && pending_.front().next_arrival <= now) {
        std::pop_heap(pending_.begin(), pending_.end(), BatchLater{});
        PendingBatch &b = pending_.back();
        const std::uint32_t n = static_cast<std::uint32_t>(b.pages.size());
        while (b.cursor < n && b.pages[b.cursor].second <= now) {
            // Commit consecutive arrived pages as one run; batch pages
            // are ascending, so stretches are common.
            std::uint32_t k = b.cursor + 1;
            while (k < n && b.pages[k].second <= now &&
                   b.pages[k].first == b.pages[k - 1].first + 1)
                ++k;
            std::uint64_t committed = table_.commitMigrationRun(
                b.pages[b.cursor].first, k - b.cursor, b.seq0 + b.cursor);
            // Committed pages now live at b.dst; free their old homes.
            // A failed commit means the page was freed or the migration
            // was cancelled; unmapPage()/cancel paths already released
            // the destination reservation in that case.
            if (committed > 0)
                tier(otherTier(b.dst)).release(committed * kPageSize);
            b.cursor = k;
        }
        if (b.cursor < n) {
            b.next_arrival = b.pages[b.cursor].second;
            std::push_heap(pending_.begin(), pending_.end(), BatchLater{});
        } else {
            batch_pool_.push_back(std::move(b.pages));
            pending_.pop_back();
        }
    }
    next_arrival_ =
        pending_.empty() ? kNoArrival : pending_.front().next_arrival;
}

const TierParams &
HeterogeneousMemory::tierParams(Tier t) const
{
    return tier(t).params();
}

void
HeterogeneousMemory::reset()
{
    fast_.reset();
    slow_.reset();
    promote_.reset();
    demote_.reset();
    table_.clear();
    for (PendingBatch &b : pending_)
        batch_pool_.push_back(std::move(b.pages));
    pending_.clear();
    next_arrival_ = kNoArrival;
    stats_ = HmStats{};
}

} // namespace sentinel::mem
