#include "mem/hm.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace sentinel::mem {

namespace {

/** Channel names: link 0 keeps the historical "promote"/"demote". */
std::string
channelName(const char *base, unsigned link)
{
    if (link == 0)
        return base;
    return std::string(base) + std::to_string(link);
}

} // namespace

const sim::BandwidthChannel &
HeterogeneousMemory::nullChannel()
{
    // Non-zero bandwidth so planning ratios stay finite; the channel is
    // never submitted to (a single-tier chain cannot migrate).
    static const sim::BandwidthChannel ch("none", 1.0, 0);
    return ch;
}

HeterogeneousMemory::HeterogeneousMemory(TierParams fast, TierParams slow,
                                         MigrationParams migration,
                                         PageTable::Backend backend)
    : HeterogeneousMemory(
          std::vector<TierParams>{ std::move(fast), std::move(slow) },
          std::vector<MigrationParams>{ migration }, backend)
{
}

HeterogeneousMemory::HeterogeneousMemory(std::vector<TierParams> tiers,
                                         std::vector<MigrationParams> links,
                                         PageTable::Backend backend)
    : table_(backend)
{
    SENTINEL_ASSERT(!tiers.empty() && tiers.size() <= kMaxTiers,
                    "tier chain must have 1..%u tiers (got %zu)",
                    kMaxTiers, tiers.size());
    SENTINEL_ASSERT(links.size() + 1 == tiers.size(),
                    "tier chain of %zu tiers needs %zu links (got %zu)",
                    tiers.size(), tiers.size() - 1, links.size());
    tiers_.reserve(tiers.size());
    base_capacity_.reserve(tiers.size());
    for (TierParams &tp : tiers) {
        base_capacity_.push_back(tp.capacity);
        tiers_.emplace_back(std::move(tp));
    }
    links_.reserve(links.size());
    for (unsigned i = 0; i < links.size(); ++i) {
        const MigrationParams &mp = links[i];
        links_.push_back(Link{
            sim::BandwidthChannel(channelName("promote", i), mp.promote_bw,
                                  mp.startup),
            sim::BandwidthChannel(channelName("demote", i), mp.demote_bw,
                                  mp.startup),
            mp.promote_bw, mp.demote_bw });
    }
}

bool
HeterogeneousMemory::tryMapPage(PageId page, Tier t)
{
    // Chains shorter than a caller assumes (a single-tier system asked
    // for Tier::Slow) simply have no such tier to map into.
    if (tierIndex(t) >= numTiers())
        return false;
    if (!tier(t).tryReserve(kPageSize))
        return false;
    table_.map(page, t);
    return true;
}

Tier
HeterogeneousMemory::mapPage(PageId page, Tier preferred)
{
    // A preference beyond the chain's end clamps to the slowest tier.
    const unsigned pref = std::min(tierIndex(preferred), numTiers() - 1);
    preferred = makeTier(pref);
    if (tryMapPage(page, preferred))
        return preferred;
    // Spill order: slower tiers first (nearest-slower outward), then
    // back toward the faster tiers — the two-tier behavior ("the other
    // tier") is the n = 2 case of this walk.
    for (unsigned t = pref + 1; t < numTiers(); ++t)
        if (tryMapPage(page, makeTier(t)))
            return makeTier(t);
    for (unsigned t = pref; t-- > 0;)
        if (tryMapPage(page, makeTier(t)))
            return makeTier(t);
    SENTINEL_FATAL("out of memory: all %u tiers full mapping page %llu "
                   "(fast %llu/%llu, slowest %llu/%llu)",
                   numTiers(), static_cast<unsigned long long>(page),
                   static_cast<unsigned long long>(tiers_.front().used()),
                   static_cast<unsigned long long>(
                       tiers_.front().capacity()),
                   static_cast<unsigned long long>(tiers_.back().used()),
                   static_cast<unsigned long long>(
                       tiers_.back().capacity()));
}

void
HeterogeneousMemory::mapRange(PageId first, std::uint64_t count,
                              Tier preferred)
{
    if (count == 0)
        return;
    // Fill the preferred tier, then spill the suffix tier-by-tier in
    // mapPage() fallback order — page-for-page what a mapPage() loop
    // would place (preferred fills first, then every later page falls
    // to the next tier with space).
    const unsigned pref = std::min(tierIndex(preferred), numTiers() - 1);
    PageId next = first;
    std::uint64_t left = count;
    auto take = [&](unsigned t) {
        std::uint64_t n = std::min<std::uint64_t>(
            left, tier(makeTier(t)).free() / kPageSize);
        if (n == 0)
            return;
        bool ok = tier(makeTier(t)).tryReserve(n * kPageSize);
        SENTINEL_ASSERT(ok, "range reservation failed");
        table_.mapRange(next, n, makeTier(t));
        next += n;
        left -= n;
    };
    take(pref);
    for (unsigned t = pref + 1; t < numTiers() && left > 0; ++t)
        take(t);
    for (unsigned t = pref; t-- > 0 && left > 0;)
        take(t);
    if (left > 0)
        SENTINEL_FATAL(
            "out of memory: all %u tiers full mapping %llu pages at %llu "
            "(fast %llu/%llu, slowest %llu/%llu)",
            numTiers(), static_cast<unsigned long long>(left),
            static_cast<unsigned long long>(next),
            static_cast<unsigned long long>(tiers_.front().used()),
            static_cast<unsigned long long>(tiers_.front().capacity()),
            static_cast<unsigned long long>(tiers_.back().used()),
            static_cast<unsigned long long>(tiers_.back().capacity()));
}

void
HeterogeneousMemory::unmapPage(PageId page, Tick now)
{
    commitUpTo(now);
    const PageEntry &e = table_.entry(page);
    if (e.in_flight) {
        // Freed before the transfer landed: drop the destination
        // reservation and leave the page at its source for release.
        tier(e.dest).release(kPageSize);
        table_.cancelMigration(page);
    }
    tier(table_.entry(page).tier).release(kPageSize);
    table_.unmap(page);
}

void
HeterogeneousMemory::unmapRange(PageId first, std::uint64_t count, Tick now)
{
    commitUpTo(now);
    std::uint64_t per_tier[kMaxTiers] = {};
    for (std::uint64_t i = 0; i < count; ++i) {
        PageId p = first + i;
        const PageEntry &e = table_.entry(p);
        if (e.in_flight) {
            tier(e.dest).release(kPageSize);
            table_.cancelMigration(p);
        }
        ++per_tier[tierIndex(e.tier)];
    }
    for (unsigned t = 0; t < numTiers(); ++t)
        if (per_tier[t] > 0)
            tiers_[t].release(per_tier[t] * kPageSize);
    table_.unmapRange(first, count);
}

Tier
HeterogeneousMemory::residentTier(PageId page, Tick now)
{
    commitUpTo(now);
    return table_.entry(page).tier;
}

bool
HeterogeneousMemory::inFlight(PageId page, Tick now)
{
    commitUpTo(now);
    return table_.entry(page).in_flight;
}

PageRunState
HeterogeneousMemory::residentRange(PageId first, std::uint64_t count,
                                   Tick now)
{
    commitUpTo(now);
    return table_.runState(first, count);
}

bool
HeterogeneousMemory::inFlightAny(PageId first, std::uint64_t count, Tick now)
{
    commitUpTo(now);
    return table_.anyInFlight(first, count);
}

Tick
HeterogeneousMemory::arrivalTime(PageId page) const
{
    const PageEntry &e = table_.entry(page);
    SENTINEL_ASSERT(e.in_flight, "arrivalTime() of non-migrating page");
    return e.arrival;
}

HeterogeneousMemory::FlightInfo
HeterogeneousMemory::flightInfo(PageId page) const
{
    const PageEntry &e = table_.entry(page);
    SENTINEL_ASSERT(e.in_flight, "flightInfo() of non-migrating page");
    FlightInfo fi;
    const unsigned src = tierIndex(e.tier);
    const unsigned dst = tierIndex(e.dest);
    fi.toward_fast = dst < src;
    // The arrival the caller waits on is the FINAL leg's completion:
    // the link adjacent to the destination tier.
    fi.link = fi.toward_fast ? dst : dst - 1;
    return fi;
}

HeterogeneousMemory::PendingBatch
HeterogeneousMemory::takeBatch()
{
    if (batch_pool_.empty())
        return {};
    PendingBatch b = std::move(batch_pool_.back());
    batch_pool_.pop_back();
    b.pages.clear();
    b.src.clear();
    b.next_arrival = 0;
    b.seq0 = 0;
    b.cursor = 0;
    return b;
}

void
HeterogeneousMemory::pushBatch(PendingBatch &&b)
{
    b.next_arrival = b.pages.front().second;
    pending_.push_back(std::move(b));
    std::push_heap(pending_.begin(), pending_.end(), BatchLater{});
    next_arrival_ = pending_.front().next_arrival;
}

Tick
HeterogeneousMemory::submitLegs(unsigned src, unsigned dst, Tick ready,
                                std::uint32_t &startup_paid)
{
    Tick t = ready;
    if (dst < src) {
        for (unsigned l = src; l-- > dst;) {
            const std::uint32_t bit = 1u << (2 * l);
            sim::BandwidthChannel &ch = links_[l].up;
            t = (startup_paid & bit) ? ch.submitWithStartup(t, kPageSize, 0)
                                     : ch.submit(t, kPageSize);
            startup_paid |= bit;
        }
    } else {
        for (unsigned l = src; l < dst; ++l) {
            const std::uint32_t bit = 1u << (2 * l + 1);
            sim::BandwidthChannel &ch = links_[l].down;
            t = (startup_paid & bit) ? ch.submitWithStartup(t, kPageSize, 0)
                                     : ch.submit(t, kPageSize);
            startup_paid |= bit;
        }
    }
    return t;
}

Tick
HeterogeneousMemory::migratePage(PageId page, Tier dst, Tick ready)
{
    commitUpTo(ready);
    PageEntry e = table_.entry(page);
    if (e.in_flight || e.tier == dst)
        return -1;
    if (!tier(dst).tryReserve(kPageSize))
        return -1;

    const unsigned src = tierIndex(e.tier);
    const unsigned d = tierIndex(dst);
    std::uint32_t startup_paid = 0;
    Tick arrival = submitLegs(src, d, ready, startup_paid);
    std::uint64_t seq = table_.beginMigration(page, dst, arrival);
    PendingBatch b = takeBatch();
    b.seq0 = seq;
    b.dst = dst;
    b.pages.emplace_back(page, arrival);
    b.src.push_back(static_cast<std::uint8_t>(src));
    pushBatch(std::move(b));

    const bool promote = d < src;
    if (promote) {
        stats_.promoted_bytes += kPageSize;
        stats_.promoted_pages += 1;
    } else {
        stats_.demoted_bytes += kPageSize;
        stats_.demoted_pages += 1;
    }
    if (telemetry_)
        noteMigrationEvent(promote, ready, arrival, kPageSize,
                           static_cast<std::uint32_t>(page));
    if (attr_) {
        // Each leg charges its own link.
        if (promote)
            for (unsigned l = src; l-- > d;)
                attr_->noteMigration(l, true, kPageSize);
        else
            for (unsigned l = src; l < d; ++l)
                attr_->noteMigration(l, false, kPageSize);
    }
    return arrival;
}

std::size_t
HeterogeneousMemory::migratePages(std::span<const PageId> pages, Tier dst,
                                  Tick ready)
{
    commitUpTo(ready);
    // Clamp to the chain (a single-tier system's "demote to slow"
    // becomes a no-op below: every page is already in the only tier).
    const unsigned d = std::min(tierIndex(dst), numTiers() - 1);
    dst = makeTier(d);
    std::size_t scheduled = 0;
    std::uint32_t startup_paid = 0;
    // Per-direction batch telemetry (a batch migrating to a MIDDLE
    // tier can mix promotes and demotes); per-link attribution bytes.
    std::uint64_t dir_bytes[2] = { 0, 0 };      // [promote, demote]
    Tick dir_last[2] = { ready, ready };
    std::uint32_t dir_first[2] = { 0, 0 };
    std::uint64_t link_bytes[2][kMaxTiers] = {};
    PendingBatch b = takeBatch();
    b.dst = dst;
    // Walk the request as maximal consecutive page stretches and query
    // the table once per uniform run instead of once per page; eligible
    // runs reserve, schedule, and begin migration in bulk.
    bool dest_full = false;
    std::size_t i = 0;
    const std::size_t n = pages.size();
    while (i < n && !dest_full) {
        std::size_t j = i + 1;
        while (j < n && pages[j] == pages[j - 1] + 1)
            ++j;
        PageId run = pages[i];
        const PageId run_end = pages[i] + (j - i);
        while (run < run_end) {
            PageRunState rs = table_.runState(run, run_end - run);
            if (rs.in_flight || rs.tier == dst) {
                run += rs.count;
                continue;
            }
            std::uint64_t take = rs.count;
            if (!tier(dst).tryReserve(take * kPageSize)) {
                // Destination nearly full: claim what fits, then let
                // the caller retry later (same greedy order as the
                // page-at-a-time path).
                take = 0;
                while (take < rs.count && tier(dst).tryReserve(kPageSize))
                    ++take;
                dest_full = true;
            }
            if (take == 0)
                break;

            const unsigned src = tierIndex(rs.tier);
            const unsigned dir = d < src ? 0 : 1;
            // First page of the batch to touch each channel pays the
            // setup cost; the rest stream.
            const std::size_t base = b.pages.size();
            for (std::uint64_t k = 0; k < take; ++k) {
                Tick arrival = submitLegs(src, d, ready, startup_paid);
                b.pages.emplace_back(run + k, arrival);
                b.src.push_back(static_cast<std::uint8_t>(src));
            }
            std::uint64_t seq = table_.beginMigrationRun(
                std::span<const std::pair<PageId, Tick>>(
                    b.pages.data() + base, take),
                dst);
            if (scheduled == 0)
                b.seq0 = seq;
            if (dir_bytes[dir] == 0)
                dir_first[dir] = static_cast<std::uint32_t>(run);
            dir_bytes[dir] += take * kPageSize;
            dir_last[dir] = b.pages.back().second;
            scheduled += take;

            if (dir == 0) {
                stats_.promoted_bytes += take * kPageSize;
                stats_.promoted_pages += take;
                for (unsigned l = src; l-- > d;)
                    link_bytes[0][l] += take * kPageSize;
            } else {
                stats_.demoted_bytes += take * kPageSize;
                stats_.demoted_pages += take;
                for (unsigned l = src; l < d; ++l)
                    link_bytes[1][l] += take * kPageSize;
            }
            run += take;
            if (dest_full)
                break;
        }
        i = j;
    }
    if (scheduled > 0)
        pushBatch(std::move(b));
    else
        batch_pool_.push_back(std::move(b));
    // One event per batch and direction (matching the one-transfer cost
    // model), not per page — keeps the ring proportional to decisions,
    // not volume.
    if (telemetry_ && dir_bytes[0] > 0)
        noteMigrationEvent(true, ready, dir_last[0], dir_bytes[0],
                           dir_first[0]);
    if (telemetry_ && dir_bytes[1] > 0)
        noteMigrationEvent(false, ready, dir_last[1], dir_bytes[1],
                           dir_first[1]);
    if (attr_ && scheduled > 0) {
        for (unsigned l = 0; l < numLinks(); ++l) {
            if (link_bytes[0][l] > 0)
                attr_->noteMigration(l, true, link_bytes[0][l]);
            if (link_bytes[1][l] > 0)
                attr_->noteMigration(l, false, link_bytes[1][l]);
        }
    }
    return scheduled;
}

void
HeterogeneousMemory::noteMigrationEvent(bool promote, Tick ready,
                                        Tick arrival, std::uint64_t bytes,
                                        std::uint32_t first_page)
{
    if (promote) {
        telemetry_->emit(telemetry::EventType::Promotion, ready,
                         arrival - ready, bytes, first_page);
        promoted_ctr_->add(bytes);
    } else {
        telemetry_->emit(telemetry::EventType::Demotion, ready,
                         arrival - ready, bytes, first_page);
        demoted_ctr_->add(bytes);
    }
}

void
HeterogeneousMemory::setTelemetry(telemetry::Session *session)
{
    telemetry_ = session;
    if (session) {
        promoted_ctr_ = &session->metrics().counter("mem.promoted_bytes");
        demoted_ctr_ = &session->metrics().counter("mem.demoted_bytes");
    } else {
        promoted_ctr_ = nullptr;
        demoted_ctr_ = nullptr;
    }
}

void
HeterogeneousMemory::setMigrationBandwidthScale(double promote, double demote)
{
    SENTINEL_ASSERT(promote > 0.0 && demote > 0.0,
                    "bandwidth scales must be positive");
    for (Link &l : links_) {
        l.up.setBandwidth(l.base_up_bw * promote);
        l.down.setBandwidth(l.base_down_bw * demote);
    }
}

void
HeterogeneousMemory::setTierCapacityScale(unsigned tier_idx, double scale)
{
    SENTINEL_ASSERT(scale > 0.0, "capacity scale must be positive");
    SENTINEL_ASSERT(tier_idx < numTiers(),
                    "capacity scale for tier %u of a %u-tier chain",
                    tier_idx, numTiers());
    std::uint64_t cap = static_cast<std::uint64_t>(
        static_cast<double>(base_capacity_[tier_idx]) * scale);
    // Keep whole pages so reservation arithmetic stays page-granular.
    tiers_[tier_idx].setCapacity(cap / kPageSize * kPageSize);
}

void
HeterogeneousMemory::stallMigration(Tick now, Tick promote_for,
                                    Tick demote_for)
{
    for (Link &l : links_) {
        if (promote_for > 0)
            l.up.blockUntil(now + promote_for);
        if (demote_for > 0)
            l.down.blockUntil(now + demote_for);
    }
}

bool
HeterogeneousMemory::teleportPage(PageId page, Tier dst, Tick now)
{
    commitUpTo(now);
    const PageEntry &e = table_.entry(page);
    if (e.in_flight)
        return false; // let the transfer land first
    if (e.tier == dst)
        return true;
    if (!tier(dst).tryReserve(kPageSize))
        return false;
    Tier src = e.tier;
    // Instant flip: begin+commit with an immediate arrival.
    std::uint64_t seq = table_.beginMigration(page, dst, now);
    bool ok = table_.commitMigration(page, seq);
    SENTINEL_ASSERT(ok, "teleport commit failed");
    tier(src).release(kPageSize);
    return true;
}

void
HeterogeneousMemory::drainArrivals(Tick now)
{
    while (!pending_.empty() && pending_.front().next_arrival <= now) {
        std::pop_heap(pending_.begin(), pending_.end(), BatchLater{});
        PendingBatch &b = pending_.back();
        const std::uint32_t n = static_cast<std::uint32_t>(b.pages.size());
        while (b.cursor < n && b.pages[b.cursor].second <= now) {
            // Commit consecutive arrived pages as one run; batch pages
            // are ascending, so stretches are common.  A stretch stops
            // at a source-tier boundary so the release below frees the
            // right tier.
            std::uint32_t k = b.cursor + 1;
            while (k < n && b.pages[k].second <= now &&
                   b.pages[k].first == b.pages[k - 1].first + 1 &&
                   b.src[k] == b.src[b.cursor])
                ++k;
            std::uint64_t committed = table_.commitMigrationRun(
                b.pages[b.cursor].first, k - b.cursor, b.seq0 + b.cursor);
            // Committed pages now live at b.dst; free their old homes.
            // A failed commit means the page was freed or the migration
            // was cancelled; unmapPage()/cancel paths already released
            // the destination reservation in that case.
            if (committed > 0)
                tier(makeTier(b.src[b.cursor]))
                    .release(committed * kPageSize);
            b.cursor = k;
        }
        if (b.cursor < n) {
            b.next_arrival = b.pages[b.cursor].second;
            std::push_heap(pending_.begin(), pending_.end(), BatchLater{});
        } else {
            batch_pool_.push_back(std::move(b));
            pending_.pop_back();
        }
    }
    next_arrival_ =
        pending_.empty() ? kNoArrival : pending_.front().next_arrival;
}

const TierParams &
HeterogeneousMemory::tierParams(Tier t) const
{
    return tier(t).params();
}

void
HeterogeneousMemory::reset()
{
    for (MemoryTier &t : tiers_)
        t.reset();
    for (Link &l : links_) {
        l.up.reset();
        l.down.reset();
    }
    table_.clear();
    for (PendingBatch &b : pending_)
        batch_pool_.push_back(std::move(b));
    pending_.clear();
    next_arrival_ = kNoArrival;
    stats_ = HmStats{};
}

} // namespace sentinel::mem
