#include "mem/access_tracker.hh"

namespace sentinel::mem {

void
AccessTracker::track(PageId page)
{
    pages_[page].tracked = true;
}

void
AccessTracker::trackRange(PageId first, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        pages_[first + i].tracked = true;
}

void
AccessTracker::untrack(PageId page)
{
    auto it = pages_.find(page);
    if (it != pages_.end())
        it->second.tracked = false;
}

void
AccessTracker::untrackRange(PageId first, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        untrack(first + i);
}

bool
AccessTracker::isTracked(PageId page) const
{
    auto it = pages_.find(page);
    return it != pages_.end() && it->second.tracked;
}

Tick
AccessTracker::onAccess(PageId page, bool is_write, std::uint64_t count)
{
    if (count == 0)
        return 0;
    auto it = pages_.find(page);
    if (it == pages_.end() || !it->second.tracked)
        return 0;
    PageAccessCounts &c = it->second.counts;
    if (is_write)
        c.writes += count;
    else
        c.reads += count;
    total_faults_ += count;
    return fault_cost_ * static_cast<Tick>(count);
}

PageAccessCounts
AccessTracker::counts(PageId page) const
{
    auto it = pages_.find(page);
    return it == pages_.end() ? PageAccessCounts{} : it->second.counts;
}

void
AccessTracker::reset()
{
    pages_.clear();
    total_faults_ = 0;
}

} // namespace sentinel::mem
