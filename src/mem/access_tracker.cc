#include "mem/access_tracker.hh"

namespace sentinel::mem {

void
AccessTracker::track(PageId page)
{
    tracked_[page] = true;
}

void
AccessTracker::untrack(PageId page)
{
    tracked_.erase(page);
}

bool
AccessTracker::isTracked(PageId page) const
{
    return tracked_.find(page) != tracked_.end();
}

Tick
AccessTracker::onAccess(PageId page, bool is_write, std::uint64_t count)
{
    if (!isTracked(page) || count == 0)
        return 0;
    PageAccessCounts &c = counts_[page];
    if (is_write)
        c.writes += count;
    else
        c.reads += count;
    total_faults_ += count;
    return fault_cost_ * static_cast<Tick>(count);
}

PageAccessCounts
AccessTracker::counts(PageId page) const
{
    auto it = counts_.find(page);
    return it == counts_.end() ? PageAccessCounts{} : it->second;
}

void
AccessTracker::reset()
{
    tracked_.clear();
    counts_.clear();
    total_faults_ = 0;
}

} // namespace sentinel::mem
