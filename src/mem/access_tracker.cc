#include "mem/access_tracker.hh"

namespace sentinel::mem {

void
AccessTracker::track(PageId page)
{
    pages_.ref(page).tracked = true;
}

void
AccessTracker::trackRange(PageId first, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        pages_.ref(first + i).tracked = true;
}

void
AccessTracker::untrack(PageId page)
{
    if (pages_.find(page))
        pages_.ref(page).tracked = false;
}

void
AccessTracker::untrackRange(PageId first, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        untrack(first + i);
}

bool
AccessTracker::isTracked(PageId page) const
{
    const PageTrackState *s = pages_.find(page);
    return s && s->tracked;
}

Tick
AccessTracker::onAccess(PageId page, bool is_write, std::uint64_t count)
{
    if (count == 0)
        return 0;
    const PageTrackState *s = pages_.find(page);
    if (!s || !s->tracked)
        return 0;
    PageAccessCounts &c = pages_.ref(page).counts;
    if (is_write)
        c.writes += count;
    else
        c.reads += count;
    total_faults_ += count;
    return fault_cost_ * static_cast<Tick>(count);
}

std::vector<std::pair<PageId, PageTrackState>>
AccessTracker::allCounts() const
{
    std::vector<std::pair<PageId, PageTrackState>> out;
    pages_.forEach([&](PageId page, const PageTrackState &s) {
        if (s.tracked || s.counts.total() > 0)
            out.emplace_back(page, s);
    });
    return out;
}

PageAccessCounts
AccessTracker::counts(PageId page) const
{
    const PageTrackState *s = pages_.find(page);
    return s ? s->counts : PageAccessCounts{};
}

void
AccessTracker::reset()
{
    pages_.clear();
    total_faults_ = 0;
}

} // namespace sentinel::mem
