/**
 * @file
 * Optane "Memory Mode": DRAM as a hardware-managed page cache.
 *
 * In Memory Mode the DRAM tier is invisible to software; the memory
 * controller manages it as a direct-mapped/set-associative cache of
 * slow-memory pages.  The paper evaluates this as a baseline (Fig. 8)
 * and beats it because the hardware cache (a) caches at page
 * granularity (false sharing pulls cold bytes along with hot ones) and
 * (b) cannot exploit tensor lifetime (dead short-lived tensors keep
 * occupying DRAM until evicted by conflict).
 *
 * This class models a set-associative page cache with LRU replacement
 * and writeback of dirty victims.
 */

#ifndef SENTINEL_MEM_DRAM_CACHE_HH
#define SENTINEL_MEM_DRAM_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/units.hh"
#include "mem/page.hh"

namespace sentinel::mem {

/** Outcome of one cached page access. */
struct DramCacheResult {
    bool hit = false;
    /** Bytes moved slow->fast to fill the line (0 on a hit). */
    std::uint64_t fill_bytes = 0;
    /** Bytes moved fast->slow to write back the victim. */
    std::uint64_t writeback_bytes = 0;
};

/** Aggregate outcome of a page-range access. */
struct DramCacheRangeResult {
    std::uint64_t misses = 0;     ///< pages filled (kPageSize each)
    std::uint64_t writebacks = 0; ///< dirty victims written back
};

class DramCache
{
  public:
    /**
     * @param capacity DRAM cache capacity in bytes.
     * @param associativity ways per set (Optane Memory Mode is
     *        direct-mapped in hardware; we default to a small
     *        associativity to model its sectored organization).
     */
    DramCache(std::uint64_t capacity, unsigned associativity = 4);

    /** Access @p page; updates cache state and returns the outcome. */
    DramCacheResult access(PageId page, bool is_write);

    /**
     * Access [first, first+count) in page order — state updates are
     * identical to count access() calls; only the outcome is batched.
     */
    DramCacheRangeResult accessRange(PageId first, std::uint64_t count,
                                     bool is_write);

    bool contains(PageId page) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t numSets() const { return num_sets_; }
    unsigned associativity() const { return assoc_; }

    double
    hitRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
    }

    void reset();

  private:
    struct Way {
        PageId page = kInvalidPage;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; ///< larger == more recently used
    };

    std::vector<Way> &set(PageId page);

    std::uint64_t num_sets_;
    unsigned assoc_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t lru_clock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_DRAM_CACHE_HH
