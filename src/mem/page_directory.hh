/**
 * @file
 * A chunked direct-indexed map from PageId to a small POD value.
 *
 * The simulator's hot paths key several side tables by page id
 * (executor page reference counts, access-tracker counters).  Virtual
 * addresses are sparse — policies place tensors at multi-TiB bases —
 * so a flat array is out, but an unordered_map pays a hash + probe on
 * every access.  PageDirectory splits the id space into 2^16-page
 * chunks allocated on first touch: a lookup is two loads and chunks
 * are recycled across clear() with an epoch stamp, so steady-state
 * operation allocates nothing.
 *
 * T must be trivially copyable and value-initialize to its "absent"
 * state (e.g. a zero refcount): clear() simply bumps the epoch and a
 * recycled chunk is refilled with T{}.
 */

#ifndef SENTINEL_MEM_PAGE_DIRECTORY_HH
#define SENTINEL_MEM_PAGE_DIRECTORY_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "mem/page.hh"

namespace sentinel::mem {

template <typename T>
class PageDirectory
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "PageDirectory chunks are recycled by refilling T{}");

  public:
    /** Mutable slot for @p page, creating its chunk if needed. */
    T &
    ref(PageId page)
    {
        std::uint64_t c = page >> kChunkBits;
        SENTINEL_ASSERT(page < kMaxPages, "page id out of range");
        if (c >= chunks_.size())
            chunks_.resize(c + 1);
        Chunk &ch = chunks_[c];
        if (ch.epoch != epoch_) {
            if (!ch.slots)
                ch.slots = std::make_unique<T[]>(kChunkPages);
            std::fill_n(ch.slots.get(), kChunkPages, T{});
            ch.epoch = epoch_;
        }
        return ch.slots[page & kChunkMask];
    }

    /** Slot for @p page, or nullptr if its chunk was never touched. */
    const T *
    find(PageId page) const
    {
        std::uint64_t c = page >> kChunkBits;
        if (c >= chunks_.size())
            return nullptr;
        const Chunk &ch = chunks_[c];
        if (ch.epoch != epoch_)
            return nullptr;
        return &ch.slots[page & kChunkMask];
    }

    /** Value for @p page; T{} where nothing was ever stored. */
    T
    get(PageId page) const
    {
        const T *p = find(page);
        return p ? *p : T{};
    }

    /** Drop all values.  O(1): chunks are recycled lazily. */
    void
    clear()
    {
        if (++epoch_ == 0) { // epoch wrap: stale stamps could collide
            chunks_.clear();
            epoch_ = 1;
        }
    }

    /** Visit every slot of every touched chunk in ascending page
     *  order, including slots still holding T{}. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::uint64_t c = 0; c < chunks_.size(); ++c) {
            const Chunk &ch = chunks_[c];
            if (ch.epoch != epoch_ || !ch.slots)
                continue;
            for (std::uint64_t i = 0; i < kChunkPages; ++i)
                f((c << kChunkBits) | i, ch.slots[i]);
        }
    }

  private:
    static constexpr unsigned kChunkBits = 16;
    static constexpr std::uint64_t kChunkPages = 1ull << kChunkBits;
    static constexpr std::uint64_t kChunkMask = kChunkPages - 1;
    static constexpr std::uint64_t kMaxPages = 1ull << 36;

    struct Chunk {
        std::uint32_t epoch = 0; ///< valid iff == PageDirectory::epoch_
        std::unique_ptr<T[]> slots;
    };

    std::vector<Chunk> chunks_;
    std::uint32_t epoch_ = 1;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_PAGE_DIRECTORY_HH
