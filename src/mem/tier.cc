#include "mem/tier.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::mem {

bool
MemoryTier::tryReserve(std::uint64_t bytes)
{
    SENTINEL_ASSERT(bytes % kPageSize == 0,
                    "tier reservation of %llu bytes is not page-aligned",
                    static_cast<unsigned long long>(bytes));
    if (used_ + bytes > params_.capacity)
        return false;
    used_ += bytes;
    peak_used_ = std::max(peak_used_, used_);
    return true;
}

void
MemoryTier::release(std::uint64_t bytes)
{
    SENTINEL_ASSERT(bytes % kPageSize == 0,
                    "tier release of %llu bytes is not page-aligned",
                    static_cast<unsigned long long>(bytes));
    SENTINEL_ASSERT(bytes <= used_,
                    "tier '%s' releasing %llu bytes with only %llu used",
                    params_.name.c_str(),
                    static_cast<unsigned long long>(bytes),
                    static_cast<unsigned long long>(used_));
    used_ -= bytes;
}

void
MemoryTier::reset()
{
    used_ = 0;
    peak_used_ = 0;
}

} // namespace sentinel::mem
