/**
 * @file
 * One memory tier: capacity bookkeeping plus a timing description.
 */

#ifndef SENTINEL_MEM_TIER_HH
#define SENTINEL_MEM_TIER_HH

#include <cstdint>
#include <string>

#include "common/units.hh"
#include "mem/page.hh"

namespace sentinel::mem {

/** Static description of a tier's performance characteristics. */
struct TierParams {
    std::string name;
    std::uint64_t capacity = 0;   ///< bytes
    double read_bw = 0.0;         ///< bytes/second, sustained
    double write_bw = 0.0;        ///< bytes/second, sustained
    Tick read_latency = 0;        ///< per-access latency component
    Tick write_latency = 0;
};

/**
 * Capacity accounting for one tier.
 *
 * Frames are fungible in the simulation, so the tier tracks byte counts
 * (always whole pages) rather than individual frame identities; the
 * page table remembers which tier each virtual page resides in.
 */
class MemoryTier
{
  public:
    explicit MemoryTier(TierParams params) : params_(std::move(params)) {}

    const TierParams &params() const { return params_; }

    std::uint64_t capacity() const { return params_.capacity; }
    std::uint64_t used() const { return used_; }
    std::uint64_t
    free() const
    {
        return used_ > params_.capacity ? 0 : params_.capacity - used_;
    }
    std::uint64_t peakUsed() const { return peak_used_; }

    /**
     * Try to claim @p bytes (page multiple).
     * @return false if the tier lacks space (nothing is claimed).
     */
    bool tryReserve(std::uint64_t bytes);

    /** Return @p bytes to the tier. */
    void release(std::uint64_t bytes);

    /**
     * Change the tier's effective capacity mid-run (fault injection:
     * a co-tenant claiming memory).  Shrinking below used() is legal —
     * already-resident pages stay, but new reservations fail until
     * usage drains below the new limit.
     */
    void setCapacity(std::uint64_t bytes) { params_.capacity = bytes; }

    /** Drop usage counters (new experiment). */
    void reset();

  private:
    TierParams params_;
    std::uint64_t used_ = 0;
    std::uint64_t peak_used_ = 0;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_TIER_HH
