/**
 * @file
 * Page-granularity basics shared by the whole memory subsystem.
 *
 * All placement state in this reproduction is per 4 KiB page, exactly
 * because the paper's central observation is that OS/hardware manage
 * memory at page granularity while frameworks manage tensors — and that
 * the mismatch (page-level false sharing) costs performance.
 */

#ifndef SENTINEL_MEM_PAGE_HH
#define SENTINEL_MEM_PAGE_HH

#include <cstdint>

namespace sentinel::mem {

/** Page size in bytes (x86-64 base pages, as in the paper's testbed). */
constexpr std::uint64_t kPageSize = 4096;

/** Virtual page number within the simulated address space. */
using PageId = std::uint64_t;

constexpr PageId kInvalidPage = ~0ull;

/** Byte offset within the simulated virtual address space. */
using VirtAddr = std::uint64_t;

/** Page containing @p addr. */
constexpr PageId
pageOf(VirtAddr addr)
{
    return addr / kPageSize;
}

/** First page at or after @p addr. */
constexpr PageId
pageCeil(VirtAddr addr)
{
    return (addr + kPageSize - 1) / kPageSize;
}

/** Number of pages spanned by the range [addr, addr + bytes). */
constexpr std::uint64_t
pagesSpanned(VirtAddr addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    return pageCeil(addr + bytes) - pageOf(addr);
}

/** Round @p bytes up to a whole number of pages. */
constexpr std::uint64_t
roundUpToPages(std::uint64_t bytes)
{
    return pageCeil(bytes) * kPageSize;
}

/**
 * A contiguous run of pages: [first, first + count).
 *
 * Tensors occupy contiguous page ranges, so the hot paths (executor
 * access loop, mapping, migration bookkeeping) operate on runs and only
 * fall back to single pages across migration boundaries.
 */
struct PageRun {
    PageId first = kInvalidPage;
    std::uint64_t count = 0;

    constexpr PageId endPage() const { return first + count; }
    constexpr bool empty() const { return count == 0; }
};

/**
 * A tier id within an ordered heterogeneous memory hierarchy.
 *
 * Tiers are numbered fastest-first: 0 is the fastest tier (DRAM on CPU
 * systems, HBM on GPU systems) and larger indices are progressively
 * slower (host DRAM, Optane PMM, NVMe).  The classic two-tier
 * configuration uses exactly {Fast, Slow}; N-tier chains reuse the same
 * enum as an index (see makeTier / tierIndex) so two-tier code keeps
 * reading naturally.
 */
enum class Tier : std::uint8_t {
    Fast = 0, ///< fastest tier: DRAM (CPU systems) or HBM (GPU systems)
    Slow = 1, ///< second tier: PMM (CPU systems) or host DRAM (GPU systems)
};

/** Upper bound on chain length (tier index must fit 3 state bits). */
constexpr unsigned kMaxTiers = 8;

constexpr unsigned
tierIndex(Tier t)
{
    return static_cast<unsigned>(t);
}

constexpr Tier
makeTier(unsigned index)
{
    return static_cast<Tier>(index);
}

/**
 * Positional tier name: "fast", "slow", "slow2", "slow3", ...  The
 * first two match the legacy two-tier vocabulary exactly (telemetry
 * traces and tables depend on it); deeper tiers extend the "slow" side
 * of the chain.
 */
constexpr const char *
tierName(Tier t)
{
    constexpr const char *names[kMaxTiers] = {
        "fast", "slow", "slow2", "slow3",
        "slow4", "slow5", "slow6", "slow7",
    };
    return names[tierIndex(t) < kMaxTiers ? tierIndex(t) : kMaxTiers - 1];
}

/** The other tier of a TWO-tier system (legacy two-tier call sites). */
constexpr Tier
otherTier(Tier t)
{
    return t == Tier::Fast ? Tier::Slow : Tier::Fast;
}

} // namespace sentinel::mem

#endif // SENTINEL_MEM_PAGE_HH
