/**
 * @file
 * Virtual page -> tier mapping, including in-flight migration state.
 *
 * A page that is migrating remains readable at its source tier until
 * the migration engine's transfer completes (arrival tick); the
 * HeterogeneousMemory facade lazily commits arrivals as simulated time
 * advances.
 *
 * Two backends share one interface:
 *
 *  - Dense (default): struct-of-arrays chunks.  The hot state of a page
 *    (tier + in-flight bit) is ONE byte in a per-chunk state array, so
 *    lookups are two loads and range walks are byte scans.  Cold
 *    migration state (arrival tick, commit-guard sequence) lives in
 *    separate per-chunk arrays allocated only once a chunk sees its
 *    first migration.  Each chunk also carries summary counters
 *    (mapped / fast-resident / in-flight page counts), which answer the
 *    dominant runState() query — "is this whole range uniform?" — in
 *    O(chunks) instead of O(pages).  Mapped-ness is tracked with a
 *    per-chunk epoch so clear() is O(1).
 *  - Hash: the original std::unordered_map, kept as a debug fallback
 *    (configure with -DSENTINEL_DENSE_PT=OFF, or construct with
 *    Backend::Hash) for differential testing against the dense path.
 */

#ifndef SENTINEL_MEM_PAGE_TABLE_HH
#define SENTINEL_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "mem/page.hh"

namespace sentinel::mem {

/** Per-page state (a composed view; the dense backend stores SoA). */
struct PageEntry {
    Tier tier = Tier::Slow;     ///< current (source) tier
    bool in_flight = false;     ///< migration scheduled, not yet arrived
    Tier dest = Tier::Slow;     ///< destination while in flight
    Tick arrival = 0;           ///< completion time while in flight
    std::uint64_t seq = 0;      ///< migration epoch, guards stale commits
};

static_assert(kMaxTiers <= 8, "tier index must fit the 3 state bits");

/**
 * State of the maximal uniform prefix of a page range: @c count leading
 * pages that share one (tier, in_flight) state.
 */
struct PageRunState {
    Tier tier = Tier::Slow;
    bool in_flight = false;
    std::uint64_t count = 0;
};

/** A flat map of mapped pages. */
class PageTable
{
  public:
    enum class Backend {
        Dense, ///< chunked struct-of-arrays (production)
        Hash,  ///< std::unordered_map (debug fallback)
    };

    /** Build-time default: Dense unless -DSENTINEL_DENSE_PT=OFF. */
    static Backend defaultBackend();

    explicit PageTable(Backend backend = defaultBackend());

    Backend backend() const { return backend_; }

    /** Map @p page into @p tier.  The page must not be mapped. */
    void map(PageId page, Tier tier);

    /** Map [first, first+count) into @p tier; none may be mapped. */
    void mapRange(PageId first, std::uint64_t count, Tier tier);

    /** Remove @p page.  The page must be mapped. */
    void unmap(PageId page);

    /** Remove [first, first+count); all must be mapped, none in flight. */
    void unmapRange(PageId first, std::uint64_t count);

    bool isMapped(PageId page) const;

    /** Entry for @p page (must be mapped).  The dense backend composes
     *  the view from its SoA arrays: dest/arrival are meaningful only
     *  while in_flight. */
    PageEntry entry(PageId page) const;

    /**
     * Longest prefix of [first, first+count) whose pages share one
     * (tier, in_flight) state.  All pages must be mapped.
     */
    PageRunState runState(PageId first, std::uint64_t count) const;

    /** True if any page of [first, first+count) is migrating. */
    bool anyInFlight(PageId first, std::uint64_t count) const;

    /**
     * Mark @p page as migrating to @p dest, arriving at @p arrival.
     * @return the migration sequence number for this migration.
     */
    std::uint64_t beginMigration(PageId page, Tier dest, Tick arrival);

    /**
     * Complete the migration with sequence @p seq, if still pending.
     * @return true if the commit took effect (page flipped tiers).
     */
    bool commitMigration(PageId page, std::uint64_t seq);

    /**
     * Begin migrating a consecutive ascending run of pages to @p dest;
     * run[i] is (first + i, arrival of that page).  Every page must be
     * mapped, idle, and resident away from @p dest — i.e. a uniform
     * eligible runState() prefix.  Sequence numbers are contiguous:
     * page run[i].first gets @return + i.
     */
    std::uint64_t beginMigrationRun(
        std::span<const std::pair<PageId, Tick>> run, Tier dest);

    /**
     * Commit the consecutive run [first, first+count), where page
     * first+i carries sequence @p seq0 + i.  Pages freed or cancelled
     * while in flight are skipped, exactly as commitMigration().
     * @return the number of pages that actually flipped tiers.
     */
    std::uint64_t commitMigrationRun(PageId first, std::uint64_t count,
                                     std::uint64_t seq0);

    /** Abort an in-flight migration, leaving the page at its source. */
    void cancelMigration(PageId page);

    std::size_t numMapped() const { return num_mapped_; }

    /** Mapped pages with a migration still pending. */
    std::size_t numInFlight() const { return num_inflight_; }

    void clear();

  private:
    /**
     * Chunk geometry: 2^16 pages (64 KiB of state bytes) per chunk
     * keeps the directory small even for the policies that place
     * tensors at multi-TiB virtual bases, while one tensor's pages stay
     * within a handful of chunks.
     */
    static constexpr unsigned kChunkBits = 16;
    static constexpr std::uint64_t kChunkPages = 1ull << kChunkBits;
    static constexpr std::uint64_t kChunkMask = kChunkPages - 1;
    /** 2^36 pages = a 256 TiB virtual space; bounds directory growth. */
    static constexpr std::uint64_t kMaxPages = 1ull << 36;

    // Hot per-page state, one byte: bits 0-2 = resident tier index
    // (fastest-first chain position), bit 3 = migration in flight,
    // 0xFF = unmapped.
    static constexpr std::uint8_t kStateUnmapped = 0xFF;
    static constexpr std::uint8_t kStateTierMask = 0x07;
    static constexpr std::uint8_t kStateFlightBit = 0x08;

    static constexpr std::uint8_t
    stateByte(Tier t, bool in_flight)
    {
        return static_cast<std::uint8_t>(
            (tierIndex(t) & kStateTierMask) |
            (in_flight ? kStateFlightBit : 0));
    }
    static constexpr Tier
    tierOf(std::uint8_t s)
    {
        return makeTier(s & kStateTierMask);
    }
    static constexpr bool
    flightOf(std::uint8_t s)
    {
        return (s & kStateFlightBit) != 0;
    }

    struct Chunk {
        /** Chunk contents are valid iff epoch == PageTable::epoch_. */
        std::uint32_t epoch = 0;
        std::uint32_t mapped = 0;   ///< mapped pages in this chunk
        std::uint32_t inflight = 0; ///< mapped pages migrating
        /** Mapped pages resident in each tier (by current tier bits). */
        std::uint32_t tiers[kMaxTiers] = {};
        std::unique_ptr<std::uint8_t[]> state;
        // Cold migration SoA, allocated on the chunk's first migration.
        // `dest` holds the destination tier index while in flight (an
        // N-tier chain has more than one "other" tier to arrive at).
        std::unique_ptr<Tick[]> arrival;
        std::unique_ptr<std::uint64_t[]> seq;
        std::unique_ptr<std::uint8_t[]> dest;
    };

    /** Chunk holding @p page, or nullptr if absent/stale this epoch. */
    const Chunk *
    findChunk(PageId page) const
    {
        std::uint64_t c = page >> kChunkBits;
        if (c >= chunks_.size())
            return nullptr;
        const Chunk &ch = chunks_[c];
        return ch.epoch == epoch_ ? &ch : nullptr;
    }

    /** Chunk for @p page, allocated/recycled to the current epoch. */
    Chunk &chunkFor(PageId page);
    /** Ensure the chunk's cold migration arrays exist. */
    void ensureCold(Chunk &ch);

    Backend backend_;

    // Dense backend state.
    std::vector<Chunk> chunks_;
    std::uint32_t epoch_ = 1;

    // Hash backend state.
    std::unordered_map<PageId, PageEntry> entries_;

    std::size_t num_mapped_ = 0;
    std::size_t num_inflight_ = 0;
    std::uint64_t next_seq_ = 1;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_PAGE_TABLE_HH
