/**
 * @file
 * Virtual page -> tier mapping, including in-flight migration state.
 *
 * A page that is migrating remains readable at its source tier until
 * the migration engine's transfer completes (arrival tick); the
 * HeterogeneousMemory facade lazily commits arrivals as simulated time
 * advances.
 *
 * Two backends share one interface:
 *
 *  - Dense (default): a chunked direct-indexed array of entries.  Page
 *    ids index a lazily-allocated chunk directory, so lookups are two
 *    loads instead of a hash probe, and range walks stream through
 *    contiguous memory.  Mapped-ness is tracked with a per-entry epoch
 *    so clear() is O(1).
 *  - Hash: the original std::unordered_map, kept as a debug fallback
 *    (configure with -DSENTINEL_DENSE_PT=OFF, or construct with
 *    Backend::Hash) for differential testing against the dense path.
 */

#ifndef SENTINEL_MEM_PAGE_TABLE_HH
#define SENTINEL_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.hh"
#include "mem/page.hh"

namespace sentinel::mem {

/** Per-page state. */
struct PageEntry {
    Tier tier = Tier::Slow;     ///< current (source) tier
    bool in_flight = false;     ///< migration scheduled, not yet arrived
    Tier dest = Tier::Slow;     ///< destination while in flight
    Tick arrival = 0;           ///< completion time while in flight
    std::uint64_t seq = 0;      ///< migration epoch, guards stale commits
};

/**
 * State of the maximal uniform prefix of a page range: @c count leading
 * pages that share one (tier, in_flight) state.
 */
struct PageRunState {
    Tier tier = Tier::Slow;
    bool in_flight = false;
    std::uint64_t count = 0;
};

/** A flat map of mapped pages. */
class PageTable
{
  public:
    enum class Backend {
        Dense, ///< chunked direct-indexed array (production)
        Hash,  ///< std::unordered_map (debug fallback)
    };

    /** Build-time default: Dense unless -DSENTINEL_DENSE_PT=OFF. */
    static Backend defaultBackend();

    explicit PageTable(Backend backend = defaultBackend());

    Backend backend() const { return backend_; }

    /** Map @p page into @p tier.  The page must not be mapped. */
    void map(PageId page, Tier tier);

    /** Map [first, first+count) into @p tier; none may be mapped. */
    void mapRange(PageId first, std::uint64_t count, Tier tier);

    /** Remove @p page.  The page must be mapped. */
    void unmap(PageId page);

    /** Remove [first, first+count); all must be mapped, none in flight. */
    void unmapRange(PageId first, std::uint64_t count);

    bool isMapped(PageId page) const;

    /** Entry for @p page (must be mapped). */
    const PageEntry &entry(PageId page) const;

    /**
     * Longest prefix of [first, first+count) whose pages share one
     * (tier, in_flight) state.  All pages must be mapped.
     */
    PageRunState runState(PageId first, std::uint64_t count) const;

    /** True if any page of [first, first+count) is migrating. */
    bool anyInFlight(PageId first, std::uint64_t count) const;

    /**
     * Mark @p page as migrating to @p dest, arriving at @p arrival.
     * @return the migration sequence number for this migration.
     */
    std::uint64_t beginMigration(PageId page, Tier dest, Tick arrival);

    /**
     * Complete the migration with sequence @p seq, if still pending.
     * @return true if the commit took effect (page flipped tiers).
     */
    bool commitMigration(PageId page, std::uint64_t seq);

    /** Abort an in-flight migration, leaving the page at its source. */
    void cancelMigration(PageId page);

    std::size_t numMapped() const { return num_mapped_; }

    void clear();

  private:
    /**
     * Chunk geometry: 2^16 pages (2 MiB of entries) per chunk keeps the
     * directory small even for the policies that place tensors at
     * multi-TiB virtual bases, while one tensor's pages stay within a
     * handful of chunks.
     */
    static constexpr unsigned kChunkBits = 16;
    static constexpr std::uint64_t kChunkPages = 1ull << kChunkBits;
    static constexpr std::uint64_t kChunkMask = kChunkPages - 1;
    /** 2^36 pages = a 256 TiB virtual space; bounds directory growth. */
    static constexpr std::uint64_t kMaxPages = 1ull << 36;

    struct DenseSlot {
        PageEntry entry;
        /** Slot is mapped iff epoch == epoch_ (clear() bumps epoch_). */
        std::uint32_t epoch = 0;
    };

    /** Slot for @p page, or nullptr if its chunk was never touched. */
    DenseSlot *denseFind(PageId page) const;
    /** Slot for @p page, allocating its chunk on demand. */
    DenseSlot &denseSlot(PageId page);

    PageEntry &mutableEntry(PageId page);

    Backend backend_;

    // Dense backend state.
    std::vector<std::unique_ptr<DenseSlot[]>> chunks_;
    std::uint32_t epoch_ = 1;

    // Hash backend state.
    std::unordered_map<PageId, PageEntry> entries_;

    std::size_t num_mapped_ = 0;
    std::uint64_t next_seq_ = 1;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_PAGE_TABLE_HH
