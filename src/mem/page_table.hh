/**
 * @file
 * Virtual page -> tier mapping, including in-flight migration state.
 *
 * A page that is migrating remains readable at its source tier until
 * the migration engine's transfer completes (arrival tick); the
 * HeterogeneousMemory facade lazily commits arrivals as simulated time
 * advances.
 */

#ifndef SENTINEL_MEM_PAGE_TABLE_HH
#define SENTINEL_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/units.hh"
#include "mem/page.hh"

namespace sentinel::mem {

/** Per-page state. */
struct PageEntry {
    Tier tier = Tier::Slow;     ///< current (source) tier
    bool in_flight = false;     ///< migration scheduled, not yet arrived
    Tier dest = Tier::Slow;     ///< destination while in flight
    Tick arrival = 0;           ///< completion time while in flight
    std::uint64_t seq = 0;      ///< migration epoch, guards stale commits
};

/** A flat map of mapped pages. */
class PageTable
{
  public:
    /** Map @p page into @p tier.  The page must not be mapped. */
    void map(PageId page, Tier tier);

    /** Remove @p page.  The page must be mapped. */
    void unmap(PageId page);

    bool isMapped(PageId page) const;

    /** Entry for @p page (must be mapped). */
    const PageEntry &entry(PageId page) const;

    /**
     * Mark @p page as migrating to @p dest, arriving at @p arrival.
     * @return the migration sequence number for this migration.
     */
    std::uint64_t beginMigration(PageId page, Tier dest, Tick arrival);

    /**
     * Complete the migration with sequence @p seq, if still pending.
     * @return true if the commit took effect (page flipped tiers).
     */
    bool commitMigration(PageId page, std::uint64_t seq);

    /** Abort an in-flight migration, leaving the page at its source. */
    void cancelMigration(PageId page);

    std::size_t numMapped() const { return entries_.size(); }

    void clear() { entries_.clear(); }

  private:
    PageEntry &mutableEntry(PageId page);

    std::unordered_map<PageId, PageEntry> entries_;
    std::uint64_t next_seq_ = 1;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_PAGE_TABLE_HH
