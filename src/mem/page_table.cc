#include "mem/page_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::mem {

PageTable::Backend
PageTable::defaultBackend()
{
#ifdef SENTINEL_DENSE_PT_OFF
    return Backend::Hash;
#else
    return Backend::Dense;
#endif
}

PageTable::PageTable(Backend backend) : backend_(backend) {}

PageTable::DenseSlot *
PageTable::denseFind(PageId page) const
{
    std::uint64_t chunk = page >> kChunkBits;
    if (chunk >= chunks_.size() || !chunks_[chunk])
        return nullptr;
    return &chunks_[chunk][page & kChunkMask];
}

PageTable::DenseSlot &
PageTable::denseSlot(PageId page)
{
    SENTINEL_ASSERT(page < kMaxPages, "page %llu beyond dense table range",
                    static_cast<unsigned long long>(page));
    std::uint64_t chunk = page >> kChunkBits;
    if (chunk >= chunks_.size())
        chunks_.resize(chunk + 1);
    if (!chunks_[chunk])
        chunks_[chunk] = std::make_unique<DenseSlot[]>(kChunkPages);
    return chunks_[chunk][page & kChunkMask];
}

void
PageTable::map(PageId page, Tier tier)
{
    if (backend_ == Backend::Hash) {
        auto [it, inserted] = entries_.emplace(page, PageEntry{});
        SENTINEL_ASSERT(inserted, "page %llu already mapped",
                        static_cast<unsigned long long>(page));
        it->second.tier = tier;
        ++num_mapped_;
        return;
    }
    DenseSlot &s = denseSlot(page);
    SENTINEL_ASSERT(s.epoch != epoch_, "page %llu already mapped",
                    static_cast<unsigned long long>(page));
    s.entry = PageEntry{};
    s.entry.tier = tier;
    s.epoch = epoch_;
    ++num_mapped_;
}

void
PageTable::mapRange(PageId first, std::uint64_t count, Tier tier)
{
    if (backend_ == Backend::Hash) {
        for (std::uint64_t i = 0; i < count; ++i)
            map(first + i, tier);
        return;
    }
    PageId p = first;
    std::uint64_t left = count;
    while (left > 0) {
        DenseSlot *s = &denseSlot(p);
        std::uint64_t in_chunk =
            std::min<std::uint64_t>(left, kChunkPages - (p & kChunkMask));
        for (std::uint64_t i = 0; i < in_chunk; ++i, ++s) {
            SENTINEL_ASSERT(s->epoch != epoch_, "page %llu already mapped",
                            static_cast<unsigned long long>(p + i));
            s->entry = PageEntry{};
            s->entry.tier = tier;
            s->epoch = epoch_;
        }
        num_mapped_ += in_chunk;
        p += in_chunk;
        left -= in_chunk;
    }
}

void
PageTable::unmap(PageId page)
{
    if (backend_ == Backend::Hash) {
        auto erased = entries_.erase(page);
        SENTINEL_ASSERT(erased == 1, "unmap of unmapped page %llu",
                        static_cast<unsigned long long>(page));
        --num_mapped_;
        return;
    }
    DenseSlot *s = denseFind(page);
    SENTINEL_ASSERT(s && s->epoch == epoch_, "unmap of unmapped page %llu",
                    static_cast<unsigned long long>(page));
    s->epoch = 0;
    --num_mapped_;
}

void
PageTable::unmapRange(PageId first, std::uint64_t count)
{
    if (backend_ == Backend::Hash) {
        for (std::uint64_t i = 0; i < count; ++i)
            unmap(first + i);
        return;
    }
    PageId p = first;
    std::uint64_t left = count;
    while (left > 0) {
        DenseSlot *s = denseFind(p);
        std::uint64_t in_chunk =
            std::min<std::uint64_t>(left, kChunkPages - (p & kChunkMask));
        for (std::uint64_t i = 0; i < in_chunk; ++i, ++s) {
            SENTINEL_ASSERT(s && s->epoch == epoch_,
                            "unmap of unmapped page %llu",
                            static_cast<unsigned long long>(p + i));
            s->epoch = 0;
        }
        num_mapped_ -= in_chunk;
        p += in_chunk;
        left -= in_chunk;
    }
}

bool
PageTable::isMapped(PageId page) const
{
    if (backend_ == Backend::Hash)
        return entries_.find(page) != entries_.end();
    const DenseSlot *s = denseFind(page);
    return s && s->epoch == epoch_;
}

const PageEntry &
PageTable::entry(PageId page) const
{
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        SENTINEL_ASSERT(it != entries_.end(),
                        "entry() of unmapped page %llu",
                        static_cast<unsigned long long>(page));
        return it->second;
    }
    const DenseSlot *s = denseFind(page);
    SENTINEL_ASSERT(s && s->epoch == epoch_, "entry() of unmapped page %llu",
                    static_cast<unsigned long long>(page));
    return s->entry;
}

PageRunState
PageTable::runState(PageId first, std::uint64_t count) const
{
    SENTINEL_ASSERT(count > 0, "runState() of empty range");
    const PageEntry &e0 = entry(first);
    PageRunState rs{e0.tier, e0.in_flight, 1};
    if (backend_ == Backend::Hash) {
        while (rs.count < count) {
            const PageEntry &e = entry(first + rs.count);
            if (e.tier != rs.tier || e.in_flight != rs.in_flight)
                break;
            ++rs.count;
        }
        return rs;
    }
    // Dense: stream chunk by chunk so the inner loop is a linear scan.
    PageId p = first + 1;
    std::uint64_t left = count - 1;
    while (left > 0) {
        const DenseSlot *s = denseFind(p);
        std::uint64_t in_chunk =
            std::min<std::uint64_t>(left, kChunkPages - (p & kChunkMask));
        for (std::uint64_t i = 0; i < in_chunk; ++i, ++s) {
            SENTINEL_ASSERT(s && s->epoch == epoch_,
                            "runState() over unmapped page %llu",
                            static_cast<unsigned long long>(p + i));
            if (s->entry.tier != rs.tier || s->entry.in_flight != rs.in_flight)
                return rs;
            ++rs.count;
        }
        p += in_chunk;
        left -= in_chunk;
    }
    return rs;
}

bool
PageTable::anyInFlight(PageId first, std::uint64_t count) const
{
    for (std::uint64_t i = 0; i < count; ++i)
        if (entry(first + i).in_flight)
            return true;
    return false;
}

PageEntry &
PageTable::mutableEntry(PageId page)
{
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        SENTINEL_ASSERT(it != entries_.end(),
                        "access to unmapped page %llu",
                        static_cast<unsigned long long>(page));
        return it->second;
    }
    DenseSlot *s = denseFind(page);
    SENTINEL_ASSERT(s && s->epoch == epoch_, "access to unmapped page %llu",
                    static_cast<unsigned long long>(page));
    return s->entry;
}

std::uint64_t
PageTable::beginMigration(PageId page, Tier dest, Tick arrival)
{
    PageEntry &e = mutableEntry(page);
    SENTINEL_ASSERT(!e.in_flight, "page %llu is already migrating",
                    static_cast<unsigned long long>(page));
    SENTINEL_ASSERT(e.tier != dest, "migration to the same tier");
    e.in_flight = true;
    e.dest = dest;
    e.arrival = arrival;
    e.seq = next_seq_++;
    return e.seq;
}

bool
PageTable::commitMigration(PageId page, std::uint64_t seq)
{
    PageEntry *e = nullptr;
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        if (it == entries_.end())
            return false; // freed while in flight
        e = &it->second;
    } else {
        DenseSlot *s = denseFind(page);
        if (!s || s->epoch != epoch_)
            return false; // freed while in flight
        e = &s->entry;
    }
    if (!e->in_flight || e->seq != seq)
        return false; // cancelled or superseded
    e->tier = e->dest;
    e->in_flight = false;
    return true;
}

void
PageTable::cancelMigration(PageId page)
{
    PageEntry &e = mutableEntry(page);
    SENTINEL_ASSERT(e.in_flight, "cancel of non-migrating page");
    e.in_flight = false;
}

void
PageTable::clear()
{
    entries_.clear();
    num_mapped_ = 0;
    // O(1) dense clear: bump the epoch; old slots become unmapped.  On
    // the (astronomically rare) wrap, drop the chunks so stale epochs
    // cannot alias the restarted counter.
    if (++epoch_ == 0) {
        chunks_.clear();
        epoch_ = 1;
    }
}

} // namespace sentinel::mem
