#include "mem/page_table.hh"

#include "common/logging.hh"

namespace sentinel::mem {

void
PageTable::map(PageId page, Tier tier)
{
    auto [it, inserted] = entries_.emplace(page, PageEntry{});
    SENTINEL_ASSERT(inserted, "page %llu already mapped",
                    static_cast<unsigned long long>(page));
    it->second.tier = tier;
}

void
PageTable::unmap(PageId page)
{
    auto erased = entries_.erase(page);
    SENTINEL_ASSERT(erased == 1, "unmap of unmapped page %llu",
                    static_cast<unsigned long long>(page));
}

bool
PageTable::isMapped(PageId page) const
{
    return entries_.find(page) != entries_.end();
}

const PageEntry &
PageTable::entry(PageId page) const
{
    auto it = entries_.find(page);
    SENTINEL_ASSERT(it != entries_.end(), "entry() of unmapped page %llu",
                    static_cast<unsigned long long>(page));
    return it->second;
}

PageEntry &
PageTable::mutableEntry(PageId page)
{
    auto it = entries_.find(page);
    SENTINEL_ASSERT(it != entries_.end(), "access to unmapped page %llu",
                    static_cast<unsigned long long>(page));
    return it->second;
}

std::uint64_t
PageTable::beginMigration(PageId page, Tier dest, Tick arrival)
{
    PageEntry &e = mutableEntry(page);
    SENTINEL_ASSERT(!e.in_flight, "page %llu is already migrating",
                    static_cast<unsigned long long>(page));
    SENTINEL_ASSERT(e.tier != dest, "migration to the same tier");
    e.in_flight = true;
    e.dest = dest;
    e.arrival = arrival;
    e.seq = next_seq_++;
    return e.seq;
}

bool
PageTable::commitMigration(PageId page, std::uint64_t seq)
{
    auto it = entries_.find(page);
    if (it == entries_.end())
        return false; // freed while in flight
    PageEntry &e = it->second;
    if (!e.in_flight || e.seq != seq)
        return false; // cancelled or superseded
    e.tier = e.dest;
    e.in_flight = false;
    return true;
}

void
PageTable::cancelMigration(PageId page)
{
    PageEntry &e = mutableEntry(page);
    SENTINEL_ASSERT(e.in_flight, "cancel of non-migrating page");
    e.in_flight = false;
}

} // namespace sentinel::mem
