#include "mem/page_table.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace sentinel::mem {

PageTable::Backend
PageTable::defaultBackend()
{
#ifdef SENTINEL_DENSE_PT_OFF
    return Backend::Hash;
#else
    return Backend::Dense;
#endif
}

PageTable::PageTable(Backend backend) : backend_(backend) {}

PageTable::Chunk &
PageTable::chunkFor(PageId page)
{
    SENTINEL_ASSERT(page < kMaxPages, "page %llu beyond dense table range",
                    static_cast<unsigned long long>(page));
    std::uint64_t c = page >> kChunkBits;
    if (c >= chunks_.size())
        chunks_.resize(c + 1);
    Chunk &ch = chunks_[c];
    if (ch.epoch != epoch_) {
        // Stale (or fresh) chunk: recycle it lazily on first touch of
        // the new epoch.  Cold arrays may keep stale values — they are
        // only read under the in-flight bit, which this reset clears.
        if (!ch.state)
            ch.state = std::make_unique<std::uint8_t[]>(kChunkPages);
        std::memset(ch.state.get(), kStateUnmapped, kChunkPages);
        ch.mapped = ch.inflight = 0;
        std::memset(ch.tiers, 0, sizeof(ch.tiers));
        ch.epoch = epoch_;
    }
    return ch;
}

void
PageTable::ensureCold(Chunk &ch)
{
    if (!ch.arrival) {
        ch.arrival = std::make_unique<Tick[]>(kChunkPages);
        ch.seq = std::make_unique<std::uint64_t[]>(kChunkPages);
        ch.dest = std::make_unique<std::uint8_t[]>(kChunkPages);
    }
}

void
PageTable::map(PageId page, Tier tier)
{
    if (backend_ == Backend::Hash) {
        auto [it, inserted] = entries_.emplace(page, PageEntry{});
        SENTINEL_ASSERT(inserted, "page %llu already mapped",
                        static_cast<unsigned long long>(page));
        it->second.tier = tier;
        ++num_mapped_;
        return;
    }
    Chunk &ch = chunkFor(page);
    std::uint8_t &s = ch.state[page & kChunkMask];
    SENTINEL_ASSERT(s == kStateUnmapped, "page %llu already mapped",
                    static_cast<unsigned long long>(page));
    s = stateByte(tier, false);
    ++ch.mapped;
    ++ch.tiers[tierIndex(tier)];
    ++num_mapped_;
}

void
PageTable::mapRange(PageId first, std::uint64_t count, Tier tier)
{
    if (backend_ == Backend::Hash) {
        for (std::uint64_t i = 0; i < count; ++i)
            map(first + i, tier);
        return;
    }
    const std::uint8_t val = stateByte(tier, false);
    PageId p = first;
    std::uint64_t left = count;
    while (left > 0) {
        Chunk &ch = chunkFor(p);
        std::uint64_t off = p & kChunkMask;
        std::uint64_t in_chunk = std::min<std::uint64_t>(left,
                                                         kChunkPages - off);
        std::uint8_t *s = ch.state.get() + off;
        for (std::uint64_t i = 0; i < in_chunk; ++i)
            SENTINEL_ASSERT(s[i] == kStateUnmapped,
                            "page %llu already mapped",
                            static_cast<unsigned long long>(p + i));
        std::memset(s, val, in_chunk);
        ch.mapped += static_cast<std::uint32_t>(in_chunk);
        ch.tiers[tierIndex(tier)] += static_cast<std::uint32_t>(in_chunk);
        num_mapped_ += in_chunk;
        p += in_chunk;
        left -= in_chunk;
    }
}

void
PageTable::unmap(PageId page)
{
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        SENTINEL_ASSERT(it != entries_.end(),
                        "unmap of unmapped page %llu",
                        static_cast<unsigned long long>(page));
        if (it->second.in_flight)
            --num_inflight_;
        entries_.erase(it);
        --num_mapped_;
        return;
    }
    const Chunk *c = findChunk(page);
    SENTINEL_ASSERT(c && c->state[page & kChunkMask] != kStateUnmapped,
                    "unmap of unmapped page %llu",
                    static_cast<unsigned long long>(page));
    Chunk &ch = const_cast<Chunk &>(*c);
    std::uint8_t &s = ch.state[page & kChunkMask];
    --ch.mapped;
    --ch.tiers[s & kStateTierMask];
    if (s & kStateFlightBit) {
        --ch.inflight;
        --num_inflight_;
    }
    s = kStateUnmapped;
    --num_mapped_;
}

void
PageTable::unmapRange(PageId first, std::uint64_t count)
{
    if (backend_ == Backend::Hash) {
        for (std::uint64_t i = 0; i < count; ++i)
            unmap(first + i);
        return;
    }
    PageId p = first;
    std::uint64_t left = count;
    while (left > 0) {
        const Chunk *c = findChunk(p);
        SENTINEL_ASSERT(c, "unmap of unmapped page %llu",
                        static_cast<unsigned long long>(p));
        Chunk &ch = const_cast<Chunk &>(*c);
        std::uint64_t off = p & kChunkMask;
        std::uint64_t in_chunk = std::min<std::uint64_t>(left,
                                                         kChunkPages - off);
        std::uint8_t *s = ch.state.get() + off;
        std::uint32_t tiers[kMaxTiers] = {};
        std::uint32_t inflight = 0;
        for (std::uint64_t i = 0; i < in_chunk; ++i) {
            SENTINEL_ASSERT(s[i] != kStateUnmapped,
                            "unmap of unmapped page %llu",
                            static_cast<unsigned long long>(p + i));
            ++tiers[s[i] & kStateTierMask];
            inflight += (s[i] & kStateFlightBit) ? 1 : 0;
        }
        std::memset(s, kStateUnmapped, in_chunk);
        ch.mapped -= static_cast<std::uint32_t>(in_chunk);
        for (unsigned t = 0; t < kMaxTiers; ++t)
            ch.tiers[t] -= tiers[t];
        ch.inflight -= inflight;
        num_inflight_ -= inflight;
        num_mapped_ -= in_chunk;
        p += in_chunk;
        left -= in_chunk;
    }
}

bool
PageTable::isMapped(PageId page) const
{
    if (backend_ == Backend::Hash)
        return entries_.find(page) != entries_.end();
    const Chunk *c = findChunk(page);
    return c && c->state[page & kChunkMask] != kStateUnmapped;
}

PageEntry
PageTable::entry(PageId page) const
{
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        SENTINEL_ASSERT(it != entries_.end(),
                        "entry() of unmapped page %llu",
                        static_cast<unsigned long long>(page));
        return it->second;
    }
    const Chunk *c = findChunk(page);
    SENTINEL_ASSERT(c && c->state[page & kChunkMask] != kStateUnmapped,
                    "entry() of unmapped page %llu",
                    static_cast<unsigned long long>(page));
    std::uint64_t off = page & kChunkMask;
    std::uint8_t s = c->state[off];
    PageEntry e;
    e.tier = tierOf(s);
    e.in_flight = flightOf(s);
    // The cold arrays hold dest/arrival/seq only while the in-flight
    // bit is set; an idle page's destination is its own tier.
    e.dest = (e.in_flight && c->dest) ? makeTier(c->dest[off]) : e.tier;
    e.arrival = (e.in_flight && c->arrival) ? c->arrival[off] : 0;
    e.seq = c->seq ? c->seq[off] : 0;
    return e;
}

PageRunState
PageTable::runState(PageId first, std::uint64_t count) const
{
    SENTINEL_ASSERT(count > 0, "runState() of empty range");
    if (backend_ == Backend::Hash) {
        PageEntry e0 = entry(first);
        PageRunState rs{ e0.tier, e0.in_flight, 1 };
        while (rs.count < count) {
            PageEntry e = entry(first + rs.count);
            if (e.tier != rs.tier || e.in_flight != rs.in_flight)
                break;
            ++rs.count;
        }
        return rs;
    }
    // Dense: one chunk at a time.  A chunk whose summary counters say
    // "every mapped page matches the run state" extends the run by the
    // whole sub-range without touching the state bytes (the caller
    // guarantees the range is mapped); mixed chunks fall back to a
    // linear byte scan.
    const Chunk *c0 = findChunk(first);
    SENTINEL_ASSERT(c0 && c0->state[first & kChunkMask] != kStateUnmapped,
                    "runState() over unmapped page %llu",
                    static_cast<unsigned long long>(first));
    const std::uint8_t s0 = c0->state[first & kChunkMask];
    PageRunState rs{ tierOf(s0), flightOf(s0), 1 };

    PageId p = first + 1;
    std::uint64_t left = count - 1;
    while (left > 0) {
        const Chunk *c = findChunk(p);
        SENTINEL_ASSERT(c, "runState() over unmapped page %llu",
                        static_cast<unsigned long long>(p));
        std::uint64_t off = p & kChunkMask;
        std::uint64_t in_chunk = std::min<std::uint64_t>(left,
                                                         kChunkPages - off);
        bool uniform = false;
        if (c->inflight == 0 && !flightOf(s0))
            uniform = c->tiers[s0 & kStateTierMask] == c->mapped;
        if (uniform) {
            rs.count += in_chunk;
        } else {
            // Word-wide run scan: eight state bytes per compare, with
            // countr_zero picking the first mismatching byte.  This
            // loop is the hottest in the simulator (every extent walk
            // funnels through it), so the byte loop only handles the
            // tail.
            const std::uint8_t *s = c->state.get() + off;
            const std::uint64_t pat = 0x0101010101010101ull * s0;
            std::uint64_t i = 0;
            while (i + 8 <= in_chunk) {
                std::uint64_t w;
                std::memcpy(&w, s + i, 8);
                if (w != pat) {
                    i += static_cast<std::uint64_t>(
                             std::countr_zero(w ^ pat)) /
                         8;
                    break;
                }
                i += 8;
            }
            while (i < in_chunk && s[i] == s0)
                ++i;
            rs.count += i;
            if (i < in_chunk) {
                SENTINEL_ASSERT(s[i] != kStateUnmapped,
                                "runState() over unmapped page %llu",
                                static_cast<unsigned long long>(p + i));
                return rs;
            }
        }
        p += in_chunk;
        left -= in_chunk;
    }
    return rs;
}

bool
PageTable::anyInFlight(PageId first, std::uint64_t count) const
{
    if (backend_ == Backend::Hash) {
        for (std::uint64_t i = 0; i < count; ++i)
            if (entry(first + i).in_flight)
                return true;
        return false;
    }
    PageId p = first;
    std::uint64_t left = count;
    while (left > 0) {
        const Chunk *c = findChunk(p);
        SENTINEL_ASSERT(c, "anyInFlight() over unmapped page %llu",
                        static_cast<unsigned long long>(p));
        std::uint64_t off = p & kChunkMask;
        std::uint64_t in_chunk = std::min<std::uint64_t>(left,
                                                         kChunkPages - off);
        if (c->inflight > 0) {
            const std::uint8_t *s = c->state.get() + off;
            for (std::uint64_t i = 0; i < in_chunk; ++i) {
                SENTINEL_ASSERT(s[i] != kStateUnmapped,
                                "anyInFlight() over unmapped page %llu",
                                static_cast<unsigned long long>(p + i));
                if (s[i] & kStateFlightBit)
                    return true;
            }
        }
        p += in_chunk;
        left -= in_chunk;
    }
    return false;
}

std::uint64_t
PageTable::beginMigration(PageId page, Tier dest, Tick arrival)
{
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        SENTINEL_ASSERT(it != entries_.end(),
                        "access to unmapped page %llu",
                        static_cast<unsigned long long>(page));
        PageEntry &e = it->second;
        SENTINEL_ASSERT(!e.in_flight, "page %llu is already migrating",
                        static_cast<unsigned long long>(page));
        SENTINEL_ASSERT(e.tier != dest, "migration to the same tier");
        e.in_flight = true;
        e.dest = dest;
        e.arrival = arrival;
        e.seq = next_seq_++;
        ++num_inflight_;
        return e.seq;
    }
    const Chunk *c = findChunk(page);
    SENTINEL_ASSERT(c && c->state[page & kChunkMask] != kStateUnmapped,
                    "access to unmapped page %llu",
                    static_cast<unsigned long long>(page));
    Chunk &ch = const_cast<Chunk &>(*c);
    std::uint64_t off = page & kChunkMask;
    std::uint8_t &s = ch.state[off];
    SENTINEL_ASSERT(!flightOf(s), "page %llu is already migrating",
                    static_cast<unsigned long long>(page));
    SENTINEL_ASSERT(tierOf(s) != dest, "migration to the same tier");
    ensureCold(ch);
    s |= kStateFlightBit;
    ++ch.inflight;
    ++num_inflight_;
    ch.arrival[off] = arrival;
    ch.seq[off] = next_seq_++;
    ch.dest[off] = static_cast<std::uint8_t>(tierIndex(dest));
    return ch.seq[off];
}

bool
PageTable::commitMigration(PageId page, std::uint64_t seq)
{
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        if (it == entries_.end())
            return false; // freed while in flight
        PageEntry &e = it->second;
        if (!e.in_flight || e.seq != seq)
            return false; // cancelled or superseded
        e.tier = e.dest;
        e.in_flight = false;
        --num_inflight_;
        return true;
    }
    const Chunk *c = findChunk(page);
    if (!c)
        return false; // freed while in flight
    std::uint64_t off = page & kChunkMask;
    std::uint8_t s = c->state[off];
    if (s == kStateUnmapped || !flightOf(s) || c->seq[off] != seq)
        return false; // freed, cancelled, or superseded
    Chunk &ch = const_cast<Chunk &>(*c);
    // Arrive at the recorded destination tier, clear in-flight.
    std::uint8_t landed = ch.dest[off];
    ch.state[off] = landed;
    --ch.tiers[s & kStateTierMask];
    ++ch.tiers[landed & kStateTierMask];
    --ch.inflight;
    --num_inflight_;
    return true;
}

std::uint64_t
PageTable::beginMigrationRun(std::span<const std::pair<PageId, Tick>> run,
                             Tier dest)
{
    SENTINEL_ASSERT(!run.empty(), "empty migration run");
    if (backend_ == Backend::Hash) {
        std::uint64_t seq0 = beginMigration(run[0].first, dest,
                                            run[0].second);
        for (std::size_t i = 1; i < run.size(); ++i)
            beginMigration(run[i].first, dest, run[i].second);
        return seq0;
    }
    const std::uint64_t seq0 = next_seq_;
    std::size_t i = 0;
    while (i < run.size()) {
        const PageId page = run[i].first;
        const Chunk *c = findChunk(page);
        SENTINEL_ASSERT(c, "access to unmapped page %llu",
                        static_cast<unsigned long long>(page));
        Chunk &ch = const_cast<Chunk &>(*c);
        ensureCold(ch);
        const std::uint64_t off = page & kChunkMask;
        const std::uint64_t in_chunk =
            std::min<std::uint64_t>(run.size() - i, kChunkPages - off);
        for (std::uint64_t k = 0; k < in_chunk; ++k) {
            SENTINEL_ASSERT(run[i + k].first == page + k,
                            "migration run is not consecutive at %llu",
                            static_cast<unsigned long long>(page + k));
            std::uint8_t &s = ch.state[off + k];
            SENTINEL_ASSERT(s != kStateUnmapped,
                            "access to unmapped page %llu",
                            static_cast<unsigned long long>(page + k));
            SENTINEL_ASSERT(!flightOf(s), "page %llu is already migrating",
                            static_cast<unsigned long long>(page + k));
            SENTINEL_ASSERT(tierOf(s) != dest, "migration to the same tier");
            s |= kStateFlightBit;
            ch.arrival[off + k] = run[i + k].second;
            ch.seq[off + k] = next_seq_++;
            ch.dest[off + k] = static_cast<std::uint8_t>(tierIndex(dest));
        }
        ch.inflight += static_cast<std::uint32_t>(in_chunk);
        num_inflight_ += in_chunk;
        i += in_chunk;
    }
    return seq0;
}

std::uint64_t
PageTable::commitMigrationRun(PageId first, std::uint64_t count,
                              std::uint64_t seq0)
{
    if (backend_ == Backend::Hash) {
        std::uint64_t done = 0;
        for (std::uint64_t k = 0; k < count; ++k)
            done += commitMigration(first + k, seq0 + k) ? 1 : 0;
        return done;
    }
    std::uint64_t done = 0;
    std::uint64_t k = 0;
    while (k < count) {
        const PageId page = first + k;
        const std::uint64_t off = page & kChunkMask;
        const std::uint64_t in_chunk =
            std::min<std::uint64_t>(count - k, kChunkPages - off);
        const Chunk *c = findChunk(page);
        if (!c) { // whole chunk freed while in flight
            k += in_chunk;
            continue;
        }
        Chunk &ch = const_cast<Chunk &>(*c);
        for (std::uint64_t m = 0; m < in_chunk; ++m) {
            std::uint8_t s = ch.state[off + m];
            if (s == kStateUnmapped || !flightOf(s) ||
                ch.seq[off + m] != seq0 + k + m)
                continue; // freed, cancelled, or superseded
            std::uint8_t landed = ch.dest[off + m];
            ch.state[off + m] = landed;
            --ch.tiers[s & kStateTierMask];
            ++ch.tiers[landed & kStateTierMask];
            --ch.inflight;
            --num_inflight_;
            ++done;
        }
        k += in_chunk;
    }
    return done;
}

void
PageTable::cancelMigration(PageId page)
{
    if (backend_ == Backend::Hash) {
        auto it = entries_.find(page);
        SENTINEL_ASSERT(it != entries_.end(),
                        "access to unmapped page %llu",
                        static_cast<unsigned long long>(page));
        SENTINEL_ASSERT(it->second.in_flight,
                        "cancel of non-migrating page");
        it->second.in_flight = false;
        --num_inflight_;
        return;
    }
    const Chunk *c = findChunk(page);
    SENTINEL_ASSERT(c && c->state[page & kChunkMask] != kStateUnmapped,
                    "access to unmapped page %llu",
                    static_cast<unsigned long long>(page));
    Chunk &ch = const_cast<Chunk &>(*c);
    std::uint8_t &s = ch.state[page & kChunkMask];
    SENTINEL_ASSERT(flightOf(s), "cancel of non-migrating page");
    s &= static_cast<std::uint8_t>(~kStateFlightBit);
    --ch.inflight;
    --num_inflight_;
}

void
PageTable::clear()
{
    entries_.clear();
    num_mapped_ = 0;
    num_inflight_ = 0;
    // O(1) dense clear: bump the epoch; old chunks become stale and are
    // recycled (not re-allocated) on their next touch.  On the
    // (astronomically rare) wrap, drop the chunks so stale epochs
    // cannot alias the restarted counter.
    if (++epoch_ == 0) {
        chunks_.clear();
        epoch_ = 1;
    }
}

} // namespace sentinel::mem
