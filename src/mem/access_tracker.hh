/**
 * @file
 * Model of the paper's OS-level access-counting mechanism.
 *
 * Sentinel counts main-memory accesses per page by poisoning a reserved
 * PTE bit (bit 51) and flushing the TLB: every subsequent access to the
 * page raises a protection fault, whose handler increments the page's
 * counter, re-poisons the PTE and flushes it again (Sec. III-A).  The
 * mechanism is exact — every main-memory access is observed — but each
 * observation pays a fault + TLB-flush cost, which is why the paper's
 * profiling step runs up to ~5x slower (Sec. VII-B).
 *
 * This class reproduces both properties: exact per-page counts, and a
 * per-observation Tick cost the executor charges to the profiling step.
 * State lives in a chunked PageDirectory rather than a hash map, so the
 * per-access lookup on the executor's range path is two loads.
 */

#ifndef SENTINEL_MEM_ACCESS_TRACKER_HH
#define SENTINEL_MEM_ACCESS_TRACKER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "mem/page.hh"
#include "mem/page_directory.hh"

namespace sentinel::mem {

/** Per-page read/write counters collected during the profiling step. */
struct PageAccessCounts {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    std::uint64_t total() const { return reads + writes; }
};

/** Tracking state + counters for one page. */
struct PageTrackState {
    PageAccessCounts counts;
    bool tracked = false; ///< PTE currently poisoned
};

class AccessTracker
{
  public:
    /**
     * @param fault_cost cost of one protection fault + PTE poison +
     *        TLB flush round-trip, charged per observed access.
     */
    explicit AccessTracker(Tick fault_cost = 2 * kUsec)
        : fault_cost_(fault_cost)
    {
    }

    /** Sizing hint.  The chunked directory allocates on first touch,
     *  so this is a no-op kept for API stability. */
    void reserve(std::size_t /*expected_pages*/) {}

    /** Begin tracking @p page (poison its PTE). */
    void track(PageId page);

    /** Begin tracking [first, first+count). */
    void trackRange(PageId first, std::uint64_t count);

    /** Stop tracking @p page (counts are retained). */
    void untrack(PageId page);

    /** Stop tracking [first, first+count). */
    void untrackRange(PageId first, std::uint64_t count);

    bool isTracked(PageId page) const;

    /**
     * Observe @p count accesses to @p page.
     *
     * @return the fault-handling cost to charge to the critical path
     *         (zero if the page is not tracked).
     */
    Tick onAccess(PageId page, bool is_write, std::uint64_t count = 1);

    /**
     * Snapshot of every page with tracking state or recorded counts,
     * sorted by page id.
     */
    std::vector<std::pair<PageId, PageTrackState>> allCounts() const;

    /** Counts for @p page (zeros if never tracked). */
    PageAccessCounts counts(PageId page) const;

    std::uint64_t totalFaults() const { return total_faults_; }
    Tick faultCost() const { return fault_cost_; }

    void reset();

  private:
    Tick fault_cost_;
    PageDirectory<PageTrackState> pages_;
    std::uint64_t total_faults_ = 0;
};

} // namespace sentinel::mem

#endif // SENTINEL_MEM_ACCESS_TRACKER_HH
