#include "mem/dram_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::mem {

DramCache::DramCache(std::uint64_t capacity, unsigned associativity)
    : assoc_(associativity)
{
    SENTINEL_ASSERT(associativity > 0, "associativity must be positive");
    std::uint64_t frames = capacity / kPageSize;
    num_sets_ = std::max<std::uint64_t>(1, frames / associativity);
    sets_.resize(num_sets_);
    for (auto &s : sets_)
        s.resize(assoc_);
}

std::vector<DramCache::Way> &
DramCache::set(PageId page)
{
    // Simple modulo indexing; pages of one tensor are contiguous, so
    // consecutive pages land in consecutive sets, as in real hardware.
    return sets_[page % num_sets_];
}

bool
DramCache::contains(PageId page) const
{
    const auto &s = sets_[page % num_sets_];
    return std::any_of(s.begin(), s.end(), [page](const Way &w) {
        return w.valid && w.page == page;
    });
}

DramCacheResult
DramCache::access(PageId page, bool is_write)
{
    DramCacheResult result;
    auto &s = set(page);
    ++lru_clock_;

    for (Way &w : s) {
        if (w.valid && w.page == page) {
            w.lru = lru_clock_;
            w.dirty = w.dirty || is_write;
            ++hits_;
            result.hit = true;
            return result;
        }
    }

    // Miss: pick an invalid way or the LRU victim.
    Way *victim = &s[0];
    for (Way &w : s) {
        if (!w.valid) {
            victim = &w;
            break;
        }
        if (w.lru < victim->lru)
            victim = &w;
    }

    ++misses_;
    result.fill_bytes = kPageSize;
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        result.writeback_bytes = kPageSize;
    }

    victim->page = page;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = lru_clock_;
    return result;
}

DramCacheRangeResult
DramCache::accessRange(PageId first, std::uint64_t count, bool is_write)
{
    DramCacheRangeResult out;
    for (std::uint64_t i = 0; i < count; ++i) {
        DramCacheResult r = access(first + i, is_write);
        if (!r.hit)
            ++out.misses;
        if (r.writeback_bytes > 0)
            ++out.writebacks;
    }
    return out;
}

void
DramCache::reset()
{
    for (auto &s : sets_)
        for (auto &w : s)
            w = Way{};
    lru_clock_ = 0;
    hits_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

} // namespace sentinel::mem
