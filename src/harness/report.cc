#include "harness/report.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/percentile.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"

namespace sentinel::harness {

namespace {

using telemetry::AttrBucket;
using telemetry::AttrComponent;
using telemetry::AttributionEngine;
using telemetry::AuditLog;
using telemetry::AuditRecord;
using telemetry::TensorAttr;

double
ms(Tick t)
{
    return toMillis(t);
}

std::string
tensorName(const df::Graph &graph, std::uint32_t tensor)
{
    if (tensor == telemetry::kAttrNoTensor)
        return "(unattributed)";
    if (tensor < graph.numTensors())
        return graph.tensor(tensor).name;
    return strprintf("t%u", tensor);
}

struct Offender {
    std::uint32_t tensor;
    TensorAttr attr;
};

/** Tensors by exposed+alloc stall time, worst first; stable order. */
std::vector<Offender>
rankOffenders(const AttributionEngine &attr)
{
    std::vector<Offender> out;
    for (const auto &kv : attr.byTensor()) {
        if (kv.second.exposedMigration() == 0 &&
            kv.second.stall_events == 0)
            continue;
        out.push_back({ kv.first, kv.second });
    }
    std::sort(out.begin(), out.end(),
              [](const Offender &a, const Offender &b) {
                  Tick ta = a.attr.exposedMigration();
                  Tick tb = b.attr.exposedMigration();
                  if (ta != tb)
                      return ta > tb;
                  if (a.attr.stall_events != b.attr.stall_events)
                      return a.attr.stall_events > b.attr.stall_events;
                  return a.tensor < b.tensor;
              });
    return out;
}

/** "kEvictForSpace @step 4" for the offender table, or "-". */
std::string
lastDecision(const AuditLog &audit, std::uint32_t tensor)
{
    if (tensor == telemetry::kAttrNoTensor)
        return "-";
    const AuditRecord *r = audit.lastForTensor(tensor);
    if (!r)
        return "-";
    return strprintf("%s @step %d", auditReasonName(r->reason), r->step);
}

std::string
intervalLabel(int k)
{
    return k < 0 ? std::string("-") : strprintf("%d", k);
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
appendBucketJson(std::ostringstream &os, const AttrBucket &b)
{
    os << "\"execution_ns\":" << b.component(AttrComponent::Execution)
       << ",\"exposed_ns\":" << b.component(AttrComponent::Exposed)
       << ",\"alloc_ns\":" << b.component(AttrComponent::Alloc)
       << ",\"policy_ns\":" << b.component(AttrComponent::Policy)
       << ",\"fault_ns\":" << b.component(AttrComponent::Fault)
       << ",\"recompute_ns\":" << b.component(AttrComponent::Recompute)
       << ",\"stalls\":" << b.stall_events
       << ",\"promoted_bytes\":" << b.promoted_bytes
       << ",\"demoted_bytes\":" << b.demoted_bytes;
}

} // namespace

std::string
buildStallReport(const df::Graph &graph, const AttributionEngine &attr,
                 const AuditLog &audit, const ReportOptions &opts)
{
    std::ostringstream os;

    // StepStats' own totals, as claimed by the executor at each
    // endStep — the numbers the attribution must reproduce exactly.
    Tick claimed_exposed = 0;
    std::uint64_t claimed_stalls = 0;
    for (const auto &sa : attr.steps()) {
        claimed_exposed += sa.exposed_migration;
        claimed_stalls += sa.num_stalls;
    }
    AttrBucket total = attr.totals();

    os << strprintf("Stall attribution over %zu steps: attributed "
                    "exposed-migration %.3f ms vs StepStats %.3f ms "
                    "(%s), %llu stall events vs %llu (%s)\n",
                    attr.steps().size(), ms(total.exposedMigration()),
                    ms(claimed_exposed),
                    total.exposedMigration() == claimed_exposed
                        ? "exact"
                        : "MISMATCH",
                    static_cast<unsigned long long>(total.stall_events),
                    static_cast<unsigned long long>(claimed_stalls),
                    total.stall_events == claimed_stalls ? "exact"
                                                         : "MISMATCH");
    if (!attr.steps().empty()) {
        std::vector<double> exposed_ms;
        for (const auto &sa : attr.steps())
            exposed_ms.push_back(ms(sa.exposed_migration));
        PercentileSummary pct =
            PercentileSummary::of(std::move(exposed_ms));
        os << strprintf("Per-step exposed migration: p50 %.3f ms, "
                        "p95 %.3f ms, p99 %.3f ms over %llu steps\n",
                        pct.p50, pct.p95, pct.p99,
                        static_cast<unsigned long long>(pct.count));
    }
    os << "\n";

    // --- Per-interval breakdown ---------------------------------------
    {
        Table t("Per-interval breakdown (all steps)",
                { "interval", "exec (ms)", "exposed (ms)", "alloc (ms)",
                  "policy (ms)", "fault (ms)", "recomp (ms)", "stalls",
                  "promoted (MB)", "demoted (MB)", "total (ms)" });
        // Pre-render every row concurrently; appending stays serial so
        // the output is identical for any jobs value.
        std::vector<std::pair<int, AttrBucket>> rows(
            attr.byInterval().begin(), attr.byInterval().end());
        std::vector<std::vector<std::string>> cells(rows.size());
        parallelFor(rows.size(), opts.jobs, [&](std::size_t i) {
            const AttrBucket &b = rows[i].second;
            cells[i] = {
                intervalLabel(rows[i].first),
                strprintf("%.3f", ms(b.component(AttrComponent::Execution))),
                strprintf("%.3f", ms(b.component(AttrComponent::Exposed))),
                strprintf("%.3f", ms(b.component(AttrComponent::Alloc))),
                strprintf("%.3f", ms(b.component(AttrComponent::Policy))),
                strprintf("%.3f", ms(b.component(AttrComponent::Fault))),
                strprintf("%.3f",
                          ms(b.component(AttrComponent::Recompute))),
                strprintf("%llu",
                          static_cast<unsigned long long>(b.stall_events)),
                strprintf("%.1f",
                          static_cast<double>(b.promoted_bytes) / 1e6),
                strprintf("%.1f",
                          static_cast<double>(b.demoted_bytes) / 1e6),
                strprintf("%.3f", ms(b.total())),
            };
        });
        for (const auto &row : cells) {
            t.row();
            for (const auto &c : row)
                t.cell(c);
        }
        t.row()
            .cell("all")
            .cell(ms(total.component(AttrComponent::Execution)), 3)
            .cell(ms(total.component(AttrComponent::Exposed)), 3)
            .cell(ms(total.component(AttrComponent::Alloc)), 3)
            .cell(ms(total.component(AttrComponent::Policy)), 3)
            .cell(ms(total.component(AttrComponent::Fault)), 3)
            .cell(ms(total.component(AttrComponent::Recompute)), 3)
            .cell(total.stall_events)
            .cell(static_cast<double>(total.promoted_bytes) / 1e6, 1)
            .cell(static_cast<double>(total.demoted_bytes) / 1e6, 1)
            .cell(ms(total.total()), 3);
        t.print(os);
    }
    os << "\n";

    // --- Top-K offenders ----------------------------------------------
    {
        std::vector<Offender> offenders = rankOffenders(attr);
        std::size_t k = std::min<std::size_t>(
            offenders.size(),
            opts.top_k > 0 ? static_cast<std::size_t>(opts.top_k) : 0);
        Table t(strprintf("Top stall offenders (%zu of %zu tensors with "
                          "stall time)",
                          k, offenders.size()),
                { "tensor", "name", "kind", "exposed (ms)", "alloc (ms)",
                  "stalls", "last decision" });
        std::vector<std::vector<std::string>> cells(k);
        parallelFor(k, opts.jobs, [&](std::size_t i) {
            const Offender &o = offenders[i];
            const char *kind =
                o.tensor < graph.numTensors()
                    ? df::tensorKindName(graph.tensor(o.tensor).kind)
                    : "-";
            cells[i] = {
                o.tensor == telemetry::kAttrNoTensor
                    ? std::string("-")
                    : strprintf("%u", o.tensor),
                tensorName(graph, o.tensor),
                kind,
                strprintf("%.3f", ms(o.attr.exposed)),
                strprintf("%.3f", ms(o.attr.alloc)),
                strprintf("%llu", static_cast<unsigned long long>(
                                      o.attr.stall_events)),
                lastDecision(audit, o.tensor),
            };
        });
        for (const auto &row : cells) {
            t.row();
            for (const auto &c : row)
                t.cell(c);
        }
        t.print(os);
    }

    os << strprintf("\naudit log: %zu decisions recorded, %llu dropped\n",
                    audit.size(),
                    static_cast<unsigned long long>(audit.dropped()));
    return os.str();
}

std::string
stallReportJson(const df::Graph &graph, const AttributionEngine &attr,
                const AuditLog &audit, const ReportOptions &opts)
{
    std::ostringstream os;
    Tick claimed_exposed = 0;
    std::uint64_t claimed_stalls = 0;
    for (const auto &sa : attr.steps()) {
        claimed_exposed += sa.exposed_migration;
        claimed_stalls += sa.num_stalls;
    }
    AttrBucket total = attr.totals();

    os << "{\"steps\":" << attr.steps().size()
       << ",\"exact\":" << (attr.allExact() ? "true" : "false")
       << ",\"claimed\":{\"exposed_migration_ns\":" << claimed_exposed
       << ",\"num_stalls\":" << claimed_stalls << "}"
       << ",\"totals\":{";
    appendBucketJson(os, total);
    os << "}";

    os << ",\"intervals\":[";
    bool first = true;
    for (const auto &kv : attr.byInterval()) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"interval\":" << kv.first << ",";
        appendBucketJson(os, kv.second);
        os << "}";
    }
    os << "]";

    os << ",\"layers\":[";
    first = true;
    for (const auto &kv : attr.byLayer()) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"layer\":" << kv.first << ",";
        appendBucketJson(os, kv.second);
        os << "}";
    }
    os << "]";

    std::vector<Offender> offenders = rankOffenders(attr);
    std::size_t k = std::min<std::size_t>(
        offenders.size(),
        opts.top_k > 0 ? static_cast<std::size_t>(opts.top_k) : 0);
    os << ",\"offenders\":[";
    for (std::size_t i = 0; i < k; ++i) {
        const Offender &o = offenders[i];
        if (i > 0)
            os << ",";
        os << "{\"tensor\":" << static_cast<std::int64_t>(
                                    o.tensor == telemetry::kAttrNoTensor
                                        ? -1
                                        : static_cast<std::int64_t>(
                                              o.tensor))
           << ",\"name\":\"" << escapeJson(tensorName(graph, o.tensor))
           << "\",\"exposed_ns\":" << o.attr.exposed
           << ",\"alloc_ns\":" << o.attr.alloc
           << ",\"stalls\":" << o.attr.stall_events;
        const AuditRecord *r =
            o.tensor == telemetry::kAttrNoTensor
                ? nullptr
                : audit.lastForTensor(o.tensor);
        if (r)
            os << ",\"last_reason\":\"" << auditReasonName(r->reason)
               << "\",\"last_step\":" << r->step;
        os << "}";
    }
    os << "]";

    os << ",\"audit\":{\"records\":" << audit.size()
       << ",\"dropped\":" << audit.dropped() << "}}";
    os << "\n";
    return os.str();
}

std::string
auditHistory(const df::Graph &graph, const AuditLog &audit,
             std::uint32_t tensor)
{
    std::ostringstream os;
    std::vector<AuditRecord> records = audit.forTensor(tensor);
    Table t(strprintf("Audit history of tensor %u (%s): %zu decisions",
                      tensor, tensorName(graph, tensor).c_str(),
                      records.size()),
            { "time (ms)", "step", "layer", "interval", "mil", "gen",
              "reason", "bytes" });
    for (const AuditRecord &r : records) {
        t.row()
            .cell(ms(r.ts), 3)
            .cell(r.step)
            .cell(static_cast<int>(r.layer))
            .cell(intervalLabel(r.interval))
            .cell(static_cast<int>(r.mil))
            .cell(static_cast<int>(r.plan_gen))
            .cell(auditReasonName(r.reason))
            .cell(static_cast<std::uint64_t>(r.bytes));
    }
    t.print(os);
    return os.str();
}

} // namespace sentinel::harness
