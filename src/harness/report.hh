/**
 * @file
 * The stall-attribution / decision-audit reporting surface.
 *
 * Turns an AttributionEngine + AuditLog pair left behind by a run into
 * the three artifacts `sentinel-cli report` serves:
 *
 *  - buildStallReport(): the human-readable report — a per-interval
 *    breakdown table whose exposed-migration column sums EXACTLY to
 *    the run's StepStats total (the engine's invariant), followed by
 *    the top-K stall offenders, each named and annotated with the last
 *    policy decision that touched it;
 *  - stallReportJson(): the same data as machine-readable JSON
 *    (`--report-out`);
 *  - auditHistory(): every decision recorded for one tensor
 *    (`--tensor`), answering "why was tensor X evicted?".
 *
 * All three are pure functions of their inputs returning one string:
 * rendering with `jobs > 1` parallelizes only the per-row formatting
 * work and is bit-identical to the serial output (tested).
 */

#ifndef SENTINEL_HARNESS_REPORT_HH
#define SENTINEL_HARNESS_REPORT_HH

#include <cstdint>
#include <string>

#include "dataflow/graph.hh"
#include "telemetry/attribution.hh"
#include "telemetry/audit.hh"

namespace sentinel::harness {

struct ReportOptions {
    /** Offender rows to show / export. */
    int top_k = 5;

    /** Worker threads for row rendering (<=1 = inline). */
    int jobs = 1;
};

/** The full text report (tables + exactness summary + offenders). */
std::string buildStallReport(const df::Graph &graph,
                             const telemetry::AttributionEngine &attr,
                             const telemetry::AuditLog &audit,
                             const ReportOptions &opts = {});

/** The same data as JSON (one object; stable key order). */
std::string stallReportJson(const df::Graph &graph,
                            const telemetry::AttributionEngine &attr,
                            const telemetry::AuditLog &audit,
                            const ReportOptions &opts = {});

/** Decision history of one tensor, in decision order. */
std::string auditHistory(const df::Graph &graph,
                         const telemetry::AuditLog &audit,
                         std::uint32_t tensor);

} // namespace sentinel::harness

#endif // SENTINEL_HARNESS_REPORT_HH
