#include "harness/oracle.hh"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "models/llm.hh"
#include "models/registry.hh"
#include "models/synthetic.hh"
#include "telemetry/session.hh"

namespace sentinel::harness {

namespace {

struct CellResult {
    OracleCell cell;
    std::vector<OracleViolation> violations;
};

void
addViolation(CellResult &r, const std::string &invariant,
             std::string detail)
{
    r.violations.push_back(OracleViolation{ invariant, r.cell.policy,
                                            r.cell.platform,
                                            std::move(detail) });
}

/** First differing field between two metric sets, or "". */
std::string
metricsDiff(const Metrics &a, const Metrics &b)
{
    if (a.supported != b.supported)
        return strprintf("supported %d != %d", a.supported, b.supported);
    if (a.feasible != b.feasible)
        return strprintf("feasible %d != %d", a.feasible, b.feasible);
    struct Field {
        const char *name;
        double a;
        double b;
    };
    const Field fields[] = {
        { "step_time_ms", a.step_time_ms, b.step_time_ms },
        { "step_p50_ms", a.step_p50_ms, b.step_p50_ms },
        { "step_p95_ms", a.step_p95_ms, b.step_p95_ms },
        { "step_p99_ms", a.step_p99_ms, b.step_p99_ms },
        { "throughput", a.throughput, b.throughput },
        { "exposed_ms", a.exposed_ms, b.exposed_ms },
        { "recompute_ms", a.recompute_ms, b.recompute_ms },
        { "fault_ms", a.fault_ms, b.fault_ms },
        { "promoted_mb", a.promoted_mb, b.promoted_mb },
        { "demoted_mb", a.demoted_mb, b.demoted_mb },
        { "bytes_fast_mb", a.bytes_fast_mb, b.bytes_fast_mb },
        { "bytes_slow_mb", a.bytes_slow_mb, b.bytes_slow_mb },
        { "peak_fast_mb", a.peak_fast_mb, b.peak_fast_mb },
        { "mil", double(a.mil), double(b.mil) },
        { "case3_events", double(a.case3_events),
          double(b.case3_events) },
        { "trial_steps", double(a.trial_steps), double(b.trial_steps) },
        { "pool_mb", a.pool_mb, b.pool_mb },
        { "divergence_events", double(a.divergence_events),
          double(b.divergence_events) },
        { "replans", double(a.replans), double(b.replans) },
        { "layout_mb", a.layout_mb, b.layout_mb },
    };
    for (const Field &f : fields)
        if (f.a != f.b)
            return strprintf("%s %.17g != %.17g", f.name, f.a, f.b);
    return "";
}

/** Run one instrumented (platform, policy) cell and check its local
 *  invariants.  Cross-cell invariants (traffic, determinism) are
 *  checked by the caller. */
CellResult
runCell(const ExperimentConfig &base, const std::string &policy,
        Platform plat, const char *plat_name, std::uint64_t fast_bytes,
        const OracleOptions &opts)
{
    CellResult r;
    r.cell.policy = policy;
    r.cell.platform = plat_name;

    ExperimentConfig cfg = base;
    cfg.platform = plat;
    // fast-only keeps its everything-fits tier when the caller did not
    // size the tier explicitly — it is the traffic reference, not a
    // capacity subject.
    bool oversized = policy == "fast-only" && base.fast_bytes == 0;
    cfg.fast_bytes = oversized ? 0 : fast_bytes;

    telemetry::Session session(
        telemetry::TelemetryConfig{ true, opts.ring_capacity });
    telemetry::AttributionEngine attr;
    telemetry::AuditLog audit;
    cfg.telemetry = &session;
    cfg.attribution = &attr;
    cfg.audit = &audit;

    StepTrace trace;
    try {
        trace = runExperimentSteps(cfg, policy);
    } catch (const ConfigError &) {
        throw; // precondition failure, not a violation
    } catch (const std::logic_error &e) {
        // Internal assertion: residency/accounting self-checks fired
        // (e.g. an op read a non-resident page, attribution drifted).
        addViolation(r, "internal-panic", e.what());
        return r;
    } catch (const std::runtime_error &e) {
        // runExperimentSteps maps expected OOM to infeasible; anything
        // escaping is an unclassified failure.
        addViolation(r, "run-error", e.what());
        return r;
    }

    r.cell.metrics = trace.metrics;
    r.cell.supported = trace.metrics.supported;
    r.cell.feasible = trace.metrics.feasible;
    if (!trace.metrics.supported || trace.steps.empty())
        return r; // unsupported graph or clean OOM: nothing to check
    r.cell.ran = true;

    bool injected = policy == opts.inject_policy;

    // --- traffic total (cross-checked against peers by the caller) ----
    for (const df::StepStats &s : trace.steps)
        r.cell.total_traffic += s.bytes_fast + s.bytes_slow;
    if (injected && opts.inject_traffic_skew != 0.0)
        r.cell.total_traffic = static_cast<std::uint64_t>(
            static_cast<double>(r.cell.total_traffic) *
            (1.0 + opts.inject_traffic_skew));

    // --- capacity (every chain tier) ----------------------------------
    if (!oversized) {
        // Rebuild the capacities exactly as runExperimentSteps sizes
        // them (same platformConfig path).
        std::uint64_t mid_bytes = 0;
        if (cfg.tiers >= 3)
            mid_bytes =
                cfg.mid_bytes != 0
                    ? cfg.mid_bytes
                    : mem::roundUpToPages(static_cast<std::uint64_t>(
                          static_cast<double>(fast_bytes) *
                          cfg.mid_fraction));
        std::vector<mem::TierParams> chain =
            platformConfig(plat, fast_bytes, cfg.tiers, mid_bytes,
                           cfg.mid_bw)
                .tierChain();
        bool violated = false;
        for (const df::StepStats &s : trace.steps) {
            for (std::size_t t = 0; t < chain.size() && !violated; ++t) {
                std::uint64_t cap = chain[t].capacity;
                if (t == 0 && injected &&
                    opts.inject_capacity_underreport > 0.0)
                    cap = static_cast<std::uint64_t>(
                        static_cast<double>(cap) *
                        (1.0 - opts.inject_capacity_underreport));
                if (s.peak_tier_used[t] > cap) {
                    addViolation(
                        r, "capacity",
                        strprintf(
                            "step %d peak %s occupancy %llu bytes > "
                            "capacity %llu bytes",
                            s.step, chain[t].name.c_str(),
                            static_cast<unsigned long long>(
                                s.peak_tier_used[t]),
                            static_cast<unsigned long long>(cap)));
                    violated = true;
                }
            }
            if (violated)
                break;
        }
    }

    // --- link conservation ---------------------------------------------
    // Each page-move charges every link its legs cross, once per leg;
    // the HM's StepStats totals charge the page once.  On a one-link
    // chain the two counts coincide exactly; on a longer chain the
    // per-link sum is bounded by [1, numLinks] legs per page.  (The
    // tick-exact per-link stall identity is enforced inside the
    // attribution engine itself and surfaces as internal-panic.)
    {
        std::uint64_t promoted = 0;
        std::uint64_t demoted = 0;
        for (const df::StepStats &s : trace.steps) {
            promoted += s.promoted_bytes;
            demoted += s.demoted_bytes;
        }
        std::uint64_t link_promoted = 0;
        std::uint64_t link_demoted = 0;
        for (const telemetry::LinkAttr &l : attr.byLink()) {
            link_promoted += l.promoted_bytes;
            link_demoted += l.demoted_bytes;
        }
        std::uint64_t links =
            cfg.tiers > 1 ? static_cast<std::uint64_t>(cfg.tiers) - 1 : 0;
        auto conserved = [links](std::uint64_t pages_bytes,
                                 std::uint64_t leg_bytes) {
            if (links <= 1)
                return leg_bytes == pages_bytes;
            return leg_bytes >= pages_bytes &&
                   leg_bytes <= links * pages_bytes;
        };
        if (cfg.tiers == 1 && (promoted != 0 || demoted != 0))
            addViolation(r, "link-conservation",
                         strprintf("single-tier chain migrated bytes "
                                   "(promoted %llu, demoted %llu)",
                                   static_cast<unsigned long long>(
                                       promoted),
                                   static_cast<unsigned long long>(
                                       demoted)));
        else if (!conserved(promoted, link_promoted) ||
                 !conserved(demoted, link_demoted))
            addViolation(
                r, "link-conservation",
                strprintf("per-link migrated bytes (promote %llu, "
                          "demote %llu) do not conserve the StepStats "
                          "totals (promote %llu, demote %llu) over %llu "
                          "links",
                          static_cast<unsigned long long>(link_promoted),
                          static_cast<unsigned long long>(link_demoted),
                          static_cast<unsigned long long>(promoted),
                          static_cast<unsigned long long>(demoted),
                          static_cast<unsigned long long>(links)));
    }

    // --- attribution exactness ----------------------------------------
    if (!attr.allExact()) {
        int bad_step = -1;
        for (const auto &s : attr.steps())
            if (!s.exact()) {
                bad_step = s.step;
                break;
            }
        addViolation(r, "attribution-exact",
                     strprintf("step %d components do not sum to its "
                               "StepStats totals",
                               bad_step));
    }
    std::string why;
    if (!attr.crossCheckEvents(session.events(), &why))
        addViolation(r, "attribution-events", why);

    // --- audit join (sentinel makes plan-level decisions) -------------
    if (policy == "sentinel" && session.events().dropped() == 0 &&
        audit.dropped() == 0) {
        int misses = 0;
        Tick first_ts = 0;
        for (const telemetry::Event &e : session.events().snapshot()) {
            bool promote = e.type == telemetry::EventType::Promotion;
            if (!promote && e.type != telemetry::EventType::Demotion)
                continue;
            if (!audit.matchMigration(e.ts, promote)) {
                if (misses++ == 0)
                    first_ts = e.ts;
            }
        }
        if (misses > 0)
            addViolation(
                r, "audit-join",
                strprintf("%d migration events without a matching "
                          "decision record (first at tick %llu)",
                          misses,
                          static_cast<unsigned long long>(first_ts)));
    }
    return r;
}

const char *
platformName(Platform p)
{
    return p == Platform::Optane ? "cpu" : "gpu";
}

} // namespace

std::string
OracleReport::summary() const
{
    std::ostringstream out;
    out << "oracle: " << cells.size() << " cells, " << violations.size()
        << " violations\n";
    for (const OracleCell &c : cells) {
        out << "  " << c.platform << "/" << c.policy << ": ";
        if (!c.supported)
            out << "unsupported";
        else if (!c.ran)
            out << "infeasible";
        else
            out << (c.feasible ? "ok" : "infeasible-metrics")
                << " traffic=" << c.total_traffic;
        out << "\n";
    }
    for (const OracleViolation &v : violations)
        out << "  [" << v.invariant << "] " << v.platform << "/"
            << v.policy << ": " << v.detail << "\n";
    return out.str();
}

OracleReport
runOracle(const ExperimentConfig &base, const OracleOptions &opts)
{
    ExperimentConfig work = base;
    work.telemetry = nullptr;
    work.attribution = nullptr;
    work.audit = nullptr;

    // Preconditions first (mirrors runExperimentSteps): the fuzzer
    // needs a rejected input to fail *here*, before any cell runs.
    if (work.batch <= 0 || work.steps <= 0 || work.warmup < 0 ||
        work.warmup >= work.steps ||
        (work.fast_bytes == 0 && work.fast_fraction <= 0.0))
        throw ConfigError(strprintf(
            "config: invalid oracle input (batch %d, steps %d, warmup "
            "%d, fast_fraction %g)",
            work.batch, work.steps, work.warmup, work.fast_fraction));
    if (work.planner != "greedy" && work.planner != "interval")
        throw ConfigError(strprintf(
            "config: planner must be 'greedy' or 'interval' (got '%s')",
            work.planner.c_str()));
    if (work.tiers < 1 || work.tiers > static_cast<int>(mem::kMaxTiers))
        throw ConfigError(strprintf(
            "config: tiers %d out of range [1, %d]", work.tiers,
            static_cast<int>(mem::kMaxTiers)));

    df::Graph graph = [&] {
        try {
            return models::makeModel(work.model, work.batch);
        } catch (const std::runtime_error &e) {
            throw ConfigError(
                strprintf("config: cannot build model: %s", e.what()));
        }
    }();
    std::uint64_t peak = graph.peakMemoryBytes();
    std::uint64_t fast_bytes =
        work.fast_bytes != 0
            ? work.fast_bytes
            : mem::roundUpToPages(static_cast<std::uint64_t>(
                  static_cast<double>(peak) * work.fast_fraction));
    if (fast_bytes < mem::kPageSize)
        throw ConfigError(strprintf(
            "config: fast tier (%llu bytes) is smaller than one page",
            static_cast<unsigned long long>(fast_bytes)));
    if (work.sentinel.use_reserved_pool) {
        std::uint64_t rs_cap = mem::roundUpToPages(
            static_cast<std::uint64_t>(static_cast<double>(fast_bytes) *
                                       work.sentinel.rs_cap_fraction));
        if (work.sentinel.rs_cap_fraction <= 0.0 ||
            work.sentinel.rs_cap_fraction > 1.0 || rs_cap >= fast_bytes)
            throw ConfigError(strprintf(
                "config: reserved pool cap (fraction %g of %llu bytes) "
                "leaves no fast memory for long-lived pages",
                work.sentinel.rs_cap_fraction,
                static_cast<unsigned long long>(fast_bytes)));
    }

    struct MatrixEntry {
        std::string policy;
        Platform platform;
    };
    std::vector<MatrixEntry> matrix;
    if (opts.run_cpu)
        for (const std::string &p : cpuPolicies())
            matrix.push_back({ p, Platform::Optane });
    if (opts.run_gpu)
        for (const std::string &p : gpuPolicies())
            matrix.push_back({ p, Platform::Gpu });
    SENTINEL_ASSERT(!matrix.empty(),
                    "oracle needs at least one platform enabled");

    std::vector<CellResult> results(matrix.size());
    parallelFor(matrix.size(), opts.jobs, [&](std::size_t i) {
        results[i] = runCell(work, matrix[i].policy, matrix[i].platform,
                             platformName(matrix[i].platform), fast_bytes,
                             opts);
    });

    OracleReport report;
    for (CellResult &r : results) {
        report.cells.push_back(r.cell);
        for (OracleViolation &v : r.violations)
            report.violations.push_back(std::move(v));
    }

    // --- traffic: policy-invariant within each platform ----------------
    for (const char *plat : { "cpu", "gpu" }) {
        const OracleCell *ref = nullptr;
        for (const OracleCell &c : report.cells)
            if (c.platform == plat && c.ran) {
                ref = &c;
                break;
            }
        if (!ref)
            continue;
        double tol = opts.traffic_rel_tol *
                     static_cast<double>(ref->total_traffic);
        for (const OracleCell &c : report.cells) {
            if (c.platform != plat || !c.ran || &c == ref)
                continue;
            double delta =
                static_cast<double>(c.total_traffic) -
                static_cast<double>(ref->total_traffic);
            if (delta < -tol || delta > tol)
                report.violations.push_back(OracleViolation{
                    "traffic", c.policy, plat,
                    strprintf("total traffic %llu bytes != reference "
                              "%llu bytes (policy %s)",
                              static_cast<unsigned long long>(
                                  c.total_traffic),
                              static_cast<unsigned long long>(
                                  ref->total_traffic),
                              ref->policy.c_str()) });
        }
    }

    // --- determinism: instrumented serial == plain parallel sweep ------
    if (opts.check_determinism) {
        std::vector<SweepCell> sweep;
        for (const MatrixEntry &e : matrix) {
            SweepCell cell;
            cell.cfg = work;
            cell.cfg.platform = e.platform;
            bool oversized =
                e.policy == "fast-only" && work.fast_bytes == 0;
            cell.cfg.fast_bytes = oversized ? 0 : fast_bytes;
            cell.policy = e.policy;
            sweep.push_back(std::move(cell));
        }
        std::vector<Metrics> plain = runSweep(sweep, opts.det_jobs);
        for (std::size_t i = 0; i < matrix.size(); ++i) {
            if (!results[i].violations.empty())
                continue; // already failing; metrics are meaningless
            std::string diff =
                metricsDiff(results[i].cell.metrics, plain[i]);
            if (!diff.empty())
                report.violations.push_back(OracleViolation{
                    "determinism", matrix[i].policy,
                    platformName(matrix[i].platform),
                    strprintf("instrumented serial run disagrees with "
                              "plain --jobs %d sweep: %s",
                              opts.det_jobs, diff.c_str()) });
        }
    }
    return report;
}

// ---------------------------------------------------------------------------
// FuzzCase

FuzzCase
FuzzCase::random(std::uint64_t seed)
{
    Rng rng(seed * 0x2545f4914f6cdd1dull + 0x9e3779b9ull);
    FuzzCase c;
    c.model =
        "synthetic:" + std::to_string(static_cast<unsigned long long>(
                           seed == 0 ? 1 : seed));
    c.batch = 1 << rng.uniformInt(1, 3); // 2, 4, 8
    static const double fractions[] = { 0.15, 0.2, 0.3, 0.5 };
    c.fast_fraction = fractions[rng.uniformInt(0, 3)];
    c.steps = static_cast<int>(rng.uniformInt(5, 8));
    c.warmup = c.steps / 2;
    c.cpu = true;
    c.gpu = rng.bernoulli(0.35);
    // Drawn after the legacy fields so the two-tier portion of every
    // historical case seed is unchanged.
    c.tiers = rng.bernoulli(0.3) ? 3 : 2;
    return c;
}

ExperimentConfig
FuzzCase::config() const
{
    ExperimentConfig cfg;
    cfg.model = model;
    cfg.batch = batch;
    cfg.fast_fraction = fast_fraction;
    cfg.steps = steps;
    cfg.warmup = warmup;
    cfg.planner = planner;
    cfg.tiers = tiers;
    return cfg;
}

OracleOptions
FuzzCase::oracleOptions(int jobs, bool check_determinism) const
{
    OracleOptions opts;
    opts.jobs = jobs;
    opts.run_cpu = cpu;
    opts.run_gpu = gpu;
    opts.check_determinism = check_determinism;
    opts.inject_capacity_underreport = inject_capacity;
    opts.inject_traffic_skew = inject_traffic;
    opts.inject_policy = inject_policy;
    return opts;
}

OracleReport
FuzzCase::run(int jobs, bool check_determinism) const
{
    return runOracle(config(), oracleOptions(jobs, check_determinism));
}

std::string
FuzzCase::serialize() const
{
    std::ostringstream out;
    out << "# sentinelrepro v1\n";
    out << "model=" << model << "\n";
    out << "batch=" << batch << "\n";
    out << strprintf("fraction=%.17g\n", fast_fraction);
    out << "steps=" << steps << "\n";
    out << "warmup=" << warmup << "\n";
    out << "cpu=" << (cpu ? 1 : 0) << "\n";
    out << "gpu=" << (gpu ? 1 : 0) << "\n";
    out << "planner=" << planner << "\n";
    out << "tiers=" << tiers << "\n";
    out << strprintf("inject_capacity=%.17g\n", inject_capacity);
    out << strprintf("inject_traffic=%.17g\n", inject_traffic);
    out << "inject_policy=" << inject_policy << "\n";
    return out.str();
}

FuzzCase
FuzzCase::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    bool magic = false;
    FuzzCase c;
    bool have_model = false;

    auto want_int = [](const std::string &k, const std::string &v) {
        try {
            std::size_t used = 0;
            int n = std::stoi(v, &used);
            if (used != v.size())
                throw std::invalid_argument(v);
            return n;
        } catch (const std::exception &) {
            throw ConfigError(strprintf(
                "sentinelrepro: bad integer for %s: '%s'", k.c_str(),
                v.c_str()));
        }
    };
    auto want_double = [](const std::string &k, const std::string &v) {
        try {
            std::size_t used = 0;
            double d = std::stod(v, &used);
            if (used != v.size())
                throw std::invalid_argument(v);
            return d;
        } catch (const std::exception &) {
            throw ConfigError(strprintf(
                "sentinelrepro: bad number for %s: '%s'", k.c_str(),
                v.c_str()));
        }
    };
    auto want_bool = [](const std::string &k, const std::string &v) {
        if (v == "0")
            return false;
        if (v == "1")
            return true;
        throw ConfigError(strprintf(
            "sentinelrepro: bad flag for %s: '%s' (want 0 or 1)",
            k.c_str(), v.c_str()));
    };

    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '#') {
            if (line.rfind("# sentinelrepro v1", 0) == 0)
                magic = true;
            continue;
        }
        if (!magic)
            throw ConfigError("sentinelrepro: missing '# sentinelrepro "
                              "v1' header before first entry");
        std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0)
            throw ConfigError(strprintf(
                "sentinelrepro: malformed line '%s'", line.c_str()));
        std::string key = line.substr(0, eq);
        std::string value = line.substr(eq + 1);
        if (key == "model") {
            c.model = value;
            have_model = true;
        } else if (key == "batch") {
            c.batch = want_int(key, value);
        } else if (key == "fraction") {
            c.fast_fraction = want_double(key, value);
        } else if (key == "steps") {
            c.steps = want_int(key, value);
        } else if (key == "warmup") {
            c.warmup = want_int(key, value);
        } else if (key == "cpu") {
            c.cpu = want_bool(key, value);
        } else if (key == "gpu") {
            c.gpu = want_bool(key, value);
        } else if (key == "planner") {
            c.planner = value;
        } else if (key == "tiers") {
            c.tiers = want_int(key, value);
        } else if (key == "inject_capacity") {
            c.inject_capacity = want_double(key, value);
        } else if (key == "inject_traffic") {
            c.inject_traffic = want_double(key, value);
        } else if (key == "inject_policy") {
            c.inject_policy = value;
        } else {
            throw ConfigError(strprintf(
                "sentinelrepro: unknown key '%s'", key.c_str()));
        }
    }
    if (!magic)
        throw ConfigError("sentinelrepro: empty file (no header)");
    if (!have_model || c.model.empty())
        throw ConfigError("sentinelrepro: missing model=");
    if (models::isSyntheticName(c.model) &&
        !models::tryParseSyntheticName(c.model))
        throw ConfigError(strprintf(
            "sentinelrepro: malformed synthetic model name '%s'",
            c.model.c_str()));
    if (models::isLlmName(c.model) && !models::tryParseLlmName(c.model))
        throw ConfigError(strprintf(
            "sentinelrepro: malformed llm model name '%s'",
            c.model.c_str()));
    if (c.batch < 1 || c.steps < 1 || c.warmup < 0 ||
        c.warmup >= c.steps)
        throw ConfigError(strprintf(
            "sentinelrepro: invalid run shape (batch %d, steps %d, "
            "warmup %d)",
            c.batch, c.steps, c.warmup));
    if (c.fast_fraction <= 0.0 || c.fast_fraction > 1.5)
        throw ConfigError(strprintf(
            "sentinelrepro: fraction %g out of range (0, 1.5]",
            c.fast_fraction));
    if (c.planner != "greedy" && c.planner != "interval")
        throw ConfigError(strprintf(
            "sentinelrepro: planner '%s' (want greedy or interval)",
            c.planner.c_str()));
    if (c.tiers < 1 || c.tiers > static_cast<int>(mem::kMaxTiers))
        throw ConfigError(strprintf(
            "sentinelrepro: tiers %d out of range [1, %d]", c.tiers,
            static_cast<int>(mem::kMaxTiers)));
    if (c.inject_capacity < 0.0 || c.inject_capacity >= 1.0 ||
        c.inject_traffic < -0.9 || c.inject_traffic > 10.0)
        throw ConfigError("sentinelrepro: injection knob out of range");
    if (!c.cpu && !c.gpu)
        throw ConfigError(
            "sentinelrepro: at least one of cpu/gpu must be 1");
    return c;
}

void
FuzzCase::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw ConfigError(
            strprintf("cannot write '%s'", path.c_str()));
    out << serialize();
    out.flush();
    if (!out)
        throw ConfigError(
            strprintf("short write to '%s'", path.c_str()));
}

FuzzCase
FuzzCase::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError(
            strprintf("cannot read '%s'", path.c_str()));
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

// ---------------------------------------------------------------------------
// Shrinker

namespace {

/** Rewrite the case's synthetic model via @p fn; false when the model
 *  is not synthetic or @p fn made no change. */
bool
mutateModel(FuzzCase &c,
            const std::function<bool(models::SyntheticParams &)> &fn)
{
    std::optional<models::SyntheticParams> p =
        models::tryParseSyntheticName(c.model);
    if (!p)
        return false;
    if (!fn(*p))
        return false;
    c.model = p->toName();
    return true;
}

using Transform = std::function<bool(FuzzCase &)>;

/** Ordered transform list: model structure first (largest wins), then
 *  run shape, then the platform matrix.  Order is part of the
 *  shrinker's determinism contract. */
const std::vector<Transform> &
transforms()
{
    using models::SyntheticParams;
    static const std::vector<Transform> list = {
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.conv_units == 0 ||
                    p.conv_units / 2 + p.mlp_units < 1)
                    return false;
                p.conv_units /= 2;
                return true;
            });
        },
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.mlp_units == 0 ||
                    p.conv_units + p.mlp_units / 2 < 1)
                    return false;
                p.mlp_units /= 2;
                return true;
            });
        },
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.branch_prob == 0.0)
                    return false;
                p.branch_prob = 0.0;
                return true;
            });
        },
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.temps_per_op == 0)
                    return false;
                p.temps_per_op /= 2;
                return true;
            });
        },
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.channels <= 1)
                    return false;
                p.channels = std::max(1, p.channels / 2);
                return true;
            });
        },
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.features <= 1)
                    return false;
                p.features = std::max(1, p.features / 2);
                return true;
            });
        },
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.image <= 4)
                    return false;
                p.image = std::max(4, p.image / 2);
                return true;
            });
        },
        [](FuzzCase &c) {
            return mutateModel(c, [](SyntheticParams &p) {
                if (p.reuse_distance <= 1)
                    return false;
                p.reuse_distance = 1;
                return true;
            });
        },
        [](FuzzCase &c) {
            if (c.batch <= 1)
                return false;
            c.batch = std::max(1, c.batch / 2);
            return true;
        },
        [](FuzzCase &c) {
            if (c.steps <= 2)
                return false;
            c.steps = std::max(2, c.steps / 2);
            c.warmup = std::min(c.warmup, c.steps - 1);
            return true;
        },
        [](FuzzCase &c) {
            if (c.warmup == 0)
                return false;
            c.warmup = 0;
            return true;
        },
        [](FuzzCase &c) {
            if (c.tiers == 2)
                return false;
            c.tiers = 2;
            return true;
        },
        [](FuzzCase &c) {
            if (!c.gpu || !c.cpu)
                return false;
            c.gpu = false;
            return true;
        },
        [](FuzzCase &c) {
            if (!c.cpu || !c.gpu)
                return false;
            c.cpu = false;
            return true;
        },
    };
    return list;
}

} // namespace

FuzzCase
shrink(const FuzzCase &failing, int jobs, int *oracle_runs)
{
    int runs = 0;
    auto finish = [&](const FuzzCase &c) {
        if (oracle_runs)
            *oracle_runs = runs;
        return c;
    };

    // Re-derive the failure key exactly as the driver saw it.
    OracleReport first = failing.run(jobs, /*check_determinism=*/true);
    ++runs;
    if (first.ok())
        return finish(failing); // not failing: nothing to shrink
    const std::string key = first.violations.front().invariant;
    bool need_det = key == "determinism";

    auto failsSame = [&](const FuzzCase &c) {
        ++runs;
        try {
            OracleReport rep = c.run(jobs, need_det);
            for (const OracleViolation &v : rep.violations)
                if (v.invariant == key)
                    return true;
            return false;
        } catch (const ConfigError &) {
            return false; // shrunk into a rejected input: not the bug
        }
    };

    FuzzCase cur = failing;
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (const Transform &t : transforms()) {
            for (;;) {
                FuzzCase cand = cur;
                if (!t(cand))
                    break;
                if (!failsSame(cand))
                    break;
                cur = cand;
                progressed = true;
            }
        }
    }
    return finish(cur);
}

} // namespace sentinel::harness
