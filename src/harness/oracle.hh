/**
 * @file
 * The cross-policy differential oracle and the fuzz-case machinery on
 * top of it.
 *
 * One oracle run takes a single training-step graph and pushes it
 * through the full policy matrix (cpuPolicies() on Optane, gpuPolicies()
 * on the GPU platform), each cell fully instrumented (telemetry session
 * + attribution engine + audit log), and checks the invariants that
 * must hold for *any* structurally valid workload:
 *
 *  - capacity:     every chain tier's occupancy <= its configured
 *                  capacity at every step (fast-only excepted — its
 *                  tier is oversized by design when unsized);
 *  - link-conservation: migrated bytes summed over the per-link
 *                  attribution slots equal the StepStats totals — a
 *                  staged (multi-leg) migration charges each leg to
 *                  exactly one link, nothing double counted or lost;
 *  - traffic:      total access traffic (fast + slow bytes) is
 *                  policy-invariant — policies move data, they don't
 *                  change what the model touches;
 *  - residency:    no op reads a non-resident page (the executor's
 *                  internal checks surface as internal-panic
 *                  violations);
 *  - attribution:  every step's component decomposition sums exactly
 *                  to its StepStats totals, and agrees with the event
 *                  stream;
 *  - audit-join:   every Promotion/Demotion event has a matching
 *                  decision record (sentinel cells);
 *  - determinism:  instrumented serial metrics == plain parallel
 *                  (runSweep) metrics, field for field.
 *
 * FuzzCase is one randomized workload (a synthetic:<seed> model plus
 * harness knobs), serializable to the `.sentinelrepro` format that the
 * corpus, the sentinel-cli `replay` subcommand, and the shrinker all
 * share.
 */

#ifndef SENTINEL_HARNESS_ORACLE_HH
#define SENTINEL_HARNESS_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace sentinel::harness {

struct OracleOptions {
    /** Worker threads for the cell matrix (cells are independent). */
    int jobs = 1;

    bool run_cpu = true;
    bool run_gpu = true;

    /**
     * Re-run the whole matrix without instrumentation through the
     * parallel sweep and require field-exact metric equality.  Doubles
     * the cost; the committed-seed suites turn it off.
     */
    bool check_determinism = true;
    int det_jobs = 4; ///< parallelism of the comparison sweep

    /** Telemetry ring size per cell; large enough that small fuzz
     *  graphs never drop events (drops void the audit-join check). */
    std::size_t ring_capacity = 1u << 18;

    /** Relative tolerance of the traffic invariant (0 = exact). */
    double traffic_rel_tol = 0.0;

    // --- Test-only chaos hooks (shrinker acceptance tests) -------------
    // Both act at *check* time, never on the simulation, so an injected
    // violation is deterministic and cheap to reproduce.

    /** Pretend the fast tier was this fraction smaller than it really
     *  was when checking capacity (0 = off). */
    double inject_capacity_underreport = 0.0;

    /** Skew the observed total traffic of inject_policy cells by this
     *  relative factor before the cross-policy compare (0 = off). */
    double inject_traffic_skew = 0.0;

    /** Which policy's cells the injections above apply to. */
    std::string inject_policy = "sentinel";
};

/** One invariant failure. */
struct OracleViolation {
    std::string invariant; ///< capacity | link-conservation | traffic |
                           ///< attribution-exact | attribution-events |
                           ///< audit-join | determinism |
                           ///< internal-panic | run-error
    std::string policy;
    std::string platform; ///< "cpu" | "gpu"
    std::string detail;
};

/** Outcome of one (platform, policy) cell. */
struct OracleCell {
    std::string policy;
    std::string platform;
    bool supported = true;
    bool feasible = true;
    bool ran = false; ///< produced step stats (checks applied)
    std::uint64_t total_traffic = 0;
    Metrics metrics;
};

struct OracleReport {
    std::vector<OracleViolation> violations;
    std::vector<OracleCell> cells;

    bool ok() const { return violations.empty(); }

    /** Canonical human-readable rendering (stable across runs). */
    std::string summary() const;
};

/**
 * Run @p base through the policy matrix and check every invariant.
 * base.model/batch/steps/warmup/fast_fraction (or fast_bytes) describe
 * the workload; platform and telemetry fields are ignored.  Throws
 * ConfigError when the configuration violates a harness precondition —
 * a *rejected* input, distinct from a violated invariant.
 */
OracleReport runOracle(const ExperimentConfig &base,
                       const OracleOptions &opts = {});

/**
 * One randomized workload: a synthetic model plus the harness knobs
 * the oracle needs.  Serializes to `.sentinelrepro` (versioned
 * key=value lines) — the format of tests/fuzz/corpus/ and of
 * `sentinel-cli replay`.
 */
struct FuzzCase {
    std::string model = "synthetic:1";
    int batch = 4;
    double fast_fraction = 0.2;
    int steps = 6;
    int warmup = 3;
    bool cpu = true;
    bool gpu = false;

    /** Sentinel static-layout solver: "greedy" or "interval" (see
     *  ExperimentConfig::planner).  Corpus entries predating the
     *  planner default to greedy. */
    std::string planner = "greedy";

    /** Memory-tier chain length (see ExperimentConfig::tiers).  Corpus
     *  entries predating the N-tier hierarchy default to the classic
     *  two-tier system. */
    int tiers = 2;

    // Injection knobs (committed corpus entries keep them at 0; the
    // shrinker acceptance tests set them).
    double inject_capacity = 0.0;
    double inject_traffic = 0.0;
    std::string inject_policy = "sentinel";

    /** Derive a case from @p seed (deterministic). */
    static FuzzCase random(std::uint64_t seed);

    ExperimentConfig config() const;
    OracleOptions oracleOptions(int jobs, bool check_determinism) const;

    /** Run the oracle on this case. */
    OracleReport run(int jobs = 1, bool check_determinism = true) const;

    std::string serialize() const;
    /** Parse serialized text; throws ConfigError when malformed. */
    static FuzzCase parse(const std::string &text);

    void save(const std::string &path) const;
    /** Load @p path; throws ConfigError on I/O or parse failure. */
    static FuzzCase load(const std::string &path);
};

/**
 * Deterministically minimize @p failing while the failure persists:
 * greedy fixpoint over an ordered transform list (halve unit counts,
 * drop branching, shed temporaries, shrink tensors, reduce batch and
 * steps, drop a platform), accepting a candidate only when the oracle
 * still reports a violation of the *same invariant* as the original
 * failure.  @p oracle_runs (optional) counts oracle invocations.
 */
FuzzCase shrink(const FuzzCase &failing, int jobs = 1,
                int *oracle_runs = nullptr);

} // namespace sentinel::harness

#endif // SENTINEL_HARNESS_ORACLE_HH
