/**
 * @file
 * The experiment harness shared by every benchmark and example.
 *
 * One call = one cell of a paper table/figure: build the model, size
 * the fast tier, construct the named policy (profiling first when the
 * policy needs it), simulate N training steps, and return averaged
 * steady-state metrics.
 *
 * Policy names:
 *   fast-only, slow-only, numa, memory-mode, ial, autotm, swapadvisor,
 *   capuchin, sentinel            (CPU / Optane platform)
 *   um, vdnn, autotm, swapadvisor, capuchin, sentinel, tf
 *                                 (GPU platform; tensor residency is
 *                                  strict — an access served from host
 *                                  memory marks the run infeasible)
 */

#ifndef SENTINEL_HARNESS_EXPERIMENT_HH
#define SENTINEL_HARNESS_EXPERIMENT_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "core/runtime.hh"
#include "dataflow/graph.hh"
#include "dataflow/step_stats.hh"
#include "telemetry/attribution.hh"
#include "telemetry/audit.hh"

namespace sentinel::harness {

/**
 * A configuration that violates a harness precondition (fast tier
 * smaller than one page or than the reserved short-lived pool, warmup
 * >= steps, ...).  Deliberately NOT a std::runtime_error: the run loop
 * maps runtime_error to "infeasible", and the fuzzer needs bad inputs
 * distinguishable from both infeasibility and invariant violations.
 */
class ConfigError : public std::invalid_argument
{
    using std::invalid_argument::invalid_argument;
};

enum class Platform {
    Optane, ///< DDR4 (fast) + Optane DC PMM (slow), Table II left
    Gpu,    ///< V100 HBM (fast) + host memory over PCIe (slow)
};

struct ExperimentConfig {
    std::string model;
    int batch = 32;
    Platform platform = Platform::Optane;

    /** Fast-tier size as a fraction of the model's peak memory
     *  (ignored when fast_bytes != 0).  The paper's default is 20%. */
    double fast_fraction = 0.2;
    std::uint64_t fast_bytes = 0;

    /**
     * Memory-tier chain length.  2 (default) is the paper's two-tier
     * system; 3 inserts a middle tier between fast and slow (the
     * HBM + DRAM + NVMe shape the staged-prefetch path targets); 1 is
     * a fast-only chain with no migration at all.  Longer chains add
     * further interpolated middle tiers, up to mem::kMaxTiers.
     */
    int tiers = 2;

    /** Middle-tier capacity in bytes; 0 derives mid_fraction x the
     *  fast tier's size.  Only read when tiers >= 3.  Sub-page values
     *  (explicit or derived) are a ConfigError. */
    std::uint64_t mid_bytes = 0;

    /** Middle-tier capacity as a multiple of the fast tier (used when
     *  mid_bytes == 0): the staging buffer is a few times the tier it
     *  feeds. */
    double mid_fraction = 4.0;

    /** Middle-tier bandwidth override in bytes/s, applied to the mid
     *  tiers and their far links (see RuntimeConfig::insertMidTiers);
     *  0 interpolates between the fast and slow endpoints. */
    double mid_bw = 0.0;

    /** Page-table backend for both the profiling and training memory
     *  systems; non-default only in the layout equivalence suite. */
    mem::PageTable::Backend page_table = mem::PageTable::defaultBackend();

    int steps = 9;
    int warmup = 6; ///< steps excluded from the averages (cold start
                    ///< plus Sentinel's test-and-trial steps)

    /** Sentinel knobs (ablations, forced MIL for Fig. 5). */
    core::SentinelOptions sentinel;

    /**
     * Static-layout solver for Sentinel's co-allocation step:
     * "greedy" (the paper's per-class packing, the default) or
     * "interval" (offline interval-graph offset assignment,
     * src/plan/).  Mapped onto sentinel.layout_planner; any other
     * value is a ConfigError.
     */
    std::string planner = "greedy";

    /**
     * Fault-injection spec (see sim::FaultSpec::parse); empty = no
     * chaos.  Faults apply to the *training* run only — the profiling
     * pre-step sees the healthy system, which is exactly how a profile
     * goes stale in the wild.
     */
    std::string chaos;
    std::uint64_t chaos_seed = 0x5e97195eull;

    /**
     * Optional caller-owned telemetry session.  When set, the training
     * executor, memory system, and (for the sentinel policy) the
     * policy itself emit structured events into it; the profiling
     * pre-step is left untraced so the exported timeline covers one
     * monotonic training clock.
     */
    telemetry::Session *telemetry = nullptr;

    /**
     * Optional caller-owned stall-attribution engine.  When set, the
     * training executor and memory system report every clock advance
     * and migration to it; after the run the engine holds the exact
     * per-layer / per-interval / per-tensor decomposition of the
     * StepStats totals (see telemetry/attribution.hh).
     */
    telemetry::AttributionEngine *attribution = nullptr;

    /**
     * Optional caller-owned decision audit log, recorded by the
     * sentinel policy (other policies make no plan-level decisions and
     * leave it empty).
     */
    telemetry::AuditLog *audit = nullptr;
};

struct Metrics {
    std::string policy;
    std::string model;
    int batch = 0;

    bool supported = true; ///< false: policy cannot run this graph
    bool feasible = true;  ///< GPU: every access served from device

    double step_time_ms = 0.0;
    /** Step-time percentiles over the measured steps (nearest-rank,
     *  common/percentile.hh) — the tail a co-located tenant feels. */
    double step_p50_ms = 0.0;
    double step_p95_ms = 0.0;
    double step_p99_ms = 0.0;
    double throughput = 0.0; ///< samples / second
    double exposed_ms = 0.0;
    double recompute_ms = 0.0;
    double fault_ms = 0.0;
    double promoted_mb = 0.0; ///< per step
    double demoted_mb = 0.0;
    double bytes_fast_mb = 0.0;
    double bytes_slow_mb = 0.0;
    double peak_fast_mb = 0.0;

    /** Static-layout footprint of planning policies (sentinel: the
     *  co-allocation region high-water; planned: the offline plan's
     *  high-water); zero for layout-free policies.  The bench_plan
     *  peak-footprint-vs-plan column. */
    double layout_mb = 0.0;

    // Sentinel-specific (zero for other policies).
    int mil = 0;
    int case3_events = 0;
    int trial_steps = 0;
    double pool_mb = 0.0;
    int divergence_events = 0;   ///< monitor-flagged steps
    int replans = 0;             ///< mid-training re-plans
    bool trial_decided = true;   ///< false: run ended mid test-and-trial
    std::string trial_state = "idle";

    double
    migrated_mb() const
    {
        return promoted_mb + demoted_mb;
    }
};

/** Platform preset with the fast tier sized to @p fast_bytes. */
core::RuntimeConfig platformConfig(Platform p, std::uint64_t fast_bytes);

/**
 * Platform preset extended to an N-tier chain: @p tiers total tiers
 * (1 = fast only, 2 = the classic preset, >= 3 inserts middle tiers
 * of @p mid_bytes each, bandwidth-overridden by @p mid_bw when > 0).
 */
core::RuntimeConfig platformConfig(Platform p, std::uint64_t fast_bytes,
                                   int tiers, std::uint64_t mid_bytes,
                                   double mid_bw);

/** All CPU-platform policy names, in the paper's comparison order. */
const std::vector<std::string> &cpuPolicies();
/** All GPU-platform policy names (Fig. 12 order). */
const std::vector<std::string> &gpuPolicies();

/** Run one (model, batch, platform, policy) cell.  Throws ConfigError
 *  when the configuration violates a harness precondition (see
 *  ConfigError); infeasible-but-valid runs instead return metrics with
 *  feasible = false. */
Metrics runExperiment(const ExperimentConfig &cfg,
                      const std::string &policy);

/** runExperiment plus the raw per-step stats — the chaos degradation
 *  report needs the step-time trajectory around each injected fault.
 *  `steps` is empty when the run was unsupported or died infeasible. */
struct StepTrace {
    Metrics metrics;
    std::vector<df::StepStats> steps;
};
StepTrace runExperimentSteps(const ExperimentConfig &cfg,
                             const std::string &policy);

/** Run several policies on the same configuration. */
std::vector<Metrics> runAll(const ExperimentConfig &cfg,
                            const std::vector<std::string> &policies);

/**
 * runAll, fanned out over up to @p jobs worker threads.  Each cell is
 * an independent simulation (its own graph, memory system, and
 * simulated clock), so the result vector is byte-identical to the
 * serial runAll regardless of scheduling.  Falls back to the serial
 * path when cfg.telemetry is set (a shared session cannot record two
 * interleaved clocks).
 */
std::vector<Metrics> runAllParallel(const ExperimentConfig &cfg,
                                    const std::vector<std::string> &policies,
                                    int jobs);

/** One cell of a figure/table sweep: a configuration plus a policy. */
struct SweepCell {
    ExperimentConfig cfg;
    std::string policy;
};

/**
 * Run every cell, up to @p jobs at a time.  Results are input-ordered
 * (out[i] belongs to cells[i]) and independent of the interleaving.
 * Cells carrying a telemetry session are run serially, after the
 * parallel batch.
 */
std::vector<Metrics> runSweep(const std::vector<SweepCell> &cells,
                              int jobs);

/**
 * Largest batch (<= @p cap) the policy can train with @p fast_bytes of
 * device memory (Table V).  Feasibility = the steady-state step serves
 * every access from device memory and nothing OOMs.
 *
 * With @p jobs > 1 the exponential probe evaluates the whole
 * power-of-two ladder concurrently; the binary-search refinement (an
 * inherently sequential chain) then runs serially.  The returned batch
 * is identical for any jobs value.
 */
int maxBatchSearch(const std::string &model, const std::string &policy,
                   std::uint64_t fast_bytes, int cap = 2048, int jobs = 1);

} // namespace sentinel::harness

#endif // SENTINEL_HARNESS_EXPERIMENT_HH
