#include "harness/experiment.hh"

#include <memory>
#include <optional>

#include "baselines/autotm.hh"
#include "baselines/capuchin.hh"
#include "baselines/ial.hh"
#include "baselines/memory_mode.hh"
#include "baselines/planned.hh"
#include "baselines/reference.hh"
#include "baselines/swapadvisor.hh"
#include "baselines/unified_memory.hh"
#include "baselines/vdnn.hh"
#include "common/logging.hh"
#include "common/percentile.hh"
#include "common/thread_pool.hh"
#include "models/registry.hh"
#include "profile/profiler.hh"
#include "sim/fault_injector.hh"

namespace sentinel::harness {

core::RuntimeConfig
platformConfig(Platform p, std::uint64_t fast_bytes)
{
    return p == Platform::Optane
               ? core::RuntimeConfig::optane(fast_bytes)
               : core::RuntimeConfig::gpu(fast_bytes);
}

core::RuntimeConfig
platformConfig(Platform p, std::uint64_t fast_bytes, int tiers,
               std::uint64_t mid_bytes, double mid_bw)
{
    core::RuntimeConfig rc = platformConfig(p, fast_bytes);
    if (tiers == 1)
        rc.single_tier = true;
    else if (tiers >= 3)
        rc.insertMidTiers(tiers - 2, mid_bytes, mid_bw);
    return rc;
}

const std::vector<std::string> &
cpuPolicies()
{
    static const std::vector<std::string> names = {
        "slow-only", "numa",   "planned",  "memory-mode",
        "ial",       "autotm", "sentinel", "fast-only",
    };
    return names;
}

const std::vector<std::string> &
gpuPolicies()
{
    static const std::vector<std::string> names = {
        "um", "vdnn", "autotm", "swapadvisor", "capuchin", "sentinel",
    };
    return names;
}

namespace {

bool
needsProfile(const std::string &policy)
{
    return policy == "autotm" || policy == "swapadvisor" ||
           policy == "capuchin" || policy == "sentinel";
}

std::unique_ptr<df::MemoryPolicy>
makePolicy(const std::string &name, const ExperimentConfig &cfg,
           std::uint64_t fast_bytes, const prof::ProfileDatabase *db)
{
    bool gpu = cfg.platform == Platform::Gpu;
    if (name == "fast-only" || name == "tf")
        return baselines::makeFastOnly();
    if (name == "slow-only")
        return baselines::makeSlowOnly();
    if (name == "numa")
        return baselines::makeFirstTouchNuma();
    if (name == "planned")
        return baselines::makePlanned();
    if (name == "memory-mode")
        return std::make_unique<baselines::MemoryModePolicy>(fast_bytes);
    if (name == "ial")
        return std::make_unique<baselines::IalPolicy>();
    if (name == "um")
        return std::make_unique<baselines::UnifiedMemoryPolicy>();
    if (name == "vdnn")
        return std::make_unique<baselines::VdnnPolicy>();
    if (name == "autotm")
        return std::make_unique<baselines::AutoTmPolicy>(*db, gpu);
    if (name == "swapadvisor")
        return std::make_unique<baselines::SwapAdvisorPolicy>(*db, gpu);
    if (name == "capuchin")
        return std::make_unique<baselines::CapuchinPolicy>(*db, gpu);
    if (name == "sentinel") {
        core::SentinelOptions opts = cfg.sentinel;
        opts.gpu_mode = gpu;
        if (cfg.planner == "interval")
            opts.layout_planner = core::LayoutPlanner::Interval;
        return std::make_unique<core::SentinelPolicy>(*db, opts);
    }
    SENTINEL_FATAL("unknown policy '%s'", name.c_str());
}

} // namespace

Metrics
runExperiment(const ExperimentConfig &cfg, const std::string &policy)
{
    return runExperimentSteps(cfg, policy).metrics;
}

StepTrace
runExperimentSteps(const ExperimentConfig &cfg, const std::string &policy)
{
    StepTrace trace;
    Metrics &m = trace.metrics;
    m.policy = policy;
    m.model = cfg.model;
    m.batch = cfg.batch;

    if (cfg.batch <= 0)
        throw ConfigError(
            strprintf("config: batch must be positive (got %d)",
                      cfg.batch));
    if (cfg.steps <= 0)
        throw ConfigError(
            strprintf("config: steps must be positive (got %d)",
                      cfg.steps));
    if (cfg.warmup < 0 || cfg.warmup >= cfg.steps)
        throw ConfigError(strprintf(
            "config: warmup must lie in [0, steps) (warmup %d, steps %d)",
            cfg.warmup, cfg.steps));
    if (cfg.fast_bytes == 0 && cfg.fast_fraction <= 0.0)
        throw ConfigError(strprintf(
            "config: fast_fraction must be positive (got %g)",
            cfg.fast_fraction));
    if (cfg.planner != "greedy" && cfg.planner != "interval")
        throw ConfigError(strprintf(
            "config: planner must be 'greedy' or 'interval' (got '%s')",
            cfg.planner.c_str()));
    if (cfg.tiers < 1 || cfg.tiers > static_cast<int>(mem::kMaxTiers))
        throw ConfigError(strprintf(
            "config: tiers must lie in [1, %u] (got %d)", mem::kMaxTiers,
            cfg.tiers));
    if (cfg.tiers >= 3 && cfg.mid_bytes == 0 && cfg.mid_fraction <= 0.0)
        throw ConfigError(strprintf(
            "config: mid_fraction must be positive (got %g)",
            cfg.mid_fraction));
    if (cfg.mid_bw < 0.0)
        throw ConfigError(strprintf(
            "config: mid_bw must be non-negative (got %g)", cfg.mid_bw));

    // A bad model name (unknown, or a malformed synthetic:<seed> spec)
    // is a rejected input, not an infeasible run: surface it as
    // ConfigError instead of the registry's raw runtime_error.
    df::Graph graph = [&] {
        try {
            return models::makeModel(cfg.model, cfg.batch);
        } catch (const std::runtime_error &e) {
            throw ConfigError(
                strprintf("config: cannot build model: %s", e.what()));
        }
    }();

    std::uint64_t peak = graph.peakMemoryBytes();
    std::uint64_t fast_bytes =
        cfg.fast_bytes != 0
            ? cfg.fast_bytes
            : mem::roundUpToPages(static_cast<std::uint64_t>(
                  static_cast<double>(peak) * cfg.fast_fraction));
    // The fast-only reference gets a fast tier that holds everything.
    if (policy == "fast-only" && cfg.fast_bytes == 0)
        fast_bytes = mem::roundUpToPages(peak + (peak >> 2) +
                                         (64ull << 20));

    if (fast_bytes < mem::kPageSize)
        throw ConfigError(strprintf(
            "config: fast tier (%llu bytes) is smaller than one page "
            "(%llu); raise fast_bytes or fast_fraction",
            static_cast<unsigned long long>(fast_bytes),
            static_cast<unsigned long long>(mem::kPageSize)));
    if (policy == "sentinel" && cfg.sentinel.use_reserved_pool) {
        double frac = cfg.sentinel.rs_cap_fraction;
        if (frac <= 0.0 || frac > 1.0)
            throw ConfigError(strprintf(
                "config: sentinel.rs_cap_fraction must lie in (0, 1] "
                "(got %g)",
                frac));
        // The pool cap is what the policy itself would reserve; if it
        // rounds up to the whole tier nothing is left for long-lived
        // pages and the run degenerates.
        std::uint64_t rs_cap = mem::roundUpToPages(
            static_cast<std::uint64_t>(
                static_cast<double>(fast_bytes) * frac));
        if (rs_cap >= fast_bytes)
            throw ConfigError(strprintf(
                "config: reserved short-lived pool cap (%llu bytes at "
                "rs_cap_fraction %g) would consume the whole fast tier "
                "(%llu bytes); raise fast_bytes or lower the fraction",
                static_cast<unsigned long long>(rs_cap), frac,
                static_cast<unsigned long long>(fast_bytes)));
    }

    // Middle-tier sizing: explicit bytes, or a multiple of the fast
    // tier.  A sub-page middle tier could never hold a staged page —
    // reject it instead of simulating a chain that silently degrades.
    std::uint64_t mid_bytes = 0;
    if (cfg.tiers >= 3) {
        mid_bytes = cfg.mid_bytes != 0
                        ? cfg.mid_bytes
                        : mem::roundUpToPages(static_cast<std::uint64_t>(
                              static_cast<double>(fast_bytes) *
                              cfg.mid_fraction));
        if (mid_bytes < mem::kPageSize)
            throw ConfigError(strprintf(
                "config: middle tier (%llu bytes) is smaller than one "
                "page (%llu); raise mid_bytes or mid_fraction",
                static_cast<unsigned long long>(mid_bytes),
                static_cast<unsigned long long>(mem::kPageSize)));
    }

    core::RuntimeConfig rc = platformConfig(
        cfg.platform, fast_bytes, cfg.tiers, mid_bytes, cfg.mid_bw);

    if (policy == "vdnn" && !baselines::VdnnPolicy::supports(graph)) {
        m.supported = false;
        m.feasible = false;
        return trace;
    }

    // Profiling phase (one step on a scratch memory system).
    std::optional<prof::ProfileResult> profile;
    if (needsProfile(policy)) {
        mem::HeterogeneousMemory prof_hm(rc.tierChain(), rc.linkChain(),
                                         cfg.page_table);
        prof::Profiler profiler(rc.profiler);
        profile = profiler.profile(graph, prof_hm, rc.exec);
    }

    auto pol = makePolicy(policy, cfg, fast_bytes,
                          profile ? &profile->db : nullptr);

    mem::HeterogeneousMemory hm(rc.tierChain(), rc.linkChain(),
                                cfg.page_table);
    df::Executor ex(graph, hm, rc.exec, *pol);
    if (cfg.telemetry) {
        hm.setTelemetry(cfg.telemetry);
        ex.setTelemetry(cfg.telemetry);
        if (auto *sp = dynamic_cast<core::SentinelPolicy *>(pol.get()))
            sp->setTelemetry(cfg.telemetry);
    }
    if (cfg.attribution) {
        ex.setAttribution(cfg.attribution);
        hm.setAttribution(cfg.attribution);
    }
    if (cfg.audit)
        if (auto *sp = dynamic_cast<core::SentinelPolicy *>(pol.get()))
            sp->setAudit(cfg.audit);

    // Chaos mode: the injector perturbs only the training run.  The
    // profile above was taken on the healthy system, so a fault spec
    // starting at step k makes the profile stale from k onward.
    std::optional<sim::FaultInjector> injector;
    if (!cfg.chaos.empty()) {
        sim::FaultSpec spec = sim::FaultSpec::parse(cfg.chaos);
        spec.seed = cfg.chaos_seed;
        injector.emplace(std::move(spec));
        ex.setFaultInjector(&*injector);
    }

    try {
        trace.steps = ex.run(cfg.steps);
    } catch (const std::runtime_error &) {
        // Out of memory (both tiers full): the configuration is
        // infeasible for this policy.
        m.feasible = false;
        trace.steps.clear();
        return trace;
    }

    int measured = 0;
    double slow_traffic = 0.0;
    std::vector<double> step_ms;
    for (const auto &s : trace.steps) {
        if (s.step < cfg.warmup)
            continue;
        ++measured;
        step_ms.push_back(toMillis(s.step_time));
        m.step_time_ms += toMillis(s.step_time);
        m.exposed_ms += toMillis(s.exposed_migration);
        m.recompute_ms += toMillis(s.recompute_time);
        m.fault_ms += toMillis(s.fault_overhead);
        m.promoted_mb += static_cast<double>(s.promoted_bytes) / 1e6;
        m.demoted_mb += static_cast<double>(s.demoted_bytes) / 1e6;
        m.bytes_fast_mb += static_cast<double>(s.bytes_fast) / 1e6;
        m.bytes_slow_mb += static_cast<double>(s.bytes_slow) / 1e6;
        m.peak_fast_mb = std::max(
            m.peak_fast_mb, static_cast<double>(s.peak_fast_used) / 1e6);
        slow_traffic += static_cast<double>(s.bytes_slow);
    }
    SENTINEL_ASSERT(measured > 0, "no measured steps (warmup too long)");
    PercentileSummary pct = PercentileSummary::of(std::move(step_ms));
    m.step_p50_ms = pct.p50;
    m.step_p95_ms = pct.p95;
    m.step_p99_ms = pct.p99;
    double n = static_cast<double>(measured);
    m.step_time_ms /= n;
    m.exposed_ms /= n;
    m.recompute_ms /= n;
    m.fault_ms /= n;
    m.promoted_mb /= n;
    m.demoted_mb /= n;
    m.bytes_fast_mb /= n;
    m.bytes_slow_mb /= n;
    m.throughput =
        m.step_time_ms > 0.0 ? cfg.batch / (m.step_time_ms / 1e3) : 0.0;

    // GPU residency rule: compute must be fed from device memory.
    // A small page-in slack is tolerated (real runtimes stage a few
    // buffers through pinned host memory); a steady stream of host
    // accesses marks the batch infeasible.  UM is exempt: it pages on
    // demand by design.
    if (cfg.platform == Platform::Gpu && policy != "um") {
        double per_step = slow_traffic / n;
        double total =
            (m.bytes_fast_mb + m.bytes_slow_mb) * 1e6;
        m.feasible = per_step < std::max(16e6, 0.02 * total);
    }

    if (auto *pp = dynamic_cast<baselines::PlannedPolicy *>(pol.get()))
        m.layout_mb = static_cast<double>(pp->footprint()) / 1e6;
    if (auto *sp = dynamic_cast<core::SentinelPolicy *>(pol.get())) {
        m.layout_mb =
            static_cast<double>(sp->layoutFootprint()) / 1e6;
        m.mil = sp->migrationPlan().mil;
        m.case3_events = sp->case3Events();
        m.trial_steps = sp->trialStepsUsed();
        m.pool_mb = static_cast<double>(sp->reservedPoolBytes()) / 1e6;
        m.divergence_events = sp->divergenceEvents();
        m.replans = sp->replans();
        m.trial_decided = sp->trialDecided();
        m.trial_state = sp->trialStateName();
        if (!m.trial_decided)
            SENTINEL_WARN("%s run ended mid test-and-trial (state %s); "
                          "stall mode left at trial value %d",
                          m.policy.c_str(), m.trial_state.c_str(),
                          sp->stallModeChosen() ? 1 : 0);
    }
    return trace;
}

std::vector<Metrics>
runAll(const ExperimentConfig &cfg,
       const std::vector<std::string> &policies)
{
    std::vector<Metrics> out;
    out.reserve(policies.size());
    for (const auto &p : policies)
        out.push_back(runExperiment(cfg, p));
    return out;
}

std::vector<Metrics>
runAllParallel(const ExperimentConfig &cfg,
               const std::vector<std::string> &policies, int jobs)
{
    if (cfg.telemetry || cfg.attribution || cfg.audit)
        return runAll(cfg, policies);
    std::vector<Metrics> out(policies.size());
    parallelFor(policies.size(), jobs, [&](std::size_t i) {
        out[i] = runExperiment(cfg, policies[i]);
    });
    return out;
}

std::vector<Metrics>
runSweep(const std::vector<SweepCell> &cells, int jobs)
{
    std::vector<Metrics> out(cells.size());
    std::vector<std::size_t> concurrent;
    std::vector<std::size_t> serial;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        bool shared = cells[i].cfg.telemetry ||
                      cells[i].cfg.attribution || cells[i].cfg.audit;
        (shared ? serial : concurrent).push_back(i);
    }
    parallelFor(concurrent.size(), jobs, [&](std::size_t k) {
        std::size_t i = concurrent[k];
        out[i] = runExperiment(cells[i].cfg, cells[i].policy);
    });
    for (std::size_t i : serial)
        out[i] = runExperiment(cells[i].cfg, cells[i].policy);
    return out;
}

int
maxBatchSearch(const std::string &model, const std::string &policy,
               std::uint64_t fast_bytes, int cap, int jobs)
{
    auto feasible = [&](int batch) {
        if (policy == "tf") {
            // Plain TensorFlow: everything must fit in device memory.
            df::Graph g = models::makeModel(model, batch);
            return g.peakMemoryBytes() <= fast_bytes;
        }
        ExperimentConfig cfg;
        cfg.model = model;
        cfg.batch = batch;
        cfg.platform = Platform::Gpu;
        cfg.fast_bytes = fast_bytes;
        cfg.steps = 3;
        cfg.warmup = 2;
        Metrics m = runExperiment(cfg, policy);
        return m.supported && m.feasible;
    };

    int lo;
    int hi;
    if (jobs > 1) {
        // Parallel probe: evaluate the whole power-of-two ladder
        // (1, 2, 4, ... <= cap) concurrently, then read off the same
        // bracket the serial probe would have found.  A few rungs above
        // the answer are wasted work; on a multi-core host the ladder
        // finishes in roughly the time of its slowest rung.
        std::vector<int> ladder;
        for (int b = 1; b <= cap; b *= 2)
            ladder.push_back(b);
        std::vector<char> ok(ladder.size(), 0);
        parallelFor(ladder.size(), jobs,
                    [&](std::size_t i) { ok[i] = feasible(ladder[i]); });
        if (!ok[0])
            return 0;
        std::size_t k = 1;
        while (k < ladder.size() && ok[k])
            ++k;
        lo = ladder[k - 1];
        hi = k < ladder.size() ? ladder[k] : cap + 1;
    } else {
        if (!feasible(1))
            return 0;
        // Exponential probe, then binary search.
        lo = 1;
        hi = 2;
        while (hi <= cap && feasible(hi)) {
            lo = hi;
            hi *= 2;
        }
        hi = std::min(hi, cap + 1);
    }
    while (lo + 1 < hi) {
        int mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace sentinel::harness
