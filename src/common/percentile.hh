/**
 * @file
 * Shared exact-percentile helper over small sample sets.
 *
 * Every consumer of per-step timing samples — harness::Metrics, the
 * stall report, and the multi-job server's SLO metrics — needs the
 * same p50/p95/p99 summary.  This is the one implementation they all
 * share, so a "p99 step time" means the same thing in every table.
 *
 * Nearest-rank definition: for q in (0, 1], the percentile is the
 * ceil(q*N)-th smallest sample (q = 0 returns the minimum).  Exact and
 * deterministic for any N >= 1, including the 3-sample steady windows
 * of the default harness configuration; no interpolation, so the
 * result is always an observed sample.
 *
 * Distinct from telemetry::Histogram::percentile(), which answers the
 * same question approximately from log2 buckets on the streaming
 * metrics path; this helper is for post-run summaries where the raw
 * samples are still at hand.
 */

#ifndef SENTINEL_COMMON_PERCENTILE_HH
#define SENTINEL_COMMON_PERCENTILE_HH

#include <cstdint>
#include <vector>

namespace sentinel {

/**
 * Nearest-rank percentile of @p samples at quantile @p q in [0, 1].
 * Returns 0.0 for an empty sample set.  The input is taken by value:
 * the helper sorts its own copy.
 */
double percentile(std::vector<double> samples, double q);

/** The standard latency summary (count + p50/p95/p99), computed with
 *  ONE sort instead of three percentile() calls. */
struct PercentileSummary {
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    static PercentileSummary of(std::vector<double> samples);
};

} // namespace sentinel

#endif // SENTINEL_COMMON_PERCENTILE_HH
