/**
 * @file
 * Heap-allocation counting for zero-allocation guarantees.
 *
 * The steady-state step is supposed to allocate nothing: scratch
 * buffers are reused, side tables are chunked directories, and the
 * migration engine pools its batch buffers.  "Supposed to" is only
 * worth something if a test can count — this header exposes a global
 * allocation counter that tests and benches read around a region of
 * interest.
 *
 * The counter is bumped by replacement `operator new/delete` defined in
 * alloc_hook_impl.cc, which is compiled into the SEPARATE static
 * library `sentinel_alloc_hook`.  Only targets that explicitly link
 * that library get the counting allocator; everything else links just
 * this accessor TU and sees a counter frozen at zero with
 * allocHookActive() == false.  Sanitizer builds also provide their own
 * allocator interposers, so the hook library compiles to nothing under
 * -fsanitize and allocHookActive() stays false there (tests skip).
 */

#ifndef SENTINEL_COMMON_ALLOC_HOOK_HH
#define SENTINEL_COMMON_ALLOC_HOOK_HH

#include <cstdint>

namespace sentinel::common {

/**
 * Number of heap allocations (operator new calls) observed since
 * process start.  Always 0 unless the target links
 * sentinel_alloc_hook outside a sanitizer build.
 */
std::uint64_t allocCount();

/** True when the counting operator new/delete is linked and live. */
bool allocHookActive();

namespace detail {
/** Called by the replacement operator new (alloc_hook_impl.cc). */
void noteAlloc() noexcept;
/** Marks the hook live; called from the impl TU's initializer. */
void markHookActive() noexcept;
} // namespace detail

} // namespace sentinel::common

#endif // SENTINEL_COMMON_ALLOC_HOOK_HH
