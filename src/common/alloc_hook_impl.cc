/**
 * @file
 * Replacement global operator new/delete that count allocations.
 *
 * Compiled into the separate `sentinel_alloc_hook` library; see
 * alloc_hook.hh for the linking contract.  Under sanitizers this TU is
 * empty — ASan/TSan interpose the allocator themselves and a second
 * replacement would fight them.
 */

#include "common/alloc_hook.hh"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SENTINEL_ALLOC_HOOK_DISABLED 1
#endif
#if !defined(SENTINEL_ALLOC_HOOK_DISABLED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SENTINEL_ALLOC_HOOK_DISABLED 1
#endif
#endif

#ifndef SENTINEL_ALLOC_HOOK_DISABLED

#include <cstdlib>
#include <new>

namespace {

struct HookMarker {
    HookMarker() { sentinel::common::detail::markHookActive(); }
};
HookMarker g_marker;

void *
countedAlloc(std::size_t n)
{
    sentinel::common::detail::noteAlloc();
    if (n == 0)
        n = 1;
    void *p = std::malloc(n);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    sentinel::common::detail::noteAlloc();
    return std::malloc(n ? n : 1);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    sentinel::common::detail::noteAlloc();
    return std::malloc(n ? n : 1);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#endif // !SENTINEL_ALLOC_HOOK_DISABLED
