#include "common/percentile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sentinel {

namespace {

/** Nearest-rank index for quantile @p q over @p n sorted samples. */
std::size_t
rankIndex(double q, std::size_t n)
{
    if (q <= 0.0)
        return 0;
    double rank = std::ceil(q * static_cast<double>(n));
    auto idx = static_cast<std::size_t>(rank);
    return idx == 0 ? 0 : std::min(idx - 1, n - 1);
}

} // namespace

double
percentile(std::vector<double> samples, double q)
{
    SENTINEL_ASSERT(q >= 0.0 && q <= 1.0,
                    "percentile quantile %g outside [0, 1]", q);
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    return samples[rankIndex(q, samples.size())];
}

PercentileSummary
PercentileSummary::of(std::vector<double> samples)
{
    PercentileSummary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    s.p50 = samples[rankIndex(0.50, samples.size())];
    s.p95 = samples[rankIndex(0.95, samples.size())];
    s.p99 = samples[rankIndex(0.99, samples.size())];
    return s;
}

} // namespace sentinel
