/**
 * @file
 * Fundamental units used throughout the simulator.
 *
 * Simulated time is an integer count of nanoseconds (Tick).  Sizes are
 * plain byte counts.  Bandwidths are bytes per second (double, since
 * they are configuration parameters, not accumulated state).
 */

#ifndef SENTINEL_COMMON_UNITS_HH
#define SENTINEL_COMMON_UNITS_HH

#include <cstdint>

namespace sentinel {

/** Simulated time in nanoseconds. */
using Tick = std::int64_t;

/** One simulated microsecond / millisecond / second in Ticks. */
constexpr Tick kUsec = 1000;
constexpr Tick kMsec = 1000 * kUsec;
constexpr Tick kSec = 1000 * kMsec;

/** Size helpers. */
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/**
 * Time to move @p bytes at @p bytes_per_sec, rounded up to a whole Tick
 * (never returns 0 for a non-zero transfer so that event ordering stays
 * strict).
 */
constexpr Tick
transferTime(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec <= 0.0)
        return 0;
    double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
    Tick t = static_cast<Tick>(ns);
    return t > 0 ? t : 1;
}

/** Convert Ticks to (double) seconds, for reporting. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/** Convert Ticks to (double) milliseconds, for reporting. */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace sentinel

#endif // SENTINEL_COMMON_UNITS_HH
