#include "common/alloc_hook.hh"

#include <atomic>

namespace sentinel::common {

namespace {

// Plain relaxed atomics: the counter is a diagnostic, not a fence.
std::atomic<std::uint64_t> g_alloc_count{ 0 };
std::atomic<bool> g_hook_active{ false };

} // namespace

std::uint64_t
allocCount()
{
    return g_alloc_count.load(std::memory_order_relaxed);
}

bool
allocHookActive()
{
    return g_hook_active.load(std::memory_order_relaxed);
}

namespace detail {

void
noteAlloc() noexcept
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

void
markHookActive() noexcept
{
    g_hook_active.store(true, std::memory_order_relaxed);
}

} // namespace detail

} // namespace sentinel::common
