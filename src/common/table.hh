/**
 * @file
 * Fixed-width text tables and CSV emission.
 *
 * Every benchmark binary regenerates one table or figure of the paper;
 * they all print through this class so the output format is uniform and
 * machine-parseable (a CSV block follows each rendered table).
 */

#ifndef SENTINEL_COMMON_TABLE_HH
#define SENTINEL_COMMON_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sentinel {

/** A simple column-aligned table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title, std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    Table &cell(const std::string &value);
    Table &cell(const char *value);
    Table &cell(double value, int precision = 2);
    Table &cell(std::int64_t value);
    Table &cell(std::uint64_t value);
    Table &cell(int value);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }
    /** Raw cell text (for tests). */
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Render the aligned table. */
    void print(std::ostream &os) const;
    /** Emit the same data as CSV (header + rows). */
    void printCsv(std::ostream &os) const;
    /** print() followed by printCsv() inside a marker block. */
    void printWithCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sentinel

#endif // SENTINEL_COMMON_TABLE_HH
