#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>

namespace sentinel {

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(1u, threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    cv_task_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return unfinished_ == 0; });
    if (first_error_) {
        std::exception_ptr err = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lk(mu_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lk(mu_);
            if (--unfinished_ == 0)
                cv_done_.notify_all();
        }
    }
}

unsigned
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
parallelFor(std::size_t n, int jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    std::size_t threads =
        std::min<std::size_t>(n, jobs <= 1 ? 1 : static_cast<std::size_t>(jobs));
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(static_cast<unsigned>(threads));
    std::atomic<std::size_t> next{0};
    for (std::size_t t = 0; t < threads; ++t) {
        pool.submit([&] {
            for (;;) {
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    pool.wait();
}

} // namespace sentinel
