/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component takes an explicit Rng (or a seed) so that
 * experiments are bit-for-bit reproducible.  Wall-clock seeding is
 * deliberately not provided.
 */

#ifndef SENTINEL_COMMON_RNG_HH
#define SENTINEL_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace sentinel {

/** A small convenience wrapper around std::mt19937_64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5e97195eull) : engine_(seed) {}

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /** Normal draw. */
    double
    normal(double mean, double stddev)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Underlying engine, for std::shuffle and friends. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace sentinel

#endif // SENTINEL_COMMON_RNG_HH
