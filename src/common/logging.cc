#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace sentinel {

namespace {

// Relaxed is enough: verbosity is a filter, not a synchronization
// point, and parallel sweeps only need the read to be tear-free.
std::atomic<bool> g_verbose{false};

/**
 * Emit one fully-formatted line with a single stdio call.  stdio locks
 * the stream internally, so concurrent emitters cannot interleave
 * characters within each other's lines.
 */
void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(std::char_traits<char>::length(prefix) + msg.size() + 1);
    line += prefix;
    line += msg;
    line += '\n';
    std::fputs(line.c_str(), stderr);
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine("panic: ", strprintf("%s (%s:%d)", msg.c_str(), file, line));
    std::fflush(stderr);
    // Throwing (rather than abort()) lets tests exercise panic paths with
    // EXPECT_THROW while still terminating any uncaught failure.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine("fatal: ", strprintf("%s (%s:%d)", msg.c_str(), file, line));
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (verbose())
        emitLine("info: ", msg);
}

} // namespace detail

} // namespace sentinel
