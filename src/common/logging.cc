#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace sentinel {

namespace {

bool g_verbose = false;

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets tests exercise panic paths with
    // EXPECT_THROW while still terminating any uncaught failure.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace sentinel
