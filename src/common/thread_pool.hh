/**
 * @file
 * A small fixed-size worker pool for the experiment harness.
 *
 * The simulator itself is single-threaded by design (one simulated
 * clock); parallelism lives one level up, where independent (model,
 * policy, batch) experiment cells fan out across cores.  The pool is
 * deliberately minimal: submit void() tasks, wait for quiescence,
 * rethrow the first captured exception on wait().
 */

#ifndef SENTINEL_COMMON_THREAD_POOL_HH
#define SENTINEL_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sentinel {

class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue (via wait()) before joining the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised (if any).
     */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency, clamped to >= 1. */
    static unsigned defaultJobs();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_task_; ///< signals queued work / shutdown
    std::condition_variable cv_done_; ///< signals quiescence
    std::size_t unfinished_ = 0;      ///< queued + running tasks
    bool stop_ = false;
    std::exception_ptr first_error_;
};

/**
 * Run fn(i) for every i in [0, n), using up to @p jobs worker threads.
 * jobs <= 1 runs inline on the calling thread (no pool, no overhead).
 * Results must be written to per-index slots by @p fn; indices are
 * claimed atomically, so outputs are deterministic regardless of the
 * interleaving.  The first exception thrown by any fn is rethrown.
 */
void parallelFor(std::size_t n, int jobs,
                 const std::function<void(std::size_t)> &fn);

} // namespace sentinel

#endif // SENTINEL_COMMON_THREAD_POOL_HH
