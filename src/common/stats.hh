/**
 * @file
 * Small statistics helpers: running summaries and bucketed histograms.
 *
 * Used by the characterization study (Sec. III of the paper) to report
 * tensor size / lifetime / access-count distributions, and by the
 * benchmark harness to summarize per-step timings.
 */

#ifndef SENTINEL_COMMON_STATS_HH
#define SENTINEL_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sentinel {

/** Running min/max/mean/stddev over a stream of samples. */
class Summary
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    /** Sample standard deviation (0 with fewer than two samples). */
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumsq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A histogram over caller-supplied bucket upper bounds.
 *
 * Bucket i holds samples x with bounds[i-1] < x <= bounds[i]; one final
 * overflow bucket holds everything above the last bound.  Each sample
 * can carry a weight (e.g. tensor bytes) so the same structure reports
 * both "number of tensors per access-count bucket" and "bytes per
 * access-count bucket" — exactly the two views Observation 2 uses.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upper_bounds);

    void add(double x, double weight = 1.0);

    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    double bucketWeight(std::size_t i) const { return weights_.at(i); }
    /** Human-readable label for bucket @p i, e.g. "(10, 100]". */
    std::string bucketLabel(std::size_t i) const;

    std::uint64_t totalCount() const;
    double totalWeight() const;

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::vector<double> weights_;
};

/** Format a byte count as a short human-readable string ("1.5 GiB"). */
std::string formatBytes(double bytes);

/** Format a Tick (ns) as a short human-readable string ("2.34 ms"). */
std::string formatTime(double ns);

} // namespace sentinel

#endif // SENTINEL_COMMON_STATS_HH
