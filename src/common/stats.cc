#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sentinel {

void
Summary::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    sumsq_ += x * x;
}

double
Summary::min() const
{
    SENTINEL_ASSERT(count_ > 0, "min() of empty Summary");
    return min_;
}

double
Summary::max() const
{
    SENTINEL_ASSERT(count_ > 0, "max() of empty Summary");
    return max_;
}

double
Summary::mean() const
{
    SENTINEL_ASSERT(count_ > 0, "mean() of empty Summary");
    return sum_ / static_cast<double>(count_);
}

double
Summary::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = (sumsq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    SENTINEL_ASSERT(!bounds_.empty(), "Histogram needs at least one bound");
    SENTINEL_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "Histogram bounds must be sorted");
    counts_.assign(bounds_.size() + 1, 0);
    weights_.assign(bounds_.size() + 1, 0.0);
}

void
Histogram::add(double x, double weight)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
    counts_[idx] += 1;
    weights_[idx] += weight;
}

std::string
Histogram::bucketLabel(std::size_t i) const
{
    SENTINEL_ASSERT(i < counts_.size(), "bucket index out of range");
    if (i == 0)
        return strprintf("<= %g", bounds_[0]);
    if (i == bounds_.size())
        return strprintf("> %g", bounds_.back());
    return strprintf("(%g, %g]", bounds_[i - 1], bounds_[i]);
}

std::uint64_t
Histogram::totalCount() const
{
    std::uint64_t total = 0;
    for (auto c : counts_)
        total += c;
    return total;
}

double
Histogram::totalWeight() const
{
    double total = 0.0;
    for (auto w : weights_)
        total += w;
    return total;
}

std::string
formatBytes(double bytes)
{
    const char *suffix[] = { "B", "KiB", "MiB", "GiB", "TiB" };
    int idx = 0;
    double v = bytes;
    while (std::abs(v) >= 1024.0 && idx < 4) {
        v /= 1024.0;
        ++idx;
    }
    return strprintf("%.2f %s", v, suffix[idx]);
}

std::string
formatTime(double ns)
{
    if (std::abs(ns) < 1e3)
        return strprintf("%.0f ns", ns);
    if (std::abs(ns) < 1e6)
        return strprintf("%.2f us", ns / 1e3);
    if (std::abs(ns) < 1e9)
        return strprintf("%.2f ms", ns / 1e6);
    return strprintf("%.3f s", ns / 1e9);
}

} // namespace sentinel
