#include "common/table.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace sentinel {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    SENTINEL_ASSERT(!headers_.empty(), "Table needs at least one column");
}

Table &
Table::row()
{
    if (!rows_.empty()) {
        SENTINEL_ASSERT(rows_.back().size() == headers_.size(),
                        "previous row has %zu cells, expected %zu",
                        rows_.back().size(), headers_.size());
    }
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    SENTINEL_ASSERT(!rows_.empty(), "cell() before row()");
    SENTINEL_ASSERT(rows_.back().size() < headers_.size(),
                    "too many cells in row");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(double value, int precision)
{
    return cell(strprintf("%.*f", precision, value));
}

Table &
Table::cell(std::int64_t value)
{
    return cell(strprintf("%lld", static_cast<long long>(value)));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(strprintf("%llu", static_cast<unsigned long long>(value)));
}

Table &
Table::cell(int value)
{
    return cell(static_cast<std::int64_t>(value));
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    SENTINEL_ASSERT(row < rows_.size() && col < rows_[row].size(),
                    "Table::at(%zu, %zu) out of range", row, col);
    return rows_[row][col];
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;

    os << "\n== " << title_ << " ==\n";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << headers_[c];
    os << "\n" << std::string(total, '-') << "\n";
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c)
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << r[c];
        os << "\n";
    }
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            // Quote cells containing commas.
            if (cells[c].find(',') != std::string::npos)
                os << '"' << cells[c] << '"';
            else
                os << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &r : rows_)
        emit(r);
}

void
Table::printWithCsv(std::ostream &os) const
{
    print(os);
    os << "\n--- csv: " << title_ << " ---\n";
    printCsv(os);
    os << "--- end csv ---\n";
}

} // namespace sentinel
