/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * Two classes of errors are distinguished (deliberately, per the gem5
 * style guide):
 *
 *  - panic():  something happened that should never happen regardless of
 *              what the user does, i.e. a bug in this library.  Aborts.
 *  - fatal():  the simulation cannot continue due to a user-level problem
 *              (bad configuration, impossible experiment parameters).
 *              Exits with an error code.
 *
 * In addition, warn() and inform() print non-fatal status messages.
 */

#ifndef SENTINEL_COMMON_LOGGING_HH
#define SENTINEL_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace sentinel {

/** Severity levels used by the message sink. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Formats a printf-style message into a std::string.
 *
 * @param fmt printf-style format string.
 * @return the formatted message.
 */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Controls whether inform() messages are printed.  Benchmarks silence
 * them to keep their table output clean.
 */
void setVerbose(bool verbose);

/** @return true if inform() messages are currently printed. */
bool verbose();

} // namespace sentinel

/** Report an internal invariant violation and abort. */
#define SENTINEL_PANIC(...)                                                   \
    ::sentinel::detail::panicImpl(__FILE__, __LINE__,                         \
                                  ::sentinel::strprintf(__VA_ARGS__))

/** Report an unrecoverable user-level error and exit(1). */
#define SENTINEL_FATAL(...)                                                   \
    ::sentinel::detail::fatalImpl(__FILE__, __LINE__,                         \
                                  ::sentinel::strprintf(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define SENTINEL_WARN(...)                                                    \
    ::sentinel::detail::warnImpl(::sentinel::strprintf(__VA_ARGS__))

/** Report normal operating status (silenced unless verbose). */
#define SENTINEL_INFORM(...)                                                  \
    ::sentinel::detail::informImpl(::sentinel::strprintf(__VA_ARGS__))

/**
 * Internal assertion: like assert(), but active in all build types and
 * routed through panic() so the message carries context.
 */
#define SENTINEL_ASSERT(cond, ...)                                            \
    do {                                                                      \
        if (!(cond)) {                                                        \
            SENTINEL_PANIC("assertion '%s' failed: %s", #cond,                \
                           ::sentinel::strprintf(__VA_ARGS__).c_str());       \
        }                                                                     \
    } while (0)

#endif // SENTINEL_COMMON_LOGGING_HH
