/**
 * @file
 * Seeded synthetic training-step generator for fuzzing.
 *
 * The five zoo models exercise a handful of points in the graph space
 * the planner / policy matrix must handle; the fuzzer needs the rest
 * of it.  Given a seed, this builder derives a parameter vector
 * (depth, conv/mlp mix, fan-out via residual joins, tensor-size scale
 * from KB to multi-page, activation-reuse distance, short-/long-lived
 * mix) and emits a structurally valid training step through the same
 * ModelBuilder the zoo uses: mirrored forward/backward layers,
 * preallocated weights and optimizer state, saved activations consumed
 * by the backward pass, and per-op short-lived temporaries.
 *
 * Synthetic models are addressed by name so every harness / CLI /
 * bench path can run them:
 *
 *     synthetic:<seed>                   parameters derived from seed
 *     synthetic:<seed>:k=v[,k=v...]      explicit overrides (shrinker)
 *
 * Override keys: cu (conv units), mu (mlp units), img (image side),
 * ch (base channels), feat (mlp width), bp (branch probability),
 * rd (reuse distance in units), tmp (temps per op).
 */

#ifndef SENTINEL_MODELS_SYNTHETIC_HH
#define SENTINEL_MODELS_SYNTHETIC_HH

#include <cstdint>
#include <optional>
#include <string>

#include "dataflow/graph.hh"

namespace sentinel::models {

/** Generator parameter space; every field is shrinkable. */
struct SyntheticParams {
    std::uint64_t seed = 1;

    int conv_units = 4; ///< convolutional stage length (may be 0)
    int mlp_units = 2;  ///< fully-connected stage length (may be 0)

    int image = 16;    ///< input image side (conv stage geometry)
    int channels = 8;  ///< base conv channels (doubled mid-stage)
    int features = 256; ///< mlp width

    /** Probability a unit gains a residual join to an earlier
     *  activation — the fan-out knob; joins extend lifetimes across
     *  layers exactly like ResNet shortcuts do. */
    double branch_prob = 0.3;

    /** How many units back a residual join may reach (the
     *  activation-reuse-distance knob). */
    int reuse_distance = 2;

    /** Short-lived scratch tensors attached to every op (the
     *  short-/long-lived mix knob; 0 = no synthetic temporaries). */
    int temps_per_op = 8;

    /** Derive the whole vector from @p seed (deterministic). */
    static SyntheticParams fromSeed(std::uint64_t seed);

    /**
     * Canonical model name: "synthetic:<seed>" plus an override clause
     * for every field that differs from fromSeed(seed) — the minimal
     * spelling the shrinker emits.
     */
    std::string toName() const;

    bool hasConvs() const { return conv_units > 0; }
};

/** True if @p name uses the "synthetic:" prefix (well-formed or not). */
bool isSyntheticName(const std::string &name);

/**
 * Strict parse of a synthetic model name; nullopt when @p name is not
 * synthetic or is malformed (bad seed, unknown key, bad value).
 */
std::optional<SyntheticParams>
tryParseSyntheticName(const std::string &name);

/** Parse @p name; fatal with a precise message when malformed. */
SyntheticParams parseSyntheticName(const std::string &name);

/** Build one training step from @p p at @p batch. */
df::Graph buildSynthetic(const SyntheticParams &p, int batch);

/**
 * The eight committed fuzz seeds: the corpus the policy-property suite
 * and the replay gate run on every build.  Chosen to cover deep conv
 * stacks, mlp-only graphs, heavy branching, and multi-MB tensors.
 */
constexpr std::uint64_t kCommittedFuzzSeeds[8] = {
    11, 23, 37, 58, 73, 97, 131, 176,
};

} // namespace sentinel::models

#endif // SENTINEL_MODELS_SYNTHETIC_HH
