#include "models/bert.hh"

#include "models/common.hh"

namespace sentinel::models {

using df::OpType;
using df::TensorId;

df::Graph
buildBert(const std::string &name, int num_layers, int hidden, int heads,
          int seq, int batch)
{
    ModelBuilder b(name, batch, 3000 + static_cast<std::uint64_t>(hidden));
    std::uint64_t bs = static_cast<std::uint64_t>(batch);
    std::uint64_t sq = static_cast<std::uint64_t>(seq);
    std::uint64_t hd = static_cast<std::uint64_t>(hidden);
    std::uint64_t rows = bs * sq;
    std::uint64_t act_bytes = fp32(rows * hd);

    constexpr std::uint64_t kVocab = 30522;

    TensorId ids = b.inputTensor("input_ids", 4 * rows);
    TensorId table = b.weight("embedding/table", fp32(kVocab * hd));

    // Embedding lookup: sparse gather over the big table — low
    // episodes-per-page, touching only the rows of this batch.
    b.beginLayer();
    TensorId emb = b.activation("embedding/out", act_bytes);
    b.op("embedding/gather", OpType::Embedding,
         static_cast<double>(rows) * hd,
         { ModelBuilder::read(ids, 4 * rows),
           df::TensorUse{ table, false, act_bytes, 0.25 },
           ModelBuilder::write(emb, act_bytes) });

    TensorId act = emb;
    for (int l = 0; l < num_layers; ++l) {
        std::string pfx = "enc" + std::to_string(l);
        act = b.attentionUnit(pfx + "/attn", act, sq, hd,
                              static_cast<std::uint64_t>(heads));
        act = b.matmulUnit(pfx + "/ffn1", act, rows, hd, 4 * hd, true);
        act = b.matmulUnit(pfx + "/ffn2", act, rows, 4 * hd, hd, false);
    }

    // Pooler over the [CLS] positions + classifier.
    TensorId pooled = b.matmulUnit("pooler", act, bs, hd, hd, true);
    TensorId logits = b.matmulUnit("cls", pooled, bs, hd, 2, false);
    TensorId grad = b.lossLayer(logits, fp32(bs * 2));
    b.buildBackward(grad);
    return b.finish();
}

df::Graph
buildBertBase(int batch, int seq)
{
    return buildBert("bert_base", 12, 768, 12, seq, batch);
}

df::Graph
buildBertLarge(int batch, int seq)
{
    return buildBert("bert_large", 24, 1024, 16, seq, batch);
}

} // namespace sentinel::models
