#include "models/lstm.hh"

#include "models/common.hh"

namespace sentinel::models {

using df::OpType;
using df::TensorId;

df::Graph
buildLstm(int batch, int hidden, int seq, int stacked)
{
    ModelBuilder b("lstm", batch, 4000 + static_cast<std::uint64_t>(seq));
    std::uint64_t bs = static_cast<std::uint64_t>(batch);
    std::uint64_t hd = static_cast<std::uint64_t>(hidden);
    std::uint64_t state_bytes = fp32(bs * hd);

    TensorId input = b.inputTensor(
        "input", fp32(bs * static_cast<std::uint64_t>(seq) * hd));

    // Shared recurrent weights, one pair per stacked cell.
    std::vector<TensorId> w_ih, w_hh;
    for (int c = 0; c < stacked; ++c) {
        w_ih.push_back(b.weight("cell" + std::to_string(c) + "/w_ih",
                                fp32(hd * 4 * hd)));
        w_hh.push_back(b.weight("cell" + std::to_string(c) + "/w_hh",
                                fp32(hd * 4 * hd)));
    }

    // Initial hidden states.
    b.beginLayer();
    std::vector<TensorId> h(static_cast<std::size_t>(stacked));
    for (int c = 0; c < stacked; ++c) {
        h[static_cast<std::size_t>(c)] =
            b.activation("h0/cell" + std::to_string(c), state_bytes);
        b.op("init/h0_" + std::to_string(c), OpType::Other,
             static_cast<double>(state_bytes) / 4.0,
             { ModelBuilder::write(h[static_cast<std::size_t>(c)],
                                   state_bytes) },
             1);
    }

    for (int t = 0; t < seq; ++t) {
        // The timestep input is a slice of the preallocated batch.
        TensorId x = input;
        for (int c = 0; c < stacked; ++c) {
            std::string pfx =
                "t" + std::to_string(t) + "/c" + std::to_string(c);
            TensorId hc = b.lstmUnit(
                pfx, x, h[static_cast<std::size_t>(c)],
                w_ih[static_cast<std::size_t>(c)],
                w_hh[static_cast<std::size_t>(c)], hd);
            h[static_cast<std::size_t>(c)] = hc;
            x = hc;
        }
    }

    TensorId logits =
        b.matmulUnit("proj", h.back(), bs, hd, 1000, false);
    TensorId grad = b.lossLayer(logits, fp32(bs * 1000));
    b.buildBackward(grad);
    return b.finish();
}

} // namespace sentinel::models
