/**
 * @file
 * DCGAN training graph: generator + discriminator in one step.
 *
 * The generator upsamples a latent vector through transposed
 * convolutions (modeled as conv units on growing feature maps); the
 * discriminator downsamples the generated image.  One training step
 * runs both networks forward then backward — the combined graph is
 * what the memory system sees.
 */

#ifndef SENTINEL_MODELS_DCGAN_HH
#define SENTINEL_MODELS_DCGAN_HH

#include "dataflow/graph.hh"

namespace sentinel::models {

df::Graph buildDcgan(int batch, int image = 64);

} // namespace sentinel::models

#endif // SENTINEL_MODELS_DCGAN_HH
