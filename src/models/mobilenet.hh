/**
 * @file
 * MobileNet-v1-style training graph.
 *
 * Alternating depthwise 3x3 and pointwise 1x1 convolutions.  The
 * depthwise stages are memory-bound (tiny FLOP count per byte), which
 * stresses tensor placement more than compute overlap — MobileNet is
 * the model where slow-memory accesses hurt the most in the paper's
 * Fig. 7.
 */

#ifndef SENTINEL_MODELS_MOBILENET_HH
#define SENTINEL_MODELS_MOBILENET_HH

#include "dataflow/graph.hh"

namespace sentinel::models {

df::Graph buildMobileNet(int batch, int image = 64);

} // namespace sentinel::models

#endif // SENTINEL_MODELS_MOBILENET_HH
