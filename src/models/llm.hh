/**
 * @file
 * Transformer/LLM training-step family for N-tier experiments.
 *
 * The Table III zoo tops out at BERT-large; the three-tier experiments
 * need graphs whose working set dwarfs the fast tier by one to two
 * orders of magnitude, so that the middle tier actually carries staged
 * traffic.  This family emits decoder-style language models
 * (embedding gather, stacked self-attention + FFN blocks, a vocab-wide
 * LM head, mirrored backward with optimizer state) through the same
 * ModelBuilder the zoo uses.
 *
 * LLM models reuse the synthetic: family's name-grammar machinery so
 * every harness / CLI / fuzz path can address them by string:
 *
 *     llm:<preset>                     tiny | small | medium | large
 *     llm:<preset>:k=v[,k=v...]       explicit overrides
 *
 * Override keys: l (decoder blocks), hd (hidden width), heads
 * (attention heads; must divide hd), seq (sequence length),
 * vocab (vocabulary size).
 */

#ifndef SENTINEL_MODELS_LLM_HH
#define SENTINEL_MODELS_LLM_HH

#include <cstdint>
#include <optional>
#include <string>

#include "dataflow/graph.hh"

namespace sentinel::models {

/** LLM generator parameter space; every field is shrinkable. */
struct LlmParams {
    std::string preset = "tiny";

    int layers = 4;    ///< decoder blocks (attention + FFN)
    int hidden = 256;  ///< model width
    int heads = 4;     ///< attention heads (divides hidden)
    int seq = 128;     ///< sequence length
    int vocab = 8192;  ///< vocabulary (embedding table + LM head rows)

    /**
     * Derive the vector for @p preset; nullopt on an unknown preset.
     * tiny fits CI budgets; large is the 10-100x fast-tier point the
     * three-tier DRAM-size sweep (EXPERIMENTS bench_ntier) runs at.
     */
    static std::optional<LlmParams> fromPreset(const std::string &preset);

    /**
     * Canonical model name: "llm:<preset>" plus an override clause for
     * every field that differs from fromPreset(preset) — the minimal
     * spelling, round-tripping through tryParseLlmName().
     */
    std::string toName() const;
};

/** True if @p name uses the "llm:" prefix (well-formed or not). */
bool isLlmName(const std::string &name);

/**
 * Strict parse of an LLM model name; nullopt when @p name is not an
 * llm: name or is malformed (unknown preset, unknown key, bad value,
 * heads not dividing hidden).
 */
std::optional<LlmParams> tryParseLlmName(const std::string &name);

/** Parse @p name; fatal with a precise message when malformed. */
LlmParams parseLlmName(const std::string &name);

/** Build one training step from @p p at @p batch. */
df::Graph buildLlm(const LlmParams &p, int batch);

/** The committed presets, smallest first (test-matrix order). */
constexpr const char *kLlmPresets[4] = {
    "tiny", "small", "medium", "large",
};

} // namespace sentinel::models

#endif // SENTINEL_MODELS_LLM_HH
