#include "models/common.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace sentinel::models {

using df::OpType;
using df::TensorId;
using df::TensorKind;
using df::TensorUse;

ModelBuilder::ModelBuilder(std::string name, int batch, std::uint64_t seed)
    : graph_(std::move(name), batch), batch_(batch), rng_(seed)
{
    // The runtime bookkeeping scalars every framework keeps touching:
    // global step, learning rate, loss scale, RNG state.  Touched by
    // nearly every op, they form the ">100 accesses, tiny size" hot
    // set of Observation 2.
    const char *names[] = { "rt/global_step", "rt/learning_rate",
                            "rt/loss_scale", "rt/rng_state" };
    for (const char *n : names) {
        hot_scalars_.push_back(
            graph_.addTensor(n, 256, TensorKind::Weight, true));
    }
}

df::Graph
ModelBuilder::finish()
{
    graph_.finalize();
    return std::move(graph_);
}

int
ModelBuilder::beginLayer()
{
    return ++layer_;
}

TensorId
ModelBuilder::weight(const std::string &name, std::uint64_t bytes)
{
    return graph_.addTensor(name, bytes, TensorKind::Weight, true);
}

TensorId
ModelBuilder::smallParam(const std::string &name, std::uint64_t bytes)
{
    return graph_.addTensor(name, bytes, TensorKind::Weight, true);
}

TensorId
ModelBuilder::optimizerState(const std::string &name, std::uint64_t bytes)
{
    return graph_.addTensor(name, bytes, TensorKind::Optimizer, true);
}

TensorId
ModelBuilder::inputTensor(const std::string &name, std::uint64_t bytes)
{
    return graph_.addTensor(name, bytes, TensorKind::Input, true);
}

TensorId
ModelBuilder::activation(const std::string &name, std::uint64_t bytes)
{
    return graph_.addTensor(name, bytes, TensorKind::Activation);
}

TensorId
ModelBuilder::gradient(const std::string &name, std::uint64_t bytes)
{
    return graph_.addTensor(name, bytes, TensorKind::ActivationGrad);
}

TensorId
ModelBuilder::temp(const std::string &name, std::uint64_t bytes)
{
    return graph_.addTensor(name, bytes, TensorKind::Temp);
}

TensorUse
ModelBuilder::read(TensorId t, std::uint64_t bytes, double episodes)
{
    return TensorUse{ t, false, bytes, episodes };
}

TensorUse
ModelBuilder::write(TensorId t, std::uint64_t bytes, double episodes)
{
    return TensorUse{ t, true, bytes, episodes };
}

TensorUse
ModelBuilder::readWeight(TensorId t, std::uint64_t bytes)
{
    // Weights are revisited across batch tiles: extra traffic and
    // several counted episodes per page (cache blocking keeps the
    // revisit count moderate).
    return TensorUse{ t, false, bytes * 3 / 2, 4.0 };
}

TensorUse
ModelBuilder::readParam(TensorId t, std::uint64_t bytes)
{
    // Small parameters are touched per channel chunk throughout the
    // op; the cache keeps evicting them between chunks.
    return TensorUse{ t, false, bytes * 16, 24.0 };
}

df::OpId
ModelBuilder::op(const std::string &name, OpType type, double flops,
                 std::vector<TensorUse> uses, int n_small_temps)
{
    SENTINEL_ASSERT(layer_ >= 0, "op('%s') before beginLayer()",
                    name.c_str());

    if (n_small_temps < 0)
        n_small_temps = default_temps_;

    // Small short-lived scratch: shape buffers, reduction temporaries,
    // broadcast helpers.  Sub-page sizes, one or two touches.
    for (int i = 0; i < n_small_temps; ++i) {
        std::uint64_t bytes =
            static_cast<std::uint64_t>(rng_.uniformInt(64, 2048));
        TensorId t = temp(name + "/tmp" +
                              std::to_string(temp_counter_++),
                          bytes);
        uses.push_back(write(t, bytes, 2.0));
    }

    // One bookkeeping-scalar read per op (rotating); the runtime
    // checks these tiny structures more than once per op, which is
    // what makes them the ">100 accesses" hot set of Observation 2.
    TensorId scalar = hot_scalars_[next_scalar_];
    next_scalar_ = (next_scalar_ + 1) % hot_scalars_.size();
    uses.push_back(read(scalar, 128, 2.0));

    return graph_.addOp(name, type, layer_, flops, std::move(uses));
}

TensorId
ModelBuilder::convUnit(const std::string &prefix, TensorId in_act, int cin,
                       int cout, int k, int h, int w, int stride, bool bn,
                       bool relu, double flops_scale, bool lower)
{
    beginLayer();
    std::uint64_t b = static_cast<std::uint64_t>(batch_);
    int oh = outH(h, stride);
    int ow = outH(w, stride);
    std::uint64_t in_bytes =
        fp32(b * static_cast<std::uint64_t>(cin) * h * w);
    std::uint64_t out_bytes =
        fp32(b * static_cast<std::uint64_t>(cout) * oh * ow);
    std::uint64_t w_bytes = fp32(static_cast<std::uint64_t>(cout) * cin *
                                 k * k);
    double flops = 2.0 * static_cast<double>(b) * cout * oh * ow * cin *
                   k * k * flops_scale;

    TensorId wt = weight(prefix + "/w", w_bytes);
    TensorId mom = optimizerState(prefix + "/w.mom", w_bytes);

    TensorId conv_in = in_act;
    std::uint64_t conv_in_bytes = in_bytes;
    if (k > 1 && lower) {
        // Padding + tiled im2col lowering: the classic large
        // short-lived temporary inside conv (Fig. 2 of the paper).
        std::uint64_t lowered = in_bytes + fp32(b * cin);
        TensorId im2col = temp(prefix + "/im2col", lowered);
        op(prefix + "/pad_lower", OpType::Pad,
           static_cast<double>(lowered) / 2.0,
           { read(in_act, in_bytes), write(im2col, lowered) });
        conv_in = im2col;
        conv_in_bytes = lowered;
    }

    // The raw conv output is kept for the backward pass (batch-norm
    // backward re-reads its input), so it is a long-lived activation.
    bool fused_out = !bn && !relu;
    TensorId conv_out = activation(
        fused_out ? prefix + "/out" : prefix + "/conv_out", out_bytes);
    op(prefix + "/conv", OpType::Conv2d, flops,
       { read(conv_in, conv_in_bytes, 1.5), readWeight(wt, w_bytes),
         write(conv_out, out_bytes) });

    TensorId cur = conv_out;
    std::vector<TensorId> unit_weights{ wt };
    std::vector<std::uint64_t> unit_wbytes{ w_bytes };
    std::vector<TensorId> unit_opts{ mom };
    std::vector<std::pair<TensorId, std::uint64_t>> unit_saved;
    if (!fused_out)
        unit_saved.emplace_back(conv_out, out_bytes);

    if (bn) {
        TensorId scale = smallParam(prefix + "/bn.scale",
                                    fp32(static_cast<std::uint64_t>(cout)));
        TensorId shift = smallParam(prefix + "/bn.shift",
                                    fp32(static_cast<std::uint64_t>(cout)));
        // BN output is short-lived when ReLU consumes it in this layer.
        TensorId bn_out = relu ? temp(prefix + "/bn_out", out_bytes)
                               : activation(prefix + "/out", out_bytes);
        op(prefix + "/bn", OpType::BatchNorm,
           static_cast<double>(out_bytes),
           { read(cur, out_bytes),
             readParam(scale, fp32(static_cast<std::uint64_t>(cout))),
             readParam(shift, fp32(static_cast<std::uint64_t>(cout))),
             write(bn_out, out_bytes) });
        cur = bn_out;
        unit_weights.push_back(scale);
        unit_wbytes.push_back(fp32(static_cast<std::uint64_t>(cout)));
        unit_opts.push_back(df::kInvalidTensor);
        unit_weights.push_back(shift);
        unit_wbytes.push_back(fp32(static_cast<std::uint64_t>(cout)));
        unit_opts.push_back(df::kInvalidTensor);
    }

    if (relu) {
        TensorId out = activation(prefix + "/out", out_bytes);
        op(prefix + "/relu", OpType::ReLU,
           static_cast<double>(out_bytes) / 4.0,
           { read(cur, out_bytes), write(out, out_bytes) });
        cur = out;
    }

    recordUnit(UnitRecord{ prefix, OpType::ConvBackward, in_act, in_bytes,
                           cur, out_bytes, std::move(unit_weights),
                           std::move(unit_wbytes), std::move(unit_opts),
                           std::move(unit_saved), flops });
    return cur;
}

TensorId
ModelBuilder::matmulUnit(const std::string &prefix, TensorId in_act,
                         std::uint64_t rows, std::uint64_t in_features,
                         std::uint64_t out_features, bool activation_fn)
{
    beginLayer();
    std::uint64_t in_bytes = fp32(rows * in_features);
    std::uint64_t out_bytes = fp32(rows * out_features);
    std::uint64_t w_bytes = fp32(in_features * out_features);
    double flops = 2.0 * static_cast<double>(rows) * in_features *
                   out_features;

    TensorId wt = weight(prefix + "/w", w_bytes);
    TensorId mom = optimizerState(prefix + "/w.mom", w_bytes);
    TensorId bias = smallParam(prefix + "/b", fp32(out_features));

    // The pre-activation output is saved for the backward pass.
    TensorId mm_out = activation(
        activation_fn ? prefix + "/mm_out" : prefix + "/out", out_bytes);
    op(prefix + "/matmul", OpType::MatMul, flops,
       { read(in_act, in_bytes, 1.5), readWeight(wt, w_bytes),
         write(mm_out, out_bytes) });

    TensorId cur = mm_out;
    if (activation_fn) {
        TensorId out = activation(prefix + "/out", out_bytes);
        op(prefix + "/bias_act", OpType::EltwiseAdd,
           static_cast<double>(out_bytes) / 2.0,
           { read(mm_out, out_bytes), readParam(bias, fp32(out_features)),
             write(out, out_bytes) });
        cur = out;
    }

    std::vector<std::pair<TensorId, std::uint64_t>> saved;
    if (activation_fn)
        saved.emplace_back(mm_out, out_bytes);
    recordUnit(UnitRecord{
        prefix, OpType::MatMul, in_act, in_bytes, cur, out_bytes,
        { wt, bias },
        { w_bytes, fp32(out_features) },
        { mom, df::kInvalidTensor },
        std::move(saved), flops });
    return cur;
}

TensorId
ModelBuilder::attentionUnit(const std::string &prefix, TensorId in_act,
                            std::uint64_t seq, std::uint64_t hidden,
                            std::uint64_t heads)
{
    beginLayer();
    std::uint64_t b = static_cast<std::uint64_t>(batch_);
    std::uint64_t rows = b * seq;
    std::uint64_t in_bytes = fp32(rows * hidden);
    std::uint64_t qkv_bytes = 3 * in_bytes;
    std::uint64_t scores_bytes = fp32(b * heads * seq * seq);
    std::uint64_t wqkv_bytes = fp32(hidden * 3 * hidden);
    std::uint64_t wo_bytes = fp32(hidden * hidden);

    TensorId w_qkv = weight(prefix + "/w_qkv", wqkv_bytes);
    TensorId mom_qkv = optimizerState(prefix + "/w_qkv.mom", wqkv_bytes);
    TensorId w_o = weight(prefix + "/w_o", wo_bytes);
    TensorId mom_o = optimizerState(prefix + "/w_o.mom", wo_bytes);
    TensorId ln_scale = smallParam(prefix + "/ln.scale", fp32(hidden));
    TensorId ln_shift = smallParam(prefix + "/ln.shift", fp32(hidden));

    double qkv_flops = 2.0 * static_cast<double>(rows) * hidden * 3 *
                       hidden;
    TensorId qkv = temp(prefix + "/qkv", qkv_bytes);
    op(prefix + "/qkv_matmul", OpType::MatMul, qkv_flops,
       { read(in_act, in_bytes, 1.5), readWeight(w_qkv, wqkv_bytes),
         write(qkv, qkv_bytes) });

    double score_flops = 2.0 * static_cast<double>(b) * heads * seq * seq *
                         (hidden / heads);
    TensorId scores = temp(prefix + "/scores", scores_bytes);
    op(prefix + "/qk", OpType::MatMul, score_flops,
       { read(qkv, qkv_bytes), write(scores, scores_bytes) });

    // Attention probabilities are saved for the backward pass: the big
    // seq^2 activations that dominate BERT's memory pressure.
    TensorId probs = activation(prefix + "/probs", scores_bytes);
    op(prefix + "/softmax", OpType::Softmax,
       static_cast<double>(scores_bytes),
       { read(scores, scores_bytes), write(probs, scores_bytes) });

    TensorId ctx = temp(prefix + "/ctx", in_bytes);
    op(prefix + "/pv", OpType::MatMul, score_flops,
       { read(probs, scores_bytes), read(qkv, qkv_bytes),
         write(ctx, in_bytes) });

    double proj_flops = 2.0 * static_cast<double>(rows) * hidden * hidden;
    TensorId proj = temp(prefix + "/proj", in_bytes);
    op(prefix + "/out_proj", OpType::MatMul, proj_flops,
       { read(ctx, in_bytes), readWeight(w_o, wo_bytes),
         write(proj, in_bytes) });

    TensorId out = activation(prefix + "/out", in_bytes);
    op(prefix + "/add_ln", OpType::LayerNorm,
       static_cast<double>(in_bytes),
       { read(proj, in_bytes), read(in_act, in_bytes),
         readParam(ln_scale, fp32(hidden)),
         readParam(ln_shift, fp32(hidden)), write(out, in_bytes) });

    recordUnit(UnitRecord{
        prefix, OpType::Attention, in_act, in_bytes, out, in_bytes,
        { w_qkv, w_o, ln_scale, ln_shift },
        { wqkv_bytes, wo_bytes, fp32(hidden), fp32(hidden) },
        { mom_qkv, mom_o, df::kInvalidTensor, df::kInvalidTensor },
        { { probs, scores_bytes } },
        qkv_flops + 2 * score_flops + proj_flops });
    return out;
}

TensorId
ModelBuilder::lstmUnit(const std::string &prefix, TensorId x,
                       TensorId h_prev, TensorId w_ih, TensorId w_hh,
                       std::uint64_t hidden)
{
    beginLayer();
    std::uint64_t b = static_cast<std::uint64_t>(batch_);
    std::uint64_t state_bytes = fp32(b * hidden);
    std::uint64_t gates_bytes = 4 * state_bytes;
    std::uint64_t w_bytes = fp32(hidden * 4 * hidden);
    double flops = 2.0 * static_cast<double>(b) * hidden * 8 * hidden;

    // Gates are saved for backward (long-lived): they anchor this
    // unit's memory in the backward pass.
    TensorId gates = activation(prefix + "/gates", gates_bytes);
    op(prefix + "/gates", OpType::LstmCell, flops,
       { read(x, state_bytes, 1.5), read(h_prev, state_bytes, 1.5),
         readWeight(w_ih, w_bytes), readWeight(w_hh, w_bytes),
         write(gates, gates_bytes) });

    TensorId h = activation(prefix + "/h", state_bytes);
    op(prefix + "/state", OpType::EltwiseAdd,
       static_cast<double>(gates_bytes),
       { read(gates, gates_bytes), write(h, state_bytes) });

    recordUnit(UnitRecord{ prefix, OpType::LstmCell, gates, gates_bytes,
                           h, state_bytes,
                           { w_ih, w_hh },
                           { w_bytes, w_bytes },
                           { df::kInvalidTensor, df::kInvalidTensor },
                           {}, flops });
    return h;
}

TensorId
ModelBuilder::lossLayer(TensorId logits, std::uint64_t logits_bytes)
{
    beginLayer();
    TensorId probs = temp("loss/softmax", logits_bytes);
    op("loss/softmax", OpType::Softmax,
       static_cast<double>(logits_bytes),
       { read(logits, logits_bytes), write(probs, logits_bytes) });
    TensorId grad = gradient("loss/dlogits", logits_bytes);
    op("loss/grad", OpType::Loss, static_cast<double>(logits_bytes) / 2.0,
       { read(probs, logits_bytes), write(grad, logits_bytes) });
    return grad;
}

void
ModelBuilder::buildBackward(TensorId loss_grad)
{
    SENTINEL_ASSERT(!units_.empty(), "no units recorded");
    TensorId grad = loss_grad;

    // Weights shared by several units (recurrent cells) accumulate
    // into ONE persistent gradient buffer, applied by a single update
    // after the last contribution — as real frameworks do.  Per-unit
    // weight grads stay short-lived.
    std::unordered_map<TensorId, int> weight_uses;
    for (const auto &u : units_)
        for (TensorId w : u.weights)
            ++weight_uses[w];
    std::unordered_map<TensorId, TensorId> shared_accum;
    std::unordered_map<TensorId, int> remaining = weight_uses;

    for (auto it = units_.rbegin(); it != units_.rend(); ++it) {
        const UnitRecord &u = *it;
        beginLayer();
        bool first_unit = (std::next(it) == units_.rend());

        std::vector<TensorUse> uses;
        uses.push_back(read(u.in_act, u.in_bytes, 1.5));
        uses.push_back(read(grad, u.out_bytes));
        for (const auto &sv : u.saved)
            uses.push_back(read(sv.first, sv.second));
        // Weight gradients are produced and consumed within this layer
        // (short-lived, as the paper observes) — except shared-weight
        // accumulators, which persist across the backward pass.
        std::vector<TensorId> wgrads;
        for (std::size_t i = 0; i < u.weights.size(); ++i) {
            uses.push_back(readWeight(u.weights[i], u.weight_bytes[i]));
            TensorId w = u.weights[i];
            TensorId wg;
            if (weight_uses[w] > 1) {
                auto it = shared_accum.find(w);
                if (it == shared_accum.end()) {
                    wg = gradient(u.prefix + "/dacc" + std::to_string(i),
                                  u.weight_bytes[i]);
                    shared_accum.emplace(w, wg);
                } else {
                    wg = it->second;
                }
                uses.push_back(write(wg, u.weight_bytes[i], 2.0));
            } else {
                wg = temp(u.prefix + "/d" + std::to_string(i),
                          u.weight_bytes[i]);
                uses.push_back(write(wg, u.weight_bytes[i]));
            }
            wgrads.push_back(wg);
        }
        TensorId dgrad = df::kInvalidTensor;
        if (!first_unit) {
            dgrad = gradient(u.prefix + "/dx", u.in_bytes);
            uses.push_back(write(dgrad, u.in_bytes));
        }
        op(u.prefix + "/bwd", u.bwd_type, 2.0 * u.flops, std::move(uses),
           10);

        // SGD-with-momentum updates; shared weights update once, after
        // their last gradient contribution.
        for (std::size_t i = 0; i < u.weights.size(); ++i) {
            if (--remaining[u.weights[i]] > 0)
                continue;
            std::vector<TensorUse> uu;
            uu.push_back(read(wgrads[i], u.weight_bytes[i]));
            if (u.opt_states[i] != df::kInvalidTensor)
                uu.push_back(df::TensorUse{ u.opt_states[i], true,
                                            u.weight_bytes[i] * 2, 4.0 });
            uu.push_back(write(u.weights[i], u.weight_bytes[i], 4.0));
            op(u.prefix + "/update" + std::to_string(i),
               OpType::SgdUpdate,
               static_cast<double>(u.weight_bytes[i]) / 2.0,
               std::move(uu), 1);
        }

        grad = first_unit ? grad : dgrad;
    }
}

} // namespace sentinel::models
