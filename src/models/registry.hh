/**
 * @file
 * The model zoo: names, default batch sizes, and a factory.
 *
 * Mirrors Table III of the paper: five models, each evaluated at a
 * small and a large batch size.  Additional ResNet variants back the
 * scaling study of Fig. 11.
 */

#ifndef SENTINEL_MODELS_REGISTRY_HH
#define SENTINEL_MODELS_REGISTRY_HH

#include <string>
#include <vector>

#include "dataflow/graph.hh"

namespace sentinel::models {

struct ModelSpec {
    std::string name;
    int small_batch;
    int large_batch;
    /** True if the graph contains convolution layers (vDNN support). */
    bool has_convs;
};

/** The five evaluation models of Table III. */
const std::vector<ModelSpec> &modelZoo();

/** Build @p name at @p batch; fatal on unknown name. */
df::Graph makeModel(const std::string &name, int batch);

/** Spec lookup; fatal on unknown name. */
const ModelSpec &modelSpec(const std::string &name);

/**
 * Non-fatal spec lookup: null when @p name has no Table III entry.
 * The factory accepts more names than the zoo lists (the Fig. 11
 * ResNet variants) — callers defaulting a batch size from the spec
 * should fall back gracefully for those.  Well-formed
 * "synthetic:<seed>[:k=v,...]" (models/synthetic.hh) and
 * "llm:<preset>[:k=v,...]" (models/llm.hh) names resolve to an
 * on-demand spec; malformed family names return null.
 */
const ModelSpec *findModelSpec(const std::string &name);

} // namespace sentinel::models

#endif // SENTINEL_MODELS_REGISTRY_HH
