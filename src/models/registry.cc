#include "models/registry.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"
#include "models/bert.hh"
#include "models/dcgan.hh"
#include "models/llm.hh"
#include "models/lstm.hh"
#include "models/mobilenet.hh"
#include "models/resnet.hh"
#include "models/synthetic.hh"

namespace sentinel::models {

const std::vector<ModelSpec> &
modelZoo()
{
    static const std::vector<ModelSpec> zoo = {
        { "resnet32", 32, 256, true },
        { "resnet200", 8, 32, true },
        { "bert_large", 4, 12, false },
        { "lstm", 128, 512, false },
        { "mobilenet", 32, 256, true },
        { "dcgan", 32, 64, true },
    };
    return zoo;
}

const ModelSpec &
modelSpec(const std::string &name)
{
    const ModelSpec *spec = findModelSpec(name);
    if (!spec)
        SENTINEL_FATAL("unknown model '%s'", name.c_str());
    return *spec;
}

const ModelSpec *
findModelSpec(const std::string &name)
{
    for (const auto &spec : modelZoo())
        if (spec.name == name)
            return &spec;
    // Name-grammar families (synthetic:, llm:) mint specs on demand;
    // std::map node stability keeps the returned pointers valid for
    // the process lifetime.
    static std::mutex mu;
    static std::map<std::string, ModelSpec> cache;
    if (isSyntheticName(name)) {
        std::optional<SyntheticParams> p = tryParseSyntheticName(name);
        if (!p)
            return nullptr;
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache
                      .try_emplace(name,
                                   ModelSpec{ name, 4, 16, p->hasConvs() })
                      .first;
        return &it->second;
    }
    if (isLlmName(name)) {
        if (!tryParseLlmName(name))
            return nullptr;
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache
                      .try_emplace(name, ModelSpec{ name, 2, 8, false })
                      .first;
        return &it->second;
    }
    return nullptr;
}

df::Graph
makeModel(const std::string &name, int batch)
{
    SENTINEL_ASSERT(batch > 0, "batch must be positive");
    // Seeded fuzz models (parseSyntheticName is fatal on a malformed
    // name, matching the unknown-model behaviour below).
    if (isSyntheticName(name))
        return buildSynthetic(parseSyntheticName(name), batch);
    // LLM-scale transformers for the N-tier experiments.
    if (isLlmName(name))
        return buildLlm(parseLlmName(name), batch);
    // The Table III zoo.
    if (name == "resnet32")
        return buildCifarResNet(32, batch);
    if (name == "resnet200")
        return buildBottleneckResNet(200, batch);
    if (name == "bert_base")
        return buildBertBase(batch);
    if (name == "bert_large")
        return buildBertLarge(batch);
    if (name == "lstm")
        return buildLstm(batch);
    if (name == "mobilenet")
        return buildMobileNet(batch);
    if (name == "dcgan")
        return buildDcgan(batch);
    // ResNet variants for the Fig. 11 scaling study.
    if (name == "resnet20")
        return buildCifarResNet(20, batch);
    if (name == "resnet44")
        return buildCifarResNet(44, batch);
    if (name == "resnet56")
        return buildCifarResNet(56, batch);
    if (name == "resnet110")
        return buildCifarResNet(110, batch);
    if (name == "resnet152")
        return buildBottleneckResNet(152, batch);
    SENTINEL_FATAL("unknown model '%s'", name.c_str());
}

} // namespace sentinel::models
