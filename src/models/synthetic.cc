#include "models/synthetic.hh"

#include <cctype>
#include <charconv>
#include <map>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "models/common.hh"

namespace sentinel::models {

using df::OpType;
using df::TensorId;

namespace {

constexpr char kPrefix[] = "synthetic:";
constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;

// Bounds on every parameter: the fuzzer explores inside them, the
// parser rejects outside them, so a hostile name cannot demand an
// absurd graph.
constexpr int kMaxUnits = 64;
constexpr int kMaxImage = 256;
constexpr int kMaxChannels = 1024;
constexpr int kMaxFeatures = 65536;
constexpr int kMaxTemps = 64;

// All numeric parsing goes through std::from_chars: locale-independent
// (strtod honours the process locale's decimal point, so the same name
// parsed differently under e.g. de_DE), exception-free, and with
// explicit overflow reporting instead of strtol/strtoull's errno
// protocol.  A strict grammar scan runs first because from_chars
// itself still accepts "nan"/"inf"/hex floats — and NaN slipped
// straight through the old `v < 0.0 || v > 1.0` range check.

bool
parseInt(const std::string &s, int lo, int hi, int *out)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    int v = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || ptr != s.data() + s.size())
        return false; // out of range (silent-wrap territory) or junk
    if (v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

/** Plain non-negative decimal float: digits [ '.' digits ]
 *  [ ('e'|'E') ['+'|'-'] digits ].  Deliberately excludes leading
 *  whitespace and signs, "nan", "inf", and hex floats — everything
 *  strtod would have waved through.  Scientific notation stays legal
 *  because toName() emits branch_prob with %g. */
bool
probGrammar(const std::string &s)
{
    std::size_t i = 0;
    const std::size_t n = s.size();
    auto digits = [&] {
        std::size_t k = 0;
        while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            ++k;
        }
        return k;
    };
    std::size_t int_digits = digits();
    std::size_t frac_digits = 0;
    if (i < n && s[i] == '.') {
        ++i;
        frac_digits = digits();
    }
    if (int_digits + frac_digits == 0)
        return false;
    if (i < n && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < n && (s[i] == '+' || s[i] == '-'))
            ++i;
        if (digits() == 0)
            return false;
    }
    return i == n;
}

bool
parseProb(const std::string &s, double *out)
{
    if (!probGrammar(s))
        return false;
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || ptr != s.data() + s.size())
        return false; // overflow/underflow or junk
    if (v < 0.0 || v > 1.0)
        return false;
    *out = v;
    return true;
}

/** Apply one "k=v" override; false on unknown key or bad value. */
bool
applyOverride(SyntheticParams &p, const std::string &key,
              const std::string &value)
{
    if (key == "cu")
        return parseInt(value, 0, kMaxUnits, &p.conv_units);
    if (key == "mu")
        return parseInt(value, 0, kMaxUnits, &p.mlp_units);
    if (key == "img")
        return parseInt(value, 4, kMaxImage, &p.image);
    if (key == "ch")
        return parseInt(value, 1, kMaxChannels, &p.channels);
    if (key == "feat")
        return parseInt(value, 1, kMaxFeatures, &p.features);
    if (key == "bp")
        return parseProb(value, &p.branch_prob);
    if (key == "rd")
        return parseInt(value, 1, kMaxUnits, &p.reuse_distance);
    if (key == "tmp")
        return parseInt(value, 0, kMaxTemps, &p.temps_per_op);
    return false;
}

/** Residual-style join appended to the current layer: reads the unit
 *  output plus an earlier same-shape activation (fan-out; extends the
 *  shortcut's lifetime across layers). */
TensorId
joinActivations(ModelBuilder &b, const std::string &prefix, TensorId main,
                TensorId shortcut, std::uint64_t bytes)
{
    TensorId out = b.activation(prefix + "/join_out", bytes);
    b.op(prefix + "/join", OpType::EltwiseAdd,
         static_cast<double>(bytes) / 2.0,
         { ModelBuilder::read(main, bytes),
           ModelBuilder::read(shortcut, bytes),
           ModelBuilder::write(out, bytes) });
    return out;
}

struct UnitOutput {
    TensorId tensor;
    std::uint64_t bytes;
};

/** Oldest same-shape activation within @p distance units back, or
 *  kInvalidTensor — "oldest" maximizes the realized reuse distance. */
TensorId
findJoinTarget(const std::vector<UnitOutput> &history, int distance,
               std::uint64_t bytes)
{
    std::size_t n = history.size();
    std::size_t first =
        n > static_cast<std::size_t>(distance)
            ? n - static_cast<std::size_t>(distance)
            : 0;
    for (std::size_t i = first; i < n; ++i)
        if (history[i].bytes == bytes)
            return history[i].tensor;
    return df::kInvalidTensor;
}

} // namespace

SyntheticParams
SyntheticParams::fromSeed(std::uint64_t seed)
{
    // One fixed draw order; any change re-shapes every seeded model,
    // so treat this sequence as part of the corpus format.
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x5e97195eull);
    SyntheticParams p;
    p.seed = seed;
    p.conv_units = static_cast<int>(rng.uniformInt(0, 8));
    p.mlp_units = static_cast<int>(rng.uniformInt(0, 4));
    if (p.conv_units == 0 && p.mlp_units == 0)
        p.mlp_units = 1;
    p.image = 8 << rng.uniformInt(0, 2);
    p.channels = static_cast<int>(rng.uniformInt(4, 32));
    p.features = 64 << rng.uniformInt(0, 4);
    p.branch_prob = rng.uniformReal(0.0, 0.6);
    p.reuse_distance = static_cast<int>(rng.uniformInt(1, 4));
    p.temps_per_op = static_cast<int>(rng.uniformInt(2, 10));
    return p;
}

std::string
SyntheticParams::toName() const
{
    SyntheticParams d = fromSeed(seed);
    std::string overrides;
    auto add = [&overrides](const std::string &clause) {
        overrides += overrides.empty() ? ":" : ",";
        overrides += clause;
    };
    if (conv_units != d.conv_units)
        add(strprintf("cu=%d", conv_units));
    if (mlp_units != d.mlp_units)
        add(strprintf("mu=%d", mlp_units));
    if (image != d.image)
        add(strprintf("img=%d", image));
    if (channels != d.channels)
        add(strprintf("ch=%d", channels));
    if (features != d.features)
        add(strprintf("feat=%d", features));
    if (branch_prob != d.branch_prob)
        add(strprintf("bp=%g", branch_prob));
    if (reuse_distance != d.reuse_distance)
        add(strprintf("rd=%d", reuse_distance));
    if (temps_per_op != d.temps_per_op)
        add(strprintf("tmp=%d", temps_per_op));
    return strprintf("synthetic:%llu%s",
                     static_cast<unsigned long long>(seed),
                     overrides.c_str());
}

bool
isSyntheticName(const std::string &name)
{
    return name.rfind(kPrefix, 0) == 0;
}

std::optional<SyntheticParams>
tryParseSyntheticName(const std::string &name)
{
    if (!isSyntheticName(name))
        return std::nullopt;

    std::size_t seed_end = name.find(':', kPrefixLen);
    std::string seed_str = name.substr(
        kPrefixLen,
        seed_end == std::string::npos ? std::string::npos
                                      : seed_end - kPrefixLen);
    if (seed_str.empty() || seed_str.size() > 20)
        return std::nullopt; // 2^64-1 has 20 digits

    for (char c : seed_str)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
    std::uint64_t seed = 0;
    auto [ptr, ec] = std::from_chars(
        seed_str.data(), seed_str.data() + seed_str.size(), seed);
    if (ec != std::errc() || ptr != seed_str.data() + seed_str.size())
        return std::nullopt; // > 2^64-1: strtoull would saturate/errno


    SyntheticParams p = SyntheticParams::fromSeed(seed);
    if (seed_end != std::string::npos) {
        std::string rest = name.substr(seed_end + 1);
        if (rest.empty())
            return std::nullopt;
        std::size_t pos = 0;
        while (pos <= rest.size()) {
            std::size_t comma = rest.find(',', pos);
            std::string clause = rest.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            std::size_t eq = clause.find('=');
            if (eq == std::string::npos || eq == 0)
                return std::nullopt;
            if (!applyOverride(p, clause.substr(0, eq),
                               clause.substr(eq + 1)))
                return std::nullopt;
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    if (p.conv_units + p.mlp_units < 1)
        return std::nullopt;
    return p;
}

SyntheticParams
parseSyntheticName(const std::string &name)
{
    std::optional<SyntheticParams> p = tryParseSyntheticName(name);
    if (!p) {
        SENTINEL_FATAL("malformed synthetic model name '%s' (expected "
                       "synthetic:<seed>[:k=v,...] with keys "
                       "cu,mu,img,ch,feat,bp,rd,tmp)",
                       name.c_str());
    }
    return *p;
}

df::Graph
buildSynthetic(const SyntheticParams &p, int batch)
{
    SENTINEL_ASSERT(batch > 0, "batch must be positive");
    SENTINEL_ASSERT(p.conv_units + p.mlp_units >= 1,
                    "synthetic model needs at least one unit");

    // The builder RNG sizes the per-op scratch; the structure RNG
    // decides branching.  Both derive from the seed alone so the same
    // name always yields the same graph.
    ModelBuilder b(p.toName(), batch, p.seed ^ 0xab54a98ceb1f0ad2ull);
    b.setDefaultTemps(p.temps_per_op);
    Rng structure(p.seed * 0x100000001b3ull + 7);

    std::uint64_t bsz = static_cast<std::uint64_t>(batch);
    TensorId input = b.inputTensor(
        "input", fp32(bsz * 3 *
                      static_cast<std::uint64_t>(p.image) * p.image));

    TensorId act = input;
    std::uint64_t in_features =
        3ull * static_cast<std::uint64_t>(p.image) * p.image;

    // --- Convolutional stage (downsample + widen once, mid-stage) ----
    if (p.conv_units > 0) {
        std::vector<UnitOutput> history;
        int h = p.image;
        int cin = 3;
        int ch = p.channels;
        for (int u = 0; u < p.conv_units; ++u) {
            int stride = 1;
            int cout = ch;
            if (p.conv_units >= 2 && u == p.conv_units / 2 && h >= 8) {
                stride = 2;
                cout = ch * 2;
            }
            std::string pfx = "cu" + std::to_string(u);
            act = b.convUnit(pfx, act, cin, cout, 3, h, h, stride);
            h = b.outH(h, stride);
            cin = cout;
            ch = cout;
            std::uint64_t bytes =
                fp32(bsz * static_cast<std::uint64_t>(cout) * h * h);
            // Drawn unconditionally so the stream does not depend on
            // whether a join target happened to exist.
            bool want_join = structure.bernoulli(p.branch_prob);
            TensorId target =
                findJoinTarget(history, p.reuse_distance, bytes);
            if (want_join && target != df::kInvalidTensor)
                act = joinActivations(b, pfx, act, target, bytes);
            history.push_back({ act, bytes });
        }

        // Global average pool bridges into the mlp stage / classifier
        // (keeps fc weights bounded regardless of conv geometry).
        b.beginLayer();
        std::uint64_t feat_bytes =
            fp32(bsz * static_cast<std::uint64_t>(cin));
        TensorId pooled = b.activation("pool/out", feat_bytes);
        b.op("pool/gap", OpType::Pool,
             static_cast<double>(bsz) * cin * h * h,
             { ModelBuilder::read(
                   act, fp32(bsz * static_cast<std::uint64_t>(cin) * h *
                             h)),
               ModelBuilder::write(pooled, feat_bytes) });
        act = pooled;
        in_features = static_cast<std::uint64_t>(cin);
    }

    // --- Fully-connected stage ---------------------------------------
    {
        std::vector<UnitOutput> history;
        std::uint64_t width = static_cast<std::uint64_t>(p.features);
        for (int u = 0; u < p.mlp_units; ++u) {
            std::string pfx = "mu" + std::to_string(u);
            act = b.matmulUnit(pfx, act, bsz, in_features, width);
            in_features = width;
            std::uint64_t bytes = fp32(bsz * width);
            bool want_join = structure.bernoulli(p.branch_prob);
            TensorId target =
                findJoinTarget(history, p.reuse_distance, bytes);
            if (want_join && target != df::kInvalidTensor)
                act = joinActivations(b, pfx, act, target, bytes);
            history.push_back({ act, bytes });
        }
    }

    TensorId logits = b.matmulUnit("fc", act, bsz, in_features, 10,
                                   /*activation_fn=*/false);
    TensorId grad = b.lossLayer(logits, fp32(bsz * 10));
    b.buildBackward(grad);
    return b.finish();
}

} // namespace sentinel::models
