/**
 * @file
 * BERT encoder training graphs (base and large).
 *
 * Structure per encoder layer: multi-head self-attention (with saved
 * attention probabilities — the seq^2 activations that dominate memory
 * pressure) followed by the two feed-forward matmuls.  Preallocated
 * state includes the embedding table and per-weight momentum, making
 * the model weight-heavy as in the real system.
 */

#ifndef SENTINEL_MODELS_BERT_HH
#define SENTINEL_MODELS_BERT_HH

#include "dataflow/graph.hh"

namespace sentinel::models {

df::Graph buildBert(const std::string &name, int num_layers, int hidden,
                    int heads, int seq, int batch);

/** 12 layers x 768 hidden. */
df::Graph buildBertBase(int batch, int seq = 128);

/** 24 layers x 1024 hidden (the paper's BERT-large). */
df::Graph buildBertLarge(int batch, int seq = 128);

} // namespace sentinel::models

#endif // SENTINEL_MODELS_BERT_HH
