#include "models/resnet.hh"

#include "common/logging.hh"
#include "models/common.hh"

namespace sentinel::models {

using df::OpType;
using df::TensorId;

namespace {

/** Residual add + relu appended to the current layer. */
TensorId
residualJoin(ModelBuilder &b, const std::string &prefix, TensorId main,
             TensorId shortcut, std::uint64_t bytes, bool shapes_match)
{
    TensorId out = b.activation(prefix + "/res_out", bytes);
    std::vector<df::TensorUse> uses{ ModelBuilder::read(main, bytes),
                                     ModelBuilder::write(out, bytes) };
    if (shapes_match) {
        // Reading the shortcut extends the lifetime of the block input
        // beyond its own layer — exactly how non-linear topologies
        // create long-lived intermediates.
        uses.insert(uses.begin() + 1, ModelBuilder::read(shortcut, bytes));
    }
    b.op(prefix + "/add_relu", OpType::EltwiseAdd,
         static_cast<double>(bytes) / 2.0, std::move(uses));
    return out;
}

} // namespace

df::Graph
buildCifarResNet(int depth, int batch, int image, int base_channels)
{
    SENTINEL_ASSERT((depth - 2) % 6 == 0, "CIFAR ResNet depth must be 6n+2");
    int n = (depth - 2) / 6;

    ModelBuilder b("resnet" + std::to_string(depth), batch,
                   /*seed=*/1000 + static_cast<std::uint64_t>(depth));
    std::uint64_t bsz = static_cast<std::uint64_t>(batch);

    TensorId input =
        b.inputTensor("input", fp32(bsz * 3 * image * image));
    TensorId act = b.convUnit("stem", input, 3, base_channels, 3, image,
                              image, 1);

    int h = image;
    int cin = base_channels;
    for (int stage = 0; stage < 3; ++stage) {
        int cout = base_channels << stage;
        for (int block = 0; block < n; ++block) {
            int stride = (stage > 0 && block == 0) ? 2 : 1;
            std::string pfx = "s" + std::to_string(stage) + "b" +
                              std::to_string(block);
            TensorId shortcut = act;
            TensorId a1 =
                b.convUnit(pfx + "/c1", act, cin, cout, 3, h, h, stride);
            int oh = b.outH(h, stride);
            TensorId a2 = b.convUnit(pfx + "/c2", a1, cout, cout, 3, oh,
                                     oh, 1, /*bn=*/true, /*relu=*/false);
            bool match = (stride == 1 && cin == cout);
            act = residualJoin(b, pfx, a2, shortcut,
                               fp32(bsz * cout * oh * oh), match);
            h = oh;
            cin = cout;
        }
    }

    // Global average pool + classifier.
    b.beginLayer();
    std::uint64_t feat_bytes = fp32(bsz * static_cast<std::uint64_t>(cin));
    TensorId pooled = b.activation("pool/out", feat_bytes);
    b.op("pool/gap", OpType::Pool,
         static_cast<double>(bsz) * cin * h * h,
         { ModelBuilder::read(act, fp32(bsz * cin * h * h)),
           ModelBuilder::write(pooled, feat_bytes) });
    TensorId logits = b.matmulUnit("fc", pooled, bsz, cin, 10,
                                   /*activation_fn=*/false);
    TensorId grad = b.lossLayer(logits, fp32(bsz * 10));
    b.buildBackward(grad);
    return b.finish();
}

df::Graph
buildBottleneckResNet(int depth, int batch, int image)
{
    // Block counts per stage for the two deep variants we need.
    int n1, n2, n3, n4;
    if (depth == 152) {
        n1 = 3; n2 = 8; n3 = 36; n4 = 3;
    } else if (depth == 200) {
        n1 = 3; n2 = 24; n3 = 36; n4 = 3;
    } else {
        SENTINEL_FATAL("unsupported bottleneck ResNet depth %d", depth);
        return df::Graph("", 0); // unreachable
    }

    ModelBuilder b("resnet" + std::to_string(depth), batch,
                   2000 + static_cast<std::uint64_t>(depth));
    std::uint64_t bsz = static_cast<std::uint64_t>(batch);

    TensorId input =
        b.inputTensor("input", fp32(bsz * 3 * image * image));
    // Stem: 7x7/2 conv + pool.
    TensorId act = b.convUnit("stem", input, 3, 64, 7, image, image, 2);
    int h = b.outH(image, 2);

    int stage_blocks[] = { n1, n2, n3, n4 };
    int cin = 64;
    for (int stage = 0; stage < 4; ++stage) {
        int width = 64 << stage;     // bottleneck width
        int cout = width * 4;        // expansion 4
        for (int block = 0; block < stage_blocks[stage]; ++block) {
            int stride = (stage > 0 && block == 0) ? 2 : 1;
            std::string pfx = "s" + std::to_string(stage) + "b" +
                              std::to_string(block);
            TensorId shortcut = act;
            TensorId a1 =
                b.convUnit(pfx + "/c1", act, cin, width, 1, h, h, 1);
            TensorId a2 = b.convUnit(pfx + "/c2", a1, width, width, 3, h,
                                     h, stride);
            int oh = b.outH(h, stride);
            TensorId a3 = b.convUnit(pfx + "/c3", a2, width, cout, 1, oh,
                                     oh, 1, /*bn=*/true, /*relu=*/false);
            bool match = (stride == 1 && cin == cout);
            act = residualJoin(b, pfx, a3, shortcut,
                               fp32(bsz * cout * oh * oh), match);
            h = oh;
            cin = cout;
        }
    }

    b.beginLayer();
    std::uint64_t feat_bytes = fp32(bsz * static_cast<std::uint64_t>(cin));
    TensorId pooled = b.activation("pool/out", feat_bytes);
    b.op("pool/gap", OpType::Pool,
         static_cast<double>(bsz) * cin * h * h,
         { ModelBuilder::read(act, fp32(bsz * cin * h * h)),
           ModelBuilder::write(pooled, feat_bytes) });
    TensorId logits = b.matmulUnit("fc", pooled, bsz, cin, 1000,
                                   /*activation_fn=*/false);
    TensorId grad = b.lossLayer(logits, fp32(bsz * 1000));
    b.buildBackward(grad);
    return b.finish();
}

} // namespace sentinel::models
