/**
 * @file
 * Parametric ResNet builders.
 *
 * Two families, as in the paper's evaluation:
 *  - CIFAR-style ResNet-(6n+2) with basic blocks (ResNet-20/32/44/56/
 *    110), 32x32 inputs — the paper's main characterization subject;
 *  - ImageNet-style bottleneck ResNet-152/200.  The paper trains these
 *    on the real ImageNet input size; we substitute a reduced input
 *    resolution to keep the simulated page count tractable (documented
 *    in DESIGN.md) — the layer structure and relative tensor shapes
 *    are preserved.
 */

#ifndef SENTINEL_MODELS_RESNET_HH
#define SENTINEL_MODELS_RESNET_HH

#include "dataflow/graph.hh"

namespace sentinel::models {

/** CIFAR-style basic-block ResNet; depth must be 6n+2. */
df::Graph buildCifarResNet(int depth, int batch, int image = 32,
                           int base_channels = 16);

/** ImageNet-style bottleneck ResNet (152 or 200). */
df::Graph buildBottleneckResNet(int depth, int batch, int image = 56);

} // namespace sentinel::models

#endif // SENTINEL_MODELS_RESNET_HH
