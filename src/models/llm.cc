#include "models/llm.hh"

#include <cctype>
#include <charconv>

#include "common/logging.hh"
#include "models/common.hh"

namespace sentinel::models {

using df::OpType;
using df::TensorId;

namespace {

constexpr char kPrefix[] = "llm:";
constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;

// Bounds on every parameter: a hostile name cannot demand an absurd
// graph, and the fuzzer's shrinker stays inside them.
constexpr int kMaxLayers = 96;
constexpr int kMaxHidden = 16384;
constexpr int kMaxHeads = 128;
constexpr int kMaxSeq = 8192;
constexpr int kMaxVocab = 262144;

bool
parseInt(const std::string &s, int lo, int hi, int *out)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    int v = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || ptr != s.data() + s.size())
        return false;
    if (v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

/** Apply one "k=v" override; false on unknown key or bad value. */
bool
applyOverride(LlmParams &p, const std::string &key,
              const std::string &value)
{
    if (key == "l")
        return parseInt(value, 1, kMaxLayers, &p.layers);
    if (key == "hd")
        return parseInt(value, 8, kMaxHidden, &p.hidden);
    if (key == "heads")
        return parseInt(value, 1, kMaxHeads, &p.heads);
    if (key == "seq")
        return parseInt(value, 8, kMaxSeq, &p.seq);
    if (key == "vocab")
        return parseInt(value, 64, kMaxVocab, &p.vocab);
    return false;
}

} // namespace

std::optional<LlmParams>
LlmParams::fromPreset(const std::string &preset)
{
    LlmParams p;
    p.preset = preset;
    if (preset == "tiny") {
        p.layers = 4;
        p.hidden = 256;
        p.heads = 4;
        p.seq = 128;
        p.vocab = 8192;
    } else if (preset == "small") {
        p.layers = 8;
        p.hidden = 512;
        p.heads = 8;
        p.seq = 256;
        p.vocab = 16384;
    } else if (preset == "medium") {
        p.layers = 16;
        p.hidden = 1024;
        p.heads = 16;
        p.seq = 512;
        p.vocab = 32000;
    } else if (preset == "large") {
        p.layers = 24;
        p.hidden = 2048;
        p.heads = 16;
        p.seq = 1024;
        p.vocab = 32000;
    } else {
        return std::nullopt;
    }
    return p;
}

std::string
LlmParams::toName() const
{
    std::optional<LlmParams> d = fromPreset(preset);
    SENTINEL_ASSERT(d.has_value(), "unknown llm preset '%s'",
                    preset.c_str());
    std::string overrides;
    auto add = [&overrides](const std::string &clause) {
        overrides += overrides.empty() ? ":" : ",";
        overrides += clause;
    };
    if (layers != d->layers)
        add(strprintf("l=%d", layers));
    if (hidden != d->hidden)
        add(strprintf("hd=%d", hidden));
    if (heads != d->heads)
        add(strprintf("heads=%d", heads));
    if (seq != d->seq)
        add(strprintf("seq=%d", seq));
    if (vocab != d->vocab)
        add(strprintf("vocab=%d", vocab));
    return strprintf("llm:%s%s", preset.c_str(), overrides.c_str());
}

bool
isLlmName(const std::string &name)
{
    return name.rfind(kPrefix, 0) == 0;
}

std::optional<LlmParams>
tryParseLlmName(const std::string &name)
{
    if (!isLlmName(name))
        return std::nullopt;

    std::size_t preset_end = name.find(':', kPrefixLen);
    std::string preset = name.substr(
        kPrefixLen,
        preset_end == std::string::npos ? std::string::npos
                                        : preset_end - kPrefixLen);
    std::optional<LlmParams> p = LlmParams::fromPreset(preset);
    if (!p)
        return std::nullopt;

    if (preset_end != std::string::npos) {
        std::string rest = name.substr(preset_end + 1);
        if (rest.empty())
            return std::nullopt;
        std::size_t pos = 0;
        while (pos <= rest.size()) {
            std::size_t comma = rest.find(',', pos);
            std::string clause = rest.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            std::size_t eq = clause.find('=');
            if (eq == std::string::npos || eq == 0)
                return std::nullopt;
            if (!applyOverride(*p, clause.substr(0, eq),
                               clause.substr(eq + 1)))
                return std::nullopt;
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    if (p->hidden % p->heads != 0)
        return std::nullopt;
    return p;
}

LlmParams
parseLlmName(const std::string &name)
{
    std::optional<LlmParams> p = tryParseLlmName(name);
    if (!p) {
        SENTINEL_FATAL("malformed llm model name '%s' (expected "
                       "llm:<preset>[:k=v,...] with preset "
                       "tiny|small|medium|large and keys "
                       "l,hd,heads,seq,vocab; heads must divide hd)",
                       name.c_str());
    }
    return *p;
}

df::Graph
buildLlm(const LlmParams &p, int batch)
{
    SENTINEL_ASSERT(batch > 0, "batch must be positive");
    SENTINEL_ASSERT(p.hidden % p.heads == 0,
                    "heads must divide hidden");

    ModelBuilder b(p.toName(), batch,
                   5000 + static_cast<std::uint64_t>(p.hidden));
    std::uint64_t bs = static_cast<std::uint64_t>(batch);
    std::uint64_t sq = static_cast<std::uint64_t>(p.seq);
    std::uint64_t hd = static_cast<std::uint64_t>(p.hidden);
    std::uint64_t vc = static_cast<std::uint64_t>(p.vocab);
    std::uint64_t rows = bs * sq;
    std::uint64_t act_bytes = fp32(rows * hd);

    TensorId ids = b.inputTensor("input_ids", 4 * rows);
    TensorId table = b.weight("embedding/table", fp32(vc * hd));

    // Embedding lookup: sparse gather over the big table — low
    // episodes-per-page, touching only the rows of this batch.
    b.beginLayer();
    TensorId emb = b.activation("embedding/out", act_bytes);
    b.op("embedding/gather", OpType::Embedding,
         static_cast<double>(rows) * hd,
         { ModelBuilder::read(ids, 4 * rows),
           df::TensorUse{ table, false, act_bytes, 0.25 },
           ModelBuilder::write(emb, act_bytes) });

    // Decoder stack: pre-norm attention + 4x FFN per block.  Every
    // block's saved activations survive to the backward pass, which is
    // what pushes the working set to LLM scale.
    TensorId act = emb;
    for (int l = 0; l < p.layers; ++l) {
        std::string pfx = "dec" + std::to_string(l);
        act = b.attentionUnit(pfx + "/attn", act, sq, hd,
                              static_cast<std::uint64_t>(p.heads));
        act = b.matmulUnit(pfx + "/ffn1", act, rows, hd, 4 * hd, true);
        act = b.matmulUnit(pfx + "/ffn2", act, rows, 4 * hd, hd, false);
    }

    // LM head over the full vocabulary: the logits tensor alone is
    // batch x seq x vocab — typically the largest activation in the
    // step, exactly as in real LLM training.
    TensorId logits = b.matmulUnit("lm_head", act, rows, hd, vc, false);
    TensorId grad = b.lossLayer(logits, fp32(rows * vc));
    b.buildBackward(grad);
    return b.finish();
}

} // namespace sentinel::models
