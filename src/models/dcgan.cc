#include "models/dcgan.hh"

#include "common/logging.hh"
#include "models/common.hh"

namespace sentinel::models {

using df::OpType;
using df::TensorId;

df::Graph
buildDcgan(int batch, int image)
{
    SENTINEL_ASSERT(image % 16 == 0, "DCGAN image size must be 16-aligned");
    ModelBuilder b("dcgan", batch, 6000 + static_cast<std::uint64_t>(image));
    std::uint64_t bs = static_cast<std::uint64_t>(batch);

    constexpr std::uint64_t kLatent = 128;
    TensorId z = b.inputTensor("z", fp32(bs * kLatent));

    // ---- Generator: project latent then 4 upsampling conv stages ----
    int h0 = image / 16;
    std::uint64_t proj_features =
        512ull * static_cast<std::uint64_t>(h0) * h0;
    TensorId act = b.matmulUnit("g/project", z, bs, kLatent,
                                proj_features, true);

    int h = h0;
    int cin = 512;
    for (int stage = 0; stage < 4; ++stage) {
        int cout = stage == 3 ? 3 : cin / 2;
        std::string pfx = "g/up" + std::to_string(stage);
        // Transposed conv doubles the spatial size: emit the conv on
        // the upsampled map (memory behaviour matches deconv).
        h *= 2;
        act = b.convUnit(pfx, act, cin, cout, 5, h, h, 1,
                         /*bn=*/stage != 3, /*relu=*/stage != 3);
        cin = cout;
    }
    TensorId fake = act; // generated image, b x 3 x image x image

    // ---- Discriminator: 4 downsampling conv stages + classifier ----
    int dc = 64;
    act = b.convUnit("d/c0", fake, 3, dc, 5, image, image, 2,
                     /*bn=*/false);
    h = b.outH(image, 2);
    for (int stage = 1; stage < 4; ++stage) {
        std::string pfx = "d/c" + std::to_string(stage);
        act = b.convUnit(pfx, act, dc, dc * 2, 5, h, h, 2);
        h = b.outH(h, 2);
        dc *= 2;
    }

    std::uint64_t feat =
        static_cast<std::uint64_t>(dc) * static_cast<std::uint64_t>(h) * h;
    TensorId logits = b.matmulUnit("d/fc", act, bs, feat, 1, false);
    TensorId grad = b.lossLayer(logits, fp32(bs));
    b.buildBackward(grad);
    return b.finish();
}

} // namespace sentinel::models
