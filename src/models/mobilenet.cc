#include "models/mobilenet.hh"

#include "models/common.hh"

namespace sentinel::models {

using df::TensorId;

df::Graph
buildMobileNet(int batch, int image)
{
    ModelBuilder b("mobilenet", batch,
                   5000 + static_cast<std::uint64_t>(image));
    std::uint64_t bs = static_cast<std::uint64_t>(batch);

    TensorId input =
        b.inputTensor("input", fp32(bs * 3 * image * image));
    TensorId act = b.convUnit("stem", input, 3, 32, 3, image, image, 2);
    int h = b.outH(image, 2);

    // (cout, stride) per depthwise-separable block, MobileNet-v1.
    struct Block { int cout; int stride; };
    const Block blocks[] = {
        { 64, 1 },  { 128, 2 }, { 128, 1 }, { 256, 2 }, { 256, 1 },
        { 512, 2 }, { 512, 1 }, { 512, 1 }, { 512, 1 }, { 512, 1 },
        { 512, 1 }, { 1024, 2 }, { 1024, 1 },
    };

    int cin = 32;
    int idx = 0;
    for (const Block &blk : blocks) {
        std::string pfx = "dw" + std::to_string(idx++);
        // Depthwise 3x3: one filter per channel — FLOPs scaled by
        // 1/cin, making this stage strongly memory-bound.
        act = b.convUnit(pfx + "/dw", act, cin, cin, 3, h, h, blk.stride,
                         true, true, 1.0 / cin, /*lower=*/false);
        h = b.outH(h, blk.stride);
        // Pointwise 1x1 expansion.
        act = b.convUnit(pfx + "/pw", act, cin, blk.cout, 1, h, h, 1);
        cin = blk.cout;
    }

    b.beginLayer();
    std::uint64_t feat_bytes = fp32(bs * static_cast<std::uint64_t>(cin));
    TensorId pooled = b.activation("pool/out", feat_bytes);
    b.op("pool/gap", df::OpType::Pool,
         static_cast<double>(bs) * cin * h * h,
         { ModelBuilder::read(act, fp32(bs * cin * h * h)),
           ModelBuilder::write(pooled, feat_bytes) });
    TensorId logits = b.matmulUnit("fc", pooled, bs, cin, 1000, false);
    TensorId grad = b.lossLayer(logits, fp32(bs * 1000));
    b.buildBackward(grad);
    return b.finish();
}

} // namespace sentinel::models
