/**
 * @file
 * The model-builder toolkit.
 *
 * Model builders emit training-step graphs whose *memory behaviour*
 * matches the paper's characterization (Sec. III):
 *
 *  - every operation spawns a handful of small short-lived temporaries
 *    (padding/transpose/shape scratch) -> Observation 1's "large
 *    number of small, short-lived tensors";
 *  - small parameters (batch-norm scale/bias, biases) and a few
 *    runtime bookkeeping scalars are touched by many operations ->
 *    Observation 2's tiny set of hot (>100 access) tensors;
 *  - large activations stream once per use -> the cold majority;
 *  - weights sit in between (reused within fwd/bwd/update).
 *
 * The builder also records "units" (conv block, matmul block, ...) so
 * that a generic mirrored backward pass — grads, weight grads,
 * optimizer updates — can be emitted for any model.
 */

#ifndef SENTINEL_MODELS_COMMON_HH
#define SENTINEL_MODELS_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dataflow/graph.hh"

namespace sentinel::models {

/** Bytes of @p elems FP32 elements. */
constexpr std::uint64_t
fp32(std::uint64_t elems)
{
    return elems * 4;
}

class ModelBuilder
{
  public:
    ModelBuilder(std::string name, int batch, std::uint64_t seed = 1);

    int batch() const { return batch_; }

    /** Finalize and return the graph. */
    df::Graph finish();

    // --- Layers ------------------------------------------------------------

    /** Open the next layer; subsequent ops belong to it. */
    int beginLayer();
    int currentLayer() const { return layer_; }

    // --- Tensor creation ----------------------------------------------------

    df::TensorId weight(const std::string &name, std::uint64_t bytes);
    /** Small parameter (BN scale/bias, biases): preallocated + hot. */
    df::TensorId smallParam(const std::string &name, std::uint64_t bytes);
    df::TensorId optimizerState(const std::string &name,
                                std::uint64_t bytes);
    df::TensorId inputTensor(const std::string &name, std::uint64_t bytes);
    df::TensorId activation(const std::string &name, std::uint64_t bytes);
    df::TensorId gradient(const std::string &name, std::uint64_t bytes);
    df::TensorId temp(const std::string &name, std::uint64_t bytes);

    // --- Use helpers ----------------------------------------------------------

    /** Streamed read: traffic = bytes, ~1 episode per page. */
    static df::TensorUse read(df::TensorId t, std::uint64_t bytes,
                              double episodes = 1.0);
    static df::TensorUse write(df::TensorId t, std::uint64_t bytes,
                               double episodes = 1.0);
    /** Weight-style read: partially cache-resident, revisited. */
    static df::TensorUse readWeight(df::TensorId t, std::uint64_t bytes);
    /** Hot small-parameter read: revisited across the whole op. */
    static df::TensorUse readParam(df::TensorId t, std::uint64_t bytes);

    // --- Operation emission ---------------------------------------------------

    /**
     * Add an op in the current layer.  Automatically attaches
     * @p n_small_temps short-lived sub-page scratch tensors and one
     * bookkeeping-scalar read (the hot set of Observation 2).
     * Negative @p n_small_temps means "use the builder default" (8
     * unless setDefaultTemps() changed it).
     */
    df::OpId op(const std::string &name, df::OpType type, double flops,
                std::vector<df::TensorUse> uses, int n_small_temps = -1);

    /** Scratch count ops attach when they don't pass one explicitly —
     *  the synthetic generator's short-/long-lived mix knob. */
    void setDefaultTemps(int n) { default_temps_ = n; }

    // --- Composite units (each records itself for the backward pass) -----

    /**
     * conv -> [batch-norm] -> [relu].  One layer.  @return the output
     * activation (saved for backward).  The conv raw output and the BN
     * output are short-lived, exactly as in Fig. 2 of the paper.
     */
    df::TensorId convUnit(const std::string &prefix, df::TensorId in_act,
                          int cin, int cout, int k, int h, int w,
                          int stride, bool bn = true, bool relu = true,
                          double flops_scale = 1.0, bool lower = true);

    /** matmul -> bias [-> activation].  One layer. */
    df::TensorId matmulUnit(const std::string &prefix, df::TensorId in_act,
                            std::uint64_t rows, std::uint64_t in_features,
                            std::uint64_t out_features,
                            bool activation_fn = true);

    /** Multi-head self-attention + output projection.  One layer. */
    df::TensorId attentionUnit(const std::string &prefix,
                               df::TensorId in_act, std::uint64_t seq,
                               std::uint64_t hidden, std::uint64_t heads);

    /**
     * One LSTM timestep for one stacked cell.  Weights are shared
     * across timesteps (passed in).  One layer.
     * @return the new hidden state.
     */
    df::TensorId lstmUnit(const std::string &prefix, df::TensorId x,
                          df::TensorId h_prev, df::TensorId w_ih,
                          df::TensorId w_hh, std::uint64_t hidden);

    /** Softmax + loss; returns the gradient seeding the backward pass. */
    df::TensorId lossLayer(df::TensorId logits, std::uint64_t logits_bytes);

    /**
     * Emit mirrored backward layers (reverse unit order): gradient
     * ops, short-lived weight gradients, and SGD updates.
     */
    void buildBackward(df::TensorId loss_grad);

    /** Dimensions of the most recent convUnit output (h, w). */
    int outH(int h, int stride) const { return (h + stride - 1) / stride; }

  private:
    struct UnitRecord {
        std::string prefix;
        df::OpType bwd_type = df::OpType::ConvBackward;
        df::TensorId in_act = df::kInvalidTensor;
        std::uint64_t in_bytes = 0;
        df::TensorId out_act = df::kInvalidTensor;
        std::uint64_t out_bytes = 0;
        std::vector<df::TensorId> weights;
        std::vector<std::uint64_t> weight_bytes;
        std::vector<df::TensorId> opt_states; ///< parallel to weights
        /** Extra saved activations the backward op re-reads. */
        std::vector<std::pair<df::TensorId, std::uint64_t>> saved;
        double flops = 0.0;
    };

    void recordUnit(UnitRecord u) { units_.push_back(std::move(u)); }

    df::Graph graph_;
    int batch_;
    int layer_ = -1;
    Rng rng_;
    std::vector<df::TensorId> hot_scalars_;
    std::size_t next_scalar_ = 0;
    std::uint64_t temp_counter_ = 0;
    int default_temps_ = 8;
    std::vector<UnitRecord> units_;
};

} // namespace sentinel::models

#endif // SENTINEL_MODELS_COMMON_HH
