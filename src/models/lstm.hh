/**
 * @file
 * Unrolled stacked-LSTM training graph.
 *
 * Each timestep of each stacked cell is one layer; the recurrent
 * weights are shared across every timestep, making them the hottest
 * large tensors in the model (accessed in all layers) — a distinctive
 * migration workload compared with the feed-forward CNNs.  vDNN
 * cannot handle this recursive structure (Sec. VII-C).
 */

#ifndef SENTINEL_MODELS_LSTM_HH
#define SENTINEL_MODELS_LSTM_HH

#include "dataflow/graph.hh"

namespace sentinel::models {

df::Graph buildLstm(int batch, int hidden = 512, int seq = 48,
                    int stacked = 2);

} // namespace sentinel::models

#endif // SENTINEL_MODELS_LSTM_HH
