#include "baselines/swap_schedule.hh"

#include <vector>

#include "common/logging.hh"

namespace sentinel::baselines {

ScheduledSwapPolicy::ScheduledSwapPolicy(std::string name, bool sync_moves)
    : name_(std::move(name)), sync_moves_(sync_moves), arena_(0)
{
}

void
ScheduledSwapPolicy::onTrainingStart(df::Executor &ex)
{
    placement_.assign(ex.graph().numTensors(), Placement::Slow);
    swap_in_at_.assign(static_cast<std::size_t>(ex.graph().numLayers()),
                       {});
    swap_out_at_.assign(static_cast<std::size_t>(ex.graph().numLayers()),
                        {});
    buildSchedule(ex);
    // Pinned preallocated tensors can lose the initial placement race
    // (everything is mapped before training; fast memory may be full).
    // Re-assert their residency at their first use layer — a no-op
    // once they are resident, a one-time promotion otherwise.
    for (df::TensorId id = 0; id < ex.graph().numTensors(); ++id) {
        const df::TensorDesc &t = ex.graph().tensor(id);
        if (placement_[id] == Placement::PinFast && t.preallocated &&
            t.first_layer >= 0) {
            swap_in_at_[static_cast<std::size_t>(t.first_layer)]
                .push_back(id);
        }
    }
    scheduled_ = true;
    Tick overhead = decisionOverhead();
    if (overhead > 0)
        ex.chargePolicy(overhead);
}

Placement
ScheduledSwapPolicy::placementOf(df::TensorId id) const
{
    SENTINEL_ASSERT(id < placement_.size(), "bad tensor id %u", id);
    return placement_[id];
}

df::AllocDecision
ScheduledSwapPolicy::allocate(df::Executor &ex,
                              const df::TensorDesc &tensor)
{
    SENTINEL_ASSERT(scheduled_, "allocate() before buildSchedule()");
    // "Slow" for a swap policy means host memory: the chain's far end.
    mem::Tier tier = ex.hm().slowestTier();
    switch (placement_[tensor.id]) {
      case Placement::Slow:
        break;
      case Placement::PinFast:
        tier = mem::Tier::Fast;
        break;
      case Placement::Swap:
        // Born fast (the producer writes it); the schedule moves it
        // out after its first use episode.
        tier = mem::Tier::Fast;
        break;
    }
    if (tier == mem::Tier::Fast) {
        // GPU allocators block until outstanding evictions free enough
        // device memory; the wait is exposed on the critical path.
        mem::HeterogeneousMemory &hm = ex.hm();
        std::uint64_t need = mem::roundUpToPages(tensor.bytes);
        if (hm.tier(mem::Tier::Fast).free() < need &&
            hm.demoteBusyUntil() > ex.now()) {
            ex.stallUntil(hm.demoteBusyUntil());
        }
    }
    return { arena_.allocate(tensor.bytes, 64), tier };
}

void
ScheduledSwapPolicy::onTensorFreed(df::Executor &, df::TensorId,
                                   const df::TensorPlacement &pl)
{
    arena_.free(pl.addr, pl.bytes);
}

bool
ScheduledSwapPolicy::migrateTensor(df::Executor &ex, df::TensorId id,
                                   mem::Tier dst, bool stall)
{
    if (!ex.isAllocated(id))
        return true;
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    const df::TensorPlacement &pl = ex.placementOf(id);

    std::vector<mem::PageId> batch;
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
        if (hm.residentTier(p, now) == dst || hm.inFlight(p, now))
            continue;
        batch.push_back(p);
    }
    if (batch.empty())
        return true;
    bool complete = hm.migratePages(batch, dst, now) == batch.size();

    if (stall) {
        // Synchronous movement: wait for the whole batch (AutoTM's
        // defining cost — every move sits on the critical path).
        Tick last = 0;
        for (mem::PageId p : batch)
            if (hm.inFlight(p, ex.now()))
                last = std::max(last, hm.arrivalTime(p));
        if (last > 0)
            ex.stallUntil(last);
        if (!complete)
            return migrateTensor(ex, id, dst, /*stall=*/false);
    }
    return complete;
}

void
ScheduledSwapPolicy::onLayerBegin(df::Executor &ex, int layer)
{
    // Retry swap-ins that were blocked on device space; in-flight
    // evictions have been landing in the meantime.
    std::vector<df::TensorId> still_pending;
    for (df::TensorId id : pending_in_)
        if (!migrateTensor(ex, id, mem::Tier::Fast, false))
            still_pending.push_back(id);
    pending_in_ = std::move(still_pending);

    for (df::TensorId id :
         swap_in_at_[static_cast<std::size_t>(layer)]) {
        if (migrateTensor(ex, id, mem::Tier::Fast, sync_moves_))
            continue;
        // Device memory is full.  A required swap-in blocks on the
        // outstanding evictions (swap runtimes synchronize their copy
        // streams exactly here), then retries; only if space is still
        // short does it go to the retry list.
        if (ex.hm().demoteBusyUntil() > ex.now()) {
            ex.stallUntil(ex.hm().demoteBusyUntil());
            if (migrateTensor(ex, id, mem::Tier::Fast, sync_moves_))
                continue;
        }
        pending_in_.push_back(id);
    }
}

void
ScheduledSwapPolicy::onLayerEnd(df::Executor &ex, int layer)
{
    // Swap-outs are asynchronous even for AutoTM (they are not on the
    // use path; only fetches block).
    for (df::TensorId id : swap_out_at_[static_cast<std::size_t>(layer)])
        migrateTensor(ex, id, ex.hm().slowestTier(), false);
}

} // namespace sentinel::baselines
