/**
 * @file
 * Optane Memory Mode: DRAM as a hardware-managed cache (Sec. VII-B).
 *
 * Software sees one big (slow) memory; the memory controller manages
 * the DRAM tier as a set-associative page cache.  No placement policy
 * is possible — the baseline the paper beats by 1.2x on large-batch
 * training (Fig. 8) because the cache has neither tensor lifetimes nor
 * false-sharing avoidance.
 */

#ifndef SENTINEL_BASELINES_MEMORY_MODE_HH
#define SENTINEL_BASELINES_MEMORY_MODE_HH

#include "alloc/arena.hh"
#include "dataflow/executor.hh"
#include "dataflow/policy.hh"
#include "mem/dram_cache.hh"

namespace sentinel::baselines {

class MemoryModePolicy : public df::MemoryPolicy
{
  public:
    /** @param dram_bytes capacity of the hardware cache (= fast tier). */
    explicit MemoryModePolicy(std::uint64_t dram_bytes,
                              unsigned associativity = 4)
        : arena_(0), cache_(dram_bytes, associativity)
    {
    }

    std::string name() const override { return "memory-mode"; }

    df::AllocDecision
    allocate(df::Executor &ex, const df::TensorDesc &tensor) override
    {
        // Software only ever sees the backing store (the chain's far
        // end); the DRAM cache is invisible.
        return { arena_.allocate(tensor.bytes, 64),
                 ex.hm().slowestTier() };
    }

    void
    onTensorFreed(df::Executor &, df::TensorId,
                  const df::TensorPlacement &pl) override
    {
        arena_.free(pl.addr, pl.bytes);
    }

    df::PageAccessResult onPageAccess(df::Executor &ex, mem::PageId page,
                                      bool is_write) override;
    void onRangeAccess(df::Executor &ex, mem::PageRun run, bool is_write,
                       std::vector<df::AccessSegment> &out) override;

    const mem::DramCache &cache() const { return cache_; }

  private:
    alloc::VirtualArena arena_;
    mem::DramCache cache_;
};

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_MEMORY_MODE_HH
