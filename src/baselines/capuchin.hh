/**
 * @file
 * Capuchin — dynamic-profile swapping with recomputation fallback.
 *
 * Capuchin [9] profiles the first iterations at tensor granularity and
 * then, per tensor, chooses between *swapping* (evict after the
 * forward use, prefetch before the backward use — overlapped) and
 * *recomputation* (discard after the forward use, replay the producing
 * operation at backward time) based on which costs less; swaps that
 * cannot be hidden under the fwd->bwd gap become recomputations.
 *
 * Against Sentinel-GPU the paper finds: recomputation burns ~11% of
 * the step, and the tensor-level decisions still ride on a packed
 * allocator, so page-level false sharing persists — worth 11-21%.
 */

#ifndef SENTINEL_BASELINES_CAPUCHIN_HH
#define SENTINEL_BASELINES_CAPUCHIN_HH

#include <unordered_set>

#include "baselines/swap_schedule.hh"
#include "profile/profile_db.hh"

namespace sentinel::baselines {

class CapuchinPolicy : public ScheduledSwapPolicy
{
  public:
    CapuchinPolicy(const prof::ProfileDatabase &db,
                   bool gpu_strict = false)
        : ScheduledSwapPolicy(gpu_strict ? "capuchin-gpu" : "capuchin",
                              /*sync_moves=*/false),
          db_(db), gpu_strict_(gpu_strict)
    {
    }

    void onLayerBegin(df::Executor &ex, int layer) override;
    void onLayerEnd(df::Executor &ex, int layer) override;

    /** Number of tensors resolved to recomputation. */
    std::size_t recomputeCount() const { return recompute_count_; }

  protected:
    void buildSchedule(df::Executor &ex) override;

  private:
    struct RecomputeEntry {
        df::TensorId id;
        Tick cost; ///< replaying the producing op
    };

    const prof::ProfileDatabase &db_;
    bool gpu_strict_;
    std::size_t recompute_count_ = 0;

    void teleportTensor(df::Executor &ex, df::TensorId id,
                        mem::Tier dst);

    /** recompute_at_[l]: tensors rematerialized at layer l's start. */
    std::vector<std::vector<RecomputeEntry>> recompute_at_;

    /** discard_at_[l]: tensors dropped (no transfer) after layer l. */
    std::vector<std::vector<df::TensorId>> discard_at_;
};

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_CAPUCHIN_HH
