/**
 * @file
 * Reference policies: fast-only, slow-only, first-touch NUMA.
 *
 * All three use the same TensorFlow-like packed layout (64-byte
 * alignment, recycled address space, hence page sharing between
 * unrelated tensors) and never migrate.  They differ only in the
 * preferred tier and in how the surrounding experiment sizes the fast
 * tier:
 *
 *  - fast-only  : prefer fast, fast tier sized to hold everything
 *                 (the paper's DRAM-only / GPU-only upper bound);
 *  - slow-only  : prefer slow (the paper's PMM-only lower bound);
 *  - first-touch: prefer fast with fallback to slow once fast fills —
 *                 exactly Linux's default NUMA placement on the
 *                 DRAM+PMM two-node system (Sec. VII-B).
 */

#ifndef SENTINEL_BASELINES_REFERENCE_HH
#define SENTINEL_BASELINES_REFERENCE_HH

#include <memory>
#include <string>

#include "alloc/arena.hh"
#include "dataflow/executor.hh"
#include "dataflow/policy.hh"

namespace sentinel::baselines {

class PackedReferencePolicy : public df::MemoryPolicy
{
  public:
    /** @param prefer_slowest resolve the preference to the chain's
     *         slowest tier at allocation time (slow-only semantics on
     *         chains longer than two tiers). */
    PackedReferencePolicy(std::string name, mem::Tier preferred,
                          bool prefer_slowest = false)
        : name_(std::move(name)), preferred_(preferred),
          prefer_slowest_(prefer_slowest), arena_(0)
    {
    }

    std::string name() const override { return name_; }

    df::AllocDecision
    allocate(df::Executor &ex, const df::TensorDesc &tensor) override
    {
        mem::Tier t =
            prefer_slowest_ ? ex.hm().slowestTier() : preferred_;
        return { arena_.allocate(tensor.bytes, 64), t };
    }

    void
    onTensorFreed(df::Executor &, df::TensorId,
                  const df::TensorPlacement &pl) override
    {
        arena_.free(pl.addr, pl.bytes);
    }

    void
    onRangeAccess(df::Executor &, mem::PageRun run, bool,
                  std::vector<df::AccessSegment> &out) override
    {
        // Never migrates and never reacts: the whole run is one
        // segment; the executor resolves residency per tier run.
        df::AccessSegment seg;
        seg.pages = run.count;
        out.push_back(seg);
    }

    /** Address-space footprint, for the profiling-overhead analysis. */
    std::uint64_t footprint() const { return arena_.highWater(); }

  private:
    std::string name_;
    mem::Tier preferred_;
    bool prefer_slowest_;
    alloc::VirtualArena arena_;
};

/** DRAM-only / GPU-memory-only upper bound. */
std::unique_ptr<df::MemoryPolicy> makeFastOnly();
/** PMM-only lower bound. */
std::unique_ptr<df::MemoryPolicy> makeSlowOnly();
/** Linux first-touch NUMA allocation across the two nodes. */
std::unique_ptr<df::MemoryPolicy> makeFirstTouchNuma();

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_REFERENCE_HH
