#include "baselines/vdnn.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::baselines {

bool
VdnnPolicy::supports(const df::Graph &graph)
{
    for (const auto &op : graph.ops())
        if (op.type == df::OpType::Conv2d)
            return true;
    return false;
}

void
VdnnPolicy::buildSchedule(df::Executor &ex)
{
    const df::Graph &graph = ex.graph();
    SENTINEL_ASSERT(supports(graph),
                    "vDNN cannot handle '%s': no convolution layers "
                    "(recursive structures are unsupported)",
                    graph.name().c_str());

    // Default: everything device-resident.
    for (auto &p : placement_)
        p = Placement::PinFast;

    // Conv layers (the lowering/padding ops inside them included).
    std::vector<bool> conv_layer(
        static_cast<std::size_t>(graph.numLayers()), false);
    for (const auto &op : graph.ops())
        if (op.type == df::OpType::Conv2d)
            conv_layer[static_cast<std::size_t>(op.layer)] = true;

    // Offload candidates: the input activations of convolution layers
    // — tensors produced earlier, read inside a conv layer, and
    // re-read later (by the backward pass).
    for (const auto &op : graph.ops()) {
        if (!conv_layer[static_cast<std::size_t>(op.layer)])
            continue;
        for (const auto &use : op.uses) {
            if (use.is_write)
                continue;
            const df::TensorDesc &t = graph.tensor(use.tensor);
            bool offloadable = (t.kind == df::TensorKind::Activation ||
                                t.kind == df::TensorKind::Input) &&
                               t.first_layer < op.layer &&
                               t.last_layer > op.layer;
            if (!offloadable || placement_[t.id] == Placement::Swap)
                continue;

            placement_[t.id] = Placement::Swap;
            // Offload after the forward conv layer, prefetch one layer
            // ahead of the backward use (fixed single-layer lead).
            swap_out_at_[static_cast<std::size_t>(op.layer)]
                .push_back(t.id);
            int back = std::max(op.layer + 1, t.last_layer - 1);
            swap_in_at_[static_cast<std::size_t>(back)].push_back(t.id);
        }
    }
}

} // namespace sentinel::baselines
