/**
 * @file
 * The `planned` baseline: offline interval-graph memory planning as a
 * standalone policy.
 *
 * At training start the whole graph (preallocated tensors as
 * always-live intervals, everything else by [first_op, last_op]) goes
 * through plan::assignOffsets; every allocation thereafter returns its
 * precomputed address.  Tensors whose planned region lies entirely
 * below the page-aligned fast-tier budget are placed fast, the rest
 * slow, and nothing ever migrates — so the policy shows exactly how
 * far static planning alone carries a heterogeneous-memory system,
 * the ablation point between the packed references (no planning) and
 * Sentinel (planning + migration).
 *
 * The fast-tier capacity invariant holds by construction: the budget
 * is the capacity rounded *down* to whole pages, and a page below the
 * budget boundary is only ever first-mapped by a tensor preferring
 * fast, so fast occupancy never exceeds the budget.
 */

#ifndef SENTINEL_BASELINES_PLANNED_HH
#define SENTINEL_BASELINES_PLANNED_HH

#include <memory>

#include "dataflow/policy.hh"
#include "plan/offset_planner.hh"

namespace sentinel::baselines {

class PlannedPolicy : public df::MemoryPolicy
{
  public:
    std::string name() const override { return "planned"; }

    void onTrainingStart(df::Executor &ex) override;

    df::AllocDecision allocate(df::Executor &ex,
                               const df::TensorDesc &tensor) override;

    void onRangeAccess(df::Executor &, mem::PageRun run, bool,
                       std::vector<df::AccessSegment> &out) override
    {
        // Static layout, no reaction: one segment for the whole run.
        df::AccessSegment seg;
        seg.pages = run.count;
        out.push_back(seg);
    }

    /** Address-space high-water of the offline plan. */
    std::uint64_t footprint() const { return plan_.footprint; }
    const plan::OffsetPlan &offsetPlan() const { return plan_; }

  private:
    plan::OffsetPlan plan_;
    std::vector<std::uint64_t> addr_;  ///< per tensor id
    std::vector<bool> fast_;           ///< per tensor id
    std::uint64_t fast_budget_ = 0;
};

std::unique_ptr<df::MemoryPolicy> makePlanned();

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_PLANNED_HH
