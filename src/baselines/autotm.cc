#include "baselines/autotm.hh"

#include <algorithm>

namespace sentinel::baselines {

std::vector<std::pair<int, int>>
useEpisodes(const std::vector<int> &access_layers)
{
    std::vector<std::pair<int, int>> episodes;
    for (int l : access_layers) {
        if (!episodes.empty() && l <= episodes.back().second + 1)
            episodes.back().second = l;
        else
            episodes.emplace_back(l, l);
    }
    return episodes;
}

std::vector<std::uint64_t>
transientLedger(const prof::ProfileDatabase &db)
{
    std::vector<std::uint64_t> ledger(
        static_cast<std::size_t>(db.numLayers()), 0);
    for (const auto &t : db.tensors()) {
        if (t.preallocated || t.lifetimeLayers() > 2)
            continue;
        for (int l = t.first_layer; l <= t.last_layer; ++l)
            ledger[static_cast<std::size_t>(l)] += t.bytes;
    }
    return ledger;
}

void
AutoTmPolicy::buildSchedule(df::Executor &ex)
{
    std::uint64_t S = ex.hm().tier(mem::Tier::Fast).capacity();
    std::vector<std::uint64_t> ledger = transientLedger(db_);

    // Hotness-density order — the ILP's objective rewards exactly the
    // tensors whose placement saves the most slow-memory traffic.
    std::vector<df::TensorId> order;
    order.reserve(db_.numTensors());
    for (const auto &t : db_.tensors())
        order.push_back(t.id);
    std::sort(order.begin(), order.end(),
              [this](df::TensorId a, df::TensorId b) {
                  double ha = db_.tensor(a).accesses_per_page;
                  double hb = db_.tensor(b).accesses_per_page;
                  if (ha != hb)
                      return ha > hb;
                  return a < b;
              });

    auto fits = [&](int begin, int end, std::uint64_t bytes) {
        for (int l = begin; l <= end; ++l)
            if (ledger[static_cast<std::size_t>(l)] + bytes > S)
                return false;
        return true;
    };
    auto claim = [&](int begin, int end, std::uint64_t bytes) {
        for (int l = begin; l <= end; ++l)
            ledger[static_cast<std::size_t>(l)] += bytes;
    };

    for (df::TensorId id : order) {
        const prof::TensorProfile &t = db_.tensor(id);
        if (t.access_layers.empty())
            continue;
        if (!t.preallocated && t.lifetimeLayers() <= 2) {
            // Transient: lives on the device for its moment (already
            // accounted in the ledger seed).
            placement_[id] = Placement::PinFast;
            continue;
        }

        auto episodes = useEpisodes(t.access_layers);
        int episode_layers = 0;
        for (const auto &e : episodes)
            episode_layers += e.second - e.first + 1;
        int span = t.last_layer - t.first_layer + 1;

        auto try_swap = [&]() {
            bool ok = true;
            for (const auto &e : episodes)
                ok = ok && fits(e.first, e.second, t.bytes);
            if (!ok && !gpu_strict_)
                return false;
            placement_[id] = Placement::Swap;
            for (const auto &e : episodes) {
                claim(e.first, e.second, t.bytes);
                swap_in_at_[static_cast<std::size_t>(e.first)]
                    .push_back(id);
                swap_out_at_[static_cast<std::size_t>(e.second)]
                    .push_back(id);
            }
            return true;
        };
        auto try_pin = [&]() {
            if (!fits(t.first_layer, t.last_layer, t.bytes))
                return false;
            placement_[id] = Placement::PinFast;
            claim(t.first_layer, t.last_layer, t.bytes);
            return true;
        };

        // The ILP's answer for a tensor idle most of its lifetime is
        // to move it out between episodes: swapping frees capacity
        // worth span-episode_layers layers at the price of the
        // (synchronous) moves.  Pin only when mostly busy.
        bool prefer_swap = span > 2 * episode_layers;
        if (prefer_swap) {
            if (try_swap() || try_pin())
                continue;
        } else {
            if (try_pin() || try_swap())
                continue;
        }
        placement_[id] = Placement::Slow;
    }
}

} // namespace sentinel::baselines
