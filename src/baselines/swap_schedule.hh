/**
 * @file
 * Shared runtime for schedule-driven swapping baselines.
 *
 * AutoTM, SwapAdvisor, and vDNN all boil down to the same runtime
 * machinery: a per-tensor placement (pinned fast / swapped / slow) and
 * per-layer swap-in / swap-out lists, executed over a packed
 * (TensorFlow-style) layout.  They differ in the *solver* that builds
 * the schedule and in whether moves are synchronous (AutoTM exposes
 * every move to the critical path; the others overlap).
 *
 * This base class executes such a schedule; each baseline subclasses
 * it and fills in the schedule at training start.
 */

#ifndef SENTINEL_BASELINES_SWAP_SCHEDULE_HH
#define SENTINEL_BASELINES_SWAP_SCHEDULE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/arena.hh"
#include "dataflow/executor.hh"
#include "dataflow/policy.hh"

namespace sentinel::baselines {

/** Where the solver decided a tensor lives. */
enum class Placement : std::uint8_t {
    Slow,    ///< always slow memory
    PinFast, ///< fast for its whole lifetime
    Swap,    ///< fast around its uses, slow in between
};

class ScheduledSwapPolicy : public df::MemoryPolicy
{
  public:
    ScheduledSwapPolicy(std::string name, bool sync_moves);

    std::string name() const override { return name_; }

    void onTrainingStart(df::Executor &ex) override;
    void onLayerBegin(df::Executor &ex, int layer) override;
    void onLayerEnd(df::Executor &ex, int layer) override;

    df::AllocDecision allocate(df::Executor &ex,
                               const df::TensorDesc &tensor) override;
    void onTensorFreed(df::Executor &ex, df::TensorId id,
                       const df::TensorPlacement &pl) override;
    bool
    stallForInflight(df::Executor &, mem::PageId) override
    {
        return true; // a scheduled swap-in is always worth waiting for
    }

    void
    onRangeAccess(df::Executor &, mem::PageRun run, bool,
                  std::vector<df::AccessSegment> &out) override
    {
        // Schedule-driven policies act only at layer boundaries; page
        // accesses take no policy action (onPageAccess is the base
        // default), so the whole run is one trivial segment and the
        // executor's walk handles in-flight swaps page by page.
        df::AccessSegment seg;
        seg.pages = run.count;
        out.push_back(seg);
    }

    Placement placementOf(df::TensorId id) const;

  protected:
    /**
     * Subclass hook: fill placement_ / swap_in_at_ / swap_out_at_.
     * Called once from onTrainingStart.
     */
    virtual void buildSchedule(df::Executor &ex) = 0;

    /** Charged once at training start (solver cost). */
    virtual Tick decisionOverhead() const { return 0; }

    std::vector<Placement> placement_;
    std::vector<std::vector<df::TensorId>> swap_in_at_;
    std::vector<std::vector<df::TensorId>> swap_out_at_;

  private:
    /** @return true if every page is at/headed to @p dst. */
    bool migrateTensor(df::Executor &ex, df::TensorId id, mem::Tier dst,
                       bool stall);

    std::string name_;
    bool sync_moves_;
    bool scheduled_ = false;
    alloc::VirtualArena arena_;

    /** Swap-ins that could not fully reserve device memory yet; the
     *  runtime retries them as evictions free space (real swapping
     *  runtimes block or retry exactly the same way). */
    std::vector<df::TensorId> pending_in_;
};

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_SWAP_SCHEDULE_HH
