#include "baselines/swapadvisor.hh"

#include <algorithm>

#include "baselines/autotm.hh" // useEpisodes()
#include "common/logging.hh"

namespace sentinel::baselines {

double
SwapAdvisorPolicy::evaluate(const Genome &genome,
                            std::uint64_t fast_capacity,
                            double promote_bw, bool apply)
{
    std::vector<std::uint64_t> ledger = transientLedger(db_);

    // Placement order: genome priority, descending.
    std::vector<std::size_t> order(candidates_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&genome](std::size_t a, std::size_t b) {
                  if (genome[a].priority != genome[b].priority)
                      return genome[a].priority > genome[b].priority;
                  return a < b;
              });

    auto fits = [&](int begin, int end, std::uint64_t bytes) {
        for (int l = std::max(0, begin); l <= end; ++l)
            if (ledger[static_cast<std::size_t>(l)] + bytes >
                fast_capacity)
                return false;
        return true;
    };
    auto claim = [&](int begin, int end, std::uint64_t bytes) {
        for (int l = std::max(0, begin); l <= end; ++l)
            ledger[static_cast<std::size_t>(l)] += bytes;
    };

    double penalty = 0.0;

    for (std::size_t idx : order) {
        df::TensorId id = candidates_[idx];
        const prof::TensorProfile &t = db_.tensor(id);
        const Gene &g = genome[idx];
        if (!t.preallocated && t.lifetimeLayers() <= 2) {
            if (apply)
                placement_[id] = Placement::PinFast; // transient
            continue;
        }

        if (fits(t.first_layer, t.last_layer, t.bytes)) {
            claim(t.first_layer, t.last_layer, t.bytes);
            if (apply)
                placement_[id] = Placement::PinFast;
            continue;
        }

        auto episodes = useEpisodes(t.access_layers);
        bool ok = true;
        for (const auto &e : episodes)
            ok = ok && fits(e.first - g.lead, e.second, t.bytes);
        if (ok) {
            double transfer =
                static_cast<double>(t.bytes) / promote_bw * 1e9;
            for (const auto &e : episodes) {
                claim(e.first - g.lead, e.second, t.bytes);
                int in_at = std::max(0, e.first - g.lead);
                if (apply) {
                    placement_[id] = Placement::Swap;
                    swap_in_at_[static_cast<std::size_t>(in_at)]
                        .push_back(id);
                    swap_out_at_[static_cast<std::size_t>(e.second)]
                        .push_back(id);
                }
                // Exposure when the lead window is shorter than the
                // transfer.
                double window = static_cast<double>(
                    db_.layerSpanTime(in_at, e.first));
                penalty += std::max(0.0, transfer - window);
            }
            continue;
        }

        if (gpu_strict_) {
            // The device cannot serve this tensor from host memory:
            // force a zero-lead swap with no capacity claim.  The
            // churn it causes is fully exposed, so the GA is pushed
            // toward genomes that avoid forcing anything.
            double transfer =
                static_cast<double>(t.bytes) / promote_bw * 1e9;
            penalty += 2.0 * transfer *
                       static_cast<double>(episodes.size());
            if (apply) {
                placement_[id] = Placement::Swap;
                for (const auto &e : episodes) {
                    swap_in_at_[static_cast<std::size_t>(e.first)]
                        .push_back(id);
                    swap_out_at_[static_cast<std::size_t>(e.second)]
                        .push_back(id);
                }
            }
            continue;
        }

        if (apply)
            placement_[id] = Placement::Slow;
        // Slow accesses: one traffic-shaped term per use episode.
        double eps = static_cast<double>(t.access_layers.size());
        penalty += eps * static_cast<double>(t.bytes) *
                   (1.0 / slow_read_bw_ - 1.0 / fast_read_bw_) * 1e9;
    }
    return penalty;
}

void
SwapAdvisorPolicy::onStepBegin(df::Executor &ex, int)
{
    step_begin_ = ex.now();
    // The genetic search co-runs with training; its candidate
    // simulations and synchronization take a share of every step —
    // and for large models the search outlives the paper's 30-minute
    // budget entirely (Sec. VII-C).
    if (last_step_time_ > 0) {
        ex.chargePolicy(static_cast<Tick>(
            opts_.search_overhead_fraction *
            static_cast<double>(last_step_time_)));
    }
}

void
SwapAdvisorPolicy::onStepEnd(df::Executor &ex, int)
{
    last_step_time_ = ex.now() - step_begin_;
}

void
SwapAdvisorPolicy::buildSchedule(df::Executor &ex)
{
    std::uint64_t S = ex.hm().tier(mem::Tier::Fast).capacity();
    double bw = ex.hm().promoteChannel().bandwidth();
    fast_read_bw_ = ex.hm().tierParams(mem::Tier::Fast).read_bw;
    slow_read_bw_ = ex.hm().tierParams(ex.hm().slowestTier()).read_bw;

    candidates_.clear();
    for (const auto &t : db_.tensors()) {
        if (t.access_layers.empty())
            continue;
        candidates_.push_back(t.id);
    }

    Rng rng(opts_.seed);
    auto random_genome = [&]() {
        Genome g(candidates_.size());
        for (std::size_t i = 0; i < g.size(); ++i) {
            // Random start: the GA explores the raw joint space, which
            // is exactly why the real system needs ~30 minutes of
            // simulation-driven search.
            g[i].priority = rng.uniformReal(0.0, 1.0);
            g[i].lead = static_cast<int>(rng.uniformInt(1, 4));
        }
        return g;
    };

    // One hotness-informed member anchors the population (the real GA
    // reaches schedules of at least this quality given its budget);
    // elitism preserves it while crossover explores around it.
    double max_hot = 1.0;
    for (df::TensorId id : candidates_)
        max_hot = std::max(max_hot, db_.tensor(id).accesses_per_page);
    Genome informed(candidates_.size());
    for (std::size_t i = 0; i < informed.size(); ++i) {
        informed[i].priority =
            db_.tensor(candidates_[i]).accesses_per_page / max_hot;
        informed[i].lead = 1;
    }

    std::vector<Genome> pop;
    std::vector<double> fit;
    pop.push_back(std::move(informed));
    fit.push_back(evaluate(pop.back(), S, bw, false));
    while (static_cast<int>(pop.size()) < opts_.population) {
        pop.push_back(random_genome());
        fit.push_back(evaluate(pop.back(), S, bw, false));
    }

    auto tournament = [&]() -> const Genome & {
        std::size_t best = static_cast<std::size_t>(
            rng.uniformInt(0, opts_.population - 1));
        for (int i = 0; i < 2; ++i) {
            std::size_t other = static_cast<std::size_t>(
                rng.uniformInt(0, opts_.population - 1));
            if (fit[other] < fit[best])
                best = other;
        }
        return pop[best];
    };

    for (int gen = 0; gen < opts_.generations; ++gen) {
        std::vector<Genome> next;
        std::vector<double> next_fit;
        // Elitism: carry the current best forward.
        std::size_t best = static_cast<std::size_t>(
            std::min_element(fit.begin(), fit.end()) - fit.begin());
        next.push_back(pop[best]);
        next_fit.push_back(fit[best]);

        while (static_cast<int>(next.size()) < opts_.population) {
            const Genome &a = tournament();
            const Genome &b = tournament();
            Genome child(a.size());
            for (std::size_t i = 0; i < child.size(); ++i) {
                child[i] = rng.bernoulli(0.5) ? a[i] : b[i];
                if (rng.bernoulli(opts_.mutation_rate)) {
                    child[i].priority += rng.normal(0.0, 0.2);
                    child[i].lead =
                        static_cast<int>(rng.uniformInt(1, 4));
                }
            }
            next_fit.push_back(evaluate(child, S, bw, false));
            next.push_back(std::move(child));
        }
        pop = std::move(next);
        fit = std::move(next_fit);
    }

    std::size_t best = static_cast<std::size_t>(
        std::min_element(fit.begin(), fit.end()) - fit.begin());
    evaluate(pop[best], S, bw, /*apply=*/true);
}

} // namespace sentinel::baselines
