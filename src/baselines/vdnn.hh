/**
 * @file
 * vDNN — convolution-input offloading for GPU training.
 *
 * vDNN [6] keeps everything in device memory except the *input
 * activations of convolution layers*: those are offloaded to the host
 * after their forward use and prefetched one layer ahead of their
 * backward use, overlapped with the neighboring layer's compute.
 *
 * Two defining limits (both measured in the paper):
 *  - it only works for feed-forward CNNs — recursive structures (LSTM,
 *    BERT) have no convolution backbone to key the schedule off, so
 *    the harness reports it unsupported for those models;
 *  - it ignores per-layer time variance, so a transfer longer than the
 *    single overlapped layer stalls the pipeline (3x more exposed
 *    migration than Sentinel-GPU, Fig. 13).
 */

#ifndef SENTINEL_BASELINES_VDNN_HH
#define SENTINEL_BASELINES_VDNN_HH

#include "baselines/swap_schedule.hh"

namespace sentinel::baselines {

class VdnnPolicy : public ScheduledSwapPolicy
{
  public:
    VdnnPolicy() : ScheduledSwapPolicy("vdnn", /*sync_moves=*/false) {}

    /** vDNN only handles graphs with convolution layers. */
    static bool supports(const df::Graph &graph);

  protected:
    void buildSchedule(df::Executor &ex) override;
};

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_VDNN_HH
