/**
 * @file
 * IAL — the "improved active list" page-migration baseline.
 *
 * The paper's main CPU-side competitor [19]: an OS-level, DNN-agnostic
 * mechanism keeping a FIFO active list of fast-memory pages.  Pages
 * that get accessed repeatedly in slow memory are promoted
 * (asynchronously, in the background, like the kernel's migration
 * threads); when fast memory fills, the *oldest* page is evicted
 * regardless of its heat.
 *
 * Its weaknesses are exactly the ones Sentinel attacks:
 *  - page-level view: false sharing makes cold tensors look hot (the
 *    packed layout guarantees sharing);
 *  - no lifetime knowledge: short-lived tensors' pages get promoted
 *    and then evicted pointlessly, wasting migration bandwidth;
 *  - FIFO eviction throws out hot pages, which must be re-promoted.
 */

#ifndef SENTINEL_BASELINES_IAL_HH
#define SENTINEL_BASELINES_IAL_HH

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "alloc/arena.hh"
#include "dataflow/executor.hh"
#include "dataflow/policy.hh"

namespace sentinel::baselines {

class IalPolicy : public df::MemoryPolicy
{
  public:
    /**
     * @param promote_threshold slow-memory accesses before a page is
     *        considered active and queued for promotion.
     */
    explicit IalPolicy(int promote_threshold = 4,
                       Tick hint_fault_cost = 250,
                       Tick promote_service_cost = kUsec)
        : threshold_(promote_threshold),
          hint_fault_cost_(hint_fault_cost),
          promote_service_(promote_service_cost), arena_(0)
    {
    }

    std::string name() const override { return "ial"; }

    df::AllocDecision allocate(df::Executor &ex,
                               const df::TensorDesc &tensor) override;
    void onTensorAllocated(df::Executor &ex, df::TensorId id,
                           const df::TensorPlacement &pl) override;
    void onTensorFreed(df::Executor &ex, df::TensorId id,
                       const df::TensorPlacement &pl) override;
    void onPageUnmapped(df::Executor &ex, mem::PageId page) override;
    df::PageAccessResult onPageAccess(df::Executor &ex, mem::PageId page,
                                      bool is_write) override;
    void onRangeAccess(df::Executor &ex, mem::PageRun run, bool is_write,
                       std::vector<df::AccessSegment> &out) override;

    bool
    stallForInflight(df::Executor &, mem::PageId) override
    {
        // The kernel never blocks the application for its own
        // migrations: accesses read the source copy until remap.
        return false;
    }

    std::uint64_t promotionsRequested() const { return promotions_; }

  private:
    void evictForSpace(df::Executor &ex, std::uint64_t bytes_needed);
    void noteFastPage(mem::PageId page);

    int threshold_;
    Tick hint_fault_cost_;
    Tick promote_service_;
    alloc::VirtualArena arena_;

    /** FIFO active list of fast pages (front = oldest). */
    std::deque<mem::PageId> fifo_;
    std::unordered_set<mem::PageId> in_fifo_;

    /** Slow-memory access counts (page heat, false sharing included). */
    std::unordered_map<mem::PageId, int> slow_touches_;

    std::uint64_t promotions_ = 0;
};

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_IAL_HH
