#include "baselines/reference.hh"

namespace sentinel::baselines {

std::unique_ptr<df::MemoryPolicy>
makeFastOnly()
{
    return std::make_unique<PackedReferencePolicy>("fast-only",
                                                   mem::Tier::Fast);
}

std::unique_ptr<df::MemoryPolicy>
makeSlowOnly()
{
    return std::make_unique<PackedReferencePolicy>(
        "slow-only", mem::Tier::Slow, /*prefer_slowest=*/true);
}

std::unique_ptr<df::MemoryPolicy>
makeFirstTouchNuma()
{
    return std::make_unique<PackedReferencePolicy>("first-touch-numa",
                                                   mem::Tier::Fast);
}

} // namespace sentinel::baselines
