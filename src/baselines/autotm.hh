/**
 * @file
 * AutoTM — static-profile, ILP-style placement with synchronous moves.
 *
 * AutoTM [7] formulates tensor placement/movement on DRAM+PMM as an
 * integer linear program over a static profile.  We reproduce its
 * defining behaviour with an optimal-order greedy over the same
 * objective the ILP encodes (hotness-density first, capacity ledger
 * per layer):
 *
 *  - tensors are pinned in fast memory for their whole span when they
 *    fit, swapped around their use episodes when only that fits,
 *    otherwise left in slow memory;
 *  - every swap-in is *synchronous* — the paper observes that all of
 *    AutoTM's tensor movement is exposed on the critical path, which
 *    is exactly why Sentinel beats it by ~17%.
 *
 * The ILP solve happens offline (compile time in nGraph), so no
 * decision overhead is charged to training.
 */

#ifndef SENTINEL_BASELINES_AUTOTM_HH
#define SENTINEL_BASELINES_AUTOTM_HH

#include "baselines/swap_schedule.hh"
#include "profile/profile_db.hh"

namespace sentinel::baselines {

class AutoTmPolicy : public ScheduledSwapPolicy
{
  public:
    /**
     * @param gpu_strict GPU variant: tensors must reside in device
     *        memory when used, so nothing may be planned "Slow".
     */
    explicit AutoTmPolicy(const prof::ProfileDatabase &db,
                          bool gpu_strict = false)
        : ScheduledSwapPolicy(gpu_strict ? "autotm-gpu" : "autotm",
                              /*sync_moves=*/true),
          db_(db), gpu_strict_(gpu_strict)
    {
    }

  protected:
    void buildSchedule(df::Executor &ex) override;

  private:
    const prof::ProfileDatabase &db_;
    bool gpu_strict_;
};

/**
 * Group a sorted list of access layers into contiguous use episodes
 * (gap <= 1 keeps layers in the same episode).  Shared by the
 * schedule-driven baselines.
 */
std::vector<std::pair<int, int>>
useEpisodes(const std::vector<int> &access_layers);

/**
 * Per-layer fast-memory footprint of transient tensors (lifetime of at
 * most two layers): gradients, temps and other tensors that are simply
 * born, used, and freed on the device.  Solvers seed their capacity
 * ledgers with this so placed tensors leave room for them — exactly
 * what the real ILP/GA formulations do by modeling every tensor.
 */
std::vector<std::uint64_t>
transientLedger(const prof::ProfileDatabase &db);

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_AUTOTM_HH
