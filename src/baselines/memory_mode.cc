#include "baselines/memory_mode.hh"

namespace sentinel::baselines {

df::PageAccessResult
MemoryModePolicy::onPageAccess(df::Executor &ex, mem::PageId page,
                               bool is_write)
{
    const mem::TierParams &slow =
        ex.hm().tierParams(ex.hm().slowestTier());
    mem::DramCacheResult r = cache_.access(page, is_write);

    df::PageAccessResult out;
    // After a (possible) fill, the access is served at DRAM speed.
    out.effective = mem::Tier::Fast;
    if (!r.hit) {
        // Fill from PMM, plus the victim writeback if dirty; both sit
        // on the access's critical path in Memory Mode.
        out.extra = transferTime(r.fill_bytes, slow.read_bw) +
                    slow.read_latency;
        if (r.writeback_bytes > 0) {
            out.extra +=
                transferTime(r.writeback_bytes, slow.write_bw);
        }
    }
    return out;
}

void
MemoryModePolicy::onRangeAccess(df::Executor &ex, mem::PageRun run,
                                bool is_write,
                                std::vector<df::AccessSegment> &out)
{
    // The cache result never depends on the simulated clock (pure LRU
    // state), so a whole run batches into one segment.  Every miss
    // fills exactly one page, so the aggregate cost decomposes into
    // per-page terms identical to the onPageAccess() path.
    const mem::TierParams &slow =
        ex.hm().tierParams(ex.hm().slowestTier());
    mem::DramCacheRangeResult r =
        cache_.accessRange(run.first, run.count, is_write);

    df::AccessSegment seg;
    seg.pages = run.count;
    seg.effective = mem::Tier::Fast;
    if (r.misses > 0) {
        Tick per_miss = transferTime(mem::kPageSize, slow.read_bw) +
                        slow.read_latency;
        seg.extra = static_cast<Tick>(r.misses) * per_miss +
                    static_cast<Tick>(r.writebacks) *
                        transferTime(mem::kPageSize, slow.write_bw);
        seg.stall_events = r.misses;
    }
    out.push_back(seg);
}

} // namespace sentinel::baselines
