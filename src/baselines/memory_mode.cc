#include "baselines/memory_mode.hh"

namespace sentinel::baselines {

df::PageAccessResult
MemoryModePolicy::onPageAccess(df::Executor &ex, mem::PageId page,
                               bool is_write)
{
    const mem::TierParams &slow =
        ex.hm().tierParams(mem::Tier::Slow);
    mem::DramCacheResult r = cache_.access(page, is_write);

    df::PageAccessResult out;
    // After a (possible) fill, the access is served at DRAM speed.
    out.effective = mem::Tier::Fast;
    if (!r.hit) {
        // Fill from PMM, plus the victim writeback if dirty; both sit
        // on the access's critical path in Memory Mode.
        out.extra = transferTime(r.fill_bytes, slow.read_bw) +
                    slow.read_latency;
        if (r.writeback_bytes > 0) {
            out.extra +=
                transferTime(r.writeback_bytes, slow.write_bw);
        }
    }
    return out;
}

} // namespace sentinel::baselines
