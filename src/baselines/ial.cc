#include "baselines/ial.hh"

#include <array>
#include <vector>

namespace sentinel::baselines {

df::AllocDecision
IalPolicy::allocate(df::Executor &ex, const df::TensorDesc &tensor)
{
    // First-touch placement prefers fast memory; make room FIFO-style
    // if it is full (the kernel reclaims from the active list's tail).
    std::uint64_t need = mem::roundUpToPages(tensor.bytes);
    if (ex.hm().tier(mem::Tier::Fast).free() < need)
        evictForSpace(ex, need);
    return { arena_.allocate(tensor.bytes, 64), mem::Tier::Fast };
}

void
IalPolicy::noteFastPage(mem::PageId page)
{
    if (in_fifo_.insert(page).second)
        fifo_.push_back(page);
}

void
IalPolicy::onTensorAllocated(df::Executor &ex, df::TensorId,
                             const df::TensorPlacement &pl)
{
    Tick now = ex.now();
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
        if (ex.hm().residentTier(p, now) == mem::Tier::Fast)
            noteFastPage(p);
    }
}

void
IalPolicy::onTensorFreed(df::Executor &, df::TensorId,
                         const df::TensorPlacement &pl)
{
    arena_.free(pl.addr, pl.bytes);
}

void
IalPolicy::onPageUnmapped(df::Executor &, mem::PageId page)
{
    // Lazy removal: dead pages are skipped when popped.
    in_fifo_.erase(page);
    slow_touches_.erase(page);
}

void
IalPolicy::evictForSpace(df::Executor &ex, std::uint64_t bytes_needed)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();

    std::vector<mem::PageId> victims;
    std::uint64_t reclaimed = 0;
    while (reclaimed < bytes_needed && !fifo_.empty()) {
        mem::PageId head = fifo_.front();
        fifo_.pop_front();
        if (in_fifo_.erase(head) == 0)
            continue; // page died earlier
        if (!hm.isMapped(head) ||
            hm.residentTier(head, now) != mem::Tier::Fast ||
            hm.inFlight(head, now))
            continue;
        victims.push_back(head);
        reclaimed += mem::kPageSize;
    }
    // Background demotion: space becomes free when transfers land.
    hm.migratePages(victims, mem::Tier::Slow, now);
}

void
IalPolicy::onRangeAccess(df::Executor &ex, mem::PageRun run, bool is_write,
                         std::vector<df::AccessSegment> &out)
{
    // IAL only acts on pages sitting idle in slow memory.  Pages that
    // are fast-resident or already migrating take no action (and no
    // hint-fault cost), so a leading run of them is one free segment.
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    std::uint64_t covered = 0;
    while (covered < run.count) {
        mem::PageRunState rs = hm.residentRange(run.first + covered,
                                                run.count - covered, now);
        if (rs.tier != mem::Tier::Fast && !rs.in_flight)
            break;
        covered += rs.count;
    }
    if (covered > 0) {
        df::AccessSegment seg;
        seg.pages = covered;
        out.push_back(seg);
        return;
    }
    // Slow-resident head: hint-fault accounting mutates per-page heat
    // and may migrate — take the exact per-page path for one page.
    df::MemoryPolicy::onRangeAccess(ex, run, is_write, out);
}

df::PageAccessResult
IalPolicy::onPageAccess(df::Executor &ex, mem::PageId page, bool)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    if (hm.residentTier(page, now) == mem::Tier::Fast ||
        hm.inFlight(page, now))
        return {};

    // Count page heat through NUMA-style hint faults (each sampled
    // access pays the fault).  Every tensor sharing this page heats
    // it — page-level false sharing at work.
    int touches = ++slow_touches_[page];
    df::PageAccessResult out;
    out.extra = hint_fault_cost_;
    if (touches < threshold_)
        return out;

    if (hm.tier(mem::Tier::Fast).free() < mem::kPageSize)
        evictForSpace(ex, 16 * mem::kPageSize);

    std::array<mem::PageId, 1> one{ page };
    if (hm.migratePages(one, mem::Tier::Fast, now) == 1) {
        ++promotions_;
        slow_touches_.erase(page);
        noteFastPage(page);
        // Fault-driven promotion: the faulting access pays the
        // in-kernel page copy + remap, then proceeds on the fast copy.
        out.extra += promote_service_;
        out.effective = mem::Tier::Fast;
    }
    return out;
}

} // namespace sentinel::baselines
