/**
 * @file
 * CUDA Unified Memory (UM) — the GPU demand-paging baseline.
 *
 * No profiling, no prefetching: a GPU access to a host-resident page
 * raises a page fault; the driver migrates the page on demand (fault
 * service + transfer fully exposed) and evicts least-recently-used
 * pages when device memory fills.  The paper's Fig. 12 normalizes all
 * GPU results to UM; Sentinel-GPU beats it by 1.1x-7.8x.
 */

#ifndef SENTINEL_BASELINES_UNIFIED_MEMORY_HH
#define SENTINEL_BASELINES_UNIFIED_MEMORY_HH

#include <list>
#include <unordered_map>

#include "alloc/arena.hh"
#include "dataflow/executor.hh"
#include "dataflow/policy.hh"

namespace sentinel::baselines {

class UnifiedMemoryPolicy : public df::MemoryPolicy
{
  public:
    /** @param fault_cost driver fault-service overhead per demand miss. */
    explicit UnifiedMemoryPolicy(Tick fault_cost = 8 * kUsec)
        : fault_cost_(fault_cost), arena_(0)
    {
    }

    std::string name() const override { return "um"; }

    df::AllocDecision allocate(df::Executor &ex,
                               const df::TensorDesc &tensor) override;
    void onTensorAllocated(df::Executor &ex, df::TensorId id,
                           const df::TensorPlacement &pl) override;
    void onTensorFreed(df::Executor &ex, df::TensorId id,
                       const df::TensorPlacement &pl) override;
    void onPageUnmapped(df::Executor &ex, mem::PageId page) override;
    df::PageAccessResult onPageAccess(df::Executor &ex, mem::PageId page,
                                      bool is_write) override;
    void onRangeAccess(df::Executor &ex, mem::PageRun run, bool is_write,
                       std::vector<df::AccessSegment> &out) override;

    std::uint64_t demandFaults() const { return faults_; }

  private:
    void touchLru(mem::PageId page);
    void evictLru(df::Executor &ex, std::uint64_t bytes_needed);

    Tick fault_cost_;
    alloc::VirtualArena arena_;

    /** LRU order of device-resident pages (front = least recent). */
    std::list<mem::PageId> lru_;
    std::unordered_map<mem::PageId, std::list<mem::PageId>::iterator>
        lru_pos_;

    std::uint64_t faults_ = 0;
};

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_UNIFIED_MEMORY_HH
