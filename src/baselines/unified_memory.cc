#include "baselines/unified_memory.hh"

#include <array>
#include <vector>

namespace sentinel::baselines {

df::AllocDecision
UnifiedMemoryPolicy::allocate(df::Executor &ex,
                              const df::TensorDesc &tensor)
{
    // cudaMallocManaged: first GPU touch places the page on the
    // device if space permits.
    std::uint64_t need = mem::roundUpToPages(tensor.bytes);
    if (ex.hm().tier(mem::Tier::Fast).free() < need)
        evictLru(ex, need);
    return { arena_.allocate(tensor.bytes, 64), mem::Tier::Fast };
}

void
UnifiedMemoryPolicy::touchLru(mem::PageId page)
{
    auto it = lru_pos_.find(page);
    if (it != lru_pos_.end()) {
        lru_.splice(lru_.end(), lru_, it->second);
        return;
    }
    lru_.push_back(page);
    lru_pos_[page] = std::prev(lru_.end());
}

void
UnifiedMemoryPolicy::onTensorAllocated(df::Executor &ex, df::TensorId,
                                       const df::TensorPlacement &pl)
{
    Tick now = ex.now();
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p)
        if (ex.hm().residentTier(p, now) == mem::Tier::Fast)
            touchLru(p);
}

void
UnifiedMemoryPolicy::onTensorFreed(df::Executor &, df::TensorId,
                                   const df::TensorPlacement &pl)
{
    arena_.free(pl.addr, pl.bytes);
}

void
UnifiedMemoryPolicy::onPageUnmapped(df::Executor &, mem::PageId page)
{
    auto it = lru_pos_.find(page);
    if (it != lru_pos_.end()) {
        lru_.erase(it->second);
        lru_pos_.erase(it);
    }
}

void
UnifiedMemoryPolicy::evictLru(df::Executor &ex,
                              std::uint64_t bytes_needed)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    std::vector<mem::PageId> victims;
    std::uint64_t reclaimed = 0;
    while (reclaimed < bytes_needed && !lru_.empty()) {
        mem::PageId victim = lru_.front();
        lru_.pop_front();
        lru_pos_.erase(victim);
        if (!hm.isMapped(victim) ||
            hm.residentTier(victim, now) != mem::Tier::Fast ||
            hm.inFlight(victim, now))
            continue;
        victims.push_back(victim);
        reclaimed += mem::kPageSize;
    }
    // cudaMemPrefetchAsync back to the host: the far end of the chain.
    hm.migratePages(victims, hm.slowestTier(), now);
}

void
UnifiedMemoryPolicy::onRangeAccess(df::Executor &ex, mem::PageRun run,
                                   bool is_write,
                                   std::vector<df::AccessSegment> &out)
{
    // Device-resident prefix: LRU touches only, no fault.  The LRU
    // update order matches the per-page loop exactly.
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    std::uint64_t covered = 0;
    while (covered < run.count) {
        mem::PageRunState rs = hm.residentRange(run.first + covered,
                                                run.count - covered, now);
        if (rs.tier != mem::Tier::Fast)
            break;
        for (std::uint64_t i = 0; i < rs.count; ++i)
            touchLru(run.first + covered + i);
        covered += rs.count;
    }
    if (covered > 0) {
        df::AccessSegment seg;
        seg.pages = covered;
        seg.effective = mem::Tier::Fast;
        out.push_back(seg);
        return;
    }
    // Host-resident head: the demand-fault path migrates and charges
    // per page — defer to the exact per-page adapter.
    df::MemoryPolicy::onRangeAccess(ex, run, is_write, out);
}

df::PageAccessResult
UnifiedMemoryPolicy::onPageAccess(df::Executor &ex, mem::PageId page,
                                  bool)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    if (hm.residentTier(page, now) == mem::Tier::Fast) {
        touchLru(page);
        return {};
    }

    // Demand fault: service + migration fully exposed.
    ++faults_;
    df::PageAccessResult out;
    out.extra = fault_cost_;

    if (hm.inFlight(page, now)) {
        // Eviction in flight; the fault must wait for it, then the
        // page comes back.
        out.extra += hm.arrivalTime(page) - now;
        out.effective = hm.slowestTier();
        return out;
    }

    if (hm.tier(mem::Tier::Fast).free() < mem::kPageSize)
        evictLru(ex, 32 * mem::kPageSize);

    std::array<mem::PageId, 1> one{ page };
    if (hm.migratePages(one, mem::Tier::Fast, now) == 1) {
        out.extra += hm.arrivalTime(page) - now;
        out.effective = mem::Tier::Fast;
        touchLru(page);
    } else {
        // Device still full (evictions in flight): the fault is
        // retried against the page's current host-side mapping.
        out.effective = hm.residentTier(page, now);
    }
    return out;
}

} // namespace sentinel::baselines
