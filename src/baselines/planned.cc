#include "baselines/planned.hh"

#include "common/logging.hh"
#include "dataflow/executor.hh"

namespace sentinel::baselines {

namespace {
constexpr std::uint64_t kInvalidAddr = ~0ull;
} // namespace

void
PlannedPolicy::onTrainingStart(df::Executor &ex)
{
    const df::Graph &graph = ex.graph();
    std::vector<plan::PlanTensor> tensors = plan::tensorsFromGraph(
        graph, /*include_preallocated=*/true, /*long_lived_only=*/false);
    plan_ = plan::assignOffsets(tensors, plan::Solver::Greedy, 64);

    // Fast iff the planned region fits under the page-aligned budget;
    // no page then straddles the fast/slow boundary.
    std::uint64_t cap = ex.hm().tier(mem::Tier::Fast).capacity();
    fast_budget_ = cap / mem::kPageSize * mem::kPageSize;

    addr_.assign(graph.numTensors(), kInvalidAddr);
    fast_.assign(graph.numTensors(), false);
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        std::uint64_t bytes = (tensors[i].bytes + 63) & ~63ull;
        addr_[tensors[i].id] = plan_.offsets[i];
        fast_[tensors[i].id] =
            plan_.offsets[i] + bytes <= fast_budget_;
    }
}

df::AllocDecision
PlannedPolicy::allocate(df::Executor &ex, const df::TensorDesc &tensor)
{
    SENTINEL_ASSERT(tensor.id < addr_.size() &&
                        addr_[tensor.id] != kInvalidAddr,
                    "tensor %u has no planned address", tensor.id);
    return { addr_[tensor.id], fast_[tensor.id]
                                   ? mem::Tier::Fast
                                   : ex.hm().slowestTier() };
}

std::unique_ptr<df::MemoryPolicy>
makePlanned()
{
    return std::make_unique<PlannedPolicy>();
}

} // namespace sentinel::baselines
