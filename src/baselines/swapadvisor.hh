/**
 * @file
 * SwapAdvisor — genetic-algorithm search over swap schedules.
 *
 * SwapAdvisor [8] searches the joint space of memory allocation and
 * swap scheduling with a genetic algorithm, evaluating candidates on a
 * dataflow simulator.  We reproduce that structure: a genome assigns
 * each long-lived tensor a placement priority and a prefetch lead (in
 * layers); fitness is an analytic estimate of step time from the
 * profile; a generation-bounded GA picks the best schedule, which then
 * runs with asynchronous moves.
 *
 * The paper's two findings about SwapAdvisor both emerge here:
 *  - the search is expensive (the real system needs ~30 minutes; we
 *    model the budget as a generation cap and report the estimated
 *    decision time);
 *  - the resulting schedule hides migration worse than Sentinel (81%
 *    more exposed migration), since leads are heuristic rather than
 *    derived from Eq. 1 / Eq. 2.
 */

#ifndef SENTINEL_BASELINES_SWAPADVISOR_HH
#define SENTINEL_BASELINES_SWAPADVISOR_HH

#include "baselines/swap_schedule.hh"
#include "common/rng.hh"
#include "profile/profile_db.hh"

namespace sentinel::baselines {

struct SwapAdvisorOptions {
    int population = 12;
    int generations = 6;
    double mutation_rate = 0.25;
    std::uint64_t seed = 0x5a9ad;
    /** Modeled wall-clock cost of one fitness evaluation. */
    Tick eval_cost = 50 * kMsec;

    /**
     * Fraction of each step consumed by the ongoing schedule search.
     * SwapAdvisor's GA keeps simulating candidate schedules against
     * the dataflow for ~30 minutes (Sec. VII-C); training proceeds
     * meanwhile but shares the host with the search and synchronizes
     * with it every step.
     */
    double search_overhead_fraction = 0.3;
};

class SwapAdvisorPolicy : public ScheduledSwapPolicy
{
  public:
    SwapAdvisorPolicy(const prof::ProfileDatabase &db,
                      bool gpu_strict = false,
                      SwapAdvisorOptions opts = {})
        : ScheduledSwapPolicy(gpu_strict ? "swapadvisor-gpu"
                                         : "swapadvisor",
                              /*sync_moves=*/false),
          db_(db), gpu_strict_(gpu_strict), opts_(opts)
    {
    }

    /** Modeled decision wall-clock (the "30 minutes" of the paper). */
    Tick
    decisionTimeEstimate() const
    {
        return static_cast<Tick>(opts_.population) * opts_.generations *
               opts_.eval_cost;
    }

    void onStepBegin(df::Executor &ex, int step) override;
    void onStepEnd(df::Executor &ex, int step) override;

  protected:
    void buildSchedule(df::Executor &ex) override;

  private:
    struct Gene {
        double priority = 0.0; ///< placement order key
        int lead = 1;          ///< prefetch lead in layers (1..4)
    };
    using Genome = std::vector<Gene>;

    /** Decode a genome into schedule structures; @return fitness est. */
    double evaluate(const Genome &genome, std::uint64_t fast_capacity,
                    double promote_bw, bool apply);

    const prof::ProfileDatabase &db_;
    bool gpu_strict_ = false;
    SwapAdvisorOptions opts_;
    Tick step_begin_ = 0;
    Tick last_step_time_ = 0;
    std::vector<df::TensorId> candidates_; ///< long-lived tensors
    double fast_read_bw_ = 60e9;           ///< set from the HM tiers
    double slow_read_bw_ = 8e9;
};

} // namespace sentinel::baselines

#endif // SENTINEL_BASELINES_SWAPADVISOR_HH
