#include "baselines/capuchin.hh"

#include <algorithm>

#include "baselines/autotm.hh" // useEpisodes()
#include "dataflow/cost_model.hh"

namespace sentinel::baselines {

void
CapuchinPolicy::buildSchedule(df::Executor &ex)
{
    const df::Graph &graph = ex.graph();
    std::uint64_t S = ex.hm().tier(mem::Tier::Fast).capacity();
    double promote_bw = ex.hm().promoteChannel().bandwidth();
    int L = db_.numLayers();

    recompute_at_.assign(static_cast<std::size_t>(L), {});
    discard_at_.assign(static_cast<std::size_t>(L), {});
    std::vector<std::uint64_t> ledger = transientLedger(db_);

    std::vector<df::TensorId> order;
    for (const auto &t : db_.tensors())
        if (!t.access_layers.empty())
            order.push_back(t.id);
    std::sort(order.begin(), order.end(),
              [this](df::TensorId a, df::TensorId b) {
                  double ha = db_.tensor(a).accesses_per_page;
                  double hb = db_.tensor(b).accesses_per_page;
                  if (ha != hb)
                      return ha > hb;
                  return a < b;
              });

    auto fits = [&](int begin, int end, std::uint64_t bytes) {
        for (int l = std::max(0, begin); l <= end; ++l)
            if (ledger[static_cast<std::size_t>(l)] + bytes > S)
                return false;
        return true;
    };
    auto claim = [&](int begin, int end, std::uint64_t bytes) {
        for (int l = std::max(0, begin); l <= end; ++l)
            ledger[static_cast<std::size_t>(l)] += bytes;
    };

    for (df::TensorId id : order) {
        const prof::TensorProfile &t = db_.tensor(id);
        if (!t.preallocated && t.lifetimeLayers() <= 2) {
            placement_[id] = Placement::PinFast; // transient, seeded
            continue;
        }

        if (fits(t.first_layer, t.last_layer, t.bytes)) {
            placement_[id] = Placement::PinFast;
            claim(t.first_layer, t.last_layer, t.bytes);
            continue;
        }

        auto episodes = useEpisodes(t.access_layers);

        // Swap if the fwd->bwd gap can hide the transfer.
        bool hideable = episodes.size() >= 2;
        if (hideable) {
            Tick transfer = transferTime(t.bytes, promote_bw);
            for (std::size_t e = 0; e + 1 < episodes.size(); ++e) {
                Tick gap = db_.layerSpanTime(episodes[e].second + 1,
                                             episodes[e + 1].first);
                // The swap must be hidden under the gap while sharing
                // the link with every other in-flight swap.
                hideable = hideable && transfer * 4 <= gap;
            }
        }
        bool space_ok = true;
        for (const auto &e : episodes)
            space_ok = space_ok && fits(e.first - 1, e.second, t.bytes);

        if (hideable && space_ok) {
            placement_[id] = Placement::Swap;
            for (const auto &e : episodes) {
                claim(e.first - 1, e.second, t.bytes);
                swap_in_at_[static_cast<std::size_t>(
                                std::max(0, e.first - 1))]
                    .push_back(id);
                swap_out_at_[static_cast<std::size_t>(e.second)]
                    .push_back(id);
            }
            continue;
        }

        // Recomputation: only activations have a replayable producer.
        // The tensor is born in device memory, DISCARDED (no transfer)
        // after its forward use, and rematerialized by replaying the
        // producer right before the backward use.
        const df::TensorDesc &desc = graph.tensor(id);
        bool recomputable = !desc.preallocated &&
                            desc.kind == df::TensorKind::Activation &&
                            episodes.size() >= 2;
        if (recomputable) {
            placement_[id] = Placement::PinFast; // born on device
            const df::Operation &producer =
                graph.op(static_cast<df::OpId>(desc.first_op));
            Tick cost = df::recomputeTime(producer, ex.params());
            // Resident only during use episodes: discarded after each,
            // rematerialized right before the next.
            for (std::size_t e = 0; e < episodes.size(); ++e) {
                claim(episodes[e].first, episodes[e].second, t.bytes);
                if (e + 1 < episodes.size()) {
                    discard_at_[static_cast<std::size_t>(
                                    episodes[e].second)]
                        .push_back(id);
                    recompute_at_[static_cast<std::size_t>(
                                      episodes[e + 1].first)]
                        .push_back(RecomputeEntry{ id, cost });
                }
            }
            ++recompute_count_;
            continue;
        }

        placement_[id] = gpu_strict_ ? Placement::Swap : Placement::Slow;
        if (gpu_strict_) {
            for (const auto &e : episodes) {
                swap_in_at_[static_cast<std::size_t>(e.first)]
                    .push_back(id);
                swap_out_at_[static_cast<std::size_t>(e.second)]
                    .push_back(id);
            }
        }
    }
}

void
CapuchinPolicy::teleportTensor(df::Executor &ex, df::TensorId id,
                               mem::Tier dst)
{
    if (!ex.isAllocated(id))
        return;
    const df::TensorPlacement &pl = ex.placementOf(id);
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p)
        ex.hm().teleportPage(p, dst, ex.now());
}

void
CapuchinPolicy::onLayerBegin(df::Executor &ex, int layer)
{
    ScheduledSwapPolicy::onLayerBegin(ex, layer);
    for (const RecomputeEntry &e :
         recompute_at_[static_cast<std::size_t>(layer)]) {
        if (!ex.isAllocated(e.id))
            continue;
        // Replay the producing op; the result materializes directly in
        // device memory — no transfer, but the compute is exposed.  If
        // the device is momentarily full, wait for in-flight evictions
        // (the recompute kernel cannot launch without its output
        // buffer).
        if (ex.hm().tier(mem::Tier::Fast).free() <
                mem::roundUpToPages(
                    ex.placementOf(e.id).bytes) &&
            ex.hm().demoteBusyUntil() > ex.now()) {
            ex.stallUntil(ex.hm().demoteBusyUntil());
        }
        ex.chargeRecompute(e.cost);
        teleportTensor(ex, e.id, mem::Tier::Fast);
    }
}

void
CapuchinPolicy::onLayerEnd(df::Executor &ex, int layer)
{
    ScheduledSwapPolicy::onLayerEnd(ex, layer);
    // Discards free device memory instantly and move no bytes.
    for (df::TensorId id :
         discard_at_[static_cast<std::size_t>(layer)])
        teleportTensor(ex, id, ex.hm().slowestTier());
}

} // namespace sentinel::baselines
