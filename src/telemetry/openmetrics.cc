#include "telemetry/openmetrics.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace sentinel::telemetry {

namespace {

bool
omNameChar(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':')
        return true;
    return !first && c >= '0' && c <= '9';
}

const std::string kEmpty;

} // namespace

const std::string &
OmSample::label(const std::string &key) const
{
    for (const OmLabel &l : labels)
        if (l.key == key)
            return l.value;
    return kEmpty;
}

std::string
omSanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (std::size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (i == 0 && c >= '0' && c <= '9')
            out += '_';
        out += omNameChar(c, /*first=*/out.empty()) ? c : '_';
    }
    if (out.empty())
        out.push_back('_');
    return out;
}

std::string
omEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
omFormatValue(double v)
{
    // Integral values print without an exponent or trailing zeros so
    // the exposition stays grep-friendly; everything else gets enough
    // digits to round-trip.
    if (v == static_cast<double>(static_cast<long long>(v)))
        return strprintf("%lld", static_cast<long long>(v));
    return strprintf("%.10g", v);
}

void
omWriteType(std::ostream &os, const std::string &name, const char *type)
{
    os << "# TYPE " << name << ' ' << type << '\n';
}

void
omWriteSample(std::ostream &os, const std::string &name,
              const std::vector<OmLabel> &labels, double value)
{
    os << name;
    if (!labels.empty()) {
        os << '{';
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (i)
                os << ',';
            os << labels[i].key << "=\"" << omEscapeLabel(labels[i].value)
               << '"';
        }
        os << '}';
    }
    os << ' ' << omFormatValue(value) << '\n';
}

void
omWriteEof(std::ostream &os)
{
    os << "# EOF\n";
}

void
writeOpenMetrics(const MetricRegistry &metrics, std::ostream &os,
                 const std::vector<OmLabel> &labels)
{
    for (const MetricRow &r : metrics.snapshot()) {
        std::string name = omSanitizeName(r.name);
        if (r.kind == "counter") {
            name += "_total";
            omWriteType(os, name, "counter");
            omWriteSample(os, name, labels, static_cast<double>(r.sum));
        } else if (r.kind == "gauge") {
            omWriteType(os, name, "gauge");
            omWriteSample(os, name, labels, static_cast<double>(r.max));
        } else {
            omWriteType(os, name, "summary");
            std::vector<OmLabel> ql = labels;
            ql.push_back({ "quantile", "0.5" });
            omWriteSample(os, name, ql, static_cast<double>(r.p50));
            ql.back().value = "0.99";
            omWriteSample(os, name, ql, static_cast<double>(r.p99));
            omWriteSample(os, name + "_count", labels,
                          static_cast<double>(r.count));
            omWriteSample(os, name + "_sum", labels,
                          static_cast<double>(r.sum));
        }
    }
}

namespace {

bool
fail(std::string *err, std::size_t line_no, const char *what)
{
    if (err)
        *err = strprintf("line %zu: %s", line_no, what);
    return false;
}

} // namespace

bool
parseOpenMetrics(const std::string &text, std::vector<OmSample> &out,
                 std::string *err)
{
    std::size_t pos = 0, line_no = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;

        OmSample s;
        std::size_t i = 0;
        while (i < line.size() && omNameChar(line[i], i == 0))
            ++i;
        if (i == 0)
            return fail(err, line_no, "expected a metric name");
        s.name = line.substr(0, i);

        if (i < line.size() && line[i] == '{') {
            ++i;
            while (i < line.size() && line[i] != '}') {
                OmLabel l;
                std::size_t k = i;
                while (k < line.size() && omNameChar(line[k], k == i))
                    ++k;
                if (k == i || k >= line.size() || line[k] != '=')
                    return fail(err, line_no, "malformed label");
                l.key = line.substr(i, k - i);
                i = k + 1;
                if (i >= line.size() || line[i] != '"')
                    return fail(err, line_no, "label value not quoted");
                ++i;
                while (i < line.size() && line[i] != '"') {
                    char c = line[i];
                    if (c == '\\' && i + 1 < line.size()) {
                        ++i;
                        c = line[i] == 'n' ? '\n' : line[i];
                    }
                    l.value += c;
                    ++i;
                }
                if (i >= line.size())
                    return fail(err, line_no, "unterminated label value");
                ++i; // closing quote
                if (i < line.size() && line[i] == ',')
                    ++i;
                s.labels.push_back(std::move(l));
            }
            if (i >= line.size())
                return fail(err, line_no, "unterminated label set");
            ++i; // closing brace
        }

        while (i < line.size() && line[i] == ' ')
            ++i;
        if (i >= line.size())
            return fail(err, line_no, "sample has no value");
        char *end = nullptr;
        s.value = std::strtod(line.c_str() + i, &end);
        if (end == line.c_str() + i)
            return fail(err, line_no, "unparsable value");
        out.push_back(std::move(s));
    }
    return true;
}

std::vector<std::string>
splitScrapeFrames(const std::string &text)
{
    std::vector<std::string> frames;
    const std::string eof = "# EOF\n";
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t at = text.find(eof, pos);
        if (at == std::string::npos)
            break;
        frames.push_back(text.substr(pos, at + eof.size() - pos));
        pos = at + eof.size();
    }
    return frames;
}

} // namespace sentinel::telemetry
