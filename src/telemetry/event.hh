/**
 * @file
 * The structured event model of the telemetry subsystem.
 *
 * Every interesting runtime occurrence — an operation executing, a
 * prefetch being issued, a migration transfer, a stall on the critical
 * path, an interval boundary, a profiling fault, a policy decision —
 * is recorded as one fixed-size POD Event.  Events are cheap to emit
 * (a struct copy into a ring buffer, no allocation, no formatting) so
 * the instrumented hot paths stay hot; all interpretation (names,
 * track layout, JSON) happens at export time.
 */

#ifndef SENTINEL_TELEMETRY_EVENT_HH
#define SENTINEL_TELEMETRY_EVENT_HH

#include <cstdint>

#include "common/units.hh"

namespace sentinel::telemetry {

/** What happened.  The taxonomy mirrors the runtime's moving parts. */
enum class EventType : std::uint8_t {
    StepBegin,      ///< training step starts (id = step index)
    StepEnd,        ///< training step ends (id = step index)
    OpBegin,        ///< operation starts executing (id = OpId)
    OpEnd,          ///< operation finished (id = OpId)
    Stall,          ///< exposed migration wait (dur = stall length)
    ProfilingFault, ///< PTE-poisoning fault overhead (dur = cost)
    PolicyDecision, ///< policy overhead charged (dur = cost)
    IntervalBegin,  ///< migration interval boundary (id = interval)
    PrefetchIssued, ///< policy queued a tensor promotion (id = TensorId)
    Promotion,      ///< slow->fast DMA batch (dur = transfer window)
    Demotion,       ///< fast->slow DMA batch (dur = transfer window)
    DivergenceDetected, ///< observed step diverged from plan (id = step)
    Replan,         ///< mid-training re-plan (id = step, dur = cost)
    SloBurnAlert,   ///< SLO error budget burning too fast (id = job,
                    ///< bytes = burn rate in 1/1000ths)
};

constexpr std::size_t kNumEventTypes = 14;

/** Stable lower-case name of @p t (used in exports and tests). */
const char *eventTypeName(EventType t);

/**
 * One telemetry record.  32 bytes, trivially copyable; the meaning of
 * `id` and `bytes` depends on `type` (see EventType comments).
 */
struct Event {
    Tick ts = 0;              ///< simulated time of the event (ns)
    Tick dur = 0;             ///< duration for span-like events (ns)
    std::uint64_t bytes = 0;  ///< payload size, when meaningful
    std::uint32_t id = 0;     ///< op / tensor / interval / step id
    EventType type = EventType::StepBegin;
    std::uint8_t track = 0;   ///< reserved channel hint (0 = default)
};

static_assert(sizeof(Event) <= 32, "Event must stay ring-buffer small");

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_EVENT_HH
