/**
 * @file
 * Bounded event storage: a fixed-capacity overwrite-oldest ring.
 *
 * The sink is built for the simulator's single-threaded hot loop but
 * keeps a lock-free-friendly layout (one monotonically increasing
 * write cursor over a power-of-two slot array, no pointers, no
 * per-emit allocation) so a future multi-threaded executor can swap in
 * atomic cursors without changing the interface.
 *
 * Overflow policy: the newest events win.  A trace is most useful near
 * the point where something interesting happened, which is usually the
 * end of the run; `dropped()` reports how much history was lost.
 */

#ifndef SENTINEL_TELEMETRY_EVENT_SINK_HH
#define SENTINEL_TELEMETRY_EVENT_SINK_HH

#include <cstdint>
#include <vector>

#include "telemetry/event.hh"

namespace sentinel::telemetry {

class EventSink
{
  public:
    /** @param capacity slot count; rounded up to a power of two. */
    explicit EventSink(std::size_t capacity);

    /** Record @p e, overwriting the oldest event when full. */
    void
    emit(const Event &e)
    {
        buf_[static_cast<std::size_t>(head_) & mask_] = e;
        ++head_;
    }

    std::size_t capacity() const { return buf_.size(); }

    /** Events currently retained (<= capacity). */
    std::size_t
    size() const
    {
        return head_ < buf_.size() ? static_cast<std::size_t>(head_)
                                   : buf_.size();
    }

    /** Total events ever emitted, including overwritten ones. */
    std::uint64_t totalEmitted() const { return head_; }

    /** Events lost to overflow. */
    std::uint64_t
    dropped() const
    {
        return head_ > buf_.size() ? head_ - buf_.size() : 0;
    }

    /** Retained events, oldest first. */
    std::vector<Event> snapshot() const;

    void clear() { head_ = 0; }

  private:
    std::vector<Event> buf_;
    std::uint64_t head_ = 0;
    std::size_t mask_ = 0;
};

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_EVENT_SINK_HH
