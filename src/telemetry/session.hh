/**
 * @file
 * One telemetry session: an event sink plus a metric registry.
 *
 * Instrumented components (`df::Executor`, `mem::HeterogeneousMemory`,
 * `core::SentinelPolicy`, `prof::Profiler`) hold a `Session *` that is
 * null by default.  Disabled telemetry therefore costs exactly one
 * well-predicted branch per hook — no allocation, no virtual call, no
 * formatting — which is what keeps bench_micro's step time unchanged
 * when tracing is off.
 *
 * Sessions are externally owned (by `core::Runtime`, a bench, or a
 * test) and can outlive the executors they observed, so exports can
 * happen after the run tears down.
 */

#ifndef SENTINEL_TELEMETRY_SESSION_HH
#define SENTINEL_TELEMETRY_SESSION_HH

#include <cstdint>

#include "common/logging.hh"
#include "telemetry/event_sink.hh"
#include "telemetry/metrics.hh"
#include "telemetry/timeseries.hh"

namespace sentinel::telemetry {

struct TelemetryConfig {
    /** Master switch; components are only attached when true. */
    bool enabled = false;

    /** Ring capacity in events (rounded up to a power of two). */
    std::size_t ring_capacity = 1u << 16;
};

class Session
{
  public:
    explicit Session(TelemetryConfig cfg = { true, 1u << 16 })
        : cfg_(cfg), sink_(cfg.ring_capacity)
    {
    }

    const TelemetryConfig &config() const { return cfg_; }

    EventSink &events() { return sink_; }
    const EventSink &events() const { return sink_; }

    MetricRegistry &metrics() { return metrics_; }
    const MetricRegistry &metrics() const { return metrics_; }

    /**
     * Attach (or detach, with null) a caller-owned step board: the
     * live per-step time-series plane.  Attached before the run, the
     * executor feeds it at every step boundary; its rings are sized at
     * construction, so the feed keeps the steady-state loop
     * allocation-free (see timeseries.hh).
     */
    void attachStepBoard(StepBoard *board) { board_ = board; }
    StepBoard *stepBoard() { return board_; }
    const StepBoard *stepBoard() const { return board_; }

    /** Convenience emitter used by the instrumentation hooks. */
    void
    emit(EventType type, Tick ts, Tick dur = 0, std::uint64_t bytes = 0,
         std::uint32_t id = 0, std::uint8_t track = 0)
    {
        sink_.emit(Event{ ts, dur, bytes, id, type, track });
    }

    /**
     * Drop recorded events (metric instruments stay in place — attached
     * components hold stable pointers into the registry).
     */
    void
    clearEvents()
    {
        sink_.clear();
        synced_drops_ = 0;
    }

    /**
     * Publish the ring's overflow count as the
     * "telemetry.events_dropped" counter (delta since the last sync,
     * so repeated calls never double-count) and warn once per session
     * when history was lost.  Call at export time: silent event loss
     * would skew any analysis — attribution cross-checks in
     * particular — that treats the ring as complete.
     */
    void
    syncDropCounter()
    {
        std::uint64_t d = sink_.dropped();
        if (d <= synced_drops_)
            return;
        metrics_.counter("telemetry.events_dropped").add(d - synced_drops_);
        synced_drops_ = d;
        if (!warned_drops_) {
            warned_drops_ = true;
            SENTINEL_WARN("telemetry ring overflowed: %llu events lost "
                          "(capacity %zu); raise --ring-capacity for "
                          "complete traces",
                          static_cast<unsigned long long>(d),
                          sink_.capacity());
        }
    }

  private:
    TelemetryConfig cfg_;
    EventSink sink_;
    MetricRegistry metrics_;
    StepBoard *board_ = nullptr;
    std::uint64_t synced_drops_ = 0;
    bool warned_drops_ = false;
};

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_SESSION_HH
