#include "telemetry/export.hh"

#include <fstream>

namespace sentinel::telemetry {

void
writeMetricsCsv(const MetricRegistry &metrics, std::ostream &os)
{
    os << "name,kind,count,sum,min,max,p50,p99\n";
    for (const MetricRow &r : metrics.snapshot()) {
        os << r.name << ',' << r.kind << ',' << r.count << ',' << r.sum
           << ',' << r.min << ',' << r.max << ',' << r.p50 << ','
           << r.p99 << '\n';
    }
}

void
writeMetricsJson(const MetricRegistry &metrics, std::ostream &os)
{
    std::vector<MetricRow> rows = metrics.snapshot();
    os << "{\"metrics\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const MetricRow &r = rows[i];
        os << (i ? ",\n" : "\n") << "{\"name\":\"" << r.name
           << "\",\"kind\":\"" << r.kind << "\",\"count\":" << r.count
           << ",\"sum\":" << r.sum << ",\"min\":" << r.min
           << ",\"max\":" << r.max << ",\"p50\":" << r.p50
           << ",\"p99\":" << r.p99 << "}";
    }
    os << "\n]}\n";
}

bool
saveMetrics(const MetricRegistry &metrics, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        writeMetricsCsv(metrics, out);
    else
        writeMetricsJson(metrics, out);
    return static_cast<bool>(out);
}

} // namespace sentinel::telemetry
