#include "telemetry/export.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace sentinel::telemetry {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        out += c;
        if (c == '"')
            out += '"';
    }
    out += '"';
    return out;
}

void
writeMetricsCsv(const MetricRegistry &metrics, std::ostream &os)
{
    os << "name,kind,count,sum,min,max,p50,p99\n";
    for (const MetricRow &r : metrics.snapshot()) {
        os << csvField(r.name) << ',' << csvField(r.kind) << ','
           << r.count << ',' << r.sum << ',' << r.min << ',' << r.max
           << ',' << r.p50 << ',' << r.p99 << '\n';
    }
}

void
writeMetricsJson(const MetricRegistry &metrics, std::ostream &os)
{
    std::vector<MetricRow> rows = metrics.snapshot();
    os << "{\"metrics\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const MetricRow &r = rows[i];
        os << (i ? ",\n" : "\n") << "{\"name\":\"" << jsonEscape(r.name)
           << "\",\"kind\":\"" << jsonEscape(r.kind)
           << "\",\"count\":" << r.count << ",\"sum\":" << r.sum
           << ",\"min\":" << r.min << ",\"max\":" << r.max
           << ",\"p50\":" << r.p50 << ",\"p99\":" << r.p99 << "}";
    }
    os << "\n]}\n";
}

bool
saveMetrics(const MetricRegistry &metrics, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        writeMetricsCsv(metrics, out);
    else
        writeMetricsJson(metrics, out);
    return static_cast<bool>(out);
}

namespace {

[[noreturn]] void
dumpError(const std::string &path, const std::string &what)
{
    throw std::runtime_error(
        strprintf("metrics dump '%s': %s", path.c_str(), what.c_str()));
}

/** Unescape the subset jsonEscape emits; @p i sits on the opening
 *  quote and lands one past the closing quote. */
std::string
jsonUnstring(const std::string &s, std::size_t &i)
{
    std::string out;
    ++i; // opening quote
    while (i < s.size() && s[i] != '"') {
        char c = s[i];
        if (c == '\\' && i + 1 < s.size()) {
            ++i;
            switch (s[i]) {
              case 'n':
                c = '\n';
                break;
              case 't':
                c = '\t';
                break;
              case 'u': {
                unsigned v = 0;
                if (i + 4 < s.size())
                    v = static_cast<unsigned>(
                        std::strtoul(s.substr(i + 1, 4).c_str(), nullptr,
                                     16));
                i += 4;
                c = static_cast<char>(v);
                break;
              }
              default:
                c = s[i]; // \" and \\ (and anything else, verbatim)
            }
        }
        out += c;
        ++i;
    }
    ++i; // closing quote
    return out;
}

std::vector<MetricRow>
parseJsonDump(const std::string &path, const std::string &text)
{
    std::vector<MetricRow> rows;
    std::size_t i = 0;
    while ((i = text.find('{', i + 1)) != std::string::npos) {
        // One row object per '{' after the document root.
        MetricRow r;
        std::size_t end = i;
        bool saw_name = false;
        while (end < text.size() && text[end] != '}') {
            std::size_t k = text.find('"', end);
            if (k == std::string::npos)
                dumpError(path, "unterminated row object");
            std::size_t at = k;
            std::string key = jsonUnstring(text, at);
            std::size_t colon = text.find(':', at);
            if (colon == std::string::npos)
                dumpError(path, "key without value");
            std::size_t v = colon + 1;
            if (key == "name" || key == "kind") {
                while (v < text.size() && text[v] != '"')
                    ++v;
                std::string sval = jsonUnstring(text, v);
                (key == "name" ? r.name : r.kind) = sval;
                if (key == "name")
                    saw_name = true;
            } else {
                char *num_end = nullptr;
                double num = std::strtod(text.c_str() + v, &num_end);
                if (num_end == text.c_str() + v)
                    dumpError(path, "unparsable number for " + key);
                auto u = static_cast<std::uint64_t>(num);
                if (key == "count")
                    r.count = u;
                else if (key == "sum")
                    r.sum = u;
                else if (key == "min")
                    r.min = u;
                else if (key == "max")
                    r.max = u;
                else if (key == "p50")
                    r.p50 = u;
                else if (key == "p99")
                    r.p99 = u;
                v = static_cast<std::size_t>(num_end - text.c_str());
            }
            end = v;
            while (end < text.size() && text[end] != ',' &&
                   text[end] != '}')
                ++end;
            if (end < text.size() && text[end] == ',')
                ++end;
        }
        if (saw_name)
            rows.push_back(std::move(r));
        i = end;
    }
    return rows;
}

/** Split one CSV line honoring quoted fields. */
std::vector<std::string>
csvSplit(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            out.push_back(std::move(cur));
            cur.clear();
        } else if (c != '\r') {
            cur += c;
        }
    }
    out.push_back(std::move(cur));
    return out;
}

/** Unbalanced quotes mean a quoted field continues past the newline
 *  (RFC 4180 allows embedded line breaks). */
bool
csvRowIsOpen(const std::string &row)
{
    std::size_t quotes = 0;
    for (char c : row)
        quotes += c == '"';
    return quotes % 2 != 0;
}

std::vector<MetricRow>
parseCsvDump(const std::string &path, std::istream &is)
{
    std::vector<MetricRow> rows;
    std::string line;
    bool header = true;
    while (std::getline(is, line)) {
        if (header) {
            header = false;
            continue;
        }
        if (line.empty())
            continue;
        std::string next;
        while (csvRowIsOpen(line) && std::getline(is, next))
            line += '\n' + next;
        std::vector<std::string> f = csvSplit(line);
        if (f.size() != 8)
            dumpError(path, strprintf("CSV row with %zu fields (want 8)",
                                      f.size()));
        MetricRow r;
        r.name = f[0];
        r.kind = f[1];
        r.count = std::strtoull(f[2].c_str(), nullptr, 10);
        r.sum = std::strtoull(f[3].c_str(), nullptr, 10);
        r.min = std::strtoull(f[4].c_str(), nullptr, 10);
        r.max = std::strtoull(f[5].c_str(), nullptr, 10);
        r.p50 = std::strtoull(f[6].c_str(), nullptr, 10);
        r.p99 = std::strtoull(f[7].c_str(), nullptr, 10);
        rows.push_back(std::move(r));
    }
    return rows;
}

} // namespace

std::vector<MetricRow>
loadMetricsDump(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        dumpError(path, "cannot open");
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();

    std::size_t first = text.find_first_not_of(" \t\r\n");
    std::vector<MetricRow> rows;
    if (first != std::string::npos && text[first] == '{') {
        rows = parseJsonDump(path, text);
    } else {
        std::istringstream ss(text);
        rows = parseCsvDump(path, ss);
    }
    std::sort(rows.begin(), rows.end(),
              [](const MetricRow &a, const MetricRow &b) {
                  return a.name < b.name;
              });
    return rows;
}

} // namespace sentinel::telemetry
