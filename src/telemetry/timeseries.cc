#include "telemetry/timeseries.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::telemetry {

TimeSeries::TimeSeries(TimeSeriesOptions opts) : opts_(opts)
{
    SENTINEL_ASSERT(opts_.capacity > 0, "time series needs capacity");
    SENTINEL_ASSERT(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0,
                    "ewma alpha %g outside (0, 1]", opts_.ewma_alpha);
    if (opts_.window == 0 || opts_.window > opts_.capacity)
        opts_.window = opts_.capacity;
    ring_.assign(opts_.capacity, 0);
}

void
TimeSeries::push(std::uint64_t v)
{
    // The sample leaving the window (if any) is still in the ring:
    // window <= capacity, so slot (total - window) has not been
    // overwritten yet.
    if (total_ >= opts_.window)
        window_sum_ -= ring_[static_cast<std::size_t>(
            (total_ - opts_.window) % opts_.capacity)];
    window_sum_ += v;
    ring_[static_cast<std::size_t>(total_ % opts_.capacity)] = v;
    ++total_;
    double x = static_cast<double>(v);
    ewma_ = total_ == 1 ? x : ewma_ + opts_.ewma_alpha * (x - ewma_);
    sketch_.record(v);
}

void
TimeSeries::pushAt(std::uint64_t v, Tick now)
{
    if (last_tick_ >= 0 && now > last_tick_) {
        double rate = static_cast<double>(v) / toSeconds(now - last_tick_);
        ewma_rate_ = ewma_rate_ == 0.0
                         ? rate
                         : ewma_rate_ +
                               opts_.ewma_alpha * (rate - ewma_rate_);
    }
    last_tick_ = now;
    push(v);
}

std::uint64_t
TimeSeries::last() const
{
    if (total_ == 0)
        return 0;
    return ring_[static_cast<std::size_t>((total_ - 1) % opts_.capacity)];
}

WindowStats
TimeSeries::window() const
{
    WindowStats w;
    std::uint64_t n = std::min<std::uint64_t>(total_, opts_.window);
    if (n == 0)
        return w;
    w.count = static_cast<std::size_t>(n);
    w.sum = window_sum_;
    w.min = ~0ull;
    for (std::uint64_t i = total_ - n; i < total_; ++i) {
        std::uint64_t v =
            ring_[static_cast<std::size_t>(i % opts_.capacity)];
        w.min = std::min(w.min, v);
        w.max = std::max(w.max, v);
    }
    w.mean = static_cast<double>(w.sum) / static_cast<double>(n);
    return w;
}

std::uint64_t
TimeSeries::sample(std::size_t i) const
{
    SENTINEL_ASSERT(i < retained(), "sample %zu of %zu retained", i,
                    retained());
    std::uint64_t first = total_ > opts_.capacity ? total_ - opts_.capacity
                                                  : 0;
    return ring_[static_cast<std::size_t>((first + i) % opts_.capacity)];
}

std::size_t
TimeSeries::retained() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(total_, opts_.capacity));
}

void
TimeSeries::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0);
    total_ = 0;
    window_sum_ = 0;
    ewma_ = 0.0;
    ewma_rate_ = 0.0;
    last_tick_ = -1;
    sketch_.reset();
}

const char *
stepSeriesName(StepSeries s)
{
    switch (s) {
      case StepSeries::StepTime:
        return "step_time_ns";
      case StepSeries::ExposedMigration:
        return "exposed_migration_ns";
      case StepSeries::PolicyTime:
        return "policy_time_ns";
      case StepSeries::PromotedBytes:
        return "promoted_bytes";
      case StepSeries::DemotedBytes:
        return "demoted_bytes";
      case StepSeries::SlowBytes:
        return "slow_bytes";
      case StepSeries::PeakFastUsed:
        return "peak_fast_used_bytes";
      case StepSeries::Stalls:
        return "stalls";
    }
    return "unknown";
}

StepBoard::StepBoard(TimeSeriesOptions opts)
    : series_{ TimeSeries(opts), TimeSeries(opts), TimeSeries(opts),
               TimeSeries(opts), TimeSeries(opts), TimeSeries(opts),
               TimeSeries(opts), TimeSeries(opts) }
{
    static_assert(kNumStepSeries == 8,
                  "update the StepBoard initializer with the enum");
}

TimeSeries &
StepBoard::series(StepSeries s)
{
    auto i = static_cast<std::size_t>(s);
    SENTINEL_ASSERT(i < kNumStepSeries, "StepSeries %zu out of range", i);
    return series_[i];
}

const TimeSeries &
StepBoard::series(StepSeries s) const
{
    auto i = static_cast<std::size_t>(s);
    SENTINEL_ASSERT(i < kNumStepSeries, "StepSeries %zu out of range", i);
    return series_[i];
}

void
StepBoard::reset()
{
    for (TimeSeries &ts : series_)
        ts.reset();
    steps_ = 0;
    last_tick_ = -1;
}

} // namespace sentinel::telemetry
