#include "telemetry/event_sink.hh"

#include <bit>

namespace sentinel::telemetry {

EventSink::EventSink(std::size_t capacity)
{
    if (capacity < 2)
        capacity = 2;
    capacity = std::bit_ceil(capacity);
    buf_.resize(capacity);
    mask_ = capacity - 1;
}

std::vector<Event>
EventSink::snapshot() const
{
    std::vector<Event> out;
    std::size_t n = size();
    out.reserve(n);
    std::uint64_t first = head_ - n;
    for (std::uint64_t i = first; i < head_; ++i)
        out.push_back(buf_[static_cast<std::size_t>(i) & mask_]);
    return out;
}

} // namespace sentinel::telemetry
