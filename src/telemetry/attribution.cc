#include "telemetry/attribution.hh"

#include "common/logging.hh"
#include "telemetry/event.hh"

namespace sentinel::telemetry {

const char *
attrComponentName(AttrComponent c)
{
    switch (c) {
      case AttrComponent::Execution:
        return "execution";
      case AttrComponent::Exposed:
        return "exposed";
      case AttrComponent::Alloc:
        return "alloc";
      case AttrComponent::Policy:
        return "policy";
      case AttrComponent::Fault:
        return "fault";
      case AttrComponent::Recompute:
        return "recompute";
    }
    return "?";
}

Tick
AttrBucket::total() const
{
    Tick sum = 0;
    for (Tick t : ticks)
        sum += t;
    return sum;
}

Tick
AttrBucket::exposedMigration() const
{
    return component(AttrComponent::Exposed) +
           component(AttrComponent::Alloc);
}

void
AttrBucket::add(const AttrBucket &o)
{
    for (std::size_t i = 0; i < kNumAttrComponents; ++i)
        ticks[i] += o.ticks[i];
    stall_events += o.stall_events;
    promoted_bytes += o.promoted_bytes;
    demoted_bytes += o.demoted_bytes;
}

bool
StepAttribution::exact() const
{
    return bucket.total() == step_time &&
           bucket.exposedMigration() == exposed_migration &&
           bucket.component(AttrComponent::Policy) == policy_time &&
           bucket.component(AttrComponent::Fault) == fault_overhead &&
           bucket.component(AttrComponent::Recompute) == recompute_time &&
           bucket.stall_events == num_stalls;
}

void
AttributionEngine::beginStep(int step, Tick now)
{
    (void)now;
    SENTINEL_ASSERT(!in_step_, "beginStep(%d) while step %d still open",
                    step, step_);
    in_step_ = true;
    step_ = step;
    layer_ = -1;
    access_tensor_ = kAttrNoTensor;
    alloc_tensor_ = kAttrNoTensor;
    in_alloc_ = false;
    current_ = AttrBucket{};
}

void
AttributionEngine::endStep(Tick step_time, Tick exposed_migration,
                           Tick policy_time, Tick fault_overhead,
                           Tick recompute_time, std::uint64_t num_stalls)
{
    SENTINEL_ASSERT(in_step_, "endStep without a matching beginStep");
    in_step_ = false;

    StepAttribution sa;
    sa.step = step_;
    sa.bucket = current_;
    sa.step_time = step_time;
    sa.exposed_migration = exposed_migration;
    sa.policy_time = policy_time;
    sa.fault_overhead = fault_overhead;
    sa.recompute_time = recompute_time;
    sa.num_stalls = num_stalls;

    if (!sa.exact()) {
        SENTINEL_PANIC(
            "attribution drift in step %d: attributed total %lld "
            "(exec %lld exposed %lld alloc %lld policy %lld fault %lld "
            "recompute %lld, %llu stalls) vs StepStats step_time %lld "
            "exposed_migration %lld policy %lld fault %lld recompute "
            "%lld num_stalls %llu",
            step_, static_cast<long long>(sa.bucket.total()),
            static_cast<long long>(
                sa.bucket.component(AttrComponent::Execution)),
            static_cast<long long>(
                sa.bucket.component(AttrComponent::Exposed)),
            static_cast<long long>(
                sa.bucket.component(AttrComponent::Alloc)),
            static_cast<long long>(
                sa.bucket.component(AttrComponent::Policy)),
            static_cast<long long>(
                sa.bucket.component(AttrComponent::Fault)),
            static_cast<long long>(
                sa.bucket.component(AttrComponent::Recompute)),
            static_cast<unsigned long long>(sa.bucket.stall_events),
            static_cast<long long>(step_time),
            static_cast<long long>(exposed_migration),
            static_cast<long long>(policy_time),
            static_cast<long long>(fault_overhead),
            static_cast<long long>(recompute_time),
            static_cast<unsigned long long>(num_stalls));
    }
    steps_.push_back(sa);
    exposed_cum_ += sa.bucket.exposedMigration();
    // The per-link decomposition must stay exact too: every exposed /
    // alloc tick was routed to exactly one link slot.
    Tick link_sum = 0;
    for (const LinkAttr &la : link_slots_)
        link_sum += la.exposedMigration();
    if (link_sum != exposed_cum_) {
        SENTINEL_PANIC(
            "per-link attribution drift after step %d: link slots sum "
            "to %lld exposed ticks, engine attributed %lld",
            sa.step, static_cast<long long>(link_sum),
            static_cast<long long>(exposed_cum_));
    }
    step_ = -1;
    layer_ = -1;
}

void
AttributionEngine::beginAlloc(std::uint32_t tensor)
{
    SENTINEL_ASSERT(!in_alloc_, "nested tensor allocation");
    in_alloc_ = true;
    alloc_tensor_ = tensor;
}

void
AttributionEngine::endAlloc()
{
    in_alloc_ = false;
    alloc_tensor_ = kAttrNoTensor;
}

void
AttributionEngine::charge(AttrComponent c, Tick t, std::uint64_t events)
{
    if (!in_step_ || (t == 0 && events == 0))
        return;
    maps_stale_ = true;
    current_.ticks[static_cast<std::size_t>(c)] += t;
    current_.stall_events += events;

    AttrBucket &layer =
        slotAt(layer_slots_, static_cast<std::size_t>(layer_ + 1));
    layer.ticks[static_cast<std::size_t>(c)] += t;
    layer.stall_events += events;

    AttrBucket &interval =
        slotAt(interval_slots_, static_cast<std::size_t>(interval_ + 1));
    interval.ticks[static_cast<std::size_t>(c)] += t;
    interval.stall_events += events;

    if (c == AttrComponent::Exposed || c == AttrComponent::Alloc) {
        std::uint32_t tensor =
            in_alloc_ ? alloc_tensor_ : access_tensor_;
        // tensor + 1 wraps kAttrNoTensor (~0u) to slot 0.
        TensorAttr &ta = slotAt(
            tensor_slots_, static_cast<std::size_t>(
                               static_cast<std::uint32_t>(tensor + 1)));
        if (c == AttrComponent::Alloc)
            ta.alloc += t;
        else
            ta.exposed += t;
        ta.stall_events += events;

        // Per-link decomposition: each exposed tick belongs to the one
        // link the executor is blocking on (link 0 unless set).
        LinkAttr &la =
            slotAt(link_slots_, static_cast<std::size_t>(stall_link_));
        if (c == AttrComponent::Alloc)
            la.alloc += t;
        else
            la.exposed += t;
        la.stall_events += events;
    }
}

void
AttributionEngine::chargeExecution(Tick t)
{
    charge(AttrComponent::Execution, t, 0);
}

void
AttributionEngine::chargeExposed(Tick t, std::uint64_t events)
{
    // Stalls raised while an allocation is in flight are the
    // allocation's fault (evict-for-space waits), not the access path's.
    charge(in_alloc_ ? AttrComponent::Alloc : AttrComponent::Exposed, t,
           events);
}

void
AttributionEngine::chargePolicy(Tick t)
{
    charge(AttrComponent::Policy, t, 0);
}

void
AttributionEngine::chargeFault(Tick t)
{
    charge(AttrComponent::Fault, t, 0);
}

void
AttributionEngine::chargeRecompute(Tick t)
{
    charge(AttrComponent::Recompute, t, 0);
}

void
AttributionEngine::noteMigration(bool promote, std::uint64_t bytes)
{
    noteMigration(0, promote, bytes);
}

void
AttributionEngine::noteMigration(unsigned link, bool promote,
                                 std::uint64_t bytes)
{
    if (!in_step_)
        return;
    maps_stale_ = true;
    if (promote)
        current_.promoted_bytes += bytes;
    else
        current_.demoted_bytes += bytes;
    AttrBucket &layer =
        slotAt(layer_slots_, static_cast<std::size_t>(layer_ + 1));
    AttrBucket &interval =
        slotAt(interval_slots_, static_cast<std::size_t>(interval_ + 1));
    LinkAttr &la = slotAt(link_slots_, static_cast<std::size_t>(link));
    if (promote) {
        layer.promoted_bytes += bytes;
        interval.promoted_bytes += bytes;
        la.promoted_bytes += bytes;
    } else {
        layer.demoted_bytes += bytes;
        interval.demoted_bytes += bytes;
        la.demoted_bytes += bytes;
    }
}

AttrBucket
AttributionEngine::totals() const
{
    AttrBucket sum;
    for (const StepAttribution &sa : steps_)
        sum.add(sa.bucket);
    return sum;
}

bool
AttributionEngine::allExact() const
{
    for (const StepAttribution &sa : steps_)
        if (!sa.exact())
            return false;
    return true;
}

bool
AttributionEngine::crossCheckEvents(const EventSink &sink,
                                    std::string *why) const
{
    if (sink.dropped() > 0) {
        // The ring lost history; the surviving Stall events are a
        // subset and cannot be expected to sum to the attributed total.
        if (why)
            *why = strprintf("indeterminate: ring dropped %llu events",
                             static_cast<unsigned long long>(
                                 sink.dropped()));
        return true;
    }
    Tick event_stall = 0;
    std::uint64_t event_count = 0;
    for (const Event &e : sink.snapshot()) {
        if (e.type == EventType::Stall) {
            event_stall += e.dur;
            ++event_count;
        }
    }
    AttrBucket sum = totals();
    if (event_stall != sum.exposedMigration()) {
        if (why)
            *why = strprintf(
                "event stream claims %lld stall ticks over %llu events, "
                "attribution claims %lld over %llu",
                static_cast<long long>(event_stall),
                static_cast<unsigned long long>(event_count),
                static_cast<long long>(sum.exposedMigration()),
                static_cast<unsigned long long>(sum.stall_events));
        return false;
    }
    if (why)
        *why = "ok";
    return true;
}

void
AttributionEngine::refreshMaps() const
{
    if (!maps_stale_)
        return;
    maps_stale_ = false;

    auto touched = [](const AttrBucket &b) {
        if (b.stall_events || b.promoted_bytes || b.demoted_bytes)
            return true;
        for (Tick t : b.ticks)
            if (t != 0)
                return true;
        return false;
    };

    by_layer_.clear();
    for (std::size_t i = 0; i < layer_slots_.size(); ++i)
        if (touched(layer_slots_[i]))
            by_layer_[static_cast<int>(i) - 1] = layer_slots_[i];

    by_interval_.clear();
    for (std::size_t i = 0; i < interval_slots_.size(); ++i)
        if (touched(interval_slots_[i]))
            by_interval_[static_cast<int>(i) - 1] = interval_slots_[i];

    by_tensor_.clear();
    for (std::size_t i = 0; i < tensor_slots_.size(); ++i) {
        const TensorAttr &ta = tensor_slots_[i];
        if (ta.exposed == 0 && ta.alloc == 0 && ta.stall_events == 0)
            continue;
        // Slot 0 is the wrapped kAttrNoTensor context.
        by_tensor_[static_cast<std::uint32_t>(i) - 1] = ta;
    }
}

void
AttributionEngine::clear()
{
    step_ = -1;
    layer_ = -1;
    interval_ = -1;
    access_tensor_ = kAttrNoTensor;
    alloc_tensor_ = kAttrNoTensor;
    in_alloc_ = false;
    in_step_ = false;
    stall_link_ = 0;
    current_ = AttrBucket{};
    exposed_cum_ = 0;
    steps_.clear();
    link_slots_.clear();
    layer_slots_.clear();
    interval_slots_.clear();
    tensor_slots_.clear();
    maps_stale_ = false;
    by_layer_.clear();
    by_interval_.clear();
    by_tensor_.clear();
}

} // namespace sentinel::telemetry
