/**
 * @file
 * Counters, high-water gauges, and log2 histograms, collected in a
 * name-addressed registry that can be snapshotted at any point of a
 * run (the evaluation reads it mid-training to chart per-interval
 * occupancy and stall distributions).
 *
 * Instruments are owned by the registry and returned by stable
 * pointer/reference, so hot paths resolve a name once (at attach time)
 * and then update through the cached pointer — no map lookup per
 * sample.
 */

#ifndef SENTINEL_TELEMETRY_METRICS_HH
#define SENTINEL_TELEMETRY_METRICS_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sentinel::telemetry {

/** Monotonic accumulator (bytes promoted, events counted, ...). */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** High-water mark (peak fast-memory occupancy, queue depth, ...). */
class Gauge
{
  public:
    void
    noteMax(std::uint64_t v)
    {
        if (v > max_)
            max_ = v;
    }
    std::uint64_t max() const { return max_; }
    void reset() { max_ = 0; }

  private:
    std::uint64_t max_ = 0;
};

/**
 * Power-of-two-bucketed distribution (stall latency, op duration).
 * Bucket i holds values whose bit width is i, i.e. [2^(i-1), 2^i);
 * bucket 0 holds zeros.  Percentiles are bucket upper bounds, which is
 * plenty for "p99 stall is ~2 ms" style reporting.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    void record(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    /** Upper bound of the bucket containing quantile @p p in [0,1]. */
    std::uint64_t percentile(double p) const;

    const std::array<std::uint64_t, kBuckets> &
    buckets() const
    {
        return buckets_;
    }

    void reset();

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

/** One exported metric (a row of the CSV / an object in the JSON). */
struct MetricRow {
    std::string name;
    std::string kind; ///< "counter" | "gauge" | "histogram"
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
};

class MetricRegistry
{
  public:
    /** Find-or-create; the returned reference is stable for life. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Point-in-time view of every instrument, sorted by name. */
    std::vector<MetricRow> snapshot() const;

    bool empty() const;

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_METRICS_HH
