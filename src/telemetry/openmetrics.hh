/**
 * @file
 * OpenMetrics / Prometheus text exposition: the scrape format of the
 * live observability plane.
 *
 * The writer side renders a MetricRegistry (and, via server/scrape.hh,
 * the per-job step boards) as a standard exposition:
 *
 *   # TYPE sentinel_job_step_ms summary
 *   sentinel_job_step_ms{job="resnet32#0",quantile="0.5"} 1.234
 *   ...
 *   # EOF
 *
 * so any Prometheus-compatible collector can scrape a running server.
 * Values carry no wall-clock timestamps — a scrape is a pure function
 * of simulated state, which is what makes snapshot files byte-
 * identical across --jobs values and reusable as golden test vectors.
 *
 * The parser side reads the same format back (names, labels, value)
 * for `sentinel-cli top` — the terminal view works identically from a
 * live HTTP endpoint and from a --scrape-out snapshot file.
 */

#ifndef SENTINEL_TELEMETRY_OPENMETRICS_HH
#define SENTINEL_TELEMETRY_OPENMETRICS_HH

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace sentinel::telemetry {

/** One metric label (key must be a valid OpenMetrics label name). */
struct OmLabel {
    std::string key;
    std::string value;
};

/** One parsed sample line: name, labels, value. */
struct OmSample {
    std::string name;
    std::vector<OmLabel> labels;
    double value = 0.0;

    /** Value of label @p key, or "" when absent. */
    const std::string &label(const std::string &key) const;
};

/**
 * Fold an arbitrary instrument name into the OpenMetrics name charset
 * [a-zA-Z_:][a-zA-Z0-9_:]*: every disallowed byte becomes '_' and a
 * leading digit gains a '_' prefix.  Deterministic and total — hostile
 * names degrade, they never corrupt the exposition.
 */
std::string omSanitizeName(const std::string &name);

/** Escape a label value ('\\', '"' and newlines, per the spec). */
std::string omEscapeLabel(const std::string &value);

/** Canonical float rendering shared by writer and snapshot tests. */
std::string omFormatValue(double v);

/** `# TYPE` line; @p type is "counter", "gauge", "summary", ... */
void omWriteType(std::ostream &os, const std::string &name,
                 const char *type);

/** One sample line: `name{labels} value`. */
void omWriteSample(std::ostream &os, const std::string &name,
                   const std::vector<OmLabel> &labels, double value);

/** The mandatory `# EOF` terminator. */
void omWriteEof(std::ostream &os);

/**
 * Render every instrument of @p metrics: counters as `<name>_total`
 * counters, gauges as gauges, histograms as summaries (quantile
 * labels + _count/_sum).  Instrument names are sanitized; @p labels is
 * attached to every sample.
 */
void writeOpenMetrics(const MetricRegistry &metrics, std::ostream &os,
                      const std::vector<OmLabel> &labels = {});

/**
 * Parse one exposition (or one snapshot frame) back into samples.
 * Comment lines (`#`) and blank lines are skipped; a malformed sample
 * line sets @p err and returns false.  Escaped label values are
 * unescaped.
 */
bool parseOpenMetrics(const std::string &text,
                      std::vector<OmSample> &out, std::string *err);

/**
 * Split a --scrape-out snapshot file into its frames (one exposition
 * per `# EOF`); trailing garbage after the last `# EOF` is ignored.
 */
std::vector<std::string> splitScrapeFrames(const std::string &text);

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_OPENMETRICS_HH
