/**
 * @file
 * Stall attribution: decomposes each training step's wall time into
 * named components and charges them to tensors, layers, and migration
 * intervals.
 *
 * The engine sits next to the telemetry session as an optional
 * attachment of the executor / policy / memory system.  The hooks give
 * it *context* (which step, layer, interval, tensor is in flight) and
 * *charges* (ticks added to the simulated clock, classified by why the
 * clock moved).  Because every clock advance inside a step flows
 * through exactly one charge call, the decomposition is exact by
 * construction:
 *
 *     step_time == execution + exposed + alloc + policy
 *                  + fault + recompute          (tick-for-tick)
 *     exposed + alloc == StepStats.exposed_migration
 *     stall events    == StepStats.num_stalls
 *
 * endStep() verifies these identities against the executor's own
 * StepStats and panics on any drift — an attribution that disagrees
 * with the numbers it explains is worse than none.
 *
 * The engine also cross-checks itself against the telemetry event
 * stream (crossCheckEvents): when nothing was dropped from the ring,
 * the sum of Stall event durations must equal the attributed
 * exposed+alloc total.  A ring overflow makes the check indeterminate,
 * which is why EventSink::dropped() is surfaced as a metric.
 */

#ifndef SENTINEL_TELEMETRY_ATTRIBUTION_HH
#define SENTINEL_TELEMETRY_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hh"
#include "telemetry/event_sink.hh"

namespace sentinel::telemetry {

/** Where a step's ticks went. */
enum class AttrComponent : std::uint8_t {
    Execution, ///< op compute/memory time (opTime result)
    Exposed,   ///< migration stalls on the critical path (access path)
    Alloc,     ///< stalls incurred while allocating a tensor
    Policy,    ///< policy decision overhead (planning, re-planning)
    Fault,     ///< profiling protection-fault overhead
    Recompute, ///< Capuchin-style recomputation
};

constexpr std::size_t kNumAttrComponents = 6;

/** Stable lower-case name of @p c (reports, JSON). */
const char *attrComponentName(AttrComponent c);

/** Component totals for one aggregation key (layer, interval, step). */
struct AttrBucket {
    std::array<Tick, kNumAttrComponents> ticks{};
    std::uint64_t stall_events = 0;
    std::uint64_t promoted_bytes = 0;
    std::uint64_t demoted_bytes = 0;

    Tick
    component(AttrComponent c) const
    {
        return ticks[static_cast<std::size_t>(c)];
    }

    /** Sum of every component (== wall time of the key's span). */
    Tick total() const;

    /** Exposed + alloc: migration time on the critical path. */
    Tick exposedMigration() const;

    void add(const AttrBucket &o);
};

/** Stall/alloc time charged to one tensor. */
struct TensorAttr {
    Tick exposed = 0;            ///< access-path stalls
    Tick alloc = 0;              ///< allocation-path stalls
    std::uint64_t stall_events = 0;

    Tick
    exposedMigration() const
    {
        return exposed + alloc;
    }
};

/**
 * Stall time and migration volume charged to one migration link of the
 * tier chain (link i connects tiers i and i+1; a two-tier system has
 * exactly link 0).  The per-link exposed+alloc totals sum tick-exactly
 * to the engine's overall exposed-migration total — endStep() enforces
 * it alongside the step identities.
 */
struct LinkAttr {
    Tick exposed = 0;            ///< access-path stalls on this link
    Tick alloc = 0;              ///< allocation-path stalls on this link
    std::uint64_t stall_events = 0;
    std::uint64_t promoted_bytes = 0; ///< toward-fast bytes on this link
    std::uint64_t demoted_bytes = 0;  ///< toward-slow bytes on this link

    Tick
    exposedMigration() const
    {
        return exposed + alloc;
    }
};

/** One step's attribution plus the StepStats totals it must match. */
struct StepAttribution {
    int step = 0;
    AttrBucket bucket;

    // Claimed totals (copied from StepStats at endStep).
    Tick step_time = 0;
    Tick exposed_migration = 0;
    Tick policy_time = 0;
    Tick fault_overhead = 0;
    Tick recompute_time = 0;
    std::uint64_t num_stalls = 0;

    /** True if every exactness identity holds tick-for-tick. */
    bool exact() const;
};

/** Sentinel "no tensor" context (matches df::kInvalidTensor). */
constexpr std::uint32_t kAttrNoTensor = ~0u;

class AttributionEngine
{
  public:
    AttributionEngine() = default;

    // --- Context hooks (executor / policy) -----------------------------

    void beginStep(int step, Tick now);

    /**
     * Close the step: record its attribution and verify the exactness
     * identities against the executor's totals.  Panics on drift.
     */
    void endStep(Tick step_time, Tick exposed_migration, Tick policy_time,
                 Tick fault_overhead, Tick recompute_time,
                 std::uint64_t num_stalls);

    /** Layer now executing (-1 outside the layer loop). */
    void setLayer(int layer) { layer_ = layer; }

    /** Migration interval now in force (-1 = no interval plan). */
    void setInterval(int interval) { interval_ = interval; }

    /** Tensor whose pages the executor is walking (access charges). */
    void setAccessTensor(std::uint32_t tensor) { access_tensor_ = tensor; }
    std::uint32_t accessTensor() const { return access_tensor_; }

    /** Allocation of @p tensor begins: stalls charge as Alloc. */
    void beginAlloc(std::uint32_t tensor);
    void endAlloc();

    /**
     * Migration link whose completion the executor is about to stall
     * on (the final leg of the blocking transfer).  Exposed/alloc
     * charges accrue against this link until it changes.  Two-tier
     * systems never need to call this — everything lands on link 0.
     */
    void setStallLink(unsigned link) { stall_link_ = link; }
    unsigned stallLink() const { return stall_link_; }

    // --- Charges (every simulated-clock advance in a step) -------------

    void chargeExecution(Tick t);
    void chargeExposed(Tick t, std::uint64_t events);
    void chargePolicy(Tick t);
    void chargeFault(Tick t);
    void chargeRecompute(Tick t);

    /** A migration batch was scheduled on link 0 (two-tier hook). */
    void noteMigration(bool promote, std::uint64_t bytes);

    /** One leg of a migration batch was scheduled on @p link. */
    void noteMigration(unsigned link, bool promote, std::uint64_t bytes);

    // --- Results --------------------------------------------------------

    const std::vector<StepAttribution> &steps() const { return steps_; }

    /** Aggregates across all recorded steps, sorted by key.  The maps
     *  are materialized lazily from the dense charge slots on first
     *  use after new charges (report-time cost, not charge-time). */
    const std::map<int, AttrBucket> &byLayer() const
    {
        refreshMaps();
        return by_layer_;
    }
    const std::map<int, AttrBucket> &byInterval() const
    {
        refreshMaps();
        return by_interval_;
    }
    const std::map<std::uint32_t, TensorAttr> &byTensor() const
    {
        refreshMaps();
        return by_tensor_;
    }

    /** Per-link totals, indexed by link id (slot i = link i).  Links
     *  that never stalled nor moved bytes stay zero. */
    const std::vector<LinkAttr> &byLink() const { return link_slots_; }

    /** Whole-run component totals. */
    AttrBucket totals() const;

    /** True if every recorded step passed its exactness check. */
    bool allExact() const;

    /**
     * Verify the engine against the event stream: with no ring drops,
     * Stall event durations must sum to the attributed exposed+alloc
     * total.  Returns false (and fills @p why) on mismatch; a sink
     * that dropped events yields true with a caveat in @p why.
     */
    bool crossCheckEvents(const EventSink &sink,
                          std::string *why = nullptr) const;

    void clear();

  private:
    void charge(AttrComponent c, Tick t, std::uint64_t events);

    /** Slot @p idx of @p v, growing the vector as needed. */
    template <typename T>
    static T &
    slotAt(std::vector<T> &v, std::size_t idx)
    {
        if (idx >= v.size())
            v.resize(idx + 1);
        return v[idx];
    }

    /** Rebuild the sorted map views from the dense slots if stale. */
    void refreshMaps() const;

    // Current context.
    int step_ = -1;
    int layer_ = -1;
    int interval_ = -1;
    std::uint32_t access_tensor_ = kAttrNoTensor;
    std::uint32_t alloc_tensor_ = kAttrNoTensor;
    unsigned stall_link_ = 0;
    bool in_alloc_ = false;
    bool in_step_ = false;

    AttrBucket current_;
    /** Cumulative attributed exposed+alloc (link-sum invariant). */
    Tick exposed_cum_ = 0;

    std::vector<StepAttribution> steps_;
    std::vector<LinkAttr> link_slots_;

    // Dense charge slots: index = key + 1, so the "no context" keys
    // (layer/interval -1, tensor kAttrNoTensor via uint32 wrap-around)
    // land in slot 0.  A charge is two or three vector indexings; the
    // map views below exist only for report-time consumers.
    std::vector<AttrBucket> layer_slots_;
    std::vector<AttrBucket> interval_slots_;
    std::vector<TensorAttr> tensor_slots_;

    // Lazily materialized views.  A slot whose every field is zero was
    // never charged (charge() rejects all-zero charges), so the
    // rebuild emits exactly the key set the eager maps used to hold.
    mutable bool maps_stale_ = false;
    mutable std::map<int, AttrBucket> by_layer_;
    mutable std::map<int, AttrBucket> by_interval_;
    mutable std::map<std::uint32_t, TensorAttr> by_tensor_;
};

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_ATTRIBUTION_HH
