#include "telemetry/metrics.hh"

#include <algorithm>
#include <bit>

namespace sentinel::telemetry {

void
Histogram::record(std::uint64_t v)
{
    buckets_[static_cast<std::size_t>(std::bit_width(v))] += 1;
    count_ += 1;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(count_));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            if (i == 0)
                return 0;
            if (i >= 64)
                return max_;
            return (1ull << i) - 1;
        }
    }
    return max_;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

bool
MetricRegistry::empty() const
{
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::vector<MetricRow>
MetricRegistry::snapshot() const
{
    std::vector<MetricRow> rows;
    rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto &kv : counters_) {
        MetricRow r;
        r.name = kv.first;
        r.kind = "counter";
        r.sum = kv.second->value();
        rows.push_back(std::move(r));
    }
    for (const auto &kv : gauges_) {
        MetricRow r;
        r.name = kv.first;
        r.kind = "gauge";
        r.max = kv.second->max();
        rows.push_back(std::move(r));
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        MetricRow r;
        r.name = kv.first;
        r.kind = "histogram";
        r.count = h.count();
        r.sum = h.sum();
        r.min = h.min();
        r.max = h.max();
        r.p50 = h.percentile(0.50);
        r.p99 = h.percentile(0.99);
        rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const MetricRow &a, const MetricRow &b) {
                  return a.name < b.name;
              });
    return rows;
}

} // namespace sentinel::telemetry
