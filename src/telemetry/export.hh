/**
 * @file
 * Flat metric exports: one CSV row / JSON object per instrument.
 *
 * The CSV loads directly into pandas/gnuplot for the paper-style
 * figures; the JSON is for dashboards and the golden-file tests.
 */

#ifndef SENTINEL_TELEMETRY_EXPORT_HH
#define SENTINEL_TELEMETRY_EXPORT_HH

#include <ostream>
#include <string>

#include "telemetry/metrics.hh"

namespace sentinel::telemetry {

/** CSV with header: name,kind,count,sum,min,max,p50,p99 */
void writeMetricsCsv(const MetricRegistry &metrics, std::ostream &os);

/** JSON: {"metrics":[{name,kind,count,sum,min,max,p50,p99},...]} */
void writeMetricsJson(const MetricRegistry &metrics, std::ostream &os);

/** Write CSV (.csv) or JSON (anything else) to @p path. */
bool saveMetrics(const MetricRegistry &metrics, const std::string &path);

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_EXPORT_HH
