/**
 * @file
 * Flat metric exports: one CSV row / JSON object per instrument.
 *
 * The CSV loads directly into pandas/gnuplot for the paper-style
 * figures; the JSON is for dashboards and the golden-file tests.
 * Instrument names are caller-supplied strings (model names, fuzzer
 * labels) and pass through jsonEscape/csvField, so a hostile name
 * degrades into an ugly cell instead of corrupting the document —
 * the same contract chrome_trace.hh established for trace labels.
 *
 * `loadMetricsDump` reads either format back for offline tooling
 * (`sentinel-cli metrics-diff` triages perf-regress failures by
 * diffing two dumps).
 */

#ifndef SENTINEL_TELEMETRY_EXPORT_HH
#define SENTINEL_TELEMETRY_EXPORT_HH

#include <ostream>
#include <string>

#include "telemetry/metrics.hh"

namespace sentinel::telemetry {

/** JSON string-literal escaping ('"', '\\', control chars).  Shared
 *  by every JSON writer in the subsystem. */
std::string jsonEscape(const std::string &s);

/** RFC-4180 CSV field: quoted (with doubled quotes) only when the
 *  value contains a comma, quote, or newline. */
std::string csvField(const std::string &s);

/** CSV with header: name,kind,count,sum,min,max,p50,p99 */
void writeMetricsCsv(const MetricRegistry &metrics, std::ostream &os);

/** JSON: {"metrics":[{name,kind,count,sum,min,max,p50,p99},...]} */
void writeMetricsJson(const MetricRegistry &metrics, std::ostream &os);

/** Write CSV (.csv) or JSON (anything else) to @p path. */
bool saveMetrics(const MetricRegistry &metrics, const std::string &path);

/**
 * Read a metrics dump written by saveMetrics — JSON (leading '{') or
 * CSV — back into rows, name-sorted.  Throws std::runtime_error on an
 * unreadable file or a row that does not parse.
 */
std::vector<MetricRow> loadMetricsDump(const std::string &path);

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_EXPORT_HH
