/**
 * @file
 * Windowed per-step time series: the live half of the telemetry
 * subsystem.
 *
 * Counters and histograms (metrics.hh) answer "what happened over the
 * whole run"; a TimeSeries answers "what is happening NOW".  Each
 * series keeps
 *
 *  - a fixed-capacity ring of the most recent samples (the raw
 *    material for sparklines and snapshot replay),
 *  - an O(1) sliding-window sum (window min/max/mean are computed on
 *    demand by scanning the — small — window; scrapes may pay O(W),
 *    pushes may not),
 *  - an exponentially weighted moving average of the sample value and,
 *    when samples carry simulated timestamps, of the sample *rate* per
 *    simulated second, and
 *  - a streaming percentile sketch over ALL samples, reusing the log2
 *    Histogram so p50/p99 cost no memory proportional to the run.
 *
 * Everything is sized at construction: push() never allocates, which
 * is what lets the observability plane ride inside the zero-alloc
 * steady-state loop (tests/integration/test_zero_alloc.cc pins this).
 *
 * StepBoard bundles the fixed set of per-step series the executor
 * feeds at every step boundary; it is the producer side of the
 * OpenMetrics scrape (openmetrics.hh) and of the multi-job server's
 * per-job scrape registries (server/scrape.hh).
 */

#ifndef SENTINEL_TELEMETRY_TIMESERIES_HH
#define SENTINEL_TELEMETRY_TIMESERIES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "telemetry/metrics.hh"

namespace sentinel::telemetry {

struct TimeSeriesOptions {
    /** Ring capacity: most recent samples retained for replay. */
    std::size_t capacity = 128;

    /** Sliding-window length in samples (clamped to capacity). */
    std::size_t window = 32;

    /** EWMA smoothing factor in (0, 1]; higher = more reactive. */
    double ewma_alpha = 0.25;
};

/** Point-in-time aggregate of a series' sliding window. */
struct WindowStats {
    std::size_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
};

class TimeSeries
{
  public:
    explicit TimeSeries(TimeSeriesOptions opts = {});

    /** Record one sample.  O(1), allocation-free. */
    void push(std::uint64_t v);

    /**
     * Record one sample stamped at simulated time @p now.  Also feeds
     * the rate EWMA with v / dt (per simulated second) where dt is the
     * gap since the previous stamped push; the first stamped push only
     * anchors the clock.
     */
    void pushAt(std::uint64_t v, Tick now);

    /** Total samples ever pushed (not capped by the ring). */
    std::uint64_t total() const { return total_; }

    /** Most recent sample (0 before the first push). */
    std::uint64_t last() const;

    /** Aggregate of the last min(window, total) samples. */
    WindowStats window() const;

    /** EWMA of the sample value (0 before the first push). */
    double ewma() const { return ewma_; }

    /** EWMA of the per-simulated-second rate (pushAt feeds it). */
    double ewmaRate() const { return ewma_rate_; }

    /** Streaming log2 percentile sketch over every pushed sample. */
    const Histogram &sketch() const { return sketch_; }

    /**
     * The @p i-th retained sample, oldest first; @p i must be <
     * retained().  Exposes the ring for snapshot replay and
     * sparklines.
     */
    std::uint64_t sample(std::size_t i) const;
    std::size_t retained() const;

    const TimeSeriesOptions &options() const { return opts_; }

    /** Forget everything; capacity (and thus allocation) is kept. */
    void reset();

  private:
    TimeSeriesOptions opts_;
    std::vector<std::uint64_t> ring_;
    std::uint64_t total_ = 0;
    std::uint64_t window_sum_ = 0;
    double ewma_ = 0.0;
    double ewma_rate_ = 0.0;
    Tick last_tick_ = -1;
    Histogram sketch_;
};

/**
 * The fixed set of per-step series a training run exposes live.  An
 * enum (not a name-addressed registry) so the executor's step-boundary
 * feed is an array index, not a map lookup, and so the set is closed —
 * every consumer (OpenMetrics renderer, `sentinel-cli top`, the server
 * plane) agrees on what exists.
 */
enum class StepSeries : std::uint8_t {
    StepTime,        ///< step wall time (ns)
    ExposedMigration,///< stalls on the critical path (ns)
    PolicyTime,      ///< policy decision overhead (ns)
    PromotedBytes,   ///< slow->fast DMA volume
    DemotedBytes,    ///< fast->slow DMA volume
    SlowBytes,       ///< access traffic served from the slow tier
    PeakFastUsed,    ///< high-water fast occupancy (bytes)
    Stalls,          ///< stall event count
};

constexpr std::size_t kNumStepSeries = 8;

/** Stable snake_case name of @p s (OpenMetrics series stem). */
const char *stepSeriesName(StepSeries s);

/**
 * One training run's live board: a TimeSeries per StepSeries, fed by
 * the executor at every step boundary.  Attach to a telemetry::Session
 * and the executor does the rest; all storage is sized up front.
 */
class StepBoard
{
  public:
    explicit StepBoard(TimeSeriesOptions opts = {});

    TimeSeries &series(StepSeries s);
    const TimeSeries &series(StepSeries s) const;

    /** Push @p v into @p s stamped at @p now.  Allocation-free. */
    void
    observe(StepSeries s, std::uint64_t v, Tick now)
    {
        series(s).pushAt(v, now);
    }

    /** Mark a step boundary at simulated time @p now. */
    void
    endStep(Tick now)
    {
        ++steps_;
        last_tick_ = now;
    }

    /** Steps observed so far. */
    std::uint64_t steps() const { return steps_; }

    /** Simulated time of the last step boundary (-1 = none yet). */
    Tick lastTick() const { return last_tick_; }

    void reset();

  private:
    std::array<TimeSeries, kNumStepSeries> series_;
    std::uint64_t steps_ = 0;
    Tick last_tick_ = -1;
};

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_TIMESERIES_HH
