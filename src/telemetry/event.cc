#include "telemetry/event.hh"

namespace sentinel::telemetry {

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::StepBegin:
        return "step_begin";
      case EventType::StepEnd:
        return "step_end";
      case EventType::OpBegin:
        return "op_begin";
      case EventType::OpEnd:
        return "op_end";
      case EventType::Stall:
        return "stall";
      case EventType::ProfilingFault:
        return "profiling_fault";
      case EventType::PolicyDecision:
        return "policy_decision";
      case EventType::IntervalBegin:
        return "interval_begin";
      case EventType::PrefetchIssued:
        return "prefetch_issued";
      case EventType::Promotion:
        return "promotion";
      case EventType::Demotion:
        return "demotion";
      case EventType::DivergenceDetected:
        return "divergence";
      case EventType::Replan:
        return "replan";
      case EventType::SloBurnAlert:
        return "slo_burn_alert";
    }
    return "unknown";
}

} // namespace sentinel::telemetry
