#include "telemetry/chrome_trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "telemetry/export.hh"

namespace sentinel::telemetry {

namespace {

struct TrackRef {
    int pid;
    int tid;
};

TrackRef
trackOf(EventType t)
{
    switch (t) {
      case EventType::StepBegin:
      case EventType::StepEnd:
      case EventType::IntervalBegin:
        return { 1, 1 };
      case EventType::OpBegin:
      case EventType::OpEnd:
        return { 1, 2 };
      case EventType::Stall:
        return { 1, 3 };
      case EventType::ProfilingFault:
      case EventType::PolicyDecision:
      case EventType::DivergenceDetected:
      case EventType::Replan:
      case EventType::SloBurnAlert:
        return { 1, 4 };
      case EventType::Promotion:
        return { 2, 1 };
      case EventType::Demotion:
        return { 2, 2 };
      case EventType::PrefetchIssued:
        return { 2, 3 };
    }
    return { 1, 1 };
}

// JSON string escaping lives in export.hh (jsonEscape) so the trace
// and metrics writers share one definition.
constexpr auto escapeJson = &jsonEscape;

std::string
defaultName(const Event &e)
{
    switch (e.type) {
      case EventType::StepBegin:
      case EventType::StepEnd:
        return strprintf("step %u", e.id);
      case EventType::OpBegin:
      case EventType::OpEnd:
        return strprintf("op %u", e.id);
      case EventType::IntervalBegin:
        return strprintf("interval %u", e.id);
      case EventType::PrefetchIssued:
        return strprintf("prefetch t%u", e.id);
      case EventType::Stall:
        return "stall";
      case EventType::ProfilingFault:
        return "fault";
      case EventType::PolicyDecision:
        return "policy";
      case EventType::Promotion:
        return "promote";
      case EventType::Demotion:
        return "demote";
      case EventType::DivergenceDetected:
        return strprintf("divergence @step %u", e.id);
      case EventType::Replan:
        return strprintf("replan @step %u", e.id);
      case EventType::SloBurnAlert:
        return strprintf("slo burn %.1fx job %u",
                         static_cast<double>(e.bytes) / 1e3, e.id);
    }
    return "event";
}

/** Ticks (ns) -> trace microseconds, keeping sub-us precision. */
std::string
toUs(Tick t)
{
    return strprintf("%.3f", static_cast<double>(t) / 1e3);
}

void
writeMetadata(std::ostream &os, const std::string &process_label)
{
    struct Meta {
        int pid;
        int tid; ///< 0 = process_name record
        const char *name;
    };
    static const Meta metas[] = {
        { 1, 0, "executor" },  { 1, 1, "steps" },   { 1, 2, "ops" },
        { 1, 3, "stalls" },    { 1, 4, "overhead" }, { 2, 0, "memory" },
        { 2, 1, "promote" },   { 2, 2, "demote" },  { 2, 3, "prefetch" },
    };
    for (const Meta &m : metas) {
        // Names pass through escapeJson like everything else: the
        // executor label can be a user-supplied model name carrying
        // quotes or backslashes.
        std::string name = m.name;
        if (m.pid == 1 && m.tid == 0 && !process_label.empty())
            name = process_label;
        name = escapeJson(name);
        if (m.tid == 0) {
            os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
               << m.pid << ",\"tid\":0,\"args\":{\"name\":\"" << name
               << "\"}},\n";
        } else {
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
               << m.pid << ",\"tid\":" << m.tid
               << ",\"args\":{\"name\":\"" << name << "\"}},\n";
        }
    }
}

void
writeEvent(std::ostream &os, const Event &e, const ChromeTraceOptions &opts,
           bool last)
{
    std::string name;
    if (opts.labeler)
        name = opts.labeler(e);
    if (name.empty())
        name = defaultName(e);
    name = escapeJson(name);

    TrackRef tr = trackOf(e.type);
    const char *ph = "X";
    switch (e.type) {
      case EventType::StepBegin:
      case EventType::OpBegin:
        ph = "B";
        break;
      case EventType::StepEnd:
      case EventType::OpEnd:
        ph = "E";
        break;
      case EventType::IntervalBegin:
      case EventType::PrefetchIssued:
      case EventType::DivergenceDetected:
      case EventType::SloBurnAlert:
        ph = "i";
        break;
      case EventType::Replan:
        // Replans carry their planner cost as a span; a zero-cost
        // replan still shows as a zero-width slice on the track.
        ph = "X";
        break;
      default:
        break;
    }

    os << "{\"name\":\"" << name << "\",\"cat\":\""
       << eventTypeName(e.type) << "\",\"ph\":\"" << ph
       << "\",\"ts\":" << toUs(e.ts) << ",\"pid\":" << tr.pid
       << ",\"tid\":" << tr.tid;
    if (ph[0] == 'X')
        os << ",\"dur\":" << toUs(e.dur);
    if (ph[0] == 'i')
        os << ",\"s\":\"t\"";
    bool migration = e.type == EventType::Promotion ||
                     e.type == EventType::Demotion;
    os << ",\"args\":{";
    if (e.bytes != 0 || migration)
        os << "\"bytes\":" << e.bytes << ",";
    os << "\"id\":" << e.id;
    if (migration && opts.audit) {
        // Join the migration slice with the decision that caused it
        // (shared timestamp): the trace then answers "why" inline.
        const AuditRecord *r = opts.audit->matchMigration(
            e.ts, e.type == EventType::Promotion);
        if (r) {
            os << ",\"reason\":\"" << auditReasonName(r->reason)
               << "\",\"tensor\":" << r->tensor;
        }
    }
    os << "}";
    os << "}" << (last ? "\n" : ",\n");
}

} // namespace

void
writeChromeTrace(const EventSink &sink, std::ostream &os,
                 const ChromeTraceOptions &opts)
{
    std::vector<Event> events = sink.snapshot();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    writeMetadata(os, opts.process_label);
    for (std::size_t i = 0; i < events.size(); ++i)
        writeEvent(os, events[i], opts, i + 1 == events.size());
    if (events.empty()) {
        // Terminate the metadata list: re-emit one harmless record
        // without the trailing comma so the array stays valid JSON.
        std::string name = opts.process_label.empty()
                               ? std::string("executor")
                               : opts.process_label;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":0,\"args\":{\"name\":\""
           << escapeJson(name) << "\"}}\n";
    }
    os << "]}\n";
}

void
writeChromeTrace(const EventSink &sink, std::ostream &os,
                 const EventLabeler &labeler)
{
    writeChromeTrace(sink, os, ChromeTraceOptions{ labeler, nullptr, {} });
}

std::string
chromeTraceJson(const EventSink &sink, const ChromeTraceOptions &opts)
{
    std::ostringstream ss;
    writeChromeTrace(sink, ss, opts);
    return ss.str();
}

std::string
chromeTraceJson(const EventSink &sink, const EventLabeler &labeler)
{
    return chromeTraceJson(sink, ChromeTraceOptions{ labeler, nullptr, {} });
}

bool
saveChromeTrace(const EventSink &sink, const std::string &path,
                const ChromeTraceOptions &opts)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(sink, out, opts);
    return static_cast<bool>(out);
}

bool
saveChromeTrace(const EventSink &sink, const std::string &path,
                const EventLabeler &labeler)
{
    return saveChromeTrace(sink, path,
                           ChromeTraceOptions{ labeler, nullptr, {} });
}

} // namespace sentinel::telemetry
