#include "telemetry/audit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::telemetry {

const char *
auditReasonName(AuditReason r)
{
    switch (r) {
      case AuditReason::kPrefetchNextInterval:
        return "kPrefetchNextInterval";
      case AuditReason::kPrefetchDemand:
        return "kPrefetchDemand";
      case AuditReason::kEvictDeadTensor:
        return "kEvictDeadTensor";
      case AuditReason::kEvictForSpace:
        return "kEvictForSpace";
      case AuditReason::kPinReservedPool:
        return "kPinReservedPool";
      case AuditReason::kReplanDivergence:
        return "kReplanDivergence";
      case AuditReason::kSloBurnAlert:
        return "kSloBurnAlert";
      case AuditReason::kPrefetchStage:
        return "kPrefetchStage";
    }
    return "?";
}

bool
auditReasonIsPromote(AuditReason r)
{
    return r == AuditReason::kPrefetchNextInterval ||
           r == AuditReason::kPrefetchDemand ||
           r == AuditReason::kPrefetchStage;
}

bool
auditReasonIsDemote(AuditReason r)
{
    return r == AuditReason::kEvictDeadTensor ||
           r == AuditReason::kEvictForSpace;
}

AuditLog::AuditLog(std::size_t capacity) : capacity_(capacity)
{
    SENTINEL_ASSERT(capacity > 0, "audit log needs a nonzero capacity");
}

void
AuditLog::append(const AuditRecord &r)
{
    if (records_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    SENTINEL_ASSERT(records_.empty() || r.ts >= records_.back().ts,
                    "audit records must be appended in time order "
                    "(%lld after %lld)",
                    static_cast<long long>(r.ts),
                    static_cast<long long>(records_.back().ts));
    records_.push_back(r);
}

std::vector<AuditRecord>
AuditLog::forTensor(std::uint32_t tensor) const
{
    std::vector<AuditRecord> out;
    for (const AuditRecord &r : records_)
        if (r.tensor == tensor)
            out.push_back(r);
    return out;
}

const AuditRecord *
AuditLog::lastForTensor(std::uint32_t tensor) const
{
    for (auto it = records_.rbegin(); it != records_.rend(); ++it)
        if (it->tensor == tensor)
            return &*it;
    return nullptr;
}

const AuditRecord *
AuditLog::matchMigration(Tick ts, bool promote) const
{
    // Records are ts-ordered: binary-search the first record at ts,
    // then scan the (short) same-tick cluster for the direction.
    auto it = std::lower_bound(records_.begin(), records_.end(), ts,
                               [](const AuditRecord &r, Tick t) {
                                   return r.ts < t;
                               });
    for (; it != records_.end() && it->ts == ts; ++it) {
        if (promote ? auditReasonIsPromote(it->reason)
                    : auditReasonIsDemote(it->reason))
            return &*it;
    }
    return nullptr;
}

void
AuditLog::clear()
{
    records_.clear();
    dropped_ = 0;
}

} // namespace sentinel::telemetry
