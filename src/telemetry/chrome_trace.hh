/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto "Trace Event Format")
 * export of a telemetry session.
 *
 * Track layout:
 *
 *   pid 1 "executor"   tid 1 "steps"     step spans + interval markers
 *                      tid 2 "ops"       B/E pairs, one per operation
 *                      tid 3 "stalls"    exposed-migration waits (X)
 *                      tid 4 "overhead"  profiling faults, policy time
 *   pid 2 "memory"     tid 1 "promote"   slow->fast DMA batches (X)
 *                      tid 2 "demote"    fast->slow DMA batches (X)
 *                      tid 3 "prefetch"  policy prefetch intents (i)
 *
 * Timestamps convert from Ticks (ns) to the format's microseconds.
 * Event names default to eventTypeName() + id; callers that know the
 * graph pass a labeler to substitute op/tensor names.
 */

#ifndef SENTINEL_TELEMETRY_CHROME_TRACE_HH
#define SENTINEL_TELEMETRY_CHROME_TRACE_HH

#include <functional>
#include <ostream>
#include <string>

#include "telemetry/audit.hh"
#include "telemetry/event_sink.hh"

namespace sentinel::telemetry {

/**
 * Optional name resolver: returns a display name for @p e, or an
 * empty string to fall back to the default naming.
 */
using EventLabeler = std::function<std::string(const Event &e)>;

/** Optional attachments for the exporter. */
struct ChromeTraceOptions {
    /** Name resolver (empty result falls back to default names). */
    EventLabeler labeler;

    /**
     * Decision audit log to join against: each Promotion/Demotion
     * event whose timestamp matches a same-direction AuditRecord gains
     * `"reason"` and `"tensor"` args, so the trace view and the audit
     * log tell one story.
     */
    const AuditLog *audit = nullptr;

    /**
     * Display name for the executor process track (pid 1); empty keeps
     * the default "executor".  Escaped on output — model names and
     * user-supplied labels are safe verbatim.
     */
    std::string process_label;
};

/** Write the retained events of @p sink as Chrome-trace JSON. */
void writeChromeTrace(const EventSink &sink, std::ostream &os,
                      const ChromeTraceOptions &opts);
void writeChromeTrace(const EventSink &sink, std::ostream &os,
                      const EventLabeler &labeler = {});

/** Same, into a string (tests, small traces). */
std::string chromeTraceJson(const EventSink &sink,
                            const ChromeTraceOptions &opts);
std::string chromeTraceJson(const EventSink &sink,
                            const EventLabeler &labeler = {});

/** Write @p sink's events to @p path; @return false on I/O failure. */
bool saveChromeTrace(const EventSink &sink, const std::string &path,
                     const ChromeTraceOptions &opts);
bool saveChromeTrace(const EventSink &sink, const std::string &path,
                     const EventLabeler &labeler = {});

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_CHROME_TRACE_HH
