/**
 * @file
 * The migration decision audit log.
 *
 * Every discrete policy decision that moves, pins, or protects tensor
 * data — a prefetch queued for the next interval, a plan-scheduled
 * demotion of a dead tensor, a demand eviction under memory pressure,
 * a reserved-pool pin, a mid-training re-plan — appends one compact
 * AuditRecord.  The log answers, after the fact, questions the
 * aggregate StepStats cannot: "why was tensor X evicted?", "which plan
 * generation issued this transfer?", "what did the policy do at tick
 * T?".
 *
 * Records are append-only and timestamp-ordered (simulated time never
 * goes backward), so the log doubles as a join key against the event
 * ring: a Promotion/Demotion event and the decision that caused it
 * share a timestamp, which is how the Chrome-trace exporter attaches
 * reason codes to migration slices (see chrome_trace.hh).
 */

#ifndef SENTINEL_TELEMETRY_AUDIT_HH
#define SENTINEL_TELEMETRY_AUDIT_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace sentinel::telemetry {

/** Why a decision was taken.  Stable names (auditReasonName) appear in
 *  reports, exported JSON, and Chrome-trace args. */
enum class AuditReason : std::uint8_t {
    /** Tensor queued/transferred ahead of the interval that needs it. */
    kPrefetchNextInterval,
    /** GPU demand fault: host-resident page pulled to device on touch. */
    kPrefetchDemand,
    /** Plan-scheduled demotion: last use in its interval has passed. */
    kEvictDeadTensor,
    /** Demand eviction: fast memory could not fit a new allocation. */
    kEvictForSpace,
    /** Short-lived tensor pinned in the reserved fast-memory pool. */
    kPinReservedPool,
    /** Mid-training re-plan triggered by the divergence monitor. */
    kReplanDivergence,
    /** SLO burn-rate alert raised by the server's observability plane
     *  (tensor = none, bytes = burn rate in 1/1000ths, step = the
     *  job step that crossed the threshold). */
    kSloBurnAlert,
    /** Tensor staged one leg toward fast through a middle tier, ahead
     *  of the interval whose prefetch will finish the promotion. */
    kPrefetchStage,
};

constexpr std::size_t kNumAuditReasons = 8;

/** Stable identifier of @p r (the "kCamelCase" spelling). */
const char *auditReasonName(AuditReason r);

/** Sentinel "no tensor" id (run-level decisions such as re-plans). */
constexpr std::uint32_t kAuditNoTensor = ~0u;

/** One decision.  36ish bytes; plain data, no ownership. */
struct AuditRecord {
    Tick ts = 0;                ///< simulated time of the decision
    std::uint64_t bytes = 0;    ///< payload (tensor/transfer size)
    std::uint32_t tensor = kAuditNoTensor;
    std::int32_t step = -1;     ///< training step
    std::int16_t layer = -1;    ///< layer in flight (-1 outside loop)
    std::int16_t interval = -1; ///< migration interval (-1 = none)
    std::int16_t mil = 0;       ///< plan context: MIL in force
    std::uint8_t plan_gen = 0;  ///< plan context: re-plan generation
    AuditReason reason = AuditReason::kPrefetchNextInterval;
};

/** True if @p r describes a slow->fast transfer decision. */
bool auditReasonIsPromote(AuditReason r);
/** True if @p r describes a fast->slow transfer decision. */
bool auditReasonIsDemote(AuditReason r);

/**
 * Bounded append-only decision log.  Unlike the event ring, the
 * *oldest* records win on overflow: the decisions that explain a
 * tensor's placement are usually the early ones (layout, first
 * prefetch), and dropped() makes any loss visible.
 */
class AuditLog
{
  public:
    explicit AuditLog(std::size_t capacity = 1u << 20);

    void append(const AuditRecord &r);

    const std::vector<AuditRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Records refused because the log was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Every record mentioning @p tensor, in decision order. */
    std::vector<AuditRecord> forTensor(std::uint32_t tensor) const;

    /** Most recent record mentioning @p tensor, or null. */
    const AuditRecord *lastForTensor(std::uint32_t tensor) const;

    /**
     * The decision behind a migration batch scheduled at @p ts in the
     * given direction, or null.  Timestamps are the join key: the
     * policy appends its record at the same simulated instant the
     * memory system emits the Promotion/Demotion event.  When several
     * same-direction decisions share a tick (e.g. a multi-victim
     * demand eviction) they necessarily carry the same reason, so the
     * first match is authoritative.
     */
    const AuditRecord *matchMigration(Tick ts, bool promote) const;

    void clear();

  private:
    std::vector<AuditRecord> records_;
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
};

} // namespace sentinel::telemetry

#endif // SENTINEL_TELEMETRY_AUDIT_HH
