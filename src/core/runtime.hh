/**
 * @file
 * The public entry point: profile a model once, then train it under
 * Sentinel on a heterogeneous memory system.
 *
 * Mirrors the paper's usage: the user wraps training with
 * start_profile()/end_profile() and annotates layers with add_layer();
 * here the Graph already carries layer annotations, so the facade
 * reduces to "construct, train".
 *
 *     auto graph = models::makeModel("resnet32", 32);
 *     core::Runtime rt(std::move(graph), core::RuntimeConfig::optane());
 *     auto stats = rt.train(20);
 */

#ifndef SENTINEL_CORE_RUNTIME_HH
#define SENTINEL_CORE_RUNTIME_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/sentinel_policy.hh"
#include "dataflow/executor.hh"
#include "dataflow/graph.hh"
#include "mem/hm.hh"
#include "profile/profiler.hh"
#include "telemetry/session.hh"

namespace sentinel::core {

struct RuntimeConfig {
    mem::TierParams fast;
    mem::TierParams slow;
    mem::MigrationParams migration;
    df::ExecParams exec;
    prof::ProfilerOptions profiler;
    SentinelOptions sentinel;

    /**
     * Structured event tracing (off by default).  When enabled the
     * runtime owns a telemetry::Session wired into the executor, the
     * memory system, and the Sentinel policy; read it back through
     * Runtime::telemetrySession() to export Chrome traces / metrics.
     */
    telemetry::TelemetryConfig telemetry;

    /**
     * DDR4 + Optane DC PMM preset (the paper's Table II CPU platform),
     * with the fast tier sized to @p fast_bytes.
     */
    static RuntimeConfig optane(std::uint64_t fast_bytes);

    /** V100 HBM + host-DRAM-over-PCIe preset (GPU platform). */
    static RuntimeConfig gpu(std::uint64_t hbm_bytes);

    /**
     * DDR4 + CXL-attached-memory preset: a faster, lower-latency slow
     * tier than Optane.  Not in the paper (CXL postdates it) — kept to
     * study how Sentinel's advantage scales as the tier gap narrows,
     * the question the paper's introduction raises about future
     * memory technologies.
     */
    static RuntimeConfig cxl(std::uint64_t fast_bytes);
};

class Runtime
{
  public:
    Runtime(df::Graph graph, RuntimeConfig cfg);

    /** The one-step profiling phase (run lazily before training). */
    const prof::ProfileResult &profileResult();

    /**
     * Run @p steps training steps under Sentinel (profiling first if
     * not done yet).  Subsequent calls continue training.
     */
    std::vector<df::StepStats> train(int steps);

    const df::Graph &graph() const { return graph_; }
    mem::HeterogeneousMemory &hm() { return *hm_; }
    /** Valid after the first train() call. */
    const SentinelPolicy &policy() const;

    /** Telemetry session, or null when cfg.telemetry.enabled is false. */
    telemetry::Session *telemetrySession() { return telemetry_.get(); }

  private:
    void ensureProfiled();
    void ensureExecutor();

    df::Graph graph_;
    RuntimeConfig cfg_;
    std::unique_ptr<telemetry::Session> telemetry_;
    std::optional<prof::ProfileResult> profile_;
    std::unique_ptr<mem::HeterogeneousMemory> hm_;
    std::unique_ptr<SentinelPolicy> policy_;
    std::unique_ptr<df::Executor> executor_;
};

} // namespace sentinel::core

#endif // SENTINEL_CORE_RUNTIME_HH
