/**
 * @file
 * The public entry point: profile a model once, then train it under
 * Sentinel on a heterogeneous memory system.
 *
 * Mirrors the paper's usage: the user wraps training with
 * start_profile()/end_profile() and annotates layers with add_layer();
 * here the Graph already carries layer annotations, so the facade
 * reduces to "construct, train".
 *
 *     auto graph = models::makeModel("resnet32", 32);
 *     core::Runtime rt(std::move(graph), core::RuntimeConfig::optane());
 *     auto stats = rt.train(20);
 */

#ifndef SENTINEL_CORE_RUNTIME_HH
#define SENTINEL_CORE_RUNTIME_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/sentinel_policy.hh"
#include "dataflow/executor.hh"
#include "dataflow/graph.hh"
#include "mem/hm.hh"
#include "profile/profiler.hh"
#include "telemetry/session.hh"

namespace sentinel::core {

struct RuntimeConfig {
    mem::TierParams fast;
    mem::TierParams slow;
    mem::MigrationParams migration;
    df::ExecParams exec;
    prof::ProfilerOptions profiler;
    SentinelOptions sentinel;

    /**
     * Middle tiers between fast and slow, ordered fast-to-slow; empty
     * = the classic two-tier system.  insertMidTiers() fills this with
     * geometrically interpolated parameters.
     */
    std::vector<mem::TierParams> mids;

    /**
     * Per-link migration parameters; entry i drives the link between
     * chain tiers i and i+1.  Empty = every link reuses `migration`;
     * when set, size must be mids.size() + 1.
     */
    std::vector<mem::MigrationParams> links;

    /** Single-tier chain: only the fast tier exists, no links, no
     *  migration.  `mids` must be empty. */
    bool single_tier = false;

    /** The ordered tier chain ([fast, mids..., slow]) the memory
     *  system consumes. */
    std::vector<mem::TierParams> tierChain() const;

    /** Per-link migration parameters matching tierChain(). */
    std::vector<mem::MigrationParams> linkChain() const;

    /**
     * Insert @p count middle tiers of @p bytes_each between fast and
     * slow.  Each mid's bandwidth/latency interpolates geometrically
     * between the fast and slow endpoints by chain position; when
     * @p bw_override > 0 it replaces every mid's read/write bandwidth
     * and the bandwidth of every link below the first mid (the far
     * legs a staged prefetch crosses early).  Link 0 (fast <-> first
     * mid) keeps the preset `migration` channel.
     */
    void insertMidTiers(int count, std::uint64_t bytes_each,
                        double bw_override = 0.0);

    /**
     * Structured event tracing (off by default).  When enabled the
     * runtime owns a telemetry::Session wired into the executor, the
     * memory system, and the Sentinel policy; read it back through
     * Runtime::telemetrySession() to export Chrome traces / metrics.
     */
    telemetry::TelemetryConfig telemetry;

    /**
     * DDR4 + Optane DC PMM preset (the paper's Table II CPU platform),
     * with the fast tier sized to @p fast_bytes.
     */
    static RuntimeConfig optane(std::uint64_t fast_bytes);

    /** V100 HBM + host-DRAM-over-PCIe preset (GPU platform). */
    static RuntimeConfig gpu(std::uint64_t hbm_bytes);

    /**
     * DDR4 + CXL-attached-memory preset: a faster, lower-latency slow
     * tier than Optane.  Not in the paper (CXL postdates it) — kept to
     * study how Sentinel's advantage scales as the tier gap narrows,
     * the question the paper's introduction raises about future
     * memory technologies.
     */
    static RuntimeConfig cxl(std::uint64_t fast_bytes);
};

class Runtime
{
  public:
    Runtime(df::Graph graph, RuntimeConfig cfg);

    /** The one-step profiling phase (run lazily before training). */
    const prof::ProfileResult &profileResult();

    /**
     * Run @p steps training steps under Sentinel (profiling first if
     * not done yet).  Subsequent calls continue training.
     */
    std::vector<df::StepStats> train(int steps);

    const df::Graph &graph() const { return graph_; }
    mem::HeterogeneousMemory &hm() { return *hm_; }
    /** Valid after the first train() call. */
    const SentinelPolicy &policy() const;

    /** Telemetry session, or null when cfg.telemetry.enabled is false. */
    telemetry::Session *telemetrySession() { return telemetry_.get(); }

  private:
    void ensureProfiled();
    void ensureExecutor();

    df::Graph graph_;
    RuntimeConfig cfg_;
    std::unique_ptr<telemetry::Session> telemetry_;
    std::optional<prof::ProfileResult> profile_;
    std::unique_ptr<mem::HeterogeneousMemory> hm_;
    std::unique_ptr<SentinelPolicy> policy_;
    std::unique_ptr<df::Executor> executor_;
};

} // namespace sentinel::core

#endif // SENTINEL_CORE_RUNTIME_HH
