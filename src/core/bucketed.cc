#include "core/bucketed.hh"

#include "common/logging.hh"

namespace sentinel::core {

BucketedRuntime::BucketedRuntime(std::function<df::Graph(int)> make_graph,
                                 RuntimeConfig cfg, int max_buckets)
    : make_graph_(std::move(make_graph)), cfg_(std::move(cfg)),
      max_buckets_(max_buckets)
{
    SENTINEL_ASSERT(max_buckets_ >= 1, "need at least one bucket");
}

Runtime &
BucketedRuntime::bucket(int key)
{
    auto it = buckets_.find(key);
    if (it == buckets_.end()) {
        // The paper bounds profiling overhead by bucketizing into at
        // most ~10 buckets; exceeding that means the bucketization is
        // wrong (user error), not a runtime bug.
        if (static_cast<int>(buckets_.size()) >= max_buckets_) {
            SENTINEL_FATAL("bucket %d would exceed the %d-bucket limit; "
                           "coarsen the input-size bucketization",
                           key, max_buckets_);
        }
        auto rt = std::make_unique<Runtime>(make_graph_(key), cfg_);
        rt->profileResult(); // one profiling step for the new bucket
        ++profiling_steps_;
        it = buckets_.emplace(key, std::move(rt)).first;
    }
    return *it->second;
}

df::StepStats
BucketedRuntime::step(int key)
{
    return bucket(key).train(1).front();
}

} // namespace sentinel::core
