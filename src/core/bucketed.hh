/**
 * @file
 * Dynamic-graph support via bucketed profiling (Sec. IV-E).
 *
 * Frameworks with dynamic graphs generate a differently-shaped
 * dataflow per batch, depending on the input size.  Sentinel's answer
 * is to bucketize input sizes into a small number of buckets (at most
 * ten), profile each bucket's representative graph once, and select
 * the matching plan per training step.  Control-flow changes are the
 * degenerate case: a batch whose graph matches no profiled bucket
 * triggers a fresh profiling step for it.
 *
 * This facade manages one (HM, profile, policy, executor) instance per
 * bucket over a shared memory system description and dispatches steps
 * by bucket key.
 */

#ifndef SENTINEL_CORE_BUCKETED_HH
#define SENTINEL_CORE_BUCKETED_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/runtime.hh"

namespace sentinel::core {

class BucketedRuntime
{
  public:
    /** @param make_graph builds the representative graph of a bucket
     *         (e.g. the padded sequence length -> its step graph). */
    BucketedRuntime(std::function<df::Graph(int)> make_graph,
                    RuntimeConfig cfg, int max_buckets = 10);

    /**
     * Run one training step whose input falls into @p bucket.  The
     * first step of a new bucket profiles it (one instrumented step,
     * like the static case); later steps reuse that bucket's plan.
     */
    df::StepStats step(int bucket);

    /** Number of buckets profiled so far. */
    std::size_t bucketsProfiled() const { return buckets_.size(); }

    /** Total profiling steps spent (one per bucket — the overhead the
     *  paper bounds by allowing at most ten buckets). */
    int profilingSteps() const { return profiling_steps_; }

    /** The per-bucket runtime (profiled on first use). */
    Runtime &bucket(int key);

  private:
    std::function<df::Graph(int)> make_graph_;
    RuntimeConfig cfg_;
    int max_buckets_;
    int profiling_steps_ = 0;
    std::map<int, std::unique_ptr<Runtime>> buckets_;
};

} // namespace sentinel::core

#endif // SENTINEL_CORE_BUCKETED_HH
