/**
 * @file
 * The concrete per-step migration schedule derived from the profile.
 *
 * For a chosen MIL the plan precomputes, once:
 *
 *  - prefetch_at[k]: long-lived tensors to start migrating into fast
 *    memory at the beginning of interval k (they are needed by
 *    interval k+1, cyclically), sorted by access count descending so
 *    the hottest tensors migrate first (Sec. IV-D);
 *
 *  - demote_at_layer[l]: long-lived tensors whose access at layer l is
 *    their last use in l's interval — they are moved out of fast
 *    memory "in the middle of the interval" to make room, which is
 *    what prevents Case 2.
 *
 * Training repeats the same step, so the schedule is computed once and
 * reused for every step.
 */

#ifndef SENTINEL_CORE_MIGRATION_PLAN_HH
#define SENTINEL_CORE_MIGRATION_PLAN_HH

#include <cstdint>
#include <vector>

#include "profile/profile_db.hh"

namespace sentinel::core {

struct MigrationPlan {
    int mil = 1; ///< nominal length (0-th interval's) for reporting
    int num_intervals = 0;

    /** Start layer of each interval, ascending; starts[0] == 0. */
    std::vector<int> starts;

    /** interval_of[l]: index of the interval containing layer l. */
    std::vector<int> interval_of;

    /** prefetch_at[k]: tensor ids, hottest first. */
    std::vector<std::vector<df::TensorId>> prefetch_at;

    /** demote_at_layer[l]: tensor ids to evict after layer l. */
    std::vector<std::vector<df::TensorId>> demote_at_layer;

    int
    intervalOfLayer(int layer) const
    {
        return interval_of[static_cast<std::size_t>(layer)];
    }

    bool
    isIntervalStart(int layer) const
    {
        int k = intervalOfLayer(layer);
        return starts[static_cast<std::size_t>(k)] == layer;
    }

    /** One past the last layer of interval @p k. */
    int
    intervalEnd(int k) const
    {
        return k + 1 < num_intervals
                   ? starts[static_cast<std::size_t>(k) + 1]
                   : static_cast<int>(interval_of.size());
    }
};

/** Build the schedule for a fixed @p mil from the profile. */
MigrationPlan buildMigrationPlan(const prof::ProfileDatabase &db, int mil);

/**
 * Build a schedule over explicit interval boundaries (the dynamic
 * interval-length alternative of Sec. IV-E).  @p starts must begin
 * with 0 and be strictly ascending within [0, num layers).
 */
MigrationPlan buildMigrationPlan(const prof::ProfileDatabase &db,
                                 std::vector<int> starts);

} // namespace sentinel::core

#endif // SENTINEL_CORE_MIGRATION_PLAN_HH
